# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_imaging[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_tripleC[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
