
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tripleC/test_accuracy.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_accuracy.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_accuracy.cpp.o.d"
  "/root/repo/tests/tripleC/test_bandwidth_model.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_bandwidth_model.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_bandwidth_model.cpp.o.d"
  "/root/repo/tests/tripleC/test_context_predictor.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_context_predictor.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_context_predictor.cpp.o.d"
  "/root/repo/tests/tripleC/test_ewma.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_ewma.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_ewma.cpp.o.d"
  "/root/repo/tests/tripleC/test_graph_predictor.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_graph_predictor.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_graph_predictor.cpp.o.d"
  "/root/repo/tests/tripleC/test_linear_model.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_linear_model.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_linear_model.cpp.o.d"
  "/root/repo/tests/tripleC/test_markov.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_markov.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_markov.cpp.o.d"
  "/root/repo/tests/tripleC/test_memory_model.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_memory_model.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_memory_model.cpp.o.d"
  "/root/repo/tests/tripleC/test_online_adaptation.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_online_adaptation.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_online_adaptation.cpp.o.d"
  "/root/repo/tests/tripleC/test_predictor.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_predictor.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_predictor.cpp.o.d"
  "/root/repo/tests/tripleC/test_quantizer.cpp" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_quantizer.cpp.o" "gcc" "tests/CMakeFiles/test_tripleC.dir/tripleC/test_quantizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tripleC/CMakeFiles/tc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/tc_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
