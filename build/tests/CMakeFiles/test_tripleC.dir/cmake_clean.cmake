file(REMOVE_RECURSE
  "CMakeFiles/test_tripleC.dir/tripleC/test_accuracy.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_accuracy.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_bandwidth_model.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_bandwidth_model.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_context_predictor.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_context_predictor.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_ewma.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_ewma.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_graph_predictor.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_graph_predictor.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_linear_model.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_linear_model.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_markov.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_markov.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_memory_model.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_memory_model.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_online_adaptation.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_online_adaptation.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_predictor.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_predictor.cpp.o.d"
  "CMakeFiles/test_tripleC.dir/tripleC/test_quantizer.cpp.o"
  "CMakeFiles/test_tripleC.dir/tripleC/test_quantizer.cpp.o.d"
  "test_tripleC"
  "test_tripleC.pdb"
  "test_tripleC[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tripleC.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
