# Empty dependencies file for test_tripleC.
# This may be replaced when dependencies are built.
