file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/test_manager.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_manager.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_partition.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_partition.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_pipeline_schedule.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_pipeline_schedule.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_qos.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_qos.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
