file(REMOVE_RECURSE
  "CMakeFiles/test_platform.dir/platform/test_buffer_model.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_buffer_model.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform/test_cache_sim.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_cache_sim.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform/test_cost_model.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_cost_model.cpp.o.d"
  "CMakeFiles/test_platform.dir/platform/test_thread_pool.cpp.o"
  "CMakeFiles/test_platform.dir/platform/test_thread_pool.cpp.o.d"
  "test_platform"
  "test_platform.pdb"
  "test_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
