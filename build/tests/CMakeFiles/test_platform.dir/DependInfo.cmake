
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/platform/test_buffer_model.cpp" "tests/CMakeFiles/test_platform.dir/platform/test_buffer_model.cpp.o" "gcc" "tests/CMakeFiles/test_platform.dir/platform/test_buffer_model.cpp.o.d"
  "/root/repo/tests/platform/test_cache_sim.cpp" "tests/CMakeFiles/test_platform.dir/platform/test_cache_sim.cpp.o" "gcc" "tests/CMakeFiles/test_platform.dir/platform/test_cache_sim.cpp.o.d"
  "/root/repo/tests/platform/test_cost_model.cpp" "tests/CMakeFiles/test_platform.dir/platform/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/test_platform.dir/platform/test_cost_model.cpp.o.d"
  "/root/repo/tests/platform/test_thread_pool.cpp" "tests/CMakeFiles/test_platform.dir/platform/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_platform.dir/platform/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/tc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/tc_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
