
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/imaging/test_couples.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_couples.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_couples.cpp.o.d"
  "/root/repo/tests/imaging/test_enhance.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_enhance.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_enhance.cpp.o.d"
  "/root/repo/tests/imaging/test_guidewire.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_guidewire.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_guidewire.cpp.o.d"
  "/root/repo/tests/imaging/test_image.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_image.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_image.cpp.o.d"
  "/root/repo/tests/imaging/test_kernels.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_kernels.cpp.o.d"
  "/root/repo/tests/imaging/test_markers.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_markers.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_markers.cpp.o.d"
  "/root/repo/tests/imaging/test_metrics.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_metrics.cpp.o.d"
  "/root/repo/tests/imaging/test_registration.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_registration.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_registration.cpp.o.d"
  "/root/repo/tests/imaging/test_ridge.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_ridge.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_ridge.cpp.o.d"
  "/root/repo/tests/imaging/test_roi.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_roi.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_roi.cpp.o.d"
  "/root/repo/tests/imaging/test_synthetic.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_synthetic.cpp.o.d"
  "/root/repo/tests/imaging/test_warp.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_warp.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_warp.cpp.o.d"
  "/root/repo/tests/imaging/test_zoom.cpp" "tests/CMakeFiles/test_imaging.dir/imaging/test_zoom.cpp.o" "gcc" "tests/CMakeFiles/test_imaging.dir/imaging/test_zoom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imaging/CMakeFiles/tc_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
