file(REMOVE_RECURSE
  "CMakeFiles/test_imaging.dir/imaging/test_couples.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_couples.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_enhance.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_enhance.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_guidewire.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_guidewire.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_image.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_image.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_kernels.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_kernels.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_markers.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_markers.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_metrics.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_metrics.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_registration.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_registration.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_ridge.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_ridge.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_roi.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_roi.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_synthetic.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_synthetic.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_warp.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_warp.cpp.o.d"
  "CMakeFiles/test_imaging.dir/imaging/test_zoom.cpp.o"
  "CMakeFiles/test_imaging.dir/imaging/test_zoom.cpp.o.d"
  "test_imaging"
  "test_imaging.pdb"
  "test_imaging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
