file(REMOVE_RECURSE
  "CMakeFiles/test_app.dir/app/test_parallel_equivalence.cpp.o"
  "CMakeFiles/test_app.dir/app/test_parallel_equivalence.cpp.o.d"
  "CMakeFiles/test_app.dir/app/test_qos_knobs.cpp.o"
  "CMakeFiles/test_app.dir/app/test_qos_knobs.cpp.o.d"
  "CMakeFiles/test_app.dir/app/test_scenario_dynamics.cpp.o"
  "CMakeFiles/test_app.dir/app/test_scenario_dynamics.cpp.o.d"
  "CMakeFiles/test_app.dir/app/test_stentboost.cpp.o"
  "CMakeFiles/test_app.dir/app/test_stentboost.cpp.o.d"
  "CMakeFiles/test_app.dir/app/test_tracking_accuracy.cpp.o"
  "CMakeFiles/test_app.dir/app/test_tracking_accuracy.cpp.o.d"
  "test_app"
  "test_app.pdb"
  "test_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
