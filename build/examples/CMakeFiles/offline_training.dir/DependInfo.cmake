
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/offline_training.cpp" "examples/CMakeFiles/offline_training.dir/offline_training.cpp.o" "gcc" "examples/CMakeFiles/offline_training.dir/offline_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/tc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tripleC/CMakeFiles/tc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/tc_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
