# Empty compiler generated dependencies file for runtime_adaptation.
# This may be replaced when dependencies are built.
