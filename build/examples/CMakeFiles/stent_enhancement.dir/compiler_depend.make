# Empty compiler generated dependencies file for stent_enhancement.
# This may be replaced when dependencies are built.
