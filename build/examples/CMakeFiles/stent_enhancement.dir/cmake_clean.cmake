file(REMOVE_RECURSE
  "CMakeFiles/stent_enhancement.dir/stent_enhancement.cpp.o"
  "CMakeFiles/stent_enhancement.dir/stent_enhancement.cpp.o.d"
  "stent_enhancement"
  "stent_enhancement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stent_enhancement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
