file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_rdg_timeseries.dir/bench_fig3_rdg_timeseries.cpp.o"
  "CMakeFiles/bench_fig3_rdg_timeseries.dir/bench_fig3_rdg_timeseries.cpp.o.d"
  "bench_fig3_rdg_timeseries"
  "bench_fig3_rdg_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rdg_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
