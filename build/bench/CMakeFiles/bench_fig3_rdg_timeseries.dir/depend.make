# Empty dependencies file for bench_fig3_rdg_timeseries.
# This may be replaced when dependencies are built.
