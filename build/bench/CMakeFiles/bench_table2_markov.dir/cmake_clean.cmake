file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_markov.dir/bench_table2_markov.cpp.o"
  "CMakeFiles/bench_table2_markov.dir/bench_table2_markov.cpp.o.d"
  "bench_table2_markov"
  "bench_table2_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
