# Empty dependencies file for bench_fig6_roi_sweep.
# This may be replaced when dependencies are built.
