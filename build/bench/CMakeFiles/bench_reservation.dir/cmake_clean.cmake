file(REMOVE_RECURSE
  "CMakeFiles/bench_reservation.dir/bench_reservation.cpp.o"
  "CMakeFiles/bench_reservation.dir/bench_reservation.cpp.o.d"
  "bench_reservation"
  "bench_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
