file(REMOVE_RECURSE
  "CMakeFiles/tc_app.dir/stentboost.cpp.o"
  "CMakeFiles/tc_app.dir/stentboost.cpp.o.d"
  "libtc_app.a"
  "libtc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
