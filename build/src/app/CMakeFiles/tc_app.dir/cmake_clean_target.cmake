file(REMOVE_RECURSE
  "libtc_app.a"
)
