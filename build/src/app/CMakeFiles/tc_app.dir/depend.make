# Empty dependencies file for tc_app.
# This may be replaced when dependencies are built.
