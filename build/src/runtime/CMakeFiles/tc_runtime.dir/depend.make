# Empty dependencies file for tc_runtime.
# This may be replaced when dependencies are built.
