file(REMOVE_RECURSE
  "libtc_runtime.a"
)
