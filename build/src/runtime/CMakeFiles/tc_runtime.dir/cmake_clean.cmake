file(REMOVE_RECURSE
  "CMakeFiles/tc_runtime.dir/manager.cpp.o"
  "CMakeFiles/tc_runtime.dir/manager.cpp.o.d"
  "CMakeFiles/tc_runtime.dir/partition.cpp.o"
  "CMakeFiles/tc_runtime.dir/partition.cpp.o.d"
  "CMakeFiles/tc_runtime.dir/pipeline_schedule.cpp.o"
  "CMakeFiles/tc_runtime.dir/pipeline_schedule.cpp.o.d"
  "CMakeFiles/tc_runtime.dir/qos.cpp.o"
  "CMakeFiles/tc_runtime.dir/qos.cpp.o.d"
  "libtc_runtime.a"
  "libtc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
