file(REMOVE_RECURSE
  "libtc_graph.a"
)
