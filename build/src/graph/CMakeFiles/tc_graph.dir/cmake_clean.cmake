file(REMOVE_RECURSE
  "CMakeFiles/tc_graph.dir/flowgraph.cpp.o"
  "CMakeFiles/tc_graph.dir/flowgraph.cpp.o.d"
  "CMakeFiles/tc_graph.dir/scenario.cpp.o"
  "CMakeFiles/tc_graph.dir/scenario.cpp.o.d"
  "libtc_graph.a"
  "libtc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
