# Empty compiler generated dependencies file for tc_graph.
# This may be replaced when dependencies are built.
