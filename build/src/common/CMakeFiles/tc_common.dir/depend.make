# Empty dependencies file for tc_common.
# This may be replaced when dependencies are built.
