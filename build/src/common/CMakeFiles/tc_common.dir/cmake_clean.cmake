file(REMOVE_RECURSE
  "CMakeFiles/tc_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/tc_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/tc_common.dir/csv.cpp.o"
  "CMakeFiles/tc_common.dir/csv.cpp.o.d"
  "CMakeFiles/tc_common.dir/stats.cpp.o"
  "CMakeFiles/tc_common.dir/stats.cpp.o.d"
  "libtc_common.a"
  "libtc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
