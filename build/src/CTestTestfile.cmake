# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("imaging")
subdirs("graph")
subdirs("platform")
subdirs("tripleC")
subdirs("runtime")
subdirs("trace")
subdirs("app")
