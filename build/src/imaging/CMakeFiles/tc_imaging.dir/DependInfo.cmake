
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imaging/couples.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/couples.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/couples.cpp.o.d"
  "/root/repo/src/imaging/enhance.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/enhance.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/enhance.cpp.o.d"
  "/root/repo/src/imaging/guidewire.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/guidewire.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/guidewire.cpp.o.d"
  "/root/repo/src/imaging/image.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/image.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/image.cpp.o.d"
  "/root/repo/src/imaging/kernels.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/kernels.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/kernels.cpp.o.d"
  "/root/repo/src/imaging/markers.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/markers.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/markers.cpp.o.d"
  "/root/repo/src/imaging/metrics.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/metrics.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/metrics.cpp.o.d"
  "/root/repo/src/imaging/registration.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/registration.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/registration.cpp.o.d"
  "/root/repo/src/imaging/ridge.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/ridge.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/ridge.cpp.o.d"
  "/root/repo/src/imaging/roi.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/roi.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/roi.cpp.o.d"
  "/root/repo/src/imaging/synthetic.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/synthetic.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/synthetic.cpp.o.d"
  "/root/repo/src/imaging/work_report.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/work_report.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/work_report.cpp.o.d"
  "/root/repo/src/imaging/zoom.cpp" "src/imaging/CMakeFiles/tc_imaging.dir/zoom.cpp.o" "gcc" "src/imaging/CMakeFiles/tc_imaging.dir/zoom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
