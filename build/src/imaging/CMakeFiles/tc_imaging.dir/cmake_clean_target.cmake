file(REMOVE_RECURSE
  "libtc_imaging.a"
)
