file(REMOVE_RECURSE
  "CMakeFiles/tc_imaging.dir/couples.cpp.o"
  "CMakeFiles/tc_imaging.dir/couples.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/enhance.cpp.o"
  "CMakeFiles/tc_imaging.dir/enhance.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/guidewire.cpp.o"
  "CMakeFiles/tc_imaging.dir/guidewire.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/image.cpp.o"
  "CMakeFiles/tc_imaging.dir/image.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/kernels.cpp.o"
  "CMakeFiles/tc_imaging.dir/kernels.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/markers.cpp.o"
  "CMakeFiles/tc_imaging.dir/markers.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/metrics.cpp.o"
  "CMakeFiles/tc_imaging.dir/metrics.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/registration.cpp.o"
  "CMakeFiles/tc_imaging.dir/registration.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/ridge.cpp.o"
  "CMakeFiles/tc_imaging.dir/ridge.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/roi.cpp.o"
  "CMakeFiles/tc_imaging.dir/roi.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/synthetic.cpp.o"
  "CMakeFiles/tc_imaging.dir/synthetic.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/work_report.cpp.o"
  "CMakeFiles/tc_imaging.dir/work_report.cpp.o.d"
  "CMakeFiles/tc_imaging.dir/zoom.cpp.o"
  "CMakeFiles/tc_imaging.dir/zoom.cpp.o.d"
  "libtc_imaging.a"
  "libtc_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
