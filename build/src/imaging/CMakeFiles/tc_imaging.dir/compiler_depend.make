# Empty compiler generated dependencies file for tc_imaging.
# This may be replaced when dependencies are built.
