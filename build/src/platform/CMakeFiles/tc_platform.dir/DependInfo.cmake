
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/buffer_model.cpp" "src/platform/CMakeFiles/tc_platform.dir/buffer_model.cpp.o" "gcc" "src/platform/CMakeFiles/tc_platform.dir/buffer_model.cpp.o.d"
  "/root/repo/src/platform/cache_sim.cpp" "src/platform/CMakeFiles/tc_platform.dir/cache_sim.cpp.o" "gcc" "src/platform/CMakeFiles/tc_platform.dir/cache_sim.cpp.o.d"
  "/root/repo/src/platform/cost_model.cpp" "src/platform/CMakeFiles/tc_platform.dir/cost_model.cpp.o" "gcc" "src/platform/CMakeFiles/tc_platform.dir/cost_model.cpp.o.d"
  "/root/repo/src/platform/thread_pool.cpp" "src/platform/CMakeFiles/tc_platform.dir/thread_pool.cpp.o" "gcc" "src/platform/CMakeFiles/tc_platform.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imaging/CMakeFiles/tc_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
