file(REMOVE_RECURSE
  "CMakeFiles/tc_platform.dir/buffer_model.cpp.o"
  "CMakeFiles/tc_platform.dir/buffer_model.cpp.o.d"
  "CMakeFiles/tc_platform.dir/cache_sim.cpp.o"
  "CMakeFiles/tc_platform.dir/cache_sim.cpp.o.d"
  "CMakeFiles/tc_platform.dir/cost_model.cpp.o"
  "CMakeFiles/tc_platform.dir/cost_model.cpp.o.d"
  "CMakeFiles/tc_platform.dir/thread_pool.cpp.o"
  "CMakeFiles/tc_platform.dir/thread_pool.cpp.o.d"
  "libtc_platform.a"
  "libtc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
