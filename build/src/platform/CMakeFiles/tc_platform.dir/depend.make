# Empty dependencies file for tc_platform.
# This may be replaced when dependencies are built.
