file(REMOVE_RECURSE
  "libtc_platform.a"
)
