file(REMOVE_RECURSE
  "CMakeFiles/tc_model.dir/accuracy.cpp.o"
  "CMakeFiles/tc_model.dir/accuracy.cpp.o.d"
  "CMakeFiles/tc_model.dir/bandwidth_model.cpp.o"
  "CMakeFiles/tc_model.dir/bandwidth_model.cpp.o.d"
  "CMakeFiles/tc_model.dir/graph_predictor.cpp.o"
  "CMakeFiles/tc_model.dir/graph_predictor.cpp.o.d"
  "CMakeFiles/tc_model.dir/linear_model.cpp.o"
  "CMakeFiles/tc_model.dir/linear_model.cpp.o.d"
  "CMakeFiles/tc_model.dir/markov.cpp.o"
  "CMakeFiles/tc_model.dir/markov.cpp.o.d"
  "CMakeFiles/tc_model.dir/memory_model.cpp.o"
  "CMakeFiles/tc_model.dir/memory_model.cpp.o.d"
  "CMakeFiles/tc_model.dir/predictor.cpp.o"
  "CMakeFiles/tc_model.dir/predictor.cpp.o.d"
  "CMakeFiles/tc_model.dir/quantizer.cpp.o"
  "CMakeFiles/tc_model.dir/quantizer.cpp.o.d"
  "libtc_model.a"
  "libtc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
