
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tripleC/accuracy.cpp" "src/tripleC/CMakeFiles/tc_model.dir/accuracy.cpp.o" "gcc" "src/tripleC/CMakeFiles/tc_model.dir/accuracy.cpp.o.d"
  "/root/repo/src/tripleC/bandwidth_model.cpp" "src/tripleC/CMakeFiles/tc_model.dir/bandwidth_model.cpp.o" "gcc" "src/tripleC/CMakeFiles/tc_model.dir/bandwidth_model.cpp.o.d"
  "/root/repo/src/tripleC/graph_predictor.cpp" "src/tripleC/CMakeFiles/tc_model.dir/graph_predictor.cpp.o" "gcc" "src/tripleC/CMakeFiles/tc_model.dir/graph_predictor.cpp.o.d"
  "/root/repo/src/tripleC/linear_model.cpp" "src/tripleC/CMakeFiles/tc_model.dir/linear_model.cpp.o" "gcc" "src/tripleC/CMakeFiles/tc_model.dir/linear_model.cpp.o.d"
  "/root/repo/src/tripleC/markov.cpp" "src/tripleC/CMakeFiles/tc_model.dir/markov.cpp.o" "gcc" "src/tripleC/CMakeFiles/tc_model.dir/markov.cpp.o.d"
  "/root/repo/src/tripleC/memory_model.cpp" "src/tripleC/CMakeFiles/tc_model.dir/memory_model.cpp.o" "gcc" "src/tripleC/CMakeFiles/tc_model.dir/memory_model.cpp.o.d"
  "/root/repo/src/tripleC/predictor.cpp" "src/tripleC/CMakeFiles/tc_model.dir/predictor.cpp.o" "gcc" "src/tripleC/CMakeFiles/tc_model.dir/predictor.cpp.o.d"
  "/root/repo/src/tripleC/quantizer.cpp" "src/tripleC/CMakeFiles/tc_model.dir/quantizer.cpp.o" "gcc" "src/tripleC/CMakeFiles/tc_model.dir/quantizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/tc_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
