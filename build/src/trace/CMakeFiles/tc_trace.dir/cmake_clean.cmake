file(REMOVE_RECURSE
  "CMakeFiles/tc_trace.dir/dataset.cpp.o"
  "CMakeFiles/tc_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/tc_trace.dir/recorder.cpp.o"
  "CMakeFiles/tc_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/tc_trace.dir/replay.cpp.o"
  "CMakeFiles/tc_trace.dir/replay.cpp.o.d"
  "libtc_trace.a"
  "libtc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
