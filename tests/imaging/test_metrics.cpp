#include "imaging/metrics.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tc::img {
namespace {

ImageF32 noisy(i32 size, f32 base, f32 sigma, u64 seed) {
  ImageF32 im(size, size, base);
  Pcg32 rng(seed);
  for (usize i = 0; i < im.size(); ++i) {
    im.data()[i] += static_cast<f32>(rng.normal(0.0, sigma));
  }
  return im;
}

TEST(Metrics, PsnrIdenticalImagesIsLarge) {
  ImageF32 a = noisy(32, 1000.0f, 50.0f, 1);
  EXPECT_DOUBLE_EQ(psnr(a, a, 65535.0), 200.0);
}

TEST(Metrics, PsnrKnownMse) {
  ImageF32 a(16, 16, 0.0f);
  ImageF32 b(16, 16, 655.35f);  // MSE = (peak/100)^2 -> PSNR = 40 dB
  EXPECT_NEAR(psnr(a, b, 65535.0), 40.0, 1e-6);
}

TEST(Metrics, PsnrDimensionMismatchIsZero) {
  ImageF32 a(16, 16);
  ImageF32 b(8, 8);
  EXPECT_DOUBLE_EQ(psnr(a, b, 65535.0), 0.0);
}

TEST(Metrics, PsnrOrdersNoiseLevels) {
  ImageF32 clean(32, 32, 1000.0f);
  ImageF32 slightly = noisy(32, 1000.0f, 10.0f, 2);
  ImageF32 very = noisy(32, 1000.0f, 100.0f, 3);
  EXPECT_GT(psnr(clean, slightly, 65535.0), psnr(clean, very, 65535.0));
}

TEST(Metrics, RegionMeanAndStddev) {
  ImageF32 im(16, 16, 5.0f);
  for (i32 x = 0; x < 16; ++x) im.at(x, 0) = 100.0f;  // outside the region
  Rect region{0, 4, 16, 8};
  EXPECT_DOUBLE_EQ(region_mean(im, region), 5.0);
  EXPECT_DOUBLE_EQ(region_stddev(im, region), 0.0);
}

TEST(Metrics, RegionStddevOfNoise) {
  ImageF32 im = noisy(64, 1000.0f, 50.0f, 4);
  EXPECT_NEAR(region_stddev(im, Rect{0, 0, 64, 64}), 50.0, 5.0);
}

TEST(Metrics, DiskCnrDetectsContrast) {
  // Dark disk of depth 500 on noise sigma 50: CNR ≈ 10.
  ImageF32 im = noisy(64, 1000.0f, 50.0f, 5);
  for (i32 y = 0; y < 64; ++y) {
    for (i32 x = 0; x < 64; ++x) {
      f64 d = std::hypot(x - 32.0, y - 32.0);
      if (d <= 4.0) im.at(x, y) -= 500.0f;
    }
  }
  f64 cnr = disk_cnr(im, Point2f{32, 32}, 4.0);
  EXPECT_GT(cnr, 6.0);
  EXPECT_LT(cnr, 14.0);
}

TEST(Metrics, DiskCnrZeroOnFlatNoise) {
  ImageF32 im = noisy(64, 1000.0f, 50.0f, 6);
  f64 cnr = disk_cnr(im, Point2f{32, 32}, 4.0);
  EXPECT_LT(cnr, 2.0);
}

TEST(Metrics, CnrImprovesWithLowerNoise) {
  auto make = [](f32 sigma, u64 seed) {
    ImageF32 im = noisy(64, 1000.0f, sigma, seed);
    for (i32 y = 0; y < 64; ++y) {
      for (i32 x = 0; x < 64; ++x) {
        f64 d = std::hypot(x - 32.0, y - 32.0);
        if (d <= 4.0) im.at(x, y) -= 500.0f;
      }
    }
    return im;
  };
  EXPECT_GT(disk_cnr(make(20.0f, 7), Point2f{32, 32}, 4.0),
            2.0 * disk_cnr(make(80.0f, 8), Point2f{32, 32}, 4.0));
}

TEST(Metrics, MarkerCnrAveragesTwoDisks) {
  ImageF32 im = noisy(96, 1000.0f, 50.0f, 9);
  for (Point2f c : {Point2f{30.0, 48.0}, Point2f{66.0, 48.0}}) {
    for (i32 y = 0; y < 96; ++y) {
      for (i32 x = 0; x < 96; ++x) {
        f64 d = std::hypot(x - c.x, y - c.y);
        if (d <= 4.0) im.at(x, y) -= 500.0f;
      }
    }
  }
  f64 cnr = marker_cnr(im, Point2f{30, 48}, Point2f{66, 48}, 4.0);
  EXPECT_GT(cnr, 5.0);
}

}  // namespace
}  // namespace tc::img
