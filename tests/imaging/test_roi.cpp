#include <gtest/gtest.h>

#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

TEST(RoiEst, CentredOnCouple) {
  Couple c{Point2f{100, 100}, Point2f{150, 100}, 1.0};
  RoiParams p;
  RoiResult r = estimate_roi(c, 512, 512, p);
  EXPECT_FALSE(r.roi.empty());
  // The couple centre (125, 100) lies inside the ROI.
  EXPECT_TRUE(r.roi.contains(Point2i{125, 100}));
  EXPECT_TRUE(r.roi.contains(Point2i{100, 100}));
  EXPECT_TRUE(r.roi.contains(Point2i{150, 100}));
}

TEST(RoiEst, RespectsMinSide) {
  Couple c{Point2f{100, 100}, Point2f{102, 100}, 1.0};  // tiny couple
  RoiParams p;
  p.min_side = 96;
  RoiResult r = estimate_roi(c, 512, 512, p);
  EXPECT_GE(r.roi.w, 96);
  EXPECT_GE(r.roi.h, 96);
}

TEST(RoiEst, MarginScalesWithDistance) {
  RoiParams p;
  p.min_side = 8;
  Couple small{Point2f{200, 200}, Point2f{240, 200}, 1.0};
  Couple large{Point2f{200, 200}, Point2f{320, 200}, 1.0};
  Rect rs = estimate_roi(small, 512, 512, p).roi;
  Rect rl = estimate_roi(large, 512, 512, p).roi;
  EXPECT_GT(rl.w, rs.w);
  EXPECT_GT(rl.h, rs.h);
}

TEST(RoiEst, ClampedToFrame) {
  Couple c{Point2f{5, 5}, Point2f{55, 5}, 1.0};
  RoiResult r = estimate_roi(c, 256, 256, RoiParams{});
  EXPECT_GE(r.roi.x, 0);
  EXPECT_GE(r.roi.y, 0);
  EXPECT_LE(r.roi.x + r.roi.w, 256);
  EXPECT_LE(r.roi.y + r.roi.h, 256);
}

TEST(RoiEst, DimensionsAreEven) {
  // Even sides keep the 2-stripe split exact.
  for (f64 d : {41.0, 52.0, 63.5, 77.25}) {
    Couple c{Point2f{200, 200}, Point2f{200 + d, 200}, 1.0};
    RoiParams p;
    p.min_side = 9;
    Rect r = estimate_roi(c, 512, 512, p).roi;
    // Only guaranteed when not clamped by the frame border.
    EXPECT_EQ(r.w % 2, 0) << d;
    EXPECT_EQ(r.h % 2, 0) << d;
  }
}

TEST(RoiEst, DiagonalCoupleCovered) {
  Couple c{Point2f{100, 100}, Point2f{160, 180}, 1.0};
  RoiResult r = estimate_roi(c, 512, 512, RoiParams{});
  EXPECT_TRUE(r.roi.contains(Point2i{100, 100}));
  EXPECT_TRUE(r.roi.contains(Point2i{160, 180}));
}

TEST(RoiEst, WorkIsFeatureLevel) {
  Couple c{Point2f{100, 100}, Point2f{150, 100}, 1.0};
  RoiResult r = estimate_roi(c, 512, 512, RoiParams{});
  EXPECT_FALSE(r.work.data_parallel);
  EXPECT_GT(r.work.feature_ops, 0u);
  EXPECT_EQ(r.work.pixel_ops, 0u);
}

}  // namespace
}  // namespace tc::img
