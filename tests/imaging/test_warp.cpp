#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "imaging/kernels.hpp"

namespace tc::img {
namespace {

ImageF32 smooth_random(i32 size, u64 seed) {
  ImageF32 im(size, size);
  Pcg32 rng(seed);
  for (usize i = 0; i < im.size(); ++i) {
    im.data()[i] = static_cast<f32>(rng.uniform(0.0, 1000.0));
  }
  return gaussian_blur(im, 2.0);
}

TEST(WarpRigid, ZeroAngleEqualsTranslate) {
  ImageF32 im = smooth_random(32, 1);
  ImageF32 a = warp_rigid(im, 1.5, -2.5, 0.0, Point2f{16, 16});
  ImageF32 b = translate_bilinear(im, 1.5, -2.5);
  EXPECT_EQ(a, b);
}

TEST(WarpRigid, IdentityTransform) {
  ImageF32 im = smooth_random(32, 2);
  ImageF32 out = warp_rigid(im, 0.0, 0.0, 0.0, Point2f{16, 16});
  EXPECT_EQ(out, im);
}

TEST(WarpRigid, PureRotationMovesOffCentrePoint) {
  // A bright dot at (24, 16) rotated by 90 degrees about (16, 16) should
  // appear at (16, 24).
  ImageF32 im(32, 32, 0.0f);
  im.at(24, 16) = 1000.0f;
  ImageF32 out = warp_rigid(im, 0.0, 0.0, 3.14159265358979 / 2.0,
                            Point2f{16, 16});
  EXPECT_GT(out.at(16, 24), 800.0f);
  EXPECT_LT(out.at(24, 16), 200.0f);
}

TEST(WarpRigid, CentreIsFixedPointOfRotation) {
  ImageF32 im = smooth_random(48, 3);
  ImageF32 out = warp_rigid(im, 0.0, 0.0, 0.3, Point2f{24, 24});
  EXPECT_NEAR(out.at(24, 24), im.at(24, 24), 6.0f);
}

TEST(WarpRigid, RotationRoundTripApproximatesIdentity) {
  ImageF32 im = smooth_random(64, 4);
  ImageF32 fwd = warp_rigid(im, 0.0, 0.0, 0.2, Point2f{32, 32});
  ImageF32 back = warp_rigid(fwd, 0.0, 0.0, -0.2, Point2f{32, 32});
  for (i32 y = 20; y < 44; ++y) {
    for (i32 x = 20; x < 44; ++x) {
      EXPECT_NEAR(back.at(x, y), im.at(x, y), 25.0f) << x << "," << y;
    }
  }
}

TEST(WarpRigid, WorkReportAccounted) {
  ImageF32 im = smooth_random(32, 5);
  WorkReport wr;
  (void)warp_rigid(im, 1.0, 1.0, 0.1, Point2f{16, 16}, &wr);
  EXPECT_EQ(wr.pixel_ops, im.size() * 22);
  EXPECT_GT(wr.bytes_read, 0u);
}

TEST(WarpRigid, TranslationPlusRotationComposition) {
  // A dot at the centre translated by (5, 0): rotation about the centre
  // does not affect it, translation does.
  ImageF32 im(32, 32, 0.0f);
  im.at(16, 16) = 1000.0f;
  ImageF32 out = warp_rigid(im, 5.0, 0.0, 0.4, Point2f{16, 16});
  EXPECT_GT(out.at(21, 16), 800.0f);
}

}  // namespace
}  // namespace tc::img
