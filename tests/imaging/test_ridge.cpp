#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

/// Bright background with a dark vertical line of the given depth.
ImageF32 line_image(i32 size, f32 depth, i32 line_x, u64 noise_seed = 0,
                    f32 noise_sigma = 0.0f) {
  ImageF32 im(size, size, 1000.0f);
  for (i32 y = 0; y < size; ++y) {
    im.at(line_x, y) -= depth;
    im.at(line_x - 1, y) -= depth * 0.6f;
    im.at(line_x + 1, y) -= depth * 0.6f;
  }
  if (noise_sigma > 0.0f) {
    Pcg32 rng(noise_seed);
    for (usize i = 0; i < im.size(); ++i) {
      im.data()[i] += static_cast<f32>(rng.normal(0.0, noise_sigma));
    }
  }
  return im;
}

TEST(Ridge, RespondsOnDarkLine) {
  ImageF32 im = line_image(64, 500.0f, 32);
  RidgeParams params;
  RidgeResult r = ridge_detect(im, im.full_rect(), params);
  EXPECT_GT(r.response.at(32, 32), r.response.at(10, 32) + 10.0f);
}

TEST(Ridge, LineHasLowBlobness) {
  ImageF32 im = line_image(64, 500.0f, 32);
  RidgeParams params;
  RidgeResult r = ridge_detect(im, im.full_rect(), params);
  // On an elongated structure lambda_min ≈ 0 while lambda_max is large.
  EXPECT_LT(r.blobness.at(32, 32), 0.3f * r.response.at(32, 32));
}

TEST(Ridge, DarkDiskHasHighBlobness) {
  ImageF32 im(64, 64, 1000.0f);
  for (i32 y = 28; y <= 36; ++y) {
    for (i32 x = 28; x <= 36; ++x) {
      f64 d = std::hypot(x - 32.0, y - 32.0);
      if (d <= 4.0) im.at(x, y) -= 500.0f;
    }
  }
  RidgeParams params;
  RidgeResult r = ridge_detect(im, im.full_rect(), params);
  // At a blob both eigenvalues are positive and similar.
  EXPECT_GT(r.blobness.at(32, 32), 0.5f * r.response.at(32, 32));
}

TEST(Ridge, DominantPixelCountTracksThreshold) {
  ImageF32 im = line_image(64, 800.0f, 32);
  RidgeParams lo;
  lo.dominant_threshold = 10.0f;
  RidgeParams hi;
  hi.dominant_threshold = 1.0e6f;
  EXPECT_GT(ridge_detect(im, im.full_rect(), lo).dominant_pixels, 0u);
  EXPECT_EQ(ridge_detect(im, im.full_rect(), hi).dominant_pixels, 0u);
}

TEST(Ridge, RoiRestrictsComputation) {
  ImageF32 im = line_image(64, 500.0f, 48);
  RidgeParams params;
  // ROI excludes the line: no response inside, zero outside the ROI.
  RidgeResult r = ridge_detect(im, Rect{0, 0, 32, 64}, params);
  EXPECT_FLOAT_EQ(r.response.at(48, 32), 0.0f);
  RidgeResult full = ridge_detect(im, im.full_rect(), params);
  EXPECT_GT(full.response.at(48, 32), 10.0f);
}

TEST(Ridge, RoiWorkIsSmallerThanFullWork) {
  ImageF32 im = line_image(96, 400.0f, 48, 1, 20.0f);
  RidgeParams params;
  RidgeResult full = ridge_detect(im, im.full_rect(), params);
  RidgeResult roi = ridge_detect(im, Rect{24, 24, 48, 48}, params);
  EXPECT_LT(roi.work.pixel_ops, full.work.pixel_ops / 2);
  EXPECT_LT(roi.work.input_bytes, full.work.input_bytes);
}

TEST(Ridge, StripedRunEqualsSerialRun) {
  ImageF32 im = line_image(64, 500.0f, 20, 3, 30.0f);
  RidgeParams params;
  RidgeResult serial = ridge_detect(im, im.full_rect(), params);

  for (i32 stripes : {2, 3, 4}) {
    ImageF32 response(64, 64, 0.0f);
    ImageF32 blobness(64, 64, 0.0f);
    u64 dominant = 0;
    WorkReport work;
    i32 y = 0;
    for (i32 s = 0; s < stripes; ++s) {
      i32 hi = (s == stripes - 1) ? 64 : y + 64 / stripes;
      ridge_detect_rows(im, im.full_rect(), params, response, blobness,
                        IndexRange{y, hi}, dominant, work);
      y = hi;
    }
    EXPECT_EQ(response, serial.response) << stripes;
    EXPECT_EQ(blobness, serial.blobness) << stripes;
    EXPECT_EQ(dominant, serial.dominant_pixels) << stripes;
  }
}

TEST(Ridge, StripedRoiRunEqualsSerialRoiRun) {
  ImageF32 im = line_image(80, 450.0f, 40, 5, 25.0f);
  RidgeParams params;
  Rect roi{16, 8, 48, 60};
  RidgeResult serial = ridge_detect(im, roi, params);

  ImageF32 response(80, 80, 0.0f);
  ImageF32 blobness(80, 80, 0.0f);
  u64 dominant = 0;
  WorkReport work;
  // Split the ROI rows [8, 68) into 3 stripes.
  for (IndexRange rows : {IndexRange{8, 28}, IndexRange{28, 48},
                          IndexRange{48, 68}}) {
    ridge_detect_rows(im, roi, params, response, blobness, rows, dominant,
                      work);
  }
  EXPECT_EQ(response, serial.response);
  EXPECT_EQ(dominant, serial.dominant_pixels);
}

TEST(Ridge, WorkReportIsDataParallel) {
  ImageF32 im = line_image(32, 300.0f, 16);
  RidgeResult r = ridge_detect(im, im.full_rect(), RidgeParams{});
  EXPECT_TRUE(r.work.data_parallel);
  EXPECT_GT(r.work.input_bytes, 0u);
  EXPECT_GT(r.work.intermediate_bytes, 0u);
  EXPECT_GT(r.work.output_bytes, 0u);
}

TEST(Ridge, EmptyRoiProducesNoWork) {
  ImageF32 im = line_image(32, 300.0f, 16);
  RidgeResult r = ridge_detect(im, Rect{100, 100, 10, 10}, RidgeParams{});
  EXPECT_EQ(r.work.pixel_ops, 0u);
  EXPECT_EQ(r.dominant_pixels, 0u);
}

}  // namespace
}  // namespace tc::img
