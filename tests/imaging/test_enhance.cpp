#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

ImageF32 frame_with_spot(i32 size, Point2f spot, u64 seed, f32 noise) {
  ImageF32 im(size, size, 5000.0f);
  Pcg32 rng(seed);
  for (usize i = 0; i < im.size(); ++i) {
    im.data()[i] += static_cast<f32>(rng.normal(0.0, noise));
  }
  for (i32 y = 0; y < size; ++y) {
    for (i32 x = 0; x < size; ++x) {
      f64 d2 = (x - spot.x) * (x - spot.x) + (y - spot.y) * (y - spot.y);
      im.at(x, y) -= static_cast<f32>(2000.0 * std::exp(-d2 / 8.0));
    }
  }
  return im;
}

TEST(Enhance, FirstFrameAdoptsInput) {
  ImageF32 frame = frame_with_spot(64, {32, 32}, 1, 50.0f);
  EnhanceResult r = enhance(frame, Rect{16, 16, 32, 32}, ImageF32(), 0.0, 0.0,
                            EnhanceParams{});
  EXPECT_EQ(r.accumulator, frame);
  EXPECT_EQ(r.enhanced_roi.width(), 32);
  EXPECT_EQ(r.enhanced_roi.height(), 32);
  EXPECT_FLOAT_EQ(r.enhanced_roi.at(0, 0), frame.at(16, 16));
}

TEST(Enhance, BlendsTowardsCurrentFrame) {
  ImageF32 acc(32, 32, 100.0f);
  ImageF32 cur(32, 32, 200.0f);
  EnhanceParams p;
  p.integration_gain = 0.25f;
  EnhanceResult r = enhance(cur, Rect{0, 0, 32, 32}, acc, 0.0, 0.0, p);
  // (1 - g) * 100 + g * 200 = 125.
  EXPECT_NEAR(r.accumulator.at(16, 16), 125.0f, 1e-3f);
}

TEST(Enhance, NoiseIsReducedByIntegration) {
  // Integrate 20 registered frames of a static scene: the noise in the
  // accumulator must drop well below the single-frame noise.
  EnhanceParams p;
  p.integration_gain = 0.2f;
  ImageF32 acc;
  for (i32 t = 0; t < 20; ++t) {
    ImageF32 frame = frame_with_spot(64, {32, 32}, 100 + t, 200.0f);
    EnhanceResult r = enhance(frame, Rect{8, 8, 48, 48}, acc, 0.0, 0.0, p);
    acc = std::move(r.accumulator);
  }
  // Compare pixel noise in a flat region (no spot) against one raw frame.
  auto flat_stddev = [](const ImageF32& im) {
    std::vector<f64> xs;
    for (i32 y = 2; y < 12; ++y) {
      for (i32 x = 50; x < 62; ++x) xs.push_back(im.at(x, y));
    }
    return stddev(xs);
  };
  ImageF32 raw = frame_with_spot(64, {32, 32}, 999, 200.0f);
  EXPECT_LT(flat_stddev(acc), 0.6 * flat_stddev(raw));
}

TEST(Enhance, MotionCompensationKeepsSpotSharp) {
  // The spot moves 2 px right per frame; with correct cumulative
  // displacement the accumulator keeps a deep spot at the *reference*
  // (initial) location — the stabilized view.
  EnhanceParams p;
  p.integration_gain = 0.3f;
  ImageF32 acc;
  for (i32 t = 0; t < 10; ++t) {
    f64 x = 20.0 + 2.0 * t;
    ImageF32 frame = frame_with_spot(64, {x, 32.0}, 200 + t, 100.0f);
    EnhanceResult r =
        enhance(frame, Rect{0, 0, 64, 64}, acc, 2.0 * t, 0.0, p);
    acc = std::move(r.accumulator);
  }
  // Spot depth at the stabilized reference location vs. a trailing spot.
  f32 at_spot = acc.at(20, 32);
  f32 off_spot = acc.at(32, 32);
  EXPECT_LT(at_spot, off_spot - 1000.0f);
}

TEST(Enhance, WithoutCompensationSpotSmears) {
  EnhanceParams p;
  p.integration_gain = 0.3f;
  ImageF32 acc_comp;
  ImageF32 acc_naive;
  for (i32 t = 0; t < 10; ++t) {
    f64 x = 20.0 + 2.0 * t;
    ImageF32 frame = frame_with_spot(64, {x, 32.0}, 300 + t, 50.0f);
    acc_comp =
        enhance(frame, Rect{0, 0, 64, 64}, acc_comp, 2.0 * t, 0.0, p)
            .accumulator;
    acc_naive = enhance(frame, Rect{0, 0, 64, 64}, acc_naive, 0.0, 0.0, p)
                    .accumulator;
  }
  // The compensated accumulator has a deeper (darker) spot at the
  // reference location than anything the smeared one retains there.
  EXPECT_LT(acc_comp.at(20, 32), acc_naive.at(20, 32) - 300.0f);
}

TEST(Enhance, CoupleBasedRotationCompensation) {
  // A spot rotating about the couple centre stays sharp at the reference
  // location when the couple rotation is compensated.
  EnhanceParams p;
  p.integration_gain = 0.3f;
  ImageF32 acc;
  const Point2f c{32.0, 32.0};
  const f64 arm = 12.0;
  Couple ref{Point2f{c.x - arm, c.y}, Point2f{c.x + arm, c.y}, 1.0};
  for (i32 t = 0; t < 8; ++t) {
    f64 phi = 0.05 * t;
    auto rot = [&](f64 offx) {
      return Point2f{c.x + offx * std::cos(phi), c.y + offx * std::sin(phi)};
    };
    Couple cur{rot(-arm), rot(arm), 1.0};
    // The spot rides on marker b.
    ImageF32 frame = frame_with_spot(64, cur.b, 400 + t, 30.0f);
    acc = enhance(frame, Rect{0, 0, 64, 64}, acc, cur, ref, p).accumulator;
  }
  // Sharp spot at the reference marker-b location.
  f32 at_ref = acc.at(static_cast<i32>(c.x + arm), static_cast<i32>(c.y));
  f32 nearby = acc.at(static_cast<i32>(c.x + arm), static_cast<i32>(c.y) - 8);
  EXPECT_LT(at_ref, nearby - 800.0f);
}

TEST(Enhance, AccumulatorSizeMismatchRestarts) {
  ImageF32 small(16, 16, 1.0f);
  ImageF32 frame(32, 32, 7.0f);
  EnhanceResult r = enhance(frame, Rect{0, 0, 16, 16}, small, 0.0, 0.0,
                            EnhanceParams{});
  EXPECT_EQ(r.accumulator, frame);
}

TEST(Enhance, WorkIsFullFrameConstant) {
  // ENH cost does not depend on the ROI size (matches the paper's constant
  // 24 ms model for this task).
  ImageF32 acc(64, 64, 1.0f);
  ImageF32 frame(64, 64, 2.0f);
  EnhanceResult small =
      enhance(frame, Rect{0, 0, 16, 16}, acc, 1.0, 0.0, EnhanceParams{});
  EnhanceResult large =
      enhance(frame, Rect{0, 0, 64, 64}, acc, 1.0, 0.0, EnhanceParams{});
  EXPECT_EQ(small.work.pixel_ops, large.work.pixel_ops);
}

}  // namespace
}  // namespace tc::img
