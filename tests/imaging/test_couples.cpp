#include <gtest/gtest.h>

#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

MarkerCandidate cand(f64 x, f64 y, f32 score) {
  return MarkerCandidate{Point2f{x, y}, score};
}

CoupleParams params(f64 prior = 50.0, f64 tol = 10.0) {
  CoupleParams p;
  p.prior_distance = prior;
  p.distance_tolerance = tol;
  return p;
}

TEST(Couples, EmptyCandidatesYieldNothing) {
  CoupleResult r = select_couple({}, params());
  EXPECT_FALSE(r.best.has_value());
  EXPECT_EQ(r.pairs_considered, 0u);
}

TEST(Couples, SingleCandidateYieldsNothing) {
  CoupleResult r = select_couple({cand(0, 0, 100)}, params());
  EXPECT_FALSE(r.best.has_value());
}

TEST(Couples, SelectsPairAtPriorDistance) {
  std::vector<MarkerCandidate> cands{
      cand(0, 0, 100), cand(50, 0, 100),  // exactly at the prior
      cand(0, 30, 100),                   // wrong distance to everything
  };
  CoupleResult r = select_couple(cands, params());
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->distance(), 50.0, 1e-9);
}

TEST(Couples, RejectsAllPairsOutsideTolerance) {
  std::vector<MarkerCandidate> cands{cand(0, 0, 100), cand(80, 0, 100)};
  CoupleResult r = select_couple(cands, params(50.0, 10.0));
  EXPECT_FALSE(r.best.has_value());
  EXPECT_EQ(r.pairs_considered, 1u);
}

TEST(Couples, PrefersStrongerPairAtEqualPlausibility) {
  std::vector<MarkerCandidate> cands{
      cand(0, 0, 50), cand(50, 0, 50),      // weak pair
      cand(0, 100, 500), cand(50, 100, 500)  // strong pair
  };
  CoupleResult r = select_couple(cands, params());
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->a.y, 100.0, 1e-9);
}

TEST(Couples, PrefersBetterDistanceMatchAtEqualStrength) {
  std::vector<MarkerCandidate> cands{
      cand(0, 0, 100), cand(58, 0, 100),     // 8 px off the prior
      cand(0, 100, 100), cand(51, 100, 100)  // 1 px off the prior
  };
  CoupleResult r = select_couple(cands, params());
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->a.y, 100.0, 1e-9);
}

TEST(Couples, PairCountIsQuadratic) {
  std::vector<MarkerCandidate> cands;
  for (i32 i = 0; i < 20; ++i) {
    cands.push_back(cand(static_cast<f64>(i * 7), 0.0, 10.0f));
  }
  CoupleResult r = select_couple(cands, params());
  EXPECT_EQ(r.pairs_considered, 190u);  // C(20, 2)
  EXPECT_EQ(r.work.feature_ops, 190u * 12u);
}

TEST(Couples, TrackingPriorBreaksTieTowardsPreviousLocation) {
  std::vector<MarkerCandidate> cands{
      cand(0, 0, 100), cand(50, 0, 100),      // far from previous
      cand(0, 200, 100), cand(50, 200, 100),  // near previous
  };
  Couple previous{Point2f{0, 198}, Point2f{50, 198}, 1.0};
  CoupleResult with = select_couple(cands, params(), &previous);
  ASSERT_TRUE(with.best.has_value());
  EXPECT_NEAR(with.best->a.y, 200.0, 1e-9);
}

TEST(Couples, TrackingPriorOverridesStrongerDistantPair) {
  std::vector<MarkerCandidate> cands{
      cand(0, 0, 500), cand(50, 0, 500),      // stronger but 150 px away
      cand(0, 150, 100), cand(50, 150, 100),  // weaker but where we were
  };
  Couple previous{Point2f{0, 150}, Point2f{50, 150}, 1.0};
  CoupleResult r = select_couple(cands, params(), &previous);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->a.y, 150.0, 1e-9);
}

TEST(Couples, NoPriorPicksGlobalBest) {
  std::vector<MarkerCandidate> cands{
      cand(0, 0, 500), cand(50, 0, 500),
      cand(0, 150, 100), cand(50, 150, 100),
  };
  CoupleResult r = select_couple(cands, params(), nullptr);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_NEAR(r.best->a.y, 0.0, 1e-9);
}

TEST(Couples, DistanceHelper) {
  Couple c{Point2f{0, 0}, Point2f{3, 4}, 0.0};
  EXPECT_DOUBLE_EQ(c.distance(), 5.0);
}

TEST(Couples, WorkReportFeatureLevel) {
  std::vector<MarkerCandidate> cands{cand(0, 0, 1), cand(50, 0, 1)};
  CoupleResult r = select_couple(cands, params());
  EXPECT_FALSE(r.work.data_parallel);
  EXPECT_EQ(r.work.items, r.pairs_considered);
}

}  // namespace
}  // namespace tc::img
