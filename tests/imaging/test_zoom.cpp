#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

ImageF32 gradient_image(i32 w, i32 h) {
  ImageF32 im(w, h);
  for (i32 y = 0; y < h; ++y) {
    for (i32 x = 0; x < w; ++x) {
      im.at(x, y) = static_cast<f32>(100 * x + 10 * y);
    }
  }
  return im;
}

TEST(Zoom, OutputDimensionsMatchParams) {
  ImageF32 roi = gradient_image(32, 24);
  ZoomParams p;
  p.output_width = 128;
  p.output_height = 96;
  ZoomResult r = zoom(roi, p);
  EXPECT_EQ(r.output.width(), 128);
  EXPECT_EQ(r.output.height(), 96);
}

TEST(Zoom, PreservesConstantImage) {
  ImageF32 roi(16, 16, 1234.0f);
  ZoomParams p;
  p.output_width = 64;
  p.output_height = 64;
  ZoomResult r = zoom(roi, p);
  for (i32 y = 4; y < 60; ++y) {
    for (i32 x = 4; x < 60; ++x) {
      EXPECT_NEAR(r.output.at(x, y), 1234, 2);
    }
  }
}

TEST(Zoom, UpscaledGradientStaysMonotone) {
  ImageF32 roi = gradient_image(16, 16);
  ZoomParams p;
  p.output_width = 64;
  p.output_height = 64;
  ZoomResult r = zoom(roi, p);
  for (i32 y = 8; y < 56; ++y) {
    for (i32 x = 9; x < 56; ++x) {
      EXPECT_GE(r.output.at(x, y), r.output.at(x - 1, y));
    }
  }
}

TEST(Zoom, StripedRunEqualsSerialRun) {
  Pcg32 rng(17);
  ImageF32 roi(24, 24);
  for (usize i = 0; i < roi.size(); ++i) {
    roi.data()[i] = static_cast<f32>(rng.uniform(0.0, 30000.0));
  }
  ZoomParams p;
  p.output_width = 96;
  p.output_height = 80;
  ZoomResult serial = zoom(roi, p);
  for (i32 stripes : {2, 3, 4}) {
    ImageU16 out(96, 80);
    WorkReport work;
    i32 y = 0;
    for (i32 s = 0; s < stripes; ++s) {
      i32 hi = (s == stripes - 1) ? 80 : y + 80 / stripes;
      zoom_rows(roi, p, out, IndexRange{y, hi}, work);
      y = hi;
    }
    EXPECT_EQ(out, serial.output) << stripes;
  }
}

TEST(Zoom, WorkScalesWithOutputArea) {
  ImageF32 roi = gradient_image(16, 16);
  ZoomParams small;
  small.output_width = 32;
  small.output_height = 32;
  ZoomParams large;
  large.output_width = 128;
  large.output_height = 128;
  ZoomResult rs = zoom(roi, small);
  ZoomResult rl = zoom(roi, large);
  EXPECT_EQ(rl.work.pixel_ops, rs.work.pixel_ops * 16);
}

TEST(Zoom, ClampsToU16Range) {
  ImageF32 roi(8, 8, 100000.0f);  // above u16 max
  ZoomParams p;
  p.output_width = 16;
  p.output_height = 16;
  ZoomResult r = zoom(roi, p);
  EXPECT_EQ(r.output.at(8, 8), 65535);
}

}  // namespace
}  // namespace tc::img
