#include "imaging/kernels.hpp"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tc::img {
namespace {

ImageF32 random_image(i32 w, i32 h, u64 seed) {
  ImageF32 im(w, h);
  Pcg32 rng(seed);
  for (usize i = 0; i < im.size(); ++i) {
    im.data()[i] = static_cast<f32>(rng.uniform(0.0, 1000.0));
  }
  return im;
}

TEST(GaussianKernel, NormalizedAndSymmetric) {
  for (f64 sigma : {0.5, 1.0, 2.0, 4.0}) {
    auto k = gaussian_kernel(sigma);
    ASSERT_EQ(k.size() % 2, 1u) << "sigma=" << sigma;
    f64 sum = std::accumulate(k.begin(), k.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-5);
    for (usize i = 0; i < k.size() / 2; ++i) {
      EXPECT_FLOAT_EQ(k[i], k[k.size() - 1 - i]);
    }
    EXPECT_GT(k[k.size() / 2], k[0]);
  }
}

TEST(GaussianBlur, PreservesConstantImage) {
  ImageF32 im(32, 32, 100.0f);
  ImageF32 out = gaussian_blur(im, 2.0);
  for (usize i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], 100.0f, 1e-2f);
  }
}

TEST(GaussianBlur, SmoothsImpulse) {
  ImageF32 im(33, 33, 0.0f);
  im.at(16, 16) = 1000.0f;
  ImageF32 out = gaussian_blur(im, 1.5);
  EXPECT_LT(out.at(16, 16), 1000.0f);
  EXPECT_GT(out.at(16, 16), out.at(12, 16));
  EXPECT_GT(out.at(15, 16), out.at(10, 16));
  // Mass is preserved (up to border effects, none here).
  f64 sum = 0.0;
  for (usize i = 0; i < out.size(); ++i) sum += out.data()[i];
  EXPECT_NEAR(sum, 1000.0, 1.0);
}

TEST(GaussianBlur, StripeUnionEqualsFullRun) {
  ImageF32 im = random_image(64, 48, 77);
  ImageF32 full(64, 48);
  gaussian_blur_rows(im, 2.0, full, IndexRange{0, 48});
  for (i32 stripes : {2, 3, 4, 7}) {
    ImageF32 striped(64, 48);
    i32 base = 48 / stripes;
    i32 y = 0;
    for (i32 s = 0; s < stripes; ++s) {
      i32 hi = (s == stripes - 1) ? 48 : y + base;
      gaussian_blur_rows(im, 2.0, striped, IndexRange{y, hi});
      y = hi;
    }
    EXPECT_EQ(full, striped) << stripes << " stripes";
  }
}

TEST(GaussianBlur, WorkReportAccumulates) {
  ImageF32 im = random_image(16, 16, 1);
  WorkReport wr;
  (void)gaussian_blur(im, 1.0, &wr);
  EXPECT_GT(wr.pixel_ops, 0u);
  EXPECT_GT(wr.bytes_read, 0u);
  EXPECT_GT(wr.bytes_written, 0u);
}

TEST(Hessian, FlatImageHasZeroHessian) {
  ImageF32 im(16, 16, 42.0f);
  HessianImages h = make_hessian_images(16, 16);
  hessian_rows(im, h, IndexRange{0, 16});
  for (usize i = 0; i < h.xx.size(); ++i) {
    EXPECT_FLOAT_EQ(h.xx.data()[i], 0.0f);
    EXPECT_FLOAT_EQ(h.yy.data()[i], 0.0f);
    EXPECT_FLOAT_EQ(h.xy.data()[i], 0.0f);
  }
}

TEST(Hessian, QuadraticHasConstantSecondDerivative) {
  // f(x, y) = x^2 → f_xx = 2, f_yy = 0, f_xy = 0.
  ImageF32 im(32, 32);
  for (i32 y = 0; y < 32; ++y) {
    for (i32 x = 0; x < 32; ++x) {
      im.at(x, y) = static_cast<f32>(x * x);
    }
  }
  HessianImages h = make_hessian_images(32, 32);
  hessian_rows(im, h, IndexRange{0, 32});
  EXPECT_FLOAT_EQ(h.xx.at(16, 16), 2.0f);
  EXPECT_FLOAT_EQ(h.yy.at(16, 16), 0.0f);
  EXPECT_FLOAT_EQ(h.xy.at(16, 16), 0.0f);
}

TEST(Hessian, MixedTermOnSaddle) {
  // f(x, y) = x*y → f_xy = 1.
  ImageF32 im(32, 32);
  for (i32 y = 0; y < 32; ++y) {
    for (i32 x = 0; x < 32; ++x) {
      im.at(x, y) = static_cast<f32>(x * y);
    }
  }
  HessianImages h = make_hessian_images(32, 32);
  hessian_rows(im, h, IndexRange{10, 20});
  EXPECT_FLOAT_EQ(h.xy.at(16, 15), 1.0f);
}

TEST(Ridgeness, DarkLineGivesPositiveResponse) {
  // A dark vertical line on a bright background: f_xx > 0 across the line.
  ImageF32 im(32, 32, 1000.0f);
  for (i32 y = 0; y < 32; ++y) im.at(16, y) = 0.0f;
  HessianImages h = make_hessian_images(32, 32);
  hessian_rows(im, h, IndexRange{0, 32});
  ImageF32 resp(32, 32);
  ridgeness_rows(h, resp, IndexRange{0, 32});
  EXPECT_GT(resp.at(16, 16), 100.0f);
  EXPECT_NEAR(resp.at(8, 16), 0.0f, 1e-3f);
}

TEST(Ridgeness, BrightLineGivesNoResponse) {
  // A *bright* line has negative second derivative: lambda_max <= 0.
  ImageF32 im(32, 32, 0.0f);
  for (i32 y = 0; y < 32; ++y) im.at(16, y) = 1000.0f;
  HessianImages h = make_hessian_images(32, 32);
  hessian_rows(im, h, IndexRange{0, 32});
  ImageF32 resp(32, 32);
  ridgeness_rows(h, resp, IndexRange{0, 32});
  EXPECT_FLOAT_EQ(resp.at(16, 16), 0.0f);
}

TEST(TemporalDifference, KnownValues) {
  ImageF32 a(2, 2, 10.0f);
  ImageF32 b(2, 2, 4.0f);
  b.at(1, 1) = 25.0f;
  WorkReport wr;
  ImageF32 d = temporal_difference(a, b, &wr);
  EXPECT_FLOAT_EQ(d.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(d.at(1, 1), 15.0f);
  EXPECT_EQ(wr.pixel_ops, 8u);
}

TEST(Bilinear, ExactAtIntegerCoordinates) {
  ImageF32 im = random_image(8, 8, 3);
  for (i32 y = 0; y < 8; ++y) {
    for (i32 x = 0; x < 8; ++x) {
      EXPECT_FLOAT_EQ(bilinear_sample(im, x, y), im.at(x, y));
    }
  }
}

TEST(Bilinear, InterpolatesLinearRamp) {
  ImageF32 im(8, 8);
  for (i32 y = 0; y < 8; ++y) {
    for (i32 x = 0; x < 8; ++x) im.at(x, y) = static_cast<f32>(x);
  }
  EXPECT_NEAR(bilinear_sample(im, 2.5, 3.0), 2.5f, 1e-5f);
  EXPECT_NEAR(bilinear_sample(im, 4.25, 1.7), 4.25f, 1e-5f);
}

TEST(Bicubic, ExactAtIntegerCoordinates) {
  ImageF32 im = random_image(8, 8, 4);
  for (i32 y = 2; y < 6; ++y) {
    for (i32 x = 2; x < 6; ++x) {
      EXPECT_NEAR(bicubic_sample(im, x, y), im.at(x, y), 1e-3f);
    }
  }
}

TEST(Bicubic, ReproducesLinearRampExactly) {
  // Catmull-Rom interpolation is exact for polynomials up to degree 3.
  ImageF32 im(12, 12);
  for (i32 y = 0; y < 12; ++y) {
    for (i32 x = 0; x < 12; ++x) {
      im.at(x, y) = static_cast<f32>(3 * x + 2 * y);
    }
  }
  EXPECT_NEAR(bicubic_sample(im, 5.3, 6.7), 3.0 * 5.3 + 2.0 * 6.7, 1e-3);
}

TEST(ResampleBicubic, IdentityWhenSameSize) {
  ImageF32 im = random_image(16, 16, 5);
  ImageF32 out = resample_bicubic(im, 16, 16, im.full_rect());
  for (i32 y = 4; y < 12; ++y) {
    for (i32 x = 4; x < 12; ++x) {
      EXPECT_NEAR(out.at(x, y), im.at(x, y), 1e-2f);
    }
  }
}

TEST(ResampleBicubic, UpscaleDimensions) {
  ImageF32 im = random_image(8, 8, 6);
  ImageF32 out = resample_bicubic(im, 32, 24, Rect{2, 2, 4, 4});
  EXPECT_EQ(out.width(), 32);
  EXPECT_EQ(out.height(), 24);
}

TEST(TranslateBilinear, IntegerShift) {
  ImageF32 im = random_image(16, 16, 7);
  ImageF32 out = translate_bilinear(im, 2.0, 3.0);
  // out(x, y) samples in(x + dx, y + dy).
  for (i32 y = 0; y < 12; ++y) {
    for (i32 x = 0; x < 13; ++x) {
      EXPECT_FLOAT_EQ(out.at(x, y), im.at(x + 2, y + 3));
    }
  }
}

TEST(TranslateBilinear, ZeroShiftIsIdentity) {
  ImageF32 im = random_image(10, 10, 8);
  ImageF32 out = translate_bilinear(im, 0.0, 0.0);
  EXPECT_EQ(im, out);
}

TEST(TranslateBilinear, RoundTripApproximatelyIdentity) {
  // Smooth image: +d then -d is near-identity away from the borders.
  ImageF32 noise = random_image(24, 24, 9);
  ImageF32 im = gaussian_blur(noise, 3.0);
  ImageF32 fwd = translate_bilinear(im, 0.4, -0.3);
  ImageF32 back = translate_bilinear(fwd, -0.4, 0.3);
  for (i32 y = 4; y < 20; ++y) {
    for (i32 x = 4; x < 20; ++x) {
      EXPECT_NEAR(back.at(x, y), im.at(x, y), 8.0f);
    }
  }
}

class StripeEquivalence : public ::testing::TestWithParam<i32> {};

TEST_P(StripeEquivalence, HessianAndRidgenessRows) {
  const i32 stripes = GetParam();
  ImageF32 im = gaussian_blur(random_image(40, 40, 11), 1.5);
  HessianImages h_full = make_hessian_images(40, 40);
  hessian_rows(im, h_full, IndexRange{0, 40});
  ImageF32 r_full(40, 40);
  ridgeness_rows(h_full, r_full, IndexRange{0, 40});

  HessianImages h_str = make_hessian_images(40, 40);
  ImageF32 r_str(40, 40);
  i32 y = 0;
  for (i32 s = 0; s < stripes; ++s) {
    i32 hi = (s == stripes - 1) ? 40 : y + 40 / stripes;
    hessian_rows(im, h_str, IndexRange{y, hi});
    ridgeness_rows(h_str, r_str, IndexRange{y, hi});
    y = hi;
  }
  EXPECT_EQ(r_full, r_str);
}

INSTANTIATE_TEST_SUITE_P(Stripes, StripeEquivalence,
                         ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace tc::img
