#include "imaging/image.hpp"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace tc::img {
namespace {

TEST(Image, DefaultIsEmpty) {
  ImageF32 im;
  EXPECT_TRUE(im.empty());
  EXPECT_EQ(im.width(), 0);
  EXPECT_EQ(im.height(), 0);
  EXPECT_EQ(im.bytes(), 0u);
}

TEST(Image, ConstructionWithFill) {
  ImageU16 im(4, 3, 7);
  EXPECT_EQ(im.size(), 12u);
  EXPECT_EQ(im.bytes(), 24u);
  for (i32 y = 0; y < 3; ++y) {
    for (i32 x = 0; x < 4; ++x) EXPECT_EQ(im.at(x, y), 7);
  }
}

TEST(Image, RowMajorLayout) {
  ImageF32 im(3, 2);
  im.at(2, 1) = 5.0f;
  EXPECT_EQ(im.data()[1 * 3 + 2], 5.0f);
  EXPECT_EQ(im.row(1)[2], 5.0f);
}

TEST(Image, ClampedAccess) {
  ImageF32 im(2, 2);
  im.at(0, 0) = 1.0f;
  im.at(1, 1) = 4.0f;
  EXPECT_EQ(im.at_clamped(-5, -5), 1.0f);
  EXPECT_EQ(im.at_clamped(10, 10), 4.0f);
}

TEST(Image, CropCopiesSubRect) {
  ImageF32 im(5, 5);
  for (i32 y = 0; y < 5; ++y) {
    for (i32 x = 0; x < 5; ++x) im.at(x, y) = static_cast<f32>(y * 5 + x);
  }
  ImageF32 c = im.crop(Rect{1, 2, 3, 2});
  ASSERT_EQ(c.width(), 3);
  ASSERT_EQ(c.height(), 2);
  EXPECT_EQ(c.at(0, 0), im.at(1, 2));
  EXPECT_EQ(c.at(2, 1), im.at(3, 3));
}

TEST(Image, CropClampsToBounds) {
  ImageF32 im(4, 4, 1.0f);
  ImageF32 c = im.crop(Rect{2, 2, 10, 10});
  EXPECT_EQ(c.width(), 2);
  EXPECT_EQ(c.height(), 2);
}

TEST(Image, EqualityOperator) {
  ImageU16 a(2, 2, 3);
  ImageU16 b(2, 2, 3);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 4;
  EXPECT_FALSE(a == b);
}

TEST(Image, ConversionRoundTrip) {
  ImageU16 a(3, 3);
  for (usize i = 0; i < a.size(); ++i) a.data()[i] = static_cast<u16>(i * 100);
  ImageF32 f = to_f32(a);
  ImageU16 b = to_u16(f);
  EXPECT_EQ(a, b);
}

TEST(Image, ToU16Clamps) {
  ImageF32 f(1, 1);
  f.at(0, 0) = 1.0e6f;
  EXPECT_EQ(to_u16(f).at(0, 0), 65535);
  f.at(0, 0) = -5.0f;
  EXPECT_EQ(to_u16(f).at(0, 0), 0);
}

TEST(Image, WritePgmProducesValidHeader) {
  ImageU16 im(8, 4);
  for (usize i = 0; i < im.size(); ++i) im.data()[i] = static_cast<u16>(i);
  const std::string path = testing::TempDir() + "tc_img_test.pgm";
  ASSERT_TRUE(write_pgm(im, path));
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  i32 w = 0;
  i32 h = 0;
  i32 maxval = 0;
  f >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 8);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  std::remove(path.c_str());
}

TEST(Image, WritePgmFailsOnBadPath) {
  ImageU16 im(2, 2);
  EXPECT_FALSE(write_pgm(im, "/nonexistent-dir-xyz/out.pgm"));
}

TEST(Image, FullRect) {
  ImageF32 im(6, 9);
  EXPECT_EQ(im.full_rect(), (Rect{0, 0, 6, 9}));
}

}  // namespace
}  // namespace tc::img
