#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

ImageF32 noisy_frame(i32 size, u64 seed, f32 sigma = 50.0f) {
  ImageF32 im(size, size, 10000.0f);
  Pcg32 rng(seed);
  for (usize i = 0; i < im.size(); ++i) {
    im.data()[i] += static_cast<f32>(rng.normal(0.0, sigma));
  }
  return im;
}

RegistrationParams reg_params() {
  RegistrationParams p;
  p.max_displacement = 20.0;
  p.max_distance_drift = 5.0;
  p.motion_window = 8;
  p.min_motion_energy = 1.0f;
  return p;
}

TEST(Registration, RecoversPureTranslation) {
  // The current frame is the previous frame shifted by (3, 4) plus fresh
  // noise; the image-based SAD refinement must stay on the true shift.
  ImageF32 f0 = gaussian_blur(noisy_frame(96, 1, 400.0f), 1.5);
  ImageF32 f1 = translate_bilinear(f0, -3.0, -4.0);
  Pcg32 extra(99);
  for (usize i = 0; i < f1.size(); ++i) {
    f1.data()[i] += static_cast<f32>(extra.normal(0.0, 20.0));
  }
  Couple prev{Point2f{30, 40}, Point2f{60, 40}, 1.0};
  Couple cur{Point2f{33, 44}, Point2f{63, 44}, 1.0};
  RegistrationResult r = register_couple(prev, cur, f0, f1, reg_params());
  EXPECT_TRUE(r.success);
  EXPECT_NEAR(r.dx, 3.0, 0.6);
  EXPECT_NEAR(r.dy, 4.0, 0.6);
  EXPECT_NEAR(r.rotation, 0.0, 1e-9);
}

TEST(Registration, RecoversRotation) {
  ImageF32 f0 = noisy_frame(96, 3);
  ImageF32 f1 = noisy_frame(96, 4);
  Couple prev{Point2f{30, 48}, Point2f{60, 48}, 1.0};
  // Rotate the couple by 0.1 rad around its centre.
  f64 angle = 0.1;
  f64 cx = 45.0;
  f64 cy = 48.0;
  auto rot = [&](Point2f p) {
    f64 rx = p.x - cx;
    f64 ry = p.y - cy;
    return Point2f{cx + rx * std::cos(angle) - ry * std::sin(angle),
                   cy + rx * std::sin(angle) + ry * std::cos(angle)};
  };
  Couple cur{rot(prev.a), rot(prev.b), 1.0};
  RegistrationResult r = register_couple(prev, cur, f0, f1, reg_params());
  EXPECT_TRUE(r.success);
  EXPECT_NEAR(r.rotation, 0.1, 1e-6);
  // The SAD refinement searches +-1.5 px around the marker-based estimate;
  // on uncorrelated noise it may wander within that range.
  EXPECT_NEAR(r.dx, 0.0, 1.6);
}

TEST(Registration, HandlesSwappedEndpoints) {
  ImageF32 f0 = gaussian_blur(noisy_frame(96, 5, 400.0f), 1.5);
  ImageF32 f1 = translate_bilinear(f0, -1.0, -2.0);
  Pcg32 extra(98);
  for (usize i = 0; i < f1.size(); ++i) {
    f1.data()[i] += static_cast<f32>(extra.normal(0.0, 20.0));
  }
  Couple prev{Point2f{30, 40}, Point2f{60, 40}, 1.0};
  // Same couple, endpoints listed in the opposite order, shifted by (1, 2).
  Couple cur{Point2f{61, 42}, Point2f{31, 42}, 1.0};
  RegistrationResult r = register_couple(prev, cur, f0, f1, reg_params());
  EXPECT_TRUE(r.success);
  EXPECT_NEAR(r.dx, 1.0, 0.6);
  EXPECT_NEAR(r.dy, 2.0, 0.6);
}

TEST(Registration, RejectsExcessiveDisplacement) {
  ImageF32 f0 = noisy_frame(96, 7);
  ImageF32 f1 = noisy_frame(96, 8);
  Couple prev{Point2f{10, 10}, Point2f{40, 10}, 1.0};
  Couple cur{Point2f{50, 60}, Point2f{80, 60}, 1.0};
  RegistrationResult r = register_couple(prev, cur, f0, f1, reg_params());
  EXPECT_FALSE(r.success);
}

TEST(Registration, RejectsDistanceDrift) {
  ImageF32 f0 = noisy_frame(96, 9);
  ImageF32 f1 = noisy_frame(96, 10);
  Couple prev{Point2f{30, 40}, Point2f{60, 40}, 1.0};
  Couple cur{Point2f{30, 40}, Point2f{70, 40}, 1.0};  // grew by 10 px
  RegistrationResult r = register_couple(prev, cur, f0, f1, reg_params());
  EXPECT_FALSE(r.success);
}

TEST(Registration, RejectsStaticScene) {
  // Identical frames have zero temporal difference: the motion criterion
  // must flag the couple as not-live (e.g. a burned-in artifact).
  ImageF32 f0 = noisy_frame(96, 11);
  Couple prev{Point2f{30, 40}, Point2f{60, 40}, 1.0};
  Couple cur{Point2f{31, 40}, Point2f{61, 40}, 1.0};
  RegistrationResult r = register_couple(prev, cur, f0, f0, reg_params());
  EXPECT_FALSE(r.success);
}

TEST(Registration, WorkScalesWithMotionWindow) {
  ImageF32 f0 = noisy_frame(96, 12);
  ImageF32 f1 = noisy_frame(96, 13);
  Couple prev{Point2f{48, 48}, Point2f{68, 48}, 1.0};
  Couple cur{Point2f{49, 48}, Point2f{69, 48}, 1.0};
  RegistrationParams small = reg_params();
  small.motion_window = 4;
  RegistrationParams big = reg_params();
  big.motion_window = 16;
  RegistrationResult rs = register_couple(prev, cur, f0, f1, small);
  RegistrationResult rb = register_couple(prev, cur, f0, f1, big);
  // Both the motion-energy window and the SAD refinement patches grow with
  // the configured window (the refinement patch scales with window/3).
  EXPECT_GT(rb.work.pixel_ops, rs.work.pixel_ops * 5 / 4);
}

TEST(Registration, MarkersNearBorderStillWork) {
  ImageF32 f0 = noisy_frame(96, 14);
  ImageF32 f1 = noisy_frame(96, 15);
  Couple prev{Point2f{2, 2}, Point2f{2, 32}, 1.0};
  Couple cur{Point2f{3, 3}, Point2f{3, 33}, 1.0};
  RegistrationResult r = register_couple(prev, cur, f0, f1, reg_params());
  EXPECT_TRUE(r.success);
}

}  // namespace
}  // namespace tc::img
