#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

/// Frame with a dark curved wire between two endpoints: the wire follows a
/// parabolic bulge of height `bulge` perpendicular to the chord.
ImageF32 wire_image(i32 size, Point2f a, Point2f b, f64 bulge, f32 depth,
                    u64 seed = 1, f32 noise = 30.0f) {
  ImageF32 im(size, size, 10000.0f);
  f64 dx = b.x - a.x;
  f64 dy = b.y - a.y;
  f64 len = std::hypot(dx, dy);
  f64 nx = -dy / len;
  f64 ny = dx / len;
  const i32 steps = static_cast<i32>(len * 3.0);
  for (i32 s = 0; s <= steps; ++s) {
    f64 t = static_cast<f64>(s) / steps;
    f64 off = bulge * 4.0 * t * (1.0 - t);  // parabola, max at mid-chord
    f64 px = a.x + t * dx + off * nx;
    f64 py = a.y + t * dy + off * ny;
    for (i32 oy = -2; oy <= 2; ++oy) {
      for (i32 ox = -2; ox <= 2; ++ox) {
        i32 x = static_cast<i32>(px) + ox;
        i32 y = static_cast<i32>(py) + oy;
        if (!im.in_bounds(x, y)) continue;
        f64 d2 = (x - px) * (x - px) + (y - py) * (y - py);
        f32 v = static_cast<f32>(depth * std::exp(-d2 / 1.5));
        im.at(x, y) = std::min(im.at(x, y), 10000.0f - v);
      }
    }
  }
  Pcg32 rng(seed);
  for (usize i = 0; i < im.size(); ++i) {
    im.data()[i] += static_cast<f32>(rng.normal(0.0, noise));
  }
  return im;
}

GuideWireParams gw_params() {
  GuideWireParams p;
  p.min_ridgeness = 50.0f;
  return p;
}

TEST(GuideWire, FindsStraightWire) {
  Point2f a{30, 64};
  Point2f b{98, 64};
  ImageF32 im = wire_image(128, a, b, 0.0, 4000.0f);
  RidgeResult ridge = ridge_detect(im, im.full_rect(), RidgeParams{});
  Couple couple{a, b, 1.0};
  GuideWireResult r = extract_guidewire(ridge, couple, gw_params());
  EXPECT_TRUE(r.found);
  EXPECT_GT(r.mean_ridgeness, 50.0);
  EXPECT_EQ(r.path.size(), static_cast<usize>(gw_params().path_samples));
}

TEST(GuideWire, FollowsCurvedWire) {
  Point2f a{30, 64};
  Point2f b{98, 64};
  const f64 bulge = 4.0;
  ImageF32 im = wire_image(128, a, b, bulge, 4000.0f);
  RidgeResult ridge = ridge_detect(im, im.full_rect(), RidgeParams{});
  Couple couple{a, b, 1.0};
  GuideWireResult r = extract_guidewire(ridge, couple, gw_params());
  ASSERT_TRUE(r.found);
  // The mid-path sample should have moved towards the bulge (+y: the
  // normal of the a->b chord points in the +y direction).
  Point2f mid = r.path[r.path.size() / 2];
  EXPECT_GT(mid.y, 65.0);
  EXPECT_LT(mid.y, 64.0 + 2.5 * bulge);
}

TEST(GuideWire, RejectsNoWire) {
  ImageF32 im(128, 128, 10000.0f);
  Pcg32 rng(2);
  for (usize i = 0; i < im.size(); ++i) {
    im.data()[i] += static_cast<f32>(rng.normal(0.0, 30.0));
  }
  RidgeResult ridge = ridge_detect(im, im.full_rect(), RidgeParams{});
  Couple couple{Point2f{30, 64}, Point2f{98, 64}, 1.0};
  GuideWireResult r = extract_guidewire(ridge, couple, gw_params());
  EXPECT_FALSE(r.found);
}

TEST(GuideWire, DegenerateCoupleReturnsNotFound) {
  ImageF32 im(64, 64, 100.0f);
  RidgeResult ridge = ridge_detect(im, im.full_rect(), RidgeParams{});
  Couple couple{Point2f{32, 32}, Point2f{32, 32}, 1.0};
  GuideWireResult r = extract_guidewire(ridge, couple, gw_params());
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.path.empty());
}

TEST(GuideWire, IterationsAreDataDependent) {
  Point2f a{30, 64};
  Point2f b{98, 64};
  ImageF32 straight = wire_image(128, a, b, 0.0, 4000.0f, 3);
  ImageF32 curved = wire_image(128, a, b, 5.0, 4000.0f, 3);
  RidgeResult rs = ridge_detect(straight, straight.full_rect(), RidgeParams{});
  RidgeResult rc = ridge_detect(curved, curved.full_rect(), RidgeParams{});
  Couple couple{a, b, 1.0};
  GuideWireResult gs = extract_guidewire(rs, couple, gw_params());
  GuideWireResult gc = extract_guidewire(rc, couple, gw_params());
  // The curved wire needs at least as many refinement sweeps.
  EXPECT_GE(gc.iterations, gs.iterations);
  EXPECT_GT(gc.work.feature_ops, 0u);
}

TEST(GuideWire, IterationCapRespected) {
  Point2f a{30, 64};
  Point2f b{98, 64};
  ImageF32 im = wire_image(128, a, b, 6.0, 4000.0f, 4, 200.0f);
  RidgeResult ridge = ridge_detect(im, im.full_rect(), RidgeParams{});
  GuideWireParams p = gw_params();
  p.max_iterations = 3;
  GuideWireResult r = extract_guidewire(ridge, {a, b, 1.0}, p);
  EXPECT_LE(r.iterations, 3);
}

TEST(GuideWire, ThinWireHasLowOffPathRatio) {
  Point2f a{30, 64};
  Point2f b{98, 64};
  ImageF32 im = wire_image(128, a, b, 0.0, 4000.0f, 6);
  RidgeResult ridge = ridge_detect(im, im.full_rect(), RidgeParams{});
  GuideWireResult r = extract_guidewire(ridge, {a, b, 1.0}, gw_params());
  EXPECT_TRUE(r.found);
  EXPECT_LT(r.off_path_ratio, 0.5);
}

TEST(GuideWire, WideVesselRejectedByWidthCheck) {
  // A vessel-like dark line (Gaussian cross profile, half-width 3.5 px)
  // joining the endpoints is a strong ridge, but the response has *not*
  // dropped off 2.5 px to the side — the wire-width check must reject it.
  ImageF32 im(128, 128, 10000.0f);
  for (i32 x = 10; x <= 118; ++x) {
    for (i32 y = 50; y <= 78; ++y) {
      f64 d = static_cast<f64>(y) - 64.0;
      im.at(x, y) -= static_cast<f32>(
          4000.0 * std::exp(-0.5 * d * d / (3.5 * 3.5)));
    }
  }
  Pcg32 rng(7);
  for (usize i = 0; i < im.size(); ++i) {
    im.data()[i] += static_cast<f32>(rng.normal(0.0, 30.0));
  }
  RidgeResult ridge = ridge_detect(im, im.full_rect(), RidgeParams{});
  Couple couple{Point2f{30, 64}, Point2f{98, 64}, 1.0};
  GuideWireResult r = extract_guidewire(ridge, couple, gw_params());
  EXPECT_GT(r.off_path_ratio, 0.45);
  EXPECT_FALSE(r.found);
}

TEST(GuideWire, PathEndpointsAreTheMarkers) {
  Point2f a{30, 64};
  Point2f b{98, 64};
  ImageF32 im = wire_image(128, a, b, 2.0, 4000.0f);
  RidgeResult ridge = ridge_detect(im, im.full_rect(), RidgeParams{});
  GuideWireResult r = extract_guidewire(ridge, {a, b, 1.0}, gw_params());
  ASSERT_FALSE(r.path.empty());
  EXPECT_NEAR(r.path.front().x, a.x, 1e-9);
  EXPECT_NEAR(r.path.front().y, a.y, 1e-9);
  EXPECT_NEAR(r.path.back().x, b.x, 1e-9);
  EXPECT_NEAR(r.path.back().y, b.y, 1e-9);
}

}  // namespace
}  // namespace tc::img
