#include "imaging/synthetic.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace tc::img {
namespace {

SequenceParams small_params(u64 seed = 1) {
  SequenceParams p;
  p.width = 128;
  p.height = 128;
  p.frames = 60;
  p.seed = seed;
  p.marker_distance_px = 24.0;
  p.marker_radius_px = 2.5;
  p.motion.cardiac_amplitude_px = 5.0;
  p.motion.breathing_amplitude_px = 3.0;
  p.contrast_in_frame = 20;
  p.contrast_out_frame = 45;
  return p;
}

TEST(Synthetic, RenderIsDeterministicPerSeedAndFrame) {
  AngioSequence a(small_params(5));
  AngioSequence b(small_params(5));
  EXPECT_EQ(a.render(7), b.render(7));
  EXPECT_EQ(a.render(30), b.render(30));
}

TEST(Synthetic, FramesAreIndependentlyRenderable) {
  // Rendering frame 10 directly equals rendering after frames 0..9.
  AngioSequence a(small_params(6));
  ImageU16 direct = a.render(10);
  for (i32 t = 0; t < 10; ++t) (void)a.render(t);
  EXPECT_EQ(a.render(10), direct);
}

TEST(Synthetic, DifferentSeedsProduceDifferentFrames) {
  AngioSequence a(small_params(1));
  AngioSequence b(small_params(2));
  EXPECT_FALSE(a.render(0) == b.render(0));
}

TEST(Synthetic, DifferentFramesDiffer) {
  AngioSequence a(small_params(3));
  EXPECT_FALSE(a.render(0) == a.render(1));
}

TEST(Synthetic, TruthMarkerDistanceMatchesPrior) {
  SequenceParams p = small_params(4);
  AngioSequence seq(p);
  for (i32 t = 0; t < p.frames; t += 5) {
    FrameTruth tr = seq.truth(t);
    f64 d = std::hypot(tr.marker_b.x - tr.marker_a.x,
                       tr.marker_b.y - tr.marker_a.y);
    EXPECT_NEAR(d, p.marker_distance_px, 1e-9);
  }
}

TEST(Synthetic, ContrastProfileRampsAndWashesOut) {
  SequenceParams p = small_params(7);
  AngioSequence seq(p);
  EXPECT_DOUBLE_EQ(seq.truth(0).contrast_level, 0.0);
  EXPECT_DOUBLE_EQ(seq.truth(p.contrast_in_frame - 1).contrast_level, 0.0);
  EXPECT_NEAR(seq.truth(p.contrast_in_frame + 15).contrast_level, 1.0, 1e-9);
  EXPECT_LT(seq.truth(p.contrast_out_frame + 10).contrast_level, 0.7);
  EXPECT_GT(seq.truth(p.contrast_in_frame + 15).contrast_level,
            seq.truth(p.contrast_out_frame + 14).contrast_level);
}

TEST(Synthetic, MotionIsPeriodicAndBounded) {
  SequenceParams p = small_params(8);
  p.motion.drift_px_per_frame = 0.0;
  AngioSequence seq(p);
  f64 max_step = 0.0;
  for (i32 t = 1; t < p.frames; ++t) {
    FrameTruth tr = seq.truth(t);
    max_step = std::max(max_step, std::hypot(tr.motion_dx, tr.motion_dy));
  }
  EXPECT_GT(max_step, 0.1);  // the stent does move
  // Frame-to-frame displacement is bounded by the motion amplitudes.
  EXPECT_LT(max_step, 2.0 * (p.motion.cardiac_amplitude_px +
                             p.motion.breathing_amplitude_px));
}

TEST(Synthetic, DropoutFlagsRespectProbability) {
  SequenceParams p = small_params(9);
  p.frames = 2000;
  p.marker_dropout_prob = 0.1;
  AngioSequence seq(p);
  i32 hidden = 0;
  for (i32 t = 0; t < p.frames; ++t) {
    if (!seq.truth(t).markers_visible) ++hidden;
  }
  EXPECT_NEAR(static_cast<f64>(hidden) / p.frames, 0.1, 0.03);
}

TEST(Synthetic, ZeroDropoutMeansAlwaysVisible) {
  SequenceParams p = small_params(10);
  p.marker_dropout_prob = 0.0;
  AngioSequence seq(p);
  for (i32 t = 0; t < p.frames; ++t) {
    EXPECT_TRUE(seq.truth(t).markers_visible);
  }
}

TEST(Synthetic, MarkersAreDarkerThanSurroundings) {
  SequenceParams p = small_params(11);
  AngioSequence seq(p);
  ImageU16 frame = seq.render(5);
  FrameTruth tr = seq.truth(5);
  auto sample_mean = [&](f64 cx, f64 cy, i32 r) {
    f64 acc = 0.0;
    i32 n = 0;
    for (i32 dy = -r; dy <= r; ++dy) {
      for (i32 dx = -r; dx <= r; ++dx) {
        i32 x = static_cast<i32>(cx) + dx;
        i32 y = static_cast<i32>(cy) + dy;
        if (frame.in_bounds(x, y)) {
          acc += frame.at(x, y);
          ++n;
        }
      }
    }
    return acc / n;
  };
  f64 marker = sample_mean(tr.marker_a.x, tr.marker_a.y, 1);
  f64 nearby = sample_mean(tr.marker_a.x + 20, tr.marker_a.y + 20, 3);
  EXPECT_LT(marker, nearby * 0.8);
}

TEST(Synthetic, ContrastIncreasesVesselOpacityInImage) {
  // The pre-bolus and plateau frames should differ much more than two
  // adjacent pre-bolus frames (vessels appearing).
  SequenceParams p = small_params(12);
  p.motion.cardiac_amplitude_px = 0.0;
  p.motion.breathing_amplitude_px = 0.0;
  p.motion.drift_px_per_frame = 0.0;
  AngioSequence seq(p);
  auto diff = [&](i32 t0, i32 t1) {
    ImageU16 a = seq.render(t0);
    ImageU16 b = seq.render(t1);
    f64 acc = 0.0;
    for (usize i = 0; i < a.size(); ++i) {
      acc += std::fabs(static_cast<f64>(a.data()[i]) -
                       static_cast<f64>(b.data()[i]));
    }
    return acc / static_cast<f64>(a.size());
  };
  f64 noise_only = diff(2, 3);
  f64 bolus = diff(2, 40);
  EXPECT_GT(bolus, noise_only * 1.15);
}

TEST(Synthetic, DoseControlsNoise) {
  SequenceParams lo = small_params(13);
  lo.dose_photons = 200.0;
  SequenceParams hi = small_params(13);
  hi.dose_photons = 5000.0;
  AngioSequence a(lo);
  AngioSequence b(hi);
  // Estimate noise as the mean |frame(t) - frame(t+1)| with motion frozen.
  auto noise = [](AngioSequence& s) {
    ImageU16 f0 = s.render(0);
    ImageU16 f1 = s.render(1);
    f64 acc = 0.0;
    for (usize i = 0; i < f0.size(); ++i) {
      acc += std::fabs(static_cast<f64>(f0.data()[i]) -
                       static_cast<f64>(f1.data()[i]));
    }
    return acc / static_cast<f64>(f0.size());
  };
  EXPECT_GT(noise(a), 2.0 * noise(b));
}

class TruthConsistency : public ::testing::TestWithParam<u64> {};

TEST_P(TruthConsistency, MotionDeltaMatchesMarkerDelta) {
  SequenceParams p = small_params(GetParam());
  AngioSequence seq(p);
  for (i32 t = 1; t < 20; ++t) {
    FrameTruth cur = seq.truth(t);
    FrameTruth prev = seq.truth(t - 1);
    f64 center_dx = 0.5 * (cur.marker_a.x + cur.marker_b.x) -
                    0.5 * (prev.marker_a.x + prev.marker_b.x);
    // motion_dx tracks the stent centre shift; the marker centre also
    // includes the couple's slow rotation, so allow a small tolerance.
    EXPECT_NEAR(center_dx, cur.motion_dx, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruthConsistency,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace tc::img
