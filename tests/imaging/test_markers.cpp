#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

/// Bright background with dark disks stamped at the given positions.
ImageF32 blob_image(i32 size, std::vector<Point2f> blobs, f32 depth,
                    f64 radius, u64 noise_seed = 0, f32 noise_sigma = 0.0f) {
  ImageF32 im(size, size, 20000.0f);
  for (const Point2f& b : blobs) {
    for (i32 y = 0; y < size; ++y) {
      for (i32 x = 0; x < size; ++x) {
        f64 d = std::hypot(x - b.x, y - b.y);
        f64 edge = 1.0 / (1.0 + std::exp((d - radius) / 0.6));
        im.at(x, y) -= static_cast<f32>(depth * edge);
      }
    }
  }
  if (noise_sigma > 0.0f) {
    Pcg32 rng(noise_seed);
    for (usize i = 0; i < im.size(); ++i) {
      im.data()[i] += static_cast<f32>(rng.normal(0.0, noise_sigma));
    }
  }
  return im;
}

MarkerParams test_params() {
  MarkerParams p;
  p.decimation = 4;
  p.blob_sigma = 0.9;
  p.background_sigma = 2.2;
  p.detect_threshold = 800.0f;
  return p;
}

TEST(Markers, FindsTwoCleanBlobs) {
  ImageF32 im = blob_image(128, {{40.0, 40.0}, {88.0, 80.0}}, 9000.0f, 4.0);
  MarkerResult r = extract_markers(im, im.full_rect(), test_params(), nullptr);
  ASSERT_GE(r.candidates.size(), 2u);
  // The two strongest candidates are at the blobs, sub-pixel accurate.
  f64 d0 = std::min(std::hypot(r.candidates[0].position.x - 40.0,
                               r.candidates[0].position.y - 40.0),
                    std::hypot(r.candidates[0].position.x - 88.0,
                               r.candidates[0].position.y - 80.0));
  f64 d1 = std::min(std::hypot(r.candidates[1].position.x - 40.0,
                               r.candidates[1].position.y - 40.0),
                    std::hypot(r.candidates[1].position.x - 88.0,
                               r.candidates[1].position.y - 80.0));
  EXPECT_LT(d0, 1.5);
  EXPECT_LT(d1, 1.5);
}

TEST(Markers, EmptyImageYieldsNoCandidates) {
  ImageF32 im(128, 128, 20000.0f);
  MarkerResult r = extract_markers(im, im.full_rect(), test_params(), nullptr);
  EXPECT_TRUE(r.candidates.empty());
}

TEST(Markers, ThresholdFiltersWeakBlobs) {
  ImageF32 im = blob_image(128, {{64.0, 64.0}}, 2000.0f, 4.0);
  MarkerParams lo = test_params();
  lo.detect_threshold = 300.0f;
  MarkerParams hi = test_params();
  hi.detect_threshold = 100000.0f;
  EXPECT_FALSE(extract_markers(im, im.full_rect(), lo, nullptr)
                   .candidates.empty());
  EXPECT_TRUE(extract_markers(im, im.full_rect(), hi, nullptr)
                  .candidates.empty());
}

TEST(Markers, CandidatesSortedByScore) {
  ImageF32 im = blob_image(128, {{30.0, 30.0}, {90.0, 90.0}}, 9000.0f, 4.0,
                           42, 300.0f);
  MarkerResult r = extract_markers(im, im.full_rect(), test_params(), nullptr);
  for (usize i = 1; i < r.candidates.size(); ++i) {
    EXPECT_GE(r.candidates[i - 1].score, r.candidates[i].score);
  }
}

TEST(Markers, MaxCandidatesCapRespected) {
  // Heavy noise produces many detections; the cap must hold.
  ImageF32 im = blob_image(128, {}, 0.0f, 1.0, 7, 3000.0f);
  MarkerParams p = test_params();
  p.detect_threshold = 100.0f;
  p.max_candidates = 10;
  MarkerResult r = extract_markers(im, im.full_rect(), p, nullptr);
  EXPECT_LE(r.candidates.size(), 10u);
}

TEST(Markers, RoiRestrictsSearch) {
  ImageF32 im = blob_image(128, {{30.0, 30.0}, {90.0, 90.0}}, 9000.0f, 4.0);
  MarkerResult r =
      extract_markers(im, Rect{64, 64, 64, 64}, test_params(), nullptr);
  ASSERT_FALSE(r.candidates.empty());
  for (const MarkerCandidate& c : r.candidates) {
    EXPECT_GE(c.position.x, 58.0);  // refine window may move slightly
    EXPECT_GE(c.position.y, 58.0);
  }
}

TEST(Markers, RidgeSuppressionRemovesLineCandidates) {
  // A dark line plus one blob; with ridge info the line candidates are
  // penalized away while the blob survives.
  ImageF32 im = blob_image(128, {{40.0, 64.0}}, 9000.0f, 4.0);
  for (i32 y = 0; y < 128; ++y) {
    for (i32 x = 84; x <= 88; ++x) im.at(x, y) -= 7000.0f;
  }
  RidgeParams rp;
  RidgeResult ridge = ridge_detect(im, im.full_rect(), rp);
  MarkerParams p = test_params();
  MarkerResult with = extract_markers(im, im.full_rect(), p, &ridge);
  MarkerResult without = extract_markers(im, im.full_rect(), p, nullptr);
  EXPECT_LT(with.candidates.size(), without.candidates.size());
  // The blob remains the top candidate with ridge suppression.
  ASSERT_FALSE(with.candidates.empty());
  EXPECT_NEAR(with.candidates[0].position.x, 40.0, 2.0);
}

TEST(Markers, WorkScalesWithRoiArea) {
  ImageF32 im = blob_image(128, {{64.0, 64.0}}, 9000.0f, 4.0);
  MarkerResult full =
      extract_markers(im, im.full_rect(), test_params(), nullptr);
  MarkerResult quarter =
      extract_markers(im, Rect{32, 32, 64, 64}, test_params(), nullptr);
  EXPECT_LT(quarter.work.pixel_ops, full.work.pixel_ops);
  EXPECT_LT(quarter.work.input_bytes, full.work.input_bytes);
}

TEST(Markers, SubRectUnionMatchesFullForAlignedSplit) {
  // Splitting the ROI at a cell-aligned row produces the same candidate set
  // (NMS cells are anchored to the absolute grid).
  ImageF32 im = blob_image(128, {{40.0, 30.0}, {80.0, 100.0}}, 9000.0f, 4.0,
                           11, 200.0f);
  MarkerParams p = test_params();
  MarkerResult full = extract_markers(im, im.full_rect(), p, nullptr);

  const i32 d = p.decimation;
  const i32 cell_px = p.nms_cell * d;  // full-res pixels per NMS cell
  const i32 split = (128 / 2 / cell_px) * cell_px;
  MarkerResult top = extract_markers(im, Rect{0, 0, 128, split}, p, nullptr);
  MarkerResult bottom =
      extract_markers(im, Rect{0, split, 128, 128 - split}, p, nullptr);
  EXPECT_EQ(full.candidates.size(),
            top.candidates.size() + bottom.candidates.size());
}

TEST(Markers, RefinementAchievesSubpixelAccuracy) {
  for (f64 frac : {0.0, 0.25, 0.5}) {
    ImageF32 im = blob_image(128, {{64.0 + frac, 64.0}}, 9000.0f, 4.0);
    MarkerResult r =
        extract_markers(im, im.full_rect(), test_params(), nullptr);
    ASSERT_FALSE(r.candidates.empty());
    EXPECT_NEAR(r.candidates[0].position.x, 64.0 + frac, 0.5) << frac;
    EXPECT_NEAR(r.candidates[0].position.y, 64.0, 0.5) << frac;
  }
}

}  // namespace
}  // namespace tc::img
