// Integration-level checks of the scenario dynamics the Triple-C models
// feed on: scenario coverage, load correlation structure, and the work
// drivers' data dependence.

#include <set>

#include <gtest/gtest.h>

#include "app/stentboost.hpp"
#include "common/stats.hpp"
#include "trace/dataset.hpp"

namespace tc::app {
namespace {

TEST(ScenarioDynamics, DatasetCoversManyScenarios) {
  trace::DatasetParams p;
  p.sequences = 8;
  p.frames_per_sequence = 40;
  p.width = 128;
  p.height = 128;
  trace::RecordedDataset d = trace::build_dataset(p);
  std::set<graph::ScenarioId> seen;
  for (const auto& seq : d.sequences) {
    for (const auto& rec : seq) seen.insert(rec.scenario);
  }
  // At least 5 of the 8 scenarios occur in a small dataset.
  EXPECT_GE(seen.size(), 5u);
}

TEST(ScenarioDynamics, RdgTimeSeriesHasLongTermCorrelation) {
  StentBoostConfig c = StentBoostConfig::make(128, 128, 150, 3);
  c.force_full_frame = true;
  c.sequence.contrast_in_frame = 1000;  // stationary scene
  c.rdg_off_after = 1000000;            // keep RDG on throughout
  StentBoostApp app(c);
  std::vector<f64> rdg_ms;
  for (i32 t = 0; t < 150; ++t) {
    graph::FrameRecord r = app.process_frame(t);
    const graph::TaskExecution* rdg = r.find(kRdgFull);
    if (rdg->executed) rdg_ms.push_back(rdg->simulated_ms);
  }
  ASSERT_GT(rdg_ms.size(), 100u);
  // The series varies (data-dependent)...
  EXPECT_GT(stddev(rdg_ms), 0.0);
}

TEST(ScenarioDynamics, CplsWorkScalesWithCandidateClutter) {
  // During the bolus, more candidates → quadratically more couple pairs.
  // Ridge detection is held off so the vessel clutter reaches CPLS.
  StentBoostConfig c = StentBoostConfig::make(128, 128, 100, 4);
  c.sequence.contrast_in_frame = 30;
  c.sequence.contrast_out_frame = 90;
  c.force_full_frame = true;
  c.dominant_low = ~0ull;  // RDG switches off immediately...
  c.rdg_off_after = 1;
  c.clutter_high = ~0ull;  // ...and never re-engages
  StentBoostApp app(c);
  u64 quiet_pairs = 0;
  u64 bolus_pairs = 0;
  for (i32 t = 0; t < 80; ++t) {
    graph::FrameRecord r = app.process_frame(t);
    const graph::TaskExecution* cpls = r.find(kCplsSel);
    if (!cpls->executed) continue;
    if (t >= 5 && t < 25) quiet_pairs += cpls->work.items;
    if (t >= 50 && t < 70) bolus_pairs += cpls->work.items;
  }
  EXPECT_GT(bolus_pairs, 2 * quiet_pairs);
}

TEST(ScenarioDynamics, RoiSizeVariesWithCoupleGeometry) {
  trace::DatasetParams p;
  p.sequences = 4;
  p.frames_per_sequence = 40;
  p.width = 128;
  p.height = 128;
  trace::RecordedDataset d = trace::build_dataset(p);
  std::set<i64> roi_sizes;
  for (const auto& seq : d.sequences) {
    for (const auto& rec : seq) {
      roi_sizes.insert(static_cast<i64>(rec.roi_pixels));
    }
  }
  EXPECT_GE(roi_sizes.size(), 3u);
}

TEST(ScenarioDynamics, LatencyVariesAcrossScenarios) {
  StentBoostConfig c = StentBoostConfig::make(128, 128, 120, 5);
  c.sequence.contrast_in_frame = 30;
  c.sequence.contrast_out_frame = 80;
  StentBoostApp app(c);
  std::vector<f64> latencies;
  for (i32 t = 0; t < 100; ++t) {
    latencies.push_back(app.process_frame(t).latency_ms);
  }
  // The straightforward mapping shows substantial latency variation
  // (the motivation for Fig. 7 of the paper).
  EXPECT_GT(max_of(latencies), 1.5 * min_of(latencies));
}

TEST(ScenarioDynamics, MarkerDropoutCausesRegistrationFailure) {
  StentBoostConfig c = StentBoostConfig::make(128, 128, 100, 6);
  c.sequence.marker_dropout_prob = 0.5;  // heavy dropout
  c.sequence.contrast_in_frame = 1000;
  StentBoostApp app(c);
  i32 reg_fail = 0;
  for (i32 t = 0; t < 50; ++t) {
    graph::FrameRecord r = app.process_frame(t);
    if (((r.scenario >> kSwReg) & 1u) == 0) ++reg_fail;
  }
  EXPECT_GT(reg_fail, 10);
}

}  // namespace
}  // namespace tc::app
