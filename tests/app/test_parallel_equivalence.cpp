// Stripe-parallel execution — simulated *and* real (thread pool) — must be
// functionally identical to serial execution: same scenarios, same analysis
// results, same enhanced output.  Only the simulated times may differ.

#include "app/stentboost.hpp"

#include <gtest/gtest.h>

namespace tc::app {
namespace {

StentBoostConfig fast_config(u64 seed = 5) {
  StentBoostConfig c = StentBoostConfig::make(128, 128, 60, seed);
  c.sequence.contrast_in_frame = 15;
  c.sequence.contrast_out_frame = 45;
  return c;
}

void expect_equivalent_run(StentBoostApp& serial, StentBoostApp& striped,
                           i32 frames) {
  for (i32 t = 0; t < frames; ++t) {
    graph::FrameRecord rs = serial.process_frame(t);
    graph::FrameRecord rp = striped.process_frame(t);
    ASSERT_EQ(rs.scenario, rp.scenario) << "frame " << t;
    ASSERT_DOUBLE_EQ(rs.roi_pixels, rp.roi_pixels) << "frame " << t;
    for (usize i = 0; i < rs.tasks.size(); ++i) {
      ASSERT_EQ(rs.tasks[i].executed, rp.tasks[i].executed)
          << "frame " << t << " task " << node_name(rs.tasks[i].node);
      // (Striped runs legitimately recompute convolution halos, so work
      // totals may differ slightly; functional outputs must not.)
    }
    ASSERT_EQ(serial.last_output(), striped.last_output()) << "frame " << t;
    ASSERT_EQ(serial.current_roi(), striped.current_roi()) << "frame " << t;
  }
}

class ParallelEquivalence : public ::testing::TestWithParam<i32> {};

TEST_P(ParallelEquivalence, StripedWithoutPoolMatchesSerial) {
  const i32 stripes = GetParam();
  StentBoostApp serial(fast_config());
  StentBoostApp striped(fast_config());
  StripePlan plan = serial_plan();
  plan[kRdgFull] = stripes;
  plan[kRdgRoi] = stripes;
  plan[kZoom] = stripes;
  striped.set_stripe_plan(plan);
  expect_equivalent_run(serial, striped, 25);
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, ParallelEquivalence,
                         ::testing::Values(2, 3, 4));

TEST(ParallelEquivalencePool, StripedWithThreadPoolMatchesSerial) {
  plat::ThreadPool pool(4);
  StentBoostApp serial(fast_config());
  StentBoostApp striped(fast_config(), &pool);
  StripePlan plan = serial_plan();
  plan[kRdgFull] = 4;
  plan[kRdgRoi] = 4;
  plan[kZoom] = 4;
  striped.set_stripe_plan(plan);
  expect_equivalent_run(serial, striped, 25);
}

TEST(ParallelEquivalencePool, SimulatedTimeIndependentOfPoolPresence) {
  // Host parallelism must not leak into the simulated platform timing.
  plat::ThreadPool pool(4);
  StentBoostApp without(fast_config());
  StentBoostApp with(fast_config(), &pool);
  StripePlan plan = serial_plan();
  plan[kRdgFull] = 2;
  without.set_stripe_plan(plan);
  with.set_stripe_plan(plan);
  for (i32 t = 0; t < 10; ++t) {
    graph::FrameRecord a = without.process_frame(t);
    graph::FrameRecord b = with.process_frame(t);
    EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms) << "frame " << t;
  }
}

TEST(ParallelEquivalencePool, StripedRdgReportsPerStripe) {
  StentBoostConfig c = fast_config();
  c.force_full_frame = true;
  StentBoostApp app(c);
  StripePlan plan = serial_plan();
  plan[kRdgFull] = 3;
  app.set_stripe_plan(plan);
  graph::FrameRecord r = app.process_frame(0);
  // The striped cost includes the stripe synchronization overhead and is
  // bounded below by work/3.
  const graph::TaskExecution* rdg = r.find(kRdgFull);
  ASSERT_TRUE(rdg->executed);
  plat::TaskCost serial_cost = app.cost_model().serial_cost(rdg->work);
  EXPECT_LT(rdg->simulated_ms, serial_cost.total_ms);
  EXPECT_GT(rdg->simulated_ms, serial_cost.total_ms / 4.0);
}

}  // namespace
}  // namespace tc::app
