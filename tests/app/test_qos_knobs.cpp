// Application-level QoS quality knobs: they must actually change what the
// pipeline computes (work, outputs), not just the forecast.

#include <gtest/gtest.h>

#include "app/stentboost.hpp"

namespace tc::app {
namespace {

StentBoostConfig cfg(u64 seed = 3) {
  StentBoostConfig c = StentBoostConfig::make(128, 128, 60, seed);
  c.sequence.contrast_in_frame = 10000;  // quiet fluoro: stable registration
  c.sequence.marker_dropout_prob = 0.0;
  return c;
}

TEST(QosKnobs, DefaultsAreFullQuality) {
  StentBoostApp app(cfg());
  EXPECT_EQ(app.quality_extra_decimation(), 1);
  EXPECT_FALSE(app.quality_skip_guidewire());
  EXPECT_EQ(app.quality_zoom_divisor(), 1);
}

TEST(QosKnobs, ZoomDivisorShrinksOutput) {
  StentBoostApp app(cfg());
  app.set_quality(1, false, 2);
  (void)app.run(6);
  ASSERT_FALSE(app.last_output().empty());
  EXPECT_EQ(app.last_output().width(), cfg().zoom.output_width / 2);
  EXPECT_EQ(app.last_output().height(), cfg().zoom.output_height / 2);
}

TEST(QosKnobs, ZoomDivisorReducesZoomWork) {
  StentBoostApp full_app(cfg());
  StentBoostApp half_app(cfg());
  half_app.set_quality(1, false, 2);
  u64 full_ops = 0;
  u64 half_ops = 0;
  for (i32 t = 0; t < 8; ++t) {
    graph::FrameRecord a = full_app.process_frame(t);
    graph::FrameRecord b = half_app.process_frame(t);
    if (a.find(kZoom)->executed) full_ops += a.find(kZoom)->work.pixel_ops;
    if (b.find(kZoom)->executed) half_ops += b.find(kZoom)->work.pixel_ops;
  }
  ASSERT_GT(full_ops, 0u);
  // Quarter of the pixels -> roughly quarter of the work.
  EXPECT_NEAR(static_cast<f64>(half_ops), static_cast<f64>(full_ops) / 4.0,
              static_cast<f64>(full_ops) * 0.1);
}

TEST(QosKnobs, SkipGuidewireDisablesNode) {
  StentBoostApp app(cfg());
  app.set_quality(1, true, 1);
  auto records = app.run(10);
  for (const auto& r : records) {
    EXPECT_FALSE(r.find(kGwExt)->executed) << "frame " << r.frame;
  }
}

TEST(QosKnobs, ExtraDecimationReducesMkxWork) {
  StentBoostConfig c = cfg();
  c.force_full_frame = true;
  StentBoostApp full_app(c);
  StentBoostApp coarse_app(c);
  coarse_app.set_quality(2, false, 1);
  graph::FrameRecord a = full_app.process_frame(0);
  graph::FrameRecord b = coarse_app.process_frame(0);
  ASSERT_TRUE(a.find(kMkxFull)->executed);
  ASSERT_TRUE(b.find(kMkxFull)->executed);
  EXPECT_LT(b.find(kMkxFull)->work.pixel_ops,
            a.find(kMkxFull)->work.pixel_ops);
}

TEST(QosKnobs, PipelineStillTracksAtDegradedQuality) {
  // Even at the lowest quality level the pipeline keeps finding the couple
  // and producing output (degraded, not broken).
  StentBoostApp app(cfg(8));
  app.set_quality(2, true, 2);
  auto records = app.run(30);
  i32 outputs = 0;
  for (const auto& r : records) {
    if (r.find(kZoom)->executed) ++outputs;
  }
  EXPECT_GT(outputs, 20);
}

TEST(QosKnobs, RestoringQualityRestoresOutputSize) {
  StentBoostApp app(cfg());
  app.set_quality(1, false, 2);
  (void)app.run(6);
  EXPECT_EQ(app.last_output().width(), cfg().zoom.output_width / 2);
  app.set_quality(1, false, 1);
  (void)app.run(6);
  EXPECT_EQ(app.last_output().width(), cfg().zoom.output_width);
}

TEST(QosKnobs, InvalidValuesClamped) {
  StentBoostApp app(cfg());
  app.set_quality(0, false, 0);
  EXPECT_EQ(app.quality_extra_decimation(), 1);
  EXPECT_EQ(app.quality_zoom_divisor(), 1);
  app.set_quality(-3, false, -2);
  EXPECT_EQ(app.quality_extra_decimation(), 1);
  EXPECT_EQ(app.quality_zoom_divisor(), 1);
}

}  // namespace
}  // namespace tc::app
