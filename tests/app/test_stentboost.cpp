#include "app/stentboost.hpp"

#include <gtest/gtest.h>

#include "graph/scenario.hpp"

namespace tc::app {
namespace {

StentBoostConfig fast_config(u64 seed = 7) {
  StentBoostConfig c = StentBoostConfig::make(128, 128, 100, seed);
  c.sequence.contrast_in_frame = 25;
  c.sequence.contrast_out_frame = 70;
  return c;
}

TEST(StentBoost, NodeNamesAndParallelism) {
  EXPECT_EQ(node_name(kRdgFull), "RDG_FULL");
  EXPECT_EQ(node_name(kZoom), "ZOOM");
  EXPECT_TRUE(node_data_parallel(kRdgFull));
  EXPECT_TRUE(node_data_parallel(kEnh));
  EXPECT_FALSE(node_data_parallel(kCplsSel));
  EXPECT_FALSE(node_data_parallel(kGwExt));
}

TEST(StentBoost, GraphShape) {
  StentBoostApp app(fast_config());
  EXPECT_EQ(app.graph().task_count(), static_cast<usize>(kNodeCount));
  EXPECT_EQ(app.graph().switch_count(), static_cast<usize>(kSwitchCount));
  EXPECT_GT(app.graph().edge_count(), 5u);
  // The graph must be acyclic.
  EXPECT_EQ(app.graph().topological_order().size(),
            static_cast<usize>(kNodeCount));
}

TEST(StentBoost, FirstFrameRunsFullFrameVariants) {
  StentBoostApp app(fast_config());
  graph::FrameRecord r = app.process_frame(0);
  EXPECT_TRUE(r.find(kRdgFull)->executed);
  EXPECT_FALSE(r.find(kRdgRoi)->executed);
  EXPECT_TRUE(r.find(kMkxFull)->executed);
  EXPECT_FALSE(r.find(kMkxRoi)->executed);
  // No previous frame: registration cannot run.
  EXPECT_FALSE(r.find(kReg)->executed);
  EXPECT_FALSE(r.find(kEnh)->executed);
}

TEST(StentBoost, RoiModeEngagesAfterAcquisition) {
  StentBoostApp app(fast_config());
  (void)app.process_frame(0);
  ASSERT_TRUE(app.roi_valid());
  graph::FrameRecord r = app.process_frame(1);
  EXPECT_TRUE(r.find(kRdgRoi)->executed);
  EXPECT_FALSE(r.find(kRdgFull)->executed);
  EXPECT_TRUE(r.find(kMkxRoi)->executed);
  // ROI granularity is smaller than the full frame.
  EXPECT_LT(r.roi_pixels, 128.0 * 128.0 * app.config().cost.resolution_scale);
}

TEST(StentBoost, EnhAndZoomGatedByRegistration) {
  StentBoostApp app(fast_config());
  std::vector<graph::FrameRecord> records = app.run(30);
  for (const auto& r : records) {
    bool reg_ok = ((r.scenario >> kSwReg) & 1u) != 0;
    EXPECT_EQ(r.find(kEnh)->executed, reg_ok) << "frame " << r.frame;
    EXPECT_EQ(r.find(kZoom)->executed, reg_ok) << "frame " << r.frame;
  }
}

TEST(StentBoost, LatencyIsSumOfExecutedTasks) {
  StentBoostApp app(fast_config());
  graph::FrameRecord r = app.process_frame(0);
  f64 sum = 0.0;
  for (const auto& t : r.tasks) {
    if (t.executed) sum += t.simulated_ms;
  }
  EXPECT_NEAR(r.latency_ms, sum, 1e-9);
  EXPECT_GT(r.latency_ms, 0.0);
}

TEST(StentBoost, DeterministicAcrossInstances) {
  StentBoostApp a(fast_config(11));
  StentBoostApp b(fast_config(11));
  for (i32 t = 0; t < 10; ++t) {
    graph::FrameRecord ra = a.process_frame(t);
    graph::FrameRecord rb = b.process_frame(t);
    EXPECT_EQ(ra.scenario, rb.scenario);
    EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
  }
}

TEST(StentBoost, ResetRestoresInitialState) {
  StentBoostApp app(fast_config());
  (void)app.run(10);
  app.reset();
  EXPECT_TRUE(app.rdg_active());
  EXPECT_FALSE(app.roi_valid());
  EXPECT_FALSE(app.last_couple().has_value());
  graph::FrameRecord r = app.process_frame(0);
  EXPECT_TRUE(r.find(kRdgFull)->executed);
}

TEST(StentBoost, ForceFullFrameNeverEntersRoiMode) {
  StentBoostConfig c = fast_config();
  c.force_full_frame = true;
  StentBoostApp app(c);
  auto records = app.run(20);
  for (const auto& r : records) {
    EXPECT_FALSE(r.find(kRdgRoi)->executed);
    EXPECT_FALSE(r.find(kMkxRoi)->executed);
  }
}

TEST(StentBoost, RdgSwitchesOffInQuietScenes) {
  StentBoostConfig c = fast_config();
  // No bolus at all: after acquisition the scene is quiet and ridge
  // detection must switch off via the hysteresis.
  c.sequence.contrast_in_frame = 10000;
  c.sequence.contrast_out_frame = 10001;
  StentBoostApp app(c);
  auto records = app.run(30);
  bool rdg_off_seen = false;
  for (const auto& r : records) {
    if (((r.scenario >> kSwRdg) & 1u) == 0) rdg_off_seen = true;
  }
  EXPECT_TRUE(rdg_off_seen);
}

TEST(StentBoost, BolusTurnsRdgBackOn) {
  StentBoostConfig c = fast_config();
  c.sequence.contrast_in_frame = 40;
  c.sequence.contrast_out_frame = 90;
  StentBoostApp app(c);
  auto records = app.run(70);
  // Find a frame where RDG was off before the bolus...
  bool off_before = false;
  bool on_during = false;
  for (const auto& r : records) {
    bool rdg = ((r.scenario >> kSwRdg) & 1u) != 0;
    if (r.frame < 40 && !rdg) off_before = true;
    if (r.frame > 45 && rdg) on_during = true;
  }
  EXPECT_TRUE(off_before);
  EXPECT_TRUE(on_during);
}

TEST(StentBoost, EnhancedOutputProducedWhenRegistered) {
  StentBoostApp app(fast_config());
  auto records = app.run(10);
  bool any_output = false;
  for (const auto& r : records) {
    if (r.find(kZoom)->executed) any_output = true;
  }
  EXPECT_TRUE(any_output);
  EXPECT_FALSE(app.last_output().empty());
  EXPECT_EQ(app.last_output().width(), app.config().zoom.output_width);
}

TEST(StentBoost, WorkReportsCarryBufferSizes) {
  StentBoostApp app(fast_config());
  graph::FrameRecord r = app.process_frame(0);
  const graph::TaskExecution* rdg = r.find(kRdgFull);
  ASSERT_TRUE(rdg->executed);
  // Input = full frame u16 at the rendering resolution.
  EXPECT_EQ(rdg->work.input_bytes, 128u * 128u * 2u);
  EXPECT_GT(rdg->work.intermediate_bytes, 0u);
  EXPECT_GT(rdg->work.output_bytes, 0u);
}

TEST(StentBoost, RoiPixelsReportedAtPaperScale) {
  StentBoostApp app(fast_config());
  graph::FrameRecord r = app.process_frame(0);
  // Full frame at scale: 128^2 * (1024^2 / 128^2) = 1024^2.
  EXPECT_NEAR(r.roi_pixels, 1024.0 * 1024.0, 1.0);
}

TEST(StentBoost, StripePlanAffectsSimulatedTime) {
  StentBoostConfig c = fast_config();
  c.force_full_frame = true;
  StentBoostApp serial(c);
  StentBoostApp striped(c);
  StripePlan plan = serial_plan();
  plan[kRdgFull] = 4;
  striped.set_stripe_plan(plan);
  graph::FrameRecord rs = serial.process_frame(0);
  graph::FrameRecord rp = striped.process_frame(0);
  EXPECT_LT(rp.find(kRdgFull)->simulated_ms,
            0.5 * rs.find(kRdgFull)->simulated_ms);
}

TEST(StentBoost, ScenarioLabelsWellFormed) {
  StentBoostApp app(fast_config());
  graph::FrameRecord r = app.process_frame(0);
  std::string label =
      graph::scenario_label(r.scenario, app.graph().switch_names());
  EXPECT_NE(label.find("RDG="), std::string::npos);
  EXPECT_NE(label.find("ROI="), std::string::npos);
  EXPECT_NE(label.find("REG="), std::string::npos);
}

}  // namespace
}  // namespace tc::app
