// End-to-end tracking accuracy against the synthetic ground truth: the
// pipeline's couple must localize the true balloon markers across doses,
// motion amplitudes and bolus phases (the functional core the resource
// models sit on).

#include <cmath>

#include <gtest/gtest.h>

#include "app/stentboost.hpp"

namespace tc::app {
namespace {

struct TrackingStats {
  i32 frames = 0;
  i32 tracked = 0;        // frames with a couple
  i32 accurate = 0;       // couple within tolerance of the truth
  f64 worst_err = 0.0;    // among accurate+tracked frames
};

f64 couple_error(const img::Couple& couple, const img::FrameTruth& truth) {
  f64 direct =
      std::hypot(couple.a.x - truth.marker_a.x, couple.a.y - truth.marker_a.y) +
      std::hypot(couple.b.x - truth.marker_b.x, couple.b.y - truth.marker_b.y);
  f64 swapped =
      std::hypot(couple.a.x - truth.marker_b.x, couple.a.y - truth.marker_b.y) +
      std::hypot(couple.b.x - truth.marker_a.x, couple.b.y - truth.marker_a.y);
  return 0.5 * std::min(direct, swapped);
}

TrackingStats run_tracking(StentBoostConfig config, i32 frames,
                           f64 tolerance_px) {
  StentBoostApp app(config);
  img::AngioSequence seq(config.sequence);
  TrackingStats stats;
  for (i32 t = 0; t < frames; ++t) {
    (void)app.process_frame(t);
    img::FrameTruth truth = seq.truth(t);
    if (!truth.markers_visible) continue;
    ++stats.frames;
    if (!app.last_couple().has_value()) continue;
    ++stats.tracked;
    f64 err = couple_error(*app.last_couple(), truth);
    if (err <= tolerance_px) {
      ++stats.accurate;
      stats.worst_err = std::max(stats.worst_err, err);
    }
  }
  return stats;
}

TEST(TrackingAccuracy, QuietFluoroscopyIsNearPerfect) {
  StentBoostConfig c = StentBoostConfig::make(256, 256, 80, 21);
  c.sequence.contrast_in_frame = 100000;
  c.sequence.marker_dropout_prob = 0.0;
  TrackingStats s = run_tracking(c, 80, 2.0);
  EXPECT_EQ(s.frames, 80);
  EXPECT_GE(s.tracked, 78);
  EXPECT_GE(s.accurate, s.tracked * 9 / 10);
  EXPECT_LT(s.worst_err, 2.0);
}

class DoseSweep : public ::testing::TestWithParam<f64> {};

TEST_P(DoseSweep, TrackingSurvivesDoseRange) {
  StentBoostConfig c = StentBoostConfig::make(256, 256, 60, 22);
  c.sequence.contrast_in_frame = 100000;
  c.sequence.marker_dropout_prob = 0.0;
  c.sequence.dose_photons = GetParam();
  TrackingStats s = run_tracking(c, 60, 3.0);
  EXPECT_GE(s.accurate, s.frames * 3 / 4) << "dose " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Doses, DoseSweep,
                         ::testing::Values(700.0, 900.0, 1200.0));

class MotionSweep : public ::testing::TestWithParam<f64> {};

TEST_P(MotionSweep, TrackingSurvivesCardiacAmplitude) {
  StentBoostConfig c = StentBoostConfig::make(256, 256, 60, 23);
  c.sequence.contrast_in_frame = 100000;
  c.sequence.marker_dropout_prob = 0.0;
  c.sequence.motion.cardiac_amplitude_px = GetParam();
  TrackingStats s = run_tracking(c, 60, 3.0);
  EXPECT_GE(s.accurate, s.frames * 3 / 4) << "amplitude " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, MotionSweep,
                         ::testing::Values(4.0, 9.0, 14.0));

TEST(TrackingAccuracy, RecoversAfterDropoutBurst) {
  StentBoostConfig c = StentBoostConfig::make(256, 256, 80, 24);
  c.sequence.contrast_in_frame = 100000;
  c.sequence.marker_dropout_prob = 0.25;  // heavy dropout
  TrackingStats s = run_tracking(c, 80, 3.0);
  // Visible frames are mostly re-acquired despite frequent interruptions.
  EXPECT_GE(s.accurate, s.frames / 2);
}

TEST(TrackingAccuracy, BolusDegradesButGuidewireCatchesErrors) {
  // During the bolus the couple may lock onto vessel structures; the
  // guide-wire check must keep the *accepted registrations* honest: count
  // frames where REG succeeded with a badly wrong couple.
  StentBoostConfig c = StentBoostConfig::make(256, 256, 100, 25);
  c.sequence.contrast_in_frame = 20;
  c.sequence.contrast_out_frame = 90;
  c.sequence.marker_dropout_prob = 0.0;
  StentBoostApp app(c);
  img::AngioSequence seq(c.sequence);
  i32 bad_accepted = 0;
  i32 accepted = 0;
  for (i32 t = 0; t < 100; ++t) {
    graph::FrameRecord r = app.process_frame(t);
    bool reg = ((r.scenario >> kSwReg) & 1u) != 0;
    if (!reg || !app.last_couple().has_value()) continue;
    ++accepted;
    if (couple_error(*app.last_couple(), seq.truth(t)) > 10.0) ++bad_accepted;
  }
  ASSERT_GT(accepted, 20);
  EXPECT_LT(static_cast<f64>(bad_accepted) / accepted, 0.25);
}

}  // namespace
}  // namespace tc::app
