#include "exec/stage_pipeline.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "imaging/kernels.hpp"
#include "obs/obs.hpp"

namespace tc::exec {
namespace {

// A miniature of the stentboost pipeline shape: blur (striped), temporal
// difference (serial feature stage), bicubic zoom (striped).
struct Payload {
  img::ImageF32 input;
  img::ImageF32 previous;
  img::ImageF32 blurred;
  img::ImageF32 diff;
  img::ImageF32 zoomed;
};

img::ImageF32 make_frame(i32 size, i32 t) {
  img::ImageF32 im(size, size);
  for (i32 y = 0; y < size; ++y) {
    for (i32 x = 0; x < size; ++x) {
      im.at(x, y) = static_cast<f32>((x * 31 + y * 17 + t * 7) % 251) / 251.0f;
    }
  }
  return im;
}

std::shared_ptr<Payload> make_payload(i32 size, i32 t) {
  auto p = std::make_shared<Payload>();
  p->input = make_frame(size, t);
  p->previous = make_frame(size, t - 1);
  p->blurred = img::ImageF32(size, size);
  p->zoomed = img::ImageF32(size, size);
  return p;
}

std::vector<StageSpec> make_stages(i32 stripes) {
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{
      "analysis",
      [](FramePacket& packet, const StageContext& ctx) {
        auto& p = *static_cast<Payload*>(packet.payload.get());
        parallel_rows(ctx, p.input.height(), [&p](IndexRange rows) {
          img::gaussian_blur_rows(p.input, 1.5, p.blurred, rows);
        });
      },
      stripes});
  stages.push_back(StageSpec{
      "features",
      [](FramePacket& packet, const StageContext&) {
        auto& p = *static_cast<Payload*>(packet.payload.get());
        p.diff = img::temporal_difference(p.blurred, p.previous);
      },
      1});
  stages.push_back(StageSpec{
      "display",
      [](FramePacket& packet, const StageContext& ctx) {
        auto& p = *static_cast<Payload*>(packet.payload.get());
        const Rect src{8, 8, p.diff.width() - 16, p.diff.height() - 16};
        parallel_rows(ctx, p.zoomed.height(), [&p, src](IndexRange rows) {
          img::resample_bicubic_rows(p.diff, p.zoomed, src, rows);
        });
      },
      stripes});
  return stages;
}

/// Serial reference: the same three stages composed in one thread.
img::ImageF32 serial_reference(i32 size, i32 t) {
  auto p = make_payload(size, t);
  img::gaussian_blur_rows(p->input, 1.5, p->blurred,
                          IndexRange{0, p->input.height()});
  p->diff = img::temporal_difference(p->blurred, p->previous);
  const Rect src{8, 8, p->diff.width() - 16, p->diff.height() - 16};
  img::resample_bicubic_rows(p->diff, p->zoomed, src,
                             IndexRange{0, p->zoomed.height()});
  return p->zoomed;
}

TEST(StagePipeline, DeterministicBitIdenticalToSerial) {
  constexpr i32 kSize = 64;
  constexpr i32 kFrames = 6;
  plat::ThreadPool pool(4);
  PipelineConfig config;
  config.stripe_pool = &pool;
  StagePipeline pipeline(make_stages(/*stripes=*/4), config);
  pipeline.start();
  std::vector<std::shared_ptr<Payload>> payloads;
  for (i32 t = 0; t < kFrames; ++t) {
    payloads.push_back(make_payload(kSize, t));
    ASSERT_TRUE(pipeline.submit(t, payloads.back()));
  }
  pipeline.drain();

  for (i32 t = 0; t < kFrames; ++t) {
    const img::ImageF32 expect = serial_reference(kSize, t);
    const img::ImageF32& got = payloads[static_cast<usize>(t)]->zoomed;
    ASSERT_EQ(got.width(), expect.width());
    for (i32 y = 0; y < expect.height(); ++y) {
      for (i32 x = 0; x < expect.width(); ++x) {
        ASSERT_EQ(got.at(x, y), expect.at(x, y))
            << "frame " << t << " pixel (" << x << "," << y << ")";
      }
    }
  }
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.frames_in, kFrames);
  EXPECT_EQ(stats.frames_out, kFrames);
  EXPECT_EQ(stats.frames_dropped, 0);
}

TEST(StagePipeline, OutputArrivesInOrder) {
  StagePipeline pipeline(make_stages(1), PipelineConfig{});
  pipeline.start();
  for (i32 t = 0; t < 5; ++t) {
    ASSERT_TRUE(pipeline.submit(t, make_payload(32, t)));
  }
  pipeline.drain();
  const PipelineStats stats = pipeline.stats();
  ASSERT_EQ(stats.frames.size(), 5u);
  for (i32 t = 0; t < 5; ++t) {
    EXPECT_EQ(stats.frames[static_cast<usize>(t)].frame, t);
  }
}

TEST(StagePipeline, BackpressureBoundsQueueAndCountsEvents) {
  // A slow last stage behind capacity-1 queues: the submitter gets
  // throttled (blocked pushes counted) but no frame is lost.
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{
      "fast", [](FramePacket&, const StageContext&) {}, 1});
  stages.push_back(StageSpec{
      "slow",
      [](FramePacket&, const StageContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      },
      1});
  PipelineConfig config;
  config.queue_capacity = 1;
  StagePipeline pipeline(std::move(stages), config);
  pipeline.start();
  constexpr i32 kFrames = 20;
  for (i32 t = 0; t < kFrames; ++t) {
    ASSERT_TRUE(pipeline.submit(t, nullptr));
  }
  pipeline.drain();
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.frames_out, kFrames);
  EXPECT_GT(stats.backpressure_events, 0u);
}

TEST(StagePipeline, DeadlineDropSkipsWorkAndCounts) {
  // First stage sleeps past the deadline, so the Drop policy must skip the
  // second stage's work for every frame — and still deliver/count them all.
  std::atomic<int> second_stage_ran{0};
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{
      "sleep",
      [](FramePacket&, const StageContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      },
      1});
  stages.push_back(StageSpec{
      "work",
      [&second_stage_ran](FramePacket&, const StageContext&) {
        second_stage_ran.fetch_add(1, std::memory_order_relaxed);
      },
      1});
  PipelineConfig config;
  config.deadline_ms = 1.0;
  config.policy = DeadlinePolicy::Drop;
  StagePipeline pipeline(std::move(stages), config);
  pipeline.start();
  constexpr i32 kFrames = 4;
  for (i32 t = 0; t < kFrames; ++t) ASSERT_TRUE(pipeline.submit(t, nullptr));
  pipeline.drain();
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.frames_out, kFrames);
  EXPECT_EQ(stats.frames_dropped, kFrames);
  EXPECT_EQ(stats.deadline_misses, kFrames);
  EXPECT_EQ(second_stage_ran.load(), 0);
}

TEST(StagePipeline, DeadlineDegradeSetsFlagButRunsWork) {
  std::atomic<int> degraded_seen{0};
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{
      "sleep",
      [](FramePacket&, const StageContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      },
      1});
  stages.push_back(StageSpec{
      "work",
      [&degraded_seen](FramePacket& packet, const StageContext&) {
        if (packet.degraded) {
          degraded_seen.fetch_add(1, std::memory_order_relaxed);
        }
      },
      1});
  PipelineConfig config;
  config.deadline_ms = 1.0;
  config.policy = DeadlinePolicy::Degrade;
  StagePipeline pipeline(std::move(stages), config);
  pipeline.start();
  constexpr i32 kFrames = 4;
  for (i32 t = 0; t < kFrames; ++t) ASSERT_TRUE(pipeline.submit(t, nullptr));
  pipeline.drain();
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.frames_out, kFrames);
  EXPECT_EQ(stats.frames_dropped, 0);
  EXPECT_EQ(stats.frames_degraded, kFrames);
  EXPECT_EQ(degraded_seen.load(), kFrames);
}

TEST(StagePipeline, EmitsQueueAndStageFlightEvents) {
  obs::global().clear();
  obs::set_enabled(true);
  StagePipeline pipeline(make_stages(1), PipelineConfig{});
  pipeline.start();
  for (i32 t = 0; t < 5; ++t) {
    ASSERT_TRUE(pipeline.submit(t, make_payload(32, t)));
  }
  pipeline.drain();
  obs::set_enabled(false);

  bool saw_push = false;
  bool saw_pop = false;
  bool saw_stage_start = false;
  bool saw_stage_end = false;
  for (const obs::FlightEvent& e : obs::global().flight.snapshot()) {
    switch (e.type) {
      case obs::FrEventType::QueuePush:
        saw_push = true;
        EXPECT_GE(e.node, 0);  // queue id = fed stage index
        EXPECT_GE(e.a, 1.0);   // depth after push
        break;
      case obs::FrEventType::QueuePop:
        saw_pop = true;
        EXPECT_GE(e.a, 0.0);  // depth after pop
        break;
      case obs::FrEventType::StageStart:
        saw_stage_start = true;
        break;
      case obs::FrEventType::StageEnd:
        saw_stage_end = true;
        EXPECT_GE(e.a, 0.0);  // stage wall ms
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_push);
  EXPECT_TRUE(saw_pop);
  EXPECT_TRUE(saw_stage_start);
  EXPECT_TRUE(saw_stage_end);
  obs::global().clear();
}

TEST(StagePipeline, DrainIsIdempotentAndSubmitAfterDrainFails) {
  StagePipeline pipeline(make_stages(1), PipelineConfig{});
  pipeline.start();
  ASSERT_TRUE(pipeline.submit(0, make_payload(32, 0)));
  pipeline.drain();
  pipeline.drain();  // second drain is a no-op
  EXPECT_FALSE(pipeline.submit(1, make_payload(32, 1)));
  EXPECT_EQ(pipeline.stats().frames_out, 1);
}

TEST(StagePipeline, DestructorJoinsWithoutExplicitDrain) {
  std::vector<std::shared_ptr<Payload>> payloads;
  {
    StagePipeline pipeline(make_stages(1), PipelineConfig{});
    pipeline.start();
    for (i32 t = 0; t < 3; ++t) {
      payloads.push_back(make_payload(32, t));
      ASSERT_TRUE(pipeline.submit(t, payloads.back()));
    }
    // No drain(): the destructor must close, drain and join (no leak, no
    // deadlock, all three frames fully processed).
  }
  for (const auto& p : payloads) {
    EXPECT_GT(p->zoomed.at(16, 16), 0.0f);
  }
}

}  // namespace
}  // namespace tc::exec
