#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "app/stentboost.hpp"
#include "common/json.hpp"
#include "obs/obs.hpp"

namespace tc::exec {
namespace {

constexpr i32 kSize = 96;
constexpr u64 kSeed = 7;

app::StentBoostConfig small_config(i32 frames) {
  app::StentBoostConfig config =
      app::StentBoostConfig::make(kSize, kSize, frames, kSeed);
  return config;
}

/// Config pinned to full-frame mode with RDG always on: every frame executes
/// the same heavy node set, which keeps the forecast and plan assertions
/// deterministic.
app::StentBoostConfig heavy_config(i32 frames) {
  app::StentBoostConfig config = small_config(frames);
  config.force_full_frame = true;
  config.dominant_low = 0;  // RDG never switches off
  return config;
}

TEST(Executor, WarmupDerivesDeadlineFromMeasuredMean) {
  ExecutorConfig exec_config;
  exec_config.warmup_frames = 5;
  exec_config.worker_threads = 2;
  Executor executor(small_config(16), exec_config);
  EXPECT_FALSE(executor.deadline_set());

  const std::vector<ExecutedFrame> frames = executor.run(6);
  for (i32 t = 0; t < 5; ++t) {
    EXPECT_FALSE(frames[static_cast<usize>(t)].managed) << "warm-up frame " << t;
  }
  EXPECT_TRUE(executor.deadline_set());
  EXPECT_GT(executor.deadline_ms(), 0.0);
  EXPECT_TRUE(frames[5].managed);
  EXPECT_EQ(frames[5].deadline_ms, executor.deadline_ms());

  // deadline = mean(measured warm-up latency) * headroom.
  f64 sum = 0.0;
  for (i32 t = 0; t < 5; ++t) sum += frames[static_cast<usize>(t)].measured_host_ms;
  EXPECT_NEAR(executor.deadline_ms(),
              sum / 5.0 * exec_config.deadline_headroom,
              1e-6 * executor.deadline_ms());
}

TEST(Executor, StartupAuditGatePassesOnSmallConfig) {
  ExecutorConfig exec_config;
  exec_config.worker_threads = 2;
  exec_config.audit_at_startup = true;
  exec_config.audit_training_frames = 12;
  Executor executor(small_config(16), exec_config);  // Strict: throws on fail
  EXPECT_FALSE(executor.audit_report().has_errors())
      << executor.audit_report().to_text();
}

TEST(Executor, StartupAuditGateRefusesImpossibleDeadline) {
  ExecutorConfig exec_config;
  exec_config.worker_threads = 2;
  exec_config.audit_at_startup = true;
  exec_config.audit_training_frames = 12;
  exec_config.audit_options.deadline_ms = 1.0e-4;
  EXPECT_THROW(Executor(small_config(16), exec_config),
               analysis::AnalysisError);
}

TEST(Executor, FeedbackPrimesPredictors) {
  ExecutorConfig exec_config;
  exec_config.warmup_frames = 6;
  exec_config.worker_threads = 2;
  Executor executor(heavy_config(16), exec_config);
  EXPECT_FALSE(executor.frame_markov().fitted());
  executor.run(6);

  // Full-frame mode executes RDG_FULL, MKX_FULL, ENH and ZOOM every frame.
  EXPECT_TRUE(executor.node_filter(app::kRdgFull).primed());
  EXPECT_TRUE(executor.node_filter(app::kMkxFull).primed());
  EXPECT_TRUE(executor.node_filter(app::kEnh).primed());
  EXPECT_TRUE(executor.node_filter(app::kZoom).primed());
  EXPECT_GT(executor.node_filter(app::kRdgFull).value(), 0.0);
  EXPECT_TRUE(executor.frame_markov().fitted());

  // The forecast mirrors the primed filters.
  const std::vector<rt::NodeForecast> fc = executor.host_forecast();
  EXPECT_TRUE(fc[app::kRdgFull].active);
  EXPECT_GT(fc[app::kRdgFull].serial_ms, 0.0);
  EXPECT_FALSE(fc[app::kRdgRoi].active);
}

TEST(Executor, ScenarioSequenceMatchesSerialApp) {
  // The executor repartitions and stripes, but the *content* decisions
  // (switch scenario per frame) must match a plain serial run bit for bit.
  constexpr i32 kFrames = 12;
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 0.5;  // managed (and striping) from frame 0
  exec_config.worker_threads = 4;
  Executor executor(small_config(kFrames), exec_config);
  const std::vector<ExecutedFrame> managed = executor.run(kFrames);

  app::StentBoostApp serial(small_config(kFrames));
  const std::vector<graph::FrameRecord> reference = serial.run(kFrames);

  ASSERT_EQ(managed.size(), reference.size());
  for (usize t = 0; t < reference.size(); ++t) {
    EXPECT_EQ(managed[t].scenario, reference[t].scenario) << "frame " << t;
  }
}

TEST(Executor, RepartitionsWhenPredictionCrossesDeadline) {
  // Tight fixed deadline: frame 0 plans serially (filters unprimed, forecast
  // 0), frame 1's primed forecast exceeds the deadline and the plan widens —
  // a live repartition.
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 0.3;
  exec_config.worker_threads = 4;
  exec_config.max_stripes_per_task = 4;
  Executor executor(heavy_config(8), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(6);

  EXPECT_EQ(frames[0].plan, app::serial_plan());
  EXPECT_FALSE(frames[0].repartitioned);
  EXPECT_NE(frames[1].plan, app::serial_plan());
  EXPECT_TRUE(frames[1].repartitioned);
  EXPECT_GT(frames[1].predicted_host_ms, 0.0);
  EXPECT_GE(executor.stats().repartitions, 1);
}

TEST(Executor, DropPolicyCountsMissesAndDrops) {
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 1e-3;  // impossible: every frame misses
  exec_config.policy = DeadlinePolicy::Drop;
  exec_config.worker_threads = 2;
  Executor executor(small_config(8), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(4);

  for (const ExecutedFrame& f : frames) {
    EXPECT_TRUE(f.deadline_miss);
    EXPECT_TRUE(f.dropped);
  }
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.frames, 4);
  EXPECT_EQ(stats.deadline_misses, 4);
  EXPECT_EQ(stats.dropped_frames, 4);
  EXPECT_GT(stats.mean_measured_ms, 0.0);
}

TEST(Executor, DegradePolicyWalksQualityLadderDown) {
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 1e-3;  // unreachable even at min quality
  exec_config.policy = DeadlinePolicy::Degrade;
  exec_config.worker_threads = 2;
  Executor executor(heavy_config(8), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(4);

  // Frame 0 plans on an unprimed (zero) forecast and stays at full quality;
  // once the filters are primed the ladder is walked all the way down.
  EXPECT_EQ(frames[0].quality_level, 0);
  const i32 max_level = narrow<i32>(rt::quality_ladder().size()) - 1;
  EXPECT_EQ(frames[1].quality_level, max_level);
  EXPECT_FALSE(frames[1].dropped);  // Degrade never drops
  EXPECT_GE(executor.stats().degraded_frames, 3);
  EXPECT_EQ(executor.stats().dropped_frames, 0);
}

TEST(Executor, AdaptDisabledKeepsSerialPlan) {
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 0.3;  // tight, but adaptation is off
  exec_config.adapt = false;
  exec_config.worker_threads = 4;
  Executor executor(heavy_config(8), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(4);

  for (const ExecutedFrame& f : frames) {
    EXPECT_EQ(f.plan, app::serial_plan());
    EXPECT_FALSE(f.repartitioned);
  }
  EXPECT_EQ(executor.stats().repartitions, 0);
}

TEST(Executor, ValidatesGraphAtStartup) {
  Executor executor(small_config(4), ExecutorConfig{});
  EXPECT_FALSE(executor.validation_report().has_errors());
}

TEST(Executor, FlightRecorderStaysEmptyWhenObsDisabled) {
  obs::set_enabled(false);
  obs::global().clear();
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 5.0;
  exec_config.worker_threads = 2;
  Executor executor(small_config(8), exec_config);
  executor.run(8);
  EXPECT_EQ(obs::global().flight.size(), 0u);
  EXPECT_EQ(obs::global().flight.total_recorded(), 0u);
}

TEST(Executor, FlightRecorderCapturesFrameLifecycleWhenEnabled) {
  obs::global().clear();
  obs::set_enabled(true);
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 5.0;
  exec_config.worker_threads = 2;
  Executor executor(small_config(8), exec_config);
  executor.run(8);
  obs::set_enabled(false);

  bool saw_frame_start = false;
  bool saw_frame_end = false;
  bool saw_node_timing = false;
  for (const obs::FlightEvent& e : obs::global().flight.snapshot()) {
    saw_frame_start |= e.type == obs::FrEventType::FrameStart;
    saw_frame_end |= e.type == obs::FrEventType::FrameEnd;
    saw_node_timing |= e.type == obs::FrEventType::NodeTiming;
  }
  EXPECT_TRUE(saw_frame_start);
  EXPECT_TRUE(saw_frame_end);
  EXPECT_TRUE(saw_node_timing);
  obs::global().clear();
}

// End-to-end diagnostics: a load spike the predictors never trained on
// makes frames miss the deadline; the drift monitor alarms, a re-train is
// forced, and a post-mortem bundle lands on disk and parses.
TEST(Executor, LoadSpikeProducesPostmortemBundleAndRetrain) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "tc_executor_diag_postmortems";
  fs::remove_all(dir);
  obs::global().clear();
  obs::set_enabled(true);

  ExecutorConfig exec_config;
  exec_config.worker_threads = 2;
  exec_config.warmup_frames = 6;
  exec_config.deadline_headroom = 1.6;  // roomy: organic misses stay rare
  exec_config.diagnostics.enabled = true;
  exec_config.diagnostics.postmortem.directory = dir.string();
  exec_config.diagnostics.postmortem.max_events = 256;
  exec_config.diagnostics.postmortem.min_frames_between = 4;
  exec_config.load_spike.start_frame = 20;
  exec_config.load_spike.frames = 3;
  exec_config.load_spike.busy_ms = 25.0;  // dwarfs the small graph's frame
  Executor executor(small_config(32), exec_config);
  executor.run(32);
  obs::set_enabled(false);

  const ExecutorStats stats = executor.stats();
  EXPECT_GT(stats.deadline_misses, 0);
  EXPECT_GT(stats.postmortems, 0);
  EXPECT_GT(stats.drift_alerts + stats.slo_breaches, 0);
  EXPECT_EQ(stats.retrains, stats.drift_alerts);  // retrain_on_drift default

  ASSERT_NE(executor.postmortem_writer(), nullptr);
  const std::string path = executor.postmortem_writer()->last_path();
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const common::JsonValue root = common::JsonValue::parse(ss.str());
  EXPECT_EQ(root.string_or("format", ""), "triplec-postmortem-v1");
  EXPECT_GT(root.get("events").size(), 0u);
  EXPECT_GT(root.get("predictors").get("nodes").size(), 0u);

  obs::global().clear();
  fs::remove_all(dir);
}

TEST(Executor, ManualPostmortemAndForcedRetrain) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tc_executor_manual_pm";
  fs::remove_all(dir);

  ExecutorConfig exec_config;
  exec_config.deadline_ms = 5.0;
  exec_config.worker_threads = 2;
  exec_config.diagnostics.enabled = true;
  // No automatic re-training: this test drives force_retrain() by hand, so
  // drift alerts (plentiful with a 5 ms deadline on a loaded box) must not
  // reset the Markov chain behind its back.
  exec_config.diagnostics.retrain_on_drift = false;
  exec_config.diagnostics.postmortem.directory = dir.string();
  Executor executor(heavy_config(12), exec_config);
  executor.run(10);

  ASSERT_TRUE(executor.frame_markov().fitted());
  executor.force_retrain(10);
  EXPECT_FALSE(executor.frame_markov().fitted());
  EXPECT_EQ(executor.stats().retrains, 1);

  // An explicit request bypasses the frame rate limit.
  const std::string path = executor.write_postmortem("operator_request");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const common::JsonValue root = common::JsonValue::parse(ss.str());
  EXPECT_EQ(root.string_or("reason", ""), "operator_request");

  fs::remove_all(dir);
}

TEST(Executor, DiagnosticsDisabledMeansNoMonitors) {
  Executor executor(small_config(4), ExecutorConfig{});
  EXPECT_EQ(executor.drift_monitor(), nullptr);
  EXPECT_EQ(executor.slo_monitor(), nullptr);
  EXPECT_EQ(executor.postmortem_writer(), nullptr);
  EXPECT_TRUE(executor.write_postmortem("manual").empty());
}

// --- prediction ledger integration ------------------------------------------

TEST(ExecutorLedger, DisabledByDefault) {
  Executor executor(small_config(4), ExecutorConfig{});
  EXPECT_EQ(executor.ledger(), nullptr);
}

TEST(ExecutorLedger, SettlesOneRowPerExecutedNode) {
  ExecutorConfig exec_config;
  exec_config.worker_threads = 2;
  exec_config.warmup_frames = 4;
  exec_config.ledger.enabled = true;
  exec_config.ledger.capacity = 0;  // keep every row
  Executor executor(heavy_config(16), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(12);

  obs::PredictionLedger* ledger = executor.ledger();
  ASSERT_NE(ledger, nullptr);
  const std::vector<obs::LedgerRow> rows = ledger->rows();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(ledger->rows_settled(), rows.size());
  EXPECT_EQ(ledger->frames_lost(), 0u);

  // Every frame settles at least one row, in retire order.  Rows without
  // actuals are activity mispredictions (e.g. a dropped frame skipping the
  // tail of the pipeline) and must still carry their prediction.
  i32 last_frame = -1;
  usize measured_rows = 0;
  for (const obs::LedgerRow& r : rows) {
    EXPECT_GE(r.frame, last_frame);
    last_frame = r.frame;
    EXPECT_GE(r.node, 0);
    EXPECT_GE(r.ticket, 0);
    if (r.meas_mask != 0) {
      ++measured_rows;
      EXPECT_TRUE(r.has_meas(obs::LedgerResource::CpuMs));
      EXPECT_TRUE(r.has_meas(obs::LedgerResource::MemBytes));
    } else {
      EXPECT_TRUE(r.has_pred(obs::LedgerResource::CpuMs));
    }
  }
  EXPECT_EQ(last_frame, 11);
  EXPECT_GT(measured_rows, 0u);

  // Full-frame mode always runs RDG_FULL: its measured CPU sums to the
  // frame's node time, and its calibration stream filled up.
  const auto stats =
      ledger->node_calibration(app::kRdgFull, obs::LedgerResource::CpuMs);
  EXPECT_GT(stats.samples, 0u);
}

TEST(ExecutorLedger, WarmupRowsAreActualOnlyThenPredictionsAppear) {
  ExecutorConfig exec_config;
  exec_config.worker_threads = 2;
  exec_config.warmup_frames = 5;
  exec_config.ledger.enabled = true;
  exec_config.ledger.capacity = 0;
  Executor executor(heavy_config(16), exec_config);
  executor.run(10);

  bool saw_predicted = false;
  for (const obs::LedgerRow& r : executor.ledger()->rows()) {
    if (r.frame < 1) {
      // Frame 0 plans before any feedback: no filter is primed, so every
      // row is actual-only (pred_mask == 0).
      EXPECT_EQ(r.pred_mask, 0u) << "node " << r.node;
    }
    if (r.frame >= 5 && r.has_pred(obs::LedgerResource::CpuMs)) {
      saw_predicted = true;
      EXPECT_GT(r.pred[0], 0.0);
    }
  }
  EXPECT_TRUE(saw_predicted);
  // Managed frames carry the derived deadline and a finite slack.
  bool saw_slack = false;
  for (const obs::LedgerRow& r : executor.ledger()->rows()) {
    if (r.deadline_ms > 0.0) {
      saw_slack = true;
      // slack = deadline - measured latency, and latency is strictly > 0.
      EXPECT_LT(r.deadline_slack_ms, r.deadline_ms);
    }
  }
  EXPECT_TRUE(saw_slack);
}

TEST(ExecutorLedger, BusAttributionCoversCacheAndIoClasses) {
  obs::global().clear();
  obs::set_enabled(true);
  ExecutorConfig exec_config;
  exec_config.worker_threads = 2;
  exec_config.warmup_frames = 3;  // predictions (and counter samples) early
  exec_config.ledger.enabled = true;
  exec_config.ledger.capacity = 0;
  Executor executor(small_config(10), exec_config);
  executor.run(10);
  obs::set_enabled(false);

  // With obs on, every settled row with both CPU sides adds a sample to the
  // node's predicted/actual Chrome counter track.
  bool saw_counter = false;
  for (const obs::SpanEvent& e : obs::global().tracer.events()) {
    saw_counter |= e.phase == 'C';
  }
  EXPECT_TRUE(saw_counter);
  obs::global().clear();

  f64 cache_mb = 0.0;
  f64 io_mb = 0.0;
  for (const obs::LedgerRow& r : executor.ledger()->rows()) {
    if (r.meas_mask == 0) continue;  // prediction-only (dropped-frame tail)
    EXPECT_TRUE(r.has_meas(obs::LedgerResource::CacheBusMb));
    EXPECT_TRUE(r.has_meas(obs::LedgerResource::IoBusMb));
    cache_mb += r.meas[static_cast<usize>(obs::LedgerResource::CacheBusMb)];
    io_mb += r.meas[static_cast<usize>(obs::LedgerResource::IoBusMb)];
  }
  // The pipeline moves real bytes: the cache bus carries interior traffic
  // and the source/sink nodes put the device frames on the I/O bus.
  EXPECT_GT(cache_mb, 0.0);
  EXPECT_GT(io_mb, 0.0);
}

TEST(ExecutorLedger, PipelinedRunSettlesSameRowCountAsSerial) {
  auto run_rows = [](auto&& drive) {
    ExecutorConfig exec_config;
    exec_config.worker_threads = 4;
    exec_config.warmup_frames = 4;
    exec_config.ledger.enabled = true;
    exec_config.ledger.capacity = 0;
    Executor executor(small_config(12), exec_config);
    drive(executor);
    return executor.ledger()->rows();
  };
  const auto serial = run_rows([](Executor& e) { e.run(12); });
  const auto piped =
      run_rows([](Executor& e) { e.run_pipelined(12, /*frames_in_flight=*/2); });

  ASSERT_EQ(serial.size(), piped.size());
  // Same (frame, node, scenario) attribution on both drive paths; only the
  // measured host times differ (wall-clock).
  for (usize i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].frame, piped[i].frame);
    EXPECT_EQ(serial[i].node, piped[i].node);
    EXPECT_EQ(serial[i].scenario, piped[i].scenario);
  }
}

TEST(ExecutorLedger, PostmortemBundleEmbedsRecentLedgerRows) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tc_executor_ledger_pm";
  fs::remove_all(dir);

  ExecutorConfig exec_config;
  exec_config.deadline_ms = 5.0;
  exec_config.worker_threads = 2;
  exec_config.ledger.enabled = true;
  exec_config.postmortem_ledger_rows = 8;
  exec_config.diagnostics.enabled = true;
  exec_config.diagnostics.postmortem.directory = dir.string();
  Executor executor(small_config(8), exec_config);
  executor.run(8);

  const std::string path = executor.write_postmortem("ledger_check");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const common::JsonValue root = common::JsonValue::parse(ss.str());
  const common::JsonValue& ledger = root.get("ledger");
  ASSERT_TRUE(ledger.is_array());
  ASSERT_GT(ledger.size(), 0u);
  ASSERT_LE(ledger.size(), 8u);
  EXPECT_GE(ledger.at(0).number_or("frame", -1), 0.0);
  EXPECT_EQ(ledger.at(ledger.size() - 1).number_or("frame", -1), 7.0);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace tc::exec
