#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include "app/stentboost.hpp"

namespace tc::exec {
namespace {

constexpr i32 kSize = 96;
constexpr u64 kSeed = 7;

app::StentBoostConfig small_config(i32 frames) {
  app::StentBoostConfig config =
      app::StentBoostConfig::make(kSize, kSize, frames, kSeed);
  return config;
}

/// Config pinned to full-frame mode with RDG always on: every frame executes
/// the same heavy node set, which keeps the forecast and plan assertions
/// deterministic.
app::StentBoostConfig heavy_config(i32 frames) {
  app::StentBoostConfig config = small_config(frames);
  config.force_full_frame = true;
  config.dominant_low = 0;  // RDG never switches off
  return config;
}

TEST(Executor, WarmupDerivesDeadlineFromMeasuredMean) {
  ExecutorConfig exec_config;
  exec_config.warmup_frames = 5;
  exec_config.worker_threads = 2;
  Executor executor(small_config(16), exec_config);
  EXPECT_FALSE(executor.deadline_set());

  const std::vector<ExecutedFrame> frames = executor.run(6);
  for (i32 t = 0; t < 5; ++t) {
    EXPECT_FALSE(frames[static_cast<usize>(t)].managed) << "warm-up frame " << t;
  }
  EXPECT_TRUE(executor.deadline_set());
  EXPECT_GT(executor.deadline_ms(), 0.0);
  EXPECT_TRUE(frames[5].managed);
  EXPECT_EQ(frames[5].deadline_ms, executor.deadline_ms());

  // deadline = mean(measured warm-up latency) * headroom.
  f64 sum = 0.0;
  for (i32 t = 0; t < 5; ++t) sum += frames[static_cast<usize>(t)].measured_host_ms;
  EXPECT_NEAR(executor.deadline_ms(),
              sum / 5.0 * exec_config.deadline_headroom,
              1e-6 * executor.deadline_ms());
}

TEST(Executor, FeedbackPrimesPredictors) {
  ExecutorConfig exec_config;
  exec_config.warmup_frames = 6;
  exec_config.worker_threads = 2;
  Executor executor(heavy_config(16), exec_config);
  EXPECT_FALSE(executor.frame_markov().fitted());
  executor.run(6);

  // Full-frame mode executes RDG_FULL, MKX_FULL, ENH and ZOOM every frame.
  EXPECT_TRUE(executor.node_filter(app::kRdgFull).primed());
  EXPECT_TRUE(executor.node_filter(app::kMkxFull).primed());
  EXPECT_TRUE(executor.node_filter(app::kEnh).primed());
  EXPECT_TRUE(executor.node_filter(app::kZoom).primed());
  EXPECT_GT(executor.node_filter(app::kRdgFull).value(), 0.0);
  EXPECT_TRUE(executor.frame_markov().fitted());

  // The forecast mirrors the primed filters.
  const std::vector<rt::NodeForecast> fc = executor.host_forecast();
  EXPECT_TRUE(fc[app::kRdgFull].active);
  EXPECT_GT(fc[app::kRdgFull].serial_ms, 0.0);
  EXPECT_FALSE(fc[app::kRdgRoi].active);
}

TEST(Executor, ScenarioSequenceMatchesSerialApp) {
  // The executor repartitions and stripes, but the *content* decisions
  // (switch scenario per frame) must match a plain serial run bit for bit.
  constexpr i32 kFrames = 12;
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 0.5;  // managed (and striping) from frame 0
  exec_config.worker_threads = 4;
  Executor executor(small_config(kFrames), exec_config);
  const std::vector<ExecutedFrame> managed = executor.run(kFrames);

  app::StentBoostApp serial(small_config(kFrames));
  const std::vector<graph::FrameRecord> reference = serial.run(kFrames);

  ASSERT_EQ(managed.size(), reference.size());
  for (usize t = 0; t < reference.size(); ++t) {
    EXPECT_EQ(managed[t].scenario, reference[t].scenario) << "frame " << t;
  }
}

TEST(Executor, RepartitionsWhenPredictionCrossesDeadline) {
  // Tight fixed deadline: frame 0 plans serially (filters unprimed, forecast
  // 0), frame 1's primed forecast exceeds the deadline and the plan widens —
  // a live repartition.
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 0.3;
  exec_config.worker_threads = 4;
  exec_config.max_stripes_per_task = 4;
  Executor executor(heavy_config(8), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(6);

  EXPECT_EQ(frames[0].plan, app::serial_plan());
  EXPECT_FALSE(frames[0].repartitioned);
  EXPECT_NE(frames[1].plan, app::serial_plan());
  EXPECT_TRUE(frames[1].repartitioned);
  EXPECT_GT(frames[1].predicted_host_ms, 0.0);
  EXPECT_GE(executor.stats().repartitions, 1);
}

TEST(Executor, DropPolicyCountsMissesAndDrops) {
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 1e-3;  // impossible: every frame misses
  exec_config.policy = DeadlinePolicy::Drop;
  exec_config.worker_threads = 2;
  Executor executor(small_config(8), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(4);

  for (const ExecutedFrame& f : frames) {
    EXPECT_TRUE(f.deadline_miss);
    EXPECT_TRUE(f.dropped);
  }
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.frames, 4);
  EXPECT_EQ(stats.deadline_misses, 4);
  EXPECT_EQ(stats.dropped_frames, 4);
  EXPECT_GT(stats.mean_measured_ms, 0.0);
}

TEST(Executor, DegradePolicyWalksQualityLadderDown) {
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 1e-3;  // unreachable even at min quality
  exec_config.policy = DeadlinePolicy::Degrade;
  exec_config.worker_threads = 2;
  Executor executor(heavy_config(8), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(4);

  // Frame 0 plans on an unprimed (zero) forecast and stays at full quality;
  // once the filters are primed the ladder is walked all the way down.
  EXPECT_EQ(frames[0].quality_level, 0);
  const i32 max_level = narrow<i32>(rt::quality_ladder().size()) - 1;
  EXPECT_EQ(frames[1].quality_level, max_level);
  EXPECT_FALSE(frames[1].dropped);  // Degrade never drops
  EXPECT_GE(executor.stats().degraded_frames, 3);
  EXPECT_EQ(executor.stats().dropped_frames, 0);
}

TEST(Executor, AdaptDisabledKeepsSerialPlan) {
  ExecutorConfig exec_config;
  exec_config.deadline_ms = 0.3;  // tight, but adaptation is off
  exec_config.adapt = false;
  exec_config.worker_threads = 4;
  Executor executor(heavy_config(8), exec_config);
  const std::vector<ExecutedFrame> frames = executor.run(4);

  for (const ExecutedFrame& f : frames) {
    EXPECT_EQ(f.plan, app::serial_plan());
    EXPECT_FALSE(f.repartitioned);
  }
  EXPECT_EQ(executor.stats().repartitions, 0);
}

TEST(Executor, ValidatesGraphAtStartup) {
  Executor executor(small_config(4), ExecutorConfig{});
  EXPECT_FALSE(executor.validation_report().has_errors());
}

}  // namespace
}  // namespace tc::exec
