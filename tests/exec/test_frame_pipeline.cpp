// Pipelined execution must be *byte-identical* to serial execution: the
// FrameContext/StreamState refactor promises that overlapping run_back(t-1)
// with run_front(t) — plus striped/batched instance fan-out on a real
// thread pool — changes only host wall-clock, never a FrameRecord field
// (host_ms excluded, it measures the host by definition).

#include "exec/frame_pipeline.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "app/stentboost.hpp"
#include "exec/executor.hpp"
#include "runtime/partition.hpp"

namespace tc::exec {
namespace {

/// Config whose sequence walks the scenario space: a contrast bolus toggles
/// SW_RDG, ROI estimation toggles SW_ROI, marker dropout fails SW_REG.
app::StentBoostConfig sweep_config(u64 seed = 5) {
  app::StentBoostConfig c = app::StentBoostConfig::make(128, 128, 60, seed);
  c.sequence.contrast_in_frame = 15;
  c.sequence.contrast_out_frame = 45;
  c.sequence.marker_dropout_prob = 0.10;
  return c;
}

void expect_identical(const graph::FrameRecord& s, const graph::FrameRecord& p) {
  ASSERT_EQ(s.frame, p.frame);
  ASSERT_EQ(s.scenario, p.scenario) << "frame " << s.frame;
  ASSERT_EQ(s.latency_ms, p.latency_ms) << "frame " << s.frame;
  ASSERT_EQ(s.roi_pixels, p.roi_pixels) << "frame " << s.frame;
  ASSERT_EQ(s.tasks.size(), p.tasks.size()) << "frame " << s.frame;
  for (usize i = 0; i < s.tasks.size(); ++i) {
    const graph::TaskExecution& a = s.tasks[i];
    const graph::TaskExecution& b = p.tasks[i];
    ASSERT_EQ(a.node, b.node) << "frame " << s.frame << " task " << i;
    ASSERT_EQ(a.executed, b.executed)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.simulated_ms, b.simulated_ms)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.pixel_ops, b.work.pixel_ops)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.feature_ops, b.work.feature_ops)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.bytes_read, b.work.bytes_read)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.bytes_written, b.work.bytes_written)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.input_bytes, b.work.input_bytes)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.intermediate_bytes, b.work.intermediate_bytes)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.output_bytes, b.work.output_bytes)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.items, b.work.items)
        << "frame " << s.frame << " " << app::node_name(a.node);
    ASSERT_EQ(a.work.data_parallel, b.work.data_parallel)
        << "frame " << s.frame << " " << app::node_name(a.node);
    // host_ms intentionally excluded: it measures the host.
  }
}

/// Serial reference vs. a pipelined run over the same pre-rendered images
/// and the same stripe plan; `frames_in_flight` frames overlap.
void run_comparison(const app::StripePlan& plan, i32 frames_in_flight,
                    const app::InstanceBudget& budget, i32 pool_threads) {
  const app::StentBoostConfig config = sweep_config();
  const i32 n = 60;
  const img::AngioSequence sequence(config.sequence);
  std::vector<img::ImageU16> images;
  images.reserve(static_cast<usize>(n));
  for (i32 t = 0; t < n; ++t) images.push_back(sequence.render(t));

  app::StentBoostApp serial(config);
  serial.set_stripe_plan(plan);
  std::vector<graph::FrameRecord> serial_records;
  for (i32 t = 0; t < n; ++t) {
    serial_records.push_back(serial.process_image(t, images[static_cast<usize>(t)]));
  }

  plat::ThreadPool pool(static_cast<usize>(pool_threads));
  app::StentBoostApp piped(config, &pool);
  piped.set_stripe_plan(plan);
  piped.set_instance_budget(budget);
  FramePipelineConfig pc;
  pc.frames_in_flight = frames_in_flight;
  FramePipeline pipeline(piped, pc);
  for (i32 t = 0; t < n; ++t) {
    ASSERT_TRUE(pipeline.submit(t, images[static_cast<usize>(t)]));
  }
  pipeline.drain();
  std::vector<graph::FrameRecord> piped_records = pipeline.take_records();

  ASSERT_EQ(piped_records.size(), static_cast<usize>(n));
  std::set<graph::ScenarioId> seen;
  for (i32 t = 0; t < n; ++t) {
    const graph::FrameRecord& p = piped_records[static_cast<usize>(t)];
    ASSERT_EQ(p.frame, t);  // retires in frame order
    expect_identical(serial_records[static_cast<usize>(t)], p);
    seen.insert(p.scenario);
  }
  // The sweep actually exercises the scenario space (bolus + dropout).
  EXPECT_GE(seen.size(), 4u);

  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.frames_in, n);
  EXPECT_EQ(stats.frames_out, n);
  EXPECT_EQ(stats.frames_dropped, 0);
}

TEST(FramePipeline, TwoInFlightSerialPlanMatchesSerial) {
  run_comparison(app::serial_plan(), /*frames_in_flight=*/2,
                 app::InstanceBudget{}, /*pool_threads=*/2);
}

TEST(FramePipeline, ThreeInFlightStripedMatchesSerial) {
  app::StripePlan plan = app::serial_plan();
  for (i32 node = 0; node < app::kNodeCount; ++node) {
    if (app::node_data_parallel(node)) plan[static_cast<usize>(node)] = 4;
  }
  rt::PlanChoice choice;
  choice.plan = plan;
  run_comparison(plan, /*frames_in_flight=*/3,
                 rt::budget_for_plan(choice, 4, 3), /*pool_threads=*/4);
}

TEST(FramePipeline, ThrottledBudgetSerializesInstancesIdentically) {
  // max_concurrent == 1 forces every fan-out onto the slot thread; the
  // records must not notice.
  app::StripePlan plan = app::serial_plan();
  plan[app::kRdgFull] = 3;
  plan[app::kRdgRoi] = 3;
  plan[app::kZoom] = 3;
  app::InstanceBudget budget;
  budget.max_concurrent = 1;
  budget.feature_batches = 3;
  run_comparison(plan, /*frames_in_flight=*/2, budget, /*pool_threads=*/4);
}

TEST(FramePipeline, AdmitAndRetireHooksFireInFrameOrder) {
  const app::StentBoostConfig config = sweep_config();
  plat::ThreadPool pool(2);
  app::StentBoostApp app(config, &pool);
  std::vector<i32> admitted;
  std::vector<i32> retired;
  FramePipelineConfig pc;
  pc.frames_in_flight = 2;
  pc.on_admit = [&](i32 t) { admitted.push_back(t); };
  pc.on_retire = [&](const graph::FrameRecord& r) { retired.push_back(r.frame); };
  FramePipeline pipeline(app, pc);
  const i32 n = 12;
  for (i32 t = 0; t < n; ++t) pipeline.submit(t);
  pipeline.drain();
  ASSERT_EQ(admitted.size(), static_cast<usize>(n));
  ASSERT_EQ(retired.size(), static_cast<usize>(n));
  for (i32 t = 0; t < n; ++t) {
    EXPECT_EQ(admitted[static_cast<usize>(t)], t);
    EXPECT_EQ(retired[static_cast<usize>(t)], t);
  }
}

TEST(FramePipeline, ExecutorRunPipelinedMatchesSerialRecords) {
  // End to end through the executor: adaptation off and a fixed deadline
  // pin the plan, so run() and run_pipelined() must produce frames with
  // identical simulated content.
  ExecutorConfig ec;
  ec.worker_threads = 2;
  ec.deadline_ms = 50.0;
  ec.adapt = false;
  ec.validate_at_startup = false;
  Executor serial(sweep_config(), ec);
  Executor piped(sweep_config(), ec);
  const i32 n = 24;
  std::vector<ExecutedFrame> a = serial.run(n);
  std::vector<ExecutedFrame> b = piped.run_pipelined(n, 2);
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].frame, b[i].frame);
    EXPECT_EQ(a[i].scenario, b[i].scenario) << "frame " << a[i].frame;
    EXPECT_EQ(a[i].plan, b[i].plan) << "frame " << a[i].frame;
  }
  EXPECT_EQ(serial.stats().frames, piped.stats().frames);
}

}  // namespace
}  // namespace tc::exec
