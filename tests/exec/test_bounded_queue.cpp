#include "exec/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tc::exec {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(3));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, CapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.total_pushed(), 2u);
}

TEST(BoundedQueue, PushAfterCloseFails) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(2));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueue, PopDrainsAfterCloseThenEndOfStream) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // stays end-of-stream
}

TEST(BoundedQueue, CloseIsIdempotent) {
  BoundedQueue<int> q(1);
  q.close();
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, BlockedPushCountsBackpressure) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.push(2)); });  // must wait
  // Give the producer time to hit the full queue, then free a slot.
  while (q.blocked_pushes() == 0) std::this_thread::yield();
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  producer.join();
  EXPECT_EQ(q.blocked_pushes(), 1u);
  EXPECT_EQ(q.pop(), std::optional<int>(2));
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&q] { EXPECT_FALSE(q.push(2)); });
  while (q.blocked_pushes() == 0) std::this_thread::yield();
  q.close();
  producer.join();
}

TEST(BoundedQueue, CloseWhileFullWakesAllProducersAndDrains) {
  // Shutdown with a full queue and several throttled producers: close()
  // must refuse every blocked push (none may sneak an item in after the
  // close), wake them all, and still let consumers drain what was queued.
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q, p] { EXPECT_FALSE(q.push(100 + p)); });
  }
  while (q.blocked_pushes() < 3) std::this_thread::yield();
  q.close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.total_pushed(), 2u);
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&q] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  // 4 producers x 250 items through a capacity-2 queue into 3 consumers:
  // every item must arrive exactly once (exercised under TSan in CI).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(2);
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        received.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  // Sum of 0..total-1.
  EXPECT_EQ(sum.load(), static_cast<long long>(total) * (total - 1) / 2);
  EXPECT_EQ(q.total_pushed(), static_cast<u64>(total));
}

}  // namespace
}  // namespace tc::exec
