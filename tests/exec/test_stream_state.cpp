// StreamState is the only cross-frame state of the pipelined app: tickets
// are issued at admission and every commit must happen in strict ticket
// order.  These tests pin the ordering edge cases (out-of-order commits
// block, admissions see the predecessor's committed state, acquire_back
// moves ownership) under real threads — run them under TSan.

#include "app/frame_context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace tc::app {
namespace {

TEST(StreamState, TicketsAreSequentialFromZero) {
  StreamState stream;
  FrontState front;
  EXPECT_EQ(stream.admit(front), 0u);
  stream.commit_front(0, front);
  EXPECT_EQ(stream.admit(front), 1u);
  stream.commit_front(1, front);
  EXPECT_EQ(stream.tickets_issued(), 2u);
}

TEST(StreamState, AdmissionSeesPredecessorsCommittedFront) {
  StreamState stream;
  FrontState front;
  const u64 t0 = stream.admit(front);
  EXPECT_TRUE(front.rdg_active);  // initial state
  FrontState next;
  next.rdg_active = false;
  next.quiet_frames = 7;
  stream.commit_front(t0, next);
  FrontState seen;
  const u64 t1 = stream.admit(seen);
  EXPECT_EQ(t1, 1u);
  EXPECT_FALSE(seen.rdg_active);
  EXPECT_EQ(seen.quiet_frames, 7);
}

TEST(StreamState, AdmitBlocksUntilPredecessorCommitsFront) {
  StreamState stream;
  FrontState front;
  const u64 t0 = stream.admit(front);

  std::atomic<bool> admitted{false};
  FrontState seen;
  std::thread next([&] {
    (void)stream.admit(seen);  // ticket 1: must wait for commit_front(0)
    admitted.store(true);
  });
  // The successor cannot admit before ticket 0 commits its front state.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  FrontState committed;
  committed.quiet_frames = 3;
  stream.commit_front(t0, committed);
  next.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(seen.quiet_frames, 3);
}

TEST(StreamState, OutOfOrderFrontCommitBlocksUntilPredecessor) {
  StreamState stream;
  FrontState f0, f1;
  const u64 t0 = stream.admit(f0);
  stream.commit_front(t0, f0);
  const u64 t1 = stream.admit(f1);

  // Ticket 2 is admitted on another thread only after t1 commits, so its
  // commit necessarily serializes behind t1's.
  std::atomic<int> order{0};
  std::thread late([&] {
    FrontState f2;
    const u64 t2 = stream.admit(f2);
    EXPECT_EQ(t2, 2u);
    EXPECT_EQ(order.load(), 1);  // t1 committed first
    f2.quiet_frames = 2;
    stream.commit_front(t2, f2);
    order.store(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  order.store(1);
  f1.quiet_frames = 1;
  stream.commit_front(t1, f1);
  late.join();
  EXPECT_EQ(order.load(), 2);
  EXPECT_EQ(stream.front().quiet_frames, 2);
}

TEST(StreamState, BackStateMovesThroughAcquireCommit) {
  StreamState stream;
  FrontState front;
  const u64 t0 = stream.admit(front);
  stream.commit_front(t0, front);

  BackState back;
  stream.acquire_back(t0, back);
  EXPECT_TRUE(back.accumulator.empty());
  back.accumulator = img::ImageF32(8, 8);
  back.ref_roi = Rect{1, 2, 3, 4};
  stream.commit_back(t0, std::move(back));

  // The next ticket acquires exactly what ticket 0 committed.
  const u64 t1 = stream.admit(front);
  stream.commit_front(t1, front);
  BackState seen;
  stream.acquire_back(t1, seen);
  EXPECT_EQ(seen.accumulator.width(), 8);
  EXPECT_EQ(seen.ref_roi, (Rect{1, 2, 3, 4}));
}

TEST(StreamState, BackCommitOrderIsTicketOrder) {
  StreamState stream;
  // Two tickets through the front.
  FrontState f;
  const u64 t0 = stream.admit(f);
  stream.commit_front(t0, f);
  const u64 t1 = stream.admit(f);
  stream.commit_front(t1, f);

  std::atomic<int> order{0};
  std::thread second([&] {
    BackState b;
    stream.acquire_back(t1, b);  // blocks until commit_back(0)
    EXPECT_EQ(order.load(), 1);
    stream.commit_back(t1, std::move(b));
    order.store(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(order.load(), 0);
  BackState b0;
  stream.acquire_back(t0, b0);
  order.store(1);
  stream.commit_back(t0, std::move(b0));
  second.join();
  EXPECT_EQ(order.load(), 2);
}

TEST(StreamState, ResetRestartsTicketSequence) {
  StreamState stream;
  FrontState f;
  f.quiet_frames = 9;
  const u64 t0 = stream.admit(f);
  f.quiet_frames = 9;
  stream.commit_front(t0, f);
  stream.reset();
  EXPECT_EQ(stream.tickets_issued(), 0u);
  FrontState fresh;
  EXPECT_EQ(stream.admit(fresh), 0u);
  EXPECT_EQ(fresh.quiet_frames, 0);  // state cleared, not carried over
  EXPECT_TRUE(fresh.rdg_active);
}

TEST(StreamState, PipelineOfThreadsProgressesInTicketOrder) {
  // A miniature front/back pipeline: N frames, front thread commits
  // quiet_frames = ticket, back thread checks it observes every commit in
  // order.  TSan-checked handshake of the real usage pattern.
  StreamState stream;
  const int n = 32;
  std::thread front([&] {
    for (int i = 0; i < n; ++i) {
      FrontState f;
      const u64 ticket = stream.admit(f);
      EXPECT_EQ(f.quiet_frames, static_cast<i32>(ticket));
      FrontState next;
      next.quiet_frames = static_cast<i32>(ticket) + 1;
      stream.commit_front(ticket, next);
    }
  });
  std::thread back([&] {
    for (int i = 0; i < n; ++i) {
      BackState b;
      stream.acquire_back(static_cast<u64>(i), b);
      b.ref_roi.x = i;
      stream.commit_back(static_cast<u64>(i), std::move(b));
    }
  });
  front.join();
  back.join();
  EXPECT_EQ(stream.tickets_issued(), static_cast<u64>(n));
  EXPECT_EQ(stream.back_ref_roi().x, n - 1);
  EXPECT_EQ(stream.front().quiet_frames, n);
}

}  // namespace
}  // namespace tc::app
