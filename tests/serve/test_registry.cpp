#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tc::serve {
namespace {

app::StentBoostConfig app_config(i32 size = 128) {
  return app::StentBoostConfig::make(size, size, /*frames=*/8, /*seed=*/3);
}

exec::PredictorSnapshot trained_snapshot(u64 frames, f64 node0_ms = 5.0) {
  exec::PredictorSnapshot snap;
  snap.trained_frames = frames;
  snap.node_primed[0] = true;
  snap.node_serial_ms[0] = node0_ms;
  return snap;
}

TEST(ClassKey, EncodesGeometryAndPipelineFacets) {
  const std::string base = PredictorRegistry::class_key(app_config());
  EXPECT_EQ(base, "128x128");

  app::StentBoostConfig ff = app_config();
  ff.force_full_frame = true;
  EXPECT_EQ(PredictorRegistry::class_key(ff), "128x128/ff");

  app::StentBoostConfig roi = app_config();
  roi.roi_side_override = 64;
  EXPECT_EQ(PredictorRegistry::class_key(roi), "128x128/roi64");

  // Different geometry, different class; identical config, identical class.
  EXPECT_NE(PredictorRegistry::class_key(app_config(256)), base);
  EXPECT_EQ(PredictorRegistry::class_key(app_config()), base);
}

TEST(PredictorRegistry, LookupMissThenHitTracksCounters) {
  PredictorRegistry reg;
  EXPECT_FALSE(reg.lookup("128x128").has_value());
  EXPECT_EQ(reg.misses(), 1u);

  reg.publish("128x128", trained_snapshot(16));
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.publishes(), 1u);

  const auto snap = reg.lookup("128x128");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->trained_frames, 16u);
  EXPECT_NEAR(snap->node_serial_ms[0], 5.0, 1e-12);
  EXPECT_EQ(reg.hits(), 1u);
}

TEST(PredictorRegistry, UntrainedSnapshotsAreDropped) {
  PredictorRegistry reg;
  reg.publish("k", exec::PredictorSnapshot{});
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.publishes(), 0u);
}

TEST(PredictorRegistry, BetterTrainedSnapshotReplacesWorse) {
  PredictorRegistry reg;
  reg.publish("k", trained_snapshot(10, /*node0_ms=*/1.0));
  reg.publish("k", trained_snapshot(50, /*node0_ms=*/2.0));
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_NEAR(reg.lookup("k")->node_serial_ms[0], 2.0, 1e-12);

  // A less-trained snapshot must not clobber the stored one.
  reg.publish("k", trained_snapshot(5, /*node0_ms=*/9.0));
  EXPECT_NEAR(reg.lookup("k")->node_serial_ms[0], 2.0, 1e-12);
}

TEST(PredictorRegistry, ClassesAreIndependent) {
  PredictorRegistry reg;
  reg.publish("a", trained_snapshot(10, 1.0));
  reg.publish("b", trained_snapshot(10, 2.0));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_NEAR(reg.lookup("a")->node_serial_ms[0], 1.0, 1e-12);
  EXPECT_NEAR(reg.lookup("b")->node_serial_ms[0], 2.0, 1e-12);
}

TEST(PredictorRegistry, ConcurrentPublishAndLookupStaySane) {
  PredictorRegistry reg;
  const i32 threads = 4;
  const i32 rounds = 200;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (i32 w = 0; w < threads; ++w) {
    workers.emplace_back([&reg, w] {
      for (i32 r = 0; r < rounds; ++r) {
        reg.publish("shared", trained_snapshot(static_cast<u64>(r + 1),
                                               static_cast<f64>(w)));
        const auto snap = reg.lookup("shared");
        ASSERT_TRUE(snap.has_value());
        ASSERT_GE(snap->trained_frames, 1u);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.publishes(), static_cast<u64>(threads * rounds));
  EXPECT_EQ(reg.hits(), static_cast<u64>(threads * rounds));
  // The stored snapshot is the (a) most-trained one published.
  EXPECT_EQ(reg.lookup("shared")->trained_frames, static_cast<u64>(rounds));
}

}  // namespace
}  // namespace tc::serve
