// Fleet-status snapshot accessors and the live-scrape concurrency contract:
// four HTTP clients hammer /metrics and /streams while an 8-stream fleet
// drains on the shared pool.  Every scrape must return 200 with parseable
// JSON/Prometheus text, and (under TSan) must not race the scheduler —
// handlers only ever touch StatusAggregator snapshots.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "obs/telemetry_server.hpp"
#include "serve/stream_server.hpp"

namespace tc::serve {
namespace {

StreamConfig make_stream(const char* name, f64 deadline_ms, i32 frames,
                         u64 seed) {
  StreamConfig stream;
  stream.app = app::StentBoostConfig::make(96, 96, frames, seed);
  stream.name = name;
  stream.deadline_ms = deadline_ms;
  stream.frames = frames;
  return stream;
}

TEST(FleetStatus, SnapshotReflectsDrainedFleet) {
  ServeConfig sc;
  sc.pool_threads = 2;
  sc.max_concurrent_streams = 2;
  StreamServer server(sc);
  (void)server.submit(make_stream("alpha", 500.0, /*frames=*/8, /*seed=*/1));
  (void)server.submit(make_stream("beta", 500.0, /*frames=*/8, /*seed=*/2));
  server.drain();

  const FleetStatus fs = server.fleet_status();
  EXPECT_FALSE(fs.draining);
  EXPECT_EQ(fs.done, 2);
  EXPECT_EQ(fs.active, 0);
  EXPECT_EQ(fs.fleet_frames, 16);
  EXPECT_GT(fs.capacity_cores, 0.0);
  ASSERT_EQ(fs.streams.size(), 2u);
  for (const StreamStatus& st : fs.streams) {
    EXPECT_EQ(st.state, "done");
    EXPECT_EQ(st.verdict, "admit");
    EXPECT_EQ(st.frames_done, 8);
    EXPECT_EQ(st.frames_total, 8);
    // The default serve config runs the prediction ledger, so the rolling
    // CPU calibration has samples.
    EXPECT_GT(st.calibration_samples, 0u);
  }

  // The JSON rendering of the same snapshot parses and matches.
  const common::JsonValue doc =
      common::JsonValue::parse(server.fleet_status_json());
  EXPECT_TRUE(doc.get("ready").as_bool());
  EXPECT_EQ(doc.number_or("done", 0.0), 2.0);
  ASSERT_EQ(doc.get("streams").items().size(), 2u);
  const common::JsonValue& s0 = doc.get("streams").items()[0];
  EXPECT_EQ(s0.string_or("state", ""), "done");
  EXPECT_EQ(s0.get("slo").number_or("frames", -1.0), 8.0);
  EXPECT_GT(s0.get("calibration").number_or("samples", 0.0), 0.0);
}

TEST(FleetStatus, LedgerRowsMergeAcrossStreams) {
  ServeConfig sc;
  sc.pool_threads = 2;
  sc.max_concurrent_streams = 2;
  StreamServer server(sc);
  const i32 a = server.submit(make_stream("a", 500.0, 6, 3));
  const i32 b = server.submit(make_stream("b", 500.0, 6, 4));
  server.drain();
  ASSERT_TRUE(server.report(a).served);
  ASSERT_TRUE(server.report(b).served);

  const std::vector<obs::LedgerRow> rows = server.ledger_rows();
  ASSERT_FALSE(rows.empty());
  bool saw_a = false;
  bool saw_b = false;
  for (const obs::LedgerRow& row : rows) {
    if (row.stream == a) saw_a = true;
    if (row.stream == b) saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(TelemetryScrape, FourClientsHammerALiveEightStreamFleet) {
  ServeConfig sc;
  sc.pool_threads = 2;
  sc.max_concurrent_streams = 4;
  sc.telemetry.enabled = true;
  sc.telemetry.port = 0;  // ephemeral
  sc.telemetry.handler_threads = 4;
  StreamServer server(sc);
  ASSERT_NE(server.telemetry(), nullptr);
  ASSERT_TRUE(server.telemetry()->running());
  const i32 port = server.telemetry()->port();
  ASSERT_GT(port, 0);

  for (i32 i = 0; i < 8; ++i) {
    const std::string name = "s" + std::to_string(i);
    (void)server.submit(make_stream(name.c_str(), 500.0, /*frames=*/6,
                                    /*seed=*/static_cast<u64>(i + 1)));
  }

  std::atomic<bool> stop{false};
  std::atomic<i32> bad_scrapes{0};
  std::atomic<i32> scrapes{0};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (i32 c = 0; c < 4; ++c) {
    clients.emplace_back([&stop, &bad_scrapes, &scrapes, port] {
      while (!stop.load(std::memory_order_acquire)) {
        const obs::HttpResult metrics =
            obs::http_get("127.0.0.1", port, "/metrics");
        const obs::HttpResult streams =
            obs::http_get("127.0.0.1", port, "/streams");
        if (metrics.status != 200 || streams.status != 200) {
          bad_scrapes.fetch_add(1, std::memory_order_relaxed);
        } else {
          try {
            (void)common::JsonValue::parse(streams.body);
          } catch (const common::JsonError&) {
            bad_scrapes.fetch_add(1, std::memory_order_relaxed);
          }
        }
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  server.drain();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(bad_scrapes.load(), 0);
  EXPECT_GT(scrapes.load(), 0);
  for (const StreamReport& r : server.reports()) {
    EXPECT_TRUE(r.served) << r.name;
    EXPECT_EQ(r.frames, 6) << r.name;
  }

  // The post-drain snapshot agrees with the reports.
  const FleetStatus fs = server.fleet_status();
  EXPECT_EQ(fs.done, 8);
  EXPECT_EQ(fs.fleet_frames, 48);
}

}  // namespace
}  // namespace tc::serve
