#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include "graph/scenario.hpp"

namespace tc::serve {
namespace {

app::StentBoostConfig small_app(u64 seed = 5) {
  return app::StentBoostConfig::make(/*width=*/96, /*height=*/96,
                                     /*frames=*/8, seed);
}

AdmissionController make_controller(i32 pool_threads = 4) {
  return AdmissionController(AdmissionConfig{}, pool_threads,
                             plat::PlatformSpec::paper_platform());
}

/// A hand-built demand that passes every feasibility check by default.
StreamDemand feasible_demand(f64 cores, f64 bus_mbps = 10.0) {
  StreamDemand d;
  d.deadline_ms = 10.0;
  d.frame_ms = cores * d.deadline_ms;
  d.cores = cores;
  d.memory_bus_mbps = bus_mbps;
  d.best_plan_ms = 1.0;
  d.plan_feasible = true;
  return d;
}

TEST(AdmissionVerdictNames, CoverAllVerdicts) {
  EXPECT_STREQ(to_string(AdmissionVerdict::Admit), "admit");
  EXPECT_STREQ(to_string(AdmissionVerdict::Queue), "queue");
  EXPECT_STREQ(to_string(AdmissionVerdict::Reject), "reject");
}

TEST(EstimateDemand, ColdProbePricesTheStream) {
  AdmissionController ctrl = make_controller();
  const StreamDemand d = ctrl.estimate_demand(small_app(), /*deadline_ms=*/50.0,
                                              /*max_stripes_per_task=*/4,
                                              /*snapshot=*/nullptr);
  EXPECT_FALSE(d.warm);
  EXPECT_GT(d.frame_ms, 0.0);
  EXPECT_GT(d.cores, 0.0);
  EXPECT_GT(d.best_plan_ms, 0.0);
  // Probe attribution (Fig. 4 buses): a 96x96 working set fits in L2, so
  // cache and I/O traffic must be attributed while memory-bus traffic may
  // legitimately be zero.
  EXPECT_GT(d.bus_mb_per_frame[0], 0.0);
  EXPECT_GE(d.bus_mb_per_frame[1], 0.0);
  EXPECT_GT(d.bus_mb_per_frame[2], 0.0);
  EXPECT_NEAR(d.memory_bus_mbps, d.bus_mb_per_frame[1] * 1000.0 / 50.0, 1e-9);
  // Cores = frame_ms / deadline (above the configured floor).
  EXPECT_NEAR(d.cores, std::max(ctrl.config().min_cores, d.frame_ms / 50.0),
              1e-9);
}

TEST(EstimateDemand, WarmSnapshotSkipsTheProbe) {
  AdmissionController ctrl = make_controller();
  exec::PredictorSnapshot snap;
  snap.trained_frames = 32;
  snap.node_primed[0] = true;
  snap.node_serial_ms[0] = 4.0;
  snap.node_primed[1] = true;
  snap.node_serial_ms[1] = 2.0;
  snap.bus_mb_per_frame = {1.0, 2.0, 0.5};

  const StreamDemand d =
      ctrl.estimate_demand(small_app(), /*deadline_ms=*/60.0,
                           /*max_stripes_per_task=*/4, &snap);
  EXPECT_TRUE(d.warm);
  // Unfitted Markov chain: mean_frame_ms falls back to the node sum.
  EXPECT_NEAR(d.frame_ms, 6.0, 1e-9);
  EXPECT_NEAR(d.bus_mb_per_frame[1], 2.0, 1e-9);
  EXPECT_NEAR(d.memory_bus_mbps, 2.0 * 1000.0 / 60.0, 1e-9);
}

TEST(Decide, NoDeadlineRejects) {
  AdmissionController ctrl = make_controller();
  StreamDemand d = feasible_demand(0.5);
  d.deadline_ms = 0.0;
  const AdmissionDecision decision = ctrl.decide(d);
  EXPECT_EQ(decision.verdict, AdmissionVerdict::Reject);
  EXPECT_FALSE(decision.reason.empty());
}

TEST(Decide, InfeasiblePlanRejectsEvenWithIdleCapacity) {
  AdmissionController ctrl = make_controller();
  StreamDemand d = feasible_demand(0.1);
  d.plan_feasible = false;
  d.best_plan_ms = 42.0;
  EXPECT_EQ(ctrl.decide(d).verdict, AdmissionVerdict::Reject);
}

TEST(Decide, DemandBeyondTotalCapacityRejects) {
  AdmissionController ctrl = make_controller(/*pool_threads=*/4);
  // 4 threads x 0.85 headroom = 3.4 cores of capacity.
  EXPECT_EQ(ctrl.decide(feasible_demand(3.5)).verdict,
            AdmissionVerdict::Reject);
  EXPECT_EQ(ctrl.decide(feasible_demand(3.0)).verdict, AdmissionVerdict::Admit);
}

TEST(Decide, BusSaturationRejectsAloneQueuesAgainstResidual) {
  AdmissionController ctrl = make_controller();
  const f64 bus_cap = ctrl.capacity_bus_mbps();
  EXPECT_EQ(ctrl.decide(feasible_demand(0.1, bus_cap * 1.01)).verdict,
            AdmissionVerdict::Reject);

  // Two streams at 60 % of the bus each: the first admits, the second only
  // queues (it would fit an idle server).
  const StreamDemand heavy = feasible_demand(0.1, bus_cap * 0.6);
  EXPECT_EQ(ctrl.decide(heavy).verdict, AdmissionVerdict::Admit);
  ctrl.commit(heavy);
  EXPECT_EQ(ctrl.decide(heavy).verdict, AdmissionVerdict::Queue);
}

TEST(Decide, QueueWhenResidualExhaustedAdmitAfterRelease) {
  AdmissionController ctrl = make_controller(/*pool_threads=*/4);
  const StreamDemand two_cores = feasible_demand(2.0);
  EXPECT_EQ(ctrl.decide(two_cores).verdict, AdmissionVerdict::Admit);
  ctrl.commit(two_cores);
  EXPECT_EQ(ctrl.admitted_streams(), 1);
  EXPECT_NEAR(ctrl.committed_cores(), 2.0, 1e-9);

  // Residual is 1.4 cores: a second 2-core stream fits an idle server but
  // not this one -> Queue, not Reject.
  EXPECT_EQ(ctrl.decide(two_cores).verdict, AdmissionVerdict::Queue);

  ctrl.release(two_cores);
  EXPECT_EQ(ctrl.admitted_streams(), 0);
  EXPECT_NEAR(ctrl.committed_cores(), 0.0, 1e-9);
  EXPECT_EQ(ctrl.decide(two_cores).verdict, AdmissionVerdict::Admit);
}

TEST(Decide, ReleaseFloorsAtZero) {
  AdmissionController ctrl = make_controller();
  ctrl.release(feasible_demand(1.0, 100.0));
  EXPECT_NEAR(ctrl.committed_cores(), 0.0, 1e-12);
  EXPECT_NEAR(ctrl.committed_bus_mbps(), 0.0, 1e-12);
  EXPECT_EQ(ctrl.admitted_streams(), 0);
}

/// Demand of a stream pinned to one scenario: every node active under the
/// switch bitmask costs 1 ms serial.
StreamDemand scenario_demand(graph::ScenarioId scenario, f64 deadline_ms) {
  const std::array<bool, app::kNodeCount> active =
      app::scenario_node_activity(scenario);
  StreamDemand d;
  d.deadline_ms = deadline_ms;
  for (bool a : active) {
    if (a) d.frame_ms += 1.0;
  }
  d.cores = d.frame_ms / deadline_ms;
  d.memory_bus_mbps = 1.0;
  d.best_plan_ms = deadline_ms * 0.5;
  d.plan_feasible = true;
  return d;
}

TEST(ScenarioSweep, AllEightScenariosAdmitOnAnIdleServer) {
  AdmissionController ctrl = make_controller();
  for (graph::ScenarioId s = 0; s < 8; ++s) {
    const AdmissionDecision decision = ctrl.decide(scenario_demand(s, 20.0));
    EXPECT_EQ(decision.verdict, AdmissionVerdict::Admit)
        << "scenario " << s << ": " << decision.reason;
  }
}

TEST(ScenarioSweep, HeavierScenariosDemandMoreCores) {
  // Turning a switch on can only add active nodes, so demand is monotone in
  // the bitmask partial order; the all-on scenario dominates the all-off one.
  for (graph::ScenarioId s = 0; s < 8; ++s) {
    for (i32 sw = 0; sw < 3; ++sw) {
      const graph::ScenarioId with_sw = s | (1u << sw);
      EXPECT_GE(scenario_demand(with_sw, 20.0).cores,
                scenario_demand(s, 20.0).cores)
          << "scenario " << s << " switch " << sw;
    }
  }
  EXPECT_GT(scenario_demand(7, 20.0).cores, scenario_demand(0, 20.0).cores);
}

TEST(ScenarioSweep, VerdictDegradesWithCommittedLoadPerScenario) {
  // Tight deadline: each full-scenario stream demands most of the capacity.
  AdmissionController ctrl = make_controller(/*pool_threads=*/4);
  const f64 deadline = 4.0;

  const StreamDemand full = scenario_demand(7, deadline);
  ASSERT_EQ(ctrl.decide(full).verdict, AdmissionVerdict::Admit);
  ctrl.commit(full);

  // With the heavy stream committed, every scenario that no longer fits the
  // residual queues; none may be rejected (each fits an idle server).
  for (graph::ScenarioId s = 0; s < 8; ++s) {
    const StreamDemand d = scenario_demand(s, deadline);
    const AdmissionDecision decision = ctrl.decide(d);
    EXPECT_NE(decision.verdict, AdmissionVerdict::Reject)
        << "scenario " << s << ": " << decision.reason;
    if (d.cores > ctrl.residual_cores()) {
      EXPECT_EQ(decision.verdict, AdmissionVerdict::Queue) << "scenario " << s;
    } else {
      EXPECT_EQ(decision.verdict, AdmissionVerdict::Admit) << "scenario " << s;
    }
  }
}

}  // namespace
}  // namespace tc::serve
