#include "serve/stream_server.hpp"

#include <gtest/gtest.h>

namespace tc::serve {
namespace {

StreamConfig make_stream(f64 deadline_ms, i32 frames = 10, i32 size = 96,
                         u64 seed = 11) {
  StreamConfig stream;
  stream.app = app::StentBoostConfig::make(size, size, frames, seed);
  stream.deadline_ms = deadline_ms;
  stream.frames = frames;
  return stream;
}

ServeConfig small_server() {
  ServeConfig sc;
  sc.pool_threads = 2;
  sc.max_concurrent_streams = 2;
  return sc;
}

TEST(StreamServer, ServesOneStreamToCompletion) {
  StreamServer server(small_server());
  const i32 id = server.submit(make_stream(/*deadline_ms=*/500.0));
  server.drain();

  const StreamReport r = server.report(id);
  EXPECT_EQ(r.decision.verdict, AdmissionVerdict::Admit);
  EXPECT_TRUE(r.served);
  EXPECT_EQ(r.frames, 10);
  EXPECT_EQ(r.name, "s0");  // default name fallback
  EXPECT_GT(r.mean_ms, 0.0);
  EXPECT_GE(r.p99_ms, r.p50_ms);
}

TEST(StreamServer, RejectedStreamNeverRunsAndDrainReturns) {
  StreamServer server(small_server());
  // No candidate plan fits a microsecond-scale deadline.
  const i32 id = server.submit(make_stream(/*deadline_ms=*/0.001));
  server.drain();  // must not hang with nothing admitted

  const StreamReport r = server.report(id);
  EXPECT_EQ(r.decision.verdict, AdmissionVerdict::Reject);
  EXPECT_FALSE(r.served);
  EXPECT_EQ(r.frames, 0);
  EXPECT_EQ(server.fleet().rejected, 1);
  EXPECT_EQ(server.fleet().frames, 0);
}

TEST(StreamServer, FleetAggregatesAcrossStreams) {
  StreamServer server(small_server());
  const i32 a = server.submit(make_stream(500.0, /*frames=*/8, 96, 1));
  const i32 b = server.submit(make_stream(500.0, /*frames=*/12, 96, 2));
  server.drain();

  EXPECT_TRUE(server.report(a).served);
  EXPECT_TRUE(server.report(b).served);
  const FleetReport fleet = server.fleet();
  EXPECT_EQ(fleet.submitted, 2);
  EXPECT_EQ(fleet.admitted, 2);
  EXPECT_EQ(fleet.frames, 20);
  EXPECT_GT(fleet.p99_ms, 0.0);
  EXPECT_GT(fleet.capacity_cores, 0.0);
  EXPECT_GT(fleet.peak_committed_cores, 0.0);
  EXPECT_LE(fleet.peak_committed_cores, fleet.capacity_cores + 1e-9);
  ASSERT_NE(server.fleet_slo(), nullptr);
}

TEST(StreamServer, SameClassFollowUpWarmStarts) {
  StreamServer server(small_server());
  const i32 cold = server.submit(make_stream(500.0, /*frames=*/12));
  server.drain();
  EXPECT_FALSE(server.report(cold).warm_started);
  EXPECT_GE(server.registry().publishes(), 1u);

  const i32 warm = server.submit(make_stream(500.0, /*frames=*/12));
  server.drain();
  const StreamReport r = server.report(warm);
  EXPECT_TRUE(r.served);
  EXPECT_TRUE(r.warm_started);
  EXPECT_TRUE(r.decision.demand.warm);
  EXPECT_GE(server.registry().hits(), 1u);
  EXPECT_EQ(r.class_key, server.report(cold).class_key);
}

TEST(StreamServer, QueuedStreamsPromoteAndFinish) {
  // One pool thread = 0.85 cores of capacity.  A pre-published snapshot
  // prices every stream warm at fixed numbers (4 ms frames against an 8 ms
  // deadline = 0.5 cores), making the verdicts independent of host timing:
  // the first stream admits, the rest exceed the 0.35-core residual and
  // must queue, then promote when an earlier stream retires.
  ServeConfig sc;
  sc.pool_threads = 1;
  sc.max_concurrent_streams = 2;
  StreamServer server(sc);
  exec::PredictorSnapshot snap;
  snap.trained_frames = 64;
  snap.node_primed[0] = true;
  snap.node_serial_ms[0] = 4.0;
  server.registry().publish(
      PredictorRegistry::class_key(make_stream(1.0).app), snap);
  const f64 deadline = 8.0;
  std::vector<i32> ids;
  for (i32 i = 0; i < 3; ++i) {
    ids.push_back(server.submit(make_stream(deadline, /*frames=*/8, 96,
                                            /*seed=*/static_cast<u64>(i))));
  }
  server.drain();

  i32 served = 0;
  i32 queued_at_submit = 0;
  for (const i32 id : ids) {
    const StreamReport r = server.report(id);
    if (r.served) ++served;
    if (r.decision.verdict == AdmissionVerdict::Queue) ++queued_at_submit;
    EXPECT_NE(r.decision.verdict, AdmissionVerdict::Reject)
        << r.name << ": " << r.decision.reason;
  }
  // Every non-rejected stream must eventually be served (queued ones by
  // promotion), regardless of how many fit the initial residual.
  EXPECT_EQ(served, 3);
  EXPECT_EQ(queued_at_submit, 2);
  EXPECT_EQ(server.fleet().queued, 2);
}

TEST(StreamServer, PerStreamSloMonitorsCoexist) {
  ServeConfig sc = small_server();
  sc.slo_min_frames = 4;
  sc.slo_window = 8;
  StreamServer server(sc);
  StreamConfig a = make_stream(500.0, /*frames=*/8);
  a.name = "alpha";
  StreamConfig b = make_stream(500.0, /*frames=*/8, 96, /*seed=*/9);
  b.name = "beta";
  (void)server.submit(std::move(a));
  (void)server.submit(std::move(b));
  server.drain();

  // Objectives are stream-prefixed, so both monitors share the registry and
  // the fleet monitor aggregates everything it saw (ring capped at the
  // 8-frame window).
  ASSERT_NE(server.fleet_slo(), nullptr);
  EXPECT_EQ(server.fleet_slo()->window_snapshot().frames, 8);
  for (const StreamReport& r : server.reports()) {
    EXPECT_TRUE(r.served);
    EXPECT_GE(r.miss_rate, 0.0);
    EXPECT_LE(r.miss_rate, 1.0);
  }
}

TEST(StreamServer, WeightsShapePoolShares) {
  // A 4-thread pool split between weights 3 and 1: the heavy stream's
  // planner must see a larger share.  (Shares are recomputed per step; this
  // asserts the configured weights survive into the reports.)
  ServeConfig sc;
  sc.pool_threads = 4;
  sc.max_concurrent_streams = 2;
  StreamServer server(sc);
  StreamConfig heavy = make_stream(500.0, /*frames=*/8);
  heavy.weight = 3.0;
  StreamConfig light = make_stream(500.0, /*frames=*/8, 96, /*seed=*/17);
  light.weight = 1.0;
  const i32 h = server.submit(std::move(heavy));
  const i32 l = server.submit(std::move(light));
  server.drain();

  EXPECT_NEAR(server.report(h).weight, 3.0, 1e-12);
  EXPECT_NEAR(server.report(l).weight, 1.0, 1e-12);
  EXPECT_TRUE(server.report(h).served);
  EXPECT_TRUE(server.report(l).served);
}

}  // namespace
}  // namespace tc::serve
