#include "analysis/diagnostics.hpp"

#include <gtest/gtest.h>

#include "analysis/rules.hpp"

namespace tc::analysis {
namespace {

Diagnostic diag(std::string rule, Severity sev, std::string message) {
  Diagnostic d;
  d.rule = std::move(rule);
  d.severity = sev;
  d.message = std::move(message);
  return d;
}

TEST(Report, TalliesBySeverity) {
  Report r;
  r.add(diag("G001", Severity::Error, "cycle"));
  r.add(diag("G004", Severity::Warn, "isolated"));
  r.add(diag("M007", Severity::Info, "untrained"));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 1u);
  EXPECT_EQ(r.count(Severity::Info), 1u);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(r.has_warnings());
}

TEST(Report, EmptyReportIsClean) {
  Report r;
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.has_errors());
  EXPECT_FALSE(r.has_warnings());
}

TEST(Report, MergeAppendsInOrder) {
  Report a;
  a.add(diag("G001", Severity::Error, "first"));
  Report b;
  b.add(diag("M001", Severity::Error, "second"));
  a.merge(std::move(b));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.diagnostics()[0].rule, "G001");
  EXPECT_EQ(a.diagnostics()[1].rule, "M001");
}

TEST(Report, ByRuleAndFired) {
  Report r;
  r.add(diag("S002", Severity::Warn, "scenario 3"));
  r.add(diag("S002", Severity::Warn, "scenario 5"));
  r.add(diag("G001", Severity::Error, "cycle"));
  EXPECT_TRUE(r.fired("S002"));
  EXPECT_FALSE(r.fired("B001"));
  EXPECT_EQ(r.by_rule("S002").size(), 2u);
}

TEST(Report, TextOutputContainsRuleAndSummary) {
  Report r;
  r.add(diag("G001", Severity::Error, "flow graph contains a cycle"));
  const std::string text = r.to_text();
  EXPECT_NE(text.find("G001"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(Report, CsvEscapesQuotesAndCommas) {
  Report r;
  r.add(diag("G005", Severity::Error, "name \"SW, REG\" duplicated"));
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("rule,severity,subject,index,location,message,hint"),
            std::string::npos);
  EXPECT_NE(csv.find("\"name \"\"SW, REG\"\" duplicated\""), std::string::npos);
}

TEST(Report, JsonCountsAndEscapes) {
  Report r;
  r.add(diag("M001", Severity::Error, "row \"2\" bad"));
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\\\"2\\\""), std::string::npos);
}

TEST(Report, SarifHasSchemaToolAndResults) {
  Report r;
  Diagnostic d = diag("A002", Severity::Error, "over budget");
  d.subject = Subject::Scenario;
  d.index = 5;
  r.add(d);
  const std::string sarif = r.to_sarif("triplec-audit");
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"triplec-audit\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"A002\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"subjectIndex\":5"), std::string::npos);
}

TEST(Report, SarifMapsSeveritiesAndDeduplicatesRules) {
  Report r;
  r.add(diag("G004", Severity::Warn, "isolated"));
  r.add(diag("G004", Severity::Warn, "another isolated"));
  r.add(diag("M007", Severity::Info, "untrained"));
  const std::string sarif = r.to_sarif("triplec-lint");
  EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"note\""), std::string::npos);
  // G004 fired twice but appears once in the driver's rule catalog.
  usize first = sarif.find("\"id\":\"G004\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(sarif.find("\"id\":\"G004\"", first + 1), std::string::npos);
  // Both results reference the same rule index.
  EXPECT_EQ(sarif.find("\"ruleIndex\":2"), std::string::npos);
}

TEST(Report, SarifEscapesMessageText) {
  Report r;
  r.add(diag("G005", Severity::Error, "name \"SW\" duplicated"));
  const std::string sarif = r.to_sarif("triplec-lint");
  EXPECT_NE(sarif.find("\\\"SW\\\""), std::string::npos);
}

TEST(Report, EmptyReportYieldsValidSarifRun) {
  Report r;
  const std::string sarif = r.to_sarif("triplec-audit");
  EXPECT_NE(sarif.find("\"results\":[]"), std::string::npos);
}

TEST(RuleCatalog, EveryRuleHasIdSeverityTitle) {
  const auto catalog = rule_catalog();
  EXPECT_GE(catalog.size(), 20u);
  for (const RuleInfo& info : catalog) {
    EXPECT_FALSE(info.id.empty());
    EXPECT_FALSE(info.title.empty());
    const RuleInfo* found = find_rule(info.id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id, info.id);
  }
  EXPECT_EQ(find_rule("Z999"), nullptr);
}

}  // namespace
}  // namespace tc::analysis
