#include "analysis/fixes.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "analysis/passes.hpp"
#include "analysis/rules.hpp"
#include "graph/flowgraph.hpp"
#include "graph/task.hpp"

namespace tc::analysis {
namespace {

graph::FlowGraph graph_with_switches(const std::vector<std::string>& names) {
  graph::FlowGraph g;
  g.add_task(graph::make_task("t", false, [] {
    return std::optional<img::WorkReport>(img::WorkReport{});
  }));
  for (const std::string& name : names) {
    g.add_switch(name, [] { return true; });
  }
  return g;
}

TEST(FixStochasticMatrix, RenormalizesNearStochasticRow) {
  // Row 0 sums to 0.99 (drift, e.g. from float serialization); row 1 is
  // healthy and must be left untouched.
  std::array<f64, 4> m = {0.66, 0.33, 0.25, 0.75};
  EXPECT_TRUE(check_stochastic_matrix(m, 2, "test").fired(rules::kRowNotStochastic));

  const FixSummary summary = fix_stochastic_matrix(m, 2);
  EXPECT_EQ(summary.applied, 1);
  EXPECT_EQ(summary.skipped, 0);
  ASSERT_EQ(summary.notes.size(), 1u);
  EXPECT_NE(summary.notes[0].find("row 0"), std::string::npos);

  EXPECT_NEAR(m[0] + m[1], 1.0, 1e-12);
  EXPECT_NEAR(m[0] / m[1], 2.0, 1e-12);  // ratio preserved
  EXPECT_DOUBLE_EQ(m[2], 0.25);          // healthy row untouched
  EXPECT_DOUBLE_EQ(m[3], 0.75);
  EXPECT_FALSE(
      check_stochastic_matrix(m, 2, "test").fired(rules::kRowNotStochastic));
}

TEST(FixStochasticMatrix, RefusesRowTooFarFromOne) {
  std::array<f64, 4> m = {0.2, 0.2, 0.5, 0.5};  // row 0 sums to 0.4
  const FixSummary summary = fix_stochastic_matrix(m, 2);
  EXPECT_EQ(summary.applied, 0);
  EXPECT_EQ(summary.skipped, 1);
  EXPECT_DOUBLE_EQ(m[0], 0.2);  // unchanged
  ASSERT_EQ(summary.notes.size(), 1u);
  EXPECT_NE(summary.notes[0].find("too far"), std::string::npos);
}

TEST(FixStochasticMatrix, RefusesNegativeProbabilities) {
  std::array<f64, 4> m = {1.1, -0.1, 0.5, 0.5};  // row 0 sums to 1.0 but is invalid
  const FixSummary summary = fix_stochastic_matrix(m, 2);
  EXPECT_EQ(summary.applied, 0);
  EXPECT_EQ(summary.skipped, 1);
  EXPECT_DOUBLE_EQ(m[1], -0.1);
  ASSERT_EQ(summary.notes.size(), 1u);
  EXPECT_NE(summary.notes[0].find("negative"), std::string::npos);
}

TEST(FixStochasticMatrix, RefusesAllZeroRow) {
  std::array<f64, 4> m = {0.0, 0.0, 0.5, 0.5};
  const FixSummary summary = fix_stochastic_matrix(m, 2);
  EXPECT_EQ(summary.applied, 0);
  EXPECT_EQ(summary.skipped, 1);
  ASSERT_EQ(summary.notes.size(), 1u);
  EXPECT_NE(summary.notes[0].find("all-zero"), std::string::npos);
}

TEST(FixStochasticMatrix, RefusesWrongSizeMatrix) {
  std::array<f64, 3> m = {0.5, 0.5, 1.0};
  const FixSummary summary = fix_stochastic_matrix(m, 2);
  EXPECT_EQ(summary.applied, 0);
  EXPECT_EQ(summary.skipped, 1);
  ASSERT_EQ(summary.notes.size(), 1u);
  EXPECT_NE(summary.notes[0].find("not repairable"), std::string::npos);
}

TEST(FixDuplicateSwitches, RemovesLaterDuplicatesKeepsFirst) {
  graph::FlowGraph g = graph_with_switches({"sw_rdg", "sw_roi", "sw_rdg",
                                            "sw_rdg", "sw_reg"});
  EXPECT_TRUE(check_graph(g).fired(rules::kDuplicateSwitch));

  const FixSummary summary = fix_duplicate_switches(g);
  EXPECT_EQ(summary.applied, 2);
  EXPECT_EQ(summary.skipped, 0);
  ASSERT_EQ(g.switch_count(), 3u);
  EXPECT_EQ(g.switch_name(0), "sw_rdg");  // declaration order preserved
  EXPECT_EQ(g.switch_name(1), "sw_roi");
  EXPECT_EQ(g.switch_name(2), "sw_reg");
  EXPECT_FALSE(check_graph(g).fired(rules::kDuplicateSwitch));
}

TEST(FixDuplicateSwitches, NoOpOnCleanGraph) {
  graph::FlowGraph g = graph_with_switches({"a", "b", "c"});
  const FixSummary summary = fix_duplicate_switches(g);
  EXPECT_EQ(summary.applied, 0);
  EXPECT_EQ(summary.skipped, 0);
  EXPECT_TRUE(summary.notes.empty());
  EXPECT_EQ(g.switch_count(), 3u);
}

TEST(FixDuplicateSwitches, FixIsIdempotent) {
  graph::FlowGraph g = graph_with_switches({"sw_rdg", "sw_roi", "sw_rdg"});
  const FixSummary first = fix_duplicate_switches(g);
  EXPECT_EQ(first.applied, 1);
  // The repaired graph re-lints clean...
  EXPECT_FALSE(check_graph(g).fired(rules::kDuplicateSwitch));
  const std::string after_first = check_graph(g).to_text();
  std::vector<std::string> names_after_first;
  for (usize s = 0; s < g.switch_count(); ++s) {
    names_after_first.emplace_back(g.switch_name(narrow<i32>(s)));
  }

  // ...and a second fix pass is a byte-identical no-op.
  const FixSummary second = fix_duplicate_switches(g);
  EXPECT_EQ(second.applied, 0);
  EXPECT_EQ(second.skipped, 0);
  EXPECT_EQ(check_graph(g).to_text(), after_first);
  ASSERT_EQ(g.switch_count(), names_after_first.size());
  for (usize s = 0; s < g.switch_count(); ++s) {
    EXPECT_EQ(g.switch_name(narrow<i32>(s)), names_after_first[s]);
  }
}

TEST(FixSummary, MergeAccumulates) {
  FixSummary a;
  a.applied = 1;
  a.notes.push_back("one");
  FixSummary b;
  b.skipped = 2;
  b.notes.push_back("two");
  a.merge(b);
  EXPECT_EQ(a.applied, 1);
  EXPECT_EQ(a.skipped, 2);
  ASSERT_EQ(a.notes.size(), 2u);
  EXPECT_EQ(a.notes[1], "two");
}

}  // namespace
}  // namespace tc::analysis
