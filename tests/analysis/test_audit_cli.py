#!/usr/bin/env python3
"""Exit-code contract tests for the triplec_audit and triplec_lint CLIs.

Registered from tests/CMakeLists.txt as audit_cli_exit_codes (label
`analysis`); binary paths arrive via argv so the test follows whatever
build directory ctest runs from.  The documented contract:

  triplec_audit --strict <shipped graph>        -> exit 0 (proof holds)
  triplec_audit --strict --inject-edge-mb=2000  -> exit 1 (refuted, A002)
  bad graph / bad format                        -> exit 2 (usage)
  --rules                                       -> exit 0

Plus the CLI half of the --fix idempotence guarantee: running
`triplec_lint --fix` twice over the same graph yields byte-identical
output (the fix converges and the tool is deterministic).
"""

import json
import subprocess
import sys


def run(binary, *argv):
    proc = subprocess.run([binary, *argv], capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def check(label, ok):
    print(("PASS " if ok else "FAIL ") + label)
    return ok


def main():
    if len(sys.argv) != 3:
        print("usage: test_audit_cli.py <triplec_audit> <triplec_lint>")
        return 2
    audit, lint = sys.argv[1], sys.argv[2]
    ok = True

    # The shipped graphs carry a statically provable schedule: strict mode
    # (warnings fatal) must still exit 0.
    rc, out, _ = run(audit, "--strict", "stentboost")
    ok &= check("audit --strict stentboost exits 0", rc == 0)
    ok &= check("audit prints the scenario table", "deadline" in out)

    rc, out, _ = run(audit, "--strict", "quickstart")
    ok &= check("audit --strict quickstart exits 0", rc == 0)

    # An injected 2 GB/frame edge (60+ GB/s against the 48 GB/s memory bus)
    # must be refuted with a counterexample and flip the exit code.
    rc, out, _ = run(audit, "--strict", "--inject-edge-mb=2000", "stentboost")
    ok &= check("audit refutes the injected edge (exit 1)", rc == 1)
    ok &= check("counterexample names the bus", "memory bus" in out)
    ok &= check("counterexample names a scenario", "scenario" in out)
    ok &= check("counterexample names a plan", "plan" in out)

    # SARIF output parses and carries the A002 results.
    rc, out, _ = run(audit, "--format=sarif", "--inject-edge-mb=2000",
                     "stentboost")
    ok &= check("sarif run exits 1 on refutation", rc == 1)
    try:
        doc = json.loads(out)
        results = doc["runs"][0]["results"]
        ok &= check("sarif version pinned", doc["version"] == "2.1.0")
        ok &= check("sarif carries A002 results",
                    any(r["ruleId"] == "A002" for r in results))
    except (json.JSONDecodeError, KeyError, IndexError):
        ok &= check("sarif output parses", False)

    # Usage errors exit 2, never 0/1.
    rc, _, _ = run(audit, "no_such_graph")
    ok &= check("unknown graph exits 2", rc == 2)
    rc, _, _ = run(audit, "--format=yaml", "stentboost")
    ok &= check("unknown format exits 2", rc == 2)
    rc, _, _ = run(audit)
    ok &= check("missing graph exits 2", rc == 2)
    rc, _, _ = run(audit, "--rules")
    ok &= check("--rules exits 0", rc == 0)

    # Lint --fix idempotence at the CLI boundary: two runs, identical bytes.
    rc1, out1, _ = run(lint, "--fix", "--no-train", "quickstart")
    rc2, out2, _ = run(lint, "--fix", "--no-train", "quickstart")
    ok &= check("lint --fix is deterministic across runs",
                rc1 == rc2 and out1 == out2)
    ok &= check("lint --fix reports the applied/skipped tally",
                "applied" in out1)

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
