// Every triplec-lint rule must fire on a deliberately broken artifact and
// stay silent on a valid one.

#include "analysis/passes.hpp"

#include <gtest/gtest.h>

#include "analysis/rules.hpp"
#include "graph/task.hpp"
#include "tripleC/markov.hpp"

namespace tc::analysis {
namespace {

std::unique_ptr<graph::Task> noop_task(std::string name) {
  return graph::make_task(std::move(name), false,
                          [] { return img::WorkReport{}; });
}

graph::FlowGraph chain_graph(usize n) {
  graph::FlowGraph g;
  std::vector<i32> ids;
  for (usize i = 0; i < n; ++i) {
    ids.push_back(g.add_task(noop_task("T" + std::to_string(i))));
  }
  for (usize i = 1; i < n; ++i) {
    g.add_edge(ids[i - 1], ids[i], [] { return u64{1024}; });
  }
  return g;
}

// --- graph well-formedness ---------------------------------------------------

TEST(CheckGraph, ValidChainIsClean) {
  graph::FlowGraph g = chain_graph(3);
  (void)g.add_switch("SW_A", [] { return true; });
  (void)g.add_switch("SW_B", [] { return false; });
  EXPECT_TRUE(check_graph(g).empty());
}

TEST(CheckGraph, CycleFiresG001) {
  graph::FlowGraph g;
  i32 a = g.add_task(noop_task("A"));
  i32 b = g.add_task(noop_task("B"));
  g.add_edge(a, b, [] { return u64{0}; });
  g.add_edge(b, a, [] { return u64{0}; });
  const Report r = check_graph(g);
  EXPECT_TRUE(r.fired(rules::kGraphCycle));
  EXPECT_TRUE(r.has_errors());
  // The diagnostic names the cyclic tasks.
  EXPECT_NE(r.by_rule(rules::kGraphCycle)[0].location.find("A"),
            std::string::npos);
}

TEST(CheckEdges, OutOfRangeEndpointFiresG002) {
  std::vector<graph::Edge> edges;
  edges.push_back(graph::Edge{0, 7, [] { return u64{0}; }});
  edges.push_back(graph::Edge{-1, 0, [] { return u64{0}; }});
  const Report r = check_edges(edges, 2);
  EXPECT_EQ(r.by_rule(rules::kEdgeEndpointRange).size(), 2u);
}

TEST(CheckEdges, NullBytesCallableFiresG003) {
  std::vector<graph::Edge> edges;
  edges.push_back(graph::Edge{0, 1, nullptr});
  const Report r = check_edges(edges, 2);
  EXPECT_TRUE(r.fired(rules::kEdgeNullBytes));
  EXPECT_TRUE(r.has_errors());
}

TEST(CheckEdges, SelfLoopFiresG007) {
  std::vector<graph::Edge> edges;
  edges.push_back(graph::Edge{1, 1, [] { return u64{0}; }});
  const Report r = check_edges(edges, 3);
  EXPECT_TRUE(r.fired(rules::kSelfLoop));
}

TEST(CheckGraph, IsolatedTaskFiresG004) {
  graph::FlowGraph g = chain_graph(2);
  (void)g.add_task(noop_task("LONER"));
  const Report r = check_graph(g);
  ASSERT_TRUE(r.fired(rules::kIsolatedTask));
  EXPECT_EQ(r.by_rule(rules::kIsolatedTask)[0].index, 2);
  EXPECT_FALSE(r.has_errors());  // G004 is a warning
}

TEST(CheckGraph, SingleTaskGraphIsNotIsolated) {
  graph::FlowGraph g = chain_graph(1);
  EXPECT_FALSE(check_graph(g).fired(rules::kIsolatedTask));
}

TEST(CheckGraph, DuplicateSwitchNameFiresG005) {
  graph::FlowGraph g = chain_graph(2);
  (void)g.add_switch("SW_REG", [] { return true; });
  (void)g.add_switch("SW_REG", [] { return false; });
  const Report r = check_graph(g);
  ASSERT_TRUE(r.fired(rules::kDuplicateSwitch));
  EXPECT_EQ(r.by_rule(rules::kDuplicateSwitch)[0].index, 1);
}

TEST(CheckGraph, EmptyGraphFiresG006) {
  graph::FlowGraph g;
  EXPECT_TRUE(check_graph(g).fired(rules::kEmptyGraph));
}

// --- prediction models -------------------------------------------------------

TEST(CheckStochasticMatrix, NonStochasticRowFiresM001) {
  // Row 1 sums to 0.9.
  const std::vector<f64> matrix = {0.5, 0.5, 0.4, 0.5};
  const Report r = check_stochastic_matrix(matrix, 2, "chain");
  ASSERT_TRUE(r.fired(rules::kRowNotStochastic));
  EXPECT_EQ(r.by_rule(rules::kRowNotStochastic)[0].index, 1);
}

TEST(CheckStochasticMatrix, NegativeEntryFiresM001) {
  const std::vector<f64> matrix = {1.2, -0.2, 0.0, 1.0};
  EXPECT_TRUE(
      check_stochastic_matrix(matrix, 2, "chain").fired(
          rules::kRowNotStochastic));
}

TEST(CheckStochasticMatrix, ValidMatrixIsClean) {
  const std::vector<f64> matrix = {0.25, 0.75, 1.0, 0.0};
  EXPECT_TRUE(check_stochastic_matrix(matrix, 2, "chain").empty());
}

TEST(CheckStochasticMatrix, SizeMismatchIsReported) {
  const std::vector<f64> matrix = {1.0, 0.0, 1.0};
  EXPECT_TRUE(
      check_stochastic_matrix(matrix, 2, "chain").fired(
          rules::kRowNotStochastic));
}

TEST(CheckQuantizer, NonMonotoneBoundaryFiresM002) {
  const std::vector<f64> boundaries = {1.0, 2.0, 2.0, 3.0};
  const Report r = check_quantizer_boundaries(boundaries, "quantizer");
  ASSERT_TRUE(r.fired(rules::kQuantizerNotMonotone));
  EXPECT_EQ(r.by_rule(rules::kQuantizerNotMonotone)[0].index, 2);
}

TEST(CheckQuantizer, StrictlyIncreasingIsClean) {
  const std::vector<f64> boundaries = {1.0, 2.0, 4.0};
  EXPECT_TRUE(check_quantizer_boundaries(boundaries, "quantizer").empty());
}

TEST(CheckStateCount, ExcessStatesFireM003) {
  // Base M = 4, multiplier 2 -> ceiling 8; 20 states cannot come from this
  // training series.
  EXPECT_TRUE(check_state_count(20, 4, 2.0, 64, "chain")
                  .fired(rules::kStateCountRule));
}

TEST(CheckStateCount, WithinRuleIsClean) {
  EXPECT_TRUE(check_state_count(8, 4, 2.0, 64, "chain").empty());
  // Boundary merging may reduce the count below the rule.
  EXPECT_TRUE(check_state_count(3, 4, 2.0, 64, "chain").empty());
}

TEST(CheckPredictorConfig, AlphaOutOfRangeFiresM004) {
  model::PredictorConfig c;
  c.kind = model::PredictorKind::EwmaMarkov;
  c.ewma_alpha = 0.0;
  EXPECT_TRUE(check_predictor_config(c, "task 0", 0)
                  .fired(rules::kEwmaAlphaRange));
  c.ewma_alpha = 1.5;
  EXPECT_TRUE(check_predictor_config(c, "task 0", 0)
                  .fired(rules::kEwmaAlphaRange));
}

TEST(CheckPredictorConfig, AlphaIgnoredForNonEwmaKinds) {
  model::PredictorConfig c;
  c.kind = model::PredictorKind::Constant;
  c.ewma_alpha = -1.0;
  EXPECT_TRUE(check_predictor_config(c, "task 0", 0).empty());
}

TEST(CheckPredictorConfig, BadMarkovConfigFiresM006) {
  model::PredictorConfig c;
  c.kind = model::PredictorKind::LinearMarkov;
  c.state_multiplier = 0.0;
  c.max_states = 1;
  const Report r = check_predictor_config(c, "task 0", 0);
  EXPECT_EQ(r.by_rule(rules::kBadMarkovConfig).size(), 2u);
}

TEST(CheckPredictorConfig, DefaultConfigIsClean) {
  EXPECT_TRUE(check_predictor_config(model::PredictorConfig{}, "task 0", 0)
                  .empty());
}

TEST(CheckMarkov, FittedChainFromRealSeriesIsClean) {
  // A well-behaved two-regime series: the fitted chain must satisfy every
  // model rule.
  std::vector<f64> series;
  for (i32 i = 0; i < 200; ++i) {
    series.push_back(i % 7 < 4 ? 10.0 + 0.01 * (i % 5) : 20.0 + 0.01 * (i % 3));
  }
  model::MarkovChain m;
  m.fit(series, 2.0, 64);
  ASSERT_TRUE(m.fitted());
  EXPECT_TRUE(check_markov(m, 2.0, 64, "chain", 3).empty());
}

TEST(CheckTaskPredictor, UntrainedFiresM007Info) {
  model::TaskPredictor p;
  const Report r = check_task_predictor(p, "task 2", 2);
  ASSERT_TRUE(r.fired(rules::kUntrainedPredictor));
  EXPECT_FALSE(r.has_errors());
  EXPECT_FALSE(r.has_warnings());
}

TEST(CheckTaskPredictor, NegativeRoiSlopeFiresM005) {
  // Larger ROI -> *smaller* time: Eq. 3 fitted on mislabeled data.
  model::PredictorConfig c;
  c.kind = model::PredictorKind::LinearMarkov;
  model::TaskPredictor p(c);
  std::vector<std::vector<model::TrainingSample>> seqs(1);
  for (i32 i = 0; i < 100; ++i) {
    const f64 size = 100.0 + i;
    seqs[0].push_back(model::TrainingSample{300.0 - size, size});
  }
  p.train(seqs);
  ASSERT_TRUE(p.trained());
  EXPECT_TRUE(check_task_predictor(p, "task 1", 1)
                  .fired(rules::kNegativeRoiSlope));
}

TEST(CheckTaskPredictor, PositiveSlopeIsClean) {
  model::PredictorConfig c;
  c.kind = model::PredictorKind::LinearMarkov;
  model::TaskPredictor p(c);
  std::vector<std::vector<model::TrainingSample>> seqs(1);
  for (i32 i = 0; i < 100; ++i) {
    const f64 size = 100.0 + i;
    seqs[0].push_back(model::TrainingSample{2.0 * size + 5.0, size});
  }
  p.train(seqs);
  EXPECT_FALSE(check_task_predictor(p, "task 1", 1)
                   .fired(rules::kNegativeRoiSlope));
}

// --- scenario coverage -------------------------------------------------------

TEST(CheckScenarioCoverage, SpaceMismatchFiresS001) {
  graph::ScenarioTransitions table(2);  // 4 scenarios
  table.add(0, 1);
  EXPECT_TRUE(check_scenario_coverage(table, 3)
                  .fired(rules::kScenarioSpaceMismatch));
}

TEST(CheckScenarioCoverage, MissingRowFiresS002) {
  graph::ScenarioTransitions table(2);
  table.add(0, 1);
  table.add(1, 0);
  const Report r = check_scenario_coverage(table, 2);
  // Scenarios 2 and 3 were never observed.
  EXPECT_EQ(r.by_rule(rules::kScenarioRowUnobserved).size(), 2u);
  EXPECT_FALSE(r.has_errors());
}

TEST(CheckScenarioCoverage, FullCoverageIsClean) {
  graph::ScenarioTransitions table(2);
  for (u32 s = 0; s < 4; ++s) table.add(s, (s + 1) % 4);
  EXPECT_TRUE(check_scenario_coverage(table, 2).empty());
}

TEST(CheckScenarioCoverage, EmptyTableFiresS004Once) {
  graph::ScenarioTransitions table(3);
  const Report r = check_scenario_coverage(table, 3);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.fired(rules::kScenarioTableUntrained));
  EXPECT_FALSE(r.fired(rules::kScenarioRowUnobserved));
}

TEST(CheckGraph, TooManySwitchesFiresS003) {
  graph::FlowGraph g = chain_graph(2);
  for (i32 s = 0; s < 32; ++s) {
    (void)g.add_switch("SW" + std::to_string(s), [] { return false; });
  }
  EXPECT_TRUE(check_graph(g).fired(rules::kSwitchCountUnrepresentable));
}

// --- whole-predictor pass ----------------------------------------------------

TEST(CheckGraphPredictor, BrokenNodeConfigIsAttributedToNode) {
  model::GraphPredictor p(3, 2);
  model::PredictorConfig bad;
  bad.ewma_alpha = -0.5;
  p.configure_task(1, bad);
  const Report r = check_graph_predictor(p, 2);
  ASSERT_TRUE(r.fired(rules::kEwmaAlphaRange));
  EXPECT_EQ(r.by_rule(rules::kEwmaAlphaRange)[0].index, 1);
  // The broken config is never instantiated into a predictor.
  EXPECT_TRUE(p.contexts(1).empty());
}

// --- platform / budgets ------------------------------------------------------

TEST(CheckPlatform, PaperPlatformIsClean) {
  EXPECT_TRUE(check_platform(plat::PlatformSpec::paper_platform()).empty());
}

TEST(CheckPlatform, BrokenSpecFiresP001) {
  plat::PlatformSpec spec = plat::PlatformSpec::paper_platform();
  spec.cpu_count = 0;
  EXPECT_TRUE(check_platform(spec).fired(rules::kInvalidPlatform));

  spec = plat::PlatformSpec::paper_platform();
  spec.cpus_per_l2 = 3;  // 8 CPUs not divisible into slices of 3
  EXPECT_TRUE(check_platform(spec).fired(rules::kInvalidPlatform));

  spec = plat::PlatformSpec::paper_platform();
  spec.memory_bus_gbps = 0.0;
  EXPECT_TRUE(check_platform(spec).fired(rules::kInvalidPlatform));
}

TEST(CheckMemoryBudget, OverL2FootprintFiresB001) {
  plat::PlatformSpec spec = plat::PlatformSpec::paper_platform();
  std::vector<model::MemoryRow> rows(2);
  rows[0].task = "SMALL";
  rows[0].input_kb = 100.0;
  rows[1].task = "HUGE";
  rows[1].input_kb = 8192.0;
  rows[1].intermediate_kb = 8192.0;
  const Report r = check_memory_budget(rows, spec);
  ASSERT_EQ(r.by_rule(rules::kFootprintOverL2).size(), 1u);
  EXPECT_NE(r.by_rule(rules::kFootprintOverL2)[0].location.find("HUGE"),
            std::string::npos);
  EXPECT_FALSE(r.has_errors());
}

TEST(CheckBandwidthBudget, OverBusTrafficFiresB002) {
  graph::FlowGraph g = chain_graph(2);
  graph::FlowGraph heavy;
  i32 a = heavy.add_task(noop_task("A"));
  i32 b = heavy.add_task(noop_task("B"));
  // 2 GB per frame at 30 fps = 60 GB/s > the 29 GB/s memory bus.
  heavy.add_edge(a, b, [] { return u64{2} * GiB; });
  EXPECT_TRUE(check_bandwidth_budget(heavy,
                                     plat::PlatformSpec::paper_platform())
                  .fired(rules::kBandwidthOverBus));
  EXPECT_TRUE(check_bandwidth_budget(g, plat::PlatformSpec::paper_platform())
                  .empty());
}

TEST(CheckBusClassBudgets, CleanChainFiresNothing) {
  graph::FlowGraph g = chain_graph(3);
  EXPECT_TRUE(
      check_bus_class_budgets(g, plat::PlatformSpec::paper_platform()).empty());
}

TEST(CheckBusClassBudgets, CacheClassOverloadFiresB003) {
  graph::FlowGraph g;
  i32 a = g.add_task(noop_task("A"));
  i32 b = g.add_task(noop_task("B"));
  // 2 MiB fits one L2 slice, so the whole edge rides the cache bus; at two
  // million frames per second that is ~4 TB/s against the 72 GB/s budget.
  g.add_edge(a, b, [] { return u64{2} * MiB; });
  PassOptions options;
  options.fps = 2.0e6;
  const Report r =
      check_bus_class_budgets(g, plat::PlatformSpec::paper_platform(), options);
  ASSERT_TRUE(r.fired(rules::kCacheBusOverBudget));
  EXPECT_FALSE(r.has_errors());  // B003 is a warning
  EXPECT_NE(r.by_rule(rules::kCacheBusOverBudget)[0].message.find("cache"),
            std::string::npos);
}

TEST(CheckBusClassBudgets, DeviceTrafficOverloadFiresB004) {
  graph::FlowGraph g = chain_graph(2);  // 1 KB interior edge: negligible
  const plat::VideoFormat format;      // 2 MB/frame camera + display streams
  PassOptions options;
  options.fps = 1.0e6;
  options.device_format = &format;
  const Report r =
      check_bus_class_budgets(g, plat::PlatformSpec::paper_platform(), options);
  EXPECT_TRUE(r.fired(rules::kIoBusOverBudget));
  EXPECT_FALSE(r.fired(rules::kCacheBusOverBudget));
}

TEST(CheckBusClassBudgets, NoDeviceFormatMeansNoIoTraffic) {
  graph::FlowGraph g = chain_graph(2);
  PassOptions options;
  options.fps = 1.0e9;  // any I/O traffic at all would trip the budget
  EXPECT_FALSE(
      check_bus_class_budgets(g, plat::PlatformSpec::paper_platform(), options)
          .fired(rules::kIoBusOverBudget));
}

}  // namespace
}  // namespace tc::analysis
