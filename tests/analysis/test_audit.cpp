// run_audit must prove clean graphs clean, refute injected violations with
// counterexamples naming the (scenario, plan, bus) triple, and weight every
// verdict by Markov reachability.

#include "analysis/audit.hpp"

#include <gtest/gtest.h>

#include "analysis/rules.hpp"
#include "graph/task.hpp"

namespace tc::analysis::audit {
namespace {

plat::CostParams params() {
  plat::CostParams p;
  p.dispatch_ms = 0.5;
  p.stripe_sync_ms = 0.5;
  p.default_imbalance = 1.0;
  return p;
}

std::unique_ptr<graph::Task> noop_task(std::string name) {
  return graph::make_task(std::move(name), false,
                          [] { return img::WorkReport{}; });
}

/// Two-task graph A -> B carrying `edge_bytes` per frame.
graph::FlowGraph two_task_graph(u64 edge_bytes) {
  graph::FlowGraph g;
  i32 a = g.add_task(noop_task("A"));
  i32 b = g.add_task(noop_task("B"));
  g.add_edge(a, b, [edge_bytes] { return edge_bytes; });
  return g;
}

sched::ScheduleNode node(std::string name, f64 serial_ms, bool data_parallel,
                         bool active = true) {
  sched::ScheduleNode n;
  n.name = std::move(name);
  n.active = active;
  n.data_parallel = data_parallel;
  n.serial_ms = serial_ms;
  return n;
}

/// One-switch scenario space (ids 0 and 1) over the two-task graph, with
/// per-scenario serial times for A; B is always 1 ms and serial-only.
std::vector<ScenarioCase> two_cases(f64 a_ms_s0, f64 a_ms_s1,
                                    bool a_parallel = true) {
  std::vector<ScenarioCase> cases(2);
  cases[0].id = 0;
  cases[0].label = "SW=0";
  cases[0].nodes = {node("A", a_ms_s0, a_parallel), node("B", 1.0, false)};
  cases[1].id = 1;
  cases[1].label = "SW=1";
  cases[1].nodes = {node("A", a_ms_s1, a_parallel), node("B", 1.0, false)};
  return cases;
}

TEST(RunAudit, LightGraphWithDerivedDeadlineIsClean) {
  graph::FlowGraph g = two_task_graph(1024);
  const AuditResult r =
      run_audit(g, two_cases(10.0, 20.0),
                plat::PlatformSpec::paper_platform(), params(),
                /*transitions=*/nullptr, /*memory_rows=*/{}, AuditOptions{});
  EXPECT_TRUE(r.report.empty());
  ASSERT_EQ(r.scenarios.size(), 2u);
  for (const ScenarioAudit& s : r.scenarios) {
    EXPECT_TRUE(s.feasible);
    EXPECT_TRUE(s.reach.reachable);  // no table: conservatively reachable
  }
  // The derived deadline admits the worst scenario's *serial* plan, so the
  // first-fit choice is serial everywhere.
  EXPECT_EQ(r.scenarios[0].plan, "serial");
  EXPECT_EQ(r.scenarios[1].plan, "serial");
  EXPECT_GT(r.deadline_ms, 21.0 * 1.1);
}

TEST(RunAudit, ImpossibleDeadlineFiresA001PerScenario) {
  graph::FlowGraph g = two_task_graph(1024);
  AuditOptions opt;
  opt.deadline_ms = 0.1;  // nothing fits, even fully striped
  const AuditResult r =
      run_audit(g, two_cases(10.0, 20.0, /*a_parallel=*/false),
                plat::PlatformSpec::paper_platform(), params(), nullptr, {},
                opt);
  EXPECT_EQ(r.report.by_rule(rules::kScenarioInfeasible).size(), 2u);
  EXPECT_TRUE(r.report.has_errors());
  for (const ScenarioAudit& s : r.scenarios) EXPECT_FALSE(s.feasible);
}

TEST(RunAudit, StripingCanRescueATightDeadline) {
  graph::FlowGraph g = two_task_graph(1024);
  AuditOptions opt;
  opt.deadline_ms = 14.0;
  opt.pessimism_margin = 1.0;
  // Serial scenario 1 needs 21 ms; A striped x2 gives 11.25 ms.
  const AuditResult r = run_audit(g, two_cases(10.0, 20.0),
                                  plat::PlatformSpec::paper_platform(),
                                  params(), nullptr, {}, opt);
  EXPECT_FALSE(r.report.fired(rules::kScenarioInfeasible));
  EXPECT_EQ(r.scenarios[0].plan, "serial");
  EXPECT_EQ(r.scenarios[1].plan, "Ax2");
  EXPECT_TRUE(r.scenarios[1].feasible);
}

TEST(RunAudit, OverBudgetEdgeIsRefutedWithCounterexample) {
  // 2 GB per frame at 30 fps = 60 GB/s, far over the 48 GB/s memory bus.
  graph::FlowGraph g = two_task_graph(u64{2} * GiB);
  const AuditResult r = run_audit(g, two_cases(10.0, 20.0),
                                  plat::PlatformSpec::paper_platform(),
                                  params(), nullptr, {}, AuditOptions{});
  const auto violations = r.report.by_rule(rules::kBusBudgetViolation);
  ASSERT_EQ(violations.size(), 2u);  // both scenarios carry the edge
  EXPECT_TRUE(r.report.has_errors());
  // The counterexample names the (scenario, plan, bus) triple.
  EXPECT_NE(violations[0].message.find("scenario SW=0"), std::string::npos);
  EXPECT_NE(violations[0].message.find("plan serial"), std::string::npos);
  EXPECT_NE(violations[0].message.find("memory bus"), std::string::npos);
}

TEST(RunAudit, EdgeToInactiveConsumerCarriesNoTraffic) {
  graph::FlowGraph g = two_task_graph(u64{2} * GiB);
  std::vector<ScenarioCase> cases = two_cases(10.0, 20.0);
  cases[0].nodes[1].active = false;  // B off in scenario 0
  const AuditResult r = run_audit(g, cases,
                                  plat::PlatformSpec::paper_platform(),
                                  params(), nullptr, {}, AuditOptions{});
  EXPECT_EQ(r.report.by_rule(rules::kBusBudgetViolation).size(), 1u);
  EXPECT_DOUBLE_EQ(r.scenarios[0].memory_gbps, 0.0);
  EXPECT_GT(r.scenarios[1].memory_gbps, 48.0);
}

TEST(RunAudit, UnreachableScenarioViolationsDowngradeToWarnings) {
  graph::FlowGraph g = two_task_graph(u64{2} * GiB);
  // Scenario 1 is never visited in training: 0 self-loops forever.
  graph::ScenarioTransitions table(1);
  for (i32 i = 0; i < 20; ++i) table.add(0, 0);
  std::vector<ScenarioCase> cases = two_cases(10.0, 20.0);
  cases[0].nodes[1].active = false;  // keep scenario 0 traffic-free
  const AuditResult r = run_audit(g, cases,
                                  plat::PlatformSpec::paper_platform(),
                                  params(), &table, {}, AuditOptions{});
  // The scenario-1 bus violation survives but is not an error any more,
  // and the downgrade is announced.
  EXPECT_FALSE(r.report.has_errors());
  EXPECT_TRUE(r.report.has_warnings());
  EXPECT_TRUE(r.report.fired(rules::kBusBudgetViolation));
  EXPECT_TRUE(r.report.fired(rules::kUnreachableScenario));
  EXPECT_FALSE(r.scenarios[1].reach.reachable);
}

TEST(RunAudit, BufferCeilingIsInformational) {
  graph::FlowGraph g = two_task_graph(1024);
  std::vector<model::MemoryRow> rows(1);
  rows[0].task = "A";
  rows[0].input_kb = 8192.0;  // 8 MB > one 4 MB L2 slice
  const AuditResult r = run_audit(g, two_cases(10.0, 20.0),
                                  plat::PlatformSpec::paper_platform(),
                                  params(), nullptr, rows, AuditOptions{});
  EXPECT_TRUE(r.report.fired(rules::kBufferCeilingExceeded));
  EXPECT_FALSE(r.report.has_errors());
  EXPECT_FALSE(r.report.has_warnings());
  // The overflow is priced as eviction on the memory bus instead.
  EXPECT_GT(r.scenarios[0].memory_gbps, 0.0);
  EXPECT_NEAR(r.scenarios[0].peak_buffer_kb, 8192.0, 1.0);
}

TEST(RunAudit, CostlyPlanSwitchFiresA004) {
  graph::FlowGraph g = two_task_graph(1024);
  graph::ScenarioTransitions table(1);
  for (i32 i = 0; i < 10; ++i) {
    table.add(0, 1);
    table.add(1, 0);
  }
  plat::CostParams p = params();
  p.dispatch_ms = 2.0;
  p.stripe_sync_ms = 2.0;
  AuditOptions opt;
  opt.pessimism_margin = 1.0;
  // Scenario 1 serial needs 31 ms > 20; A x2 gives (30-2)/2+2+2+1 = 19 ms,
  // leaving 1 ms slack — less than the 4 ms re-layout of switching 0 -> 1.
  opt.deadline_ms = 20.0;
  const AuditResult r = run_audit(g, two_cases(10.0, 30.0),
                                  plat::PlatformSpec::paper_platform(), p,
                                  &table, {}, opt);
  EXPECT_EQ(r.scenarios[0].plan, "serial");
  EXPECT_EQ(r.scenarios[1].plan, "Ax2");
  EXPECT_TRUE(r.report.fired(rules::kCostlyTransition));
  EXPECT_FALSE(r.report.has_errors());  // A004 is a warning
  // Both directions were priced; only the widening one fails.
  bool widening_failed = false;
  for (const TransitionAudit& t : r.transitions) {
    if (t.from == 0 && t.to == 1) {
      EXPECT_FALSE(t.fits());
      EXPECT_EQ(t.cost.nodes_repartitioned, 1);
      widening_failed = true;
    }
  }
  EXPECT_TRUE(widening_failed);
}

TEST(RunAudit, TablesNameEveryScenario) {
  graph::FlowGraph g = two_task_graph(1024);
  const AuditResult r = run_audit(g, two_cases(10.0, 20.0),
                                  plat::PlatformSpec::paper_platform(),
                                  params(), nullptr, {}, AuditOptions{});
  const std::string table = format_audit_table(r);
  EXPECT_NE(table.find("SW=0"), std::string::npos);
  EXPECT_NE(table.find("SW=1"), std::string::npos);
  EXPECT_NE(table.find("deadline"), std::string::npos);
}

}  // namespace
}  // namespace tc::analysis::audit
