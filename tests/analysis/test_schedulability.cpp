// The schedulability core must enumerate exactly the runtime's plan search
// space, estimate stationary scenario reachability conservatively, and
// price plan switches only where a re-layout actually happens.

#include "analysis/schedulability.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tc::analysis::sched {
namespace {

plat::CostParams params() {
  plat::CostParams p;
  p.dispatch_ms = 0.5;
  p.stripe_sync_ms = 0.5;
  p.default_imbalance = 1.0;
  return p;
}

ScheduleNode node(std::string name, f64 serial_ms, bool data_parallel,
                  bool active = true) {
  ScheduleNode n;
  n.name = std::move(name);
  n.active = active;
  n.data_parallel = data_parallel;
  n.serial_ms = serial_ms;
  return n;
}

TEST(Schedulability, SerialPlanIsAllOnes) {
  const PlanVec plan = serial_plan(4);
  ASSERT_EQ(plan.size(), 4u);
  for (i32 s : plan) EXPECT_EQ(s, 1);
}

TEST(Schedulability, PlanLatencySumsActiveNodesOnly) {
  std::vector<ScheduleNode> nodes = {node("A", 10.0, true),
                                     node("B", 5.0, false),
                                     node("C", 99.0, true, /*active=*/false)};
  const f64 lat = plan_latency_ms(params(), nodes, serial_plan(3));
  EXPECT_DOUBLE_EQ(lat, 15.0);
}

TEST(Schedulability, PlanLatencyAppliesStripeLawToParallelNodes) {
  const plat::CostParams p = params();
  std::vector<ScheduleNode> nodes = {node("A", 40.0, true),
                                     node("B", 5.0, false)};
  PlanVec plan = {2, 4};  // B's stripes are ignored: not data-parallel
  const f64 expected =
      plat::striped_ms_from_serial(p, 40.0, 2) + 5.0;
  EXPECT_DOUBLE_EQ(plan_latency_ms(p, nodes, plan), expected);
}

TEST(Schedulability, EnumerateStartsSerialAndStrictlyImproves) {
  std::vector<ScheduleNode> nodes = {node("A", 40.0, true),
                                     node("B", 20.0, true),
                                     node("C", 5.0, false)};
  const auto chain = enumerate_plans(params(), nodes, 8, 8);
  ASSERT_GE(chain.size(), 2u);
  EXPECT_EQ(chain.front().plan, serial_plan(3));
  EXPECT_DOUBLE_EQ(chain.front().estimated_ms, 65.0);
  for (usize i = 1; i < chain.size(); ++i) {
    EXPECT_LT(chain[i].estimated_ms, chain[i - 1].estimated_ms);
  }
}

TEST(Schedulability, EnumerateWidensTheWorstNodeFirst) {
  std::vector<ScheduleNode> nodes = {node("A", 40.0, true),
                                     node("B", 20.0, true)};
  const auto chain = enumerate_plans(params(), nodes, 8, 8);
  ASSERT_GE(chain.size(), 2u);
  // The first widening step doubles A (40 ms), not B (20 ms).
  EXPECT_EQ(chain[1].plan[0], 2);
  EXPECT_EQ(chain[1].plan[1], 1);
}

TEST(Schedulability, EnumerateRespectsStripeAndCpuCaps) {
  std::vector<ScheduleNode> nodes = {node("A", 400.0, true)};
  for (const auto& c : enumerate_plans(params(), nodes, 8, 4)) {
    EXPECT_LE(c.plan[0], 4);  // cpu cap below per-task cap
  }
  for (const auto& c : enumerate_plans(params(), nodes, 2, 8)) {
    EXPECT_LE(c.plan[0], 2);  // per-task cap below cpu cap
  }
}

TEST(Schedulability, EnumerateLeavesUnprofitableNodesSerial) {
  // Striping a 0.3 ms task cannot beat the 1.0 ms overhead.
  std::vector<ScheduleNode> nodes = {node("TINY", 0.3, true)};
  const auto chain = enumerate_plans(params(), nodes, 8, 8);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain.front().plan, serial_plan(1));
}

TEST(Schedulability, PlanLabelNamesWidenedNodes) {
  std::vector<ScheduleNode> nodes = {node("RDG", 40.0, true),
                                     node("ENH", 20.0, true)};
  EXPECT_EQ(plan_label(nodes, serial_plan(2)), "serial");
  PlanVec plan = {4, 1};
  EXPECT_EQ(plan_label(nodes, plan), "RDGx4");
}

// --- reachability ------------------------------------------------------------

TEST(Reachability, UntrainedTableMarksEveryScenarioReachable) {
  graph::ScenarioTransitions table(2);
  const auto rows = scenario_reachability(table);
  ASSERT_EQ(rows.size(), 4u);
  for (const ReachabilityRow& r : rows) {
    EXPECT_TRUE(r.reachable);
    EXPECT_FALSE(r.observed);
    EXPECT_DOUBLE_EQ(r.probability, 0.25);
  }
}

TEST(Reachability, UnvisitedScenariosAreUnreachable) {
  // Two switches, but only scenarios 0 and 1 ever occur.
  graph::ScenarioTransitions table(2);
  for (i32 i = 0; i < 10; ++i) {
    table.add(0, 1);
    table.add(1, 0);
  }
  const auto rows = scenario_reachability(table);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_TRUE(rows[0].reachable);
  EXPECT_TRUE(rows[1].reachable);
  EXPECT_FALSE(rows[2].reachable);
  EXPECT_FALSE(rows[3].reachable);
  EXPECT_NEAR(rows[0].probability + rows[1].probability, 1.0, 1e-9);
}

TEST(Reachability, ObservedScenarioStaysReachableEvenWhenTransient) {
  // 0 -> 1 once, then 1 self-loops forever: 0's stationary mass is ~0, but
  // it was observed, so the audit must not dismiss it.
  graph::ScenarioTransitions table(1);
  table.add(0, 1);
  for (i32 i = 0; i < 50; ++i) table.add(1, 1);
  const auto rows = scenario_reachability(table);
  EXPECT_TRUE(rows[0].observed);
  EXPECT_TRUE(rows[0].reachable);
  EXPECT_LT(rows[0].probability, 0.01);
  EXPECT_GT(rows[1].probability, 0.9);
}

// --- plan-switch pricing -----------------------------------------------------

TEST(PricePlanSwitch, IdenticalPlansCostNothing) {
  std::vector<ScheduleNode> nodes = {node("A", 40.0, true)};
  PlanVec plan = {4};
  const SwitchCost c = price_plan_switch(params(),
                                         plat::PlatformSpec::paper_platform(),
                                         nodes, nodes, plan, plan);
  EXPECT_EQ(c.nodes_repartitioned, 0);
  EXPECT_EQ(c.fanout_delta, 0);
  EXPECT_DOUBLE_EQ(c.total_ms(), 0.0);
}

TEST(PricePlanSwitch, RepartitionedNodeIsPriced) {
  const plat::CostParams p = params();
  std::vector<ScheduleNode> nodes = {node("A", 40.0, true)};
  PlanVec one = {1};
  PlanVec four = {4};
  std::vector<u64> footprints = {8 * MiB};
  const plat::PlatformSpec spec = plat::PlatformSpec::paper_platform();
  const SwitchCost c =
      price_plan_switch(p, spec, nodes, nodes, one, four, footprints);
  EXPECT_EQ(c.nodes_repartitioned, 1);
  EXPECT_EQ(c.fanout_delta, 3);
  EXPECT_DOUBLE_EQ(c.relayout_ms, p.dispatch_ms + 3.0 * p.stripe_sync_ms);
  // Refill is capped at one L2 slice over DRAM at base contention.
  const f64 dram_bytes_per_ms =
      spec.dram_gbps(p.base_dram_contention) * 1.0e9 / 1.0e3;
  EXPECT_NEAR(c.cache_refill_ms,
              static_cast<f64>(spec.l2_bytes) / dram_bytes_per_ms, 1e-9);
}

TEST(PricePlanSwitch, ActivityChurnIsNotARelayout) {
  // The node runs only in the destination scenario: its stripes "change"
  // from 0 to 4, but that is scenario dynamics, not a re-layout.
  std::vector<ScheduleNode> off = {node("A", 40.0, true, /*active=*/false)};
  std::vector<ScheduleNode> on = {node("A", 40.0, true)};
  PlanVec one = {1};
  PlanVec four = {4};
  const SwitchCost c = price_plan_switch(params(),
                                         plat::PlatformSpec::paper_platform(),
                                         off, on, one, four);
  EXPECT_EQ(c.nodes_repartitioned, 0);
  EXPECT_DOUBLE_EQ(c.total_ms(), 0.0);
}

}  // namespace
}  // namespace tc::analysis::sched
