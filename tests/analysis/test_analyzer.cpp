// End-to-end analyzer tests: composition of the passes over real artifacts
// (the shipped StentBoost graph must lint clean of errors) and the
// strict/permissive policy contract.

#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include "analysis/rules.hpp"
#include "app/stentboost.hpp"

namespace tc::analysis {
namespace {

TEST(Analyzer, NullInputProducesEmptyReport) {
  EXPECT_TRUE(Analyzer{}.run(AnalysisInput{}).empty());
}

TEST(Analyzer, ShippedStentBoostGraphHasNoErrors) {
  app::StentBoostConfig config = app::StentBoostConfig::make(96, 96, 16, 7);
  app::StentBoostApp app(config);

  model::GraphPredictor predictor(app::kNodeCount, app::kSwitchCount);
  std::vector<std::vector<graph::FrameRecord>> seqs = {app.run(16)};
  predictor.train(seqs);

  AnalysisInput input;
  input.graph = &app.graph();
  input.predictor = &predictor;
  input.platform = &config.platform;
  const Report report = Analyzer{}.run(input);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
}

TEST(Analyzer, PredictorTaskCountMismatchFiresG008) {
  app::StentBoostConfig config = app::StentBoostConfig::make(96, 96, 8, 7);
  app::StentBoostApp app(config);
  model::GraphPredictor predictor(app::kNodeCount + 2, app::kSwitchCount);

  AnalysisInput input;
  input.graph = &app.graph();
  input.predictor = &predictor;
  const Report report = Analyzer{}.run(input);
  EXPECT_TRUE(report.fired(rules::kPredictorTaskMismatch));
  EXPECT_TRUE(report.has_errors());
}

TEST(Analyzer, PredictorWithoutGraphUsesTableScenarioSpace) {
  // No graph: the scenario-coverage pass infers the switch count from the
  // table itself, so a self-consistent predictor yields no S001.
  model::GraphPredictor predictor(4, 3);
  AnalysisInput input;
  input.predictor = &predictor;
  const Report report = Analyzer{}.run(input);
  EXPECT_FALSE(report.fired(rules::kScenarioSpaceMismatch));
  EXPECT_TRUE(report.fired(rules::kScenarioTableUntrained));
}

TEST(Analyzer, MemoryRowsFeedBudgetPass) {
  plat::PlatformSpec spec = plat::PlatformSpec::paper_platform();
  std::vector<model::MemoryRow> rows(1);
  rows[0].task = "ENH";
  rows[0].intermediate_kb = 10000.0;
  AnalysisInput input;
  input.platform = &spec;
  input.memory_rows = rows;
  EXPECT_TRUE(Analyzer{}.run(input).fired(rules::kFootprintOverL2));
}

TEST(Enforce, StrictThrowsOnErrorsOnly) {
  Report errors;
  {
    Diagnostic d;
    d.rule = "G001";
    d.severity = Severity::Error;
    d.message = "cycle";
    errors.add(d);
  }
  EXPECT_THROW(enforce(errors, Policy::Strict), AnalysisError);
  EXPECT_NO_THROW(enforce(errors, Policy::Permissive));

  Report warnings;
  {
    Diagnostic d;
    d.rule = "B001";
    d.severity = Severity::Warn;
    d.message = "footprint";
    warnings.add(d);
  }
  EXPECT_NO_THROW(enforce(warnings, Policy::Strict));
}

TEST(Enforce, AnalysisErrorCarriesReport) {
  Report r;
  Diagnostic d;
  d.rule = "M001";
  d.severity = Severity::Error;
  d.message = "row 2 sums to 0.9";
  r.add(d);
  try {
    enforce(r, Policy::Strict);
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_TRUE(e.report().fired("M001"));
    EXPECT_NE(std::string(e.what()).find("M001"), std::string::npos);
  }
}

}  // namespace
}  // namespace tc::analysis
