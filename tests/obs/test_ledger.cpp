// Prediction-ledger tests: calibration-window math (empty window, single
// sample, wraparound), predict/settle row matching, masks and percentage
// errors, coverage counters under concurrent writers (TSan target), the
// offline calibration report and the JSON/CSV dumps.
#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace tc::obs {
namespace {

LedgerSample sample(i32 node, f64 cpu_ms) {
  LedgerSample s;
  s.node = node;
  s.mask = ledger_bit(LedgerResource::CpuMs);
  s.values[static_cast<usize>(LedgerResource::CpuMs)] = cpu_ms;
  return s;
}

LedgerSample full_sample(i32 node, f64 cpu_ms, f64 mem, f64 cache, f64 mem_bus,
                         f64 io) {
  LedgerSample s;
  s.node = node;
  s.mask = kLedgerAllResources;
  s.values = {cpu_ms, mem, cache, mem_bus, io};
  return s;
}

// --- CalibrationWindow ------------------------------------------------------

TEST(CalibrationWindow, EmptyWindowHasZeroStats) {
  CalibrationWindow w(8);
  const auto s = w.stats();
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.bias_pct, 0.0);
  EXPECT_EQ(s.p50_ape_pct, 0.0);
  EXPECT_EQ(s.p95_ape_pct, 0.0);
  EXPECT_EQ(s.under_pct, 0.0);
  EXPECT_EQ(s.over_pct, 0.0);
}

TEST(CalibrationWindow, SingleSample) {
  CalibrationWindow w(8);
  w.add(-12.5);
  const auto s = w.stats();
  EXPECT_EQ(s.samples, 1u);
  EXPECT_DOUBLE_EQ(s.bias_pct, -12.5);
  EXPECT_DOUBLE_EQ(s.p50_ape_pct, 12.5);
  EXPECT_DOUBLE_EQ(s.p95_ape_pct, 12.5);
  EXPECT_DOUBLE_EQ(s.under_pct, 1.0);  // pred < meas
  EXPECT_DOUBLE_EQ(s.over_pct, 0.0);
}

TEST(CalibrationWindow, WraparoundEvictsOldest) {
  CalibrationWindow w(4);
  // Fill with large positive errors, then overwrite them all with -1.
  for (i32 i = 0; i < 4; ++i) w.add(100.0);
  for (i32 i = 0; i < 4; ++i) w.add(-1.0);
  const auto s = w.stats();
  EXPECT_EQ(s.samples, 4u);
  EXPECT_EQ(s.total, 8u);
  EXPECT_DOUBLE_EQ(s.bias_pct, -1.0);
  EXPECT_DOUBLE_EQ(s.p95_ape_pct, 1.0);
  EXPECT_DOUBLE_EQ(s.under_pct, 1.0);
}

TEST(CalibrationWindow, PartialWraparoundMixesOldAndNew) {
  CalibrationWindow w(4);
  for (i32 i = 0; i < 4; ++i) w.add(10.0);
  w.add(-10.0);  // overwrites exactly one old sample
  const auto s = w.stats();
  EXPECT_EQ(s.samples, 4u);
  EXPECT_EQ(s.total, 5u);
  EXPECT_DOUBLE_EQ(s.bias_pct, (3 * 10.0 - 10.0) / 4.0);
  EXPECT_DOUBLE_EQ(s.under_pct, 0.25);
  EXPECT_DOUBLE_EQ(s.over_pct, 0.75);
}

TEST(CalibrationWindow, UnboundedCapacityKeepsEverything) {
  CalibrationWindow w(0);
  for (i32 i = 0; i < 1000; ++i) w.add(static_cast<f64>(i % 7));
  EXPECT_EQ(w.stats().samples, 1000u);
  EXPECT_EQ(w.stats().total, 1000u);
}

TEST(CalibrationWindow, PercentilesUseAbsoluteErrors) {
  CalibrationWindow w(0);
  for (f64 e : {-50.0, -10.0, 5.0, 20.0}) w.add(e);
  const auto s = w.stats();
  // APEs sorted: 5, 10, 20, 50 -> p50 interpolates between 10 and 20.
  EXPECT_NEAR(s.p50_ape_pct, 15.0, 1e-9);
  EXPECT_NEAR(s.p95_ape_pct, 45.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.under_pct, 0.5);
  EXPECT_DOUBLE_EQ(s.over_pct, 0.5);
}

// --- LedgerRow --------------------------------------------------------------

TEST(LedgerRow, ErrorPctNeedsBothSidesAndNonzeroMeasurement) {
  LedgerRow row;
  row.pred_mask = ledger_bit(LedgerResource::CpuMs);
  row.pred[0] = 12.0;
  EXPECT_FALSE(row.error_pct(LedgerResource::CpuMs).has_value());
  row.meas_mask = ledger_bit(LedgerResource::CpuMs);
  row.meas[0] = 10.0;
  ASSERT_TRUE(row.error_pct(LedgerResource::CpuMs).has_value());
  EXPECT_NEAR(*row.error_pct(LedgerResource::CpuMs), 20.0, 1e-9);
  row.meas[0] = 0.0;  // zero measurement: error undefined
  EXPECT_FALSE(row.error_pct(LedgerResource::CpuMs).has_value());
  EXPECT_FALSE(row.error_pct(LedgerResource::MemBytes).has_value());
}

TEST(LedgerResourceNames, RoundTrip) {
  for (i32 r = 0; r < kLedgerResourceCount; ++r) {
    const auto res = static_cast<LedgerResource>(r);
    const auto back = ledger_resource_from(to_string(res));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, res);
  }
  EXPECT_FALSE(ledger_resource_from("bogus").has_value());
}

// --- PredictionLedger -------------------------------------------------------

TEST(PredictionLedger, PredictThenSettleMatchesRows) {
  PredictionLedger ledger;
  const std::vector<i32> stripes = {2, 1};
  const std::vector<LedgerSample> preds = {sample(0, 10.0), sample(1, 5.0)};
  ledger.predict_frame(7, /*ticket=*/42, /*deadline_ms=*/20.0, stripes, preds);

  const std::vector<LedgerSample> actuals = {sample(0, 12.0), sample(1, 5.0)};
  const auto rows = ledger.settle_frame(7, /*scenario=*/3,
                                        /*measured_frame_ms=*/17.0, actuals);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].frame, 7);
  EXPECT_EQ(rows[0].node, 0);
  EXPECT_EQ(rows[0].scenario, 3u);
  EXPECT_EQ(rows[0].ticket, 42);
  EXPECT_EQ(rows[0].stripes, 2);
  EXPECT_DOUBLE_EQ(rows[0].deadline_ms, 20.0);
  EXPECT_DOUBLE_EQ(rows[0].deadline_slack_ms, 3.0);
  ASSERT_TRUE(rows[0].error_pct(LedgerResource::CpuMs).has_value());
  EXPECT_NEAR(*rows[0].error_pct(LedgerResource::CpuMs), -100.0 * 2 / 12, 1e-9);
  EXPECT_EQ(ledger.rows_settled(), 2u);
  EXPECT_EQ(ledger.rows().size(), 2u);
}

TEST(PredictionLedger, ActualOnlyNodeGetsPredLessRow) {
  PredictionLedger ledger;
  ledger.predict_frame(0, 0, 0.0, {}, std::vector<LedgerSample>{sample(2, 4.0)});
  const auto rows = ledger.settle_frame(
      0, 0, 9.0, std::vector<LedgerSample>{sample(2, 4.5), sample(5, 1.0)});
  ASSERT_EQ(rows.size(), 2u);
  const LedgerRow* extra = nullptr;
  for (const auto& r : rows) {
    if (r.node == 5) extra = &r;
  }
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(extra->pred_mask, 0u);
  EXPECT_TRUE(extra->has_meas(LedgerResource::CpuMs));
  EXPECT_FALSE(extra->error_pct(LedgerResource::CpuMs).has_value());
}

TEST(PredictionLedger, PredictedButNotExecutedKeepsMeasEmpty) {
  PredictionLedger ledger;
  ledger.predict_frame(0, 0, 0.0, {},
                       std::vector<LedgerSample>{sample(0, 3.0), sample(1, 2.0)});
  const auto rows =
      ledger.settle_frame(0, 0, 3.1, std::vector<LedgerSample>{sample(0, 3.1)});
  ASSERT_EQ(rows.size(), 2u);
  const LedgerRow* skipped = nullptr;
  for (const auto& r : rows) {
    if (r.node == 1) skipped = &r;
  }
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(skipped->meas_mask, 0u);  // activity misprediction, no actuals
}

TEST(PredictionLedger, EvictsOldestOpenFrameBeyondCap) {
  LedgerConfig cfg;
  cfg.max_open_frames = 2;
  PredictionLedger ledger(cfg);
  for (i32 f = 0; f < 5; ++f) {
    ledger.predict_frame(f, f, 0.0, {},
                         std::vector<LedgerSample>{sample(0, 1.0)});
  }
  EXPECT_EQ(ledger.frames_lost(), 3u);
  // The surviving pending frames still settle normally.
  EXPECT_EQ(ledger.settle_frame(4, 0, 1.0, {}).size(), 1u);
}

TEST(PredictionLedger, RowRingEvictsOldestSettledRows) {
  LedgerConfig cfg;
  cfg.capacity = 3;
  PredictionLedger ledger(cfg);
  for (i32 f = 0; f < 5; ++f) {
    ledger.predict_frame(f, f, 0.0, {},
                         std::vector<LedgerSample>{sample(0, 1.0)});
    ledger.settle_frame(f, 0, 1.0,
                        std::vector<LedgerSample>{sample(0, 1.0)});
  }
  const auto rows = ledger.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.front().frame, 2);
  EXPECT_EQ(rows.back().frame, 4);
  EXPECT_EQ(ledger.rows_settled(), 5u);
  EXPECT_EQ(ledger.recent(2).size(), 2u);
  EXPECT_EQ(ledger.recent(2).front().frame, 3);
}

TEST(PredictionLedger, CalibrationStreamsPerNodeAndScenario) {
  PredictionLedger ledger;
  // Node 0 always over-predicts by 25%, node 1 under-predicts by 20%.
  for (i32 f = 0; f < 10; ++f) {
    ledger.predict_frame(
        f, f, 0.0, {},
        std::vector<LedgerSample>{sample(0, 12.5), sample(1, 8.0)});
    ledger.settle_frame(
        f, /*scenario=*/f % 2, 20.0,
        std::vector<LedgerSample>{sample(0, 10.0), sample(1, 10.0)});
  }
  const auto n0 = ledger.node_calibration(0, LedgerResource::CpuMs);
  EXPECT_EQ(n0.samples, 10u);
  EXPECT_NEAR(n0.bias_pct, 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(n0.over_pct, 1.0);
  const auto n1 = ledger.node_calibration(1, LedgerResource::CpuMs);
  EXPECT_NEAR(n1.bias_pct, -20.0, 1e-9);
  EXPECT_DOUBLE_EQ(n1.under_pct, 1.0);
  // Scenario streams pool both nodes: bias is the mean of +25 and -20.
  const auto s0 = ledger.scenario_calibration(0, LedgerResource::CpuMs);
  EXPECT_EQ(s0.samples, 10u);
  EXPECT_NEAR(s0.bias_pct, 2.5, 1e-9);
  // Untouched streams read as empty.
  EXPECT_EQ(ledger.node_calibration(9, LedgerResource::CpuMs).samples, 0u);
  EXPECT_EQ(ledger.scenario_calibration(7, LedgerResource::CpuMs).samples, 0u);
}

TEST(PredictionLedger, ExportsMetricsGauges) {
  MetricsRegistry metrics;
  LedgerConfig cfg;
  PredictionLedger ledger(cfg, &metrics);
  ledger.predict_frame(0, 0, 0.0, {},
                       std::vector<LedgerSample>{sample(0, 11.0)});
  ledger.settle_frame(0, 2, 10.0,
                      std::vector<LedgerSample>{sample(0, 10.0)});
  bool found_bias = false;
  bool found_scenario = false;
  for (const auto& e : metrics.entries()) {
    if (e.name == "tripleC_ledger_bias_pct" &&
        e.labels.find("resource=\"cpu_ms\"") != std::string::npos) {
      found_bias = true;
      EXPECT_NEAR(e.gauge->value(), 10.0, 1e-9);
    }
    if (e.name == "tripleC_ledger_scenario_bias_pct" &&
        e.labels.find("scenario=\"2\"") != std::string::npos) {
      found_scenario = true;
    }
  }
  EXPECT_TRUE(found_bias);
  EXPECT_TRUE(found_scenario);
  // Row counter tracks settled rows.
  bool found_rows = false;
  for (const auto& e : metrics.entries()) {
    if (e.name == "tripleC_ledger_rows_total") {
      found_rows = true;
      EXPECT_DOUBLE_EQ(e.counter->value(), 1.0);
    }
  }
  EXPECT_TRUE(found_rows);
}

TEST(PredictionLedger, CoverageCountersUnderConcurrentWriters) {
  // Four threads predict+settle disjoint frame ranges; the coverage
  // counters and row totals must come out exact (TSan exercises the lock).
  PredictionLedger ledger;
  constexpr i32 kThreads = 4;
  constexpr i32 kFramesPerThread = 64;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (i32 w = 0; w < kThreads; ++w) {
    workers.emplace_back([&ledger, w] {
      for (i32 i = 0; i < kFramesPerThread; ++i) {
        const i32 frame = w * kFramesPerThread + i;
        // Node == writer thread: each stream has one writer's worth of
        // samples but all writers contend on the one ledger.
        ledger.predict_frame(frame, frame, 0.0, {},
                             std::vector<LedgerSample>{sample(w, 11.0)});
        ledger.settle_frame(frame, static_cast<u32>(w), 10.0,
                            std::vector<LedgerSample>{sample(w, 10.0)});
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(ledger.rows_settled(),
            static_cast<u64>(kThreads) * kFramesPerThread);
  for (i32 w = 0; w < kThreads; ++w) {
    const auto s = ledger.node_calibration(w, LedgerResource::CpuMs);
    EXPECT_EQ(s.total, static_cast<u64>(kFramesPerThread));
    EXPECT_DOUBLE_EQ(s.over_pct, 1.0);  // +10% every frame
    EXPECT_DOUBLE_EQ(s.under_pct, 0.0);
  }
}

TEST(PredictionLedger, DumpJsonRoundTripsThroughParser) {
  LedgerConfig cfg;
  cfg.node_name = [](i32 node) { return "task" + std::to_string(node); };
  PredictionLedger ledger(cfg);
  ledger.predict_frame(
      1, 5, 33.3, std::vector<i32>{3, 1},
      std::vector<LedgerSample>{full_sample(0, 10.0, 4096, 1.5, 0.5, 0.0)});
  ledger.settle_frame(
      1, 6, 30.0,
      std::vector<LedgerSample>{full_sample(0, 11.0, 4096, 1.4, 0.6, 0.0)});

  const auto doc = common::JsonValue::parse(ledger.dump_json());
  EXPECT_EQ(doc.string_or("format", ""), "triplec-ledger-v1");
  EXPECT_EQ(doc.get("nodes").string_or("0", ""), "task0");
  const auto& rows = doc.get("rows");
  ASSERT_EQ(rows.size(), 1u);
  const auto& row = rows.at(0);
  EXPECT_EQ(static_cast<i32>(row.number_or("frame", -1)), 1);
  EXPECT_EQ(static_cast<i32>(row.number_or("stripes", 0)), 3);
  EXPECT_EQ(static_cast<i32>(row.number_or("ticket", 0)), 5);
  EXPECT_NEAR(row.number_or("slack_ms", 0), 3.3, 1e-9);
  EXPECT_EQ(static_cast<u32>(row.number_or("pred_mask", 0)),
            kLedgerAllResources);
  EXPECT_NEAR(row.get("pred").at(0).number_or(0), 10.0, 1e-12);
  EXPECT_NEAR(row.get("meas").at(0).number_or(0), 11.0, 1e-12);

  const std::string csv = ledger.dump_csv();
  EXPECT_NE(csv.find("pred_cpu_ms"), std::string::npos);
  EXPECT_NE(csv.find("task0"), std::string::npos);
}

// --- offline report ---------------------------------------------------------

TEST(CalibrationReport, GroupsByNodeScenarioAndPair) {
  std::vector<LedgerRow> rows;
  auto push = [&rows](i32 frame, i32 node, u32 scenario, f64 pred, f64 meas) {
    LedgerRow r;
    r.frame = frame;
    r.node = node;
    r.scenario = scenario;
    r.pred_mask = r.meas_mask = ledger_bit(LedgerResource::CpuMs);
    r.pred[0] = pred;
    r.meas[0] = meas;
    rows.push_back(r);
  };
  // Node 0 is well-calibrated in scenario 0 but terrible in scenario 1.
  for (i32 f = 0; f < 4; ++f) push(f, 0, 0, 10.0, 10.0);
  for (i32 f = 4; f < 8; ++f) push(f, 0, 1, 30.0, 10.0);
  for (i32 f = 0; f < 8; ++f) push(f, 1, static_cast<u32>(f % 2), 10.5, 10.0);

  const CalibrationReport report = build_calibration_report(rows);
  EXPECT_EQ(report.rows, rows.size());
  EXPECT_EQ(report.frames, 8u);
  EXPECT_EQ(report.scenarios, 2u);
  ASSERT_EQ(report.per_node.size(), 2u);
  ASSERT_EQ(report.per_scenario.size(), 2u);
  ASSERT_EQ(report.per_node_scenario.size(), 4u);

  const auto worst = worst_calibrated(report, 2, LedgerResource::CpuMs,
                                      /*min_samples=*/3);
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0]->node, 0);
  EXPECT_EQ(worst[0]->scenario, 1);
  EXPECT_NEAR(worst[0]->res[0].p95_ape_pct, 200.0, 1e-9);
}

TEST(CalibrationReport, MinSamplesFiltersThinGroups) {
  std::vector<LedgerRow> rows;
  LedgerRow r;
  r.frame = 0;
  r.node = 0;
  r.scenario = 0;
  r.pred_mask = r.meas_mask = ledger_bit(LedgerResource::CpuMs);
  r.pred[0] = 99.0;
  r.meas[0] = 1.0;
  rows.push_back(r);
  const CalibrationReport report = build_calibration_report(rows);
  EXPECT_TRUE(worst_calibrated(report, 5, LedgerResource::CpuMs, 3).empty());
  EXPECT_EQ(worst_calibrated(report, 5, LedgerResource::CpuMs, 1).size(), 1u);
}

}  // namespace
}  // namespace tc::obs
