#include "obs/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "tripleC/markov.hpp"

namespace tc::obs {
namespace {

TEST(PageHinkley, FiresOnMeanShiftNotOnStationaryNoise) {
  PageHinkley ph(/*delta=*/0.5, /*lambda=*/20.0);
  Pcg32 rng(7);
  bool fired = false;
  for (i32 i = 0; i < 500; ++i) {
    fired = ph.observe(rng.uniform(4.5, 5.5)) || fired;
  }
  EXPECT_FALSE(fired) << "stationary stream must not alarm";

  // Mean jumps 5 -> 15: the cumulative excess crosses lambda quickly.
  i32 frames_to_alarm = 0;
  for (i32 i = 0; i < 100; ++i) {
    ++frames_to_alarm;
    if (ph.observe(rng.uniform(14.5, 15.5))) break;
  }
  EXPECT_LE(frames_to_alarm, 10);
}

TEST(Cusum, TwoSidedDetectsBothDirections) {
  Cusum up(/*reference=*/10.0, /*k=*/1.0, /*h=*/8.0);
  bool fired = false;
  for (i32 i = 0; i < 10 && !fired; ++i) fired = up.observe(13.0);
  EXPECT_TRUE(fired);
  EXPECT_GT(up.positive(), up.negative());

  Cusum down(10.0, 1.0, 8.0);
  fired = false;
  for (i32 i = 0; i < 10 && !fired; ++i) fired = down.observe(7.0);
  EXPECT_TRUE(fired);
  EXPECT_GT(down.negative(), down.positive());

  Cusum quiet(10.0, 1.0, 8.0);
  for (i32 i = 0; i < 200; ++i) EXPECT_FALSE(quiet.observe(10.5));
}

TEST(DriftMonitor, AccurateStreamStaysQuiet) {
  DriftMonitor mon;
  for (i32 t = 0; t < 300; ++t) {
    const f64 measured = 10.0 + 0.2 * std::sin(t * 0.3);
    EXPECT_FALSE(mon.observe("s", t, 10.0, measured).has_value());
  }
  EXPECT_EQ(mon.alerts_total(), 0u);
  EXPECT_LT(mon.smoothed_error_pct("s"), 5.0);
}

TEST(DriftMonitor, AlertCarriesDetectorAndRespectsCooldown) {
  DriftConfig cfg;
  cfg.min_frames = 4;
  cfg.cooldown_frames = 50;
  DriftMonitor mon(cfg);
  std::vector<DriftAlert> alerts;
  mon.set_callback([&alerts](const DriftAlert& a) { alerts.push_back(a); });

  i32 t = 0;
  for (; t < 10; ++t) (void)mon.observe("s", t, 10.0, 10.0);  // healthy
  i32 first_alert = -1;
  for (; t < 60; ++t) {
    if (mon.observe("s", t, 10.0, 40.0).has_value()) {  // 75 % error
      first_alert = t;
      break;
    }
  }
  ASSERT_GE(first_alert, 0) << "sustained 75% error must alarm";
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].stream, "s");
  EXPECT_GT(alerts[0].smoothed_error_pct, 10.0);
  EXPECT_GT(alerts[0].threshold, 0.0);

  // Within the cooldown window no second alert fires.
  for (t = first_alert + 1; t < first_alert + cfg.cooldown_frames; ++t) {
    EXPECT_FALSE(mon.observe("s", t, 10.0, 40.0).has_value());
  }
  EXPECT_EQ(mon.alerts_total(), 1u);
}

TEST(DriftMonitor, StreamsAreIndependent) {
  DriftConfig cfg;
  cfg.min_frames = 4;
  DriftMonitor mon(cfg);
  for (i32 t = 0; t < 40; ++t) {
    (void)mon.observe("good", t, 10.0, 10.0);
    (void)mon.observe("bad", t, 10.0, 35.0);
  }
  EXPECT_LT(mon.smoothed_error_pct("good"), 2.0);
  EXPECT_GT(mon.smoothed_error_pct("bad"), 50.0);
  EXPECT_GE(mon.alerts_total(), 1u);
  EXPECT_EQ(mon.stream_index("good"), 0);
  EXPECT_EQ(mon.stream_index("bad"), 1);
  EXPECT_EQ(mon.stream_index("unknown"), -1);
}

// Acceptance criterion of ISSUE 5: a deliberately corrupted Markov
// predictor is caught within a bounded number of frames.  The monitor
// watches predicted-vs-measured of a chain that was fine during warm-up
// and then starts predicting from corrupted state (a 3x mis-scale, as a
// stale/overwritten quantizer would produce).
TEST(DriftMonitor, CatchesCorruptedMarkovPredictorWithinBoundedFrames) {
  // A well-trained chain over a bimodal frame-total series.
  Pcg32 rng(21);
  std::vector<f64> series;
  for (i32 i = 0; i < 400; ++i) {
    const f64 base = (i / 8) % 2 == 0 ? 10.0 : 16.0;
    series.push_back(rng.uniform(base, base + 1.0));
  }
  model::MarkovChain chain;
  chain.fit(series);
  ASSERT_TRUE(chain.fitted());

  DriftConfig cfg;
  cfg.min_frames = 8;
  DriftMonitor mon(cfg);

  // Healthy phase: the chain predicts its own workload well; no alarms.
  f64 prev = series.back();
  i32 t = 0;
  for (; t < 120; ++t) {
    const f64 base = (t / 8) % 2 == 0 ? 10.0 : 16.0;
    const f64 measured = rng.uniform(base, base + 1.0);
    EXPECT_FALSE(
        mon.observe("markov", t, chain.predict_next(prev), measured)
            .has_value())
        << "healthy predictor alarmed at frame " << t;
    prev = measured;
  }

  // Corruption: predictions now come out of a mis-scaled state space.
  constexpr i32 kDetectionBound = 32;
  i32 detected_after = -1;
  for (i32 k = 0; k < kDetectionBound; ++k, ++t) {
    const f64 base = (t / 8) % 2 == 0 ? 10.0 : 16.0;
    const f64 measured = rng.uniform(base, base + 1.0);
    const f64 corrupted_prediction = 3.0 * chain.predict_next(prev);
    if (mon.observe("markov", t, corrupted_prediction, measured).has_value()) {
      detected_after = k + 1;
      break;
    }
    prev = measured;
  }
  ASSERT_GT(detected_after, 0)
      << "corrupted Markov predictor not caught within " << kDetectionBound
      << " frames";
  EXPECT_LE(detected_after, kDetectionBound);
}

TEST(SloMonitor, MissRateBreachFiresOncePerCooldown) {
  SloSpec spec;
  spec.name = "miss_rate";
  spec.kind = SloKind::DeadlineMissRate;
  spec.threshold = 0.2;
  spec.window = 20;
  spec.min_frames = 10;
  spec.cooldown_frames = 30;
  SloMonitor mon({spec});

  i32 breaches = 0;
  for (i32 t = 0; t < 100; ++t) {
    const bool miss = t >= 40 && t % 2 == 0;  // 50 % misses from frame 40
    breaches += static_cast<i32>(mon.observe_frame(t, 10.0, miss).size());
  }
  EXPECT_GE(breaches, 1);
  EXPECT_LE(breaches, 3);  // cooldown throttles repeated firing
  EXPECT_EQ(mon.breaches_total(), static_cast<u64>(breaches));
  EXPECT_GT(mon.current("miss_rate"), 0.2);
}

TEST(SloMonitor, LatencySlosTrackWindowPercentiles) {
  SloSpec p99;
  p99.name = "p99";
  p99.kind = SloKind::P99LatencyMs;
  p99.threshold = 20.0;
  p99.window = 50;
  p99.min_frames = 10;
  SloSpec jitter;
  jitter.name = "jitter";
  jitter.kind = SloKind::JitterP99MinusP50Ms;
  jitter.threshold = 15.0;
  jitter.window = 50;
  jitter.min_frames = 10;
  SloMonitor mon({p99, jitter});

  for (i32 t = 0; t < 50; ++t) (void)mon.observe_frame(t, 10.0, false);
  EXPECT_NEAR(mon.current("p99"), 10.0, 1e-9);
  EXPECT_NEAR(mon.current("jitter"), 0.0, 1e-9);

  // One frame in fifty at 100 ms: p99 and jitter jump, both SLOs break.
  std::vector<SloBreach> fired;
  mon.set_callback([&fired](const SloBreach& b) { fired.push_back(b); });
  i32 total = 0;
  for (i32 t = 50; t < 100; ++t) {
    const f64 latency = t % 25 == 0 ? 100.0 : 10.0;
    total += static_cast<i32>(mon.observe_frame(t, latency, false).size());
  }
  EXPECT_GE(total, 2);
  EXPECT_EQ(fired.size(), static_cast<usize>(total));
  EXPECT_GT(mon.current("p99"), 20.0);
}

TEST(SloMonitor, WindowWraparoundEvictsOldFrames) {
  SloSpec p99;
  p99.name = "p99";
  p99.kind = SloKind::P99LatencyMs;
  p99.threshold = 1000.0;  // never breaches; this test is about the window
  p99.window = 8;
  p99.min_frames = 1;
  SloSpec miss;
  miss.name = "miss";
  miss.kind = SloKind::DeadlineMissRate;
  miss.threshold = 2.0;
  miss.window = 8;
  miss.min_frames = 1;
  SloMonitor mon({p99, miss});

  // Eight slow missed frames fill the ring...
  for (i32 t = 0; t < 8; ++t) (void)mon.observe_frame(t, 100.0, true);
  EXPECT_NEAR(mon.current("p99"), 100.0, 1e-9);
  EXPECT_NEAR(mon.current("miss"), 1.0, 1e-9);

  // ...then eight fast hits wrap it: nothing of the slow epoch may survive.
  for (i32 t = 8; t < 16; ++t) (void)mon.observe_frame(t, 1.0, false);
  EXPECT_NEAR(mon.current("p99"), 1.0, 1e-9);
  EXPECT_NEAR(mon.current("miss"), 0.0, 1e-9);
  const SloMonitor::WindowStats w = mon.window_snapshot();
  EXPECT_EQ(w.frames, 8);
  EXPECT_NEAR(w.p50, 1.0, 1e-9);
  EXPECT_NEAR(w.miss_rate, 0.0, 1e-9);

  // Half-wrapped: four old hits and four new misses -> 50 % miss rate.
  for (i32 t = 16; t < 20; ++t) (void)mon.observe_frame(t, 50.0, true);
  EXPECT_NEAR(mon.current("miss"), 0.5, 1e-9);
}

TEST(SloMonitor, P99TracksKnownDistribution) {
  SloSpec p99;
  p99.name = "p99";
  p99.kind = SloKind::P99LatencyMs;
  p99.threshold = 1000.0;
  p99.window = 100;
  p99.min_frames = 1;
  SloMonitor mon({p99});
  // Latencies 1..100: p99 of the full window lies in the top two values.
  for (i32 t = 0; t < 100; ++t) {
    (void)mon.observe_frame(t, static_cast<f64>(t + 1), false);
  }
  EXPECT_GE(mon.current("p99"), 99.0);
  EXPECT_LE(mon.current("p99"), 100.0);
  const SloMonitor::WindowStats w = mon.window_snapshot();
  EXPECT_EQ(w.frames, 100);
  EXPECT_NEAR(w.p50, 50.5, 1.0);
  EXPECT_GE(w.p99, 99.0);
}

TEST(SloMonitor, ConcurrentMultiStreamFeedingStaysConsistent) {
  // The serving layer feeds one fleet monitor from several scheduler slots
  // concurrently; aggregates must account for every frame exactly once.
  SloSpec miss;
  miss.name = "fleet/miss";
  miss.kind = SloKind::DeadlineMissRate;
  miss.threshold = 0.9;   // high enough to never fire mid-test
  miss.window = 4096;     // window holds every fed frame
  miss.min_frames = 100000;
  SloSpec p99;
  p99.name = "fleet/p99";
  p99.kind = SloKind::P99LatencyMs;
  p99.threshold = 1e9;
  p99.window = 4096;
  p99.min_frames = 100000;
  SloMonitor mon({miss, p99});

  const i32 threads = 4;
  const i32 frames_each = 500;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (i32 w = 0; w < threads; ++w) {
    workers.emplace_back([&mon, w] {
      for (i32 t = 0; t < frames_each; ++t) {
        // Stream w misses every other frame at latency 10 + w.
        (void)mon.observe_frame(w * frames_each + t, 10.0 + w, t % 2 == 0);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  const SloMonitor::WindowStats w = mon.window_snapshot();
  EXPECT_EQ(w.frames, threads * frames_each);
  EXPECT_NEAR(w.miss_rate, 0.5, 1e-9);  // every stream misses exactly half
  // All latencies lie in [10, 13]; so must the window percentiles.
  EXPECT_GE(w.p50, 10.0);
  EXPECT_LE(w.p99, 13.0);
  EXPECT_EQ(mon.breaches_total(), 0u);
}

TEST(SloMonitor, ResetRearms) {
  SloSpec spec;
  spec.name = "s";
  spec.kind = SloKind::DeadlineMissRate;
  spec.threshold = 0.1;
  spec.window = 10;
  spec.min_frames = 5;
  SloMonitor mon({spec});
  for (i32 t = 0; t < 20; ++t) (void)mon.observe_frame(t, 1.0, true);
  EXPECT_GT(mon.breaches_total(), 0u);
  mon.reset();
  EXPECT_EQ(mon.breaches_total(), 0u);
  EXPECT_NEAR(mon.current("s"), 0.0, 1e-12);
}

}  // namespace
}  // namespace tc::obs
