// Integration test: the runtime manager's observability hooks must agree
// with the values computed by tripleC/accuracy and with the frames the
// manager actually returned.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exporters.hpp"
#include "obs/obs.hpp"
#include "runtime/manager.hpp"
#include "tripleC/accuracy.hpp"

namespace tc::rt {
namespace {

app::StentBoostConfig test_config(u64 seed = 77) {
  app::StentBoostConfig c = app::StentBoostConfig::make(128, 128, 120, seed);
  c.sequence.contrast_in_frame = 25;
  c.sequence.contrast_out_frame = 80;
  return c;
}

model::GraphPredictor trained_predictor(const app::StentBoostConfig& base) {
  std::vector<std::vector<graph::FrameRecord>> seqs;
  for (u64 s : {101ull, 202ull}) {
    app::StentBoostConfig c = base;
    c.sequence.seed = s;
    app::StentBoostApp app(c);
    seqs.push_back(app.run(60));
  }
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  gp.configure_task(app::kRdgRoi,
                    model::PredictorConfig{
                        model::PredictorKind::LinearMarkov, 0.25, 2.0, 64});
  for (i32 node : {app::kMkxFull, app::kMkxRoi, app::kReg, app::kRoiEst,
                   app::kEnh, app::kZoom}) {
    gp.configure_task(node, model::PredictorConfig{
                                model::PredictorKind::Constant, 0.25, 2.0, 64});
  }
  gp.train(seqs);
  return gp;
}

/// Enables the global observability context for the test body and restores
/// the disabled/empty state afterwards so other tests are unaffected.
class ObsRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::global().clear();
    if (!obs::enabled()) {
      GTEST_SKIP() << "observability compiled out (TRIPLEC_OBS=OFF)";
    }
  }
  void TearDown() override {
    obs::global().clear();
    obs::set_enabled(false);
  }

  static const obs::Histogram* find_histogram(const std::string& name) {
    for (const auto& e : obs::global().metrics.entries()) {
      if (e.type == obs::MetricType::Histogram && e.name == name) {
        return e.histogram;
      }
    }
    return nullptr;
  }

  static f64 counter_value(const std::string& name) {
    for (const auto& e : obs::global().metrics.entries()) {
      if (e.type == obs::MetricType::Counter && e.name == name &&
          e.labels.empty()) {
        return e.counter->value();
      }
    }
    return -1.0;
  }

  static f64 gauge_value(const std::string& name) {
    for (const auto& e : obs::global().metrics.entries()) {
      if (e.type == obs::MetricType::Gauge && e.name == name &&
          e.labels.empty()) {
        return e.gauge->value();
      }
    }
    return -1.0;
  }
};

TEST_F(ObsRuntimeTest, MetricsMatchManagedFramesAndAccuracyReport) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.warmup_frames = 8;
  RuntimeManager mgr(app, gp, mc);

  constexpr i32 kFrames = 80;
  std::vector<ManagedFrame> frames;
  std::vector<f64> predicted;
  std::vector<f64> measured;
  for (i32 t = 0; t < kFrames; ++t) {
    frames.push_back(mgr.step(t));
    predicted.push_back(frames.back().predicted_latency_ms);
    measured.push_back(frames.back().measured_latency_ms);
  }

  EXPECT_DOUBLE_EQ(counter_value("tripleC_frames_total"),
                   static_cast<f64>(kFrames));
  EXPECT_EQ(obs::global().frames.size(), static_cast<usize>(kFrames));

  // Budget misses recounted from the frames the manager returned.  Warm-up
  // frames (budget not yet set) never count.
  f64 expected_misses = 0.0;
  for (i32 t = 0; t < kFrames; ++t) {
    if (t >= mc.warmup_frames &&
        frames[static_cast<usize>(t)].measured_latency_ms >
            mgr.latency_budget_ms()) {
      expected_misses += 1.0;
    }
  }
  EXPECT_DOUBLE_EQ(counter_value("tripleC_budget_miss_total"),
                   expected_misses);

  // The per-frame error histogram uses the exact formula and skip rule of
  // model::evaluate_accuracy, so its mean must equal the report's MAPE when
  // fed the same series.
  model::AccuracyReport acc = model::evaluate_accuracy(predicted, measured);
  const obs::Histogram* err =
      find_histogram("tripleC_frame_prediction_error_pct");
  ASSERT_NE(err, nullptr);
  ASSERT_GT(err->count(), 0u);
  EXPECT_NEAR(err->sum() / static_cast<f64>(err->count()), acc.mape_pct, 1e-9);

  // evaluate_accuracy also published its headline gauges.
  EXPECT_NEAR(gauge_value("tripleC_accuracy_mape_pct"), acc.mape_pct, 1e-12);
  EXPECT_NEAR(gauge_value("tripleC_accuracy_mean_pct"), acc.mean_accuracy_pct,
              1e-12);

  EXPECT_NEAR(gauge_value("tripleC_latency_budget_ms"),
              mgr.latency_budget_ms(), 1e-12);
}

TEST_F(ObsRuntimeTest, TracerHoldsFrameTaskSpansAndExportsAreWellFormed) {
  app::StentBoostConfig c = test_config(31);
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.warmup_frames = 5;
  RuntimeManager mgr(app, gp, mc);
  for (i32 t = 0; t < 20; ++t) (void)mgr.step(t);

  obs::ObsContext& ctx = obs::global();
  ASSERT_GT(ctx.tracer.size(), 0u);
  usize frame_spans = 0;
  usize task_spans = 0;
  for (const obs::SpanEvent& e : ctx.tracer.events()) {
    if (e.category == "frame") ++frame_spans;
    if (e.category == "task") ++task_spans;
  }
  EXPECT_EQ(frame_spans, 20u);
  // Every frame executes at least RDG + MKX + ENH + ZOOM.
  EXPECT_GE(task_spans, 4u * 20u);

  const std::string json = ctx.tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Task spans carry the real node names installed by the app.
  EXPECT_NE(json.find("RDG"), std::string::npos);

  const std::string prom = obs::to_prometheus(ctx.metrics);
  EXPECT_NE(prom.find("# TYPE tripleC_frames_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE tripleC_frame_measured_ms histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("tripleC_frame_measured_ms_bucket"), std::string::npos);

  const std::string csv = obs::frame_log_csv(ctx.frames);
  // Header + one row per frame.
  EXPECT_EQ(static_cast<usize>(std::count(csv.begin(), csv.end(), '\n')), 21u);
}

TEST_F(ObsRuntimeTest, DisabledObservabilityRecordsNothing) {
  obs::set_enabled(false);
  app::StentBoostConfig c = test_config(55);
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  RuntimeManager mgr(app, gp, ManagerConfig{});
  for (i32 t = 0; t < 12; ++t) (void)mgr.step(t);
  // Instruments registered by earlier (enabled) tests survive clear() by
  // design; with the layer disabled none of them may accumulate values.
  for (const auto& e : obs::global().metrics.entries()) {
    switch (e.type) {
      case obs::MetricType::Counter:
        EXPECT_DOUBLE_EQ(e.counter->value(), 0.0) << e.name;
        break;
      case obs::MetricType::Gauge:
        EXPECT_DOUBLE_EQ(e.gauge->value(), 0.0) << e.name;
        break;
      case obs::MetricType::Histogram:
        EXPECT_EQ(e.histogram->count(), 0u) << e.name;
        break;
    }
  }
  EXPECT_EQ(obs::global().tracer.size(), 0u);
  EXPECT_EQ(obs::global().frames.size(), 0u);
}

}  // namespace
}  // namespace tc::rt
