// Telemetry plane tests: StatusAggregator snapshot/provider semantics, the
// socketless handle() routing contract, and the real socket layer (bounded
// request size -> 413, malformed request line -> 400, non-GET -> 405 with
// an Allow header, mid-request disconnect -> silent close without wedging a
// handler).  Socket tests bind loopback with an ephemeral port.
#include "obs/telemetry_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/obs.hpp"
#include "obs/status.hpp"

namespace tc::obs {
namespace {

LedgerRow make_row(i32 frame, i32 node, f64 pred_ms, f64 meas_ms) {
  LedgerRow row;
  row.frame = frame;
  row.node = node;
  row.scenario = 7;
  row.pred_mask = ledger_bit(LedgerResource::CpuMs);
  row.meas_mask = ledger_bit(LedgerResource::CpuMs);
  row.pred[static_cast<usize>(LedgerResource::CpuMs)] = pred_ms;
  row.meas[static_cast<usize>(LedgerResource::CpuMs)] = meas_ms;
  return row;
}

/// Raw one-shot HTTP exchange: connect, send `request` verbatim, read the
/// whole response until the server closes.  `half_close` sends the bytes
/// and disconnects without waiting for an answer (mid-request abort).
std::string raw_request(i32 port, const std::string& request,
                        bool half_close = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<u16>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  if (!half_close) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      response.append(buf, static_cast<usize>(n));
    }
  }
  ::close(fd);
  return response;
}

// ---------------------------------------------------------------- aggregator

TEST(StatusAggregator, ReadyFlagAndEmptyDefaults) {
  StatusAggregator agg;
  EXPECT_FALSE(agg.ready());
  EXPECT_FALSE(agg.has_streams_provider());
  EXPECT_FALSE(agg.has_ledger_provider());

  const common::JsonValue doc = common::JsonValue::parse(agg.streams_json());
  EXPECT_FALSE(doc.get("ready").as_bool());
  EXPECT_TRUE(doc.get("streams").items().empty());

  agg.set_ready(true);
  EXPECT_TRUE(agg.ready());
  EXPECT_TRUE(
      common::JsonValue::parse(agg.streams_json()).get("ready").as_bool());
}

TEST(StatusAggregator, StreamsProviderOutputPassesThrough) {
  StatusAggregator agg;
  agg.set_streams_provider(
      [] { return std::string("{\"ready\":true,\"streams\":[{\"id\":9}]}"); });
  ASSERT_TRUE(agg.has_streams_provider());
  const common::JsonValue doc = common::JsonValue::parse(agg.streams_json());
  ASSERT_EQ(doc.get("streams").items().size(), 1u);
  EXPECT_EQ(doc.get("streams").items()[0].number_or("id", 0.0), 9.0);
}

TEST(StatusAggregator, LedgerJsonRendersRecentAndWorst) {
  StatusAggregator agg;
  std::vector<LedgerRow> rows;
  // node 1 well calibrated, node 2 badly (100% over-prediction).
  for (i32 f = 0; f < 4; ++f) {
    rows.push_back(make_row(f, 1, 2.0, 2.0));
    rows.push_back(make_row(f, 2, 4.0, 2.0));
  }
  agg.set_ledger_provider([rows] { return rows; },
                          [](i32 node) { return "node" + std::to_string(node); });
  ASSERT_TRUE(agg.has_ledger_provider());

  const common::JsonValue doc =
      common::JsonValue::parse(agg.ledger_json(/*recent=*/3, /*worst=*/1));
  EXPECT_EQ(doc.number_or("rows", 0.0), 8.0);
  EXPECT_EQ(doc.get("recent").items().size(), 3u);
  ASSERT_EQ(doc.get("worst").items().size(), 1u);
  const common::JsonValue& worst = doc.get("worst").items()[0];
  EXPECT_EQ(worst.string_or("name", ""), "node2");
  EXPECT_NEAR(worst.number_or("cpu_bias_pct", 0.0), 100.0, 1.0);
}

TEST(StatusAggregator, LedgerJsonWithoutProviderIsEmptyDocument) {
  StatusAggregator agg;
  const common::JsonValue doc =
      common::JsonValue::parse(agg.ledger_json(8, 3));
  EXPECT_EQ(doc.number_or("rows", -1.0), 0.0);
  EXPECT_TRUE(doc.get("recent").items().empty());
  EXPECT_TRUE(doc.get("worst").items().empty());
}

// ------------------------------------------------------------------ routing

TEST(TelemetryRouting, MetricsUsesThePrometheusRendererAndContentType) {
  ObsContext ctx;
  ctx.metrics.counter("tripleC_telemetry_test_total", "route test").add(5.0);
  TelemetryServer server(TelemetryConfig{}, nullptr, &ctx);

  const HttpResponse r = server.handle("GET", "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "text/plain; version=0.0.4; charset=utf-8");
  // Exactly the file exporter's output — the two renderers cannot diverge.
  EXPECT_EQ(r.body, to_prometheus(ctx.metrics));
  EXPECT_NE(r.body.find("# HELP tripleC_telemetry_test_total route test"),
            std::string::npos);
  EXPECT_NE(r.body.find("# TYPE tripleC_telemetry_test_total counter"),
            std::string::npos);
  EXPECT_NE(r.body.find("tripleC_telemetry_test_total 5"), std::string::npos);
}

TEST(TelemetryRouting, HealthzIsAliveReadyzGatesOnAggregator) {
  ObsContext ctx;
  StatusAggregator agg;
  TelemetryServer server(TelemetryConfig{}, &agg, &ctx);

  EXPECT_EQ(server.handle("GET", "/healthz").status, 200);
  EXPECT_EQ(server.handle("GET", "/readyz").status, 503);
  agg.set_ready(true);
  EXPECT_EQ(server.handle("GET", "/readyz").status, 200);

  // A server with no aggregator at all can never be ready.
  TelemetryServer bare(TelemetryConfig{}, nullptr, &ctx);
  EXPECT_EQ(bare.handle("GET", "/readyz").status, 503);
  EXPECT_EQ(bare.handle("GET", "/healthz").status, 200);
}

TEST(TelemetryRouting, StreamsServesProviderJson) {
  ObsContext ctx;
  StatusAggregator agg;
  agg.set_streams_provider([] {
    return std::string("{\"ready\":true,\"streams\":[{\"name\":\"or_1\"}]}");
  });
  TelemetryServer server(TelemetryConfig{}, &agg, &ctx);

  const HttpResponse r = server.handle("GET", "/streams");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  const common::JsonValue doc = common::JsonValue::parse(r.body);
  EXPECT_EQ(doc.get("streams").items()[0].string_or("name", ""), "or_1");

  TelemetryServer bare(TelemetryConfig{}, nullptr, &ctx);
  const common::JsonValue empty =
      common::JsonValue::parse(bare.handle("GET", "/streams").body);
  EXPECT_FALSE(empty.get("ready").as_bool());
}

TEST(TelemetryRouting, LedgerQueryParametersClampAndDefault) {
  ObsContext ctx;
  StatusAggregator agg;
  std::vector<LedgerRow> rows;
  for (i32 f = 0; f < 64; ++f) rows.push_back(make_row(f, 1, 2.0, 2.1));
  agg.set_ledger_provider([rows] { return rows; });
  TelemetryServer server(TelemetryConfig{}, &agg, &ctx);

  // Defaults: recent=32, worst=5.
  common::JsonValue doc =
      common::JsonValue::parse(server.handle("GET", "/ledger").body);
  EXPECT_EQ(doc.get("recent").items().size(), 32u);

  doc = common::JsonValue::parse(
      server.handle("GET", "/ledger?recent=2&worst=1").body);
  EXPECT_EQ(doc.get("recent").items().size(), 2u);
  EXPECT_EQ(doc.get("worst").items().size(), 1u);

  // Negative values clamp to zero rather than exploding.
  doc = common::JsonValue::parse(
      server.handle("GET", "/ledger?recent=-4&worst=-4").body);
  EXPECT_TRUE(doc.get("recent").items().empty());
  EXPECT_TRUE(doc.get("worst").items().empty());
}

TEST(TelemetryRouting, FlightReturnsTailWithTotal) {
  ObsContext ctx;
  for (i32 f = 0; f < 5; ++f) {
    ctx.flight.record(FrEventType::FrameStart, f, -1, static_cast<f64>(f));
  }
  TelemetryServer server(TelemetryConfig{}, nullptr, &ctx);

  const HttpResponse r = server.handle("GET", "/flight?n=2");
  EXPECT_EQ(r.status, 200);
  const common::JsonValue doc = common::JsonValue::parse(r.body);
  EXPECT_EQ(doc.number_or("total", 0.0), 5.0);
  ASSERT_EQ(doc.get("events").items().size(), 2u);
  // The tail is the NEWEST events (frames 3 and 4).
  EXPECT_EQ(doc.get("events").items()[0].number_or("frame", -1.0), 3.0);
  EXPECT_EQ(doc.get("events").items()[1].number_or("frame", -1.0), 4.0);
}

TEST(TelemetryRouting, TraceWindowExcludesEventsBeforeArming) {
  ObsContext ctx;
  ctx.tracer.instant("before", "test", kHostPid, 0, 1.0);
  TelemetryServer server(TelemetryConfig{}, nullptr, &ctx);

  // ms=0: arm and export immediately — the pre-existing event is outside
  // the window, so only metadata events remain.
  const HttpResponse r = server.handle("GET", "/trace?ms=0");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  const common::JsonValue doc = common::JsonValue::parse(r.body);
  for (const common::JsonValue& e : doc.get("traceEvents").items()) {
    EXPECT_NE(e.string_or("name", ""), "before");
  }
}

TEST(TelemetryRouting, UnknownPathIs404NonGetIs405) {
  ObsContext ctx;
  TelemetryServer server(TelemetryConfig{}, nullptr, &ctx);
  EXPECT_EQ(server.handle("GET", "/nope").status, 404);
  EXPECT_EQ(server.handle("POST", "/metrics").status, 405);
  EXPECT_EQ(server.handle("DELETE", "/streams").status, 405);
}

// ------------------------------------------------------------------ sockets

TEST(TelemetrySocket, ServesMetricsAndStreamsOverLoopback) {
  ObsContext ctx;
  ctx.metrics.counter("tripleC_socket_test_total", "socket test").add(1.0);
  StatusAggregator agg;
  agg.set_streams_provider(
      [] { return std::string("{\"ready\":true,\"streams\":[]}"); });
  agg.set_ready(true);

  TelemetryConfig config;
  config.port = 0;  // ephemeral
  TelemetryServer server(config, &agg, &ctx);
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);

  const HttpResult health = http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpResult metrics = http_get("127.0.0.1", server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("tripleC_socket_test_total 1"),
            std::string::npos);

  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/readyz").status, 200);
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/streams").status, 200);
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/nope").status, 404);

  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(TelemetrySocket, OversizedRequestLineGets413) {
  ObsContext ctx;
  TelemetryConfig config;
  config.port = 0;
  config.max_request_bytes = 256;
  TelemetryServer server(config, nullptr, &ctx);
  ASSERT_TRUE(server.start());

  // 600 bytes with no terminating blank line blow through the 256-byte cap.
  const std::string oversized = "GET /" + std::string(600, 'a');
  const std::string response = raw_request(server.port(), oversized);
  EXPECT_NE(response.find("413 Payload Too Large"), std::string::npos);
}

TEST(TelemetrySocket, MalformedRequestLineGets400) {
  ObsContext ctx;
  TelemetryConfig config;
  config.port = 0;
  TelemetryServer server(config, nullptr, &ctx);
  ASSERT_TRUE(server.start());

  const std::string response =
      raw_request(server.port(), "GARBAGE\r\n\r\n");
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);
}

TEST(TelemetrySocket, NonGetMethodGets405WithAllowHeader) {
  ObsContext ctx;
  TelemetryConfig config;
  config.port = 0;
  TelemetryServer server(config, nullptr, &ctx);
  ASSERT_TRUE(server.start());

  const std::string response = raw_request(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(response.find("Allow: GET"), std::string::npos);
}

TEST(TelemetrySocket, MidRequestDisconnectDoesNotWedgeHandlers) {
  ObsContext ctx;
  TelemetryConfig config;
  config.port = 0;
  config.handler_threads = 1;  // a wedged handler would block everything
  config.io_timeout_ms = 200;
  TelemetryServer server(config, nullptr, &ctx);
  ASSERT_TRUE(server.start());

  // Half a request line, then hang up: the handler must close silently and
  // return to the pool.
  (void)raw_request(server.port(), "GET /metr", /*half_close=*/true);

  const HttpResult after = http_get("127.0.0.1", server.port(), "/healthz",
                                    /*timeout_ms=*/2000);
  EXPECT_EQ(after.status, 200);
}

TEST(TelemetrySocket, StartOnTakenPortFailsCleanly) {
  ObsContext ctx;
  TelemetryConfig config;
  config.port = 0;
  TelemetryServer first(config, nullptr, &ctx);
  ASSERT_TRUE(first.start());

  TelemetryConfig clash;
  clash.port = first.port();
  clash.bind_address = "127.0.0.1";
  TelemetryServer second(clash, nullptr, &ctx);
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.running());

  // The failed server can retry on a free port.
  // (stop() on an inert server is a no-op; start() rebinds from scratch.)
  first.stop();
  EXPECT_TRUE(second.start());
  second.stop();
}

}  // namespace
}  // namespace tc::obs
