#include "obs/exporters.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

namespace tc::obs {
namespace {

TEST(Prometheus, GoldenFormatForSmallRegistry) {
  MetricsRegistry r;
  r.counter("tripleC_frames_total", "Frames processed").add(3.0);
  r.gauge("tripleC_latency_budget_ms", "Budget").set(42.5);
  Histogram& h = r.histogram("tripleC_frame_measured_ms", "Measured latency",
                             std::vector<f64>{10.0, 20.0});
  h.record(5.0);
  h.record(15.0);
  h.record(99.0);

  const std::string expected =
      "# HELP tripleC_frames_total Frames processed\n"
      "# TYPE tripleC_frames_total counter\n"
      "tripleC_frames_total 3\n"
      "# HELP tripleC_latency_budget_ms Budget\n"
      "# TYPE tripleC_latency_budget_ms gauge\n"
      "tripleC_latency_budget_ms 42.5\n"
      "# HELP tripleC_frame_measured_ms Measured latency\n"
      "# TYPE tripleC_frame_measured_ms histogram\n"
      "tripleC_frame_measured_ms_bucket{le=\"10\"} 1\n"
      "tripleC_frame_measured_ms_bucket{le=\"20\"} 2\n"
      "tripleC_frame_measured_ms_bucket{le=\"+Inf\"} 3\n"
      "tripleC_frame_measured_ms_sum 119\n"
      "tripleC_frame_measured_ms_count 3\n";
  EXPECT_EQ(to_prometheus(r), expected);
}

TEST(Prometheus, HelpTextEscapesBackslashAndNewline) {
  MetricsRegistry r;
  // The exposition format requires \ -> \\ and newline -> \n inside HELP
  // text; a raw newline would start a bogus sample line mid-comment.
  r.counter("tripleC_quirks_total", "line one\nuses \\ backslash").add(1.0);
  const std::string text = to_prometheus(r);
  EXPECT_NE(text.find("# HELP tripleC_quirks_total "
                      "line one\\nuses \\\\ backslash\n"),
            std::string::npos);
}

TEST(Prometheus, HostileLabelValuesStayInsideTheirSample) {
  MetricsRegistry r;
  // A node name with quote/backslash/newline must not break the exposition
  // format when routed through obs::label().
  r.counter("tripleC_task_frames_total", "per task",
            label("task", "RDG\"v2\"\\\n"))
      .add(1.0);
  const std::string text = to_prometheus(r);
  EXPECT_NE(text.find("tripleC_task_frames_total{task=\"RDG\\\"v2\\\"\\\\"
                      "\\n\"} 1"),
            std::string::npos);
  // No raw newline sneaks into the middle of a sample line.
  for (usize pos = 0; (pos = text.find('\n', pos)) != std::string::npos;
       ++pos) {
    if (pos + 1 < text.size()) {
      EXPECT_TRUE(text[pos + 1] == '#' || text[pos + 1] == 't' ||
                  pos + 1 == text.size())
          << "unexpected line start at " << pos + 1;
    }
  }
}

TEST(Prometheus, LabeledFamilyEmitsOneTypeLine) {
  MetricsRegistry r;
  r.counter("tripleC_scenario_frames_total", "per scenario",
            "scenario=\"0\"")
      .add(2.0);
  r.counter("tripleC_scenario_frames_total", "per scenario",
            "scenario=\"5\"")
      .add(1.0);
  const std::string text = to_prometheus(r);
  // Exactly one TYPE header for the family, one sample line per label set.
  usize first = text.find("# TYPE tripleC_scenario_frames_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE tripleC_scenario_frames_total counter",
                      first + 1),
            std::string::npos);
  EXPECT_NE(text.find("tripleC_scenario_frames_total{scenario=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("tripleC_scenario_frames_total{scenario=\"5\"} 1"),
            std::string::npos);
}

TEST(Prometheus, EveryRegisteredFamilyHasTypeLine) {
  MetricsRegistry r;
  r.counter("tripleC_a_total", "a");
  r.gauge("tripleC_b", "b");
  r.histogram("tripleC_c_ms", "c", std::vector<f64>{1.0});
  r.counter("tripleC_a_total", "a", "task=\"X\"");
  const std::string text = to_prometheus(r);
  for (const auto& e : r.entries()) {
    EXPECT_NE(text.find("# TYPE " + e.name + " "), std::string::npos)
        << "missing TYPE line for " << e.name;
  }
}

TEST(Prometheus, HistogramBucketsWithLabelsComposeCorrectly) {
  MetricsRegistry r;
  Histogram& h = r.histogram("tripleC_task_ms", "per task",
                             std::vector<f64>{1.0}, "task=\"RDG\"");
  h.record(0.5);
  const std::string text = to_prometheus(r);
  EXPECT_NE(text.find("tripleC_task_ms_bucket{task=\"RDG\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("tripleC_task_ms_bucket{task=\"RDG\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("tripleC_task_ms_sum{task=\"RDG\"} 0.5"),
            std::string::npos);
  EXPECT_NE(text.find("tripleC_task_ms_count{task=\"RDG\"} 1"),
            std::string::npos);
}

TEST(FrameCsv, OneRowPerFrameWithHeader) {
  FrameLog log;
  FrameSample s;
  s.frame = 7;
  s.scenario = 5;
  s.quality_level = 1;
  s.total_stripes = 4;
  s.predicted_ms = 10.0;
  s.measured_ms = 12.5;
  s.output_ms = 13.0;
  s.budget_ms = 13.0;
  s.fits_budget = true;
  s.error_pct = 20.0;
  log.add(s);
  const std::string csv = frame_log_csv(log);
  EXPECT_NE(csv.find("frame,scenario,quality_level,total_stripes,predicted_ms,"
                     "measured_ms,output_ms,budget_ms,fits_budget,error_pct"),
            std::string::npos);
  EXPECT_NE(csv.find("7,5,1,4,10,12.5,13,13,1,20"), std::string::npos);
  // Header + one data row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Dashboard, RendersSeriesAndPercentiles) {
  MetricsRegistry r;
  Histogram& h = r.histogram("tripleC_frame_measured_ms", "m",
                             std::vector<f64>{10.0, 20.0, 40.0});
  FrameLog log;
  for (i32 i = 0; i < 20; ++i) {
    FrameSample s;
    s.frame = i;
    s.predicted_ms = 10.0 + i;
    s.measured_ms = 11.0 + i;
    s.output_ms = 13.0;
    s.budget_ms = 13.0;
    s.fits_budget = i % 2 == 0;
    s.error_pct = 5.0;
    log.add(s);
    h.record(s.measured_ms);
  }
  const std::string dash = render_dashboard(r, log);
  EXPECT_NE(dash.find("latency per frame [ms]"), std::string::npos);
  EXPECT_NE(dash.find("prediction error per frame [%]"), std::string::npos);
  EXPECT_NE(dash.find("budget misses: 10"), std::string::npos);
  EXPECT_NE(dash.find("tripleC_frame_measured_ms"), std::string::npos);
  EXPECT_NE(dash.find("p50 / p90 / p99"), std::string::npos);
}

TEST(Dashboard, EmptyLogDoesNotCrash) {
  MetricsRegistry r;
  FrameLog log;
  const std::string dash = render_dashboard(r, log);
  EXPECT_NE(dash.find("no managed frames"), std::string::npos);
}

TEST(WriteTextFile, RoundTrips) {
  const std::string path = "obs_test_write.txt";
  ASSERT_TRUE(write_text_file(path, "hello\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tc::obs
