#include "obs/metrics.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tc::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Gauge, SetsLastValue) {
  Gauge g;
  g.set(7.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(Histogram, BucketEdgesUseLessOrEqualSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.record(1.0);   // == bound -> first bucket (le semantics)
  h.record(1.001); // -> second bucket
  h.record(4.0);   // == last finite bound -> third bucket
  h.record(4.001); // -> +Inf bucket
  h.record(-3.0);  // below everything -> first bucket
  std::vector<u64> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.001 + 4.0 + 4.001 - 3.0);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 samples in (10, 20]: percentiles interpolate across that bucket.
  for (i32 i = 0; i < 10; ++i) h.record(15.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 20.0);
}

TEST(Histogram, PercentileAcrossBuckets) {
  Histogram h({1.0, 2.0, 3.0, 4.0});
  for (f64 v : {0.5, 1.5, 2.5, 3.5}) h.record(v);
  // Rank p90 * 4 = 3.6 lands in the fourth bucket (3, 4].
  EXPECT_GT(h.p90(), 3.0);
  EXPECT_LE(h.p90(), 4.0);
  EXPECT_LE(h.p50(), 2.0);
}

TEST(Histogram, OverflowBucketClampsToLastBound) {
  Histogram h({1.0, 2.0});
  h.record(100.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 2.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, InfBucketClampsEveryPercentile) {
  Histogram h({1.0, 8.0});
  // All mass in the +Inf bucket: no percentile may escape past the last
  // finite bound (a naive interpolation would divide by an infinite width).
  for (i32 i = 0; i < 100; ++i) h.record(1e9);
  for (f64 p : {0.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 8.0) << "p=" << p;
  }
  EXPECT_EQ(h.bucket_counts().back(), 100u);
}

TEST(Histogram, ResetRacesRecordWithoutCorruption) {
  // reset() may run while writers record(): totals after the dust settles
  // stay within the recorded range and nothing tears (TSan acceptance).
  Histogram h({1.0, 2.0, 4.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (i32 w = 0; w < 2; ++w) {
    writers.emplace_back([&h, &stop] {
      while (!stop.load(std::memory_order_relaxed)) h.record(1.5);
    });
  }
  for (i32 i = 0; i < 500; ++i) h.reset();
  stop.store(true);
  for (auto& t : writers) t.join();
  // Once quiescent, one more reset restores exact accounting: the racing
  // phase must not have corrupted any instrument state.
  h.reset();
  h.record(1.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
}

TEST(MetricNames, GrammarMatchesPrometheus) {
  EXPECT_TRUE(valid_metric_name("tripleC_frame_ms"));
  EXPECT_TRUE(valid_metric_name("_private"));
  EXPECT_TRUE(valid_metric_name("ns:sub:metric_total"));
  EXPECT_TRUE(valid_metric_name("A9"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("9starts_with_digit"));
  EXPECT_FALSE(valid_metric_name("has-dash"));
  EXPECT_FALSE(valid_metric_name("has space"));
  EXPECT_FALSE(valid_metric_name("trailing\n"));
  EXPECT_FALSE(valid_metric_name("uni\xc3\xa9"));
}

TEST(MetricNames, RegistrationRejectsInvalidNames) {
  MetricsRegistry r;
  EXPECT_THROW(r.counter("bad-name", "h"), std::invalid_argument);
  EXPECT_THROW(r.gauge("1bad", "h"), std::invalid_argument);
  EXPECT_THROW(r.histogram("bad name", "h", std::vector<f64>{1.0}),
               std::invalid_argument);
  EXPECT_EQ(r.size(), 0u);  // nothing half-registered
}

TEST(Labels, ValuesAreEscapedForExposition) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape_label_value("two\nlines"), "two\\nlines");
  EXPECT_EQ(label("task", "RDG_FULL"), "task=\"RDG_FULL\"");
  EXPECT_EQ(label("task", "a\"b\\c"), "task=\"a\\\"b\\\\c\"");
}

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry r;
  Counter& a = r.counter("tripleC_x_total", "help");
  Counter& b = r.counter("tripleC_x_total", "help");
  EXPECT_EQ(&a, &b);
  Counter& labeled = r.counter("tripleC_x_total", "help", "task=\"A\"");
  EXPECT_NE(&a, &labeled);
  EXPECT_EQ(r.size(), 2u);
}

TEST(MetricsRegistry, ResetValuesKeepsInstrumentsValid) {
  MetricsRegistry r;
  Counter& c = r.counter("tripleC_c_total", "h");
  Histogram& h = r.histogram("tripleC_h_ms", "h", std::vector<f64>{1.0, 2.0});
  c.add(5.0);
  h.record(1.5);
  r.reset_values();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // The same references remain usable after the reset.
  c.add(1.0);
  h.record(0.5);
  EXPECT_DOUBLE_EQ(c.value(), 1.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  MetricsRegistry r;
  Counter& c = r.counter("tripleC_con_total", "h");
  Histogram& h =
      r.histogram("tripleC_con_ms", "h", std::vector<f64>{0.5, 1.0, 2.0});
  constexpr i32 kThreads = 8;
  constexpr i32 kPerThread = 5000;
  std::vector<std::thread> threads;
  for (i32 t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (i32 i = 0; i < kPerThread; ++i) {
        c.add(1.0);
        h.record(0.75);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c.value(), static_cast<f64>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<u64>(kThreads * kPerThread));
  EXPECT_EQ(h.bucket_counts()[1], static_cast<u64>(kThreads * kPerThread));
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry r;
  std::vector<std::thread> threads;
  for (i32 t = 0; t < 8; ++t) {
    threads.emplace_back([&r] {
      for (i32 i = 0; i < 200; ++i) {
        r.counter("tripleC_shared_total", "h").add();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.entries()[0].counter->value(), 1600.0);
}

TEST(FrameLog, StoresSamplesInOrder) {
  FrameLog log;
  for (i32 i = 0; i < 5; ++i) {
    FrameSample s;
    s.frame = i;
    s.measured_ms = static_cast<f64>(i);
    log.add(s);
  }
  EXPECT_EQ(log.size(), 5u);
  std::vector<FrameSample> all = log.samples();
  EXPECT_EQ(all[3].frame, 3);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(FrameLog, CapacityBoundsKeepNewestSamples) {
  FrameLog log(4);
  for (i32 i = 0; i < 10; ++i) {
    FrameSample s;
    s.frame = i;
    log.add(s);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_added(), 10u);
  EXPECT_EQ(log.capacity(), 4u);
  const std::vector<FrameSample> all = log.samples();
  for (usize i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].frame, 6 + static_cast<i32>(i));
  }
}

TEST(FrameLog, SetCapacityEvictsAndZeroUnbounds) {
  FrameLog log;
  for (i32 i = 0; i < 8; ++i) {
    FrameSample s;
    s.frame = i;
    log.add(s);
  }
  log.set_capacity(3);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.samples().front().frame, 5);
  log.set_capacity(0);  // unbounded again: nothing further evicted
  for (i32 i = 8; i < 16; ++i) {
    FrameSample s;
    s.frame = i;
    log.add(s);
  }
  EXPECT_EQ(log.size(), 11u);
  EXPECT_EQ(log.total_added(), 16u);
}

}  // namespace
}  // namespace tc::obs
