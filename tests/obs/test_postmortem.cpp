#include "obs/postmortem.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace tc::obs {
namespace {

namespace fs = std::filesystem;
using common::JsonValue;

PostmortemContext make_context() {
  PostmortemContext ctx;
  ctx.reason = "deadline_miss";
  ctx.frame = 42;
  ctx.deadline_ms = 16.0;
  ctx.predicted_ms = 14.5;
  ctx.measured_ms = 19.25;
  ctx.plan = "acq:2|proc:4";
  ctx.quality_level = 1;
  ctx.scenario = 3;
  ctx.predictors.markov_fitted = true;
  ctx.predictors.markov_states = 6;
  ctx.predictors.last_serial_total_ms = 18.0;
  ctx.predictors.markov_predicted_next_ms = 17.5;
  ctx.predictors.nodes.push_back({"acq", 4.5, true});
  ctx.predictors.nodes.push_back({"ridge", 9.75, false});
  ctx.predictors.drift_errors_pct.emplace_back("markov_corrected", 12.5);
  ctx.extra.emplace_back("policy", "degrade");
  return ctx;
}

TEST(BundleJson, ProducesParseableSelfContainedDocument) {
  FlightRecorder rec(64);
  rec.record(FrEventType::FrameStart, 42, -1, 14.5);
  rec.record(FrEventType::DeadlineMiss, 42, -1, 19.25, 16.0);
  MetricsRegistry metrics;
  metrics.counter("tripleC_test_total", "test counter").add(3.0);
  metrics
      .histogram("tripleC_test_ms", "test histogram",
                 std::vector<f64>{1.0, 10.0})
      .record(5.0);

  const std::vector<FlightEvent> events = rec.snapshot();
  const std::string doc = bundle_json(make_context(), events, metrics);
  const JsonValue root = JsonValue::parse(doc);

  EXPECT_EQ(root.string_or("format", ""), "triplec-postmortem-v1");
  EXPECT_EQ(root.string_or("reason", ""), "deadline_miss");
  EXPECT_EQ(static_cast<i32>(root.number_or("frame", -1)), 42);
  EXPECT_DOUBLE_EQ(root.number_or("deadline_ms", 0), 16.0);
  EXPECT_DOUBLE_EQ(root.number_or("measured_ms", 0), 19.25);
  EXPECT_EQ(root.string_or("plan", ""), "acq:2|proc:4");
  EXPECT_EQ(static_cast<i32>(root.number_or("quality_level", -1)), 1);
  EXPECT_EQ(static_cast<i32>(root.number_or("scenario", -1)), 3);
  EXPECT_EQ(root.get("extra").string_or("policy", ""), "degrade");

  const JsonValue& predictors = root.get("predictors");
  EXPECT_TRUE(predictors.get("markov_fitted").as_bool());
  EXPECT_EQ(static_cast<i32>(predictors.number_or("markov_states", 0)), 6);
  EXPECT_DOUBLE_EQ(
      predictors.get("drift_errors_pct").number_or("markov_corrected", 0),
      12.5);
  const JsonValue& nodes = predictors.get("nodes");
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes.at(0).string_or("name", ""), "acq");
  EXPECT_DOUBLE_EQ(nodes.at(1).number_or("ewma_ms", 0), 9.75);
  EXPECT_FALSE(nodes.at(1).get("primed").as_bool());

  const JsonValue& embedded = root.get("events");
  ASSERT_EQ(embedded.size(), 2u);
  EXPECT_EQ(embedded.at(0).string_or("type", ""), "frame_start");
  EXPECT_EQ(embedded.at(1).string_or("type", ""), "deadline_miss");

  const JsonValue& series = root.get("metrics");
  ASSERT_TRUE(series.is_array());
  bool saw_counter = false;
  for (usize i = 0; i < series.size(); ++i) {
    if (series.at(i).string_or("name", "") == "tripleC_test_total") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(series.at(i).number_or("value", 0), 3.0);
    }
  }
  EXPECT_TRUE(saw_counter);
}

TEST(BundleJson, EscapesHostileStrings) {
  PostmortemContext ctx;
  ctx.reason = "slo_breach:\"p99\"\n";
  ctx.plan = "a\\b";
  ctx.extra.emplace_back("note", "tab\there");
  MetricsRegistry metrics;
  const std::string doc = bundle_json(ctx, {}, metrics);
  const JsonValue root = JsonValue::parse(doc);  // must not throw
  EXPECT_EQ(root.string_or("reason", ""), "slo_breach:\"p99\"\n");
  EXPECT_EQ(root.string_or("plan", ""), "a\\b");
  EXPECT_EQ(root.get("extra").string_or("note", ""), "tab\there");
}

class PostmortemWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tc_postmortem_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  FlightRecorder flight_{64};
  MetricsRegistry metrics_;
};

TEST_F(PostmortemWriterTest, EmptyDirectoryDisablesWriting) {
  PostmortemWriter writer;  // default config: no directory
  const std::string path =
      writer.write(make_context(), flight_, metrics_);
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(writer.bundles_written(), 0u);
}

TEST_F(PostmortemWriterTest, WritesReadableBundleAndTracksLastPath) {
  PostmortemConfig config;
  config.directory = dir_.string();
  PostmortemWriter writer(config);
  flight_.record(FrEventType::DeadlineMiss, 42, -1, 19.25, 16.0);

  const std::string path = writer.write(make_context(), flight_, metrics_);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(writer.last_path(), path);
  EXPECT_EQ(writer.bundles_written(), 1u);
  ASSERT_TRUE(fs::exists(path));

  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const JsonValue root = JsonValue::parse(ss.str());
  EXPECT_EQ(root.string_or("format", ""), "triplec-postmortem-v1");
  EXPECT_EQ(static_cast<i32>(root.number_or("frame", -1)), 42);
  EXPECT_EQ(root.get("events").size(), 1u);
}

TEST_F(PostmortemWriterTest, RateLimitSuppressesAndForceBypasses) {
  PostmortemConfig config;
  config.directory = dir_.string();
  config.min_frames_between = 10;
  PostmortemWriter writer(config);

  PostmortemContext ctx = make_context();
  ctx.frame = 0;
  EXPECT_FALSE(writer.write(ctx, flight_, metrics_).empty());
  ctx.frame = 5;  // inside the rate-limit window
  EXPECT_TRUE(writer.write(ctx, flight_, metrics_).empty());
  EXPECT_EQ(writer.suppressed(), 1u);
  // force bypasses the rate limit (explicit operator request)...
  EXPECT_FALSE(writer.write(ctx, flight_, metrics_, /*force=*/true).empty());
  // ...and a frame past the window writes normally again.
  ctx.frame = 20;
  EXPECT_FALSE(writer.write(ctx, flight_, metrics_).empty());
  EXPECT_EQ(writer.bundles_written(), 3u);
}

TEST_F(PostmortemWriterTest, MaxBundlesCapsEvenForcedWrites) {
  PostmortemConfig config;
  config.directory = dir_.string();
  config.min_frames_between = 0;
  config.max_bundles = 2;
  PostmortemWriter writer(config);

  PostmortemContext ctx = make_context();
  for (i32 i = 0; i < 5; ++i) {
    ctx.frame = i * 100;
    writer.write(ctx, flight_, metrics_, /*force=*/true);
  }
  EXPECT_EQ(writer.bundles_written(), 2u);
  EXPECT_EQ(writer.suppressed(), 3u);
  usize files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

TEST_F(PostmortemWriterTest, TrimsEmbeddedEventsToMaxEvents) {
  PostmortemConfig config;
  config.directory = dir_.string();
  config.max_events = 8;
  PostmortemWriter writer(config);
  for (i32 i = 0; i < 40; ++i) {
    flight_.record(FrEventType::Custom, i);
  }

  const std::string path = writer.write(make_context(), flight_, metrics_);
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const JsonValue root = JsonValue::parse(ss.str());
  const JsonValue& events = root.get("events");
  ASSERT_EQ(events.size(), 8u);
  // The newest eight events survive the trim.
  for (usize i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<i32>(events.at(i).number_or("frame", -1)),
              32 + static_cast<i32>(i));
  }
}

TEST_F(PostmortemWriterTest, KeepLatestPrunesOldestBundles) {
  PostmortemConfig config;
  config.directory = dir_.string();
  config.min_frames_between = 0;
  config.keep_latest = 3;
  PostmortemWriter writer(config);

  PostmortemContext ctx = make_context();
  for (i32 i = 0; i < 7; ++i) {
    ctx.frame = i;
    ASSERT_FALSE(writer.write(ctx, flight_, metrics_).empty());
  }
  EXPECT_EQ(writer.bundles_written(), 7u);
  EXPECT_EQ(writer.pruned(), 4u);

  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names.size(), 3u);
  // Monotonic names break same-second mtime ties: the three newest survive.
  EXPECT_EQ(names[0], "postmortem_0004_frame4.json");
  EXPECT_EQ(names[2], "postmortem_0006_frame6.json");
  EXPECT_TRUE(fs::exists(writer.last_path()));
}

TEST_F(PostmortemWriterTest, KeepLatestPrunesStaleBundlesFromPriorRuns) {
  fs::create_directories(dir_);
  // A leftover bundle from an earlier process plus an unrelated file.
  std::ofstream(dir_ / "postmortem_0000_frame9.json") << "{}";
  std::ofstream(dir_ / "notes.txt") << "keep me";

  PostmortemConfig config;
  config.directory = dir_.string();
  config.min_frames_between = 0;
  config.keep_latest = 1;
  PostmortemWriter writer(config);
  PostmortemContext ctx = make_context();
  ctx.frame = 1;
  const std::string path = writer.write(ctx, flight_, metrics_);
  ASSERT_FALSE(path.empty());

  EXPECT_FALSE(fs::exists(dir_ / "postmortem_0000_frame9.json"));
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(dir_ / "notes.txt"));  // non-bundles untouched
  EXPECT_EQ(writer.pruned(), 1u);
}

TEST_F(PostmortemWriterTest, KeepLatestZeroKeepsEverything) {
  PostmortemConfig config;
  config.directory = dir_.string();
  config.min_frames_between = 0;  // keep_latest stays at its 0 default
  PostmortemWriter writer(config);
  PostmortemContext ctx = make_context();
  for (i32 i = 0; i < 4; ++i) {
    ctx.frame = i;
    writer.write(ctx, flight_, metrics_);
  }
  EXPECT_EQ(writer.pruned(), 0u);
  usize files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 4u);
}

TEST(BundleJson, EmbedsLedgerRows) {
  PostmortemContext ctx = make_context();
  LedgerRow row;
  row.frame = 42;
  row.node = 1;
  row.scenario = 3;
  row.stripes = 2;
  row.deadline_slack_ms = -3.25;
  row.pred_mask = row.meas_mask = ledger_bit(LedgerResource::CpuMs);
  row.pred[0] = 14.5;
  row.meas[0] = 19.25;
  ctx.ledger_rows.push_back(row);

  MetricsRegistry metrics;
  const JsonValue root = JsonValue::parse(bundle_json(ctx, {}, metrics));
  const JsonValue& ledger = root.get("ledger");
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(static_cast<i32>(ledger.at(0).number_or("frame", -1)), 42);
  EXPECT_EQ(static_cast<i32>(ledger.at(0).number_or("stripes", 0)), 2);
  EXPECT_DOUBLE_EQ(ledger.at(0).number_or("slack_ms", 0), -3.25);
  EXPECT_DOUBLE_EQ(ledger.at(0).get("pred").at(0).number_or(0), 14.5);
  EXPECT_DOUBLE_EQ(ledger.at(0).get("meas").at(0).number_or(0), 19.25);
}

}  // namespace
}  // namespace tc::obs
