#include "obs/span_tracer.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tc::obs {
namespace {

TEST(SpanTracer, RecordsEventsInOrder) {
  SpanTracer tracer;
  SpanEvent e;
  e.name = "a";
  e.ts_us = 10.0;
  e.dur_us = 5.0;
  tracer.record(e);
  tracer.instant("marker", "cat", kSimPid, 0, 12.0);
  ASSERT_EQ(tracer.size(), 2u);
  std::vector<SpanEvent> events = tracer.events();
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[1].name, "marker");
  EXPECT_EQ(events[1].phase, 'i');
}

TEST(SpanTracer, ScopedSpansNestByContainment) {
  SpanTracer tracer;
  {
    ScopedSpan outer(&tracer, "outer", "test");
    {
      ScopedSpan inner(&tracer, "inner", "test");
    }
  }
  std::vector<SpanEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner closes first.
  const SpanEvent& inner = events[0];
  const SpanEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-3);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_EQ(inner.pid, kHostPid);
}

TEST(SpanTracer, NullTracerSpanIsNoop) {
  ScopedSpan span(nullptr, "ignored", "test");
  span.arg("k", "v");
  // Destructor must not crash; nothing to assert beyond that.
}

TEST(SpanTracer, HostTidsAreStablePerThread) {
  SpanTracer tracer;
  u32 main_a = tracer.host_tid();
  u32 main_b = tracer.host_tid();
  EXPECT_EQ(main_a, main_b);
  u32 other = main_a;
  std::thread t([&] { other = tracer.host_tid(); });
  t.join();
  EXPECT_NE(other, main_a);
}

TEST(SpanTracer, ConcurrentRecordingLosesNothing) {
  SpanTracer tracer;
  constexpr i32 kThreads = 8;
  constexpr i32 kPerThread = 500;
  std::vector<std::thread> threads;
  for (i32 t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (i32 i = 0; i < kPerThread; ++i) {
        ScopedSpan span(&tracer, "work", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.size(), static_cast<usize>(kThreads * kPerThread));
}

TEST(SpanTracer, ChromeJsonHasSchemaFields) {
  SpanTracer tracer;
  tracer.set_thread_name(kSimPid, 0, "frames");
  SpanEvent e;
  e.name = "frame 0";
  e.category = "frame";
  e.pid = kSimPid;
  e.tid = 0;
  e.ts_us = 0.0;
  e.dur_us = 1000.0;
  e.args = {{"scenario", "5"}};
  tracer.record(e);
  std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"scenario\":\"5\"}"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity check in lieu of a
  // JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(SpanTracer, CounterEventsEmitNumericSeriesArgs) {
  SpanTracer tracer;
  tracer.counter("ledger RDG cpu_ms", "ledger", kHostPid, 0, 50.0,
                 {{"predicted", 4.25}, {"actual", 5.0}});
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events()[0].phase, 'C');

  std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Counter args are raw numbers (Chrome overlays each key as a series),
  // not quoted strings like span args.
  EXPECT_NE(json.find("\"predicted\":4.25"), std::string::npos);
  EXPECT_NE(json.find("\"actual\":5"), std::string::npos);
  EXPECT_EQ(json.find("\"predicted\":\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(SpanTracer, JsonEscapesSpecialCharacters) {
  SpanTracer tracer;
  SpanEvent e;
  e.name = "quote\" backslash\\ newline\n";
  tracer.record(e);
  std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\n"),
            std::string::npos);
}

TEST(SpanTracer, ClearDropsEvents) {
  SpanTracer tracer;
  tracer.record(SpanEvent{});
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

}  // namespace
}  // namespace tc::obs
