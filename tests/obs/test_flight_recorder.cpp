#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/obs.hpp"

namespace tc::obs {
namespace {

TEST(FlightRecorder, RecordsAndSnapshotsInOrder) {
  FlightRecorder rec(64);
  rec.record(FrEventType::FrameStart, 0, -1, 1.0);
  rec.record(FrEventType::NodeTiming, 0, 3, 2.5, 2.75);
  rec.record(FrEventType::FrameEnd, 0, -1, 3.0, 4.0);

  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FrEventType::FrameStart);
  EXPECT_EQ(events[1].type, FrEventType::NodeTiming);
  EXPECT_EQ(events[1].node, 3);
  EXPECT_DOUBLE_EQ(events[1].a, 2.5);
  EXPECT_DOUBLE_EQ(events[1].b, 2.75);
  EXPECT_EQ(events[2].type, FrEventType::FrameEnd);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const FlightEvent& x, const FlightEvent& y) { return x.ts_us < y.ts_us; }));
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total_recorded(), 3u);
  EXPECT_EQ(rec.thread_count(), 1u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwoMin64) {
  EXPECT_EQ(FlightRecorder(0).capacity_per_thread(), 64u);
  EXPECT_EQ(FlightRecorder(65).capacity_per_thread(), 128u);
  EXPECT_EQ(FlightRecorder(256).capacity_per_thread(), 256u);
}

TEST(FlightRecorder, WraparoundKeepsNewestCapacityEvents) {
  FlightRecorder rec(64);
  const i32 total = 64 * 3 + 17;
  for (i32 i = 0; i < total; ++i) {
    rec.record(FrEventType::Custom, i, -1, static_cast<f64>(i));
  }
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 64u);
  EXPECT_EQ(rec.total_recorded(), static_cast<u64>(total));
  // The surviving window is exactly the last 64 frames, in order.
  for (usize i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].frame, total - 64 + static_cast<i32>(i));
  }
}

TEST(FlightRecorder, ClearEmptiesRingsButKeepsThreadRegistration) {
  FlightRecorder rec(64);
  rec.record(FrEventType::Custom, 1);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.thread_count(), 1u);
  rec.record(FrEventType::Custom, 2);
  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].frame, 2);
}

TEST(FlightRecorder, PerThreadRingsMergeIntoOneTimeline) {
  FlightRecorder rec(256);
  constexpr i32 kThreads = 4;
  constexpr i32 kPerThread = 100;
  std::vector<std::thread> threads;
  for (i32 th = 0; th < kThreads; ++th) {
    threads.emplace_back([&rec, th] {
      for (i32 i = 0; i < kPerThread; ++i) {
        rec.record(FrEventType::Custom, i, th);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(rec.thread_count(), static_cast<usize>(kThreads));
  const std::vector<FlightEvent> events = rec.snapshot();
  EXPECT_EQ(events.size(), static_cast<usize>(kThreads * kPerThread));
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const FlightEvent& x, const FlightEvent& y) { return x.ts_us < y.ts_us; }));
  // Per producer (tagged via node), the frame payloads arrive in order:
  // per-thread rings never reorder their own events.
  for (i32 th = 0; th < kThreads; ++th) {
    i32 expected = 0;
    for (const FlightEvent& e : events) {
      if (e.node != th) continue;
      EXPECT_EQ(e.frame, expected++);
    }
    EXPECT_EQ(expected, kPerThread);
  }
}

// The acceptance property of the recorder: writers stay lock-free while a
// reader snapshots concurrently, and no snapshot ever observes a torn slot
// (a seq-mismatched slot is dropped).  Run under TSan this also proves the
// protocol data-race-free.
TEST(FlightRecorder, ConcurrentSnapshotsNeverTearEvents) {
  FlightRecorder rec(64);  // small ring: heavy wraparound during the test
  constexpr i32 kWriters = 3;
  constexpr i32 kPerWriter = 4000;
  std::vector<std::thread> writers;
  for (i32 w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (i32 i = 0; i < kPerWriter; ++i) {
        // Invariant checked below: a == frame + 1, b == frame + 2.
        const f64 v = static_cast<f64>(i);
        rec.record(FrEventType::Custom, i, w, v + 1.0, v + 2.0);
      }
    });
  }
  auto validate = [kWriters](const std::vector<FlightEvent>& events) {
    for (const FlightEvent& e : events) {
      ASSERT_EQ(e.type, FrEventType::Custom);
      ASSERT_DOUBLE_EQ(e.a, static_cast<f64>(e.frame) + 1.0);
      ASSERT_DOUBLE_EQ(e.b, static_cast<f64>(e.frame) + 2.0);
      ASSERT_GE(e.node, 0);
      ASSERT_LT(e.node, kWriters);
    }
  };
  // Snapshot while the writers wrap their rings (a single-core scheduler
  // may serialize this; TSan + multicore CI exercise the true overlap).
  for (i32 round = 0; round < 200; ++round) {
    validate(rec.snapshot());
    std::this_thread::yield();
  }
  for (auto& t : writers) t.join();
  // Quiescent: every ring holds exactly its last 64 events, nothing torn.
  const std::vector<FlightEvent> final_events = rec.snapshot();
  validate(final_events);
  EXPECT_EQ(final_events.size(), static_cast<usize>(kWriters) * 64u);
  EXPECT_EQ(rec.total_recorded(),
            static_cast<u64>(kWriters) * static_cast<u64>(kPerWriter));
}

TEST(FlightRecorder, ReallocatedRecorderNeverServesStaleCachedRing) {
  // The TLS ring cache is keyed on a process-unique generation, not the
  // recorder's address: destroy a recorder this thread recorded into, let
  // the allocator hand the next recorder the same address, and the cache
  // must miss (ABA) instead of dereferencing the dead recorder's ring.
  for (i32 round = 0; round < 8; ++round) {
    auto rec = std::make_unique<FlightRecorder>(64);
    rec->record(FrEventType::Custom, round);
    const std::vector<FlightEvent> events = rec->snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].frame, round);
  }
}

TEST(FlightRecorder, EventsJsonRoundTripsThroughParser) {
  FlightRecorder rec(64);
  rec.record(FrEventType::DeadlineMiss, 7, -1, 12.5, 10.0);
  rec.record(FrEventType::QueuePush, -1, 2, 3.0);
  const std::string doc = flight_events_json(rec.snapshot());

  const common::JsonValue v = common::JsonValue::parse(doc);
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at(0).string_or("type", ""), "deadline_miss");
  EXPECT_EQ(static_cast<i32>(v.at(0).number_or("frame", -2)), 7);
  EXPECT_DOUBLE_EQ(v.at(0).number_or("a", 0), 12.5);
  EXPECT_EQ(v.at(1).string_or("type", ""), "queue_push");
  EXPECT_EQ(static_cast<i32>(v.at(1).number_or("node", -2)), 2);
}

TEST(FlightRecorder, GlobalContextClearAlsoClearsFlight) {
  obs::global().flight.record(FrEventType::Custom, 1);
  EXPECT_GT(obs::global().flight.size(), 0u);
  obs::global().clear();
  EXPECT_EQ(obs::global().flight.size(), 0u);
}

TEST(FlightRecorderEnum, EveryTypeHasAName) {
  for (u16 t = 0; t <= static_cast<u16>(FrEventType::Custom); ++t) {
    EXPECT_STRNE(to_string(static_cast<FrEventType>(t)), "unknown");
  }
}

}  // namespace
}  // namespace tc::obs
