#include "platform/cost_model.hpp"

#include <gtest/gtest.h>

namespace tc::plat {
namespace {

CostModel model() {
  return CostModel(PlatformSpec::paper_platform(), CostParams{});
}

img::WorkReport compute_heavy(u64 mops = 50) {
  img::WorkReport w;
  w.pixel_ops = mops * 1000000;
  // Keep buffers small enough that the footprint fits the L2 slice even
  // after a 4x resolution scaling (no eviction nonlinearity).
  w.input_bytes = 256 * KiB;
  w.output_bytes = 256 * KiB;
  w.data_parallel = true;
  return w;
}

TEST(CostModel, ComputeTimeMatchesClock) {
  CostModel cm = model();
  img::WorkReport w;
  w.pixel_ops = static_cast<u64>(cm.cycles_per_ms() /
                                 cm.params().cycles_per_pixel_op);
  TaskCost c = cm.serial_cost(w);
  EXPECT_NEAR(c.compute_ms, 1.0, 1e-6);
}

TEST(CostModel, FeatureOpsAreMoreExpensive) {
  CostModel cm = model();
  img::WorkReport px;
  px.pixel_ops = 1000000;
  img::WorkReport ft;
  ft.feature_ops = 1000000;
  EXPECT_GT(cm.serial_cost(ft).compute_ms, cm.serial_cost(px).compute_ms);
}

TEST(CostModel, DispatchOverheadAlwaysPresent) {
  CostModel cm = model();
  TaskCost c = cm.serial_cost(img::WorkReport{});
  EXPECT_NEAR(c.total_ms, cm.params().dispatch_ms, 1e-12);
}

TEST(CostModel, DramTrafficCompulsoryOnly) {
  CostModel cm = model();
  img::WorkReport w;
  w.input_bytes = 2 * MiB;
  w.output_bytes = 1 * MiB;
  // Footprint = 3 MiB < 4 MiB L2 → no eviction.
  EXPECT_EQ(cm.dram_traffic(w), 3 * MiB);
}

TEST(CostModel, DramTrafficIncludesEviction) {
  CostModel cm = model();
  img::WorkReport w;
  w.input_bytes = 2 * MiB;
  w.intermediate_bytes = 6 * MiB;
  w.output_bytes = 2 * MiB;
  // Footprint 10 MiB vs 4 MiB L2 → 6 MiB overflow → 12 MiB extra traffic.
  EXPECT_EQ(cm.dram_traffic(w), 4 * MiB + 12 * MiB);
}

TEST(CostModel, ResolutionScaleScalesWorkAndTraffic) {
  CostParams p;
  p.resolution_scale = 4.0;
  CostModel cm(PlatformSpec::paper_platform(), p);
  CostModel base = model();
  img::WorkReport w = compute_heavy();
  EXPECT_NEAR(cm.serial_cost(w).compute_ms,
              4.0 * base.serial_cost(w).compute_ms, 1e-9);
  EXPECT_EQ(cm.dram_traffic(w), 4 * base.dram_traffic(w));
}

TEST(CostModel, StripingReducesComputeBoundTaskTime) {
  CostModel cm = model();
  img::WorkReport w = compute_heavy(100);
  TaskCost serial = cm.serial_cost(w);
  TaskCost two = cm.striped_cost(w, 2);
  TaskCost four = cm.striped_cost(w, 4);
  EXPECT_LT(two.total_ms, serial.total_ms);
  EXPECT_LT(four.total_ms, two.total_ms);
  // Speed-up is sub-linear (imbalance + sync overhead).
  EXPECT_GT(two.total_ms, serial.total_ms / 2.0);
}

TEST(CostModel, StripeCountClampedToCpuCount) {
  CostModel cm = model();
  img::WorkReport w = compute_heavy(100);
  TaskCost eight = cm.striped_cost(w, 8);
  TaskCost sixteen = cm.striped_cost(w, 16);
  EXPECT_NEAR(eight.total_ms, sixteen.total_ms, 1e-9);
}

TEST(CostModel, OneStripeEqualsSerial) {
  CostModel cm = model();
  img::WorkReport w = compute_heavy();
  EXPECT_NEAR(cm.striped_cost(w, 1).total_ms, cm.serial_cost(w).total_ms,
              1e-12);
}

TEST(CostModel, StripedCostFromReportsUsesWorstStripe) {
  CostModel cm = model();
  img::WorkReport a;
  a.pixel_ops = 10 * 1000000;
  img::WorkReport b;
  b.pixel_ops = 30 * 1000000;  // imbalanced split
  std::vector<img::WorkReport> reports{a, b};
  TaskCost c = cm.striped_cost(reports);
  // Worst stripe dominates: equals the compute time of b.
  EXPECT_NEAR(c.compute_ms, cm.serial_cost(b).compute_ms, 1e-9);
}

TEST(CostModel, StripedCostFromSingleReportIsSerial) {
  CostModel cm = model();
  img::WorkReport w = compute_heavy();
  std::vector<img::WorkReport> reports{w};
  EXPECT_NEAR(cm.striped_cost(reports).total_ms, cm.serial_cost(w).total_ms,
              1e-12);
}

TEST(CostModel, MemoryBoundTaskLimitedByDram) {
  CostModel cm = model();
  img::WorkReport w;
  w.input_bytes = 512 * MiB;  // enormous traffic, no compute
  TaskCost c = cm.serial_cost(w);
  EXPECT_GT(c.memory_ms, c.compute_ms);
  EXPECT_NEAR(c.total_ms, c.memory_ms + cm.params().dispatch_ms, 1e-9);
}

TEST(CostModel, ContentionGrowsWithActiveCpus) {
  CostModel cm = model();
  img::WorkReport w;
  w.input_bytes = 512 * MiB;
  TaskCost serial = cm.serial_cost(w);
  TaskCost striped = cm.striped_cost(w, 8);
  // Same traffic, more contention → memory time can only grow.
  EXPECT_GE(striped.memory_ms, serial.memory_ms);
}

TEST(PlatformSpec, PaperParameters) {
  PlatformSpec s = PlatformSpec::paper_platform();
  EXPECT_EQ(s.cpu_count, 8);
  EXPECT_NEAR(s.cpu_mcycles_per_s, 2327.0, 1e-9);
  EXPECT_EQ(s.l1_bytes, 32 * KiB);
  EXPECT_EQ(s.l2_bytes, 4 * MiB);
  EXPECT_EQ(s.l2_slice_count(), 4);
  EXPECT_EQ(s.dram_bytes, 4 * GiB);
}

TEST(PlatformSpec, DramBandwidthRange) {
  PlatformSpec s = PlatformSpec::paper_platform();
  EXPECT_NEAR(s.dram_gbps(0.0), 3.83 * 4, 1e-9);
  EXPECT_NEAR(s.dram_gbps(1.0), 0.94 * 4, 1e-9);
  EXPECT_GT(s.dram_gbps(0.3), s.dram_gbps(0.7));
}

TEST(VideoFormat, PaperStreamRate) {
  VideoFormat v;
  EXPECT_EQ(v.frame_bytes(), 2u * 1024 * 1024);
  // 1024x1024 x 2 B x 30 Hz ≈ 62.9 MB/s.
  EXPECT_NEAR(v.stream_mbytes_per_s(), 62.9, 0.1);
}

}  // namespace
}  // namespace tc::plat
