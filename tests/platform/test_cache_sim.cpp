#include "platform/cache_sim.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "platform/buffer_model.hpp"

namespace tc::plat {
namespace {

CacheConfig small_cache(u64 kb = 64, u64 line = 64, u32 ways = 8) {
  CacheConfig c;
  c.capacity_bytes = kb * KiB;
  c.line_bytes = line;
  c.associativity = ways;
  return c;
}

TEST(CacheSim, ColdMissThenHit) {
  CacheSim sim(small_cache());
  sim.read(0);
  EXPECT_EQ(sim.stats().misses, 1u);
  sim.read(0);
  sim.read(63);  // same line
  EXPECT_EQ(sim.stats().hits, 2u);
  sim.read(64);  // next line
  EXPECT_EQ(sim.stats().misses, 2u);
}

TEST(CacheSim, SetCountFromGeometry) {
  CacheSim sim(small_cache(64, 64, 8));
  EXPECT_EQ(sim.set_count(), 64u * 1024 / (64 * 8));
}

TEST(CacheSim, StreamingIsAllColdMisses) {
  CacheSim sim(small_cache());
  const u64 bytes = 1 * MiB;
  sim.read_range(0, bytes);
  EXPECT_EQ(sim.stats().accesses, bytes / 64);
  EXPECT_EQ(sim.stats().misses, bytes / 64);
}

TEST(CacheSim, WorkingSetWithinCapacityHasNoCapacityMisses) {
  CacheSim sim(small_cache(64));
  // Touch 32 KB twice: second pass is all hits.
  sim.read_range(0, 32 * KiB);
  u64 cold = sim.stats().misses;
  sim.read_range(0, 32 * KiB);
  EXPECT_EQ(sim.stats().misses, cold);
  EXPECT_EQ(sim.stats().hits, cold);
}

TEST(CacheSim, WorkingSetBeyondCapacityThrashes) {
  CacheSim sim(small_cache(64));
  // Touch 128 KB twice sequentially: with LRU the second pass misses again.
  sim.read_range(0, 128 * KiB);
  u64 cold = sim.stats().misses;
  sim.read_range(0, 128 * KiB);
  EXPECT_GT(sim.stats().misses, cold * 3 / 2);
}

TEST(CacheSim, DirtyEvictionCountsWriteback) {
  CacheConfig c = small_cache(1, 64, 1);  // 1 KB direct-mapped: 16 sets
  CacheSim sim(c);
  sim.write(0);                // line 0, set 0, dirty
  sim.read(1 * KiB);           // line 16 maps to set 0: evicts dirty line
  EXPECT_EQ(sim.stats().writebacks, 1u);
}

TEST(CacheSim, CleanEvictionNoWriteback) {
  CacheConfig c = small_cache(1, 64, 1);
  CacheSim sim(c);
  sim.read(0);
  sim.read(1 * KiB);
  EXPECT_EQ(sim.stats().writebacks, 0u);
}

TEST(CacheSim, FlushWritesBackDirtyLines) {
  CacheSim sim(small_cache());
  sim.write_range(0, 4 * KiB);  // 64 dirty lines
  sim.flush();
  EXPECT_EQ(sim.stats().writebacks, 64u);
}

TEST(CacheSim, LruKeepsHotLine) {
  CacheConfig c = small_cache(1, 64, 2);  // 8 sets, 2 ways
  CacheSim sim(c);
  // Three lines mapping to set 0: 0, 512, 1024 (8 sets x 64 B = 512 B).
  sim.read(0);
  sim.read(512);
  sim.read(0);     // keeps line 0 most recent
  sim.read(1024);  // evicts line 512 (LRU), not line 0
  sim.read(0);
  EXPECT_EQ(sim.stats().misses, 3u);
  EXPECT_EQ(sim.stats().hits, 2u);
}

TEST(CacheSim, MissRateAndTraffic) {
  CacheSim sim(small_cache());
  sim.read_range(0, 64 * KiB);
  EXPECT_DOUBLE_EQ(sim.stats().miss_rate(), 1.0);
  EXPECT_EQ(sim.stats().traffic_bytes(64), 64 * KiB);
}

// ---------------------------------------------------------------------------
// Cross-validation: the analytical space-time buffer model vs. simulation.
// ---------------------------------------------------------------------------

/// Replay a simple streaming task: read input once, write+re-read an
/// intermediate buffer, write the output; all buffers processed in row
/// chunks interleaved like a real streaming kernel.
CacheStats simulate_streaming_task(u64 cache_kb, u64 in_bytes, u64 mid_bytes,
                                   u64 out_bytes) {
  CacheSim sim(small_cache(cache_kb));
  const u64 in_base = 0;
  const u64 mid_base = 16 * MiB;
  const u64 out_base = 32 * MiB;
  const u64 chunks = 64;
  for (u64 c = 0; c < chunks; ++c) {
    sim.read_range(in_base + c * in_bytes / chunks, in_bytes / chunks);
    sim.write_range(mid_base + c * mid_bytes / chunks, mid_bytes / chunks);
  }
  // Second pass over the intermediate (the re-use the analytical model's
  // reuse_count captures), then the output.
  for (u64 c = 0; c < chunks; ++c) {
    sim.read_range(mid_base + c * mid_bytes / chunks, mid_bytes / chunks);
    sim.write_range(out_base + c * out_bytes / chunks, out_bytes / chunks);
  }
  sim.flush();
  return sim.stats();
}

TEST(CacheSimVsModel, IntermediateFitsNoExtraTraffic) {
  // Intermediate (256 KB) fits a 1 MB cache: simulated traffic ≈ compulsory
  // (in + mid + out once each, plus the dirty mid/out writebacks).
  const u64 in_b = 512 * KiB;
  const u64 mid_b = 256 * KiB;
  const u64 out_b = 512 * KiB;
  CacheStats s = simulate_streaming_task(1024, in_b, mid_b, out_b);
  u64 compulsory = in_b + mid_b + out_b;          // cold fills
  u64 writeback = mid_b + out_b;                  // dirty data leaves once
  EXPECT_NEAR(static_cast<f64>(s.traffic_bytes(64)),
              static_cast<f64>(compulsory + writeback),
              0.05 * static_cast<f64>(compulsory + writeback));

  SpaceTimeBufferModel model;
  model.add_buffer({"in", in_b, 0.0, 0.5, 1});
  model.add_buffer({"mid", mid_b, 0.1, 0.9, 2});
  model.add_buffer({"out", out_b, 0.5, 1.0, 1});
  EXPECT_EQ(model.analyze(1 * MiB).eviction_traffic_bytes, 0u);
}

TEST(CacheSimVsModel, OversizedIntermediateCausesExtraTraffic) {
  // Intermediate (2 MB) exceeds a 1 MB cache: the simulated traffic gains
  // roughly the re-read + re-written overflow, which is what the analytical
  // model predicts as eviction traffic.
  const u64 in_b = 512 * KiB;
  const u64 mid_b = 2 * MiB;
  const u64 out_b = 512 * KiB;
  CacheStats s = simulate_streaming_task(1024, in_b, mid_b, out_b);
  u64 compulsory = in_b + mid_b + out_b + mid_b + out_b;
  u64 extra_sim = s.traffic_bytes(64) - compulsory;
  // The whole intermediate thrashes: it is written out and re-fetched once.
  EXPECT_NEAR(static_cast<f64>(extra_sim), static_cast<f64>(mid_b),
              0.25 * static_cast<f64>(mid_b));

  SpaceTimeBufferModel model;
  model.add_buffer({"in", in_b, 0.0, 0.5, 1});
  model.add_buffer({"mid", mid_b, 0.1, 0.9, 2});
  model.add_buffer({"out", out_b, 0.5, 1.0, 1});
  OccupancyAnalysis a = model.analyze(1 * MiB);
  EXPECT_GT(a.eviction_traffic_bytes, 0u);
  // Analytical prediction is the same order of magnitude as simulation.
  f64 ratio = static_cast<f64>(a.eviction_traffic_bytes) /
              static_cast<f64>(extra_sim);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 6.0);
}

class CacheCapacitySweep : public ::testing::TestWithParam<u64> {};

TEST_P(CacheCapacitySweep, MoreCacheNeverMoreMisses) {
  const u64 mid_b = GetParam() * KiB;
  u64 prev = ~0ull;
  for (u64 kb : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    CacheStats s = simulate_streaming_task(kb, 256 * KiB, mid_b, 256 * KiB);
    EXPECT_LE(s.misses, prev) << "cache " << kb << " KB";
    prev = s.misses;
  }
}

INSTANTIATE_TEST_SUITE_P(MidSizes, CacheCapacitySweep,
                         ::testing::Values(128, 512, 1024, 3072));

}  // namespace
}  // namespace tc::plat
