#include "platform/thread_pool.hpp"

#include <atomic>
#include <numeric>
#if defined(__linux__)
#include <sched.h>
#endif

#include <gtest/gtest.h>

namespace tc::plat {
namespace {

TEST(EvenChunk, CoversRangeWithoutOverlap) {
  for (i32 count : {1, 7, 48, 100}) {
    for (i32 chunks : {1, 2, 3, 5, 8}) {
      i32 covered = 0;
      i32 expected_lo = 0;
      for (i32 c = 0; c < chunks; ++c) {
        IndexRange r = even_chunk(count, chunks, c);
        EXPECT_EQ(r.lo, expected_lo);
        covered += r.length();
        expected_lo = r.hi;
      }
      EXPECT_EQ(covered, count) << count << "/" << chunks;
    }
  }
}

TEST(EvenChunk, SizesDifferByAtMostOne) {
  for (i32 c = 0; c < 7; ++c) {
    IndexRange r = even_chunk(47, 7, c);
    EXPECT_GE(r.length(), 6);
    EXPECT_LE(r.length(), 7);
  }
}

TEST(EvenChunk, MoreChunksThanItems) {
  i32 nonempty = 0;
  for (i32 c = 0; c < 8; ++c) {
    if (!even_chunk(3, 8, c).empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 3);
}

TEST(EvenChunk, ZeroCountGivesEmptyRanges) {
  for (i32 chunks : {1, 3, 8}) {
    for (i32 c = 0; c < chunks; ++c) {
      IndexRange r = even_chunk(0, chunks, c);
      EXPECT_TRUE(r.empty()) << chunks << "/" << c;
      EXPECT_EQ(r.lo, 0);
    }
  }
}

TEST(EvenChunk, SingleChunkIsWholeRange) {
  IndexRange r = even_chunk(123, 1, 0);
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 123);
}

TEST(EvenChunk, NonPositiveChunksFallBackToWholeRange) {
  for (i32 chunks : {0, -1}) {
    IndexRange r = even_chunk(55, chunks, 0);
    EXPECT_EQ(r.lo, 0);
    EXPECT_EQ(r.hi, 55);
  }
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<i32> counter{0};
  std::vector<std::function<void()>> jobs;
  for (i32 i = 0; i < 100; ++i) {
    jobs.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(std::move(jobs));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RunAllBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<i32> done{0};
  std::vector<std::function<void()>> jobs;
  for (i32 i = 0; i < 10; ++i) {
    jobs.push_back([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.run_all(std::move(jobs));
  EXPECT_EQ(done.load(), 10);  // visible immediately after return
}

TEST(ThreadPool, EmptyJobListIsNoop) {
  ThreadPool pool(2);
  pool.run_all({});  // must not hang
  SUCCEED();
}

TEST(ThreadPool, EmptyJobListBetweenBatchesKeepsPoolUsable) {
  ThreadPool pool(2);
  std::atomic<i32> counter{0};
  pool.run_all({});
  std::vector<std::function<void()>> jobs;
  for (i32 i = 0; i < 8; ++i) {
    jobs.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(std::move(jobs));
  pool.run_all({});
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, ParallelRangesZeroCountRunsNothing) {
  ThreadPool pool(2);
  std::atomic<i32> calls{0};
  pool.parallel_ranges(0, 4, [&](i32, IndexRange) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<i32> counter{0};
  for (i32 batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> jobs;
    for (i32 i = 0; i < 20; ++i) {
      jobs.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.run_all(std::move(jobs));
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelRangesCoverEverything) {
  ThreadPool pool(4);
  std::vector<i32> hits(97, 0);
  std::mutex m;
  pool.parallel_ranges(97, 5, [&](i32 chunk, IndexRange r) {
    (void)chunk;
    std::lock_guard<std::mutex> lock(m);
    for (i32 i = r.lo; i < r.hi; ++i) ++hits[static_cast<usize>(i)];
  });
  for (i32 h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelRangesPassesChunkIndex) {
  ThreadPool pool(2);
  std::vector<i32> seen(4, -1);
  std::mutex m;
  pool.parallel_ranges(40, 4, [&](i32 chunk, IndexRange r) {
    std::lock_guard<std::mutex> lock(m);
    seen[static_cast<usize>(chunk)] = r.lo;
  });
  EXPECT_EQ(seen[0], 0);
  EXPECT_EQ(seen[1], 10);
  EXPECT_EQ(seen[2], 20);
  EXPECT_EQ(seen[3], 30);
}

TEST(ThreadPool, DefaultThreadCountAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, UnpinnedPoolReportsNotPinned) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.pinned());
}

TEST(ThreadPool, PinnedPoolStillExecutesCorrectly) {
  // Pinning is a placement hint: on Linux pinned() turns true, elsewhere the
  // request degrades to a no-op — either way the pool must work identically.
  ThreadPool pool(2, /*pin_threads=*/true);
#if defined(__linux__)
  EXPECT_TRUE(pool.pinned());
#else
  EXPECT_FALSE(pool.pinned());
#endif
  std::atomic<i64> sum{0};
  pool.parallel_ranges(1000, 4, [&](i32, IndexRange r) {
    i64 local = 0;
    for (i32 i = r.lo; i < r.hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 499500);
}

#if defined(__linux__)
TEST(ThreadPool, PinnedWorkersRunOnTheirAssignedCores) {
  const usize cores = std::thread::hardware_concurrency();
  ThreadPool pool(2, /*pin_threads=*/true);
  ASSERT_TRUE(pool.pinned());
  std::vector<i32> cpu_of_job;
  std::mutex m;
  std::vector<std::function<void()>> jobs;
  for (i32 j = 0; j < 16; ++j) {
    jobs.emplace_back([&] {
      const i32 cpu = sched_getcpu();
      std::lock_guard<std::mutex> lock(m);
      cpu_of_job.push_back(cpu);
    });
  }
  pool.run_all(std::move(jobs));
  // Worker i is pinned to core i mod cores: with 2 workers every job must
  // observe a cpu in {0 mod cores, 1 mod cores}.
  for (const i32 cpu : cpu_of_job) {
    ASSERT_GE(cpu, 0);
    EXPECT_TRUE(cpu == 0 % static_cast<i32>(cores) ||
                cpu == 1 % static_cast<i32>(cores))
        << "job ran on cpu " << cpu;
  }
}
#endif

TEST(ThreadPool, SingleThreadPoolStillCorrect) {
  ThreadPool pool(1);
  std::atomic<i64> sum{0};
  pool.parallel_ranges(1000, 8, [&](i32, IndexRange r) {
    i64 local = 0;
    for (i32 i = r.lo; i < r.hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 499500);
}

}  // namespace
}  // namespace tc::plat
