#include "platform/buffer_model.hpp"

#include <gtest/gtest.h>

namespace tc::plat {
namespace {

TEST(BufferModel, EmptyModelHasZeroOccupancy) {
  SpaceTimeBufferModel m;
  OccupancyAnalysis a = m.analyze(4 * MiB);
  EXPECT_EQ(a.peak_bytes, 0u);
  EXPECT_EQ(a.overflow_bytes, 0u);
  EXPECT_EQ(a.eviction_traffic_bytes, 0u);
}

TEST(BufferModel, SingleBufferPeak) {
  SpaceTimeBufferModel m;
  m.add_buffer({"buf", 1 * MiB, 0.0, 1.0, 1});
  OccupancyAnalysis a = m.analyze(4 * MiB);
  EXPECT_EQ(a.peak_bytes, 1 * MiB);
  EXPECT_EQ(a.overflow_bytes, 0u);
}

TEST(BufferModel, OverlappingBuffersSum) {
  SpaceTimeBufferModel m;
  m.add_buffer({"a", 1 * MiB, 0.0, 0.6, 1});
  m.add_buffer({"b", 2 * MiB, 0.4, 1.0, 1});
  OccupancyAnalysis a = m.analyze(16 * MiB);
  EXPECT_EQ(a.peak_bytes, 3 * MiB);  // overlap in [0.4, 0.6)
}

TEST(BufferModel, DisjointBuffersDoNotSum) {
  SpaceTimeBufferModel m;
  m.add_buffer({"a", 1 * MiB, 0.0, 0.5, 1});
  m.add_buffer({"b", 2 * MiB, 0.5, 1.0, 1});
  OccupancyAnalysis a = m.analyze(16 * MiB);
  EXPECT_EQ(a.peak_bytes, 2 * MiB);
}

TEST(BufferModel, OverflowComputedAgainstCapacity) {
  SpaceTimeBufferModel m;
  m.add_buffer({"big", 6 * MiB, 0.0, 1.0, 1});
  OccupancyAnalysis a = m.analyze(4 * MiB);
  EXPECT_EQ(a.overflow_bytes, 2 * MiB);
  // One reuse: write out once + read back once = 2x overflow.
  EXPECT_EQ(a.eviction_traffic_bytes, 4 * MiB);
}

TEST(BufferModel, ReuseCountScalesEvictionTraffic) {
  SpaceTimeBufferModel m;
  m.add_buffer({"big", 6 * MiB, 0.0, 1.0, 3});
  OccupancyAnalysis a = m.analyze(4 * MiB);
  EXPECT_EQ(a.overflow_bytes, 2 * MiB);
  // write out once + read back 3 times = 4x overflow.
  EXPECT_EQ(a.eviction_traffic_bytes, 8 * MiB);
}

TEST(BufferModel, EvictionAttributedProportionally) {
  // Two live buffers at the worst point: eviction split by size share.
  SpaceTimeBufferModel m;
  m.add_buffer({"a", 3 * MiB, 0.0, 1.0, 1});
  m.add_buffer({"b", 3 * MiB, 0.0, 1.0, 1});
  OccupancyAnalysis a = m.analyze(4 * MiB);
  EXPECT_EQ(a.overflow_bytes, 2 * MiB);
  EXPECT_EQ(a.eviction_traffic_bytes, 4 * MiB);  // 2x overflow, both reuse=1
}

TEST(BufferModel, CurveIsPiecewiseConstantAtBoundaries) {
  SpaceTimeBufferModel m;
  m.add_buffer({"a", 10, 0.0, 0.5, 1});
  m.add_buffer({"b", 20, 0.25, 0.75, 1});
  OccupancyAnalysis a = m.analyze(1000);
  // Expected curve: [0,.25)=10, [.25,.5)=30, [.5,.75)=20, [.75,1)=0.
  ASSERT_GE(a.curve.size(), 4u);
  EXPECT_EQ(a.curve[0].bytes, 10u);
  EXPECT_EQ(a.curve[1].bytes, 30u);
  EXPECT_EQ(a.curve[2].bytes, 20u);
  EXPECT_EQ(a.curve[3].bytes, 0u);
  EXPECT_EQ(a.peak_bytes, 30u);
}

TEST(BufferModel, FitsExactlyAtCapacity) {
  SpaceTimeBufferModel m;
  m.add_buffer({"a", 4 * MiB, 0.0, 1.0, 1});
  OccupancyAnalysis a = m.analyze(4 * MiB);
  EXPECT_EQ(a.overflow_bytes, 0u);
  EXPECT_EQ(a.eviction_traffic_bytes, 0u);
}

// Property: eviction traffic is monotonically non-increasing in capacity.
class CapacityMonotone : public ::testing::TestWithParam<u64> {};

TEST_P(CapacityMonotone, MoreCacheNeverMoreTraffic) {
  SpaceTimeBufferModel m;
  m.add_buffer({"a", GetParam() * MiB, 0.0, 0.7, 2});
  m.add_buffer({"b", 3 * MiB, 0.3, 1.0, 1});
  u64 prev = ~0ull;
  for (u64 cap = 1; cap <= 16; ++cap) {
    OccupancyAnalysis a = m.analyze(cap * MiB);
    EXPECT_LE(a.eviction_traffic_bytes, prev) << "cap=" << cap;
    prev = a.eviction_traffic_bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CapacityMonotone,
                         ::testing::Values(1, 2, 4, 7, 12));

}  // namespace
}  // namespace tc::plat
