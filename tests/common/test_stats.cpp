#include "common/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tc {
namespace {

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, MeanBasic) {
  std::vector<f64> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, VarianceOfEmptyAndSingleElementIsZero) {
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  std::vector<f64> one{42.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  std::vector<f64> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, VarianceKnownValue) {
  std::vector<f64> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MinMax) {
  std::vector<f64> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, AutocorrelationLagZeroIsOne) {
  std::vector<f64> xs{1.0, 3.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(Stats, AutocorrelationConstantSeriesIsZero) {
  std::vector<f64> xs(50, 2.0);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
}

TEST(Stats, AutocorrelationAlternatingSeriesIsNegative) {
  std::vector<f64> xs;
  for (i32 i = 0; i < 100; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(autocorrelation(xs, 1), -0.9);
}

TEST(Stats, AutocorrelationOfAr1DecaysExponentially) {
  // x_k = phi * x_{k-1} + noise has r(l) ≈ phi^l.
  Pcg32 rng(7);
  const f64 phi = 0.8;
  std::vector<f64> xs{0.0};
  for (i32 i = 1; i < 20000; ++i) {
    xs.push_back(phi * xs.back() + rng.normal());
  }
  EXPECT_NEAR(autocorrelation(xs, 1), phi, 0.05);
  EXPECT_NEAR(autocorrelation(xs, 2), phi * phi, 0.05);
  EXPECT_NEAR(autocorrelation(xs, 4), std::pow(phi, 4), 0.06);
}

TEST(Stats, AutocorrelationFunctionLength) {
  std::vector<f64> xs{1.0, 2.0, 1.0, 2.0, 1.0, 2.0};
  auto acf = autocorrelation_function(xs, 3);
  ASSERT_EQ(acf.size(), 4u);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(Stats, CorrelationTimeOfAr1) {
  Pcg32 rng(11);
  const f64 phi = 0.9;  // tau = -1/ln(phi) ≈ 9.49
  std::vector<f64> xs{0.0};
  for (i32 i = 1; i < 40000; ++i) xs.push_back(phi * xs.back() + rng.normal());
  f64 tau = correlation_time(xs, 30);
  EXPECT_NEAR(tau, -1.0 / std::log(phi), 2.0);
}

TEST(Stats, CorrelationTimeOfWhiteNoiseIsSmall) {
  Pcg32 rng(13);
  std::vector<f64> xs;
  for (i32 i = 0; i < 5000; ++i) xs.push_back(rng.normal());
  EXPECT_LT(correlation_time(xs, 30), 1.5);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<f64> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<f64> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, FitLineRecoversCoefficients) {
  std::vector<f64> xs;
  std::vector<f64> ys;
  for (i32 i = 0; i < 50; ++i) {
    xs.push_back(static_cast<f64>(i));
    ys.push_back(0.067 * static_cast<f64>(i) + 20.6);
  }
  LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 0.067, 1e-12);
  EXPECT_NEAR(fit.intercept, 20.6, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, FitLineNoisy) {
  Pcg32 rng(3);
  std::vector<f64> xs;
  std::vector<f64> ys;
  for (i32 i = 0; i < 2000; ++i) {
    f64 x = rng.uniform(0.0, 100.0);
    xs.push_back(x);
    ys.push_back(2.0 * x + 5.0 + rng.normal(0.0, 1.0));
  }
  LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_NEAR(fit.intercept, 5.0, 0.5);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Stats, FitLineDegenerateConstantX) {
  std::vector<f64> xs{2.0, 2.0, 2.0};
  std::vector<f64> ys{1.0, 2.0, 3.0};
  LineFit fit = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Stats, FitLineFewerThanTwoPoints) {
  std::vector<f64> xs{1.0};
  std::vector<f64> ys{7.0};
  LineFit fit = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 7.0);
}

TEST(Stats, HistogramCountsSumToSampleCount) {
  Pcg32 rng(5);
  std::vector<f64> xs;
  for (i32 i = 0; i < 1000; ++i) xs.push_back(rng.normal());
  Histogram h = make_histogram(xs, 16);
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_EQ(h.counts.size(), 16u);
}

TEST(Stats, HistogramConstantSeries) {
  std::vector<f64> xs(10, 3.0);
  Histogram h = make_histogram(xs, 8);
  EXPECT_EQ(h.counts[0], 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(RunningStats, MatchesBatchStatistics) {
  Pcg32 rng(9);
  std::vector<f64> xs;
  RunningStats rs;
  for (i32 i = 0; i < 500; ++i) {
    f64 x = rng.uniform(-5.0, 5.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 500u);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

// Property sweep: percentile is monotone in p for arbitrary data.
class PercentileMonotone : public ::testing::TestWithParam<u64> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  Pcg32 rng(GetParam());
  std::vector<f64> xs;
  for (i32 i = 0; i < 200; ++i) xs.push_back(rng.uniform(-100.0, 100.0));
  f64 prev = percentile(xs, 0);
  for (f64 p = 5.0; p <= 100.0; p += 5.0) {
    f64 cur = percentile(xs, p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tc
