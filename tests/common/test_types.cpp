#include "common/types.hpp"

#include <gtest/gtest.h>

namespace tc {
namespace {

TEST(Rect, AreaAndEmpty) {
  EXPECT_EQ((Rect{0, 0, 4, 5}.area()), 20);
  EXPECT_TRUE((Rect{0, 0, 0, 5}.empty()));
  EXPECT_TRUE((Rect{0, 0, 4, -1}.empty()));
  EXPECT_FALSE((Rect{1, 1, 1, 1}.empty()));
}

TEST(Rect, Contains) {
  Rect r{10, 20, 5, 5};
  EXPECT_TRUE(r.contains(Point2i{10, 20}));
  EXPECT_TRUE(r.contains(Point2i{14, 24}));
  EXPECT_FALSE(r.contains(Point2i{15, 20}));  // half-open
  EXPECT_FALSE(r.contains(Point2i{9, 20}));
}

TEST(ClampRect, InsideUnchanged) {
  Rect r = clamp_rect(Rect{2, 3, 4, 5}, 100, 100);
  EXPECT_EQ(r, (Rect{2, 3, 4, 5}));
}

TEST(ClampRect, NegativeOriginClamped) {
  Rect r = clamp_rect(Rect{-5, -5, 20, 20}, 100, 100);
  EXPECT_EQ(r, (Rect{0, 0, 15, 15}));
}

TEST(ClampRect, OverhangClamped) {
  Rect r = clamp_rect(Rect{90, 95, 20, 20}, 100, 100);
  EXPECT_EQ(r, (Rect{90, 95, 10, 5}));
}

TEST(ClampRect, FullyOutsideBecomesEmpty) {
  Rect r = clamp_rect(Rect{200, 200, 10, 10}, 100, 100);
  EXPECT_TRUE(r.empty());
}

TEST(IndexRange, LengthAndEmpty) {
  EXPECT_EQ((IndexRange{2, 7}.length()), 5);
  EXPECT_TRUE((IndexRange{3, 3}.empty()));
  EXPECT_TRUE((IndexRange{5, 2}.empty()));
}

TEST(Units, KibMib) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

}  // namespace
}  // namespace tc
