#include "common/rng.hpp"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace tc {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (i32 i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Pcg32, DeterministicForSameSeedAndStream) {
  Pcg32 a(123, 4);
  Pcg32 b(123, 4);
  for (i32 i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(123, 0);
  Pcg32 b(123, 1);
  i32 equal = 0;
  for (i32 i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32, NextF64InUnitInterval) {
  Pcg32 rng(7);
  for (i32 i = 0; i < 10000; ++i) {
    f64 x = rng.next_f64();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Pcg32, UniformRespectsBounds) {
  Pcg32 rng(8);
  for (i32 i = 0; i < 10000; ++i) {
    f64 x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Pcg32, UniformIntCoversRangeInclusive) {
  Pcg32 rng(9);
  std::set<i32> seen;
  for (i32 i = 0; i < 10000; ++i) {
    i32 x = rng.uniform_int(2, 6);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 6);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Pcg32, NormalHasUnitMoments) {
  Pcg32 rng(10);
  std::vector<f64> xs;
  for (i32 i = 0; i < 100000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Pcg32, NormalWithParameters) {
  Pcg32 rng(11);
  std::vector<f64> xs;
  for (i32 i = 0; i < 50000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Pcg32, PoissonZeroLambda) {
  Pcg32 rng(12);
  for (i32 i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

class PoissonMoments : public ::testing::TestWithParam<f64> {};

TEST_P(PoissonMoments, MeanAndVarianceEqualLambda) {
  const f64 lambda = GetParam();
  Pcg32 rng(static_cast<u64>(lambda * 1000) + 1);
  std::vector<f64> xs;
  for (i32 i = 0; i < 40000; ++i) {
    xs.push_back(static_cast<f64>(rng.poisson(lambda)));
  }
  EXPECT_NEAR(mean(xs), lambda, std::max(0.05, lambda * 0.03));
  EXPECT_NEAR(variance(xs), lambda, std::max(0.2, lambda * 0.06));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMoments,
                         ::testing::Values(0.5, 2.0, 8.0, 32.0, 100.0, 900.0));

TEST(Pcg32, UniformBitsAreBalanced) {
  Pcg32 rng(13);
  i32 ones = 0;
  const i32 n = 10000;
  for (i32 i = 0; i < n; ++i) {
    ones += static_cast<i32>(rng.next_u32() & 1u);
  }
  EXPECT_NEAR(static_cast<f64>(ones) / n, 0.5, 0.02);
}

}  // namespace
}  // namespace tc
