#include "common/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tc::common {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.5").as_f64(), 3.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1e3").as_f64(), -1000.0);
  EXPECT_EQ(JsonValue::parse("42").as_i64(), 42);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})");
  ASSERT_TRUE(v.is_object());
  const JsonValue& a = v.get("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at(0).as_i64(), 1);
  EXPECT_EQ(a.at(2).get("b").as_string(), "c");
  EXPECT_TRUE(v.get("d").get("e").is_null());
  EXPECT_TRUE(v.get("f").as_bool());
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd\te")").as_string(),
            "a\"b\\c\nd\te");
  // \uXXXX escapes decode to UTF-8 (here: e-acute and a surrogate pair).
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, KeyedScalarDefaults) {
  const JsonValue v = JsonValue::parse(R"({"n": 2.5, "s": "x"})");
  EXPECT_DOUBLE_EQ(v.number_or("n", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(v.number_or("s", 7.0), 7.0);  // wrong type -> fallback
  EXPECT_EQ(v.string_or("s", "?"), "x");
  EXPECT_EQ(v.string_or("n", "?"), "?");
  // Keyed lookup on a non-object falls back too.
  EXPECT_DOUBLE_EQ(JsonValue::parse("3").number_or("k", 1.5), 1.5);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(JsonValue::parse("tru"), JsonError);
  EXPECT_THROW(JsonValue::parse("1 2"), JsonError);   // trailing garbage
  EXPECT_THROW(JsonValue::parse("\"ab"), JsonError);  // unterminated string
}

TEST(Json, ErrorCarriesOffset) {
  try {
    (void)JsonValue::parse("[1, x]");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_GE(e.offset(), 4u);
  }
}

TEST(Json, TypeMismatchThrows) {
  const JsonValue v = JsonValue::parse("[1]");
  EXPECT_THROW((void)v.as_string(), JsonError);
  EXPECT_TRUE(v.get("k").is_null());  // object access on an array: Null
  EXPECT_THROW((void)v.at(5), JsonError);
}

TEST(Json, EscapeRoundTrip) {
  const std::string raw = "a\"b\\c\nd\x01";
  const std::string doc = "\"" + json_escape(raw) + "\"";
  EXPECT_EQ(JsonValue::parse(doc).as_string(), raw);
}

}  // namespace
}  // namespace tc::common
