#include "common/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace tc {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv;
  csv.header({"a", "b", "c"});
  csv.cell(static_cast<i64>(1)).cell(2.5).cell("x");
  csv.end_row();
  EXPECT_EQ(csv.str(), "a,b,c\n1,2.5,x\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, IntegerTypes) {
  CsvWriter csv;
  csv.cell(static_cast<i32>(-7)).cell(static_cast<u64>(18446744073709551615ULL));
  csv.end_row();
  EXPECT_EQ(csv.str(), "-7,18446744073709551615\n");
}

TEST(Csv, EmptyRow) {
  CsvWriter csv;
  csv.end_row();
  EXPECT_EQ(csv.str(), "\n");
}

TEST(Csv, FileModeWritesToDisk) {
  const std::string path = testing::TempDir() + "tc_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"x"});
    csv.cell(3.14159).end_row();
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "x\n3.14159\n");
  std::remove(path.c_str());
}

TEST(Csv, FileModeFailureThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(Csv, DoubleFormattingPrecision) {
  CsvWriter csv;
  csv.cell(0.0001).end_row();
  EXPECT_EQ(csv.str(), "0.0001\n");
}

}  // namespace
}  // namespace tc
