#include "common/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace tc {
namespace {

TEST(AsciiPlot, EmptySeries) {
  AsciiSeries s{"empty", {}, '*'};
  std::string out = render_ascii_plot(s, AsciiPlotOptions{});
  EXPECT_NE(out.find("(empty plot)"), std::string::npos);
}

TEST(AsciiPlot, ContainsTitleAndLegend) {
  AsciiSeries s{"latency", {1.0, 2.0, 3.0}, 'o'};
  AsciiPlotOptions opt;
  opt.title = "My Title";
  std::string out = render_ascii_plot(s, opt);
  EXPECT_NE(out.find("My Title"), std::string::npos);
  EXPECT_NE(out.find("[o] latency"), std::string::npos);
}

TEST(AsciiPlot, GlyphAppearsInCanvas) {
  AsciiSeries s{"x", {0.0, 1.0, 0.0, 1.0}, '#'};
  std::string out = render_ascii_plot(s, AsciiPlotOptions{});
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiPlot, TwoSeriesShareCanvas) {
  std::vector<AsciiSeries> series{
      {"a", {0.0, 10.0, 0.0}, 'a'},
      {"b", {5.0, 5.0, 5.0}, 'b'},
  };
  std::string out = render_ascii_plot(series, AsciiPlotOptions{});
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesDoesNotCrash) {
  AsciiSeries s{"flat", std::vector<f64>(20, 7.0), '*'};
  std::string out = render_ascii_plot(s, AsciiPlotOptions{});
  EXPECT_FALSE(out.empty());
}

TEST(AsciiPlot, RespectsDimensions) {
  AsciiSeries s{"x", {1.0, 2.0}, '*'};
  AsciiPlotOptions opt;
  opt.width = 40;
  opt.height = 10;
  std::string out = render_ascii_plot(s, opt);
  // Count canvas lines: height rows plus the axis line.
  usize lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_GE(lines, 11u);
}

}  // namespace
}  // namespace tc
