#include "tripleC/ewma.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace tc::model {
namespace {

TEST(Ewma, PrimesWithFirstSample) {
  EwmaFilter f(0.3);
  EXPECT_FALSE(f.primed());
  f.update(10.0);
  EXPECT_TRUE(f.primed());
  EXPECT_DOUBLE_EQ(f.value(), 10.0);
}

TEST(Ewma, MatchesPaperEquation) {
  // y(t_k) = (1 - alpha) y(t_{k-1}) + alpha x(t_k)  (Eq. 1)
  EwmaFilter f(0.25);
  f.update(8.0);
  f.update(12.0);
  EXPECT_DOUBLE_EQ(f.value(), 0.75 * 8.0 + 0.25 * 12.0);
  f.update(4.0);
  EXPECT_DOUBLE_EQ(f.value(), 0.75 * 9.0 + 0.25 * 4.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  EwmaFilter f(0.2);
  for (i32 i = 0; i < 200; ++i) f.update(42.0);
  EXPECT_NEAR(f.value(), 42.0, 1e-9);
}

TEST(Ewma, AlphaOneTracksInputExactly) {
  EwmaFilter f(1.0);
  f.update(5.0);
  f.update(9.0);
  EXPECT_DOUBLE_EQ(f.value(), 9.0);
}

TEST(Ewma, SmallerAlphaSmoothsMore) {
  EwmaFilter fast(0.8);
  EwmaFilter slow(0.1);
  // Step from 0 to 10.
  fast.update(0.0);
  slow.update(0.0);
  fast.update(10.0);
  slow.update(10.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, TracksSlowRampWithLag) {
  EwmaFilter f(0.3);
  f64 x = 0.0;
  for (i32 i = 0; i < 100; ++i) {
    x = static_cast<f64>(i);
    f.update(x);
  }
  EXPECT_LT(f.value(), x);           // lags behind
  EXPECT_GT(f.value(), x - 5.0);     // but not by much
}

TEST(Ewma, ResetClearsState) {
  EwmaFilter f(0.5);
  f.update(10.0);
  f.reset();
  EXPECT_FALSE(f.primed());
  f.update(2.0);
  EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Ewma, UpdateReturnsNewValue) {
  EwmaFilter f(0.5);
  EXPECT_DOUBLE_EQ(f.update(4.0), 4.0);
  EXPECT_DOUBLE_EQ(f.update(8.0), 6.0);
}

TEST(Ewma, StepResponseTimeConstant) {
  // After n updates at value 1 from 0, y = 1 - (1-alpha)^n.
  EwmaFilter f(0.25);
  f.update(0.0);
  for (i32 i = 0; i < 10; ++i) f.update(1.0);
  EXPECT_NEAR(f.value(), 1.0 - std::pow(0.75, 10), 1e-12);
}

}  // namespace
}  // namespace tc::model
