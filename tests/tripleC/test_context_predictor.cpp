// Scenario-conditioned (context) predictors of GraphPredictor: one
// TaskPredictor per (node, context) where the context derives from the
// previous frame's record.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tripleC/graph_predictor.hpp"

namespace tc::model {
namespace {

/// Node 0 runs every frame; its cost regime depends on the previous frame's
/// switch bit 0 (like ENH's restart-vs-steady split): 2 ms after a "failed"
/// frame, 10 ms otherwise.
std::vector<graph::FrameRecord> bimodal_sequence(usize n, u64 seed) {
  Pcg32 rng(seed);
  std::vector<graph::FrameRecord> records;
  bool prev_ok = false;
  for (usize k = 0; k < n; ++k) {
    graph::FrameRecord rec;
    rec.frame = static_cast<i32>(k);
    bool ok = rng.next_f64() < 0.8;
    rec.scenario = ok ? 1u : 0u;
    graph::TaskExecution t;
    t.node = 0;
    t.executed = true;
    t.simulated_ms = (prev_ok ? 10.0 : 2.0) + rng.normal(0.0, 0.2);
    rec.tasks.push_back(t);
    records.push_back(std::move(rec));
    prev_ok = ok;
  }
  return records;
}

u32 context_fn(const graph::FrameRecord* prev, i32 node) {
  if (node != 0) return 0;
  return (prev != nullptr && (prev->scenario & 1u) != 0) ? 1u : 0u;
}

TEST(ContextPredictor, SeparatesRegimes) {
  GraphPredictor gp(1, 1);
  PredictorConfig c;
  c.kind = PredictorKind::Constant;
  gp.configure_task(0, c);
  gp.set_context_fn(context_fn);
  std::vector<std::vector<graph::FrameRecord>> seqs{bimodal_sequence(500, 1)};
  gp.train(seqs);
  EXPECT_NEAR(gp.task_predictor(0, 0).trained_mean(), 2.0, 0.3);
  EXPECT_NEAR(gp.task_predictor(0, 1).trained_mean(), 10.0, 0.3);
}

TEST(ContextPredictor, PredictionFollowsContext) {
  GraphPredictor gp(1, 1);
  PredictorConfig c;
  c.kind = PredictorKind::Constant;
  gp.configure_task(0, c);
  gp.set_context_fn(context_fn);
  std::vector<std::vector<graph::FrameRecord>> seqs{bimodal_sequence(500, 2)};
  gp.train(seqs);

  graph::FrameRecord ok;
  ok.scenario = 1u;
  gp.observe(ok);
  EXPECT_NEAR(gp.predict_task(0), 10.0, 0.5);

  graph::FrameRecord fail;
  fail.scenario = 0u;
  gp.observe(fail);
  EXPECT_NEAR(gp.predict_task(0), 2.0, 0.5);
}

TEST(ContextPredictor, ContextBeatsUnconditioned) {
  auto train = bimodal_sequence(1000, 3);
  auto test = bimodal_sequence(300, 4);
  std::vector<std::vector<graph::FrameRecord>> seqs{train};

  auto replay_mae = [&test](GraphPredictor& gp) {
    gp.reset_online_state();
    f64 err = 0.0;
    for (const auto& rec : test) {
      err += std::fabs(gp.predict_task(0) - rec.tasks[0].simulated_ms);
      gp.observe(rec);
    }
    return err / static_cast<f64>(test.size());
  };

  GraphPredictor with(1, 1);
  with.set_context_fn(context_fn);
  with.train(seqs);
  GraphPredictor without(1, 1);
  without.train(seqs);
  EXPECT_LT(replay_mae(with), 0.5 * replay_mae(without));
}

TEST(ContextPredictor, UnseenContextFallsBackToDefault) {
  GraphPredictor gp(1, 1);
  gp.set_context_fn([](const graph::FrameRecord* prev, i32) -> u32 {
    return prev == nullptr ? 0u : 7u;  // context 7 never seen in training
  });
  // Training data: all frames get context 0 (first) or 7 (rest).
  std::vector<graph::FrameRecord> seq;
  for (i32 k = 0; k < 50; ++k) {
    graph::FrameRecord rec;
    rec.frame = k;
    graph::TaskExecution t;
    t.node = 0;
    t.executed = true;
    t.simulated_ms = 5.0;
    rec.tasks.push_back(t);
    seq.push_back(rec);
  }
  std::vector<std::vector<graph::FrameRecord>> seqs{seq};
  gp.train(seqs);
  // After an observation, the context becomes 7 — trained; prediction sane.
  graph::FrameRecord rec;
  rec.scenario = 0;
  gp.observe(rec);
  EXPECT_NEAR(gp.predict_task(0), 5.0, 0.5);
}

TEST(ContextPredictor, ResetOnlineStateClearsLastRecord) {
  GraphPredictor gp(1, 1);
  gp.set_context_fn(context_fn);
  std::vector<std::vector<graph::FrameRecord>> seqs{bimodal_sequence(200, 5)};
  gp.train(seqs);
  graph::FrameRecord ok;
  ok.scenario = 1u;
  gp.observe(ok);
  gp.reset_online_state();
  // With no last record the context is 0 (restart regime).
  EXPECT_NEAR(gp.predict_task(0), 2.0, 0.6);
}

}  // namespace
}  // namespace tc::model
