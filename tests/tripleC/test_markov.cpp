#include "tripleC/markov.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace tc::model {
namespace {

/// Deterministic two-value alternation 1, 9, 1, 9, ...
std::vector<f64> alternating(usize n) {
  std::vector<f64> xs;
  for (usize i = 0; i < n; ++i) xs.push_back(i % 2 == 0 ? 1.0 : 9.0);
  return xs;
}

std::vector<f64> ar1(usize n, f64 phi, f64 sigma, u64 seed) {
  Pcg32 rng(seed);
  std::vector<f64> xs{50.0};
  for (usize i = 1; i < n; ++i) {
    xs.push_back(50.0 + phi * (xs.back() - 50.0) + rng.normal(0.0, sigma));
  }
  return xs;
}

TEST(Markov, TransitionRowsSumToOne) {
  MarkovChain m;
  m.fit(ar1(5000, 0.7, 3.0, 1));
  for (usize i = 0; i < m.states(); ++i) {
    f64 sum = 0.0;
    for (usize j = 0; j < m.states(); ++j) sum += m.transition(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << i;
  }
}

TEST(Markov, AlternatingSeriesLearnsDeterministicTransitions) {
  MarkovChain m;
  m.fit(alternating(1000));
  ASSERT_EQ(m.states(), 2u);
  usize s_low = m.quantizer().state_of(1.0);
  usize s_high = m.quantizer().state_of(9.0);
  EXPECT_NEAR(m.transition(s_low, s_high), 1.0, 1e-9);
  EXPECT_NEAR(m.transition(s_high, s_low), 1.0, 1e-9);
  EXPECT_NEAR(m.predict_next(1.0), 9.0, 1e-6);
  EXPECT_NEAR(m.predict_next(9.0), 1.0, 1e-6);
}

TEST(Markov, PredictionBeatsMeanOnAr1) {
  std::vector<f64> train = ar1(20000, 0.85, 4.0, 2);
  std::vector<f64> test = ar1(4000, 0.85, 4.0, 3);
  MarkovChain m;
  m.fit(train);
  f64 err_markov = 0.0;
  f64 err_mean = 0.0;
  for (usize k = 0; k + 1 < test.size(); ++k) {
    err_markov += std::fabs(m.predict_next(test[k]) - test[k + 1]);
    err_mean += std::fabs(m.unconditional_mean() - test[k + 1]);
  }
  EXPECT_LT(err_markov, 0.8 * err_mean);
}

TEST(Markov, UnconditionalMeanMatchesData) {
  std::vector<f64> xs = ar1(10000, 0.5, 2.0, 4);
  MarkovChain m;
  m.fit(xs);
  EXPECT_NEAR(m.unconditional_mean(), mean(xs), 1e-9);
}

TEST(Markov, StationaryDistributionSumsToOne) {
  MarkovChain m;
  m.fit(ar1(10000, 0.6, 3.0, 5));
  std::vector<f64> pi = m.stationary_distribution();
  f64 sum = 0.0;
  for (f64 p : pi) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Markov, StationaryDistributionMatchesEmpiricalOccupancy) {
  std::vector<f64> xs = ar1(50000, 0.7, 3.0, 6);
  MarkovChain m;
  m.fit(xs);
  std::vector<f64> pi = m.stationary_distribution();
  std::vector<f64> occupancy(m.states(), 0.0);
  for (f64 x : xs) occupancy[m.quantizer().state_of(x)] += 1.0;
  for (f64& o : occupancy) o /= static_cast<f64>(xs.size());
  for (usize s = 0; s < m.states(); ++s) {
    EXPECT_NEAR(pi[s], occupancy[s], 0.03) << "state " << s;
  }
}

TEST(Markov, MostLikelyNextStateOfAlternation) {
  MarkovChain m;
  m.fit(alternating(500));
  usize s_low = m.quantizer().state_of(1.0);
  usize s_high = m.quantizer().state_of(9.0);
  EXPECT_EQ(m.most_likely_next_state(1.0), s_high);
  EXPECT_EQ(m.most_likely_next_state(9.0), s_low);
}

TEST(Markov, SamplePathStaysInTrainedRange) {
  std::vector<f64> xs = ar1(10000, 0.8, 3.0, 7);
  MarkovChain m;
  m.fit(xs);
  Pcg32 rng(99);
  std::vector<f64> path = m.sample_path(2000, rng);
  ASSERT_EQ(path.size(), 2000u);
  f64 lo = min_of(xs);
  f64 hi = max_of(xs);
  for (f64 v : path) {
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(Markov, SamplePathReproducesAutocorrelation) {
  std::vector<f64> xs = ar1(50000, 0.85, 3.0, 8);
  MarkovChain m;
  m.fit(xs);
  Pcg32 rng(100);
  std::vector<f64> path = m.sample_path(50000, rng);
  // First-lag autocorrelation of the generated path matches the data.
  EXPECT_NEAR(autocorrelation(path, 1), autocorrelation(xs, 1), 0.1);
}

TEST(Markov, FitMultiDoesNotCountCrossSequenceTransitions) {
  // One sequence alternating 1/2, another alternating 8/9: with fit_multi
  // there must be no transition from any low state to any high state.
  std::vector<std::vector<f64>> seqs;
  std::vector<f64> low;
  std::vector<f64> high;
  for (i32 i = 0; i < 60; ++i) {
    low.push_back(i % 2 == 0 ? 1.0 : 2.0);
    high.push_back(i % 2 == 0 ? 8.0 : 9.0);
  }
  seqs.push_back(low);
  seqs.push_back(high);
  MarkovChain m;
  m.fit_multi(seqs, 2.0, 8);
  for (f64 lo : {1.0, 2.0}) {
    for (f64 hi : {8.0, 9.0}) {
      usize s_lo = m.quantizer().state_of(lo);
      usize s_hi = m.quantizer().state_of(hi);
      ASSERT_NE(s_lo, s_hi);
      EXPECT_NEAR(m.transition(s_lo, s_hi), 0.0, 1e-9)
          << lo << " -> " << hi;
    }
  }
}

TEST(Markov, AccumulateAddsStatistics) {
  std::vector<f64> xs = alternating(100);
  MarkovChain m;
  m.fit(xs);
  usize s_low = m.quantizer().state_of(1.0);
  // Accumulate a constant-low sequence: the low state now sometimes stays.
  std::vector<f64> stay(100, 1.0);
  m.accumulate(stay);
  EXPECT_GT(m.transition(s_low, s_low), 0.3);
}

TEST(Markov, FormatMatrixContainsStates) {
  MarkovChain m;
  m.fit(alternating(100));
  std::string s = m.format_matrix();
  EXPECT_NE(s.find("s0"), std::string::npos);
  EXPECT_NE(s.find("s1"), std::string::npos);
}

TEST(Markov, UnfittedPredictReturnsInput) {
  MarkovChain m;
  EXPECT_DOUBLE_EQ(m.predict_next(13.0), 13.0);
}

TEST(Markov, SingleStatePredictsConstant) {
  std::vector<f64> xs(100, 4.0);
  MarkovChain m;
  m.fit(xs);
  EXPECT_EQ(m.states(), 1u);
  EXPECT_DOUBLE_EQ(m.predict_next(999.0), 4.0);
}

// Sweep: prediction quality grows with state multiplier (the paper's "2M
// states for sufficient accuracy" observation).
class StateMultiplier : public ::testing::TestWithParam<f64> {};

TEST_P(StateMultiplier, MoreStatesNeverMuchWorse) {
  std::vector<f64> train = ar1(30000, 0.85, 4.0, 9);
  std::vector<f64> test = ar1(5000, 0.85, 4.0, 10);
  MarkovChain base;
  base.fit(train, 0.5, 64);
  MarkovChain m;
  m.fit(train, GetParam(), 64);
  auto mae = [&test](const MarkovChain& chain) {
    f64 err = 0.0;
    for (usize k = 0; k + 1 < test.size(); ++k) {
      err += std::fabs(chain.predict_next(test[k]) - test[k + 1]);
    }
    return err / static_cast<f64>(test.size() - 1);
  };
  EXPECT_LT(mae(m), mae(base) * 1.05) << "multiplier " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Multipliers, StateMultiplier,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace tc::model
