#include "tripleC/graph_predictor.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tc::model {
namespace {

/// Build synthetic FrameRecords for a 2-task, 2-switch graph:
/// task 0 runs every frame with AR(1) time; task 1 runs only when switch 0
/// is on (periodic), with constant time.
std::vector<graph::FrameRecord> synth_sequence(usize n, u64 seed) {
  Pcg32 rng(seed);
  std::vector<graph::FrameRecord> records;
  f64 r = 0.0;
  for (usize k = 0; k < n; ++k) {
    graph::FrameRecord rec;
    rec.frame = static_cast<i32>(k);
    bool sw0 = (k / 20) % 2 == 0;  // 20 frames on, 20 off
    rec.scenario = sw0 ? 1u : 0u;
    rec.roi_pixels = 100000.0;

    graph::TaskExecution t0;
    t0.node = 0;
    t0.executed = true;
    r = 0.8 * r + rng.normal(0.0, 1.0);
    t0.simulated_ms = 40.0 + r;
    rec.tasks.push_back(t0);

    graph::TaskExecution t1;
    t1.node = 1;
    t1.executed = sw0;
    t1.simulated_ms = sw0 ? 12.5 : 0.0;
    rec.tasks.push_back(t1);

    rec.latency_ms = t0.simulated_ms + t1.simulated_ms;
    records.push_back(std::move(rec));
  }
  return records;
}

TEST(GraphPredictor, TrainsPerTaskPredictors) {
  std::vector<std::vector<graph::FrameRecord>> seqs{synth_sequence(400, 1)};
  GraphPredictor gp(2, 2);
  PredictorConfig c;
  c.kind = PredictorKind::Constant;
  gp.configure_task(1, c);
  gp.train(seqs);
  EXPECT_TRUE(gp.task_predictor(0).trained());
  EXPECT_TRUE(gp.task_predictor(1).trained());
  EXPECT_NEAR(gp.predict_task(1), 12.5, 1e-9);
  EXPECT_NEAR(gp.predict_task(0), 40.0, 2.0);
}

TEST(GraphPredictor, ObserveImprovesTrackingOfTask0) {
  std::vector<std::vector<graph::FrameRecord>> seqs{synth_sequence(2000, 2)};
  GraphPredictor gp(2, 2);
  gp.train(seqs);

  auto test = synth_sequence(300, 3);
  f64 err_online = 0.0;
  f64 err_static = 0.0;
  f64 static_pred = gp.predict_task(0);
  for (const auto& rec : test) {
    err_online += std::fabs(gp.predict_task(0) - rec.tasks[0].simulated_ms);
    err_static += std::fabs(static_pred - rec.tasks[0].simulated_ms);
    gp.observe(rec);
  }
  EXPECT_LT(err_online, err_static);
}

TEST(GraphPredictor, ScenarioTableLearnsPeriodicSwitch) {
  std::vector<std::vector<graph::FrameRecord>> seqs{synth_sequence(800, 4)};
  GraphPredictor gp(2, 2);
  gp.train(seqs);
  // Scenario 1 mostly persists (19/20 transitions stay).
  EXPECT_GT(gp.scenario_table().probability(1, 1), 0.8);
  EXPECT_GT(gp.scenario_table().probability(0, 0), 0.8);
}

TEST(GraphPredictor, PredictScenarioFollowsObservation) {
  std::vector<std::vector<graph::FrameRecord>> seqs{synth_sequence(800, 5)};
  GraphPredictor gp(2, 2);
  gp.train(seqs);
  graph::FrameRecord rec;
  rec.scenario = 1u;
  gp.observe(rec);
  EXPECT_EQ(gp.predict_scenario(), 1u);
}

TEST(GraphPredictor, PredictScenarioWithoutHistoryIsZero) {
  GraphPredictor gp(2, 2);
  EXPECT_EQ(gp.predict_scenario(), 0u);
}

TEST(GraphPredictor, SkippedTasksDoNotPolluteTraining) {
  // Task 1 is skipped half the time with simulated_ms = 0 in the record;
  // its trained constant must be the *executed* mean, not dragged to 0.
  std::vector<std::vector<graph::FrameRecord>> seqs{synth_sequence(400, 6)};
  GraphPredictor gp(2, 2);
  PredictorConfig c;
  c.kind = PredictorKind::Constant;
  gp.configure_task(1, c);
  gp.train(seqs);
  EXPECT_NEAR(gp.predict_task(1), 12.5, 1e-9);
}

TEST(GraphPredictor, MultipleSequencesSupported) {
  std::vector<std::vector<graph::FrameRecord>> seqs{
      synth_sequence(200, 7), synth_sequence(200, 8), synth_sequence(200, 9)};
  GraphPredictor gp(2, 2);
  gp.train(seqs);
  EXPECT_TRUE(gp.task_predictor(0).trained());
  EXPECT_NEAR(gp.predict_task(0), 40.0, 3.0);
}

TEST(GraphPredictor, TaskCountAccessor) {
  GraphPredictor gp(10, 3);
  EXPECT_EQ(gp.task_count(), 10u);
}

}  // namespace
}  // namespace tc::model
