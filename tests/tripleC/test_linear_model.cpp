#include "tripleC/linear_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tc::model {
namespace {

TEST(LinearModel, FitsExactLine) {
  std::vector<f64> xs;
  std::vector<f64> ys;
  for (i32 i = 0; i < 100; ++i) {
    xs.push_back(static_cast<f64>(i * 1000));
    ys.push_back(0.067 * xs.back() + 20.6);
  }
  LinearGrowthModel m;
  m.fit(xs, ys);
  EXPECT_TRUE(m.fitted());
  EXPECT_NEAR(m.slope(), 0.067, 1e-12);
  EXPECT_NEAR(m.intercept(), 20.6, 1e-6);
  EXPECT_NEAR(m.predict(150000.0), 0.067 * 150000.0 + 20.6, 1e-6);
}

TEST(LinearModel, FromCoefficientsMatchesPaperEq3) {
  // Eq. 3 of the paper: y = 0.067 * t + 20.6.
  LinearGrowthModel m = LinearGrowthModel::from_coefficients(0.067, 20.6);
  EXPECT_TRUE(m.fitted());
  EXPECT_DOUBLE_EQ(m.predict(0.0), 20.6);
  EXPECT_DOUBLE_EQ(m.predict(100.0), 27.3);
}

TEST(LinearModel, DefaultIsNotFitted) {
  LinearGrowthModel m;
  EXPECT_FALSE(m.fitted());
  EXPECT_DOUBLE_EQ(m.predict(10.0), 0.0);
}

TEST(LinearModel, NoisyFitRecoversTrend) {
  Pcg32 rng(1);
  std::vector<f64> xs;
  std::vector<f64> ys;
  for (i32 i = 0; i < 5000; ++i) {
    f64 x = rng.uniform(0.0, 300000.0);
    xs.push_back(x);
    ys.push_back(0.0001 * x + 15.0 + rng.normal(0.0, 2.0));
  }
  LinearGrowthModel m;
  m.fit(xs, ys);
  EXPECT_NEAR(m.slope(), 0.0001, 1e-5);
  EXPECT_NEAR(m.intercept(), 15.0, 0.5);
  EXPECT_GT(m.r2(), 0.5);
}

TEST(LinearModel, ToStringContainsCoefficients) {
  LinearGrowthModel m = LinearGrowthModel::from_coefficients(2.0, 3.0);
  std::string s = m.to_string();
  EXPECT_NE(s.find("2.0"), std::string::npos);
  EXPECT_NE(s.find("3.0"), std::string::npos);
}

}  // namespace
}  // namespace tc::model
