// Online model adaptation — the paper's profiling feedback ("The
// information can be used for on-line model training", §6).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tripleC/predictor.hpp"

namespace tc::model {
namespace {

/// AR(1) residual process around a fixed level, with configurable
/// autocorrelation sign: phi > 0 gives persistence, phi < 0 alternation.
std::vector<TrainingSample> ar1_samples(usize n, f64 phi, u64 seed) {
  Pcg32 rng(seed);
  std::vector<TrainingSample> xs;
  f64 r = 0.0;
  for (usize i = 0; i < n; ++i) {
    r = phi * r + rng.normal(0.0, 1.0);
    xs.push_back({40.0 + r, 0.0});
  }
  return xs;
}

f64 replay_mae(TaskPredictor& p, std::span<const TrainingSample> test) {
  f64 err = 0.0;
  for (const TrainingSample& s : test) {
    err += std::fabs(p.predict(s.size) - s.measured_ms);
    p.observe(s.measured_ms, s.size);
  }
  return err / static_cast<f64>(test.size());
}

TEST(OnlineAdaptation, TransitionCountingUpdatesChain) {
  MarkovChain m;
  std::vector<f64> alt;
  for (i32 i = 0; i < 200; ++i) alt.push_back(i % 2 == 0 ? 1.0 : 9.0);
  m.fit(alt);
  usize s_low = m.quantizer().state_of(1.0);
  // Feed persistent-low transitions online: P(low|low) rises from ~0.
  f64 before = m.transition(s_low, s_low);
  for (i32 i = 0; i < 400; ++i) m.observe_transition(1.0, 1.0);
  EXPECT_GT(m.transition(s_low, s_low), before + 0.4);
}

TEST(OnlineAdaptation, ObserveTransitionOnUnfittedChainIsNoop) {
  MarkovChain m;
  m.observe_transition(1.0, 2.0);  // must not crash
  EXPECT_FALSE(m.fitted());
}

TEST(OnlineAdaptation, AdaptsToChangedDynamics) {
  // Train on persistent residuals (phi = +0.8), then run on alternating
  // residuals (phi = -0.8).  The adaptive predictor re-learns the
  // transition structure and ends up more accurate than the frozen one.
  auto train = ar1_samples(4000, 0.8, 1);
  auto drifted = ar1_samples(6000, -0.8, 2);

  PredictorConfig frozen_cfg;
  frozen_cfg.kind = PredictorKind::EwmaMarkov;
  TaskPredictor frozen(frozen_cfg);
  frozen.train(train);

  PredictorConfig adaptive_cfg = frozen_cfg;
  adaptive_cfg.online_adaptation = true;
  TaskPredictor adaptive(adaptive_cfg);
  adaptive.train(train);

  // Warm both on the first part of the drifted workload...
  std::span<const TrainingSample> warm(drifted.data(), 4000);
  (void)replay_mae(frozen, warm);
  (void)replay_mae(adaptive, warm);
  // ...then compare on the tail.
  std::span<const TrainingSample> tail(drifted.data() + 4000, 2000);
  f64 mae_frozen = replay_mae(frozen, tail);
  f64 mae_adaptive = replay_mae(adaptive, tail);
  EXPECT_LT(mae_adaptive, 0.95 * mae_frozen);
}

TEST(OnlineAdaptation, NoDriftMeansNoHarm) {
  // On a stationary workload the adaptive predictor performs on par with
  // the frozen one (extra counts only sharpen the same statistics).
  auto train = ar1_samples(4000, 0.7, 3);
  auto test = ar1_samples(2000, 0.7, 4);

  PredictorConfig cfg;
  cfg.kind = PredictorKind::EwmaMarkov;
  TaskPredictor frozen(cfg);
  frozen.train(train);
  cfg.online_adaptation = true;
  TaskPredictor adaptive(cfg);
  adaptive.train(train);

  f64 mae_frozen = replay_mae(frozen, test);
  f64 mae_adaptive = replay_mae(adaptive, test);
  EXPECT_LT(mae_adaptive, 1.05 * mae_frozen);
}

TEST(OnlineAdaptation, WorksForLinearMarkov) {
  Pcg32 rng(5);
  auto make = [&rng](f64 phi, usize n) {
    std::vector<TrainingSample> xs;
    f64 r = 0.0;
    for (usize i = 0; i < n; ++i) {
      f64 size = rng.uniform(1000.0, 100000.0);
      r = phi * r + rng.normal(0.0, 1.0);
      xs.push_back({0.0001 * size + 10.0 + r, size});
    }
    return xs;
  };
  PredictorConfig cfg;
  cfg.kind = PredictorKind::LinearMarkov;
  cfg.online_adaptation = true;
  TaskPredictor p(cfg);
  p.train(make(0.8, 2000));
  auto drift = make(-0.8, 4000);
  (void)replay_mae(p, drift);
  // The chain kept counting: its sample base grew far beyond training.
  ASSERT_NE(p.markov(), nullptr);
  usize low_state = p.markov()->quantizer().state_of(-1.0);
  usize high_state = p.markov()->quantizer().state_of(1.0);
  // With alternating dynamics, low -> high transitions dominate now.
  EXPECT_GT(p.markov()->transition(low_state, high_state),
            p.markov()->transition(low_state, low_state));
}

}  // namespace
}  // namespace tc::model
