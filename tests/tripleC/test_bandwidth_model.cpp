#include "tripleC/bandwidth_model.hpp"

#include <gtest/gtest.h>

#include "graph/task.hpp"

namespace tc::model {
namespace {

graph::FlowGraph two_task_graph(u64 edge_bytes) {
  graph::FlowGraph g;
  i32 a = g.add_task(graph::make_task("A", true, [] {
    return img::WorkReport{};
  }));
  i32 b = g.add_task(graph::make_task("B", true, [] {
    return img::WorkReport{};
  }));
  g.add_edge(a, b, [edge_bytes] { return edge_bytes; });
  return g;
}

TEST(BandwidthModel, IntertaskBandwidthFromEdges) {
  graph::FlowGraph g = two_task_graph(2 * 1024 * 1024);
  auto edges = intertask_bandwidth(g, 30.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "A");
  EXPECT_EQ(edges[0].to, "B");
  EXPECT_EQ(edges[0].bytes_per_frame, 2u * 1024 * 1024);
  // 2 MiB x 30 Hz ≈ 62.9 MB/s.
  EXPECT_NEAR(edges[0].mbytes_per_s, 62.9, 0.1);
}

TEST(BandwidthModel, ScaleAppliesToBytes) {
  graph::FlowGraph g = two_task_graph(1024);
  auto edges = intertask_bandwidth(g, 30.0, 4.0);
  EXPECT_EQ(edges[0].bytes_per_frame, 4096u);
}

TEST(BandwidthModel, EdgeTableFormatting) {
  graph::FlowGraph g = two_task_graph(1024 * 1024);
  auto edges = intertask_bandwidth(g, 30.0);
  std::string s = format_edge_table(edges);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("MB/s"), std::string::npos);
}

TEST(BandwidthModel, IntrataskNoEvictionWhenFits) {
  plat::SpaceTimeBufferModel m;
  m.add_buffer({"buf", 1 * MiB, 0.0, 1.0, 1});
  IntraTaskBandwidth a = analyze_intratask("T", m, 4 * MiB, 30.0);
  EXPECT_EQ(a.occupancy.overflow_bytes, 0u);
  EXPECT_DOUBLE_EQ(a.eviction_mbytes_per_s, 0.0);
}

TEST(BandwidthModel, IntrataskEvictionBandwidthAtFrameRate) {
  plat::SpaceTimeBufferModel m;
  m.add_buffer({"buf", 6 * MiB, 0.0, 1.0, 1});
  IntraTaskBandwidth a = analyze_intratask("T", m, 4 * MiB, 30.0);
  // 2 MiB overflow → 4 MiB eviction traffic per frame → ×30 Hz.
  EXPECT_NEAR(a.eviction_mbytes_per_s,
              4.0 * 1024 * 1024 * 30.0 / 1.0e6, 0.01);
}

TEST(BandwidthModel, IntrataskFormatMentionsOverflow) {
  plat::SpaceTimeBufferModel m;
  m.add_buffer({"buf", 6 * MiB, 0.0, 1.0, 1});
  IntraTaskBandwidth a = analyze_intratask("RDG", m, 4 * MiB, 30.0);
  std::string s = format_intratask(a, 4 * MiB);
  EXPECT_NE(s.find("overflow"), std::string::npos);
  EXPECT_NE(s.find("RDG"), std::string::npos);
}

TEST(BandwidthModel, ScenarioTableFormatting) {
  std::vector<ScenarioBandwidth> rows;
  ScenarioBandwidth r;
  r.scenario = 5;
  r.label = "RDG=1 ROI=0 REG=1";
  r.intertask_mbytes_per_s = 100.0;
  r.intratask_mbytes_per_s = 50.0;
  rows.push_back(r);
  std::string s = format_scenario_table(rows);
  EXPECT_NE(s.find("RDG=1"), std::string::npos);
  EXPECT_NE(s.find("150.0"), std::string::npos);
}

TEST(BandwidthModel, ScenarioTotalIsSum) {
  ScenarioBandwidth r;
  r.intertask_mbytes_per_s = 10.0;
  r.intratask_mbytes_per_s = 5.0;
  EXPECT_DOUBLE_EQ(r.total_mbytes_per_s(), 15.0);
}

// --- per-bus breakdown (Fig. 4 cache / memory / I/O attribution) ------------

TEST(BusBreakdown, SmallEdgeRidesCacheBusEntirely) {
  plat::PlatformSpec spec;  // 4 MiB L2 slices
  EdgeBusShare e = split_edge("A", "B", 1 * MiB, spec, 30.0);
  EXPECT_DOUBLE_EQ(e.cache_share, 1.0);
  EXPECT_DOUBLE_EQ(e.memory_share, 0.0);
  EXPECT_DOUBLE_EQ(e.io_share, 0.0);
  EXPECT_NEAR(e.mbytes_per_s, 1.0 * MiB * 30.0 / 1.0e6, 0.01);
  EXPECT_NEAR(e.cache_mbytes_per_s(), e.mbytes_per_s, 1e-9);
}

TEST(BusBreakdown, OversizedEdgeSpillsToMemoryBus) {
  plat::PlatformSpec spec;
  // 16 MiB edge vs. a 4 MiB slice: a quarter fits, three quarters spill.
  EdgeBusShare e = split_edge("A", "B", 16 * MiB, spec, 30.0);
  EXPECT_NEAR(e.cache_share, 0.25, 1e-9);
  EXPECT_NEAR(e.memory_share, 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(e.io_share, 0.0);
  EXPECT_NEAR(e.cache_share + e.memory_share + e.io_share, 1.0, 1e-12);
}

TEST(BusBreakdown, DeviceEdgeRidesIoBus) {
  plat::PlatformSpec spec;
  EdgeBusShare e = split_edge("camera", "A", 1 * MiB, spec, 30.0,
                              /*device_edge=*/true);
  EXPECT_DOUBLE_EQ(e.io_share, 1.0);
  EXPECT_DOUBLE_EQ(e.cache_share, 0.0);
  EXPECT_NEAR(e.io_mbytes_per_s(), e.mbytes_per_s, 1e-9);
}

TEST(BusBreakdown, GraphBreakdownAppendsDeviceEdgesForSourcesAndSinks) {
  graph::FlowGraph g = two_task_graph(2 * MiB);
  plat::PlatformSpec spec;
  plat::VideoFormat fmt;

  // Without a device format: interior edges only, no I/O traffic anywhere.
  auto interior = edge_bus_breakdown(g, spec, 30.0);
  ASSERT_EQ(interior.size(), 1u);
  EXPECT_DOUBLE_EQ(interior[0].io_share, 0.0);

  // With a device format: camera -> A (source) and B -> display (sink).
  auto rows = edge_bus_breakdown(g, spec, 30.0, 1.0, &fmt);
  ASSERT_EQ(rows.size(), 3u);
  usize io_rows = 0;
  for (const auto& r : rows) {
    if (r.io_share > 0.0) {
      ++io_rows;
      EXPECT_DOUBLE_EQ(r.io_share, 1.0);
      EXPECT_EQ(r.bytes_per_frame, fmt.frame_bytes());
      EXPECT_TRUE(r.from == "camera" || r.to == "display");
    }
  }
  EXPECT_EQ(io_rows, 2u);
}

TEST(BusBreakdown, BusTableFormatting) {
  graph::FlowGraph g = two_task_graph(1 * MiB);
  plat::PlatformSpec spec;
  auto rows = edge_bus_breakdown(g, spec, 30.0);
  std::string s = format_bus_table(rows);
  EXPECT_NE(s.find("cache"), std::string::npos);
  EXPECT_NE(s.find("A"), std::string::npos);
}

TEST(BusBreakdown, NodeAttributionSplitsIoForSourceAndSink) {
  img::WorkReport w;
  w.bytes_read = 3 * 1000 * 1000;
  w.bytes_written = 1 * 1000 * 1000;
  w.input_bytes = 1 * 1000 * 1000;   // camera frame for a source task
  w.output_bytes = 500 * 1000;
  w.intermediate_bytes = 0;

  // Interior node: nothing on the I/O bus, footprint fits a 4 MiB slice.
  NodeBusTraffic mid = attribute_node_buses(w, false, false, 4 * MiB);
  EXPECT_DOUBLE_EQ(mid.io_mb, 0.0);
  EXPECT_NEAR(mid.total_mb(), 4.0, 1e-9);
  EXPECT_NEAR(mid.cache_mb, 4.0, 1e-9);  // 1.5 MB footprint fits entirely
  EXPECT_DOUBLE_EQ(mid.memory_mb, 0.0);

  // Source node: the input frame arrives over the I/O bus.
  NodeBusTraffic src = attribute_node_buses(w, true, false, 4 * MiB);
  EXPECT_NEAR(src.io_mb, 1.0, 1e-9);
  EXPECT_NEAR(src.total_mb(), 4.0, 1e-9);  // I/O comes out of the total

  // Source+sink: input and output both ride the I/O bus.
  NodeBusTraffic both = attribute_node_buses(w, true, true, 4 * MiB);
  EXPECT_NEAR(both.io_mb, 1.5, 1e-9);
}

TEST(BusBreakdown, NodeAttributionSpillsLargeFootprintToMemoryBus) {
  img::WorkReport w;
  w.bytes_read = 8 * 1000 * 1000;
  w.input_bytes = 4 * MiB;
  w.intermediate_bytes = 4 * MiB;  // 8 MiB footprint vs. 4 MiB slice
  NodeBusTraffic t = attribute_node_buses(w, false, false, 4 * MiB);
  EXPECT_DOUBLE_EQ(t.io_mb, 0.0);
  EXPECT_NEAR(t.cache_mb, 4.0, 1e-9);   // half the traffic fits
  EXPECT_NEAR(t.memory_mb, 4.0, 1e-9);  // half spills
}

TEST(BusBreakdown, NodeAttributionClampsIoToObservedTraffic) {
  img::WorkReport w;
  w.bytes_read = 100;  // almost no observed traffic...
  w.input_bytes = 10 * 1000 * 1000;  // ...but a huge declared input buffer
  NodeBusTraffic t = attribute_node_buses(w, true, false, 4 * MiB);
  EXPECT_NEAR(t.io_mb, t.total_mb(), 1e-12);  // clamped, never exceeds total
  EXPECT_NEAR(t.total_mb(), 0.0001, 1e-9);
}

}  // namespace
}  // namespace tc::model
