#include "tripleC/bandwidth_model.hpp"

#include <gtest/gtest.h>

#include "graph/task.hpp"

namespace tc::model {
namespace {

graph::FlowGraph two_task_graph(u64 edge_bytes) {
  graph::FlowGraph g;
  i32 a = g.add_task(graph::make_task("A", true, [] {
    return img::WorkReport{};
  }));
  i32 b = g.add_task(graph::make_task("B", true, [] {
    return img::WorkReport{};
  }));
  g.add_edge(a, b, [edge_bytes] { return edge_bytes; });
  return g;
}

TEST(BandwidthModel, IntertaskBandwidthFromEdges) {
  graph::FlowGraph g = two_task_graph(2 * 1024 * 1024);
  auto edges = intertask_bandwidth(g, 30.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "A");
  EXPECT_EQ(edges[0].to, "B");
  EXPECT_EQ(edges[0].bytes_per_frame, 2u * 1024 * 1024);
  // 2 MiB x 30 Hz ≈ 62.9 MB/s.
  EXPECT_NEAR(edges[0].mbytes_per_s, 62.9, 0.1);
}

TEST(BandwidthModel, ScaleAppliesToBytes) {
  graph::FlowGraph g = two_task_graph(1024);
  auto edges = intertask_bandwidth(g, 30.0, 4.0);
  EXPECT_EQ(edges[0].bytes_per_frame, 4096u);
}

TEST(BandwidthModel, EdgeTableFormatting) {
  graph::FlowGraph g = two_task_graph(1024 * 1024);
  auto edges = intertask_bandwidth(g, 30.0);
  std::string s = format_edge_table(edges);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("MB/s"), std::string::npos);
}

TEST(BandwidthModel, IntrataskNoEvictionWhenFits) {
  plat::SpaceTimeBufferModel m;
  m.add_buffer({"buf", 1 * MiB, 0.0, 1.0, 1});
  IntraTaskBandwidth a = analyze_intratask("T", m, 4 * MiB, 30.0);
  EXPECT_EQ(a.occupancy.overflow_bytes, 0u);
  EXPECT_DOUBLE_EQ(a.eviction_mbytes_per_s, 0.0);
}

TEST(BandwidthModel, IntrataskEvictionBandwidthAtFrameRate) {
  plat::SpaceTimeBufferModel m;
  m.add_buffer({"buf", 6 * MiB, 0.0, 1.0, 1});
  IntraTaskBandwidth a = analyze_intratask("T", m, 4 * MiB, 30.0);
  // 2 MiB overflow → 4 MiB eviction traffic per frame → ×30 Hz.
  EXPECT_NEAR(a.eviction_mbytes_per_s,
              4.0 * 1024 * 1024 * 30.0 / 1.0e6, 0.01);
}

TEST(BandwidthModel, IntrataskFormatMentionsOverflow) {
  plat::SpaceTimeBufferModel m;
  m.add_buffer({"buf", 6 * MiB, 0.0, 1.0, 1});
  IntraTaskBandwidth a = analyze_intratask("RDG", m, 4 * MiB, 30.0);
  std::string s = format_intratask(a, 4 * MiB);
  EXPECT_NE(s.find("overflow"), std::string::npos);
  EXPECT_NE(s.find("RDG"), std::string::npos);
}

TEST(BandwidthModel, ScenarioTableFormatting) {
  std::vector<ScenarioBandwidth> rows;
  ScenarioBandwidth r;
  r.scenario = 5;
  r.label = "RDG=1 ROI=0 REG=1";
  r.intertask_mbytes_per_s = 100.0;
  r.intratask_mbytes_per_s = 50.0;
  rows.push_back(r);
  std::string s = format_scenario_table(rows);
  EXPECT_NE(s.find("RDG=1"), std::string::npos);
  EXPECT_NE(s.find("150.0"), std::string::npos);
}

TEST(BandwidthModel, ScenarioTotalIsSum) {
  ScenarioBandwidth r;
  r.intertask_mbytes_per_s = 10.0;
  r.intratask_mbytes_per_s = 5.0;
  EXPECT_DOUBLE_EQ(r.total_mbytes_per_s(), 15.0);
}

}  // namespace
}  // namespace tc::model
