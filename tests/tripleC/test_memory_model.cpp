#include "tripleC/memory_model.hpp"

#include <gtest/gtest.h>

namespace tc::model {
namespace {

TEST(MemoryModel, RowFromWorkReport) {
  img::WorkReport w;
  w.input_bytes = 2048 * 1024;
  w.intermediate_bytes = 7168 * 1024;
  w.output_bytes = 5120 * 1024;
  MemoryRow row = memory_row("RDG_FULL", false, w);
  EXPECT_EQ(row.task, "RDG_FULL");
  EXPECT_DOUBLE_EQ(row.input_kb, 2048.0);
  EXPECT_DOUBLE_EQ(row.intermediate_kb, 7168.0);
  EXPECT_DOUBLE_EQ(row.output_kb, 5120.0);
  EXPECT_DOUBLE_EQ(row.total_kb(), 2048.0 + 7168.0 + 5120.0);
}

TEST(MemoryModel, ScaleConvertsResolution) {
  img::WorkReport w;
  w.input_bytes = 1024;
  MemoryRow row = memory_row("T", false, w, 16.0);
  EXPECT_DOUBLE_EQ(row.input_kb, 16.0);
}

TEST(MemoryModel, TableContainsAllRows) {
  img::WorkReport w;
  w.input_bytes = 1024 * 1024;
  std::vector<MemoryRow> rows{
      memory_row("RDG_FULL", false, w),
      memory_row("MKX_FULL", true, w),
  };
  std::string table = format_memory_table(rows);
  EXPECT_NE(table.find("RDG_FULL"), std::string::npos);
  EXPECT_NE(table.find("MKX_FULL"), std::string::npos);
  EXPECT_NE(table.find("Input (KB)"), std::string::npos);
  // RDG-select marks.
  EXPECT_NE(table.find('x'), std::string::npos);
}

TEST(MemoryModel, RdgSelectedFlagStored) {
  img::WorkReport w;
  EXPECT_TRUE(memory_row("A", true, w).rdg_selected);
  EXPECT_FALSE(memory_row("A", false, w).rdg_selected);
}

}  // namespace
}  // namespace tc::model
