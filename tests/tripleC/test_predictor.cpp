#include "tripleC/predictor.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace tc::model {
namespace {

std::vector<TrainingSample> constant_series(usize n, f64 value) {
  std::vector<TrainingSample> xs;
  for (usize i = 0; i < n; ++i) xs.push_back({value, 0.0});
  return xs;
}

/// Long-term sinusoidal drift plus AR(1) short-term fluctuation — the
/// structure the paper decomposes with EWMA + Markov.
std::vector<TrainingSample> drift_plus_ar1(usize n, u64 seed) {
  Pcg32 rng(seed);
  std::vector<TrainingSample> xs;
  f64 r = 0.0;
  for (usize i = 0; i < n; ++i) {
    f64 slow = 45.0 + 8.0 * std::sin(static_cast<f64>(i) / 120.0);
    r = 0.7 * r + rng.normal(0.0, 1.5);
    xs.push_back({slow + r, 0.0});
  }
  return xs;
}

/// Linear in size plus AR(1) residual (the RDG_ROI structure, Eq. 3).
std::vector<TrainingSample> linear_plus_ar1(usize n, u64 seed) {
  Pcg32 rng(seed);
  std::vector<TrainingSample> xs;
  f64 r = 0.0;
  for (usize i = 0; i < n; ++i) {
    f64 size = rng.uniform(20000.0, 300000.0);
    r = 0.6 * r + rng.normal(0.0, 1.0);
    xs.push_back({0.00007 * size + 20.0 + r, size});
  }
  return xs;
}

f64 replay_mae(TaskPredictor& p, std::span<const TrainingSample> test) {
  f64 err = 0.0;
  for (const TrainingSample& s : test) {
    err += std::fabs(p.predict(s.size) - s.measured_ms);
    p.observe(s.measured_ms, s.size);
  }
  return err / static_cast<f64>(test.size());
}

TEST(Predictor, ConstantKindPredictsTrainedMean) {
  PredictorConfig cfg;
  cfg.kind = PredictorKind::Constant;
  TaskPredictor p(cfg);
  p.train(constant_series(100, 24.0));
  EXPECT_TRUE(p.trained());
  EXPECT_DOUBLE_EQ(p.predict(), 24.0);
  p.observe(100.0);  // constant predictor ignores observations
  EXPECT_DOUBLE_EQ(p.predict(), 24.0);
}

TEST(Predictor, EwmaKindTracksLevelShifts) {
  PredictorConfig cfg;
  cfg.kind = PredictorKind::Ewma;
  cfg.ewma_alpha = 0.5;
  TaskPredictor p(cfg);
  p.train(constant_series(50, 10.0));
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);  // mean before any observation
  p.observe(20.0);
  p.observe(20.0);
  p.observe(20.0);
  EXPECT_GT(p.predict(), 16.0);
}

TEST(Predictor, EwmaMarkovBeatsConstantOnStructuredLoad) {
  auto train = drift_plus_ar1(4000, 1);
  auto test = drift_plus_ar1(1000, 2);

  PredictorConfig em;
  em.kind = PredictorKind::EwmaMarkov;
  TaskPredictor p_em(em);
  p_em.train(train);

  PredictorConfig c;
  c.kind = PredictorKind::Constant;
  TaskPredictor p_c(c);
  p_c.train(train);

  f64 mae_em = replay_mae(p_em, test);
  f64 mae_c = replay_mae(p_c, test);
  EXPECT_LT(mae_em, 0.6 * mae_c);
}

TEST(Predictor, EwmaMarkovBeatsEwmaOnlyOnAr1Residual) {
  auto train = drift_plus_ar1(6000, 3);
  auto test = drift_plus_ar1(1500, 4);

  PredictorConfig em;
  em.kind = PredictorKind::EwmaMarkov;
  TaskPredictor p_em(em);
  p_em.train(train);

  PredictorConfig e;
  e.kind = PredictorKind::Ewma;
  e.ewma_alpha = em.ewma_alpha;
  TaskPredictor p_e(e);
  p_e.train(train);

  EXPECT_LT(replay_mae(p_em, test), replay_mae(p_e, test));
}

TEST(Predictor, LinearMarkovRecoversGrowthLaw) {
  auto train = linear_plus_ar1(5000, 5);
  PredictorConfig lm;
  lm.kind = PredictorKind::LinearMarkov;
  TaskPredictor p(lm);
  p.train(train);
  EXPECT_NEAR(p.linear().slope(), 0.00007, 1e-5);
  EXPECT_NEAR(p.linear().intercept(), 20.0, 1.0);
}

TEST(Predictor, LinearMarkovBeatsConstantAcrossSizes) {
  auto train = linear_plus_ar1(5000, 6);
  auto test = linear_plus_ar1(1000, 7);

  PredictorConfig lm;
  lm.kind = PredictorKind::LinearMarkov;
  TaskPredictor p_lm(lm);
  p_lm.train(train);

  PredictorConfig c;
  c.kind = PredictorKind::Constant;
  TaskPredictor p_c(c);
  p_c.train(train);

  EXPECT_LT(replay_mae(p_lm, test), 0.4 * replay_mae(p_c, test));
}

TEST(Predictor, UntrainedPredictsZero) {
  TaskPredictor p;
  EXPECT_FALSE(p.trained());
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
}

TEST(Predictor, ResetOnlineStateKeepsModel) {
  auto train = drift_plus_ar1(2000, 8);
  PredictorConfig em;
  em.kind = PredictorKind::EwmaMarkov;
  TaskPredictor p(em);
  p.train(train);
  p.observe(60.0);
  p.observe(60.0);
  f64 before = p.predict();
  p.reset_online_state();
  // After the reset the prediction falls back to the trained mean.
  EXPECT_NE(p.predict(), before);
  EXPECT_NEAR(p.predict(), p.trained_mean(), 1e-9);
  EXPECT_TRUE(p.trained());
}

TEST(Predictor, MarkovAccessorsMatchKind) {
  PredictorConfig c;
  c.kind = PredictorKind::Constant;
  EXPECT_EQ(TaskPredictor(c).markov(), nullptr);
  PredictorConfig e;
  e.kind = PredictorKind::Ewma;
  EXPECT_EQ(TaskPredictor(e).markov(), nullptr);
  PredictorConfig em;
  em.kind = PredictorKind::EwmaMarkov;
  TaskPredictor p(em);
  p.train(drift_plus_ar1(500, 9));
  EXPECT_NE(p.markov(), nullptr);
  EXPECT_GT(p.markov()->states(), 1u);
}

TEST(Predictor, MultiSequenceTrainingHandlesBoundaries) {
  std::vector<std::vector<TrainingSample>> seqs;
  seqs.push_back(constant_series(50, 10.0));
  seqs.push_back(constant_series(50, 30.0));
  PredictorConfig em;
  em.kind = PredictorKind::EwmaMarkov;
  TaskPredictor p(em);
  p.train(seqs);
  EXPECT_NEAR(p.trained_mean(), 20.0, 1e-9);
}

TEST(Predictor, SummaryMentionsKind) {
  PredictorConfig c;
  c.kind = PredictorKind::Constant;
  TaskPredictor p(c);
  p.train(constant_series(10, 12.5));
  EXPECT_NE(p.summary().find("12.5"), std::string::npos);

  PredictorConfig lm;
  lm.kind = PredictorKind::LinearMarkov;
  TaskPredictor q(lm);
  q.train(linear_plus_ar1(500, 10));
  EXPECT_NE(q.summary().find("linear + Markov"), std::string::npos);
}

TEST(Predictor, ToStringOfKinds) {
  EXPECT_EQ(to_string(PredictorKind::Constant), "constant");
  EXPECT_EQ(to_string(PredictorKind::Ewma), "EWMA");
  EXPECT_EQ(to_string(PredictorKind::EwmaMarkov), "EWMA + Markov");
  EXPECT_EQ(to_string(PredictorKind::LinearMarkov), "linear + Markov");
}

// Accuracy sweep over EWMA alpha: there is an interior optimum; extreme
// alphas are not catastrophically worse (sanity of the composition).
class AlphaSweep : public ::testing::TestWithParam<f64> {};

TEST_P(AlphaSweep, ReasonableAccuracyForAllAlphas) {
  auto train = drift_plus_ar1(4000, 11);
  auto test = drift_plus_ar1(1000, 12);
  PredictorConfig em;
  em.kind = PredictorKind::EwmaMarkov;
  em.ewma_alpha = GetParam();
  TaskPredictor p(em);
  p.train(train);
  f64 mae = replay_mae(p, test);
  // The signal std is ~6; any trained predictor must do much better.
  EXPECT_LT(mae, 3.0) << "alpha " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.9));

}  // namespace
}  // namespace tc::model
