#include "tripleC/accuracy.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace tc::model {
namespace {

TEST(Accuracy, PerfectPredictionIsHundredPercent) {
  std::vector<f64> m{10.0, 20.0, 30.0};
  AccuracyReport r = evaluate_accuracy(m, m);
  EXPECT_DOUBLE_EQ(r.mean_accuracy_pct, 100.0);
  EXPECT_DOUBLE_EQ(r.mape_pct, 0.0);
  EXPECT_DOUBLE_EQ(r.max_error_pct, 0.0);
  EXPECT_EQ(r.samples, 3u);
}

TEST(Accuracy, KnownError) {
  std::vector<f64> pred{11.0};
  std::vector<f64> meas{10.0};
  AccuracyReport r = evaluate_accuracy(pred, meas);
  EXPECT_NEAR(r.mean_accuracy_pct, 90.0, 1e-9);
  EXPECT_NEAR(r.mape_pct, 10.0, 1e-9);
  EXPECT_NEAR(r.max_error_pct, 10.0, 1e-9);
}

TEST(Accuracy, ExcursionCounting) {
  std::vector<f64> pred{10.0, 12.5, 14.0, 10.0};
  std::vector<f64> meas{10.0, 10.0, 10.0, 10.0};
  // Errors: 0%, 25%, 40%, 0%.
  AccuracyReport r = evaluate_accuracy(pred, meas);
  EXPECT_NEAR(r.excursions_over_20_pct, 0.5, 1e-9);
  EXPECT_NEAR(r.excursions_over_30_pct, 0.25, 1e-9);
  EXPECT_NEAR(r.max_error_pct, 40.0, 1e-9);
}

TEST(Accuracy, NearZeroMeasurementsSkipped) {
  std::vector<f64> pred{5.0, 11.0};
  std::vector<f64> meas{0.0, 10.0};
  AccuracyReport r = evaluate_accuracy(pred, meas);
  EXPECT_EQ(r.samples, 1u);
  EXPECT_NEAR(r.mape_pct, 10.0, 1e-9);
}

TEST(Accuracy, AccuracyClampedAtZero) {
  // A 300% error must not produce negative accuracy.
  std::vector<f64> pred{40.0};
  std::vector<f64> meas{10.0};
  AccuracyReport r = evaluate_accuracy(pred, meas);
  EXPECT_DOUBLE_EQ(r.mean_accuracy_pct, 0.0);
  EXPECT_NEAR(r.mape_pct, 300.0, 1e-9);
}

TEST(Accuracy, MismatchedLengthsUseShorter) {
  std::vector<f64> pred{10.0, 20.0, 30.0};
  std::vector<f64> meas{10.0, 20.0};
  AccuracyReport r = evaluate_accuracy(pred, meas);
  EXPECT_EQ(r.samples, 2u);
}

TEST(Accuracy, EmptyInput) {
  AccuracyReport r = evaluate_accuracy({}, {});
  EXPECT_EQ(r.samples, 0u);
  EXPECT_DOUBLE_EQ(r.mean_accuracy_pct, 0.0);
}

TEST(Accuracy, ToStringContainsHeadlineNumbers) {
  std::vector<f64> pred{11.0};
  std::vector<f64> meas{10.0};
  std::string s = to_string(evaluate_accuracy(pred, meas));
  EXPECT_NE(s.find("90.0%"), std::string::npos);
}

}  // namespace
}  // namespace tc::model
