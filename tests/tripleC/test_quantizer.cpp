#include "tripleC/quantizer.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace tc::model {
namespace {

std::vector<f64> normal_samples(usize n, f64 mean, f64 sigma, u64 seed) {
  Pcg32 rng(seed);
  std::vector<f64> xs;
  xs.reserve(n);
  for (usize i = 0; i < n; ++i) xs.push_back(rng.normal(mean, sigma));
  return xs;
}

TEST(Quantizer, EmptyInputNotFitted) {
  AdaptiveQuantizer q;
  q.fit({});
  EXPECT_FALSE(q.fitted());
  EXPECT_EQ(q.states(), 0u);
}

TEST(Quantizer, ConstantSeriesHasSingleState) {
  std::vector<f64> xs(100, 7.0);
  AdaptiveQuantizer q;
  q.fit(xs);
  EXPECT_EQ(q.states(), 1u);
  EXPECT_DOUBLE_EQ(q.representative(0), 7.0);
  EXPECT_EQ(q.state_of(7.0), 0u);
  EXPECT_EQ(q.state_of(100.0), 0u);
}

TEST(Quantizer, BaseStateCountFollowsPaperRule) {
  // M = C_max / sigma_C.
  std::vector<f64> xs = normal_samples(20000, 50.0, 5.0, 1);
  AdaptiveQuantizer q;
  q.fit(xs, 1.0, 1000);
  f64 c_max = max_of(xs);
  f64 sigma = stddev(xs);
  EXPECT_NEAR(static_cast<f64>(q.base_states()), c_max / sigma, 1.0);
}

TEST(Quantizer, MultiplierDoublesStates) {
  std::vector<f64> xs = normal_samples(20000, 50.0, 5.0, 2);
  AdaptiveQuantizer q1;
  q1.fit(xs, 1.0, 1000);
  AdaptiveQuantizer q2;
  q2.fit(xs, 2.0, 1000);
  EXPECT_NEAR(static_cast<f64>(q2.states()),
              2.0 * static_cast<f64>(q1.states()), 2.0);
}

TEST(Quantizer, MaxStatesClamps) {
  std::vector<f64> xs = normal_samples(20000, 50.0, 2.0, 3);
  AdaptiveQuantizer q;
  q.fit(xs, 2.0, 10);
  EXPECT_LE(q.states(), 10u);
}

TEST(Quantizer, EqualFrequencyIntervals) {
  // Each state should hold roughly the same number of training samples.
  std::vector<f64> xs = normal_samples(50000, 100.0, 10.0, 4);
  AdaptiveQuantizer q;
  q.fit(xs, 2.0, 16);
  std::vector<u64> counts(q.states(), 0);
  for (f64 x : xs) ++counts[q.state_of(x)];
  u64 expect = xs.size() / q.states();
  for (usize s = 0; s < q.states(); ++s) {
    EXPECT_NEAR(static_cast<f64>(counts[s]), static_cast<f64>(expect),
                static_cast<f64>(expect) * 0.25)
        << "state " << s;
  }
}

TEST(Quantizer, StateOfIsMonotone) {
  std::vector<f64> xs = normal_samples(10000, 0.0, 1.0, 5);
  AdaptiveQuantizer q;
  q.fit(xs, 2.0, 12);
  usize prev = 0;
  for (f64 x = -5.0; x <= 5.0; x += 0.1) {
    usize s = q.state_of(x);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_EQ(q.state_of(-100.0), 0u);
  EXPECT_EQ(q.state_of(100.0), q.states() - 1);
}

TEST(Quantizer, RepresentativesAreMonotoneAndInsideRange) {
  std::vector<f64> xs = normal_samples(10000, 20.0, 4.0, 6);
  AdaptiveQuantizer q;
  q.fit(xs, 2.0, 12);
  f64 lo = min_of(xs);
  f64 hi = max_of(xs);
  f64 prev = lo - 1.0;
  for (usize s = 0; s < q.states(); ++s) {
    f64 rep = q.representative(s);
    EXPECT_GT(rep, prev);
    EXPECT_GE(rep, lo);
    EXPECT_LE(rep, hi);
    prev = rep;
  }
}

TEST(Quantizer, RepresentativeIsStateMean) {
  std::vector<f64> xs = normal_samples(30000, 0.0, 1.0, 7);
  AdaptiveQuantizer q;
  q.fit(xs, 2.0, 8);
  std::vector<f64> sum(q.states(), 0.0);
  std::vector<u64> count(q.states(), 0);
  for (f64 x : xs) {
    usize s = q.state_of(x);
    sum[s] += x;
    ++count[s];
  }
  for (usize s = 0; s < q.states(); ++s) {
    if (count[s] == 0) continue;
    EXPECT_NEAR(q.representative(s), sum[s] / static_cast<f64>(count[s]),
                1e-9);
  }
}

TEST(Quantizer, HeavyTiesMergeBoundaries) {
  // 90% of mass at a single value: equal-frequency boundaries collide and
  // must be merged without crashing.
  std::vector<f64> xs(900, 5.0);
  for (i32 i = 0; i < 100; ++i) xs.push_back(5.0 + i * 0.1);
  AdaptiveQuantizer q;
  q.fit(xs, 2.0, 16);
  EXPECT_GE(q.states(), 2u);
  EXPECT_LE(q.states(), 16u);
  // All calls still map to valid states.
  for (f64 x : xs) EXPECT_LT(q.state_of(x), q.states());
}

class QuantizerRoundTrip : public ::testing::TestWithParam<usize> {};

TEST_P(QuantizerRoundTrip, QuantizationErrorBoundedByStateWidth) {
  std::vector<f64> xs = normal_samples(20000, 50.0, 8.0, GetParam());
  AdaptiveQuantizer q;
  q.fit(xs, 2.0, 32);
  // The representative of a sample's state is within the sample range and
  // the average quantization error shrinks with more states.
  f64 err = 0.0;
  for (f64 x : xs) err += std::abs(q.representative(q.state_of(x)) - x);
  err /= static_cast<f64>(xs.size());
  EXPECT_LT(err, stddev(xs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizerRoundTrip,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace tc::model
