#include "runtime/qos.hpp"

#include <gtest/gtest.h>

#include "runtime/manager.hpp"
#include "tripleC/graph_predictor.hpp"

namespace tc::rt {
namespace {

std::vector<NodeForecast> heavy_forecast() {
  std::vector<NodeForecast> fc(app::kNodeCount);
  auto set = [&fc](i32 node, f64 ms) {
    fc[static_cast<usize>(node)].serial_ms = ms;
    fc[static_cast<usize>(node)].active = true;
    fc[static_cast<usize>(node)].data_parallel = app::node_data_parallel(node);
  };
  set(app::kRdgFull, 45.0);
  set(app::kMkxFull, 16.0);
  set(app::kCplsSel, 1.0);
  set(app::kGwExt, 3.0);
  set(app::kEnh, 10.0);
  set(app::kZoom, 20.0);
  return fc;
}

TEST(Qos, LadderStartsAtFullQuality) {
  auto ladder = quality_ladder();
  ASSERT_GE(ladder.size(), 2u);
  EXPECT_EQ(ladder[0].level, 0);
  EXPECT_EQ(ladder[0].extra_mkx_decimation, 1);
  EXPECT_FALSE(ladder[0].skip_guidewire);
  EXPECT_EQ(ladder[0].zoom_divisor, 1);
}

TEST(Qos, LadderIsMonotonicallyMoreAggressive) {
  auto ladder = quality_ladder();
  for (usize i = 1; i < ladder.size(); ++i) {
    EXPECT_EQ(ladder[i].level, static_cast<i32>(i));
    // Each level is at least as degraded as the previous one.
    EXPECT_GE(ladder[i].extra_mkx_decimation,
              ladder[i - 1].extra_mkx_decimation);
    EXPECT_GE(ladder[i].zoom_divisor, ladder[i - 1].zoom_divisor);
    EXPECT_GE(static_cast<i32>(ladder[i].skip_guidewire),
              static_cast<i32>(ladder[i - 1].skip_guidewire));
  }
}

TEST(Qos, CostFactorsMatchDecimation) {
  QualityLevel level;
  level.extra_mkx_decimation = 2;
  level.zoom_divisor = 2;
  EXPECT_DOUBLE_EQ(level.mkx_cost_factor(), 0.25);
  EXPECT_DOUBLE_EQ(level.zoom_cost_factor(), 0.25);
}

TEST(Qos, DegradeForecastScalesAffectedNodes) {
  auto fc = heavy_forecast();
  QualityLevel level;
  level.extra_mkx_decimation = 2;
  level.skip_guidewire = true;
  level.zoom_divisor = 2;
  auto degraded = degrade_forecast(fc, level);
  EXPECT_DOUBLE_EQ(degraded[app::kMkxFull].serial_ms, 4.0);
  EXPECT_DOUBLE_EQ(degraded[app::kZoom].serial_ms, 5.0);
  EXPECT_FALSE(degraded[app::kGwExt].active);
  // Unaffected nodes unchanged.
  EXPECT_DOUBLE_EQ(degraded[app::kRdgFull].serial_ms, 45.0);
}

TEST(Qos, GenerousBudgetStaysAtFullQuality) {
  plat::CostParams params;
  QosDecision d = choose_quality_and_plan(params, heavy_forecast(), 200.0, 4, 8);
  EXPECT_EQ(d.level.level, 0);
  EXPECT_TRUE(d.plan.fits_budget);
  EXPECT_EQ(d.plan.plan, app::serial_plan());
}

TEST(Qos, ModerateBudgetParallelizesBeforeDegrading) {
  plat::CostParams params;
  // 50 ms: reachable with stripes at full quality.
  QosDecision d = choose_quality_and_plan(params, heavy_forecast(), 50.0, 4, 8);
  EXPECT_EQ(d.level.level, 0);
  EXPECT_TRUE(d.plan.fits_budget);
  EXPECT_NE(d.plan.plan, app::serial_plan());
}

TEST(Qos, TightBudgetDegradesQuality) {
  plat::CostParams params;
  // 22 ms is below what 4-way striping of the full-quality graph achieves.
  QosDecision d = choose_quality_and_plan(params, heavy_forecast(), 22.0, 4, 8);
  EXPECT_GT(d.level.level, 0);
  EXPECT_TRUE(d.plan.fits_budget);
}

TEST(Qos, ImpossibleBudgetReturnsLowestQualityWidestPlan) {
  plat::CostParams params;
  QosDecision d = choose_quality_and_plan(params, heavy_forecast(), 0.5, 4, 8);
  EXPECT_EQ(d.level.level,
            static_cast<i32>(quality_ladder().size()) - 1);
  EXPECT_FALSE(d.plan.fits_budget);
}

TEST(Qos, DecisionLatencyMonotoneInBudget) {
  plat::CostParams params;
  f64 prev_level = 1e9;
  for (f64 budget : {15.0, 25.0, 40.0, 80.0, 200.0}) {
    QosDecision d =
        choose_quality_and_plan(params, heavy_forecast(), budget, 4, 8);
    EXPECT_LE(static_cast<f64>(d.level.level), prev_level)
        << "budget " << budget;
    prev_level = static_cast<f64>(d.level.level);
  }
}

// ---------------------------------------------------------------------------
// Integration: the manager with QoS enabled meets an otherwise-impossible
// budget by degrading, and restores quality when the budget allows.
// ---------------------------------------------------------------------------

app::StentBoostConfig qos_config() {
  app::StentBoostConfig c = app::StentBoostConfig::make(128, 128, 80, 31);
  c.force_full_frame = true;  // keep the expensive full-frame path active
  c.sequence.contrast_in_frame = 0;
  return c;
}

model::GraphPredictor quick_predictor(const app::StentBoostConfig& base) {
  std::vector<std::vector<graph::FrameRecord>> seqs;
  app::StentBoostConfig c = base;
  c.sequence.seed = 404;
  app::StentBoostApp app(c);
  seqs.push_back(app.run(40));
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  gp.train(seqs);
  return gp;
}

TEST(QosManager, DegradesUnderImpossibleBudget) {
  app::StentBoostConfig c = qos_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = quick_predictor(c);
  ManagerConfig mc;
  mc.latency_budget_ms = 25.0;  // unreachable at full quality
  mc.enable_qos = true;
  RuntimeManager mgr(app, gp, mc);
  bool degraded = false;
  for (i32 t = 0; t < 20; ++t) {
    ManagedFrame f = mgr.step(t);
    if (f.quality_level > 0) degraded = true;
  }
  EXPECT_TRUE(degraded);
  // The app-level knobs were actually applied.
  EXPECT_TRUE(app.quality_extra_decimation() > 1 ||
              app.quality_skip_guidewire() ||
              app.quality_zoom_divisor() > 1);
}

TEST(QosManager, FullQualityRestoredWithGenerousBudget) {
  app::StentBoostConfig c = qos_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = quick_predictor(c);
  ManagerConfig mc;
  mc.latency_budget_ms = 500.0;
  mc.enable_qos = true;
  RuntimeManager mgr(app, gp, mc);
  for (i32 t = 0; t < 10; ++t) {
    ManagedFrame f = mgr.step(t);
    EXPECT_EQ(f.quality_level, 0) << "frame " << t;
  }
  EXPECT_EQ(app.quality_extra_decimation(), 1);
  EXPECT_FALSE(app.quality_skip_guidewire());
}

TEST(QosManager, DegradedRunStillMeetsBudgetMostFrames) {
  app::StentBoostConfig c = qos_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = quick_predictor(c);
  ManagerConfig mc;
  mc.latency_budget_ms = 30.0;
  mc.enable_qos = true;
  RuntimeManager mgr(app, gp, mc);
  i32 within = 0;
  const i32 frames = 30;
  for (i32 t = 0; t < frames; ++t) {
    ManagedFrame f = mgr.step(t);
    if (f.measured_latency_ms <= mc.latency_budget_ms * 1.15) ++within;
  }
  EXPECT_GT(within, frames * 3 / 5);
}

}  // namespace
}  // namespace tc::rt
