#include "runtime/pipeline_schedule.hpp"

#include <gtest/gtest.h>

namespace tc::rt {
namespace {

std::vector<NodeForecast> forecast_full_frame() {
  std::vector<NodeForecast> fc(app::kNodeCount);
  auto set = [&fc](i32 node, f64 ms) {
    fc[static_cast<usize>(node)].serial_ms = ms;
    fc[static_cast<usize>(node)].active = true;
    fc[static_cast<usize>(node)].data_parallel = app::node_data_parallel(node);
  };
  set(app::kRdgFull, 45.0);
  set(app::kMkxFull, 3.0);
  set(app::kCplsSel, 1.0);
  set(app::kReg, 2.0);
  set(app::kRoiEst, 0.2);
  set(app::kGwExt, 2.0);
  set(app::kEnh, 10.0);
  set(app::kZoom, 20.0);
  return fc;
}

TEST(PipelineSchedule, SerialSingleStageMatchesSum) {
  auto fc = forecast_full_frame();
  auto stages = data_parallel_mapping(1);
  PipelineAnalysis a = analyze_pipeline(plat::CostParams{}, stages, fc, 0.0);
  EXPECT_NEAR(a.latency_ms, 45 + 3 + 1 + 2 + 0.2 + 2 + 10 + 20, 1e-9);
  EXPECT_EQ(a.bottleneck_stage, 0);
  EXPECT_NEAR(a.throughput_hz, 1000.0 / a.latency_ms, 1e-9);
  EXPECT_EQ(a.total_cpus, 1);
}

TEST(PipelineSchedule, DataParallelReducesLatencyAndRaisesThroughput) {
  auto fc = forecast_full_frame();
  plat::CostParams params;
  PipelineAnalysis serial =
      analyze_pipeline(params, data_parallel_mapping(1), fc);
  PipelineAnalysis wide =
      analyze_pipeline(params, data_parallel_mapping(4), fc);
  EXPECT_LT(wide.latency_ms, 0.5 * serial.latency_ms);
  EXPECT_GT(wide.throughput_hz, 1.9 * serial.throughput_hz);
}

TEST(PipelineSchedule, FunctionalMappingPipelinesThroughput) {
  auto fc = forecast_full_frame();
  plat::CostParams params;
  auto stages = functional_mapping(1, 1);
  PipelineAnalysis a = analyze_pipeline(params, stages, fc);
  // Latency is the sum of all stages (plus handoffs) — comparable to serial.
  PipelineAnalysis serial =
      analyze_pipeline(params, data_parallel_mapping(1), fc, 0.0);
  EXPECT_GT(a.latency_ms, serial.latency_ms);  // handoffs add latency
  // Throughput is set by the bottleneck stage (analysis: 48 ms), much
  // better than 1/latency.
  EXPECT_GT(a.throughput_hz, 1000.0 / a.latency_ms * 1.5);
  EXPECT_EQ(a.bottleneck_stage, 0);
}

TEST(PipelineSchedule, WideningBottleneckStageHelps) {
  auto fc = forecast_full_frame();
  plat::CostParams params;
  PipelineAnalysis narrow =
      analyze_pipeline(params, functional_mapping(1, 1), fc);
  PipelineAnalysis wide =
      analyze_pipeline(params, functional_mapping(4, 1), fc);
  // Throughput improves until the next stage becomes the bottleneck.
  EXPECT_GT(wide.throughput_hz, 1.5 * narrow.throughput_hz);
}

TEST(PipelineSchedule, FeatureStageDoesNotStripe) {
  // CPLS/REG/... are not data-parallel: giving the feature stage more CPUs
  // must not reduce its time.
  auto fc = forecast_full_frame();
  plat::CostParams params;
  auto stages = functional_mapping(1, 1);
  stages[1].cpus = 4;
  PipelineAnalysis more = analyze_pipeline(params, stages, fc);
  auto base_stages = functional_mapping(1, 1);
  PipelineAnalysis base = analyze_pipeline(params, base_stages, fc);
  EXPECT_NEAR(more.stage_ms[1], base.stage_ms[1], 1e-9);
}

TEST(PipelineSchedule, InactiveNodesContributeNothing) {
  auto fc = forecast_full_frame();
  fc[app::kRdgFull].active = false;
  plat::CostParams params;
  PipelineAnalysis a =
      analyze_pipeline(params, data_parallel_mapping(1), fc, 0.0);
  EXPECT_NEAR(a.latency_ms, 3 + 1 + 2 + 0.2 + 2 + 10 + 20, 1e-9);
}

TEST(PipelineSchedule, HandoffChargedPerBoundary) {
  auto fc = forecast_full_frame();
  plat::CostParams params;
  PipelineAnalysis without =
      analyze_pipeline(params, functional_mapping(1, 1), fc, 0.0);
  PipelineAnalysis with =
      analyze_pipeline(params, functional_mapping(1, 1), fc, 1.0);
  // Three stages -> two boundaries.
  EXPECT_NEAR(with.latency_ms, without.latency_ms + 2.0, 1e-9);
}

TEST(PipelineSchedule, FormatMentionsBottleneck) {
  auto fc = forecast_full_frame();
  auto stages = functional_mapping(1, 1);
  PipelineAnalysis a = analyze_pipeline(plat::CostParams{}, stages, fc);
  std::string s = format_pipeline_table(stages, a);
  EXPECT_NE(s.find("bottleneck"), std::string::npos);
  EXPECT_NE(s.find("throughput"), std::string::npos);
}

TEST(PipelineSchedule, TotalCpusSummed) {
  auto fc = forecast_full_frame();
  PipelineAnalysis a = analyze_pipeline(plat::CostParams{},
                                        functional_mapping(4, 2), fc);
  EXPECT_EQ(a.total_cpus, 7);
}

// --- edge cases the concurrent executor exercises --------------------------

TEST(PipelineSchedule, SingleTaskGraph) {
  // One active node in a one-stage mapping: latency is exactly that task's
  // time (a single stage has no boundary, so no handoff is charged) and the
  // bottleneck is the only stage.
  std::vector<NodeForecast> fc(app::kNodeCount);
  fc[app::kRdgFull].serial_ms = 45.0;
  fc[app::kRdgFull].active = true;
  fc[app::kRdgFull].data_parallel = true;
  std::vector<PipelineStage> stages{PipelineStage{"only", {app::kRdgFull}, 1}};
  PipelineAnalysis a =
      analyze_pipeline(plat::CostParams{}, stages, fc, /*handoff_ms=*/1.0);
  EXPECT_NEAR(a.latency_ms, 45.0, 1e-9);
  EXPECT_EQ(a.bottleneck_stage, 0);
  EXPECT_NEAR(a.throughput_hz, 1000.0 / 45.0, 1e-9);
  EXPECT_EQ(a.total_cpus, 1);
}

TEST(PipelineSchedule, MoreStagesThanActiveNodes) {
  // A mapping with more stages than the frame has active work (switches
  // turned most nodes off): empty/inactive stages contribute only their
  // handoff and must not be picked as the bottleneck.
  std::vector<NodeForecast> fc(app::kNodeCount);
  fc[app::kMkxFull].serial_ms = 3.0;
  fc[app::kMkxFull].active = true;
  fc[app::kMkxFull].data_parallel = true;
  std::vector<PipelineStage> stages{
      PipelineStage{"rdg", {app::kRdgFull, app::kRdgRoi}, 1},   // inactive
      PipelineStage{"mkx", {app::kMkxFull, app::kMkxRoi}, 1},   // 3 ms
      PipelineStage{"features", {app::kCplsSel, app::kReg}, 1},  // inactive
      PipelineStage{"gw", {app::kGwExt}, 1},                     // inactive
      PipelineStage{"display", {app::kEnh, app::kZoom}, 1},      // inactive
  };
  PipelineAnalysis a =
      analyze_pipeline(plat::CostParams{}, stages, fc, /*handoff_ms=*/0.0);
  EXPECT_NEAR(a.latency_ms, 3.0, 1e-9);
  EXPECT_EQ(a.bottleneck_stage, 1);
  ASSERT_EQ(a.stage_ms.size(), stages.size());
  EXPECT_NEAR(a.stage_ms[0], 0.0, 1e-9);
  EXPECT_NEAR(a.stage_ms[4], 0.0, 1e-9);
}

TEST(PipelineSchedule, ZeroDeadlineFrameGetsWidestPlan) {
  // A zero latency budget can never be met: choose_plan must fall back to
  // the widest plan and report fits_budget = false instead of looping or
  // returning the serial plan.
  auto fc = forecast_full_frame();
  plat::CostParams params;
  PlanChoice choice = choose_plan(params, fc, /*budget_ms=*/0.0,
                                  /*max_stripes_per_task=*/4, /*cpu_count=*/8);
  EXPECT_FALSE(choice.fits_budget);
  EXPECT_GT(choice.estimated_ms, 0.0);
  for (i32 node = 0; node < app::kNodeCount; ++node) {
    const auto& f = fc[static_cast<usize>(node)];
    if (f.active && f.data_parallel) {
      EXPECT_EQ(choice.plan[static_cast<usize>(node)], 4)
          << "node " << node << " should be at max stripes";
    } else {
      EXPECT_EQ(choice.plan[static_cast<usize>(node)], 1);
    }
  }
  // The widest plan is still an improvement over serial.
  PlanChoice serial_like = choose_plan(params, fc, /*budget_ms=*/1e9,
                                       /*max_stripes_per_task=*/4,
                                       /*cpu_count=*/8);
  EXPECT_TRUE(serial_like.fits_budget);
  EXPECT_LT(choice.estimated_ms, serial_like.estimated_ms);
}

}  // namespace
}  // namespace tc::rt
