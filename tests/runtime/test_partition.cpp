#include "runtime/partition.hpp"

#include <gtest/gtest.h>

#include "analysis/schedulability.hpp"

namespace tc::rt {
namespace {

plat::CostParams params() { return plat::CostParams{}; }

std::vector<NodeForecast> forecast_of(std::vector<f64> serial_ms,
                                      std::vector<bool> dp) {
  std::vector<NodeForecast> fc(app::kNodeCount);
  for (usize i = 0; i < serial_ms.size() && i < fc.size(); ++i) {
    fc[i].serial_ms = serial_ms[i];
    fc[i].active = serial_ms[i] > 0.0;
    fc[i].data_parallel = i < dp.size() ? dp[i] : false;
  }
  return fc;
}

TEST(Partition, StripedMsFromSerialOneStripeIsIdentity) {
  EXPECT_DOUBLE_EQ(striped_ms_from_serial(params(), 40.0, 1), 40.0);
}

TEST(Partition, StripedMsHalvesComputePlusOverhead) {
  plat::CostParams p = params();
  f64 two = striped_ms_from_serial(p, 40.0, 2);
  f64 expected = (40.0 - p.dispatch_ms) / 2.0 * p.default_imbalance +
                 p.dispatch_ms + p.stripe_sync_ms;
  EXPECT_DOUBLE_EQ(two, expected);
  EXPECT_LT(two, 40.0);
  EXPECT_GT(two, 20.0);  // overhead makes it sub-linear
}

TEST(Partition, StripingTinyTaskDoesNotHelp) {
  plat::CostParams p = params();
  f64 serial = 0.3;
  EXPECT_GT(striped_ms_from_serial(p, serial, 4), serial * 0.9);
}

TEST(Partition, EstimateLatencySumsActiveNodes) {
  auto fc = forecast_of({40.0, 0.0, 10.0}, {true, true, true});
  f64 lat = estimate_latency(params(), fc, app::serial_plan());
  EXPECT_DOUBLE_EQ(lat, 50.0);
}

TEST(Partition, EstimateLatencyIgnoresPlanForNonDataParallel) {
  auto fc = forecast_of({40.0}, {false});
  app::StripePlan plan = app::serial_plan();
  plan[0] = 4;
  EXPECT_DOUBLE_EQ(estimate_latency(params(), fc, plan), 40.0);
}

TEST(Partition, ChoosePlanStaysSerialWhenBudgetFits) {
  auto fc = forecast_of({30.0, 20.0}, {true, true});
  PlanChoice c = choose_plan(params(), fc, 60.0, 4, 8);
  EXPECT_TRUE(c.fits_budget);
  EXPECT_EQ(c.plan, app::serial_plan());
}

TEST(Partition, ChoosePlanWidensMostExpensiveNode) {
  auto fc = forecast_of({40.0, 10.0}, {true, true});
  PlanChoice c = choose_plan(params(), fc, 35.0, 4, 8);
  EXPECT_TRUE(c.fits_budget);
  EXPECT_GT(c.plan[0], 1);
  EXPECT_EQ(c.plan[1], 1);  // the cheap node stays serial
  EXPECT_LE(c.estimated_ms, 35.0);
}

TEST(Partition, ChoosePlanUsesMinimalParallelism) {
  auto fc = forecast_of({40.0}, {true});
  // Budget reachable with 2 stripes; plan must not jump to 4.
  plat::CostParams p = params();
  f64 two = striped_ms_from_serial(p, 40.0, 2);
  PlanChoice c = choose_plan(p, fc, two + 1.0, 8, 8);
  EXPECT_TRUE(c.fits_budget);
  EXPECT_EQ(c.plan[0], 2);
}

TEST(Partition, ChoosePlanReturnsWidestWhenBudgetUnreachable) {
  auto fc = forecast_of({100.0, 100.0}, {true, true});
  PlanChoice c = choose_plan(params(), fc, 1.0, 4, 8);
  EXPECT_FALSE(c.fits_budget);
  EXPECT_EQ(c.plan[0], 4);
  EXPECT_EQ(c.plan[1], 4);
}

TEST(Partition, ChoosePlanRespectsCpuCount) {
  auto fc = forecast_of({100.0}, {true});
  PlanChoice c = choose_plan(params(), fc, 1.0, 16, 2);
  EXPECT_LE(c.plan[0], 2);
}

TEST(Partition, ChoosePlanNeverWidensInactiveNodes) {
  auto fc = forecast_of({0.0, 100.0}, {true, true});
  PlanChoice c = choose_plan(params(), fc, 10.0, 4, 8);
  EXPECT_EQ(c.plan[0], 1);
}

TEST(Partition, PlanToStringSerial) {
  EXPECT_EQ(plan_to_string(app::serial_plan()), "serial");
}

TEST(Partition, PlanToStringNamesStripedNodes) {
  app::StripePlan plan = app::serial_plan();
  plan[app::kRdgFull] = 2;
  plan[app::kZoom] = 4;
  std::string s = plan_to_string(plan);
  EXPECT_NE(s.find("RDG_FULLx2"), std::string::npos);
  EXPECT_NE(s.find("ZOOMx4"), std::string::npos);
}

TEST(Partition, EnumerateChainMatchesChoosePlanAtEveryBudget) {
  auto fc = forecast_of({45.0, 20.0, 12.0}, {true, true, true});
  const auto chain = enumerate_plan_candidates(params(), fc, 4, 8);
  ASSERT_GE(chain.size(), 2u);
  // Budget set exactly at a candidate's estimate: choose_plan must return
  // that candidate (first fit), proving the audit and the runtime search
  // the same plan space.
  for (const PlanCandidate& cand : chain) {
    PlanChoice c = choose_plan(params(), fc, cand.estimated_ms, 4, 8);
    EXPECT_TRUE(c.fits_budget);
    EXPECT_EQ(c.plan, cand.plan);
    EXPECT_DOUBLE_EQ(c.estimated_ms, cand.estimated_ms);
  }
  // Budget below even the widest plan: the last candidate, flagged unfit.
  PlanChoice worst = choose_plan(params(), fc, chain.back().estimated_ms - 1.0,
                                 4, 8);
  EXPECT_FALSE(worst.fits_budget);
  EXPECT_EQ(worst.plan, chain.back().plan);
}

TEST(Partition, ChainMatchesSchedulabilityCore) {
  auto fc = forecast_of({45.0, 20.0, 0.0, 12.0}, {true, true, true, false});
  const auto chain = enumerate_plan_candidates(params(), fc, 4, 8);

  std::vector<analysis::sched::ScheduleNode> nodes(fc.size());
  for (usize i = 0; i < fc.size(); ++i) {
    nodes[i].active = fc[i].active;
    nodes[i].data_parallel = fc[i].data_parallel;
    nodes[i].serial_ms = fc[i].serial_ms;
  }
  const auto core = analysis::sched::enumerate_plans(params(), nodes, 4, 8);

  ASSERT_EQ(chain.size(), core.size());
  for (usize c = 0; c < chain.size(); ++c) {
    EXPECT_DOUBLE_EQ(chain[c].estimated_ms, core[c].estimated_ms);
    ASSERT_EQ(chain[c].plan.size(), core[c].plan.size());
    for (usize n = 0; n < core[c].plan.size(); ++n) {
      EXPECT_EQ(chain[c].plan[n], core[c].plan[n])
          << "candidate " << c << " node " << n;
    }
  }
}

// Monotonicity property: more budget never produces a wider plan.
class BudgetMonotone : public ::testing::TestWithParam<f64> {};

TEST_P(BudgetMonotone, WideningDecreasesWithBudget) {
  auto fc = forecast_of({45.0, 20.0, 12.0}, {true, true, true});
  PlanChoice tight = choose_plan(params(), fc, GetParam(), 4, 8);
  PlanChoice loose = choose_plan(params(), fc, GetParam() + 20.0, 4, 8);
  i32 tight_total = 0;
  i32 loose_total = 0;
  for (usize i = 0; i < tight.plan.size(); ++i) {
    tight_total += tight.plan[i];
    loose_total += loose.plan[i];
  }
  EXPECT_LE(loose_total, tight_total);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetMonotone,
                         ::testing::Values(20.0, 30.0, 40.0, 55.0, 70.0));

}  // namespace
}  // namespace tc::rt
