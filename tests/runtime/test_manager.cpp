#include "runtime/manager.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "trace/dataset.hpp"

namespace tc::rt {
namespace {

/// Small, fast configuration for manager tests.
app::StentBoostConfig test_config(u64 seed = 77) {
  app::StentBoostConfig c = app::StentBoostConfig::make(128, 128, 120, seed);
  c.sequence.contrast_in_frame = 25;
  c.sequence.contrast_out_frame = 80;
  return c;
}

model::GraphPredictor trained_predictor(const app::StentBoostConfig& base) {
  // Train on two short sequences with different seeds.
  std::vector<std::vector<graph::FrameRecord>> seqs;
  for (u64 s : {101ull, 202ull}) {
    app::StentBoostConfig c = base;
    c.sequence.seed = s;
    app::StentBoostApp app(c);
    seqs.push_back(app.run(60));
  }
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  gp.configure_task(app::kRdgRoi,
                    model::PredictorConfig{
                        model::PredictorKind::LinearMarkov, 0.25, 2.0, 64});
  for (i32 node : {app::kMkxFull, app::kMkxRoi, app::kReg, app::kRoiEst,
                   app::kEnh, app::kZoom}) {
    gp.configure_task(node, model::PredictorConfig{
                                model::PredictorKind::Constant, 0.25, 2.0, 64});
  }
  gp.train(seqs);
  return gp;
}

TEST(Manager, StartupValidationPassesOnValidSetup) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  RuntimeManager mgr(app, gp, ManagerConfig{});  // Strict by default
  EXPECT_FALSE(mgr.validation_report().has_errors())
      << mgr.validation_report().to_text();
}

TEST(Manager, StrictValidationThrowsOnBrokenPredictorConfig) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  // EWMA alpha 0 never updates (Eq. 1); the lint pass flags it before the
  // predictor is ever instantiated from the config.
  gp.configure_task(app::kEnh, model::PredictorConfig{
                                   model::PredictorKind::Ewma, 0.0, 2.0, 64});
  EXPECT_THROW(RuntimeManager(app, gp, ManagerConfig{}),
               analysis::AnalysisError);
}

TEST(Manager, PermissiveValidationCollectsWithoutThrowing) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  gp.configure_task(app::kEnh, model::PredictorConfig{
                                   model::PredictorKind::Ewma, 0.0, 2.0, 64});
  ManagerConfig mc;
  mc.validation_policy = analysis::Policy::Permissive;
  RuntimeManager mgr(app, gp, mc);
  EXPECT_TRUE(mgr.validation_report().has_errors());
  EXPECT_TRUE(mgr.validation_report().fired("M004"));
}

TEST(Manager, ValidationCanBeDisabled) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  gp.configure_task(app::kEnh, model::PredictorConfig{
                                   model::PredictorKind::Ewma, 0.0, 2.0, 64});
  ManagerConfig mc;
  mc.validate_at_startup = false;
  RuntimeManager mgr(app, gp, mc);
  EXPECT_TRUE(mgr.validation_report().empty());
}

TEST(Manager, StartupAuditPassesOnTrainedSetup) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.audit_at_startup = true;  // Strict policy by default
  RuntimeManager mgr(app, gp, mc);  // Strict enforce: would throw on errors
  EXPECT_FALSE(mgr.audit_report().has_errors())
      << mgr.audit_report().to_text();
  EXPECT_FALSE(mgr.audit_report().has_warnings())
      << mgr.audit_report().to_text();
}

TEST(Manager, StrictAuditThrowsOnImpossibleDeadline) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.audit_at_startup = true;
  mc.audit_options.deadline_ms = 0.01;  // no plan can meet this
  EXPECT_THROW(RuntimeManager(app, gp, mc), analysis::AnalysisError);
}

TEST(Manager, BudgetInitializedAfterWarmup) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.warmup_frames = 5;
  RuntimeManager mgr(app, gp, mc);
  EXPECT_FALSE(mgr.budget_initialized());
  for (i32 t = 0; t < 5; ++t) (void)mgr.step(t);
  EXPECT_TRUE(mgr.budget_initialized());
  EXPECT_GT(mgr.latency_budget_ms(), 0.0);
}

TEST(Manager, ExplicitBudgetSkipsWarmup) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.latency_budget_ms = 45.0;
  RuntimeManager mgr(app, gp, mc);
  EXPECT_TRUE(mgr.budget_initialized());
  EXPECT_DOUBLE_EQ(mgr.latency_budget_ms(), 45.0);
}

TEST(Manager, ReducesJitterVersusStraightforwardMapping) {
  app::StentBoostConfig c = test_config();
  // Straightforward: serial plan every frame.
  app::StentBoostApp serial_app(c);
  std::vector<f64> serial_lat;
  for (i32 t = 0; t < 100; ++t) {
    serial_lat.push_back(serial_app.process_frame(t).latency_ms);
  }

  app::StentBoostApp managed_app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.warmup_frames = 8;
  RuntimeManager mgr(managed_app, gp, mc);
  std::vector<f64> managed_lat;
  for (i32 t = 0; t < 100; ++t) {
    ManagedFrame f = mgr.step(t);
    if (t >= 8) managed_lat.push_back(f.output_latency_ms);
  }

  // Jitter (stddev) of the delivered output must drop substantially (the
  // paper reports ~70%).
  EXPECT_LT(stddev(managed_lat), 0.5 * stddev(serial_lat));
}

TEST(Manager, PredictionsTrackMeasurements) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.warmup_frames = 5;
  RuntimeManager mgr(app, gp, mc);
  std::vector<f64> pred;
  std::vector<f64> meas;
  for (i32 t = 0; t < 100; ++t) {
    ManagedFrame f = mgr.step(t);
    if (t >= 5) {
      pred.push_back(f.predicted_latency_ms);
      meas.push_back(f.measured_latency_ms);
    }
  }
  model::AccuracyReport acc = model::evaluate_accuracy(pred, meas);
  // The forecast conservatively includes ENH+ZOOM, so accuracy is bounded
  // below by the scenario mix; it must still be clearly informative.
  EXPECT_GT(acc.mean_accuracy_pct, 60.0);
}

TEST(Manager, StripePlansOnlyWhenBudgetRequires) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.latency_budget_ms = 1000.0;  // huge budget: never parallelize
  RuntimeManager mgr(app, gp, mc);
  for (i32 t = 0; t < 20; ++t) {
    ManagedFrame f = mgr.step(t);
    EXPECT_EQ(f.plan, app::serial_plan()) << "frame " << t;
  }
}

TEST(Manager, TightBudgetForcesParallelization) {
  app::StentBoostConfig c = test_config();
  c.force_full_frame = true;  // keep the expensive full-frame tasks active
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  ManagerConfig mc;
  mc.latency_budget_ms = 30.0;  // below the serial full-frame latency
  RuntimeManager mgr(app, gp, mc);
  bool any_striped = false;
  for (i32 t = 0; t < 20; ++t) {
    ManagedFrame f = mgr.step(t);
    if (f.plan != app::serial_plan()) any_striped = true;
  }
  EXPECT_TRUE(any_striped);
}

TEST(Manager, RunReturnsAllFrames) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  RuntimeManager mgr(app, gp, ManagerConfig{});
  auto frames = mgr.run(30);
  EXPECT_EQ(frames.size(), 30u);
  for (usize i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].record.frame, static_cast<i32>(i));
  }
}

TEST(Manager, ForecastMarksActiveNodes) {
  app::StentBoostConfig c = test_config();
  app::StentBoostApp app(c);
  model::GraphPredictor gp = trained_predictor(c);
  RuntimeManager mgr(app, gp, ManagerConfig{});
  auto fc = mgr.forecast();
  ASSERT_EQ(fc.size(), static_cast<usize>(app::kNodeCount));
  // Before any frame: RDG active, no ROI → full-frame variants active.
  EXPECT_TRUE(fc[app::kRdgFull].active);
  EXPECT_FALSE(fc[app::kRdgRoi].active);
  EXPECT_TRUE(fc[app::kMkxFull].active);
  EXPECT_FALSE(fc[app::kMkxRoi].active);
  EXPECT_TRUE(fc[app::kCplsSel].active);
  EXPECT_FALSE(fc[app::kCplsSel].data_parallel);
}

}  // namespace
}  // namespace tc::rt
