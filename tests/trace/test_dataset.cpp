#include "trace/dataset.hpp"

#include <set>

#include <gtest/gtest.h>

namespace tc::trace {
namespace {

DatasetParams tiny_params() {
  DatasetParams p;
  p.sequences = 6;
  p.frames_per_sequence = 30;
  p.width = 128;
  p.height = 128;
  p.seed = 42;
  return p;
}

TEST(Dataset, ConfigVariationIsDeterministic) {
  DatasetParams p = tiny_params();
  app::StentBoostConfig a = dataset_sequence_config(p, 3);
  app::StentBoostConfig b = dataset_sequence_config(p, 3);
  EXPECT_EQ(a.sequence.seed, b.sequence.seed);
  EXPECT_EQ(a.sequence.dose_photons, b.sequence.dose_photons);
  EXPECT_EQ(a.sequence.contrast_in_frame, b.sequence.contrast_in_frame);
}

TEST(Dataset, ConfigsVaryAcrossSequences) {
  DatasetParams p = tiny_params();
  std::set<u64> seeds;
  std::set<f64> doses;
  for (i32 i = 0; i < p.sequences; ++i) {
    app::StentBoostConfig c = dataset_sequence_config(p, i);
    seeds.insert(c.sequence.seed);
    doses.insert(c.sequence.dose_photons);
  }
  EXPECT_EQ(seeds.size(), static_cast<usize>(p.sequences));
  EXPECT_EQ(doses.size(), static_cast<usize>(p.sequences));
}

TEST(Dataset, EveryFifthSequenceHasNoBolus) {
  DatasetParams p = tiny_params();
  app::StentBoostConfig c = dataset_sequence_config(p, 4);
  EXPECT_GT(c.sequence.contrast_in_frame, p.frames_per_sequence);
}

TEST(Dataset, BuildProducesRequestedShape) {
  DatasetParams p = tiny_params();
  p.sequences = 3;
  p.frames_per_sequence = 12;
  RecordedDataset d = build_dataset(p);
  ASSERT_EQ(d.sequences.size(), 3u);
  for (const auto& seq : d.sequences) {
    EXPECT_EQ(seq.size(), 12u);
  }
  EXPECT_EQ(d.total_frames(), 36u);
}

TEST(Dataset, RecordsCarryExecutedTasksAndLatency) {
  DatasetParams p = tiny_params();
  p.sequences = 1;
  p.frames_per_sequence = 10;
  RecordedDataset d = build_dataset(p);
  bool any_executed = false;
  for (const auto& rec : d.sequences[0]) {
    EXPECT_GT(rec.latency_ms, 0.0);
    EXPECT_GT(rec.roi_pixels, 0.0);
    for (const auto& t : rec.tasks) {
      if (t.executed) {
        any_executed = true;
        EXPECT_GT(t.simulated_ms, 0.0);
      }
    }
  }
  EXPECT_TRUE(any_executed);
}

TEST(Dataset, DefaultShapeMatchesPaperScale) {
  DatasetParams p;
  EXPECT_EQ(p.sequences, 37);
  // 37 x 52 = 1924 ≈ the paper's 1 921 training frames.
  EXPECT_NEAR(static_cast<f64>(p.sequences * p.frames_per_sequence), 1921.0,
              5.0);
}

}  // namespace
}  // namespace tc::trace
