#include "trace/recorder.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace tc::trace {
namespace {

std::string_view fake_node_name(i32 node) {
  static const char* names[] = {"ALPHA", "BETA"};
  return names[node];
}

std::vector<graph::FrameRecord> two_frames() {
  std::vector<graph::FrameRecord> records;
  for (i32 f = 0; f < 2; ++f) {
    graph::FrameRecord r;
    r.frame = f;
    r.scenario = static_cast<graph::ScenarioId>(f);
    r.roi_pixels = 1000.0 * (f + 1);
    r.latency_ms = 40.0 + f;
    graph::TaskExecution t0;
    t0.node = 0;
    t0.executed = true;
    t0.work.pixel_ops = 111;
    t0.simulated_ms = 10.0;
    r.tasks.push_back(t0);
    graph::TaskExecution t1;
    t1.node = 1;
    t1.executed = false;
    r.tasks.push_back(t1);
    records.push_back(std::move(r));
  }
  return records;
}

TEST(Recorder, RecordsCsvHasRowPerTask) {
  CsvWriter csv;
  auto records = two_frames();
  write_records_csv(csv, records, fake_node_name);
  // 1 header + 2 frames x 2 tasks.
  EXPECT_EQ(csv.rows_written(), 5u);
  std::string s = csv.str();
  EXPECT_NE(s.find("ALPHA"), std::string::npos);
  EXPECT_NE(s.find("BETA"), std::string::npos);
  EXPECT_NE(s.find("111"), std::string::npos);
}

TEST(Recorder, LatencyCsvHasRowPerFrame) {
  CsvWriter csv;
  auto records = two_frames();
  write_latency_csv(csv, records);
  EXPECT_EQ(csv.rows_written(), 3u);
  std::string s = csv.str();
  EXPECT_NE(s.find("latency_ms"), std::string::npos);
  EXPECT_NE(s.find("41"), std::string::npos);
}

TEST(Recorder, ExecutedFlagEncoded) {
  CsvWriter csv;
  auto records = two_frames();
  write_records_csv(csv, records, fake_node_name);
  std::istringstream is(csv.str());
  std::string line;
  std::getline(is, line);  // header
  std::getline(is, line);  // frame 0, ALPHA
  EXPECT_NE(line.find(",ALPHA,1,"), std::string::npos);
  std::getline(is, line);  // frame 0, BETA
  EXPECT_NE(line.find(",BETA,0,"), std::string::npos);
}

}  // namespace
}  // namespace tc::trace
