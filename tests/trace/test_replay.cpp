#include "trace/replay.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "app/stentboost.hpp"
#include "trace/recorder.hpp"
#include "tripleC/graph_predictor.hpp"

namespace tc::trace {
namespace {

TEST(Replay, SplitCsvLine) {
  auto cells = split_csv_line("a,b,,d");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "");
  EXPECT_EQ(cells[3], "d");
  EXPECT_EQ(split_csv_line("x").size(), 1u);
}

TEST(Replay, StentboostNodeIds) {
  EXPECT_EQ(stentboost_node_id("RDG_FULL"), app::kRdgFull);
  EXPECT_EQ(stentboost_node_id("ZOOM"), app::kZoom);
  EXPECT_EQ(stentboost_node_id("NOPE"), -1);
}

TEST(Replay, RoundTripThroughRecorder) {
  // Run a short real sequence, write it to CSV, parse it back, and compare.
  app::StentBoostConfig c = app::StentBoostConfig::make(128, 128, 20, 9);
  app::StentBoostApp app(c);
  std::vector<graph::FrameRecord> original = app.run(20);

  CsvWriter csv;
  write_records_csv(csv, original, app::node_name);
  std::istringstream in(csv.str());
  ParseResult parsed = read_records_csv(in, stentboost_node_id);

  EXPECT_EQ(parsed.skipped_lines, 0u);
  ASSERT_EQ(parsed.records.size(), original.size());
  for (usize i = 0; i < original.size(); ++i) {
    const graph::FrameRecord& a = original[i];
    const graph::FrameRecord& b = parsed.records[i];
    EXPECT_EQ(a.frame, b.frame);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_NEAR(a.roi_pixels, b.roi_pixels, 1e-3);
    EXPECT_NEAR(a.latency_ms, b.latency_ms, 1e-4);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (usize t = 0; t < a.tasks.size(); ++t) {
      EXPECT_EQ(a.tasks[t].node, b.tasks[t].node);
      EXPECT_EQ(a.tasks[t].executed, b.tasks[t].executed);
      EXPECT_EQ(a.tasks[t].work.pixel_ops, b.tasks[t].work.pixel_ops);
      EXPECT_NEAR(a.tasks[t].simulated_ms, b.tasks[t].simulated_ms, 1e-6);
    }
  }
}

TEST(Replay, ParsedTraceTrainsPredictor) {
  app::StentBoostConfig c = app::StentBoostConfig::make(128, 128, 40, 10);
  app::StentBoostApp app(c);
  std::vector<graph::FrameRecord> original = app.run(40);

  CsvWriter csv;
  write_records_csv(csv, original, app::node_name);
  std::istringstream in(csv.str());
  ParseResult parsed = read_records_csv(in, stentboost_node_id);

  std::vector<std::vector<graph::FrameRecord>> seqs{parsed.records};
  tc::model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  gp.train(seqs);
  // Predictors for tasks that executed must be trained and sane.
  EXPECT_TRUE(gp.task_predictor(app::kCplsSel).trained());
  EXPECT_GT(gp.predict_task(app::kCplsSel), 0.0);
}

TEST(Replay, MalformedLinesSkipped) {
  std::istringstream in(
      "frame,scenario,roi_pixels,task,executed,pixel_ops,feature_ops,"
      "input_bytes,intermediate_bytes,output_bytes,items,simulated_ms\n"
      "0,1,1000,RDG_FULL,1,10,0,1,2,3,0,5.5\n"
      "not,a,valid,line\n"
      "1,1,1000,UNKNOWN_TASK,1,10,0,1,2,3,0,5.5\n"
      "1,1,1000,ZOOM,1,10,0,1,2,3,0,2.5\n");
  ParseResult parsed = read_records_csv(in, stentboost_node_id);
  EXPECT_EQ(parsed.skipped_lines, 2u);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0].frame, 0);
  EXPECT_EQ(parsed.records[0].tasks.size(), 1u);
  EXPECT_NEAR(parsed.records[1].latency_ms, 2.5, 1e-9);
}

TEST(Replay, EmptyStream) {
  std::istringstream in("");
  ParseResult parsed = read_records_csv(in, stentboost_node_id);
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_EQ(parsed.skipped_lines, 0u);
}

}  // namespace
}  // namespace tc::trace
