#include "graph/scenario.hpp"

#include <gtest/gtest.h>

namespace tc::graph {
namespace {

TEST(Scenario, CountIsPowerOfTwo) {
  EXPECT_EQ(scenario_count(0), 1u);
  EXPECT_EQ(scenario_count(3), 8u);
  EXPECT_EQ(scenario_count(5), 32u);
}

TEST(Scenario, LabelFormat) {
  std::vector<std::string> names{"RDG", "ROI", "REG"};
  EXPECT_EQ(scenario_label(0b101, names), "RDG=1 ROI=0 REG=1");
  EXPECT_EQ(scenario_label(0, names), "RDG=0 ROI=0 REG=0");
}

TEST(ScenarioHistogram, CountsAndProbabilities) {
  ScenarioHistogram h(3);
  h.add(0);
  h.add(0);
  h.add(5);
  h.add(7);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.probability(0), 0.5);
  EXPECT_DOUBLE_EQ(h.probability(5), 0.25);
  EXPECT_DOUBLE_EQ(h.probability(3), 0.0);
}

TEST(ScenarioHistogram, EmptyProbabilityIsZero) {
  ScenarioHistogram h(2);
  EXPECT_DOUBLE_EQ(h.probability(0), 0.0);
}

TEST(ScenarioTransitions, ProbabilitiesNormalizePerRow) {
  ScenarioTransitions t(2);
  t.add(0, 1);
  t.add(0, 1);
  t.add(0, 2);
  f64 sum = 0.0;
  for (ScenarioId j = 0; j < 4; ++j) sum += t.probability(0, j);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(t.probability(0, 1), 2.0 / 3.0, 1e-12);
}

TEST(ScenarioTransitions, UnseenRowIsUniform) {
  ScenarioTransitions t(2);
  for (ScenarioId j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(t.probability(3, j), 0.25);
  }
}

TEST(ScenarioTransitions, MostLikelyNext) {
  ScenarioTransitions t(2);
  t.add(1, 3);
  t.add(1, 3);
  t.add(1, 0);
  EXPECT_EQ(t.most_likely_next(1), 3u);
}

TEST(ScenarioTransitions, MostLikelyNextOfUnseenIsSelf) {
  ScenarioTransitions t(3);
  EXPECT_EQ(t.most_likely_next(5), 5u);
}

TEST(ScenarioTransitions, PersistenceDominates) {
  // Scenarios that persist (heavy diagonal) predict themselves.
  ScenarioTransitions t(3);
  for (i32 i = 0; i < 10; ++i) t.add(2, 2);
  t.add(2, 6);
  EXPECT_EQ(t.most_likely_next(2), 2u);
}

}  // namespace
}  // namespace tc::graph
