#include "graph/flowgraph.hpp"

#include <gtest/gtest.h>

namespace tc::graph {
namespace {

std::unique_ptr<Task> counting_task(std::string name, i32* counter,
                                    u64 ops = 10) {
  return make_task(std::move(name), false, [counter, ops] {
    ++*counter;
    img::WorkReport w;
    w.pixel_ops = ops;
    return w;
  });
}

TEST(FlowGraph, RunsTasksInTopologicalOrder) {
  FlowGraph g;
  std::vector<std::string> order;
  auto tracked = [&order](std::string name) {
    return make_task(name, false, [&order, name] {
      order.push_back(name);
      return img::WorkReport{};
    });
  };
  i32 c = g.add_task(tracked("C"));
  i32 a = g.add_task(tracked("A"));
  i32 b = g.add_task(tracked("B"));
  g.add_edge(a, b, [] { return u64{0}; });
  g.add_edge(b, c, [] { return u64{0}; });
  (void)g.run_frame(0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "A");
  EXPECT_EQ(order[1], "B");
  EXPECT_EQ(order[2], "C");
}

TEST(FlowGraph, CycleDetection) {
  FlowGraph g;
  i32 counter = 0;
  i32 a = g.add_task(counting_task("A", &counter));
  i32 b = g.add_task(counting_task("B", &counter));
  g.add_edge(a, b, [] { return u64{0}; });
  g.add_edge(b, a, [] { return u64{0}; });
  EXPECT_THROW((void)g.topological_order(), std::logic_error);
}

TEST(FlowGraph, EdgeOutOfRangeThrows) {
  FlowGraph g;
  i32 counter = 0;
  i32 a = g.add_task(counting_task("A", &counter));
  EXPECT_THROW(g.add_edge(a, 5, [] { return u64{0}; }), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, a, [] { return u64{0}; }), std::out_of_range);
}

TEST(FlowGraph, NullBytesPerFrameThrows) {
  FlowGraph g;
  i32 counter = 0;
  i32 a = g.add_task(counting_task("A", &counter));
  i32 b = g.add_task(counting_task("B", &counter));
  EXPECT_THROW(g.add_edge(a, b, std::function<u64()>{}),
               std::invalid_argument);
  EXPECT_EQ(g.edge_count(), 0u);  // the malformed edge was not stored
}

TEST(FlowGraphDeathTest, TaskIndexOutOfRangeAssertsInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "bounds assertions compile out in release builds";
#else
  FlowGraph g;
  i32 counter = 0;
  (void)g.add_task(counting_task("A", &counter));
  EXPECT_DEATH((void)g.task(7), "out of range");
  EXPECT_DEATH((void)g.task(-1), "out of range");
#endif
}

TEST(FlowGraphDeathTest, SwitchIndexOutOfRangeAssertsInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "bounds assertions compile out in release builds";
#else
  FlowGraph g;
  (void)g.add_switch("SW", [] { return true; });
  EXPECT_DEATH((void)g.switch_value(3), "out of range");
#endif
}

TEST(FlowGraph, GuardSkipsTask) {
  FlowGraph g;
  bool enabled = false;
  i32 counter = 0;
  (void)g.add_task(counting_task("A", &counter),
                   [&enabled](FlowGraph&) { return enabled; });
  FrameRecord r0 = g.run_frame(0);
  EXPECT_EQ(counter, 0);
  EXPECT_FALSE(r0.tasks[0].executed);
  enabled = true;
  FrameRecord r1 = g.run_frame(1);
  EXPECT_EQ(counter, 1);
  EXPECT_TRUE(r1.tasks[0].executed);
}

TEST(FlowGraph, TaskReturningNulloptRecordedAsSkipped) {
  FlowGraph g;
  (void)g.add_task(make_task("skip", false,
                             [] { return std::optional<img::WorkReport>{}; }));
  FrameRecord r = g.run_frame(0);
  EXPECT_FALSE(r.tasks[0].executed);
}

TEST(FlowGraph, ScenarioIdFromSwitches) {
  FlowGraph g;
  bool s0 = true;
  bool s1 = false;
  bool s2 = true;
  (void)g.add_switch("S0", [&] { return s0; });
  (void)g.add_switch("S1", [&] { return s1; });
  (void)g.add_switch("S2", [&] { return s2; });
  FrameRecord r = g.run_frame(0);
  EXPECT_EQ(r.scenario, 0b101u);
  s1 = true;
  s2 = false;
  EXPECT_EQ(g.run_frame(1).scenario, 0b011u);
}

TEST(FlowGraph, SwitchEvaluatedLazilyAndCachedPerFrame) {
  FlowGraph g;
  i32 evaluations = 0;
  bool value = false;
  i32 sw = g.add_switch("S", [&] {
    ++evaluations;
    return value;
  });
  i32 counter = 0;
  // Task A runs first and flips `value`; task B's guard reads the switch.
  i32 a = g.add_task(make_task("A", false, [&] {
    value = true;
    return img::WorkReport{};
  }));
  i32 b = g.add_task(counting_task("B", &counter),
                     [sw](FlowGraph& fg) { return fg.switch_value(sw); });
  g.add_edge(a, b, [] { return u64{0}; });

  FrameRecord r = g.run_frame(0);
  // The guard evaluated the switch after A ran → true; B executed.
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(r.scenario, 1u);
  EXPECT_EQ(evaluations, 1);  // cached for the scenario id
}

TEST(FlowGraph, UnqueriedSwitchStillInScenario) {
  FlowGraph g;
  (void)g.add_switch("S", [] { return true; });
  FrameRecord r = g.run_frame(0);
  EXPECT_EQ(r.scenario, 1u);
}

TEST(FlowGraph, WorkReportStoredInRecord) {
  FlowGraph g;
  i32 counter = 0;
  (void)g.add_task(counting_task("A", &counter, 1234));
  FrameRecord r = g.run_frame(0);
  ASSERT_TRUE(r.tasks[0].executed);
  EXPECT_EQ(r.tasks[0].work.pixel_ops, 1234u);
}

TEST(FlowGraph, EdgeBytesCallable) {
  FlowGraph g;
  i32 counter = 0;
  i32 a = g.add_task(counting_task("A", &counter));
  i32 b = g.add_task(counting_task("B", &counter));
  u64 bytes = 100;
  g.add_edge(a, b, [&bytes] { return bytes; });
  EXPECT_EQ(g.edges()[0].bytes_per_frame(), 100u);
  bytes = 200;
  EXPECT_EQ(g.edges()[0].bytes_per_frame(), 200u);
}

TEST(FlowGraph, FrameRecordFindLocatesTask) {
  FlowGraph g;
  i32 counter = 0;
  i32 a = g.add_task(counting_task("A", &counter));
  FrameRecord r = g.run_frame(3);
  EXPECT_EQ(r.frame, 3);
  ASSERT_NE(r.find(a), nullptr);
  EXPECT_EQ(r.find(a)->node, a);
  EXPECT_EQ(r.find(99), nullptr);
}

TEST(FlowGraph, IndependentTasksKeepInsertionOrder) {
  FlowGraph g;
  std::vector<std::string> order;
  auto tracked = [&order](std::string name) {
    return make_task(name, false, [&order, name] {
      order.push_back(name);
      return img::WorkReport{};
    });
  };
  (void)g.add_task(tracked("X"));
  (void)g.add_task(tracked("Y"));
  (void)g.run_frame(0);
  EXPECT_EQ(order[0], "X");
  EXPECT_EQ(order[1], "Y");
}

}  // namespace
}  // namespace tc::graph
