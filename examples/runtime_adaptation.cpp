// Runtime adaptation demo: the Triple-C-driven resource manager keeping the
// output latency constant while the scenario mix changes (contrast bolus
// arriving mid-sequence, marker dropouts, ROI acquisition/loss).
//
// Shows per-frame: the active scenario, the plan the manager chose, the
// prediction, the compute latency and the delivered output latency.
//
// Usage: runtime_adaptation [frames] [width]

#include <cstdio>
#include <cstdlib>

#include "app/stentboost.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "graph/scenario.hpp"
#include "runtime/manager.hpp"
#include "trace/dataset.hpp"
#include "tripleC/graph_predictor.hpp"

using namespace tc;

namespace {

/// The Table-2(b) predictor configuration (same as the benches).
void configure(model::GraphPredictor& gp) {
  using model::PredictorConfig;
  using model::PredictorKind;
  auto cfg = [](PredictorKind kind) {
    PredictorConfig c;
    c.kind = kind;
    return c;
  };
  gp.configure_task(app::kRdgFull, cfg(PredictorKind::EwmaMarkov));
  gp.configure_task(app::kRdgRoi, cfg(PredictorKind::LinearMarkov));
  gp.configure_task(app::kMkxFull, cfg(PredictorKind::Constant));
  gp.configure_task(app::kMkxRoi, cfg(PredictorKind::LinearMarkov));
  gp.configure_task(app::kCplsSel, cfg(PredictorKind::EwmaMarkov));
  gp.configure_task(app::kReg, cfg(PredictorKind::Constant));
  gp.configure_task(app::kRoiEst, cfg(PredictorKind::Constant));
  gp.configure_task(app::kGwExt, cfg(PredictorKind::EwmaMarkov));
  gp.configure_task(app::kEnh, cfg(PredictorKind::EwmaMarkov));
  gp.configure_task(app::kZoom, cfg(PredictorKind::Constant));
  gp.set_context_fn([](const graph::FrameRecord* prev, i32 node) -> u32 {
    if (node == app::kEnh) {
      return (prev != nullptr && ((prev->scenario >> app::kSwReg) & 1u) != 0)
                 ? 1u
                 : 0u;
    }
    return 0u;
  });
}

}  // namespace

int main(int argc, char** argv) {
  const i32 frames = argc > 1 ? std::atoi(argv[1]) : 120;
  const i32 size = argc > 2 ? std::atoi(argv[2]) : 256;

  std::printf("training the Triple-C predictors on 6 short sequences...\n");
  trace::DatasetParams tp;
  tp.sequences = 6;
  tp.frames_per_sequence = 52;
  tp.width = size;
  tp.height = size;
  trace::RecordedDataset dataset = trace::build_dataset(tp);
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  configure(gp);
  gp.train(dataset.sequences);

  app::StentBoostConfig c = app::StentBoostConfig::make(size, size, frames, 99);
  c.sequence.contrast_in_frame = frames / 3;
  c.sequence.contrast_out_frame = (4 * frames) / 5;
  c.sequence.marker_dropout_prob = 0.03;
  app::StentBoostApp app(c);
  rt::RuntimeManager mgr(app, gp, rt::ManagerConfig{});

  std::printf("\n%5s %-20s %-22s %8s %8s %8s\n", "frame", "scenario", "plan",
              "pred", "compute", "output");
  std::vector<std::string> names = app.graph().switch_names();
  std::vector<f64> outputs;
  std::vector<f64> computes;
  for (i32 t = 0; t < frames; ++t) {
    rt::ManagedFrame f = mgr.step(t);
    outputs.push_back(f.output_latency_ms);
    computes.push_back(f.measured_latency_ms);
    if (t % 5 == 0) {
      std::printf("%5d %-20s %-22s %8.1f %8.1f %8.1f\n", t,
                  graph::scenario_label(f.record.scenario, names).c_str(),
                  rt::plan_to_string(f.plan).c_str(), f.predicted_latency_ms,
                  f.measured_latency_ms, f.output_latency_ms);
    }
  }

  std::printf("\nlatency budget: %.1f ms\n", mgr.latency_budget_ms());
  std::printf("compute latency: mean %.1f ms, sigma %.2f\n", mean(computes),
              stddev(computes));
  std::printf("output latency:  mean %.1f ms, sigma %.2f (held constant by "
              "the delay line + repartitioning)\n",
              mean(outputs), stddev(outputs));

  std::vector<AsciiSeries> series{
      {"compute latency", computes, '*'},
      {"output latency", outputs, 'o'},
  };
  AsciiPlotOptions opt;
  opt.title = "runtime adaptation: latency vs frame";
  opt.x_label = "frame ->";
  std::printf("\n%s", render_ascii_plot(series, opt).c_str());
  return 0;
}
