// Parallel execution quickstart — the concurrent executor running the
// StentBoost graph for real, with live repartitioning and the full
// diagnostics stack (flight recorder, drift/SLO monitors, post-mortems).
//
// The exec::Executor predicts each frame's host latency (per-node EWMA +
// frame-level Markov correction), picks a stripe plan that fits the
// deadline, runs the frame on its worker pool, and feeds the measured times
// back.  Scenario dynamics (ridge detection switching off, the pipeline
// entering ROI mode) move the prediction across the plan boundary, so the
// plan changes live — every repartition is visible as an "exec_repartition"
// instant event in the exported Chrome trace (chrome://tracing or
// https://ui.perfetto.dev).
//
// On top of that, this run injects a load spike (a synthetic co-scheduled
// interferer burning extra wall-clock milliseconds for a few frames mid-run)
// that the predictors could not have seen coming.  The spiked frames miss
// the deadline, the drift monitor notices the prediction error jump, and the
// executor drops a post-mortem bundle — render it with
//
//   tools/triplec_postmortem parallel_run_postmortems/postmortem_*.json
//
// Outputs: parallel_run_trace.json, parallel_run_metrics.prom,
//          parallel_run_postmortems/*.json

#include <cstdio>
#include <string>

#include "exec/executor.hpp"
#include "obs/obs.hpp"

using namespace tc;

int main() {
  obs::set_enabled(true);

  app::StentBoostConfig config =
      app::StentBoostConfig::make(/*width=*/256, /*height=*/256,
                                  /*frames=*/100, /*seed=*/21);

  exec::ExecutorConfig exec_config;
  exec_config.worker_threads = 4;
  exec_config.warmup_frames = 8;       // derive the deadline from these
  exec_config.deadline_headroom = 1.1; // tight: scenario swings force replans
  exec_config.policy = exec::DeadlinePolicy::Degrade;
  // Diagnostics: drift + SLO monitoring, bundles into a local directory.
  exec_config.diagnostics.enabled = true;
  exec_config.diagnostics.postmortem.directory = "parallel_run_postmortems";
  exec_config.diagnostics.postmortem.max_events = 512;
  // The injected interferer: frames 60..63 each lose 12 ms of wall clock to
  // a "co-scheduled" busy loop the predictors never observe in training.
  exec_config.load_spike.start_frame = 60;
  exec_config.load_spike.frames = 4;
  exec_config.load_spike.busy_ms = 12.0;
  exec::Executor executor(std::move(config), exec_config);

  std::printf("running 100 frames on %d workers (load spike at frames "
              "60..63)...\n",
              exec_config.worker_threads);
  const std::vector<exec::ExecutedFrame> frames = executor.run(100);

  std::printf("\n%6s %8s %10s %10s %6s %7s %s\n", "frame", "scen",
              "pred ms", "meas ms", "qual", "replan", "plan");
  for (const exec::ExecutedFrame& f : frames) {
    if (!f.repartitioned && !f.deadline_miss && f.frame % 10 != 0) {
      continue;  // keep it short
    }
    std::printf("%6d %8u %10.2f %10.2f %6d %7s %s%s\n", f.frame, f.scenario,
                f.predicted_host_ms, f.measured_host_ms, f.quality_level,
                f.repartitioned ? "yes" : "",
                rt::plan_to_string(f.plan).c_str(),
                f.deadline_miss ? "  << MISS" : "");
  }

  const exec::ExecutorStats stats = executor.stats();
  std::printf("\nframes=%d managed=%d misses=%d degraded=%d repartitions=%d\n",
              stats.frames, stats.managed_frames, stats.deadline_misses,
              stats.degraded_frames, stats.repartitions);
  std::printf("drift_alerts=%d slo_breaches=%d retrains=%d postmortems=%d\n",
              stats.drift_alerts, stats.slo_breaches, stats.retrains,
              stats.postmortems);
  std::printf("deadline=%.2f ms, mean measured=%.2f ms\n",
              executor.deadline_ms(), stats.mean_measured_ms);
  std::printf("flight recorder: %zu live events on %zu threads\n",
              obs::global().flight.size(), obs::global().flight.thread_count());
  if (executor.postmortem_writer() != nullptr &&
      !executor.postmortem_writer()->last_path().empty()) {
    std::printf("last post-mortem bundle: %s\n",
                executor.postmortem_writer()->last_path().c_str());
  }

  obs::ObsContext& ctx = obs::global();
  if (obs::write_text_file("parallel_run_trace.json",
                           ctx.tracer.to_chrome_json())) {
    std::printf("\nwrote parallel_run_trace.json (%zu events) — open in "
                "chrome://tracing\n",
                ctx.tracer.size());
  }
  if (obs::write_text_file("parallel_run_metrics.prom",
                           obs::to_prometheus(ctx.metrics))) {
    std::printf("wrote parallel_run_metrics.prom\n");
  }

  if (stats.repartitions == 0) {
    std::printf("warning: no live repartition happened this run\n");
    return 1;
  }
  if (stats.postmortems == 0) {
    std::printf("warning: the load spike produced no post-mortem bundle\n");
    return 1;
  }
  return 0;
}
