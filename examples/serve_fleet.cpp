// Multi-stream serving quickstart — one shared runtime serving a small
// fleet of fluoroscopy streams with prediction-driven admission control,
// weighted-fair scheduling, and warm-started predictors.
//
// Four streams are submitted against a single worker pool:
//
//   * "or_1"  — interventional suite, tight deadline, double weight;
//   * "or_2"  — same class as or_1 (admitted second, so it warm-starts
//               from the predictor registry once or_1 publishes — in this
//               single batch it shares the class key but both start cold);
//   * "review" — offline review stream, relaxed deadline, half weight;
//   * "kiosk" — an absurd 0.5 ms deadline no plan can meet: the admission
//               controller must reject it up front.
//
// After drain(), a fifth stream of or_1's class is submitted: it finds the
// retired streams' published predictor stack in the registry, skips the
// cold-start probe, and its early frames are already calibrated.
//
// Outputs: serve_fleet_metrics.prom (fleet gauges + per-stream SLOs).
//
// Live telemetry: `--telemetry-port N` starts the in-process HTTP ops
// endpoint (obs/telemetry_server) on port N (0 = ephemeral; the bound port
// is printed), and `--linger-ms M` keeps the process alive that long after
// the fleet finishes so scrapers (curl, triplec_top, CI smoke) can read
// /metrics, /streams, /ledger, /flight and /trace against a live process.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/exporters.hpp"
#include "obs/obs.hpp"
#include "serve/stream_server.hpp"

using namespace tc;

namespace {

serve::StreamConfig make_stream(const char* name, i32 size, f64 deadline_ms,
                                f64 weight, u64 seed) {
  serve::StreamConfig stream;
  stream.app = app::StentBoostConfig::make(size, size, /*frames=*/48, seed);
  stream.name = name;
  stream.deadline_ms = deadline_ms;
  stream.weight = weight;
  stream.frames = 48;
  return stream;
}

void print_stream(const serve::StreamReport& s) {
  if (!s.served) {
    std::printf("  %-8s %-7s %s\n", s.name.c_str(),
                serve::to_string(s.decision.verdict),
                s.decision.reason.c_str());
    return;
  }
  std::printf("  %-8s %-7s w=%.1f%s  frames=%d  p50 %6.2f  p99 %6.2f / "
              "%.2f ms  miss %4.1f%%  degraded=%d  early APE %.1f%%\n",
              s.name.c_str(), serve::to_string(s.decision.verdict), s.weight,
              s.warm_started ? " (warm)" : "", s.frames, s.p50_ms, s.p99_ms,
              s.deadline_ms, 100.0 * s.miss_rate, s.degraded_frames,
              s.early_ape_pct);
}

}  // namespace

int main(int argc, char** argv) {
  obs::set_enabled(true);

  i32 telemetry_port = -1;  // < 0 = telemetry off
  i32 linger_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry-port") == 0 && i + 1 < argc) {
      telemetry_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--linger-ms") == 0 && i + 1 < argc) {
      linger_ms = std::atoi(argv[++i]);
    } else {
      std::printf("usage: serve_fleet [--telemetry-port N] [--linger-ms M]\n");
      return 2;
    }
  }

  // Calibrate a realistic deadline from a two-frame serial probe.
  f64 frame_ms = 0.0;
  {
    app::StentBoostApp probe(
        app::StentBoostConfig::make(192, 192, /*frames=*/4, /*seed=*/3));
    for (i32 t = 0; t < 4; ++t) {
      for (const graph::TaskExecution& exec : probe.process_frame(t).tasks) {
        if (exec.executed) frame_ms += exec.host_ms;
      }
    }
    frame_ms /= 4.0;
  }
  const f64 tight = frame_ms * 1.4;
  const f64 relaxed = frame_ms * 2.5;

  serve::ServeConfig sc;
  sc.pool_threads = 4;
  sc.max_concurrent_streams = 4;
  if (telemetry_port >= 0) {
    sc.telemetry.enabled = true;
    sc.telemetry.port = telemetry_port;
  }
  serve::StreamServer server(sc);
  if (server.telemetry() != nullptr && server.telemetry()->running()) {
    std::printf("telemetry: http://127.0.0.1:%d (/metrics /streams /ledger "
                "/flight /trace)\n",
                server.telemetry()->port());
    std::fflush(stdout);
  }

  std::printf("submitting 4 streams (serial frame ~%.2f ms, pool=4)...\n",
              frame_ms);
  (void)server.submit(make_stream("or_1", 192, tight, 2.0, /*seed=*/11));
  (void)server.submit(make_stream("or_2", 192, tight, 2.0, /*seed=*/12));
  (void)server.submit(make_stream("review", 192, relaxed, 0.5, /*seed=*/13));
  (void)server.submit(make_stream("kiosk", 192, /*deadline=*/0.5, 1.0,
                                  /*seed=*/14));

  server.drain();

  std::printf("\nfirst batch:\n");
  for (const serve::StreamReport& s : server.reports()) print_stream(s);

  // A follow-up stream of the same class warm-starts from the registry.
  std::printf("\nsubmitting a warm follow-up of or_1's class...\n");
  const i32 warm_id =
      server.submit(make_stream("or_3", 192, tight, 2.0, /*seed=*/15));
  server.drain();
  print_stream(server.report(warm_id));

  const serve::FleetReport fleet = server.fleet();
  std::printf("\nfleet: submitted=%d admitted=%d queued=%d rejected=%d  "
              "frames=%llu  p50 %.2f  p99 %.2f  miss %.1f%%\n",
              fleet.submitted, fleet.admitted, fleet.queued, fleet.rejected,
              static_cast<unsigned long long>(fleet.frames), fleet.p50_ms,
              fleet.p99_ms, 100.0 * fleet.miss_rate);
  std::printf("admission: capacity %.2f cores, peak committed %.2f cores\n",
              fleet.capacity_cores, fleet.peak_committed_cores);
  std::printf("registry: %llu publishes, %llu warm hits\n",
              static_cast<unsigned long long>(fleet.registry_publishes),
              static_cast<unsigned long long>(fleet.registry_hits));

  if (obs::write_text_file("serve_fleet_metrics.prom",
                           obs::to_prometheus(obs::global().metrics))) {
    std::printf("\nwrote serve_fleet_metrics.prom\n");
  }

  if (fleet.rejected == 0) {
    std::printf("warning: the infeasible stream was not rejected\n");
    return 1;
  }
  if (!server.report(warm_id).warm_started) {
    std::printf("warning: follow-up stream did not warm-start\n");
    return 1;
  }
  if (linger_ms > 0) {
    std::printf("lingering %d ms for scrapers...\n", linger_ms);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  return 0;
}
