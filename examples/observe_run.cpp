// End-to-end observability demo: run the StentBoost clip under the runtime
// manager with the observability layer enabled, then export
//   * trace.json    — Chrome trace-event timeline (open in chrome://tracing
//                     or https://ui.perfetto.dev): frame/task/stripe spans on
//                     the simulated platform, wall-clock spans on the host;
//   * metrics.prom  — Prometheus text exposition of every tripleC_* metric;
//   * metrics.csv   — one row per frame (predicted/measured/output latency,
//                     prediction-error percent, plan width, QoS level);
// and print the ASCII latency dashboard.

#include <cstdio>

#include "obs/obs.hpp"
#include "runtime/manager.hpp"
#include "trace/dataset.hpp"
#include "tripleC/accuracy.hpp"
#include "tripleC/bandwidth_model.hpp"

using namespace tc;

namespace {

// The paper-kind predictor configuration (Table 2b) — same setup as the
// benches.
void configure_paper_kinds(model::GraphPredictor& gp) {
  using model::PredictorConfig;
  using model::PredictorKind;
  auto cfg = [](PredictorKind kind) {
    PredictorConfig c;
    c.kind = kind;
    return c;
  };
  gp.configure_task(app::kRdgFull, cfg(PredictorKind::EwmaMarkov));
  gp.configure_task(app::kRdgRoi, cfg(PredictorKind::LinearMarkov));
  gp.configure_task(app::kMkxFull, cfg(PredictorKind::Constant));
  gp.configure_task(app::kMkxRoi, cfg(PredictorKind::LinearMarkov));
  gp.configure_task(app::kCplsSel, cfg(PredictorKind::EwmaMarkov));
  gp.configure_task(app::kReg, cfg(PredictorKind::Constant));
  gp.configure_task(app::kRoiEst, cfg(PredictorKind::Constant));
  gp.configure_task(app::kGwExt, cfg(PredictorKind::EwmaMarkov));
  gp.configure_task(app::kEnh, cfg(PredictorKind::EwmaMarkov));
  gp.configure_task(app::kZoom, cfg(PredictorKind::Constant));
  gp.set_context_fn([](const graph::FrameRecord* prev, i32 node) -> u32 {
    if (node == app::kEnh) {
      return (prev != nullptr && ((prev->scenario >> app::kSwReg) & 1u) != 0)
                 ? 1u
                 : 0u;
    }
    return 0u;
  });
}

}  // namespace

int main() {
  std::printf("observe_run: StentBoost under the runtime manager with the\n"
              "observability layer enabled\n\n");

  // Offline training, done before enabling observability so the exported
  // metrics describe only the managed run.
  trace::DatasetParams tp;
  tp.sequences = 6;
  tp.frames_per_sequence = 48;
  tp.width = 256;
  tp.height = 256;
  trace::RecordedDataset dataset = trace::build_dataset(tp);
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  configure_paper_kinds(gp);
  gp.train(dataset.sequences);

  obs::set_enabled(true);
  obs::global().clear();

  // A 160-frame test clip with a contrast bolus and marker dropouts, run
  // under the manager with QoS enabled.
  app::StentBoostConfig config = app::StentBoostConfig::make(256, 256, 160, 99);
  config.sequence.contrast_in_frame = 50;
  config.sequence.contrast_out_frame = 120;
  config.sequence.marker_dropout_prob = 0.03;
  plat::ThreadPool pool(4);
  app::StentBoostApp app(config, &pool);

  rt::ManagerConfig mc;
  mc.warmup_frames = 10;
  mc.budget_headroom = 1.0;
  mc.max_stripes_per_task = 2;
  mc.enable_qos = true;
  rt::RuntimeManager mgr(app, gp, mc);

  const i32 frames = 160;
  std::vector<f64> predicted;
  std::vector<f64> measured;
  for (i32 t = 0; t < frames; ++t) {
    rt::ManagedFrame f = mgr.step(t);
    if (t >= mc.warmup_frames) {
      predicted.push_back(f.predicted_latency_ms);
      measured.push_back(f.measured_latency_ms);
    }
  }

  // Feed the bandwidth gauges and the accuracy gauges.
  (void)model::intertask_bandwidth(app.graph(), 30.0,
                                   config.cost.resolution_scale);
  model::AccuracyReport acc = model::evaluate_accuracy(predicted, measured);
  std::printf("managed run: %d frames, budget %.1f ms\n", frames,
              mgr.latency_budget_ms());
  std::printf("prediction vs measured: %s\n\n", model::to_string(acc).c_str());

  // ---- exports -----------------------------------------------------------
  obs::ObsContext& ctx = obs::global();
  const std::string trace_json = ctx.tracer.to_chrome_json();
  const std::string prom = obs::to_prometheus(ctx.metrics);
  const std::string csv = obs::frame_log_csv(ctx.frames);
  bool ok = obs::write_text_file("trace.json", trace_json) &&
            obs::write_text_file("metrics.prom", prom) &&
            obs::write_text_file("metrics.csv", csv);
  if (!ok) {
    std::fprintf(stderr, "failed to write export files\n");
    return 1;
  }
  std::printf("wrote trace.json   (%zu span events; load in Perfetto)\n",
              ctx.tracer.size());
  std::printf("wrote metrics.prom (%zu instruments)\n", ctx.metrics.size());
  std::printf("wrote metrics.csv  (%zu frame rows)\n\n", ctx.frames.size());

  std::printf("%s\n", obs::render_dashboard(ctx.metrics, ctx.frames).c_str());
  return 0;
}
