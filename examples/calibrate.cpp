// Calibration probe: prints the raw signal statistics the detection
// thresholds are tuned against — DoG darkness scores at the markers vs. the
// noise floor, ridge response on vessels/wire vs. noise, and the dominant-
// structure pixel counts with and without a contrast bolus.
//
// Useful when adapting the pipeline to a different synthetic workload.
//
// Usage: calibrate [width]

#include <cstdio>
#include <cstdlib>

#include "app/stentboost.hpp"
#include "common/stats.hpp"

using namespace tc;

namespace {

void probe_frame(const app::StentBoostConfig& config, i32 t,
                 const char* label) {
  img::AngioSequence seq(config.sequence);
  img::ImageU16 raw = seq.render(t);
  img::ImageF32 frame = img::to_f32(raw);
  img::FrameTruth truth = seq.truth(t);
  Rect full{0, 0, frame.width(), frame.height()};

  img::RidgeResult ridge = img::ridge_detect(frame, full, config.ridge);
  img::MarkerResult markers =
      img::extract_markers(frame, full, config.markers, &ridge);
  img::MarkerResult markers_raw =
      img::extract_markers(frame, full, config.markers, nullptr);

  // Ridge-response distribution.
  std::vector<f64> resp;
  resp.reserve(ridge.response.size());
  for (usize i = 0; i < ridge.response.size(); ++i) {
    resp.push_back(static_cast<f64>(ridge.response.data()[i]));
  }
  std::printf("--- %s (frame %d, contrast=%.2f, markers %s)\n", label, t,
              truth.contrast_level, truth.markers_visible ? "visible" : "HIDDEN");
  std::printf("ridge response: p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f max=%.1f\n",
              percentile(resp, 50), percentile(resp, 90), percentile(resp, 99),
              percentile(resp, 99.9), max_of(resp));
  std::printf("dominant pixels (thr=%.0f): %llu   (config.dominant_low=%llu)\n",
              static_cast<f64>(config.ridge.dominant_threshold),
              static_cast<unsigned long long>(ridge.dominant_pixels),
              static_cast<unsigned long long>(config.dominant_low));

  auto dump_markers = [&](const img::MarkerResult& m, const char* tag) {
    std::printf("%s: %zu candidates (thr=%.0f): ", tag, m.candidates.size(),
                static_cast<f64>(config.markers.detect_threshold));
    for (usize i = 0; i < std::min<usize>(m.candidates.size(), 8); ++i) {
      f64 da = std::hypot(m.candidates[i].position.x - truth.marker_a.x,
                          m.candidates[i].position.y - truth.marker_a.y);
      f64 db = std::hypot(m.candidates[i].position.x - truth.marker_b.x,
                          m.candidates[i].position.y - truth.marker_b.y);
      std::printf("%.0f@(%.0f,%.0f,d=%.1f) ", m.candidates[i].score,
                  m.candidates[i].position.x, m.candidates[i].position.y,
                  std::min(da, db));
    }
    std::printf("\n");
  };
  dump_markers(markers, "MKX with ridge   ");
  dump_markers(markers_raw, "MKX without ridge");

  img::CoupleResult couple = img::select_couple(markers.candidates,
                                                config.couples);
  if (couple.best.has_value()) {
    f64 err_a = std::min(
        std::hypot(couple.best->a.x - truth.marker_a.x,
                   couple.best->a.y - truth.marker_a.y),
        std::hypot(couple.best->a.x - truth.marker_b.x,
                   couple.best->a.y - truth.marker_b.y));
    std::printf("couple: dist=%.1f (prior %.1f) err_a=%.2fpx pairs=%llu\n",
                couple.best->distance(), config.couples.prior_distance, err_a,
                static_cast<unsigned long long>(couple.pairs_considered));
    img::GuideWireResult gw =
        img::extract_guidewire(ridge, *couple.best, config.guidewire);
    std::printf("guidewire: found=%d mean_ridgeness=%.1f (min %.0f) iters=%d\n",
                gw.found ? 1 : 0, gw.mean_ridgeness,
                static_cast<f64>(config.guidewire.min_ridgeness),
                gw.iterations);
  } else {
    std::printf("couple: NONE (pairs=%llu)\n",
                static_cast<unsigned long long>(couple.pairs_considered));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const i32 size = argc > 1 ? std::atoi(argv[1]) : 256;
  app::StentBoostConfig config =
      app::StentBoostConfig::make(size, size, 200, 42);
  std::printf("calibration at %dx%d, decimation=%d blob_sigma=%.2f bg_sigma=%.2f\n\n",
              size, size, config.markers.decimation, config.markers.blob_sigma,
              config.markers.background_sigma);
  probe_frame(config, 5, "pre-bolus (no contrast)");
  probe_frame(config, 60, "bolus plateau (full contrast)");
  probe_frame(config, 190, "post-washout");
  return 0;
}
