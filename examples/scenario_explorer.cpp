// Scenario explorer: enumerate the 2^3 = 8 application scenarios of the
// Fig. 2 flow graph, show which tasks each scenario activates, and measure
// each scenario's empirical frequency, mean latency and resource profile on
// a synthetic sequence — the information a system integrator would use to
// dimension the platform (paper §5.2).
//
// Usage: scenario_explorer [frames] [width]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "app/stentboost.hpp"
#include "common/stats.hpp"
#include "graph/scenario.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const i32 frames = argc > 1 ? std::atoi(argv[1]) : 250;
  const i32 size = argc > 2 ? std::atoi(argv[2]) : 256;

  // A sequence engineered to visit many scenarios: a bolus in the middle,
  // noticeable dropout, and washout near the end.
  app::StentBoostConfig c = app::StentBoostConfig::make(size, size, frames, 5);
  c.sequence.contrast_in_frame = frames / 4;
  c.sequence.contrast_out_frame = (2 * frames) / 3;
  c.sequence.marker_dropout_prob = 0.05;
  app::StentBoostApp app(c);

  // Static view: which tasks belong to each scenario.
  std::printf("scenario -> active tasks (static structure of Fig. 2):\n");
  std::vector<std::string> names = app.graph().switch_names();
  for (graph::ScenarioId id = 0; id < 8; ++id) {
    bool rdg = (id >> app::kSwRdg) & 1u;
    bool roi = (id >> app::kSwRoi) & 1u;
    bool reg = (id >> app::kSwReg) & 1u;
    std::printf("  sc%u  %-20s : ", id,
                graph::scenario_label(id, names).c_str());
    if (rdg) std::printf("%s ", roi ? "RDG_ROI" : "RDG_FULL");
    std::printf("%s CPLS_SEL REG ROI_EST ", roi ? "MKX_ROI" : "MKX_FULL");
    if (rdg) std::printf("GW_EXT ");
    if (reg) std::printf("ENH ZOOM");
    std::printf("\n");
  }

  // Dynamic view: run the sequence and aggregate per scenario.
  graph::ScenarioHistogram histogram(app::kSwitchCount);
  graph::ScenarioTransitions transitions(app::kSwitchCount);
  std::map<graph::ScenarioId, std::vector<f64>> latency;
  std::map<graph::ScenarioId, std::vector<f64>> roi_px;
  graph::ScenarioId prev = 0;
  bool has_prev = false;
  for (i32 t = 0; t < frames; ++t) {
    graph::FrameRecord r = app.process_frame(t);
    histogram.add(r.scenario);
    if (has_prev) transitions.add(prev, r.scenario);
    prev = r.scenario;
    has_prev = true;
    latency[r.scenario].push_back(r.latency_ms);
    roi_px[r.scenario].push_back(r.roi_pixels);
  }

  std::printf("\nempirical scenario statistics over %d frames:\n", frames);
  std::printf("  %-4s %-20s %9s %12s %12s %14s\n", "id", "switches", "freq",
              "P(stay)", "latency ms", "ROI Kpixel");
  for (graph::ScenarioId id = 0; id < 8; ++id) {
    if (histogram.counts[id] == 0) continue;
    std::printf("  sc%u  %-20s %8.1f%% %12.2f %12.1f %14.0f\n", id,
                graph::scenario_label(id, names).c_str(),
                histogram.probability(id) * 100.0, transitions.probability(id, id),
                mean(latency[id]), mean(roi_px[id]) / 1000.0);
  }

  std::printf("\nscenario dwell behaviour: high P(stay) on the diagonal means "
              "scenarios persist for\nmany frames — the property that makes "
              "scenario-based prediction effective.\n");
  return 0;
}
