// Stent enhancement end-to-end: run the full StentBoost pipeline over a
// synthetic angioplasty sequence and write PGM snapshots of
//   * a raw input frame,
//   * the ridge-detection response,
//   * the enhanced, zoomed output (motion-compensated temporal integration),
// plus a before/after contrast-to-noise comparison of the stent markers —
// the clinical point of the paper's application (Fig. 1).
//
// Usage: stent_enhancement [frames] [width] [output_dir]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/stentboost.hpp"
#include "imaging/metrics.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const i32 frames = argc > 1 ? std::atoi(argv[1]) : 80;
  const i32 size = argc > 2 ? std::atoi(argv[2]) : 256;
  const std::string dir = argc > 3 ? argv[3] : ".";

  // Stent enhancement is clinically performed under plain fluoroscopy —
  // contrast agent would hide the stent — so this demo uses a sequence
  // without a bolus (see scenario_explorer/runtime_adaptation for the
  // contrast-driven scenario dynamics).
  app::StentBoostConfig config =
      app::StentBoostConfig::make(size, size, frames, 2026);
  config.sequence.contrast_in_frame = frames * 10;
  config.sequence.contrast_out_frame = frames * 10 + 1;
  config.sequence.marker_dropout_prob = 0.0;
  app::StentBoostApp app(config);

  std::printf("running %d frames at %dx%d...\n", frames, size, size);
  i32 enhanced_frames = 0;
  i32 warm = 0;  // consecutive integrations since the last restart
  f64 last_cnr_enh = 0.0;
  i32 last_cnr_frame = -1;
  for (i32 t = 0; t < frames; ++t) {
    graph::FrameRecord r = app.process_frame(t);
    if (!r.find(app::kZoom)->executed) {
      warm = 0;
      continue;
    }
    ++enhanced_frames;
    ++warm;
    // Track the enhanced-output marker CNR while the integration is warm
    // (several frames after the last restart).
    if (warm < 8 || !app.reference_couple().has_value()) continue;
    // The enhanced output is stabilized in the reference frame: the markers
    // sit at the *reference* couple positions inside the reference ROI.
    const img::Couple ref = *app.reference_couple();
    Rect roi = app.reference_roi();
    f64 sx = static_cast<f64>(config.zoom.output_width) / roi.w;
    f64 sy = static_cast<f64>(config.zoom.output_height) / roi.h;
    img::ImageF32 out_f = img::to_f32(app.last_output());
    f64 cnr = img::marker_cnr(
        out_f, Point2f{(ref.a.x - roi.x) * sx, (ref.a.y - roi.y) * sy},
        Point2f{(ref.b.x - roi.x) * sx, (ref.b.y - roi.y) * sy},
        config.sequence.marker_radius_px * sx);
    if (cnr > 0.0) {
      last_cnr_enh = cnr;
      last_cnr_frame = t;
    }
  }
  std::printf("enhanced output produced on %d/%d frames\n", enhanced_frames,
              frames);

  // Snapshots of the final frame.
  const i32 last = frames - 1;
  img::ImageU16 raw = app.sequence().render(last);
  if (!img::write_pgm(raw, dir + "/stent_input.pgm")) {
    std::fprintf(stderr, "cannot write %s/stent_input.pgm\n", dir.c_str());
    return 1;
  }
  if (app.last_ridge() != nullptr) {
    img::write_pgm(img::to_u16(app.last_ridge()->response),
                   dir + "/stent_ridge.pgm");
  }
  if (!app.last_output().empty()) {
    img::write_pgm(app.last_output(), dir + "/stent_enhanced.pgm");
  }
  std::printf("wrote %s/stent_input.pgm, stent_ridge.pgm, stent_enhanced.pgm\n",
              dir.c_str());

  // Quantify the enhancement: contrast-to-noise ratio of the markers in the
  // raw frame vs. the (unzoomed) enhanced ROI.
  img::FrameTruth truth = app.sequence().truth(last);
  img::ImageF32 raw_f = img::to_f32(raw);
  f64 cnr_raw = img::marker_cnr(raw_f, truth.marker_a, truth.marker_b,
                                config.sequence.marker_radius_px);
  std::printf("\nmarker contrast-to-noise ratio, raw frame:      %6.2f\n",
              cnr_raw);
  if (last_cnr_frame >= 0) {
    std::printf("marker contrast-to-noise ratio, enhanced+zoom:  %6.2f "
                "(frame %d, %.1fx better)\n",
                last_cnr_enh, last_cnr_frame, last_cnr_enh / cnr_raw);
  } else {
    std::printf("(no warm enhanced frame produced; rerun with a different "
                "seed)\n");
  }

  // Quantum-noise suppression: pixel noise in a flat corner of the display,
  // raw vs enhanced (the temporal integration should reduce it strongly).
  {
    img::ImageF32 out_f = img::to_f32(app.last_output());
    Rect corner{8, 8, 24, 24};
    f64 sigma_raw = img::region_stddev(raw_f, corner);
    f64 sigma_enh = img::region_stddev(out_f, corner);
    if (sigma_enh > 1e-9) {
      std::printf("flat-region pixel noise: raw %.0f -> enhanced %.0f "
                  "(%.1fx lower)\n",
                  sigma_raw, sigma_enh, sigma_raw / sigma_enh);
    }
  }
  return 0;
}
