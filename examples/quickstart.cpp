// Quickstart: build the StentBoost application on a synthetic angiography
// sequence, run it frame by frame, and print what the Triple-C layer sees —
// the active scenario, the per-task simulated execution times, and the frame
// latency on the modeled 8-CPU platform.
//
// Usage: quickstart [frames] [width]

#include <cstdio>
#include <cstdlib>

#include "app/stentboost.hpp"
#include "graph/scenario.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const i32 frames = argc > 1 ? std::atoi(argv[1]) : 60;
  const i32 size = argc > 2 ? std::atoi(argv[2]) : 256;

  app::StentBoostConfig config = app::StentBoostConfig::make(
      size, size, frames, /*seed=*/42);
  app::StentBoostApp app(config);

  std::printf("StentBoost quickstart: %d frames at %dx%d (reported at the "
              "paper's 1024x1024 format)\n\n",
              frames, size, size);
  std::printf("%5s %-14s %10s %10s %6s %6s  per-task ms\n", "frame",
              "scenario", "roi_px", "latency", "cand", "dom");

  std::vector<std::string> switch_names = app.graph().switch_names();
  for (i32 t = 0; t < frames; ++t) {
    graph::FrameRecord record = app.process_frame(t);
    std::string label = graph::scenario_label(record.scenario, switch_names);
    std::printf("%5d %-14s %10.0f %9.2f %6zu %6llu  ", t, label.c_str(),
                record.roi_pixels, record.latency_ms,
                app.last_candidate_count(),
                static_cast<unsigned long long>(
                    app.last_ridge() != nullptr ? app.last_ridge()->dominant_pixels
                                                : 0));
    for (const graph::TaskExecution& exec : record.tasks) {
      if (!exec.executed) continue;
      std::printf("%s=%.2f ", std::string(app::node_name(exec.node)).c_str(),
                  exec.simulated_ms);
    }
    std::printf("\n");
  }
  return 0;
}
