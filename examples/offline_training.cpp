// Offline training workflow: record an execution trace to CSV, load it back
// with the replay parser, train the Triple-C predictors from the file, and
// verify the models predict a fresh run — the paper's profiling loop
// ("the application can be profiled to gather statistical information...
// used for on-line model training", §6) in its offline form.
//
// Usage: offline_training [trace.csv]

#include <cstdio>
#include <fstream>
#include <string>

#include "app/stentboost.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "tripleC/accuracy.hpp"
#include "tripleC/graph_predictor.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "stentboost_trace";

  // 1. Record: run two sequences, one trace file each (frame numbers are
  // the record key, so sequences must not share a file).
  std::vector<std::string> paths;
  for (u64 seed : {11ull, 12ull}) {
    std::string path = prefix + "_" + std::to_string(seed) + ".csv";
    std::printf("recording training trace to %s ...\n", path.c_str());
    CsvWriter csv(path);
    app::StentBoostConfig c = app::StentBoostConfig::make(256, 256, 60, seed);
    app::StentBoostApp app(c);
    std::vector<graph::FrameRecord> records = app.run(60);
    trace::write_records_csv(csv, records, app::node_name);
    paths.push_back(std::move(path));
  }

  // 2. Replay: parse each CSV back into one training sequence.
  std::vector<std::vector<graph::FrameRecord>> seqs;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    trace::ParseResult parsed =
        trace::read_records_csv(in, trace::stentboost_node_id);
    std::printf("parsed %zu frames from %s (%zu malformed lines skipped)\n",
                parsed.records.size(), path.c_str(), parsed.skipped_lines);
    seqs.push_back(std::move(parsed.records));
  }

  // 3. Train from the file contents only.
  model::GraphPredictor gp(app::kNodeCount, app::kSwitchCount);
  gp.train(seqs);
  std::printf("trained predictors; e.g. ZOOM: %s\n",
              gp.task_predictor(app::kZoom).summary().c_str());

  // 4. Evaluate on a fresh sequence (different seed).
  app::StentBoostConfig c = app::StentBoostConfig::make(256, 256, 60, 99);
  app::StentBoostApp app(c);
  std::vector<f64> pred;
  std::vector<f64> meas;
  for (i32 t = 0; t < 60; ++t) {
    graph::FrameRecord r = app.process_frame(t);
    for (const graph::TaskExecution& exec : r.tasks) {
      if (!exec.executed) continue;
      pred.push_back(gp.predict_task(exec.node, r.roi_pixels));
      meas.push_back(exec.simulated_ms);
    }
    gp.observe(r);
  }
  model::AccuracyReport acc = model::evaluate_accuracy(pred, meas);
  std::printf("per-task prediction on a fresh sequence: %s\n",
              model::to_string(acc).c_str());
  std::printf("trace files kept at %s_*.csv\n", prefix.c_str());
  return acc.mean_accuracy_pct > 70.0 ? 0 : 1;
}
