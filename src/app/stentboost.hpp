// StentBoost — the paper's case-study application (Fig. 2): motion-
// compensated enhancement of stents in X-ray fluoroscopy.
//
// The class wires the eight imaging stages into a graph::FlowGraph with the
// paper's three data-dependent switches:
//
//   SW_RDG  "RDG detection"     — ridge detection needed?  Driven by a
//            hysteresis state machine over the dominant-structure count of
//            previous ridge runs and the marker-candidate clutter while
//            ridge detection is off (contrast bolus in/out).
//   SW_ROI  "ROI estimated"     — was an ROI estimated on a previous frame?
//            Selects ROI-granularity variants (RDG_ROI/MKX_ROI) over the
//            full-frame variants.
//   SW_REG  "REG successful"    — did temporal registration succeed this
//            frame?  Gates ENH and ZOOM.
//
// Eight scenarios (2^3) result.  Every frame yields a FrameRecord with
// per-task WorkReports; simulated execution times are assigned by the
// platform cost model according to the active partitioning plan.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "graph/flowgraph.hpp"
#include "imaging/pipeline.hpp"
#include "imaging/synthetic.hpp"
#include "platform/cost_model.hpp"
#include "platform/thread_pool.hpp"

namespace tc::app {

/// Node ids of the StentBoost flow graph (granularity variants are distinct
/// nodes, as in Table 1 / Table 2b of the paper).
enum Node : i32 {
  kRdgFull = 0,
  kRdgRoi,
  kMkxFull,
  kMkxRoi,
  kCplsSel,
  kReg,
  kRoiEst,
  kGwExt,
  kEnh,
  kZoom,
  kNodeCount,
};

[[nodiscard]] std::string_view node_name(i32 node);
/// True for streaming tasks that support stripe (data) partitioning.
[[nodiscard]] bool node_data_parallel(i32 node);

/// Switch indices (bit positions in the scenario id).
enum Switch : i32 {
  kSwRdg = 0,
  kSwRoi = 1,
  kSwReg = 2,
  kSwitchCount = 3,
};

struct StentBoostConfig {
  img::SequenceParams sequence;
  img::RidgeParams ridge;
  img::MarkerParams markers;
  img::CoupleParams couples;
  img::RegistrationParams registration;
  img::RoiParams roi;
  img::GuideWireParams guidewire;
  img::EnhanceParams enhance;
  img::ZoomParams zoom;

  /// SW_RDG hysteresis: ridge detection turns off after `rdg_off_after`
  /// consecutive frames with fewer than `dominant_low` dominant pixels, and
  /// turns back on as soon as marker extraction reports more than
  /// `clutter_high` candidates.
  u64 dominant_low = 1500;
  i32 rdg_off_after = 3;
  usize clutter_high = 20;

  /// Lock the pipeline to full-frame granularity (never enter ROI mode);
  /// used by experiments that study the full-frame tasks (Fig. 3).
  bool force_full_frame = false;

  /// When > 0, every estimated ROI is replaced by a square of this side
  /// centred on the couple — used by the ROI-size sweep of Fig. 6.
  i32 roi_side_override = 0;

  plat::PlatformSpec platform = plat::PlatformSpec::paper_platform();
  plat::CostParams cost;

  /// The paper's canonical video format (used for reporting/scaling).
  plat::VideoFormat paper_format;

  /// Build a config whose synthetic sequence renders width×height but whose
  /// cost model reports times as if at the paper's 1024×1024 format.
  [[nodiscard]] static StentBoostConfig make(i32 width, i32 height, i32 frames,
                                             u64 seed);
};

/// Per-node stripe plan for the coming frame (1 = serial).
using StripePlan = std::array<i32, kNodeCount>;

[[nodiscard]] constexpr StripePlan serial_plan() {
  return StripePlan{1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
}

class StentBoostApp {
 public:
  /// `pool` (optional) enables real host-parallel stripe execution; the
  /// simulated timing is host-independent either way.
  explicit StentBoostApp(StentBoostConfig config,
                         plat::ThreadPool* pool = nullptr);

  [[nodiscard]] const StentBoostConfig& config() const { return config_; }
  [[nodiscard]] graph::FlowGraph& graph() { return graph_; }
  [[nodiscard]] const plat::CostModel& cost_model() const { return cost_model_; }
  [[nodiscard]] const img::AngioSequence& sequence() const { return sequence_; }

  /// Set the partitioning plan used for the next process_frame call.
  void set_stripe_plan(const StripePlan& plan) { plan_ = plan; }
  [[nodiscard]] const StripePlan& stripe_plan() const { return plan_; }

  /// Apply a runtime quality setting (QoS): extra marker-grid decimation,
  /// guide-wire skip, and display-zoom divisor.  Takes effect from the next
  /// frame; pass (1, false, 1) to restore full quality.
  void set_quality(i32 extra_mkx_decimation, bool skip_guidewire,
                   i32 zoom_divisor);
  [[nodiscard]] i32 quality_extra_decimation() const { return qos_extra_decim_; }
  [[nodiscard]] bool quality_skip_guidewire() const { return qos_skip_gw_; }
  [[nodiscard]] i32 quality_zoom_divisor() const { return qos_zoom_div_; }

  /// Process frame `t` of the synthetic sequence: render, run the flow
  /// graph, assign simulated per-task times under the current stripe plan,
  /// and compute the frame latency.
  graph::FrameRecord process_frame(i32 t);

  /// Process an externally supplied frame (e.g. for tests).
  graph::FrameRecord process_image(i32 t, const img::ImageU16& frame);

  /// Convenience: process frames [0, n) and return all records.
  std::vector<graph::FrameRecord> run(i32 n);

  /// Reset all inter-frame state (start of a new sequence).
  void reset();

  // --- state inspection (read-only, for tests/examples) -------------------
  [[nodiscard]] bool rdg_active() const { return rdg_active_; }
  [[nodiscard]] bool roi_valid() const { return roi_valid_; }
  [[nodiscard]] bool last_reg_success() const { return reg_success_; }
  [[nodiscard]] Rect current_roi() const { return roi_; }
  [[nodiscard]] const std::optional<img::Couple>& last_couple() const {
    return prev_couple_;
  }
  /// Couple defining the stent-aligned integration reference (empty when
  /// the integration is cold).
  [[nodiscard]] const std::optional<img::Couple>& reference_couple() const {
    return ref_couple_;
  }
  /// Crop rectangle (reference coordinates) of the most recent enhanced ROI.
  [[nodiscard]] Rect reference_roi() const { return ref_roi_; }
  [[nodiscard]] const img::ImageU16& last_output() const { return output_; }
  [[nodiscard]] const img::RidgeResult* last_ridge() const {
    return ridge_.has_value() ? &*ridge_ : nullptr;
  }
  [[nodiscard]] usize last_candidate_count() const {
    return markers_.candidates.size();
  }

  /// ROI granularity driver of the frame most recently processed (full
  /// frame when no ROI was active).
  [[nodiscard]] f64 roi_pixels_of_frame() const { return roi_pixels_; }

 private:
  void build_graph();
  std::optional<img::WorkReport> run_rdg(bool roi_mode);
  std::optional<img::WorkReport> run_mkx(bool roi_mode);
  std::optional<img::WorkReport> run_cpls();
  std::optional<img::WorkReport> run_reg();
  std::optional<img::WorkReport> run_roi_est();
  std::optional<img::WorkReport> run_gw();
  std::optional<img::WorkReport> run_enh();
  std::optional<img::WorkReport> run_zoom();
  void assign_costs(graph::FrameRecord& record);
  void advance_switch_state();

  StentBoostConfig config_;
  plat::ThreadPool* pool_;
  img::AngioSequence sequence_;
  plat::CostModel cost_model_;
  graph::FlowGraph graph_;
  StripePlan plan_ = serial_plan();
  /// Per-node platform interference (cache misses / task switching).
  std::vector<plat::InterferenceProcess> interference_;

  // Per-frame working state.
  img::ImageF32 frame_;
  img::ImageF32 prev_frame_;
  std::optional<img::RidgeResult> ridge_;
  img::MarkerResult markers_;
  std::optional<img::Couple> couple_;
  std::optional<img::Couple> prev_couple_;
  img::RegistrationResult reg_;
  img::ImageF32 accumulator_;
  /// Marker couple of the frame the integration reference is aligned to.
  std::optional<img::Couple> ref_couple_;
  Rect ref_roi_{};
  img::ImageF32 enhanced_roi_;
  img::ImageU16 output_;
  f64 roi_pixels_ = 0.0;
  /// Per-node per-stripe reports of the frame being processed (empty when
  /// the node ran serially).
  std::array<std::vector<img::WorkReport>, kNodeCount> stripe_reports_;

  // QoS quality knobs.
  i32 qos_extra_decim_ = 1;
  bool qos_skip_gw_ = false;
  i32 qos_zoom_div_ = 1;

  // Inter-frame switch state.
  bool rdg_active_ = true;
  i32 quiet_frames_ = 0;
  bool roi_valid_ = false;
  Rect roi_{};
  bool reg_success_ = false;
  bool gw_ran_ = false;
  bool gw_found_ = false;
};

}  // namespace tc::app
