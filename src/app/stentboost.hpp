// StentBoost — the paper's case-study application (Fig. 2): motion-
// compensated enhancement of stents in X-ray fluoroscopy.
//
// The class wires the eight imaging stages into a graph::FlowGraph with the
// paper's three data-dependent switches:
//
//   SW_RDG  "RDG detection"     — ridge detection needed?  Driven by a
//            hysteresis state machine over the dominant-structure count of
//            previous ridge runs and the marker-candidate clutter while
//            ridge detection is off (contrast bolus in/out).
//   SW_ROI  "ROI estimated"     — was an ROI estimated on a previous frame?
//            Selects ROI-granularity variants (RDG_ROI/MKX_ROI) over the
//            full-frame variants.
//   SW_REG  "REG successful"    — did temporal registration succeed this
//            frame?  Gates ENH and ZOOM.
//
// Eight scenarios (2^3) result.  Every frame yields a FrameRecord with
// per-task WorkReports; simulated execution times are assigned by the
// platform cost model according to the active partitioning plan.
//
// Execution model (ROADMAP item 3): every in-flight frame owns a
// FrameContext; the only cross-frame state is the ticket-ordered
// StreamState (see app/frame_context.hpp).  A frame's lifecycle is
//
//   admit_frame/admit_image  — snapshot stream state, reset the context
//   run_front                — analysis front (RDG..GW_EXT), commit front
//   run_back                 — enhancement back end (ENH, ZOOM), commit back
//   retire_frame             — finalize scenario, assign simulated costs
//
// process_frame/process_image run the four steps serially; exec::FramePipeline
// overlaps run_back(t-1) with run_front(t) on separate stage threads.  Each
// graph node fans its work out as *instances* (row stripes for the streaming
// tasks, candidate batches for MKX/CPLS) onto the shared thread pool, under
// the per-frame InstanceBudget.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "app/frame_context.hpp"
#include "graph/flowgraph.hpp"
#include "imaging/pipeline.hpp"
#include "imaging/synthetic.hpp"
#include "platform/cost_model.hpp"
#include "platform/thread_pool.hpp"

namespace tc::app {

/// Node ids of the StentBoost flow graph (granularity variants are distinct
/// nodes, as in Table 1 / Table 2b of the paper).
enum Node : i32 {
  kRdgFull = 0,
  kRdgRoi,
  kMkxFull,
  kMkxRoi,
  kCplsSel,
  kReg,
  kRoiEst,
  kGwExt,
  kEnh,
  kZoom,
  kNodeCount,
};

static_assert(kNodeCount == kFrameNodeCount,
              "FrameContext per-node arrays must cover every graph node");

[[nodiscard]] std::string_view node_name(i32 node);
/// True for streaming tasks that support stripe (data) partitioning.
[[nodiscard]] bool node_data_parallel(i32 node);

/// Which nodes run under a scenario (switch bitmask, bits = Switch enum):
/// the static mirror of RuntimeManager::forecast's per-frame activity rules
/// (RDG granularity variants select on SW_RDG/SW_ROI, ENH/ZOOM gate on
/// SW_REG).  triplec-audit enumerates all 2^kSwitchCount masks through this
/// to prove per-scenario properties offline.
[[nodiscard]] std::array<bool, kNodeCount> scenario_node_activity(
    graph::ScenarioId scenario);

/// Switch indices (bit positions in the scenario id).
enum Switch : i32 {
  kSwRdg = 0,
  kSwRoi = 1,
  kSwReg = 2,
  kSwitchCount = 3,
};

struct StentBoostConfig {
  img::SequenceParams sequence;
  img::RidgeParams ridge;
  img::MarkerParams markers;
  img::CoupleParams couples;
  img::RegistrationParams registration;
  img::RoiParams roi;
  img::GuideWireParams guidewire;
  img::EnhanceParams enhance;
  img::ZoomParams zoom;

  /// SW_RDG hysteresis: ridge detection turns off after `rdg_off_after`
  /// consecutive frames with fewer than `dominant_low` dominant pixels, and
  /// turns back on as soon as marker extraction reports more than
  /// `clutter_high` candidates.
  u64 dominant_low = 1500;
  i32 rdg_off_after = 3;
  usize clutter_high = 20;

  /// Lock the pipeline to full-frame granularity (never enter ROI mode);
  /// used by experiments that study the full-frame tasks (Fig. 3).
  bool force_full_frame = false;

  /// When > 0, every estimated ROI is replaced by a square of this side
  /// centred on the couple — used by the ROI-size sweep of Fig. 6.
  i32 roi_side_override = 0;

  plat::PlatformSpec platform = plat::PlatformSpec::paper_platform();
  plat::CostParams cost;

  /// The paper's canonical video format (used for reporting/scaling).
  plat::VideoFormat paper_format;

  /// Build a config whose synthetic sequence renders width×height but whose
  /// cost model reports times as if at the paper's 1024×1024 format.
  [[nodiscard]] static StentBoostConfig make(i32 width, i32 height, i32 frames,
                                             u64 seed);
};

/// Per-node stripe plan for the coming frame (1 = serial).
using StripePlan = std::array<i32, kNodeCount>;

[[nodiscard]] constexpr StripePlan serial_plan() {
  return StripePlan{1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
}

class StentBoostApp {
 public:
  /// `pool` (optional) enables real host-parallel instance execution; the
  /// simulated timing is host-independent either way.
  explicit StentBoostApp(StentBoostConfig config,
                         plat::ThreadPool* pool = nullptr);

  [[nodiscard]] const StentBoostConfig& config() const { return config_; }
  [[nodiscard]] graph::FlowGraph& graph() { return graph_; }
  [[nodiscard]] const plat::CostModel& cost_model() const { return cost_model_; }
  [[nodiscard]] const img::AngioSequence& sequence() const { return sequence_; }

  /// Set the partitioning plan snapshot applied to frames admitted from now
  /// on (1 = serial).
  void set_stripe_plan(const StripePlan& plan) { plan_ = plan; }
  [[nodiscard]] const StripePlan& stripe_plan() const { return plan_; }

  /// Set the host resource budget snapshot applied to frames admitted from
  /// now on (see InstanceBudget; never affects simulated results).
  void set_instance_budget(const InstanceBudget& budget) { budget_ = budget; }
  [[nodiscard]] const InstanceBudget& instance_budget() const {
    return budget_;
  }

  /// Apply a runtime quality setting (QoS): extra marker-grid decimation,
  /// guide-wire skip, and display-zoom divisor.  Takes effect from the next
  /// admitted frame; pass (1, false, 1) to restore full quality.
  void set_quality(i32 extra_mkx_decimation, bool skip_guidewire,
                   i32 zoom_divisor);
  [[nodiscard]] i32 quality_extra_decimation() const { return qos_extra_decim_; }
  [[nodiscard]] bool quality_skip_guidewire() const { return qos_skip_gw_; }
  [[nodiscard]] i32 quality_zoom_divisor() const { return qos_zoom_div_; }

  // --- frame lifecycle (pipelined execution) -------------------------------
  // The returned context stays owned by the app; it is valid until
  // retire_frame recycles it.  Admissions must happen in frame order (the
  // stream ticket sequences them); run_front/run_back/retire_frame may run
  // on different threads, the StreamState orders their commits.

  /// Admit frame `t` of the synthetic sequence (renders on this thread).
  [[nodiscard]] FrameContext* admit_frame(i32 t);
  /// Admit an externally supplied frame.
  [[nodiscard]] FrameContext* admit_image(i32 t, const img::ImageU16& frame);
  /// Run the analysis front (RDG..GW_EXT) and commit the next front state.
  void run_front(FrameContext& ctx);
  /// Run the enhancement back end (ENH, ZOOM) and commit the back state.
  void run_back(FrameContext& ctx);
  /// Finalize the scenario, assign simulated costs (platform interference is
  /// drawn here, so frames must retire in order), recycle the context.
  [[nodiscard]] graph::FrameRecord retire_frame(FrameContext& ctx);

  /// Process frame `t` of the synthetic sequence: render, run the full
  /// lifecycle serially, return the record.
  graph::FrameRecord process_frame(i32 t);

  /// Process an externally supplied frame (e.g. for tests).
  graph::FrameRecord process_image(i32 t, const img::ImageU16& frame);

  /// Convenience: process frames [0, n) and return all records.
  std::vector<graph::FrameRecord> run(i32 n);

  /// Reset all inter-frame state (start of a new sequence).  Must not be
  /// called with frames in flight.
  void reset();

  // --- state inspection (read-only, for tests/examples) -------------------
  // Committed-stream accessors take the stream lock and are safe while a
  // pipeline is running; the last_* accessors read the most recently retired
  // frame's context and are meaningful only when no frame is in flight.
  [[nodiscard]] bool rdg_active() const { return stream_.front().rdg_active; }
  [[nodiscard]] bool roi_valid() const { return stream_.front().roi_valid; }
  [[nodiscard]] Rect current_roi() const { return stream_.front().roi; }
  [[nodiscard]] std::optional<img::Couple> last_couple() const {
    return stream_.front().prev_couple;
  }
  /// Couple defining the stent-aligned integration reference (empty when
  /// the integration is cold).
  [[nodiscard]] std::optional<img::Couple> reference_couple() const {
    return stream_.back_ref_couple();
  }
  /// Crop rectangle (reference coordinates) of the most recent enhanced ROI.
  [[nodiscard]] Rect reference_roi() const { return stream_.back_ref_roi(); }
  [[nodiscard]] bool last_reg_success() const;
  [[nodiscard]] const img::ImageU16& last_output() const;
  [[nodiscard]] const img::RidgeResult* last_ridge() const;
  [[nodiscard]] usize last_candidate_count() const;

  /// ROI granularity driver of the frame most recently retired (full frame
  /// when no ROI was active).
  [[nodiscard]] f64 roi_pixels_of_frame() const;

  /// The explicitly-synchronized cross-frame state (tests).
  [[nodiscard]] StreamState& stream() { return stream_; }

 private:
  void build_graph();
  [[nodiscard]] FrameContext* acquire_context();
  void recycle_context(FrameContext* ctx);
  /// Fan one node's work out as `instances` index-range instances (host
  /// execution only; the decomposition is fixed by the caller).
  void run_instances(FrameContext& ctx, i32 node, i32 count, i32 instances,
                     const std::function<void(i32, IndexRange)>& body);
  /// Pure successor computation for the cross-frame front state.
  [[nodiscard]] FrontState advance_front(const FrameContext& ctx) const;

  std::optional<img::WorkReport> run_rdg(FrameContext& ctx, bool roi_mode);
  std::optional<img::WorkReport> run_mkx(FrameContext& ctx, bool roi_mode);
  std::optional<img::WorkReport> run_cpls(FrameContext& ctx);
  std::optional<img::WorkReport> run_reg(FrameContext& ctx);
  std::optional<img::WorkReport> run_roi_est(FrameContext& ctx);
  std::optional<img::WorkReport> run_gw(FrameContext& ctx);
  std::optional<img::WorkReport> run_enh(FrameContext& ctx);
  std::optional<img::WorkReport> run_zoom(FrameContext& ctx);
  void assign_costs(FrameContext& ctx);

  StentBoostConfig config_;
  plat::ThreadPool* pool_;
  img::AngioSequence sequence_;
  plat::CostModel cost_model_;
  graph::FlowGraph graph_;
  StripePlan plan_ = serial_plan();
  InstanceBudget budget_;
  /// Per-node platform interference (cache misses / task switching); drawn
  /// in retire order, so results are independent of pipelining.
  std::vector<plat::InterferenceProcess> interference_;

  /// Ticket-ordered cross-frame state.
  StreamState stream_;

  /// Context pool: stable-address contexts, recycled LIFO.
  common::Mutex ctx_mutex_;
  std::vector<std::unique_ptr<FrameContext>> contexts_
      TC_GUARDED_BY(ctx_mutex_);
  std::vector<FrameContext*> free_ctx_ TC_GUARDED_BY(ctx_mutex_);
  /// Most recently retired context (quiescent inspection only).
  FrameContext* last_ctx_ = nullptr;

  /// Topological order split at the front/back boundary (ENH, ZOOM form the
  /// back end; their concatenation is the full topological order).
  std::vector<i32> front_order_;
  std::vector<i32> back_order_;

  // QoS quality knobs (snapshotted into each context at admission).
  i32 qos_extra_decim_ = 1;
  bool qos_skip_gw_ = false;
  i32 qos_zoom_div_ = 1;
};

}  // namespace tc::app
