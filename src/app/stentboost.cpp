#include "app/stentboost.hpp"
#include <algorithm>
#include <cmath>

#include <cassert>
#include <stdexcept>

#include "obs/obs.hpp"

namespace tc::app {

namespace {
constexpr std::array<std::string_view, kNodeCount> kNodeNames = {
    "RDG_FULL", "RDG_ROI", "MKX_FULL", "MKX_ROI", "CPLS_SEL",
    "REG",      "ROI_EST", "GW_EXT",   "ENH",     "ZOOM",
};
constexpr std::array<bool, kNodeCount> kDataParallel = {
    true,  true,  true,  true,  false,
    false, false, false, true,  true,
};
}  // namespace

std::string_view node_name(i32 node) {
  return kNodeNames[static_cast<usize>(node)];
}

bool node_data_parallel(i32 node) {
  return kDataParallel[static_cast<usize>(node)];
}

StentBoostConfig StentBoostConfig::make(i32 width, i32 height, i32 frames,
                                        u64 seed) {
  StentBoostConfig c;
  c.sequence.width = width;
  c.sequence.height = height;
  c.sequence.frames = frames;
  c.sequence.seed = seed;
  c.zoom.output_width = width;
  c.zoom.output_height = height;

  // Scale the scene geometry and the matched algorithm parameters with the
  // rendering resolution (defaults are tuned for 512x512).
  const f64 geom = static_cast<f64>(width) / 512.0;
  c.sequence.marker_distance_px = 90.0 * geom;
  c.sequence.marker_radius_px = std::max(2.5, 4.0 * geom);
  c.sequence.motion.cardiac_amplitude_px = 18.0 * geom;
  c.sequence.motion.breathing_amplitude_px = 10.0 * geom;
  c.couples.prior_distance = c.sequence.marker_distance_px;
  c.couples.distance_tolerance = std::max(6.0, 12.0 * geom);
  // Reject couples built from weak (noise-level) candidates so tracking
  // cannot coast on clutter when the markers are obscured.
  c.couples.min_strength = 2.5 * static_cast<f64>(c.markers.detect_threshold);
  c.registration.max_displacement = std::max(15.0, 40.0 * geom);
  c.registration.motion_window = std::max(10, static_cast<i32>(24.0 * geom));
  c.roi.min_side = std::max(48, static_cast<i32>(96.0 * geom));
  // Marker detection grid: keep the decimated blob scale >= ~0.9 px so the
  // DoG suppresses quantum noise adequately at small rendering sizes.
  c.markers.decimation = width >= 256 ? 4 : 2;
  c.markers.blob_sigma = std::max(
      0.9, c.sequence.marker_radius_px / static_cast<f64>(c.markers.decimation));
  c.markers.background_sigma = 2.5 * c.markers.blob_sigma;
  // Quantum noise per pixel is resolution-independent while marker area
  // shrinks with the render size, so the darkness threshold must grow as
  // the decimated grid gets finer relative to the noise.
  c.markers.detect_threshold = width >= 256 ? 800.0f : 1600.0f;
  c.guidewire.search_radius = std::max(3, static_cast<i32>(6.0 * geom));
  // Report simulated times as if the application ran at the paper's
  // 1024x1024 format regardless of the rendering resolution.
  f64 rendered = static_cast<f64>(width) * static_cast<f64>(height);
  f64 paper = static_cast<f64>(c.paper_format.width) *
              static_cast<f64>(c.paper_format.height);
  c.cost.resolution_scale = paper / rendered;
  // Dominant structures are curvilinear, so their pixel count scales with
  // the image side, not its area (~1536 px at 1024^2).
  c.dominant_low = static_cast<u64>(1.5 * width);
  return c;
}

StentBoostApp::StentBoostApp(StentBoostConfig config, plat::ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool),
      sequence_(config_.sequence),
      cost_model_(config_.platform, config_.cost) {
  interference_.reserve(kNodeCount);
  for (i32 node = 0; node < kNodeCount; ++node) {
    interference_.emplace_back(config_.cost, static_cast<u64>(node));
  }
  // Task-labeled metrics and spans report the graph's node names.
  obs::global().set_node_namer(
      [](i32 node) { return std::string(node_name(node)); });
  build_graph();
}

void StentBoostApp::build_graph() {
  using graph::FlowGraph;

  // Switches (bit positions must match the Switch enum).
  i32 sw_rdg = graph_.add_switch("RDG", [this] { return rdg_active_; });
  i32 sw_roi = graph_.add_switch("ROI", [this] { return roi_valid_; });
  i32 sw_reg = graph_.add_switch("REG", [this] { return reg_success_; });
  assert(sw_rdg == kSwRdg && sw_roi == kSwRoi && sw_reg == kSwReg);
  (void)sw_rdg;
  (void)sw_roi;
  (void)sw_reg;

  auto add = [this](i32 expected, std::string name, bool dp,
                    graph::LambdaTask::Fn fn, FlowGraph::Guard guard) {
    i32 id = graph_.add_task(
        graph::make_task(std::move(name), dp, std::move(fn)),
        std::move(guard));
    assert(id == expected);
    (void)id;
    (void)expected;
  };

  add(kRdgFull, "RDG_FULL", true, [this] { return run_rdg(false); },
      [](FlowGraph& g) {
        return g.switch_value(kSwRdg) && !g.switch_value(kSwRoi);
      });
  add(kRdgRoi, "RDG_ROI", true, [this] { return run_rdg(true); },
      [](FlowGraph& g) {
        return g.switch_value(kSwRdg) && g.switch_value(kSwRoi);
      });
  add(kMkxFull, "MKX_FULL", true, [this] { return run_mkx(false); },
      [](FlowGraph& g) { return !g.switch_value(kSwRoi); });
  add(kMkxRoi, "MKX_ROI", true, [this] { return run_mkx(true); },
      [](FlowGraph& g) { return g.switch_value(kSwRoi); });
  add(kCplsSel, "CPLS_SEL", false, [this] { return run_cpls(); }, {});
  add(kReg, "REG", false, [this] { return run_reg(); }, {});
  add(kRoiEst, "ROI_EST", false, [this] { return run_roi_est(); }, {});
  add(kGwExt, "GW_EXT", false, [this] { return run_gw(); }, {});
  add(kEnh, "ENH", true, [this] { return run_enh(); },
      [](FlowGraph& g) { return g.switch_value(kSwReg); });
  add(kZoom, "ZOOM", true, [this] { return run_zoom(); },
      [](FlowGraph& g) { return g.switch_value(kSwReg); });

  // Edges: execution order plus the buffer flows of Fig. 2.  Byte counts
  // reflect the producer's output at the current granularity.
  const auto full_pixels = [this] {
    return static_cast<u64>(config_.sequence.width) *
           static_cast<u64>(config_.sequence.height);
  };
  const auto roi_px = [this] {
    return roi_valid_ ? static_cast<u64>(roi_.area())
                      : static_cast<u64>(config_.sequence.width) *
                            static_cast<u64>(config_.sequence.height);
  };

  graph_.add_edge(kRdgFull, kMkxFull,
                  [=] { return full_pixels() * 2 * sizeof(f32); });
  graph_.add_edge(kRdgRoi, kMkxRoi, [=] { return roi_px() * 2 * sizeof(f32); });
  graph_.add_edge(kMkxFull, kCplsSel,
                  [] { return u64{96} * sizeof(img::MarkerCandidate); });
  graph_.add_edge(kMkxRoi, kCplsSel,
                  [] { return u64{96} * sizeof(img::MarkerCandidate); });
  graph_.add_edge(kCplsSel, kReg, [] { return u64{sizeof(img::Couple)}; });
  graph_.add_edge(kReg, kRoiEst,
                  [] { return u64{sizeof(img::RegistrationResult)}; });
  graph_.add_edge(kRoiEst, kGwExt, [] { return u64{sizeof(Rect)}; });
  graph_.add_edge(kGwExt, kEnh,
                  [] { return u64{64} * sizeof(Point2f); });
  graph_.add_edge(kReg, kEnh,
                  [=] { return full_pixels() * sizeof(u16); });
  graph_.add_edge(kEnh, kZoom, [=] { return roi_px() * sizeof(f32); });
}

graph::FrameRecord StentBoostApp::process_frame(i32 t) {
  return process_image(t, sequence_.render(t));
}

graph::FrameRecord StentBoostApp::process_image(i32 t,
                                                const img::ImageU16& frame) {
  obs::ScopedSpan host_span = obs::host_span("app_process_frame", "app");
  host_span.arg("frame", std::to_string(t));
  obs::ScopedTimer wall;

  frame_ = img::to_f32(frame);

  // Reset the per-frame state.
  ridge_.reset();
  markers_ = img::MarkerResult{};
  couple_.reset();
  reg_ = img::RegistrationResult{};
  reg_success_ = false;
  for (auto& reports : stripe_reports_) reports.clear();

  const Rect full = Rect{0, 0, frame_.width(), frame_.height()};
  const Rect roi_for_frame = roi_valid_ ? roi_ : full;
  roi_pixels_ = static_cast<f64>(roi_for_frame.area()) *
                config_.cost.resolution_scale;

  graph::FrameRecord record = graph_.run_frame(t);
  record.roi_pixels = roi_pixels_;
  assign_costs(record);
  advance_switch_state();

  prev_frame_ = frame_;
  prev_couple_ = couple_;

  if (obs::enabled()) {
    obs::MetricsRegistry& m = obs::global().metrics;
    m.counter("tripleC_scenario_frames_total", "Frames per active scenario",
              obs::label("scenario", std::to_string(record.scenario)))
        .add();
    m.histogram("tripleC_host_frame_wall_ms",
                "Host wall-clock time per processed frame",
                obs::latency_buckets_ms())
        .record(wall.elapsed_ms());
  }
  return record;
}

std::vector<graph::FrameRecord> StentBoostApp::run(i32 n) {
  std::vector<graph::FrameRecord> records;
  records.reserve(static_cast<usize>(n));
  for (i32 t = 0; t < n; ++t) records.push_back(process_frame(t));
  return records;
}

void StentBoostApp::reset() {
  frame_ = img::ImageF32();
  prev_frame_ = img::ImageF32();
  ridge_.reset();
  markers_ = img::MarkerResult{};
  couple_.reset();
  prev_couple_.reset();
  reg_ = img::RegistrationResult{};
  accumulator_ = img::ImageF32();
  ref_couple_.reset();
  enhanced_roi_ = img::ImageF32();
  output_ = img::ImageU16();
  roi_pixels_ = 0.0;
  for (auto& p : interference_) p.reset();
  rdg_active_ = true;
  quiet_frames_ = 0;
  roi_valid_ = false;
  roi_ = Rect{};
  reg_success_ = false;
}

std::optional<img::WorkReport> StentBoostApp::run_rdg(bool roi_mode) {
  const Rect full = Rect{0, 0, frame_.width(), frame_.height()};
  const Rect r = roi_mode && roi_valid_ ? roi_ : full;
  const i32 node = roi_mode ? kRdgRoi : kRdgFull;
  const i32 stripes = plan_[static_cast<usize>(node)];

  if (stripes <= 1) {
    img::RidgeResult result = img::ridge_detect(frame_, r, config_.ridge);
    img::WorkReport work = result.work;
    ridge_ = std::move(result);
    return work;
  }

  // Stripe-parallel execution: disjoint output row bands, bit-identical to
  // the serial run.
  img::RidgeResult result;
  result.response = img::ImageF32(frame_.width(), frame_.height(), 0.0f);
  result.blobness = img::ImageF32(frame_.width(), frame_.height(), 0.0f);
  std::vector<img::WorkReport> reports(static_cast<usize>(stripes));
  std::vector<u64> dominant(static_cast<usize>(stripes), 0);
  auto run_band = [&](i32 band, IndexRange rows) {
    IndexRange abs_rows{r.y + rows.lo, r.y + rows.hi};
    img::ridge_detect_rows(frame_, r, config_.ridge, result.response,
                           result.blobness, abs_rows,
                           dominant[static_cast<usize>(band)],
                           reports[static_cast<usize>(band)]);
  };
  if (pool_ != nullptr) {
    pool_->parallel_ranges(r.h, stripes, run_band);
  } else {
    for (i32 b = 0; b < stripes; ++b) {
      run_band(b, plat::even_chunk(r.h, stripes, b));
    }
  }
  img::WorkReport total;
  for (usize b = 0; b < reports.size(); ++b) {
    total += reports[b];
    result.dominant_pixels += dominant[b];
  }
  total.data_parallel = true;
  stripe_reports_[static_cast<usize>(node)] = std::move(reports);
  result.work = total;
  ridge_ = std::move(result);
  return total;
}

std::optional<img::WorkReport> StentBoostApp::run_mkx(bool roi_mode) {
  const Rect full = Rect{0, 0, frame_.width(), frame_.height()};
  const Rect r = roi_mode && roi_valid_ ? roi_ : full;
  const img::RidgeResult* ridge = ridge_.has_value() ? &*ridge_ : nullptr;
  img::MarkerParams params = config_.markers;
  if (qos_extra_decim_ > 1) {
    // QoS degradation: coarser detection grid, matched blob scales.
    params.decimation *= qos_extra_decim_;
    params.blob_sigma =
        std::max(0.7, params.blob_sigma / qos_extra_decim_);
    params.background_sigma = 2.5 * params.blob_sigma;
  }
  markers_ = img::extract_markers(frame_, r, params, ridge);
  return markers_.work;
}

std::optional<img::WorkReport> StentBoostApp::run_cpls() {
  const img::Couple* prior =
      prev_couple_.has_value() ? &*prev_couple_ : nullptr;
  img::CoupleResult result =
      img::select_couple(markers_.candidates, config_.couples, prior);
  couple_ = result.best;
  return result.work;
}

std::optional<img::WorkReport> StentBoostApp::run_reg() {
  if (!couple_.has_value() || !prev_couple_.has_value() ||
      prev_frame_.empty()) {
    reg_success_ = false;
    return std::nullopt;
  }
  reg_ = img::register_couple(*prev_couple_, *couple_, prev_frame_, frame_,
                              config_.registration);
  reg_success_ = reg_.success;
  return reg_.work;
}

std::optional<img::WorkReport> StentBoostApp::run_roi_est() {
  if (!couple_.has_value()) return std::nullopt;
  img::RoiResult result = img::estimate_roi(*couple_, frame_.width(),
                                            frame_.height(), config_.roi);
  roi_ = result.roi;
  if (config_.roi_side_override > 0) {
    const i32 s = config_.roi_side_override;
    const i32 cx =
        narrow<i32>(std::lround(0.5 * (couple_->a.x + couple_->b.x)));
    const i32 cy =
        narrow<i32>(std::lround(0.5 * (couple_->a.y + couple_->b.y)));
    roi_ = clamp_rect(Rect{cx - s / 2, cy - s / 2, s, s}, frame_.width(),
                      frame_.height());
  }
  return result.work;
}

std::optional<img::WorkReport> StentBoostApp::run_gw() {
  if (qos_skip_gw_) return std::nullopt;
  if (!couple_.has_value() || !ridge_.has_value()) return std::nullopt;
  img::GuideWireResult result =
      img::extract_guidewire(*ridge_, *couple_, config_.guidewire);
  gw_found_ = result.found;
  gw_ran_ = true;
  return result.work;
}

std::optional<img::WorkReport> StentBoostApp::run_enh() {
  if (!reg_success_ || !couple_.has_value()) return std::nullopt;
  if (accumulator_.empty() || !ref_couple_.has_value()) {
    // Integration (re)starts: the current couple defines the reference.
    ref_couple_ = couple_;
  }
  // Crop rectangle in reference coordinates: current ROI dimensions centred
  // on the reference couple (the stent is stabilized there).
  const Rect full = Rect{0, 0, frame_.width(), frame_.height()};
  const Rect cur_roi = !roi_.empty() ? roi_ : full;
  const i32 rcx =
      narrow<i32>(std::lround(0.5 * (ref_couple_->a.x + ref_couple_->b.x)));
  const i32 rcy =
      narrow<i32>(std::lround(0.5 * (ref_couple_->a.y + ref_couple_->b.y)));
  ref_roi_ = clamp_rect(
      Rect{rcx - cur_roi.w / 2, rcy - cur_roi.h / 2, cur_roi.w, cur_roi.h},
      frame_.width(), frame_.height());
  img::EnhanceResult result = img::enhance(frame_, ref_roi_, accumulator_,
                                           *couple_, *ref_couple_,
                                           config_.enhance);
  accumulator_ = std::move(result.accumulator);
  enhanced_roi_ = std::move(result.enhanced_roi);
  return result.work;
}

std::optional<img::WorkReport> StentBoostApp::run_zoom() {
  if (enhanced_roi_.empty()) return std::nullopt;
  img::ZoomParams zoom_params = config_.zoom;
  zoom_params.output_width =
      std::max(16, zoom_params.output_width / qos_zoom_div_);
  zoom_params.output_height =
      std::max(16, zoom_params.output_height / qos_zoom_div_);
  const i32 stripes = plan_[kZoom];
  if (stripes <= 1) {
    img::ZoomResult result = img::zoom(enhanced_roi_, zoom_params);
    output_ = std::move(result.output);
    return result.work;
  }
  output_ = img::ImageU16(zoom_params.output_width,
                          zoom_params.output_height);
  std::vector<img::WorkReport> reports(static_cast<usize>(stripes));
  auto run_band = [&](i32 band, IndexRange rows) {
    img::zoom_rows(enhanced_roi_, zoom_params, output_, rows,
                   reports[static_cast<usize>(band)]);
  };
  if (pool_ != nullptr) {
    pool_->parallel_ranges(zoom_params.output_height, stripes, run_band);
  } else {
    for (i32 b = 0; b < stripes; ++b) {
      run_band(b, plat::even_chunk(zoom_params.output_height, stripes, b));
    }
  }
  img::WorkReport total;
  for (const img::WorkReport& w : reports) total += w;
  total.data_parallel = true;
  stripe_reports_[kZoom] = std::move(reports);
  return total;
}

void StentBoostApp::set_quality(i32 extra_mkx_decimation, bool skip_guidewire,
                                i32 zoom_divisor) {
  qos_extra_decim_ = std::max(1, extra_mkx_decimation);
  qos_skip_gw_ = skip_guidewire;
  qos_zoom_div_ = std::max(1, zoom_divisor);
}

void StentBoostApp::assign_costs(graph::FrameRecord& record) {
  f64 latency = 0.0;
  for (graph::TaskExecution& exec : record.tasks) {
    if (!exec.executed) continue;
    const usize node = static_cast<usize>(exec.node);
    plat::TaskCost cost;
    if (!stripe_reports_[node].empty()) {
      cost = cost_model_.striped_cost(stripe_reports_[node]);
    } else {
      i32 stripes = node_data_parallel(exec.node) ? plan_[node] : 1;
      cost = stripes > 1 ? cost_model_.striped_cost(exec.work, stripes)
                         : cost_model_.serial_cost(exec.work);
    }
    // Platform interference (cache misses, task switching) — the paper's
    // short-term fluctuation source.
    f64 factor = interference_[node].next();
    exec.simulated_ms = cost.total_ms * factor;
    latency += exec.simulated_ms;
    if (obs::enabled()) {
      obs::global()
          .metrics
          .histogram("tripleC_task_simulated_ms",
                     "Simulated execution time per task",
                     obs::latency_buckets_ms(),
                     obs::label("task", node_name(exec.node)))
          .record(exec.simulated_ms);
    }
  }
  record.latency_ms = latency;
}

void StentBoostApp::advance_switch_state() {
  // SW_RDG hysteresis.
  if (ridge_.has_value()) {
    if (ridge_->dominant_pixels < config_.dominant_low) {
      ++quiet_frames_;
    } else {
      quiet_frames_ = 0;
    }
    if (quiet_frames_ >= config_.rdg_off_after) {
      rdg_active_ = false;
      quiet_frames_ = 0;
    }
  } else if (markers_.candidates.size() > config_.clutter_high) {
    rdg_active_ = true;
    quiet_frames_ = 0;
  }

  // SW_ROI: the ROI estimated this frame becomes next frame's granularity.
  // A failed guide-wire check (when it ran) invalidates the couple.
  bool roi_ok = couple_.has_value() && !roi_.empty();
  if (gw_ran_ && !gw_found_) {
    // The guide-wire check rejected the couple: drop the ROI and the
    // tracking prior so the next frame re-acquires from scratch.
    roi_ok = false;
    couple_.reset();
  }
  roi_valid_ = roi_ok && !config_.force_full_frame;
  gw_ran_ = false;
  gw_found_ = false;

  // SW_REG: a failed registration restarts the temporal integration.
  if (!reg_success_) {
    accumulator_ = img::ImageF32();
    ref_couple_.reset();
  }
}

}  // namespace tc::app
