#include "app/stentboost.hpp"
#include <algorithm>
#include <cmath>

#include <cassert>
#include <stdexcept>

#include "obs/obs.hpp"

namespace tc::app {

namespace {
constexpr std::array<std::string_view, kNodeCount> kNodeNames = {
    "RDG_FULL", "RDG_ROI", "MKX_FULL", "MKX_ROI", "CPLS_SEL",
    "REG",      "ROI_EST", "GW_EXT",   "ENH",     "ZOOM",
};
constexpr std::array<bool, kNodeCount> kDataParallel = {
    true,  true,  true,  true,  false,
    false, false, false, true,  true,
};

/// The frame context a graph-level execution context belongs to.
FrameContext& ctx_of(graph::ExecContext& g) {
  assert(g.user != nullptr);
  return *static_cast<FrameContext*>(g.user);
}
}  // namespace

std::string_view node_name(i32 node) {
  return kNodeNames[static_cast<usize>(node)];
}

bool node_data_parallel(i32 node) {
  return kDataParallel[static_cast<usize>(node)];
}

std::array<bool, kNodeCount> scenario_node_activity(
    graph::ScenarioId scenario) {
  const bool rdg = ((scenario >> kSwRdg) & 1u) != 0;
  const bool roi = ((scenario >> kSwRoi) & 1u) != 0;
  const bool reg = ((scenario >> kSwReg) & 1u) != 0;
  std::array<bool, kNodeCount> active{};
  active[kRdgFull] = rdg && !roi;
  active[kRdgRoi] = rdg && roi;
  active[kMkxFull] = !roi;
  active[kMkxRoi] = roi;
  active[kCplsSel] = true;
  active[kReg] = true;
  active[kRoiEst] = true;
  active[kGwExt] = rdg;
  active[kEnh] = reg;
  active[kZoom] = reg;
  return active;
}

StentBoostConfig StentBoostConfig::make(i32 width, i32 height, i32 frames,
                                        u64 seed) {
  StentBoostConfig c;
  c.sequence.width = width;
  c.sequence.height = height;
  c.sequence.frames = frames;
  c.sequence.seed = seed;
  c.zoom.output_width = width;
  c.zoom.output_height = height;

  // Scale the scene geometry and the matched algorithm parameters with the
  // rendering resolution (defaults are tuned for 512x512).
  const f64 geom = static_cast<f64>(width) / 512.0;
  c.sequence.marker_distance_px = 90.0 * geom;
  c.sequence.marker_radius_px = std::max(2.5, 4.0 * geom);
  c.sequence.motion.cardiac_amplitude_px = 18.0 * geom;
  c.sequence.motion.breathing_amplitude_px = 10.0 * geom;
  c.couples.prior_distance = c.sequence.marker_distance_px;
  c.couples.distance_tolerance = std::max(6.0, 12.0 * geom);
  // Reject couples built from weak (noise-level) candidates so tracking
  // cannot coast on clutter when the markers are obscured.
  c.couples.min_strength = 2.5 * static_cast<f64>(c.markers.detect_threshold);
  c.registration.max_displacement = std::max(15.0, 40.0 * geom);
  c.registration.motion_window = std::max(10, static_cast<i32>(24.0 * geom));
  c.roi.min_side = std::max(48, static_cast<i32>(96.0 * geom));
  // Marker detection grid: keep the decimated blob scale >= ~0.9 px so the
  // DoG suppresses quantum noise adequately at small rendering sizes.
  c.markers.decimation = width >= 256 ? 4 : 2;
  c.markers.blob_sigma = std::max(
      0.9, c.sequence.marker_radius_px / static_cast<f64>(c.markers.decimation));
  c.markers.background_sigma = 2.5 * c.markers.blob_sigma;
  // Quantum noise per pixel is resolution-independent while marker area
  // shrinks with the render size, so the darkness threshold must grow as
  // the decimated grid gets finer relative to the noise.
  c.markers.detect_threshold = width >= 256 ? 800.0f : 1600.0f;
  c.guidewire.search_radius = std::max(3, static_cast<i32>(6.0 * geom));
  // Report simulated times as if the application ran at the paper's
  // 1024x1024 format regardless of the rendering resolution.
  f64 rendered = static_cast<f64>(width) * static_cast<f64>(height);
  f64 paper = static_cast<f64>(c.paper_format.width) *
              static_cast<f64>(c.paper_format.height);
  c.cost.resolution_scale = paper / rendered;
  // Dominant structures are curvilinear, so their pixel count scales with
  // the image side, not its area (~1536 px at 1024^2).
  c.dominant_low = static_cast<u64>(1.5 * width);
  return c;
}

StentBoostApp::StentBoostApp(StentBoostConfig config, plat::ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool),
      sequence_(config_.sequence),
      cost_model_(config_.platform, config_.cost) {
  interference_.reserve(kNodeCount);
  for (i32 node = 0; node < kNodeCount; ++node) {
    interference_.emplace_back(config_.cost, static_cast<u64>(node));
  }
  // Task-labeled metrics and spans report the graph's node names.
  obs::global().set_node_namer(
      [](i32 node) { return std::string(node_name(node)); });
  build_graph();
}

void StentBoostApp::build_graph() {
  using graph::FlowGraph;

  // Switches (bit positions must match the Switch enum).  SW_RDG and SW_ROI
  // read the admission-time stream snapshot; SW_REG reads the registration
  // outcome of the frame itself.
  i32 sw_rdg = graph_.add_switch(
      "RDG", FlowGraph::SwitchFn(
                 [](graph::ExecContext& g) { return ctx_of(g).front.rdg_active; }));
  i32 sw_roi = graph_.add_switch(
      "ROI", FlowGraph::SwitchFn(
                 [](graph::ExecContext& g) { return ctx_of(g).front.roi_valid; }));
  i32 sw_reg = graph_.add_switch(
      "REG", FlowGraph::SwitchFn(
                 [](graph::ExecContext& g) { return ctx_of(g).reg_success; }));
  assert(sw_rdg == kSwRdg && sw_roi == kSwRoi && sw_reg == kSwReg);
  (void)sw_rdg;
  (void)sw_roi;
  (void)sw_reg;

  auto add = [this](i32 expected, std::string name, bool dp,
                    graph::LambdaTask::Fn fn, FlowGraph::Guard guard) {
    i32 id = graph_.add_task(
        graph::make_task(std::move(name), dp, std::move(fn)),
        std::move(guard));
    assert(id == expected);
    (void)id;
    (void)expected;
  };

  add(kRdgFull, "RDG_FULL", true,
      [this](graph::ExecContext& g) { return run_rdg(ctx_of(g), false); },
      [](FlowGraph& g, graph::ExecContext& c) {
        return g.switch_value(kSwRdg, c) && !g.switch_value(kSwRoi, c);
      });
  add(kRdgRoi, "RDG_ROI", true,
      [this](graph::ExecContext& g) { return run_rdg(ctx_of(g), true); },
      [](FlowGraph& g, graph::ExecContext& c) {
        return g.switch_value(kSwRdg, c) && g.switch_value(kSwRoi, c);
      });
  add(kMkxFull, "MKX_FULL", true,
      [this](graph::ExecContext& g) { return run_mkx(ctx_of(g), false); },
      [](FlowGraph& g, graph::ExecContext& c) {
        return !g.switch_value(kSwRoi, c);
      });
  add(kMkxRoi, "MKX_ROI", true,
      [this](graph::ExecContext& g) { return run_mkx(ctx_of(g), true); },
      [](FlowGraph& g, graph::ExecContext& c) {
        return g.switch_value(kSwRoi, c);
      });
  add(kCplsSel, "CPLS_SEL", false,
      [this](graph::ExecContext& g) { return run_cpls(ctx_of(g)); }, {});
  add(kReg, "REG", false,
      [this](graph::ExecContext& g) { return run_reg(ctx_of(g)); }, {});
  add(kRoiEst, "ROI_EST", false,
      [this](graph::ExecContext& g) { return run_roi_est(ctx_of(g)); }, {});
  add(kGwExt, "GW_EXT", false,
      [this](graph::ExecContext& g) { return run_gw(ctx_of(g)); }, {});
  add(kEnh, "ENH", true,
      [this](graph::ExecContext& g) { return run_enh(ctx_of(g)); },
      [](FlowGraph& g, graph::ExecContext& c) {
        return g.switch_value(kSwReg, c);
      });
  add(kZoom, "ZOOM", true,
      [this](graph::ExecContext& g) { return run_zoom(ctx_of(g)); },
      [](FlowGraph& g, graph::ExecContext& c) {
        return g.switch_value(kSwReg, c);
      });

  // Edges: execution order plus the buffer flows of Fig. 2.  Byte counts
  // reflect the producer's output at the current granularity (edges are
  // queried at analysis time, so they read the committed stream state).
  const auto full_pixels = [this] {
    return static_cast<u64>(config_.sequence.width) *
           static_cast<u64>(config_.sequence.height);
  };
  const auto roi_px = [this, full_pixels] {
    FrontState front = stream_.front();
    return front.roi_valid ? static_cast<u64>(front.roi.area()) : full_pixels();
  };

  graph_.add_edge(kRdgFull, kMkxFull,
                  [=] { return full_pixels() * 2 * sizeof(f32); });
  graph_.add_edge(kRdgRoi, kMkxRoi, [=] { return roi_px() * 2 * sizeof(f32); });
  graph_.add_edge(kMkxFull, kCplsSel,
                  [] { return u64{96} * sizeof(img::MarkerCandidate); });
  graph_.add_edge(kMkxRoi, kCplsSel,
                  [] { return u64{96} * sizeof(img::MarkerCandidate); });
  graph_.add_edge(kCplsSel, kReg, [] { return u64{sizeof(img::Couple)}; });
  graph_.add_edge(kReg, kRoiEst,
                  [] { return u64{sizeof(img::RegistrationResult)}; });
  graph_.add_edge(kRoiEst, kGwExt, [] { return u64{sizeof(Rect)}; });
  graph_.add_edge(kGwExt, kEnh,
                  [] { return u64{64} * sizeof(Point2f); });
  graph_.add_edge(kReg, kEnh,
                  [=] { return full_pixels() * sizeof(u16); });
  graph_.add_edge(kEnh, kZoom, [=] { return roi_px() * sizeof(f32); });

  // Stage split for pipelined execution: ENH and ZOOM form the back end.
  // All front nodes precede them in the topological order (ENH depends on
  // GW_EXT, the last front node), so the concatenation front + back is the
  // full topological order and record layouts match serial execution.
  front_order_.clear();
  back_order_.clear();
  for (i32 node : graph_.topological_order()) {
    if (node == kEnh || node == kZoom) {
      back_order_.push_back(node);
    } else {
      front_order_.push_back(node);
    }
  }
}

FrameContext* StentBoostApp::acquire_context() {
  common::MutexLock lock(ctx_mutex_);
  if (!free_ctx_.empty()) {
    FrameContext* ctx = free_ctx_.back();
    free_ctx_.pop_back();
    return ctx;
  }
  contexts_.push_back(std::make_unique<FrameContext>());
  return contexts_.back().get();
}

void StentBoostApp::recycle_context(FrameContext* ctx) {
  common::MutexLock lock(ctx_mutex_);
  free_ctx_.push_back(ctx);
}

FrameContext* StentBoostApp::admit_frame(i32 t) {
  return admit_image(t, sequence_.render(t));
}

FrameContext* StentBoostApp::admit_image(i32 t, const img::ImageU16& frame) {
  FrameContext* ctx = acquire_context();

  // Reuse a frame-image allocation once the stream's prev_frame reference
  // moved past it (use_count() == 1 means only the slot holds it).
  std::shared_ptr<img::ImageF32> image;
  for (std::shared_ptr<img::ImageF32>& slot : ctx->image_slots) {
    if (slot != nullptr && slot.use_count() == 1) {
      image = slot;
      break;
    }
  }
  if (image == nullptr) {
    image = std::make_shared<img::ImageF32>();
    for (std::shared_ptr<img::ImageF32>& slot : ctx->image_slots) {
      if (slot == nullptr) {
        slot = image;
        break;
      }
    }
  }
  img::to_f32(frame, *image);
  ctx->image = std::move(image);

  ctx->frame = t;
  ctx->ticket = stream_.admit(ctx->front);

  // Reset the per-frame outputs (buffers keep their allocations).
  ctx->ridge.dominant_pixels = 0;
  ctx->ridge.work = img::WorkReport{};
  ctx->ridge_valid = false;
  ctx->markers = img::MarkerResult{};
  ctx->couple.reset();
  ctx->reg = img::RegistrationResult{};
  ctx->reg_success = false;
  ctx->roi = ctx->front.roi;
  ctx->gw_ran = false;
  ctx->gw_found = false;
  for (auto& reports : ctx->stripe_reports) reports.clear();
  ctx->record = graph::FrameRecord{};
  ctx->record.frame = t;
  ctx->record.tasks.reserve(kNodeCount);

  // Knob snapshots: a set_* call only affects frames admitted afterwards.
  ctx->plan = plan_;
  ctx->budget = budget_;
  ctx->qos_extra_decim = qos_extra_decim_;
  ctx->qos_skip_gw = qos_skip_gw_;
  ctx->qos_zoom_div = qos_zoom_div_;

  const Rect full = Rect{0, 0, ctx->image->width(), ctx->image->height()};
  ctx->roi_for_frame = ctx->front.roi_valid ? ctx->front.roi : full;
  ctx->roi_pixels = static_cast<f64>(ctx->roi_for_frame.area()) *
                    config_.cost.resolution_scale;

  ctx->gctx.user = ctx;
  graph_.begin_frame(t, ctx->gctx);

  if (obs::enabled()) {
    obs::global().flight.record(obs::FrEventType::CtxAdmit, t, -1,
                                static_cast<f64>(ctx->ticket));
  }
  return ctx;
}

void StentBoostApp::run_front(FrameContext& ctx) {
  graph_.run_nodes(front_order_, ctx.gctx, ctx.record);
  stream_.commit_front(ctx.ticket, advance_front(ctx));
  if (obs::enabled()) {
    obs::global().flight.record(obs::FrEventType::CtxCommit, ctx.frame, -1,
                                static_cast<f64>(ctx.ticket), 0.0);
  }
}

void StentBoostApp::run_back(FrameContext& ctx) {
  stream_.acquire_back(ctx.ticket, ctx.back);
  graph_.run_nodes(back_order_, ctx.gctx, ctx.record);
  // SW_REG: a failed registration restarts the temporal integration (the
  // reference ROI is kept, matching the serial application).
  if (!ctx.reg_success) {
    ctx.back.accumulator = img::ImageF32();
    ctx.back.ref_couple.reset();
  }
  stream_.commit_back(ctx.ticket, std::move(ctx.back));
  ctx.back = BackState{};
  if (obs::enabled()) {
    obs::global().flight.record(obs::FrEventType::CtxCommit, ctx.frame, -1,
                                static_cast<f64>(ctx.ticket), 1.0);
  }
}

graph::FrameRecord StentBoostApp::retire_frame(FrameContext& ctx) {
  graph_.finalize_scenario(ctx.gctx, ctx.record);
  ctx.record.roi_pixels = ctx.roi_pixels;
  assign_costs(ctx);

  if (obs::enabled()) {
    obs::global()
        .metrics
        .counter("tripleC_scenario_frames_total", "Frames per active scenario",
                 obs::label("scenario", std::to_string(ctx.record.scenario)))
        .add();
  }

  graph::FrameRecord record = std::move(ctx.record);
  ctx.record = graph::FrameRecord{};
  last_ctx_ = &ctx;
  recycle_context(&ctx);
  return record;
}

graph::FrameRecord StentBoostApp::process_frame(i32 t) {
  return process_image(t, sequence_.render(t));
}

graph::FrameRecord StentBoostApp::process_image(i32 t,
                                                const img::ImageU16& frame) {
  obs::ScopedSpan host_span = obs::host_span("app_process_frame", "app");
  host_span.arg("frame", std::to_string(t));
  obs::ScopedTimer wall;

  FrameContext& ctx = *admit_image(t, frame);
  run_front(ctx);
  run_back(ctx);
  graph::FrameRecord record = retire_frame(ctx);

  if (obs::enabled()) {
    obs::global()
        .metrics
        .histogram("tripleC_host_frame_wall_ms",
                   "Host wall-clock time per processed frame",
                   obs::latency_buckets_ms())
        .record(wall.elapsed_ms());
  }
  return record;
}

std::vector<graph::FrameRecord> StentBoostApp::run(i32 n) {
  std::vector<graph::FrameRecord> records;
  records.reserve(static_cast<usize>(n));
  for (i32 t = 0; t < n; ++t) records.push_back(process_frame(t));
  return records;
}

void StentBoostApp::reset() {
  stream_.reset();
  {
    common::MutexLock lock(ctx_mutex_);
    free_ctx_.clear();
    contexts_.clear();
  }
  last_ctx_ = nullptr;
  for (auto& p : interference_) p.reset();
}

bool StentBoostApp::last_reg_success() const {
  return last_ctx_ != nullptr && last_ctx_->reg_success;
}

const img::ImageU16& StentBoostApp::last_output() const {
  static const img::ImageU16 kEmpty;
  return last_ctx_ != nullptr ? last_ctx_->output : kEmpty;
}

const img::RidgeResult* StentBoostApp::last_ridge() const {
  return last_ctx_ != nullptr && last_ctx_->ridge_valid ? &last_ctx_->ridge
                                                        : nullptr;
}

usize StentBoostApp::last_candidate_count() const {
  return last_ctx_ != nullptr ? last_ctx_->markers.candidates.size() : 0;
}

f64 StentBoostApp::roi_pixels_of_frame() const {
  return last_ctx_ != nullptr ? last_ctx_->roi_pixels : 0.0;
}

void StentBoostApp::run_instances(
    FrameContext& ctx, i32 node, i32 count, i32 instances,
    const std::function<void(i32, IndexRange)>& body) {
  if (instances > 1 && obs::enabled()) {
    obs::global().flight.record(obs::FrEventType::InstanceFanout, ctx.frame,
                                node, static_cast<f64>(instances),
                                static_cast<f64>(count));
  }
  if (pool_ != nullptr && instances > 1 && ctx.budget.max_concurrent != 1) {
    pool_->parallel_ranges(count, instances, body);
  } else {
    for (i32 i = 0; i < instances; ++i) {
      body(i, plat::even_chunk(count, instances, i));
    }
  }
}

std::optional<img::WorkReport> StentBoostApp::run_rdg(FrameContext& ctx,
                                                      bool roi_mode) {
  const img::ImageF32& frame = *ctx.image;
  const Rect full = Rect{0, 0, frame.width(), frame.height()};
  const Rect r = clamp_rect(roi_mode && ctx.front.roi_valid ? ctx.front.roi
                                                            : full,
                            frame.width(), frame.height());
  const i32 node = roi_mode ? kRdgRoi : kRdgFull;
  const i32 stripes = ctx.plan[static_cast<usize>(node)];

  // Output images are reused across frames; a serial run starts from
  // zero-filled allocations, so clear them before any instance writes.
  ctx.ridge.response.ensure(frame.width(), frame.height());
  ctx.ridge.blobness.ensure(frame.width(), frame.height());
  ctx.ridge.response.fill(0.0f);
  ctx.ridge.blobness.fill(0.0f);
  ctx.ridge.dominant_pixels = 0;

  const usize scratch_count = static_cast<usize>(std::max(stripes, 1));
  if (ctx.ridge_scratch.size() < scratch_count) {
    ctx.ridge_scratch.resize(scratch_count);
  }

  if (stripes <= 1) {
    img::WorkReport work;
    img::ridge_detect_rows(frame, r, config_.ridge, ctx.ridge.response,
                           ctx.ridge.blobness, IndexRange{r.y, r.y + r.h},
                           ctx.ridge.dominant_pixels, work,
                           &ctx.ridge_scratch[0]);
    work.data_parallel = true;
    ctx.ridge.work = work;
    ctx.ridge_valid = true;
    return work;
  }

  // Instance-parallel execution: disjoint output row bands, bit-identical
  // to the serial run.
  std::vector<img::WorkReport> reports(static_cast<usize>(stripes));
  std::vector<u64> dominant(static_cast<usize>(stripes), 0);
  auto run_band = [&](i32 band, IndexRange rows) {
    IndexRange abs_rows{r.y + rows.lo, r.y + rows.hi};
    img::ridge_detect_rows(frame, r, config_.ridge, ctx.ridge.response,
                           ctx.ridge.blobness, abs_rows,
                           dominant[static_cast<usize>(band)],
                           reports[static_cast<usize>(band)],
                           &ctx.ridge_scratch[static_cast<usize>(band)]);
  };
  run_instances(ctx, node, r.h, stripes, run_band);
  img::WorkReport total;
  for (usize b = 0; b < reports.size(); ++b) {
    total += reports[b];
    ctx.ridge.dominant_pixels += dominant[b];
  }
  total.data_parallel = true;
  ctx.stripe_reports[static_cast<usize>(node)] = std::move(reports);
  ctx.ridge.work = total;
  ctx.ridge_valid = true;
  return total;
}

std::optional<img::WorkReport> StentBoostApp::run_mkx(FrameContext& ctx,
                                                      bool roi_mode) {
  const img::ImageF32& frame = *ctx.image;
  const Rect full = Rect{0, 0, frame.width(), frame.height()};
  const Rect r = roi_mode && ctx.front.roi_valid ? ctx.front.roi : full;
  const img::RidgeResult* ridge = ctx.ridge_valid ? &ctx.ridge : nullptr;
  img::MarkerParams params = config_.markers;
  if (ctx.qos_extra_decim > 1) {
    // QoS degradation: coarser detection grid, matched blob scales.
    params.decimation *= ctx.qos_extra_decim;
    params.blob_sigma =
        std::max(0.7, params.blob_sigma / ctx.qos_extra_decim);
    params.background_sigma = 2.5 * params.blob_sigma;
  }
  if (clamp_rect(r, frame.width(), frame.height()).empty()) {
    ctx.markers = img::MarkerResult{};
    return ctx.markers.work;
  }

  // Grid preparation is a serial prologue; cell extraction fans out as
  // candidate-batch instances over NMS cell rows.
  img::MarkerGrid grid = img::marker_grid(frame, r, params);
  const i32 node = roi_mode ? kMkxRoi : kMkxFull;
  const i32 instances =
      std::clamp(std::max(ctx.plan[static_cast<usize>(node)],
                          ctx.budget.feature_batches),
                 1, std::max(grid.cell_rows, 1));
  std::vector<img::MarkerBatch> batches(static_cast<usize>(instances));
  run_instances(ctx, node, grid.cell_rows, instances,
                [&](i32 b, IndexRange cells) {
                  batches[static_cast<usize>(b)] = img::extract_marker_cells(
                      frame, grid, params, ridge, cells);
                });
  ctx.markers = img::finalize_markers(
      grid, params, ridge != nullptr,
      std::span<const img::MarkerBatch>(batches));
  return ctx.markers.work;
}

std::optional<img::WorkReport> StentBoostApp::run_cpls(FrameContext& ctx) {
  const img::Couple* prior = ctx.front.prev_couple.has_value()
                                 ? &*ctx.front.prev_couple
                                 : nullptr;
  const i32 n = narrow<i32>(ctx.markers.candidates.size());
  const i32 instances =
      std::clamp(ctx.budget.feature_batches, 1, std::max(n, 1));
  std::vector<img::CouplePartial> partials(static_cast<usize>(instances));
  run_instances(ctx, kCplsSel, n, instances, [&](i32 b, IndexRange range) {
    partials[static_cast<usize>(b)] = img::select_couple_rows(
        ctx.markers.candidates, config_.couples, prior, range);
  });
  img::CoupleResult result = img::merge_couple_partials(
      std::span<const img::CouplePartial>(partials),
      ctx.markers.candidates.size());
  ctx.couple = result.best;
  return result.work;
}

std::optional<img::WorkReport> StentBoostApp::run_reg(FrameContext& ctx) {
  if (!ctx.couple.has_value() || !ctx.front.prev_couple.has_value() ||
      ctx.front.prev_frame == nullptr) {
    ctx.reg_success = false;
    return std::nullopt;
  }
  ctx.reg = img::register_couple(*ctx.front.prev_couple, *ctx.couple,
                                 *ctx.front.prev_frame, *ctx.image,
                                 config_.registration);
  ctx.reg_success = ctx.reg.success;
  return ctx.reg.work;
}

std::optional<img::WorkReport> StentBoostApp::run_roi_est(FrameContext& ctx) {
  if (!ctx.couple.has_value()) return std::nullopt;
  const img::ImageF32& frame = *ctx.image;
  img::RoiResult result = img::estimate_roi(*ctx.couple, frame.width(),
                                            frame.height(), config_.roi);
  ctx.roi = result.roi;
  if (config_.roi_side_override > 0) {
    const i32 s = config_.roi_side_override;
    const i32 cx =
        narrow<i32>(std::lround(0.5 * (ctx.couple->a.x + ctx.couple->b.x)));
    const i32 cy =
        narrow<i32>(std::lround(0.5 * (ctx.couple->a.y + ctx.couple->b.y)));
    ctx.roi = clamp_rect(Rect{cx - s / 2, cy - s / 2, s, s}, frame.width(),
                         frame.height());
  }
  return result.work;
}

std::optional<img::WorkReport> StentBoostApp::run_gw(FrameContext& ctx) {
  if (ctx.qos_skip_gw) return std::nullopt;
  if (!ctx.couple.has_value() || !ctx.ridge_valid) return std::nullopt;
  img::GuideWireResult result =
      img::extract_guidewire(ctx.ridge, *ctx.couple, config_.guidewire);
  ctx.gw_found = result.found;
  ctx.gw_ran = true;
  return result.work;
}

std::optional<img::WorkReport> StentBoostApp::run_enh(FrameContext& ctx) {
  if (!ctx.reg_success || !ctx.couple.has_value()) return std::nullopt;
  if (ctx.back.accumulator.empty() || !ctx.back.ref_couple.has_value()) {
    // Integration (re)starts: the current couple defines the reference.
    ctx.back.ref_couple = ctx.couple;
  }
  // Crop rectangle in reference coordinates: current ROI dimensions centred
  // on the reference couple (the stent is stabilized there).
  const img::ImageF32& frame = *ctx.image;
  const Rect full = Rect{0, 0, frame.width(), frame.height()};
  const Rect cur_roi = !ctx.roi.empty() ? ctx.roi : full;
  const i32 rcx = narrow<i32>(
      std::lround(0.5 * (ctx.back.ref_couple->a.x + ctx.back.ref_couple->b.x)));
  const i32 rcy = narrow<i32>(
      std::lround(0.5 * (ctx.back.ref_couple->a.y + ctx.back.ref_couple->b.y)));
  ctx.back.ref_roi = clamp_rect(
      Rect{rcx - cur_roi.w / 2, rcy - cur_roi.h / 2, cur_roi.w, cur_roi.h},
      frame.width(), frame.height());
  img::EnhanceResult result =
      img::enhance(frame, ctx.back.ref_roi, ctx.back.accumulator, *ctx.couple,
                   *ctx.back.ref_couple, config_.enhance);
  ctx.back.accumulator = std::move(result.accumulator);
  ctx.enhanced_roi = std::move(result.enhanced_roi);
  return result.work;
}

std::optional<img::WorkReport> StentBoostApp::run_zoom(FrameContext& ctx) {
  if (ctx.enhanced_roi.empty()) return std::nullopt;
  img::ZoomParams zoom_params = config_.zoom;
  zoom_params.output_width =
      std::max(16, zoom_params.output_width / ctx.qos_zoom_div);
  zoom_params.output_height =
      std::max(16, zoom_params.output_height / ctx.qos_zoom_div);
  const i32 stripes = ctx.plan[kZoom];
  // Every output pixel is written below, so stale reused contents are fine.
  ctx.output.ensure(zoom_params.output_width, zoom_params.output_height);
  if (stripes <= 1) {
    img::WorkReport work;
    img::zoom_rows(ctx.enhanced_roi, zoom_params, ctx.output,
                   IndexRange{0, zoom_params.output_height}, work);
    work.data_parallel = true;
    return work;
  }
  std::vector<img::WorkReport> reports(static_cast<usize>(stripes));
  auto run_band = [&](i32 band, IndexRange rows) {
    img::zoom_rows(ctx.enhanced_roi, zoom_params, ctx.output, rows,
                   reports[static_cast<usize>(band)]);
  };
  run_instances(ctx, kZoom, zoom_params.output_height, stripes, run_band);
  img::WorkReport total;
  for (const img::WorkReport& w : reports) total += w;
  total.data_parallel = true;
  ctx.stripe_reports[kZoom] = std::move(reports);
  return total;
}

void StentBoostApp::set_quality(i32 extra_mkx_decimation, bool skip_guidewire,
                                i32 zoom_divisor) {
  qos_extra_decim_ = std::max(1, extra_mkx_decimation);
  qos_skip_gw_ = skip_guidewire;
  qos_zoom_div_ = std::max(1, zoom_divisor);
}

void StentBoostApp::assign_costs(FrameContext& ctx) {
  f64 latency = 0.0;
  for (graph::TaskExecution& exec : ctx.record.tasks) {
    if (!exec.executed) continue;
    const usize node = static_cast<usize>(exec.node);
    plat::TaskCost cost;
    if (!ctx.stripe_reports[node].empty()) {
      cost = cost_model_.striped_cost(ctx.stripe_reports[node]);
    } else {
      i32 stripes = node_data_parallel(exec.node) ? ctx.plan[node] : 1;
      cost = stripes > 1 ? cost_model_.striped_cost(exec.work, stripes)
                         : cost_model_.serial_cost(exec.work);
    }
    // Platform interference (cache misses, task switching) — the paper's
    // short-term fluctuation source.
    f64 factor = interference_[node].next();
    exec.simulated_ms = cost.total_ms * factor;
    latency += exec.simulated_ms;
    if (obs::enabled()) {
      obs::global()
          .metrics
          .histogram("tripleC_task_simulated_ms",
                     "Simulated execution time per task",
                     obs::latency_buckets_ms(),
                     obs::label("task", node_name(exec.node)))
          .record(exec.simulated_ms);
    }
  }
  ctx.record.latency_ms = latency;
}

FrontState StentBoostApp::advance_front(const FrameContext& ctx) const {
  FrontState next = ctx.front;

  // SW_RDG hysteresis.
  if (ctx.ridge_valid) {
    if (ctx.ridge.dominant_pixels < config_.dominant_low) {
      ++next.quiet_frames;
    } else {
      next.quiet_frames = 0;
    }
    if (next.quiet_frames >= config_.rdg_off_after) {
      next.rdg_active = false;
      next.quiet_frames = 0;
    }
  } else if (ctx.markers.candidates.size() > config_.clutter_high) {
    next.rdg_active = true;
    next.quiet_frames = 0;
  }

  // SW_ROI: the ROI estimated this frame becomes next frame's granularity.
  // A failed guide-wire check (when it ran) invalidates the couple, so the
  // next frame re-acquires from scratch.
  std::optional<img::Couple> carried = ctx.couple;
  bool roi_ok = carried.has_value() && !ctx.roi.empty();
  if (ctx.gw_ran && !ctx.gw_found) {
    roi_ok = false;
    carried.reset();
  }
  next.roi_valid = roi_ok && !config_.force_full_frame;
  next.roi = ctx.roi;
  next.prev_couple = std::move(carried);
  next.prev_frame = ctx.image;
  return next;
}

}  // namespace tc::app
