#include "app/frame_context.hpp"

#include <utility>

namespace tc::app {

u64 StreamState::admit(FrontState& out) {
  common::MutexLock lock(mutex_);
  const u64 ticket = next_ticket_++;
  cv_.wait(mutex_, [&] { return front_committed_ >= ticket; });
  out = front_;
  return ticket;
}

void StreamState::commit_front(u64 ticket, FrontState next) {
  common::MutexLock lock(mutex_);
  cv_.wait(mutex_, [&] { return front_committed_ == ticket; });
  front_ = std::move(next);
  front_committed_ = ticket + 1;
  cv_.notify_all();
}

void StreamState::acquire_back(u64 ticket, BackState& out) {
  common::MutexLock lock(mutex_);
  cv_.wait(mutex_, [&] { return back_committed_ >= ticket; });
  out = std::move(back_);
}

void StreamState::commit_back(u64 ticket, BackState next) {
  common::MutexLock lock(mutex_);
  cv_.wait(mutex_, [&] { return back_committed_ == ticket; });
  back_ = std::move(next);
  back_committed_ = ticket + 1;
  cv_.notify_all();
}

FrontState StreamState::front() const {
  common::MutexLock lock(mutex_);
  return front_;
}

std::optional<img::Couple> StreamState::back_ref_couple() const {
  common::MutexLock lock(mutex_);
  return back_.ref_couple;
}

Rect StreamState::back_ref_roi() const {
  common::MutexLock lock(mutex_);
  return back_.ref_roi;
}

u64 StreamState::tickets_issued() const {
  common::MutexLock lock(mutex_);
  return next_ticket_;
}

void StreamState::reset() {
  common::MutexLock lock(mutex_);
  front_ = FrontState{};
  back_ = BackState{};
  next_ticket_ = 0;
  front_committed_ = 0;
  back_committed_ = 0;
  cv_.notify_all();
}

}  // namespace tc::app
