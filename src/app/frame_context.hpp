// Per-frame execution context and cross-frame stream state of the StentBoost
// application (ROADMAP item 3: node → slot-task → instance architecture).
//
// A FrameContext carries everything one in-flight frame needs: the frame
// image (immutable input), the admission-time snapshot of the cross-frame
// state (switch values, prior-frame ROI/registration results), and the
// frame's owned outputs (stage results, per-node WorkReports, the
// FrameRecord under construction).  Because every mutable datum lives in the
// context, several frames can traverse the flow graph concurrently.
//
// The small amount of genuinely cross-frame state lives in StreamState,
// which is explicitly synchronized and ticket-ordered: a frame *admits*
// (reads a snapshot), executes against its context only, and *commits* its
// successor state when its producing stage retires.  The state is split by
// producing stage — FrontState is committed by the analysis front of the
// graph (RDG..GW_EXT), BackState by the enhancement back end (ENH, ZOOM) —
// so the back end of frame t-1 can overlap the front of frame t without
// either seeing a half-updated stream.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/sync.hpp"
#include "graph/exec_context.hpp"
#include "graph/record.hpp"
#include "imaging/pipeline.hpp"

namespace tc::app {

/// Forward-declared here so FrameContext can size its per-node arrays; the
/// authoritative definition is the Node enum in app/stentboost.hpp.
inline constexpr i32 kFrameNodeCount = 10;

/// Per-frame host resource budget derived from the Triple-C plan choice
/// (rt::budget_for_plan).  The budget throttles *host* concurrency only —
/// instance decomposition (and hence every WorkReport) is a function of the
/// stripe plan alone, so simulated results never depend on the budget.
struct InstanceBudget {
  /// Maximum stripe/batch instances of one slot task executing concurrently
  /// on the shared pool.  0 = unlimited (pool size); 1 = run the instances
  /// sequentially on the slot's own thread.
  i32 max_concurrent = 0;
  /// Candidate-batch instances for the feature-level stages (MKX cell-row
  /// batches, CPLS_SEL first-index batches).
  i32 feature_batches = 1;
};

/// Cross-frame state produced by the analysis front (RDG..GW_EXT) of frame
/// t and consumed at the admission of frame t+1.
struct FrontState {
  /// SW_RDG hysteresis machine.
  bool rdg_active = true;
  i32 quiet_frames = 0;
  /// SW_ROI: was an ROI estimated on a previous frame?
  bool roi_valid = false;
  Rect roi{};
  /// Tracking prior for CPLS_SEL (couple of the previous frame, dropped
  /// when the guide-wire check rejected it).
  std::optional<img::Couple> prev_couple;
  /// Previous frame pixels for REG's temporal difference (shares ownership
  /// with the producing context's image — no copy).
  std::shared_ptr<const img::ImageF32> prev_frame;
};

/// Cross-frame state produced by the enhancement back end (ENH) of frame t
/// and consumed by the back end of frame t+1.
struct BackState {
  /// Temporal-integration accumulator in reference coordinates.
  img::ImageF32 accumulator;
  /// Marker couple of the frame the integration reference is aligned to.
  std::optional<img::Couple> ref_couple;
  /// Crop rectangle (reference coordinates) of the latest enhanced ROI.
  Rect ref_roi{};
};

/// Explicitly-synchronized cross-frame state.  Frames obtain a monotonic
/// admission ticket; reads and commits are serialized in ticket order, so
/// out-of-order callers block until their predecessor committed — the
/// pipeline stays deterministic no matter how stages interleave.
class StreamState {
 public:
  /// Admit the next frame: assigns its ticket, waits until the previous
  /// frame's front committed, and snapshots the front state into `out`.
  [[nodiscard]] u64 admit(FrontState& out) TC_EXCLUDES(mutex_);

  /// Commit the front state produced by ticket `t` (blocks until every
  /// earlier ticket committed, so commits apply in admission order).
  void commit_front(u64 ticket, FrontState next) TC_EXCLUDES(mutex_);

  /// Acquire the back state for ticket `t` (waits for ticket t-1's back
  /// commit); the state is moved out, the caller commits its successor.
  void acquire_back(u64 ticket, BackState& out) TC_EXCLUDES(mutex_);

  void commit_back(u64 ticket, BackState next) TC_EXCLUDES(mutex_);

  /// Locked copies for inspection (analysis-time edge queries, tests).
  [[nodiscard]] FrontState front() const TC_EXCLUDES(mutex_);
  [[nodiscard]] std::optional<img::Couple> back_ref_couple() const
      TC_EXCLUDES(mutex_);
  [[nodiscard]] Rect back_ref_roi() const TC_EXCLUDES(mutex_);

  /// Tickets handed out so far (== frames admitted).
  [[nodiscard]] u64 tickets_issued() const TC_EXCLUDES(mutex_);

  /// Restore the initial state.  Must not race in-flight frames.
  void reset() TC_EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  common::CondVar cv_;
  FrontState front_ TC_GUARDED_BY(mutex_);
  BackState back_ TC_GUARDED_BY(mutex_);
  u64 next_ticket_ TC_GUARDED_BY(mutex_) = 0;
  u64 front_committed_ TC_GUARDED_BY(mutex_) = 0;
  u64 back_committed_ TC_GUARDED_BY(mutex_) = 0;
};

/// Everything one in-flight frame owns.  Contexts are pooled and recycled
/// by StentBoostApp; large buffers (frame image, ridge images, per-instance
/// scratch) keep their allocations across frames.
struct FrameContext {
  i32 frame = -1;
  u64 ticket = 0;

  /// Frame pixels (immutable input).  Two rotating slots let the admission
  /// path reuse an allocation as soon as the stream's prev_frame reference
  /// moved on.
  std::shared_ptr<img::ImageF32> image;
  std::array<std::shared_ptr<img::ImageF32>, 2> image_slots;

  /// Admission-time snapshot of the cross-frame front state.
  FrontState front;
  /// Back state acquired (moved in) by the back stage, committed at retire.
  BackState back;

  /// Per-frame copies of the app-level knobs (plan, budget, QoS) so a
  /// mid-stream set_* call only affects frames admitted afterwards.
  std::array<i32, kFrameNodeCount> plan{};
  InstanceBudget budget;
  i32 qos_extra_decim = 1;
  bool qos_skip_gw = false;
  i32 qos_zoom_div = 1;

  /// ROI granularity driver of this frame (full frame when no valid ROI).
  Rect roi_for_frame{};
  f64 roi_pixels = 0.0;

  // --- owned stage outputs -------------------------------------------------
  img::RidgeResult ridge;  ///< response/blobness buffers are reused
  bool ridge_valid = false;
  img::MarkerResult markers;
  std::optional<img::Couple> couple;
  img::RegistrationResult reg;
  bool reg_success = false;
  /// ROI estimated this frame (initialized from the snapshot, so a frame
  /// without a couple carries the stale ROI forward like the serial app).
  Rect roi{};
  bool gw_ran = false;
  bool gw_found = false;
  img::ImageF32 enhanced_roi;
  img::ImageU16 output;

  /// Per-node per-instance reports (empty when the node ran as a single
  /// instance) and the record under construction.
  std::array<std::vector<img::WorkReport>, kFrameNodeCount> stripe_reports;
  graph::FrameRecord record;

  /// Graph-level execution context (switch cache); `gctx.user == this`.
  graph::ExecContext gctx;

  /// One reusable scratch set per concurrent ridge instance.
  std::vector<img::RidgeScratch> ridge_scratch;
};

}  // namespace tc::app
