// Space-time buffer-occupation model (paper §5.2, Fig. 5).
//
// A streaming task scans its image buffers linearly; each internal buffer is
// live over an interval of the (normalized) scan time.  Integrating the live
// buffer sizes over time yields the cache occupancy curve; wherever the
// curve exceeds the available cache capacity, the overflowing portion of the
// re-accessed buffers must be swapped to external memory and back, which
// costs extra communication bandwidth between the cache and external
// storage.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace tc::plat {

struct BufferPhase {
  std::string name;
  /// Buffer size in bytes.
  u64 bytes = 0;
  /// Live interval in normalized task time, 0 ≤ t_start < t_end ≤ 1.
  f64 t_start = 0.0;
  f64 t_end = 1.0;
  /// How many times the buffer contents are re-read after production.
  /// Re-accessed bytes that overflowed the cache must be fetched again.
  i32 reuse_count = 1;
};

struct OccupancySample {
  f64 t = 0.0;
  u64 bytes = 0;
};

struct OccupancyAnalysis {
  /// Piecewise-constant occupancy curve sampled at every phase boundary.
  std::vector<OccupancySample> curve;
  u64 peak_bytes = 0;
  /// Bytes that did not fit into the capacity at the worst point.
  u64 overflow_bytes = 0;
  /// Extra cache<->memory traffic caused by eviction: each overflowing,
  /// re-accessed byte is written out once and read back reuse_count times.
  u64 eviction_traffic_bytes = 0;
};

class SpaceTimeBufferModel {
 public:
  void add_buffer(BufferPhase phase);
  [[nodiscard]] const std::vector<BufferPhase>& buffers() const {
    return buffers_;
  }

  /// Analyze occupancy against a cache of `capacity_bytes`.
  [[nodiscard]] OccupancyAnalysis analyze(u64 capacity_bytes) const;

 private:
  std::vector<BufferPhase> buffers_;
};

}  // namespace tc::plat
