// Platform description — the generic architecture model of Fig. 4 of the
// paper, instantiated by default with the parameters of the paper's
// dual quad-core machine (Intel 5000-class "Blackford" system):
//   8 CPUs × 2 327 MCycles/s, 8 × 32 KB L1, 4 × 4 MB L2 (one per core pair),
//   cache bus 72 GB/s, memory bus 48 GB/s, I/O bus 29 GB/s,
//   4 DRAM channels measured at 0.94–3.83 GB/s, 4 GB external memory.
#pragma once

#include "common/types.hpp"

namespace tc::plat {

struct PlatformSpec {
  i32 cpu_count = 8;
  /// Per-CPU clock in megacycles per second (Fig. 4: 2 327 MCycles/s).
  f64 cpu_mcycles_per_s = 2327.0;

  u64 l1_bytes = 32 * KiB;  // per CPU
  u64 l2_bytes = 4 * MiB;   // per L2 slice
  i32 cpus_per_l2 = 2;      // 8 CPUs share 4 L2 slices
  u64 cache_line_bytes = 64;

  /// Bus bandwidths in GB/s (Fig. 4b).
  f64 cache_bus_gbps = 72.0;
  f64 memory_bus_gbps = 48.0;
  f64 io_bus_gbps = 29.0;

  /// Per-DRAM-channel effective bandwidth range measured on the platform.
  f64 dram_channel_low_gbps = 0.94;
  f64 dram_channel_high_gbps = 3.83;
  i32 dram_channels = 4;
  u64 dram_bytes = 4 * GiB;

  [[nodiscard]] i32 l2_slice_count() const { return cpu_count / cpus_per_l2; }

  /// Aggregate DRAM bandwidth under a given contention level in [0, 1]
  /// (0 = a single undisturbed stream at the high end of the measured range,
  /// 1 = fully contended at the low end).
  [[nodiscard]] f64 dram_gbps(f64 contention) const {
    f64 per_channel = dram_channel_high_gbps +
                      contention * (dram_channel_low_gbps -
                                    dram_channel_high_gbps);
    return per_channel * static_cast<f64>(dram_channels);
  }

  /// The paper's evaluation platform.
  [[nodiscard]] static PlatformSpec paper_platform() { return PlatformSpec{}; }
};

/// Canonical application format of the paper: 1024×1024 pixels, 2 B/pixel,
/// 30 Hz.
struct VideoFormat {
  i32 width = 1024;
  i32 height = 1024;
  i32 bytes_per_pixel = 2;
  f64 fps = 30.0;

  [[nodiscard]] u64 frame_bytes() const {
    return static_cast<u64>(width) * static_cast<u64>(height) *
           static_cast<u64>(bytes_per_pixel);
  }
  [[nodiscard]] f64 stream_mbytes_per_s() const {
    return static_cast<f64>(frame_bytes()) * fps / 1.0e6;
  }
};

}  // namespace tc::plat
