// Deterministic execution-cost model.
//
// Converts a task's WorkReport (actual, content-dependent work metrics
// collected while the real algorithms ran) into simulated execution time on
// the Fig.-4 platform.  This plays the role of the paper's profiling
// measurements: content-dependent, reproducible, host-independent.
//
// Cost structure per task invocation:
//   compute_ms = (pixel_ops·scale·c_px + feature_ops·c_ft) / cycles_per_ms
//   dram_traffic = compulsory (input+output) + eviction overflow vs. L2
//   memory_ms  = dram_traffic / dram_bandwidth(contention)
//   total_ms   = max(compute_ms, memory_ms) + dispatch overhead
// (compute and memory streams overlap; a task is compute- or bandwidth-
// bound, whichever is slower.)
//
// Stripe-parallel execution on k CPUs divides pixel work by k (with a
// measured or assumed imbalance factor), adds one synchronization barrier,
// and shares the DRAM bandwidth.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "imaging/work_report.hpp"
#include "platform/spec.hpp"

namespace tc::plat {

struct CostParams {
  /// Average cycles per pixel-array operation (calibrated so full-frame
  /// ridge detection at the paper's 1024×1024 format lands in the 35-55 ms
  /// band of Fig. 3).
  f64 cycles_per_pixel_op = 1.1;
  /// Cycles per feature-level operation (branchy scalar code).
  f64 cycles_per_feature_op = 9.0;
  /// Fixed per-task dispatch/control overhead.
  f64 dispatch_ms = 0.12;
  /// Barrier cost per stripe-parallel task invocation.
  f64 stripe_sync_ms = 0.18;
  /// Load-imbalance factor applied to an even work split when per-stripe
  /// reports are not available (>= 1).
  f64 default_imbalance = 1.07;
  /// DRAM contention level in [0, 1] for a single running task.
  f64 base_dram_contention = 0.45;
  /// Extra contention per additional CPU hitting DRAM simultaneously.
  f64 contention_per_cpu = 0.06;
  /// Scales pixel-op counts to the paper's 1024×1024 format when the
  /// experiment renders frames at a smaller size (work metrics per frame
  /// are multiplied by this factor).  1.0 = no scaling.
  f64 resolution_scale = 1.0;

  /// Platform interference: the paper attributes the short-term execution-
  /// time fluctuation to "cache misses or the overhead imposed by task
  /// switching and control".  The simulator reproduces it as a per-task
  /// AR(1) multiplicative jitter, total_ms *= (1 + x), with
  /// x_k = phi * x_{k-1} + N(0, sigma) — deterministic per seed.
  /// sigma = 0 disables interference.
  f64 interference_sigma = 0.035;
  f64 interference_phi = 0.55;
  u64 interference_seed = 0x1F2E3D4C;
};

struct TaskCost {
  f64 compute_ms = 0.0;
  f64 memory_ms = 0.0;
  f64 total_ms = 0.0;
  u64 dram_traffic_bytes = 0;
};

/// Estimated latency of running a task with `stripes` stripes, derived from
/// its *serial* time prediction: the dispatch overhead is not divisible,
/// compute divides by the stripe count with the default imbalance factor,
/// and a barrier is added.  This is the single definition of the stripe
/// scaling law — the runtime planner (rt::choose_plan) and the static audit
/// (analysis::sched) both call it, so their latency proofs agree by
/// construction.
[[nodiscard]] f64 striped_ms_from_serial(const CostParams& params,
                                         f64 serial_ms, i32 stripes);

/// Inverse of striped_ms_from_serial: recover the serial-equivalent time
/// from a measurement taken under `stripes`-way striping (used to keep the
/// predictors, which model serial execution, unbiased under repartitioning).
[[nodiscard]] f64 serial_ms_from_striped(const CostParams& params,
                                         f64 striped_ms, i32 stripes);

/// Deterministic per-task AR(1) interference process (see
/// CostParams::interference_sigma).  One instance per task node; next() is
/// called once per invocation and returns the multiplicative time factor.
class InterferenceProcess {
 public:
  InterferenceProcess(const CostParams& params, u64 stream)
      : phi_(params.interference_phi),
        sigma_(params.interference_sigma),
        rng_(params.interference_seed, stream) {}

  [[nodiscard]] f64 next() {
    state_ = phi_ * state_ + rng_.normal(0.0, sigma_);
    f64 factor = 1.0 + state_;
    return factor < 0.2 ? 0.2 : factor;
  }

  void reset() { state_ = 0.0; }

 private:
  f64 phi_;
  f64 sigma_;
  Pcg32 rng_;
  f64 state_ = 0.0;
};

class CostModel {
 public:
  CostModel(const PlatformSpec& spec, const CostParams& params)
      : spec_(spec), params_(params) {}

  [[nodiscard]] const PlatformSpec& spec() const { return spec_; }
  [[nodiscard]] const CostParams& params() const { return params_; }

  /// Simulated cycles available per millisecond on one CPU.
  [[nodiscard]] f64 cycles_per_ms() const {
    return spec_.cpu_mcycles_per_s * 1.0e6 / 1.0e3;
  }

  /// DRAM traffic of one invocation: compulsory input/output plus eviction
  /// overflow when the task footprint exceeds one L2 slice.
  [[nodiscard]] u64 dram_traffic(const img::WorkReport& w) const;

  /// Cost of running the task serially on a single CPU.
  [[nodiscard]] TaskCost serial_cost(const img::WorkReport& w) const;

  /// Cost of running a data-parallel task split into `stripes` even stripes
  /// (uses the default imbalance factor).
  [[nodiscard]] TaskCost striped_cost(const img::WorkReport& w,
                                      i32 stripes) const;

  /// Cost computed from the actual per-stripe reports (exact imbalance).
  [[nodiscard]] TaskCost striped_cost(
      std::span<const img::WorkReport> stripe_reports) const;

 private:
  [[nodiscard]] f64 compute_ms_of(const img::WorkReport& w) const;
  [[nodiscard]] f64 memory_ms_of(u64 traffic_bytes, i32 active_cpus) const;

  PlatformSpec spec_;
  CostParams params_;
};

}  // namespace tc::plat
