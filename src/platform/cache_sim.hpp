// Set-associative LRU cache simulator.
//
// The Triple-C bandwidth analysis uses the *analytical* space-time
// buffer-occupation model (buffer_model.hpp); this simulator provides an
// independent reference: replaying a task's access trace through it yields
// the actual miss traffic, which the tests compare against the analytical
// prediction.  It also lets users study access-pattern effects (streaming
// vs. re-use) that the analytical model abstracts away.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace tc::plat {

struct CacheConfig {
  u64 capacity_bytes = 4 * MiB;
  u64 line_bytes = 64;
  u32 associativity = 8;
};

struct CacheStats {
  u64 accesses = 0;
  u64 hits = 0;
  u64 misses = 0;
  /// Lines written back because they were dirty when evicted.
  u64 writebacks = 0;

  [[nodiscard]] f64 miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<f64>(misses) / static_cast<f64>(accesses);
  }
  /// Total cache<->memory traffic: misses fetch a line, dirty evictions
  /// write one back.
  [[nodiscard]] u64 traffic_bytes(u64 line_bytes) const {
    return (misses + writebacks) * line_bytes;
  }
};

class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] u64 set_count() const { return sets_; }

  /// Access one byte address (the whole line is fetched on a miss).
  void read(u64 address);
  void write(u64 address);

  /// Touch a contiguous byte range.
  void read_range(u64 address, u64 bytes);
  void write_range(u64 address, u64 bytes);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Flush all lines (dirty lines count as writebacks).
  void flush();

 private:
  struct Line {
    u64 tag = ~0ull;
    u64 lru = 0;  // larger = more recently used
    bool valid = false;
    bool dirty = false;
  };

  void access(u64 address, bool is_write);

  CacheConfig config_;
  u64 sets_;
  u64 tick_ = 0;
  std::vector<Line> lines_;  // sets_ x associativity, row-major
  CacheStats stats_;
};

}  // namespace tc::plat
