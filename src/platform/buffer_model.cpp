#include "platform/buffer_model.hpp"

#include <algorithm>
#include <cassert>

namespace tc::plat {

void SpaceTimeBufferModel::add_buffer(BufferPhase phase) {
  assert(phase.t_start >= 0.0 && phase.t_end <= 1.0 &&
         phase.t_start < phase.t_end);
  buffers_.push_back(std::move(phase));
}

OccupancyAnalysis SpaceTimeBufferModel::analyze(u64 capacity_bytes) const {
  OccupancyAnalysis analysis;

  // Collect phase boundaries as sample points.
  std::vector<f64> times;
  times.reserve(buffers_.size() * 2 + 2);
  times.push_back(0.0);
  times.push_back(1.0);
  for (const BufferPhase& b : buffers_) {
    times.push_back(b.t_start);
    times.push_back(b.t_end);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  // Occupancy just after each boundary (piecewise constant between them).
  for (usize i = 0; i + 1 < times.size(); ++i) {
    f64 mid = 0.5 * (times[i] + times[i + 1]);
    u64 occ = 0;
    for (const BufferPhase& b : buffers_) {
      if (b.t_start <= mid && mid < b.t_end) occ += b.bytes;
    }
    analysis.curve.push_back(OccupancySample{times[i], occ});
    analysis.peak_bytes = std::max(analysis.peak_bytes, occ);
  }
  analysis.curve.push_back(
      OccupancySample{1.0, analysis.curve.empty()
                               ? 0
                               : analysis.curve.back().bytes});

  if (analysis.peak_bytes > capacity_bytes) {
    analysis.overflow_bytes = analysis.peak_bytes - capacity_bytes;
    // Attribute the overflow to the live buffers proportionally to size, at
    // the worst point; each overflowing byte of a buffer reused k times is
    // written out once and read back k times.
    //
    // Find the worst sample interval first.
    f64 worst_mid = 0.0;
    u64 worst_occ = 0;
    for (usize i = 0; i + 1 < analysis.curve.size(); ++i) {
      if (analysis.curve[i].bytes > worst_occ) {
        worst_occ = analysis.curve[i].bytes;
        worst_mid = 0.5 * (analysis.curve[i].t + analysis.curve[i + 1].t);
      }
    }
    for (const BufferPhase& b : buffers_) {
      if (!(b.t_start <= worst_mid && worst_mid < b.t_end)) continue;
      f64 share = static_cast<f64>(b.bytes) / static_cast<f64>(worst_occ);
      u64 overflow_share =
          static_cast<u64>(share * static_cast<f64>(analysis.overflow_bytes));
      analysis.eviction_traffic_bytes +=
          overflow_share * static_cast<u64>(1 + std::max(b.reuse_count, 0));
    }
  }
  return analysis;
}

}  // namespace tc::plat
