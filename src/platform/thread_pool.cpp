#include "platform/thread_pool.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/obs.hpp"

namespace tc::plat {

namespace {

/// Pin `thread` to `core` (mod the hardware core count).  Returns false on
/// platforms without pthread_setaffinity_np or when the call fails — the
/// pool then runs unpinned, which is always correct, just less cache-local.
bool pin_to_core([[maybe_unused]] std::thread& thread,
                 [[maybe_unused]] usize core) {
#if defined(__linux__)
  const usize cores =
      std::max<usize>(1, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % cores), &set);
  return pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set) ==
         0;
#else
  return false;
#endif
}

/// Run one queued job, recording a host-timeline span and the pool metrics
/// when observability is on.
void run_job_observed(const std::function<void()>& job) {
  if (!obs::enabled()) {
    job();
    return;
  }
  obs::ObsContext& ctx = obs::global();
  const u32 tid = ctx.tracer.host_tid();
  ctx.tracer.set_thread_name(obs::kHostPid, tid,
                             "pool worker " + std::to_string(tid));
  const f64 t0_us = ctx.tracer.host_now_us();
  job();
  const f64 dur_us = ctx.tracer.host_now_us() - t0_us;
  obs::SpanEvent e;
  e.name = "pool_job";
  e.category = "pool";
  e.pid = obs::kHostPid;
  e.tid = tid;
  e.ts_us = t0_us;
  e.dur_us = dur_us;
  ctx.tracer.record(std::move(e));
  ctx.metrics
      .counter("tripleC_pool_jobs_total", "Jobs executed by the thread pool")
      .add();
  ctx.metrics
      .histogram("tripleC_pool_job_wall_ms",
                 "Host wall-clock time per thread-pool job",
                 obs::latency_buckets_ms())
      .record(dur_us / 1000.0);
}

}  // namespace

IndexRange even_chunk(i32 count, i32 chunks, i32 chunk) {
  if (chunks <= 0) return IndexRange{0, count};
  i32 base = count / chunks;
  i32 rem = count % chunks;
  i32 lo = chunk * base + std::min(chunk, rem);
  i32 size = base + (chunk < rem ? 1 : 0);
  return IndexRange{lo, lo + size};
}

ThreadPool::ThreadPool(usize threads, bool pin_threads) {
  if (threads == 0) {
    threads = std::max<usize>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  pinned_ = pin_threads;
  for (usize i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    if (pin_threads) pinned_ = pin_to_core(workers_.back(), i) && pinned_;
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      common::MutexLock lock(mutex_);
      cv_.wait(mutex_,
               [this]() TC_REQUIRES(mutex_) { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
    }
    run_job_observed(job);
    {
      common::MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  {
    common::MutexLock lock(mutex_);
    in_flight_ += jobs.size();
    for (auto& j : jobs) queue_.push(std::move(j));
  }
  cv_.notify_all();
  common::MutexLock lock(mutex_);
  done_cv_.wait(mutex_,
                [this]() TC_REQUIRES(mutex_) { return in_flight_ == 0; });
}

void ThreadPool::parallel_ranges(
    i32 count, i32 chunks, const std::function<void(i32, IndexRange)>& fn) {
  std::vector<std::function<void()>> jobs;
  jobs.reserve(static_cast<usize>(chunks));
  for (i32 c = 0; c < chunks; ++c) {
    IndexRange range = even_chunk(count, chunks, c);
    if (range.empty()) continue;
    jobs.push_back([c, range, &fn] { fn(c, range); });
  }
  run_all(std::move(jobs));
}

}  // namespace tc::plat
