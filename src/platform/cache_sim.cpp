#include "platform/cache_sim.hpp"

#include <cassert>

#include "obs/obs.hpp"

namespace tc::plat {

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  assert(config_.line_bytes > 0 && config_.associativity > 0);
  sets_ = config_.capacity_bytes /
          (config_.line_bytes * config_.associativity);
  if (sets_ == 0) sets_ = 1;
  lines_.assign(sets_ * config_.associativity, Line{});
}

void CacheSim::access(u64 address, bool is_write) {
  ++stats_.accesses;
  ++tick_;
  const u64 line_addr = address / config_.line_bytes;
  const u64 set = line_addr % sets_;
  const u64 tag = line_addr / sets_;
  Line* base = &lines_[set * config_.associativity];

  // Hit?
  for (u32 w = 0; w < config_.associativity; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      line.lru = tick_;
      if (is_write) line.dirty = true;
      return;
    }
  }

  // Miss: fill an invalid way if one exists, otherwise evict the LRU way.
  ++stats_.misses;
  Line* victim = nullptr;
  for (u32 w = 0; w < config_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (victim == nullptr || base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    if (obs::enabled()) {
      // Registered once; the reference stays valid for the process lifetime.
      static obs::Counter& evicted = obs::global().metrics.counter(
          "tripleC_cache_eviction_bytes_total",
          "Bytes written back by the cache simulator on dirty evictions");
      evicted.add(static_cast<f64>(config_.line_bytes));
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  victim->dirty = is_write;
}

void CacheSim::read(u64 address) { access(address, false); }
void CacheSim::write(u64 address) { access(address, true); }

void CacheSim::read_range(u64 address, u64 bytes) {
  const u64 first = address / config_.line_bytes;
  const u64 last = (address + (bytes == 0 ? 0 : bytes - 1)) / config_.line_bytes;
  for (u64 line = first; line <= last && bytes > 0; ++line) {
    read(line * config_.line_bytes);
  }
}

void CacheSim::write_range(u64 address, u64 bytes) {
  const u64 first = address / config_.line_bytes;
  const u64 last = (address + (bytes == 0 ? 0 : bytes - 1)) / config_.line_bytes;
  for (u64 line = first; line <= last && bytes > 0; ++line) {
    write(line * config_.line_bytes);
  }
}

void CacheSim::flush() {
  for (Line& line : lines_) {
    if (line.valid && line.dirty) ++stats_.writebacks;
    line = Line{};
  }
}

}  // namespace tc::plat
