// Host thread pool for real (not simulated) stripe-parallel execution.
//
// Used by the executors to actually run data-parallel stripes concurrently
// on the host machine; the simulated platform timing comes from CostModel,
// so host core count never affects experiment results — only wall-clock.
#pragma once

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/types.hpp"

namespace tc::plat {

class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = std::thread::hardware_concurrency()).
  /// With `pin_threads`, worker i is pinned to core i mod hardware cores
  /// (pthread_setaffinity_np); a no-op on platforms without the call — the
  /// pool works identically, only the scheduler placement hint is lost.
  explicit ThreadPool(usize threads = 0, bool pin_threads = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] usize thread_count() const { return workers_.size(); }
  /// True when every worker was successfully pinned to a core.
  [[nodiscard]] bool pinned() const { return pinned_; }

  /// Run all jobs (possibly concurrently) and block until every one
  /// finished.  Safe to call repeatedly; not reentrant from inside a job.
  void run_all(std::vector<std::function<void()>> jobs);

  /// Split [0, count) into `chunks` contiguous ranges and run
  /// fn(chunk_index, range) for each in parallel.
  void parallel_ranges(i32 count, i32 chunks,
                       const std::function<void(i32, IndexRange)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  common::Mutex mutex_;
  std::queue<std::function<void()>> queue_ TC_GUARDED_BY(mutex_);
  common::CondVar cv_;
  common::CondVar done_cv_;
  usize in_flight_ TC_GUARDED_BY(mutex_) = 0;
  bool stop_ TC_GUARDED_BY(mutex_) = false;
  bool pinned_ = false;
};

/// Compute the `chunk`-th of `chunks` contiguous ranges covering [0, count):
/// sizes differ by at most one row.
[[nodiscard]] IndexRange even_chunk(i32 count, i32 chunks, i32 chunk);

}  // namespace tc::plat
