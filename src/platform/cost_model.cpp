#include "platform/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace tc::plat {

f64 striped_ms_from_serial(const CostParams& params, f64 serial_ms,
                           i32 stripes) {
  if (stripes <= 1) return serial_ms;
  f64 divisible = std::max(0.0, serial_ms - params.dispatch_ms);
  return divisible / static_cast<f64>(stripes) * params.default_imbalance +
         params.dispatch_ms + params.stripe_sync_ms;
}

f64 serial_ms_from_striped(const CostParams& params, f64 striped_ms,
                           i32 stripes) {
  if (stripes <= 1) return striped_ms;
  f64 divisible = std::max(
      0.0, striped_ms - params.dispatch_ms - params.stripe_sync_ms);
  return divisible * static_cast<f64>(stripes) / params.default_imbalance +
         params.dispatch_ms;
}

u64 CostModel::dram_traffic(const img::WorkReport& w) const {
  f64 scale = params_.resolution_scale;
  u64 compulsory = static_cast<u64>(
      static_cast<f64>(w.input_bytes + w.output_bytes) * scale);
  u64 footprint = static_cast<u64>(static_cast<f64>(w.footprint_bytes()) * scale);
  u64 eviction = 0;
  if (footprint > spec_.l2_bytes) {
    // Overflowing re-accessed bytes are swapped out and back (paper §5.2).
    eviction = 2 * (footprint - spec_.l2_bytes);
  }
  return compulsory + eviction;
}

f64 CostModel::compute_ms_of(const img::WorkReport& w) const {
  f64 cycles = static_cast<f64>(w.pixel_ops) * params_.resolution_scale *
                   params_.cycles_per_pixel_op +
               static_cast<f64>(w.feature_ops) * params_.cycles_per_feature_op;
  return cycles / cycles_per_ms();
}

f64 CostModel::memory_ms_of(u64 traffic_bytes, i32 active_cpus) const {
  f64 contention = std::clamp(
      params_.base_dram_contention +
          params_.contention_per_cpu * static_cast<f64>(active_cpus - 1),
      0.0, 1.0);
  f64 gbps = spec_.dram_gbps(contention);
  return static_cast<f64>(traffic_bytes) / (gbps * 1.0e9) * 1.0e3;
}

TaskCost CostModel::serial_cost(const img::WorkReport& w) const {
  TaskCost cost;
  cost.compute_ms = compute_ms_of(w);
  cost.dram_traffic_bytes = dram_traffic(w);
  cost.memory_ms = memory_ms_of(cost.dram_traffic_bytes, 1);
  cost.total_ms = std::max(cost.compute_ms, cost.memory_ms) +
                  params_.dispatch_ms;
  return cost;
}

TaskCost CostModel::striped_cost(const img::WorkReport& w, i32 stripes) const {
  if (stripes <= 1) return serial_cost(w);
  stripes = std::min(stripes, spec_.cpu_count);
  TaskCost cost;
  cost.compute_ms = compute_ms_of(w) / static_cast<f64>(stripes) *
                    params_.default_imbalance;
  cost.dram_traffic_bytes = dram_traffic(w);
  cost.memory_ms = memory_ms_of(cost.dram_traffic_bytes, stripes);
  cost.total_ms = std::max(cost.compute_ms, cost.memory_ms) +
                  params_.dispatch_ms + params_.stripe_sync_ms;
  return cost;
}

TaskCost CostModel::striped_cost(
    std::span<const img::WorkReport> stripe_reports) const {
  if (stripe_reports.empty()) return TaskCost{};
  if (stripe_reports.size() == 1) return serial_cost(stripe_reports[0]);
  TaskCost cost;
  img::WorkReport total;
  f64 worst_compute = 0.0;
  for (const img::WorkReport& w : stripe_reports) {
    worst_compute = std::max(worst_compute, compute_ms_of(w));
    total += w;
  }
  cost.compute_ms = worst_compute;
  cost.dram_traffic_bytes = dram_traffic(total);
  cost.memory_ms = memory_ms_of(cost.dram_traffic_bytes,
                                narrow<i32>(stripe_reports.size()));
  cost.total_ms = std::max(cost.compute_ms, cost.memory_ms) +
                  params_.dispatch_ms + params_.stripe_sync_ms;
  return cost;
}

}  // namespace tc::plat
