// Task abstraction for groups of dynamic image-processing tasks.
//
// A Task wraps one pipeline stage.  Its execute() runs the stage for the
// frame described by the ExecContext and returns the stage's WorkReport, or
// std::nullopt when the stage was switched off for this frame (the "groups
// of tasks" dynamism of the paper).  Task bodies must keep all per-frame
// state in the context (see graph/exec_context.hpp) — the graph may have
// several frames in flight at once.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "graph/exec_context.hpp"
#include "imaging/work_report.hpp"

namespace tc::graph {

class Task {
 public:
  virtual ~Task() = default;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  [[nodiscard]] std::string_view name() const { return name_; }

  /// True when the task streams over pixel rows and supports stripe
  /// (data-parallel) partitioning.
  [[nodiscard]] bool data_parallel() const { return data_parallel_; }

  /// Run the stage for the context's frame.  std::nullopt = switched off.
  virtual std::optional<img::WorkReport> execute(ExecContext& ctx) = 0;

 protected:
  Task(std::string name, bool data_parallel)
      : name_(std::move(name)), data_parallel_(data_parallel) {}

 private:
  std::string name_;
  bool data_parallel_;
};

/// Adapter turning a callable into a Task.  The callable returns
/// std::optional<WorkReport> (nullopt when the guard logic inside skipped
/// the stage this frame).
class LambdaTask final : public Task {
 public:
  using Fn = std::function<std::optional<img::WorkReport>(ExecContext&)>;

  LambdaTask(std::string name, bool data_parallel, Fn fn)
      : Task(std::move(name), data_parallel), fn_(std::move(fn)) {}

  std::optional<img::WorkReport> execute(ExecContext& ctx) override {
    return fn_(ctx);
  }

 private:
  Fn fn_;
};

/// Build a LambdaTask from either signature: callables taking ExecContext&
/// are used directly; legacy zero-argument callables (whose state lives in
/// captures) are wrapped.  Both may return WorkReport or optional<WorkReport>.
template <class F>
[[nodiscard]] std::unique_ptr<Task> make_task(std::string name,
                                              bool data_parallel, F fn) {
  if constexpr (std::is_invocable_v<F&, ExecContext&>) {
    return std::make_unique<LambdaTask>(std::move(name), data_parallel,
                                        LambdaTask::Fn(std::move(fn)));
  } else {
    return std::make_unique<LambdaTask>(
        std::move(name), data_parallel,
        LambdaTask::Fn([f = std::move(fn)](ExecContext&) mutable
                           -> std::optional<img::WorkReport> { return f(); }));
  }
}

}  // namespace tc::graph
