#include "graph/scenario.hpp"

#include <sstream>

namespace tc::graph {

std::string scenario_label(ScenarioId id, std::span<const std::string> names) {
  std::ostringstream os;
  for (usize s = 0; s < names.size(); ++s) {
    if (s != 0) os << ' ';
    os << names[s] << '=' << (((id >> s) & 1u) != 0 ? '1' : '0');
  }
  return os.str();
}

u64 ScenarioHistogram::total() const {
  u64 t = 0;
  for (u64 c : counts) t += c;
  return t;
}

f64 ScenarioHistogram::probability(ScenarioId id) const {
  u64 t = total();
  if (t == 0) return 0.0;
  return static_cast<f64>(counts[id]) / static_cast<f64>(t);
}

f64 ScenarioTransitions::probability(ScenarioId from, ScenarioId to) const {
  u64 row = 0;
  for (usize j = 0; j < n_; ++j) row += counts_[from * n_ + j];
  if (row == 0) return 1.0 / static_cast<f64>(n_);
  return static_cast<f64>(counts_[from * n_ + to]) / static_cast<f64>(row);
}

u64 ScenarioTransitions::row_observations(ScenarioId from) const {
  u64 row = 0;
  for (usize j = 0; j < n_; ++j) row += counts_[from * n_ + j];
  return row;
}

ScenarioId ScenarioTransitions::most_likely_next(ScenarioId from) const {
  ScenarioId best = from;  // default: scenarios persist
  u64 best_count = 0;
  for (usize j = 0; j < n_; ++j) {
    u64 c = counts_[from * n_ + j];
    if (c > best_count) {
      best_count = c;
      best = static_cast<ScenarioId>(j);
    }
  }
  return best;
}

}  // namespace tc::graph
