// Scenario utilities.
//
// A scenario is one joint outcome of all flow-graph switches (paper §5.2:
// three switches ⇒ eight scenarios).  Scenario ids are switch bitmasks.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/record.hpp"

namespace tc::graph {

[[nodiscard]] constexpr usize scenario_count(usize switch_count) {
  return usize{1} << switch_count;
}

/// Human-readable label, e.g. "RDG=1 ROI=0 REG=1" for id 0b101.
[[nodiscard]] std::string scenario_label(ScenarioId id,
                                         std::span<const std::string> names);

/// Occupancy statistics of scenarios over a run.
struct ScenarioHistogram {
  std::vector<u64> counts;  // indexed by ScenarioId

  explicit ScenarioHistogram(usize switch_count)
      : counts(scenario_count(switch_count), 0) {}

  void add(ScenarioId id) { ++counts[id]; }
  [[nodiscard]] u64 total() const;
  /// Empirical probability of a scenario.
  [[nodiscard]] f64 probability(ScenarioId id) const;
};

/// First-order scenario-transition statistics (the paper's "state tables"
/// for data-dependent switch statements).
class ScenarioTransitions {
 public:
  explicit ScenarioTransitions(usize switch_count)
      : n_(scenario_count(switch_count)),
        counts_(n_ * n_, 0) {}

  void add(ScenarioId from, ScenarioId to) { ++counts_[from * n_ + to]; }

  /// P(next = to | current = from); uniform when `from` was never seen.
  [[nodiscard]] f64 probability(ScenarioId from, ScenarioId to) const;

  /// Most likely successor scenario of `from`.
  [[nodiscard]] ScenarioId most_likely_next(ScenarioId from) const;

  /// Total transitions observed out of `from` (0 = the state-table entry is
  /// missing and probability() falls back to uniform); used by triplec-lint
  /// scenario-coverage checks.
  [[nodiscard]] u64 row_observations(ScenarioId from) const;

  [[nodiscard]] usize scenario_space() const { return n_; }

 private:
  usize n_;
  std::vector<u64> counts_;
};

}  // namespace tc::graph
