#include "graph/flowgraph.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace tc::graph {

i32 FlowGraph::add_task(std::unique_ptr<Task> task, Guard guard) {
  nodes_.push_back(Node{std::move(task), std::move(guard)});
  return narrow<i32>(nodes_.size()) - 1;
}

i32 FlowGraph::add_task(std::unique_ptr<Task> task, LegacyGuard guard) {
  Guard wrapped;
  if (guard) {
    wrapped = [g = std::move(guard)](FlowGraph& fg, ExecContext&) {
      return g(fg);
    };
  }
  return add_task(std::move(task), std::move(wrapped));
}

i32 FlowGraph::add_switch(std::string name, SwitchFn predicate) {
  switches_.push_back(Switch{std::move(name), std::move(predicate)});
  default_ctx_.switch_cache.emplace_back();
  return narrow<i32>(switches_.size()) - 1;
}

i32 FlowGraph::add_switch(std::string name, std::function<bool()> predicate) {
  return add_switch(std::move(name),
                    SwitchFn([p = std::move(predicate)](ExecContext&) {
                      return p();
                    }));
}

void FlowGraph::remove_switch(i32 sw) {
  if (sw < 0 || sw >= narrow<i32>(switches_.size())) {
    throw std::out_of_range("FlowGraph::remove_switch: switch id out of range");
  }
  switches_.erase(switches_.begin() + sw);
  default_ctx_.switch_cache.erase(default_ctx_.switch_cache.begin() + sw);
}

void FlowGraph::add_edge(i32 from, i32 to,
                         std::function<u64()> bytes_per_frame) {
  if (from < 0 || to < 0 || from >= narrow<i32>(nodes_.size()) ||
      to >= narrow<i32>(nodes_.size())) {
    throw std::out_of_range("FlowGraph::add_edge: node id out of range");
  }
  if (!bytes_per_frame) {
    throw std::invalid_argument(
        "FlowGraph::add_edge: bytes_per_frame must be callable (pass "
        "[] { return u64{0}; } for a pure ordering edge)");
  }
  edges_.push_back(Edge{from, to, std::move(bytes_per_frame)});
}

std::vector<std::string> FlowGraph::switch_names() const {
  std::vector<std::string> names;
  names.reserve(switches_.size());
  for (const Switch& s : switches_) names.push_back(s.name);
  return names;
}

bool FlowGraph::switch_value(i32 sw, ExecContext& ctx) {
  assert(sw >= 0 && sw < narrow<i32>(switches_.size()) &&
         "FlowGraph::switch_value: switch id out of range");
  if (ctx.switch_cache.size() < switches_.size()) {
    ctx.switch_cache.resize(switches_.size());
  }
  auto& cached = ctx.switch_cache[static_cast<usize>(sw)];
  if (!cached.has_value()) {
    cached = switches_[static_cast<usize>(sw)].predicate(ctx);
  }
  return *cached;
}

bool FlowGraph::switch_value(i32 sw) { return switch_value(sw, default_ctx_); }

std::vector<i32> FlowGraph::topological_order() const {
  const usize n = nodes_.size();
  std::vector<i32> indegree(n, 0);
  std::vector<std::vector<i32>> adj(n);
  for (const Edge& e : edges_) {
    adj[static_cast<usize>(e.from)].push_back(e.to);
    ++indegree[static_cast<usize>(e.to)];
  }
  std::vector<i32> order;
  order.reserve(n);
  // Stable Kahn: repeatedly take the lowest-id ready node so the order is
  // deterministic and respects insertion order for independent tasks.
  std::vector<bool> done(n, false);
  for (usize emitted = 0; emitted < n; ++emitted) {
    i32 pick = -1;
    for (usize i = 0; i < n; ++i) {
      if (!done[i] && indegree[i] == 0) {
        pick = narrow<i32>(i);
        break;
      }
    }
    if (pick < 0) throw std::logic_error("FlowGraph: cycle detected");
    done[static_cast<usize>(pick)] = true;
    order.push_back(pick);
    for (i32 next : adj[static_cast<usize>(pick)]) {
      --indegree[static_cast<usize>(next)];
    }
  }
  return order;
}

void FlowGraph::begin_frame(i32 frame_index, ExecContext& ctx) {
  ctx.frame = frame_index;
  ctx.switch_cache.assign(switches_.size(), std::nullopt);
}

void FlowGraph::run_nodes(std::span<const i32> order, ExecContext& ctx,
                          FrameRecord& record) {
  for (i32 node_id : order) {
    const Node& node = nodes_[static_cast<usize>(node_id)];
    TaskExecution exec;
    exec.node = node_id;
    bool enabled = !node.guard || node.guard(*this, ctx);
    if (enabled) {
      // Stamp the host wall-clock time of the task body: the concurrent
      // executor's measured signal (the simulated time comes later, from
      // the cost model).  Optionally emit a host-timeline span.
      std::optional<obs::ScopedSpan> span;
      if (obs::enabled()) {
        span.emplace(&obs::global().tracer, std::string(node.task->name()),
                     "graph-task");
        span->arg("frame", std::to_string(ctx.frame));
      }
      obs::ScopedTimer timer;
      std::optional<img::WorkReport> work = node.task->execute(ctx);
      exec.host_ms = timer.elapsed_ms();
      if (work.has_value()) {
        exec.executed = true;
        exec.work = *work;
      }
    }
    record.tasks.push_back(std::move(exec));
  }
}

void FlowGraph::finalize_scenario(ExecContext& ctx, FrameRecord& record) {
  record.scenario = 0;
  for (usize s = 0; s < switches_.size(); ++s) {
    if (switch_value(narrow<i32>(s), ctx)) record.scenario |= (1u << s);
  }
}

FrameRecord FlowGraph::run_frame(i32 frame_index, ExecContext& ctx) {
  FrameRecord record;
  record.frame = frame_index;
  begin_frame(frame_index, ctx);

  const std::vector<i32> order = topological_order();
  record.tasks.reserve(order.size());
  run_nodes(order, ctx, record);
  finalize_scenario(ctx, record);
  return record;
}

FrameRecord FlowGraph::run_frame(i32 frame_index) {
  return run_frame(frame_index, default_ctx_);
}

}  // namespace tc::graph
