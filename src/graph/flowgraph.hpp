// Flow graph of tasks with data-dependent switches (Fig. 2 of the paper).
//
// The graph is a DAG of Task nodes.  Edges declare producer→consumer buffer
// flows (used by the bandwidth model to label the arrows of Fig. 2) and
// define a topological execution order.  Switches are named boolean
// predicates over application state; a switch is evaluated lazily — at the
// moment the first task guard queries it — and cached for the rest of the
// frame.  This matches the dataflow semantics of Fig. 2, where a switch
// (e.g. "registration successful?") fires after its upstream tasks ran.
// The vector of switch outcomes defines the frame's scenario id.
//
// All per-frame state (the switch cache, the frame index) lives in an
// ExecContext supplied by the caller, so the same graph can have several
// frames in flight concurrently (begin_frame → run_nodes → finalize_scenario
// per context).  The legacy single-context entry points (run_frame(i32),
// switch_value(i32)) operate on an internal default context and keep the
// original one-frame-at-a-time semantics.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/exec_context.hpp"
#include "graph/record.hpp"
#include "graph/task.hpp"

namespace tc::graph {

struct Edge {
  i32 from = -1;
  i32 to = -1;
  /// Bytes transported per frame over this edge, queried at analysis time
  /// (depends on the active granularity, so it is a callable).
  std::function<u64()> bytes_per_frame;
};

class FlowGraph {
 public:
  /// Guard deciding whether a task runs this frame.  May query switch
  /// values through the graph (lazy evaluation, cached in the context).
  using Guard = std::function<bool(FlowGraph&, ExecContext&)>;
  /// Legacy guard signature (reads captured application state directly).
  using LegacyGuard = std::function<bool(FlowGraph&)>;
  /// Switch predicate over the frame's context.
  using SwitchFn = std::function<bool(ExecContext&)>;

  /// Add a task; returns its node id.  A null guard means unconditional.
  i32 add_task(std::unique_ptr<Task> task, Guard guard = {});
  /// Legacy overload: wraps a one-argument guard (context ignored).
  i32 add_task(std::unique_ptr<Task> task, LegacyGuard guard);

  /// Declare a named switch with its predicate; returns switch id.
  i32 add_switch(std::string name, SwitchFn predicate);
  /// Legacy overload: wraps a zero-argument predicate (context ignored).
  i32 add_switch(std::string name, std::function<bool()> predicate);

  /// Remove a switch (and its cache slot).  Later switch ids shift down by
  /// one, so this is a *pre-run* repair operation (used by the triplec-lint
  /// --fix pass to drop duplicate switches before any frame executes);
  /// callers holding switch ids must re-resolve them afterwards.  Throws
  /// std::out_of_range on a bad id.
  void remove_switch(i32 sw);

  /// Add a producer→consumer edge.  Validates eagerly: throws
  /// std::out_of_range when an endpoint does not name an existing task and
  /// std::invalid_argument when bytes_per_frame is a null callable, so a
  /// malformed graph fails at construction instead of mid-frame.
  void add_edge(i32 from, i32 to, std::function<u64()> bytes_per_frame);

  [[nodiscard]] usize task_count() const { return nodes_.size(); }
  [[nodiscard]] usize switch_count() const { return switches_.size(); }
  [[nodiscard]] usize edge_count() const { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] Task& task(i32 node) {
    assert(node >= 0 && node < static_cast<i32>(nodes_.size()) &&
           "FlowGraph::task: node id out of range");
    return *nodes_[static_cast<usize>(node)].task;
  }
  [[nodiscard]] const Task& task(i32 node) const {
    assert(node >= 0 && node < static_cast<i32>(nodes_.size()) &&
           "FlowGraph::task: node id out of range");
    return *nodes_[static_cast<usize>(node)].task;
  }
  [[nodiscard]] std::string_view switch_name(i32 sw) const {
    return switches_[static_cast<usize>(sw)].name;
  }
  [[nodiscard]] std::vector<std::string> switch_names() const;

  /// Value of a switch for the context's frame: evaluated on first query,
  /// cached in the context until the frame ends.
  [[nodiscard]] bool switch_value(i32 sw, ExecContext& ctx);
  /// Legacy single-context query (uses the internal default context).
  [[nodiscard]] bool switch_value(i32 sw);

  /// Topological order of the nodes.  Throws std::logic_error on a cycle.
  [[nodiscard]] std::vector<i32> topological_order() const;

  /// Start a frame on a context: stamps the frame index and resets the
  /// switch cache.  Must precede run_nodes()/finalize_scenario().
  void begin_frame(i32 frame_index, ExecContext& ctx);

  /// Execute a subset of nodes (in the given order) against the context,
  /// appending one TaskExecution per node to the record.  Guards and tasks
  /// see only this context, so disjoint node subsets of different frames
  /// may run concurrently on different contexts.
  void run_nodes(std::span<const i32> order, ExecContext& ctx,
                 FrameRecord& record);

  /// Complete the scenario id: evaluate any switch nobody queried and fold
  /// the outcome vector into record.scenario.
  void finalize_scenario(ExecContext& ctx, FrameRecord& record);

  /// Execute one frame against the context: begin_frame, every task in
  /// topological order, finalize_scenario.  Tasks whose guard is off — or
  /// whose execute() returns nullopt — are recorded as not executed.
  [[nodiscard]] FrameRecord run_frame(i32 frame_index, ExecContext& ctx);
  /// Legacy single-context frame execution (internal default context).
  [[nodiscard]] FrameRecord run_frame(i32 frame_index);

 private:
  struct Node {
    std::unique_ptr<Task> task;
    Guard guard;
  };
  struct Switch {
    std::string name;
    SwitchFn predicate;
  };

  std::vector<Node> nodes_;
  std::vector<Switch> switches_;
  std::vector<Edge> edges_;
  /// Context backing the legacy run_frame(i32)/switch_value(i32) API.
  ExecContext default_ctx_;
};

}  // namespace tc::graph
