// Per-invocation execution context threaded through one FlowGraph frame.
//
// A FlowGraph used to cache switch values in a member, which meant one graph
// could only have a single frame in flight.  ExecContext moves that per-frame
// state out of the graph: every run_frame()/run_nodes() call carries its own
// context, so several frames can traverse the same (immutable) graph
// structure concurrently.  `user` lets the application attach its own
// per-frame state (app::FrameContext); task bodies and guards downcast it.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace tc::graph {

struct ExecContext {
  /// Frame index set by FlowGraph::begin_frame().
  i32 frame = -1;
  /// Application-owned per-frame payload (e.g. app::FrameContext*).
  void* user = nullptr;
  /// Lazily-evaluated switch cache for this frame (one slot per switch,
  /// grown on demand by FlowGraph::switch_value).
  std::vector<std::optional<bool>> switch_cache;
};

}  // namespace tc::graph
