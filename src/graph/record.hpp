// Per-frame execution records — the raw material the Triple-C models train
// on and the runtime manager reacts to.
#pragma once

#include <vector>

#include "imaging/work_report.hpp"

namespace tc::graph {

/// Identifier of a scenario: a bitmask over the flow graph's switch
/// outcomes (the paper's three switches yield 2^3 = 8 scenarios).
using ScenarioId = u32;

struct TaskExecution {
  i32 node = -1;
  bool executed = false;
  img::WorkReport work;
  /// Simulated execution time on the modeled platform (filled by
  /// plat::Machine after mapping).
  f64 simulated_ms = 0.0;
  /// Measured wall-clock time of the task body on the host (stamped by
  /// FlowGraph::run_frame).  This is what the concurrent executor feeds
  /// back into the predictors; it depends on the active stripe plan.
  f64 host_ms = 0.0;
};

struct FrameRecord {
  i32 frame = -1;
  ScenarioId scenario = 0;
  std::vector<TaskExecution> tasks;
  /// End-to-end frame latency under the mapping used (critical path over
  /// the partitioned tasks plus communication).
  f64 latency_ms = 0.0;
  /// Processing granularity of the frame: ROI size in pixels (full-frame
  /// pixels when no ROI was estimated).  Drives the linear growth model.
  f64 roi_pixels = 0.0;

  [[nodiscard]] const TaskExecution* find(i32 node) const {
    for (const auto& t : tasks) {
      if (t.node == node) return &t;
    }
    return nullptr;
  }
};

}  // namespace tc::graph
