// Deterministic, seedable random-number generation.
//
// All stochastic behaviour in the repository (synthetic sequences, Markov
// sampling, noise injection in tests) flows through these generators so that
// every experiment is reproducible bit-for-bit across hosts.
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace tc {

/// SplitMix64 — used to expand a single 64-bit seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    u64 z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// PCG32 (Melissa O'Neill) — the workhorse generator.  Small state, good
/// statistical quality, and cheap enough for per-pixel noise synthesis.
class Pcg32 {
 public:
  /// Construct from a seed and an optional stream id; distinct stream ids
  /// yield independent sequences for the same seed.  The stream id is mixed
  /// through SplitMix64 into both state and increment — merely adding it to
  /// the increment (the naive approach) leaves the first outputs of nearby
  /// streams identical because PCG's output mix discards low state bits.
  explicit Pcg32(u64 seed, u64 stream = 0) {
    SplitMix64 sm(seed ^ (stream * 0xDA942042E4DD58B5ULL) ^
                  0x1405B8EFD5CBA4C7ULL);
    state_ = sm.next();
    inc_ = sm.next() | 1ULL;
    (void)next_u32();
  }

  u32 next_u32() {
    u64 old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    u32 xorshifted = static_cast<u32>(((old >> 18) ^ old) >> 27);
    u32 rot = static_cast<u32>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1).
  f64 next_f64() {
    return static_cast<f64>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  f64 uniform(f64 lo, f64 hi) { return lo + (hi - lo) * next_f64(); }

  /// Uniform integer in [lo, hi] (inclusive).  Requires hi >= lo.
  i32 uniform_int(i32 lo, i32 hi) {
    u32 span = static_cast<u32>(hi - lo) + 1u;
    return lo + static_cast<i32>(next_u32() % span);
  }

  /// Standard normal via Box–Muller (caches the second variate).
  f64 normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    f64 u1 = 0.0;
    do {
      u1 = next_f64();
    } while (u1 <= 1e-12);
    f64 u2 = next_f64();
    f64 r = std::sqrt(-2.0 * std::log(u1));
    f64 theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with explicit mean and standard deviation.
  f64 normal(f64 mean, f64 sigma) { return mean + sigma * normal(); }

  /// Poisson-distributed count (Knuth for small lambda, normal approximation
  /// for large lambda).  Used for X-ray quantum noise.
  i32 poisson(f64 lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda > 64.0) {
      f64 v = normal(lambda, std::sqrt(lambda));
      return v < 0.0 ? 0 : static_cast<i32>(v + 0.5);
    }
    f64 l = std::exp(-lambda);
    i32 k = 0;
    f64 p = 1.0;
    do {
      ++k;
      p *= next_f64();
    } while (p > l);
    return k - 1;
  }

 private:
  u64 state_ = 0;
  u64 inc_ = 1;
  f64 cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace tc
