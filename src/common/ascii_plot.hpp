// Terminal plotting for benches/examples: renders one or more series as an
// ASCII chart so the paper's figures can be eyeballed straight from the
// bench output.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tc {

struct AsciiSeries {
  std::string name;
  std::vector<f64> values;
  char glyph = '*';
};

struct AsciiPlotOptions {
  usize width = 96;
  usize height = 20;
  std::string title;
  std::string y_label;
  std::string x_label;
};

/// Render all series onto one canvas (shared y-range), returning a printable
/// multi-line string.  Series of different lengths share the x-axis of the
/// longest series.
[[nodiscard]] std::string render_ascii_plot(std::span<const AsciiSeries> series,
                                            const AsciiPlotOptions& opt);

/// Convenience wrapper for a single series.
[[nodiscard]] std::string render_ascii_plot(const AsciiSeries& s,
                                            const AsciiPlotOptions& opt);

}  // namespace tc
