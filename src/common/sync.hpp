// Annotated synchronization primitives for clang's -Wthread-safety.
//
// std::mutex under libstdc++ carries no capability attributes, so
// TC_GUARDED_BY(some_std_mutex) is a no-op for the analysis.  These thin
// wrappers add the attributes (zero runtime overhead for Mutex/MutexLock;
// CondVar uses std::condition_variable_any so it can wait on the annotated
// mutex directly), letting the compiler statically prove the locking
// discipline of ThreadPool and the observability layer.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.hpp"

namespace tc::common {

/// std::mutex with capability annotations.  Satisfies Lockable, so it works
/// with std::lock_guard/std::unique_lock — but prefer MutexLock, which the
/// analysis understands as a scoped capability.
class TC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TC_ACQUIRE() { m_.lock(); }
  void unlock() TC_RELEASE() { m_.unlock(); }
  bool try_lock() TC_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock holding a Mutex for the enclosing scope (std::lock_guard with
/// scoped-capability annotations).
class TC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) TC_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() TC_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable that waits on the annotated Mutex.  wait() must be
/// called with the mutex held (enforced by the analysis); the predicate is
/// evaluated under the lock, so annotate predicate lambdas with
/// TC_REQUIRES(mutex) when they touch guarded state.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <class Predicate>
  void wait(Mutex& m, Predicate stop_waiting) TC_REQUIRES(m) {
    cv_.wait(m, std::move(stop_waiting));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace tc::common
