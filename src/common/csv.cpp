#include "common/csv.hpp"

#include <iomanip>
#include <stdexcept>

namespace tc {

CsvWriter::CsvWriter(const std::string& path) : file_(path), file_mode_(true) {
  if (!file_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::CsvWriter() = default;

void CsvWriter::header(const std::vector<std::string>& columns) {
  for (const auto& c : columns) cell(c);
  end_row();
}

void CsvWriter::raw(std::string_view v) {
  if (row_open_) {
    buffer_ << ',';
    if (file_mode_) file_ << ',';
  }
  buffer_ << v;
  if (file_mode_) file_ << v;
  row_open_ = true;
}

CsvWriter& CsvWriter::cell(std::string_view v) {
  raw(v);
  return *this;
}

CsvWriter& CsvWriter::cell(f64 v) {
  std::ostringstream os;
  os << std::setprecision(10) << v;
  raw(os.str());
  return *this;
}

CsvWriter& CsvWriter::cell(i64 v) {
  raw(std::to_string(v));
  return *this;
}

CsvWriter& CsvWriter::cell(u64 v) {
  raw(std::to_string(v));
  return *this;
}

CsvWriter& CsvWriter::cell(i32 v) {
  raw(std::to_string(v));
  return *this;
}

void CsvWriter::end_row() {
  buffer_ << '\n';
  if (file_mode_) file_ << '\n';
  row_open_ = false;
  ++rows_;
}

}  // namespace tc
