// Minimal CSV emission for experiment traces.  Benches and examples write
// their series through this so downstream plotting is uniform.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace tc {

/// Row-oriented CSV writer.  Values are formatted with up to 6 significant
/// decimals; strings are emitted verbatim (callers must not embed commas).
class CsvWriter {
 public:
  /// Create/truncate `path`.  Throws std::runtime_error when the file cannot
  /// be opened (benches treat that as a fatal configuration error).
  explicit CsvWriter(const std::string& path);

  /// In-memory writer (for tests); contents via str().
  CsvWriter();

  void header(const std::vector<std::string>& columns);

  CsvWriter& cell(std::string_view v);
  CsvWriter& cell(f64 v);
  CsvWriter& cell(i64 v);
  CsvWriter& cell(u64 v);
  CsvWriter& cell(i32 v);
  /// Finish the current row.
  void end_row();

  /// Contents accumulated so far (in-memory mode; also valid in file mode
  /// as a mirror of what was written).
  [[nodiscard]] std::string str() const { return buffer_.str(); }

  [[nodiscard]] usize rows_written() const { return rows_; }

 private:
  void raw(std::string_view v);

  std::ofstream file_;
  std::ostringstream buffer_;
  bool file_mode_ = false;
  bool row_open_ = false;
  usize rows_ = 0;
};

}  // namespace tc
