// Fundamental fixed-width type aliases and small POD helpers shared by all
// Triple-C modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>

namespace tc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;
using usize = std::size_t;

/// Thrown by narrow<> when an integral conversion would change the value.
class narrowing_error : public std::runtime_error {
 public:
  narrowing_error() : std::runtime_error("narrowing conversion changed value") {}
};

/// Checked integral conversion — the project-wide i32/usize bridge.  The
/// cast round-trips and preserves the sign, or it throws (an exception, not
/// an assert: release builds compile with NDEBUG and must still refuse a
/// value-changing conversion).  Use it wherever a container size meets an
/// i32 node/frame id:   i32 n = narrow<i32>(tasks.size());
template <class To, class From>
[[nodiscard]] constexpr To narrow(From from) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "narrow<> converts between integral types only");
  const To to = static_cast<To>(from);
  if (static_cast<From>(to) != from || ((to < To{}) != (from < From{}))) {
    throw narrowing_error{};
  }
  return to;
}

/// Kilobytes/megabytes expressed in bytes; used by the memory model so that
/// units are explicit at call sites.
constexpr u64 KiB = 1024;
constexpr u64 MiB = 1024 * KiB;
constexpr u64 GiB = 1024 * MiB;

/// A half-open integer interval [lo, hi).
struct IndexRange {
  i32 lo = 0;
  i32 hi = 0;
  [[nodiscard]] constexpr i32 length() const { return hi - lo; }
  [[nodiscard]] constexpr bool empty() const { return hi <= lo; }
  constexpr bool operator==(const IndexRange&) const = default;
};

/// Integer 2-D point (pixel coordinates: x = column, y = row).
struct Point2i {
  i32 x = 0;
  i32 y = 0;
  constexpr bool operator==(const Point2i&) const = default;
};

/// Floating-point 2-D point (sub-pixel coordinates).
struct Point2f {
  f64 x = 0.0;
  f64 y = 0.0;
  constexpr bool operator==(const Point2f&) const = default;
};

/// Axis-aligned rectangle in pixel coordinates, half-open in both axes:
/// covers columns [x, x+w) and rows [y, y+h).
struct Rect {
  i32 x = 0;
  i32 y = 0;
  i32 w = 0;
  i32 h = 0;
  [[nodiscard]] constexpr i64 area() const {
    return static_cast<i64>(w) * static_cast<i64>(h);
  }
  [[nodiscard]] constexpr bool empty() const { return w <= 0 || h <= 0; }
  [[nodiscard]] constexpr bool contains(Point2i p) const {
    return p.x >= x && p.x < x + w && p.y >= y && p.y < y + h;
  }
  constexpr bool operator==(const Rect&) const = default;
};

/// Clamp a rectangle to an image of the given dimensions.
[[nodiscard]] constexpr Rect clamp_rect(Rect r, i32 width, i32 height) {
  i32 x0 = r.x < 0 ? 0 : r.x;
  i32 y0 = r.y < 0 ? 0 : r.y;
  i32 x1 = r.x + r.w > width ? width : r.x + r.w;
  i32 y1 = r.y + r.h > height ? height : r.y + r.h;
  if (x1 < x0) x1 = x0;
  if (y1 < y0) y1 = y0;
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

}  // namespace tc
