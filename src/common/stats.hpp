// Descriptive statistics used throughout the Triple-C models: moments,
// autocorrelation (for validating Markov-chain applicability, paper §4),
// percentiles, histogramming and ordinary least squares.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace tc {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] f64 mean(std::span<const f64> xs);

/// Population variance (divides by N); 0 for fewer than two elements.
[[nodiscard]] f64 variance(std::span<const f64> xs);

/// Population standard deviation.
[[nodiscard]] f64 stddev(std::span<const f64> xs);

/// Minimum / maximum of a non-empty span.
[[nodiscard]] f64 min_of(std::span<const f64> xs);
[[nodiscard]] f64 max_of(std::span<const f64> xs);

/// Normalized autocorrelation r(lag) in [-1, 1]; r(0) == 1.
/// Returns 0 when the series is constant or the lag exhausts the series.
[[nodiscard]] f64 autocorrelation(std::span<const f64> xs, usize lag);

/// Autocorrelation function for lags 0..max_lag (inclusive).
[[nodiscard]] std::vector<f64> autocorrelation_function(
    std::span<const f64> xs, usize max_lag);

/// Fit r(lag) ≈ exp(-lag/tau) and return tau (the correlation time).
/// Returns 0 when the series decorrelates immediately.
[[nodiscard]] f64 correlation_time(std::span<const f64> xs, usize max_lag);

/// Linear interpolated percentile; p in [0, 100].
[[nodiscard]] f64 percentile(std::span<const f64> xs, f64 p);

/// Result of an ordinary-least-squares line fit y = slope * x + intercept.
struct LineFit {
  f64 slope = 0.0;
  f64 intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  f64 r2 = 0.0;
};

/// Ordinary least squares over paired samples.  Requires xs.size() ==
/// ys.size(); a degenerate fit (fewer than two points, or constant x)
/// returns slope 0 and intercept mean(y).
[[nodiscard]] LineFit fit_line(std::span<const f64> xs,
                               std::span<const f64> ys);

/// Equal-width histogram over [min, max] with `bins` buckets.
struct Histogram {
  f64 lo = 0.0;
  f64 hi = 0.0;
  std::vector<u64> counts;
  [[nodiscard]] u64 total() const;
};

[[nodiscard]] Histogram make_histogram(std::span<const f64> xs, usize bins);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(f64 x);
  [[nodiscard]] usize count() const { return n_; }
  [[nodiscard]] f64 mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] f64 variance() const;
  [[nodiscard]] f64 stddev() const;
  [[nodiscard]] f64 min() const { return min_; }
  [[nodiscard]] f64 max() const { return max_; }

 private:
  usize n_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
};

}  // namespace tc
