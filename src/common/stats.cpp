#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tc {

f64 mean(std::span<const f64> xs) {
  if (xs.empty()) return 0.0;
  f64 s = 0.0;
  for (f64 x : xs) s += x;
  return s / static_cast<f64>(xs.size());
}

f64 variance(std::span<const f64> xs) {
  if (xs.size() < 2) return 0.0;
  f64 m = mean(xs);
  f64 s = 0.0;
  for (f64 x : xs) s += (x - m) * (x - m);
  return s / static_cast<f64>(xs.size());
}

f64 stddev(std::span<const f64> xs) { return std::sqrt(variance(xs)); }

f64 min_of(std::span<const f64> xs) {
  return *std::min_element(xs.begin(), xs.end());
}

f64 max_of(std::span<const f64> xs) {
  return *std::max_element(xs.begin(), xs.end());
}

f64 autocorrelation(std::span<const f64> xs, usize lag) {
  if (xs.size() <= lag) return 0.0;
  if (lag == 0) return 1.0;
  f64 m = mean(xs);
  f64 denom = 0.0;
  for (f64 x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0) return 0.0;
  f64 num = 0.0;
  for (usize i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  return num / denom;
}

std::vector<f64> autocorrelation_function(std::span<const f64> xs,
                                          usize max_lag) {
  std::vector<f64> acf;
  acf.reserve(max_lag + 1);
  for (usize lag = 0; lag <= max_lag; ++lag) {
    acf.push_back(autocorrelation(xs, lag));
  }
  return acf;
}

f64 correlation_time(std::span<const f64> xs, usize max_lag) {
  // Fit log r(lag) = -lag / tau over the initial positive section of the ACF.
  std::vector<f64> lags;
  std::vector<f64> logr;
  for (usize lag = 1; lag <= max_lag; ++lag) {
    f64 r = autocorrelation(xs, lag);
    if (r <= 0.02) break;
    lags.push_back(static_cast<f64>(lag));
    logr.push_back(std::log(r));
  }
  if (lags.size() < 2) return 0.0;
  LineFit fit = fit_line(lags, logr);
  if (fit.slope >= 0.0) return 0.0;
  return -1.0 / fit.slope;
}

f64 percentile(std::span<const f64> xs, f64 p) {
  if (xs.empty()) return 0.0;
  std::vector<f64> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  f64 clamped = std::clamp(p, 0.0, 100.0);
  f64 rank = clamped / 100.0 * static_cast<f64>(s.size() - 1);
  usize lo = static_cast<usize>(rank);
  usize hi = std::min(lo + 1, s.size() - 1);
  f64 frac = rank - static_cast<f64>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

LineFit fit_line(std::span<const f64> xs, std::span<const f64> ys) {
  LineFit fit;
  usize n = std::min(xs.size(), ys.size());
  if (n < 2) {
    fit.intercept = mean(ys);
    return fit;
  }
  f64 mx = mean(xs.subspan(0, n));
  f64 my = mean(ys.subspan(0, n));
  f64 sxx = 0.0;
  f64 sxy = 0.0;
  for (usize i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx <= 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  f64 ss_res = 0.0;
  f64 ss_tot = 0.0;
  for (usize i = 0; i < n; ++i) {
    f64 pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r2 = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

u64 Histogram::total() const {
  u64 t = 0;
  for (u64 c : counts) t += c;
  return t;
}

Histogram make_histogram(std::span<const f64> xs, usize bins) {
  Histogram h;
  h.counts.assign(std::max<usize>(bins, 1), 0);
  if (xs.empty()) return h;
  h.lo = min_of(xs);
  h.hi = max_of(xs);
  f64 span = h.hi - h.lo;
  if (span <= 0.0) {
    h.counts[0] = xs.size();
    return h;
  }
  for (f64 x : xs) {
    auto idx = static_cast<usize>((x - h.lo) / span *
                                  static_cast<f64>(h.counts.size()));
    if (idx >= h.counts.size()) idx = h.counts.size() - 1;
    ++h.counts[idx];
  }
  return h;
}

void RunningStats::add(f64 x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  f64 delta = x - mean_;
  mean_ += delta / static_cast<f64>(n_);
  m2_ += delta * (x - mean_);
}

f64 RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<f64>(n_);
}

f64 RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace tc
