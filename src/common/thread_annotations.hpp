// Clang thread-safety analysis annotations (-Wthread-safety).
//
// The macros expand to clang's capability attributes when the compiler
// supports them and to nothing otherwise (gcc, MSVC), so annotated headers
// stay portable.  Use together with common/sync.hpp, whose Mutex/MutexLock
// types carry the capability attributes the analysis needs; a bare
// std::mutex is *not* a capability under libstdc++, so annotating against
// one silences the analysis instead of enabling it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define TC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TC_THREAD_ANNOTATION(x)
#endif

/// Type attribute: the class is a lockable capability ("mutex").
#define TC_CAPABILITY(x) TC_THREAD_ANNOTATION(capability(x))

/// Type attribute: RAII object that acquires on construction and releases
/// on destruction.
#define TC_SCOPED_CAPABILITY TC_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read/written while holding the given capability.
#define TC_GUARDED_BY(x) TC_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be accessed while holding the given capability.
#define TC_PT_GUARDED_BY(x) TC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and it must not be held on entry).
#define TC_ACQUIRE(...) TC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define TC_RELEASE(...) TC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the success return value.
#define TC_TRY_ACQUIRE(...) \
  TC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define TC_REQUIRES(...) TC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define TC_EXCLUDES(...) TC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define TC_RETURN_CAPABILITY(x) TC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress the analysis inside the annotated function.
#define TC_NO_THREAD_SAFETY_ANALYSIS \
  TC_THREAD_ANNOTATION(no_thread_safety_analysis)
