// Minimal recursive-descent JSON reader (RFC 8259 subset: UTF-8 text,
// \uXXXX escapes decoded to UTF-8, no trailing commas, no comments).
//
// The observability layer *writes* JSON by hand (Chrome traces, post-mortem
// bundles, bench results); this is the matching reader used by the
// triplec_postmortem CLI and by tests that want to assert on written
// bundles without regex-matching raw text.  It is a diagnostics-path
// parser: values are owned copies (no zero-copy string views), and parse
// errors throw JsonError with a byte offset.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace tc::common {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, usize offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] usize offset() const { return offset_; }

 private:
  usize offset_;
};

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  /// Parse a complete JSON document (throws JsonError on malformed input or
  /// trailing garbage).
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw JsonError(offset 0) on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] f64 as_f64() const;
  [[nodiscard]] i64 as_i64() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array/object element count (0 for scalars).
  [[nodiscard]] usize size() const;

  /// Array element access (throws when not an array / out of range).
  [[nodiscard]] const JsonValue& at(usize index) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Object member access.  find() returns nullptr when absent; get()
  /// returns a Null value when absent so lookups can chain.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] const JsonValue& get(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
  /// Object members in document order.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  /// Scalar conveniences with defaults (Null/missing-friendly).
  [[nodiscard]] f64 number_or(f64 fallback) const {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] std::string string_or(std::string fallback) const {
    return is_string() ? str_ : fallback;
  }
  /// Keyed variants: object member lookup + scalar default in one step
  /// (fallback when this is not an object, the key is absent, or the member
  /// has the wrong type).
  [[nodiscard]] f64 number_or(std::string_view key, f64 fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr ? v->number_or(fallback) : fallback;
  }
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr ? v->string_or(std::move(fallback)) : fallback;
  }

 private:
  friend class JsonParser;

  Type type_ = Type::Null;
  bool bool_ = false;
  f64 num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escape a string for embedding in hand-written JSON output (quotes not
/// included): `"`, `\`, control characters.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace tc::common
