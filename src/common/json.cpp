#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace tc::common {

namespace {

/// Append a Unicode code point as UTF-8.
void append_utf8(std::string& out, u32 cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, pos_);
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) throw JsonError("unexpected end of input", pos_);
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::String;
        v.str_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::Bool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::Bool;
          v.bool_ = false;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      char e = take();
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          u32 cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              u32 lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("unpaired high surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  u32 parse_hex4() {
    u32 v = 0;
    for (i32 i = 0; i < 4; ++i) {
      char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= narrow<u32>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= narrow<u32>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= narrow<u32>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return v;
  }

  JsonValue parse_number() {
    const usize start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&]() {
      usize n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("invalid number: missing exponent digits");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    f64 value = 0.0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (res.ec != std::errc{}) fail("unparsable number");
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    v.num_ = value;
    return v;
  }

  std::string_view text_;
  usize pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("not a bool", 0);
  return bool_;
}

f64 JsonValue::as_f64() const {
  if (type_ != Type::Number) throw JsonError("not a number", 0);
  return num_;
}

i64 JsonValue::as_i64() const { return static_cast<i64>(as_f64()); }

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) throw JsonError("not a string", 0);
  return str_;
}

usize JsonValue::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(usize index) const {
  if (type_ != Type::Array) throw JsonError("not an array", 0);
  if (index >= array_.size()) throw JsonError("array index out of range", 0);
  return array_[index];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) throw JsonError("not an array", 0);
  return array_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(std::string_view key) const {
  static const JsonValue null_value;
  const JsonValue* v = find(key);
  return v != nullptr ? *v : null_value;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::Object) throw JsonError("not an object", 0);
  return object_;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace tc::common
