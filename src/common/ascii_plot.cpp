#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace tc {

std::string render_ascii_plot(std::span<const AsciiSeries> series,
                              const AsciiPlotOptions& opt) {
  std::ostringstream out;
  if (!opt.title.empty()) out << opt.title << '\n';

  usize max_len = 0;
  f64 lo = 0.0;
  f64 hi = 0.0;
  bool first = true;
  for (const auto& s : series) {
    max_len = std::max(max_len, s.values.size());
    for (f64 v : s.values) {
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  if (max_len == 0) {
    out << "(empty plot)\n";
    return out.str();
  }
  if (hi <= lo) hi = lo + 1.0;

  const usize w = std::max<usize>(opt.width, 8);
  const usize h = std::max<usize>(opt.height, 4);
  std::vector<std::string> canvas(h, std::string(w, ' '));

  for (const auto& s : series) {
    if (s.values.empty()) continue;
    for (usize col = 0; col < w; ++col) {
      // Nearest-sample mapping from canvas column to series index.
      usize idx = s.values.size() == 1
                      ? 0
                      : static_cast<usize>(
                            std::llround(static_cast<f64>(col) /
                                         static_cast<f64>(w - 1) *
                                         static_cast<f64>(s.values.size() - 1)));
      f64 v = s.values[idx];
      f64 norm = (v - lo) / (hi - lo);
      auto row = static_cast<usize>(std::llround(norm * static_cast<f64>(h - 1)));
      if (row >= h) row = h - 1;
      canvas[h - 1 - row][col] = s.glyph;
    }
  }

  std::ostringstream top;
  top << std::setprecision(4) << hi;
  std::ostringstream bot;
  bot << std::setprecision(4) << lo;
  usize label_w = std::max(top.str().size(), bot.str().size());

  for (usize r = 0; r < h; ++r) {
    std::string label(label_w, ' ');
    if (r == 0) label = top.str();
    if (r == h - 1) label = bot.str();
    label.resize(label_w, ' ');
    out << label << " |" << canvas[r] << '\n';
  }
  out << std::string(label_w, ' ') << " +" << std::string(w, '-') << '\n';
  if (!opt.x_label.empty()) {
    out << std::string(label_w + 2, ' ') << opt.x_label << '\n';
  }
  for (const auto& s : series) {
    out << "  [" << s.glyph << "] " << s.name << '\n';
  }
  return out.str();
}

std::string render_ascii_plot(const AsciiSeries& s,
                              const AsciiPlotOptions& opt) {
  return render_ascii_plot(std::span<const AsciiSeries>(&s, 1), opt);
}

}  // namespace tc
