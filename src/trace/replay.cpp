#include "trace/replay.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>

#include "app/stentboost.hpp"

namespace tc::trace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  usize start = 0;
  for (;;) {
    usize comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      break;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

i32 stentboost_node_id(std::string_view name) {
  for (i32 node = 0; node < app::kNodeCount; ++node) {
    if (app::node_name(node) == name) return node;
  }
  return -1;
}

ParseResult read_records_csv(std::istream& in,
                             i32 (*node_id)(std::string_view)) {
  ParseResult result;
  std::map<i32, graph::FrameRecord> by_frame;

  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!header_seen) {
      header_seen = true;
      if (line.rfind("frame,", 0) == 0) continue;  // header row
    }
    std::vector<std::string> cells = split_csv_line(line);
    // Columns (write_records_csv): frame, scenario, roi_pixels, task,
    // executed, pixel_ops, feature_ops, input_bytes, intermediate_bytes,
    // output_bytes, items, simulated_ms.
    if (cells.size() != 12) {
      ++result.skipped_lines;
      continue;
    }
    char* end = nullptr;
    const long frame_raw = std::strtol(cells[0].c_str(), &end, 10);
    if (end == cells[0].c_str() || frame_raw < 0 ||
        frame_raw > std::numeric_limits<i32>::max()) {
      ++result.skipped_lines;  // malformed or out-of-range frame id
      continue;
    }
    const i32 frame = narrow<i32>(frame_raw);
    i32 node = node_id(cells[3]);
    if (node < 0) {
      ++result.skipped_lines;
      continue;
    }

    graph::FrameRecord& record = by_frame[frame];
    record.frame = frame;
    record.scenario =
        static_cast<graph::ScenarioId>(std::strtoul(cells[1].c_str(), nullptr, 10));
    record.roi_pixels = std::strtod(cells[2].c_str(), nullptr);

    graph::TaskExecution exec;
    exec.node = node;
    exec.executed = cells[4] == "1";
    exec.work.pixel_ops = std::strtoull(cells[5].c_str(), nullptr, 10);
    exec.work.feature_ops = std::strtoull(cells[6].c_str(), nullptr, 10);
    exec.work.input_bytes = std::strtoull(cells[7].c_str(), nullptr, 10);
    exec.work.intermediate_bytes =
        std::strtoull(cells[8].c_str(), nullptr, 10);
    exec.work.output_bytes = std::strtoull(cells[9].c_str(), nullptr, 10);
    exec.work.items = std::strtoull(cells[10].c_str(), nullptr, 10);
    exec.simulated_ms = std::strtod(cells[11].c_str(), nullptr);
    record.tasks.push_back(std::move(exec));
  }

  result.records.reserve(by_frame.size());
  for (auto& [frame, record] : by_frame) {
    f64 latency = 0.0;
    for (const graph::TaskExecution& exec : record.tasks) {
      if (exec.executed) latency += exec.simulated_ms;
    }
    record.latency_ms = latency;
    result.records.push_back(std::move(record));
  }
  return result;
}

}  // namespace tc::trace
