// Trace replay: parse per-frame execution records back from the CSV format
// written by recorder.hpp, so models can be (re)trained from saved traces
// without re-running the application — the offline half of the paper's
// profiling workflow.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "graph/record.hpp"

namespace tc::trace {

struct ParseResult {
  std::vector<graph::FrameRecord> records;
  /// Lines that could not be parsed (0 = clean file).
  usize skipped_lines = 0;
};

/// Parse the output of write_records_csv.  The `node_id` callback maps a
/// task-name column back to a node id (return -1 to drop the row).
/// Rows are grouped into FrameRecords by their frame column; frames must be
/// contiguous per record but may be in any order in the file.
[[nodiscard]] ParseResult read_records_csv(
    std::istream& in, i32 (*node_id)(std::string_view));

/// Split one CSV line (no quoting/escaping; mirrors CsvWriter's output).
[[nodiscard]] std::vector<std::string> split_csv_line(const std::string& line);

/// Node-name mapper for the StentBoost graph.
[[nodiscard]] i32 stentboost_node_id(std::string_view name);

}  // namespace tc::trace
