#include "trace/dataset.hpp"

#include "common/rng.hpp"

namespace tc::trace {

app::StentBoostConfig dataset_sequence_config(const DatasetParams& params,
                                              i32 index) {
  app::StentBoostConfig config = app::StentBoostConfig::make(
      params.width, params.height, params.frames_per_sequence,
      params.seed + static_cast<u64>(index) * 7919);

  // Deterministic per-sequence variation.
  Pcg32 rng(params.seed ^ 0x5EEDBA5E, static_cast<u64>(index));
  img::SequenceParams& seq = config.sequence;
  seq.dose_photons = rng.uniform(650.0, 1200.0);
  seq.motion.heart_rate_hz = rng.uniform(0.9, 1.6);
  seq.motion.cardiac_amplitude_px *= rng.uniform(0.7, 1.3);
  seq.motion.breathing_amplitude_px *= rng.uniform(0.6, 1.4);
  seq.marker_dropout_prob = rng.uniform(0.0, 0.10);
  seq.vessel_contrast_peak = rng.uniform(0.22, 0.38);

  // Every sixth sequence disables ROI processing entirely (clinically:
  // sequences where no stable ROI can be estimated), covering the
  // full-frame scenarios so RDG_FULL/MKX_FULL get trained too.
  if (index % 6 == 5) {
    config.force_full_frame = true;
  }

  // Bolus timing: most sequences have contrast arriving somewhere inside
  // the sequence; roughly one in five has no bolus at all (pure fluoroscopy
  // → ridge detection permanently unnecessary).
  if (index % 5 == 4) {
    seq.contrast_in_frame = params.frames_per_sequence + 100;
    seq.contrast_out_frame = params.frames_per_sequence + 200;
  } else {
    seq.contrast_in_frame = rng.uniform_int(3, params.frames_per_sequence / 2);
    seq.contrast_out_frame = seq.contrast_in_frame +
                             rng.uniform_int(10, params.frames_per_sequence);
  }
  return config;
}

RecordedDataset build_dataset(const DatasetParams& params) {
  RecordedDataset dataset;
  dataset.sequences.reserve(static_cast<usize>(params.sequences));
  for (i32 s = 0; s < params.sequences; ++s) {
    app::StentBoostApp app(dataset_sequence_config(params, s));
    dataset.sequences.push_back(app.run(params.frames_per_sequence));
  }
  return dataset;
}

}  // namespace tc::trace
