// Export of per-frame execution records to CSV for offline analysis.
#pragma once

#include <span>
#include <string>

#include "common/csv.hpp"
#include "graph/record.hpp"

namespace tc::trace {

/// One row per (frame, task); includes scenario, ROI size, work metrics and
/// the simulated time.
void write_records_csv(CsvWriter& csv,
                       std::span<const graph::FrameRecord> records,
                       std::string_view (*node_name)(i32));

/// One row per frame: scenario, ROI size, latency.
void write_latency_csv(CsvWriter& csv,
                       std::span<const graph::FrameRecord> records);

}  // namespace tc::trace
