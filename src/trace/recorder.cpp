#include "trace/recorder.hpp"

namespace tc::trace {

void write_records_csv(CsvWriter& csv,
                       std::span<const graph::FrameRecord> records,
                       std::string_view (*node_name)(i32)) {
  csv.header({"frame", "scenario", "roi_pixels", "task", "executed",
              "pixel_ops", "feature_ops", "input_bytes", "intermediate_bytes",
              "output_bytes", "items", "simulated_ms"});
  for (const graph::FrameRecord& r : records) {
    for (const graph::TaskExecution& t : r.tasks) {
      csv.cell(static_cast<i64>(r.frame))
          .cell(static_cast<u64>(r.scenario))
          .cell(r.roi_pixels)
          .cell(node_name(t.node))
          .cell(static_cast<i64>(t.executed ? 1 : 0))
          .cell(t.work.pixel_ops)
          .cell(t.work.feature_ops)
          .cell(t.work.input_bytes)
          .cell(t.work.intermediate_bytes)
          .cell(t.work.output_bytes)
          .cell(t.work.items)
          .cell(t.simulated_ms);
      csv.end_row();
    }
  }
}

void write_latency_csv(CsvWriter& csv,
                       std::span<const graph::FrameRecord> records) {
  csv.header({"frame", "scenario", "roi_pixels", "latency_ms"});
  for (const graph::FrameRecord& r : records) {
    csv.cell(static_cast<i64>(r.frame))
        .cell(static_cast<u64>(r.scenario))
        .cell(r.roi_pixels)
        .cell(r.latency_ms);
    csv.end_row();
  }
}

}  // namespace tc::trace
