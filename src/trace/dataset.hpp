// Training/evaluation dataset builder.
//
// The paper trains on 37 clinical sequences totalling 1 921 frames, chosen
// so that "different scenarios exist to create the dynamics in algorithmic
// adaptation and switching".  This builder reproduces that setup with 37
// synthetic sequences (~52 frames each) whose bolus timing, dose, motion
// and dropout rate vary per sequence, so the recorded dataset covers all
// eight scenarios and both granularities.
#pragma once

#include <vector>

#include "app/stentboost.hpp"
#include "graph/record.hpp"

namespace tc::trace {

struct DatasetParams {
  i32 sequences = 37;
  i32 frames_per_sequence = 52;  // 37 * 52 = 1924 ≈ the paper's 1921
  i32 width = 256;
  i32 height = 256;
  u64 seed = 2009;
};

struct RecordedDataset {
  std::vector<std::vector<graph::FrameRecord>> sequences;

  [[nodiscard]] usize total_frames() const {
    usize n = 0;
    for (const auto& s : sequences) n += s.size();
    return n;
  }
};

/// Per-sequence configuration variation (bolus timing, dose, motion,
/// dropout, and occasionally no bolus at all).
[[nodiscard]] app::StentBoostConfig dataset_sequence_config(
    const DatasetParams& params, i32 index);

/// Run the application serially over every sequence and record all frames.
[[nodiscard]] RecordedDataset build_dataset(const DatasetParams& params);

}  // namespace tc::trace
