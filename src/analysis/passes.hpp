// Static validation passes over Triple-C artifacts.
//
// Each pass inspects one artifact (flow graph, Markov model, predictor
// configuration, scenario table, platform spec, memory/bandwidth budgets)
// and returns a Report of rule-id diagnostics; the Analyzer (analyzer.hpp)
// composes them.  Passes that validate derived data (stochastic rows,
// quantizer boundaries, state counts) also exist as raw-data overloads so
// externally produced or deserialized models can be checked — and so tests
// can prove each rule fires on deliberately broken inputs.
#pragma once

#include <span>
#include <string_view>

#include "analysis/diagnostics.hpp"
#include "graph/flowgraph.hpp"
#include "graph/scenario.hpp"
#include "platform/spec.hpp"
#include "tripleC/graph_predictor.hpp"
#include "tripleC/markov.hpp"
#include "tripleC/memory_model.hpp"
#include "tripleC/predictor.hpp"

namespace tc::analysis {

/// Tunables shared by the passes.
struct PassOptions {
  /// Tolerance for Markov row sums (rule M001).
  f64 stochastic_epsilon = 1e-6;
  /// Frame rate used to convert per-frame bytes into bandwidth (rule B002).
  f64 fps = 30.0;
  /// Fraction of the memory bus considered a safe budget (rule B002).
  f64 bus_budget_fraction = 1.0;
  /// Multiplies edge byte counts and memory rows (rendering-resolution to
  /// paper-format scaling; 1.0 = bytes are already at the target format).
  f64 byte_scale = 1.0;
  /// When non-null, synthetic camera/display device edges carrying one such
  /// frame are included in the per-bus-class checks (rules B003/B004) —
  /// without them no traffic rides the I/O bus.  Not owned; must outlive the
  /// pass call.
  const plat::VideoFormat* device_format = nullptr;
};

// --- graph well-formedness (G001..G007, S003) ------------------------------

/// Full graph pass: cycles, edge endpoints, null byte callables, isolated
/// tasks, duplicate switch names, empty graph, representable scenario ids.
[[nodiscard]] Report check_graph(const graph::FlowGraph& g);

/// Structural edge validation against a task count (raw-data form of
/// G002/G003/G007; used by check_graph and directly testable).
[[nodiscard]] Report check_edges(std::span<const graph::Edge> edges,
                                 usize task_count);

// --- prediction models (M001..M007) ----------------------------------------

/// Row-stochasticity of an n x n row-major probability matrix (M001).
[[nodiscard]] Report check_stochastic_matrix(std::span<const f64> matrix,
                                             usize n, std::string_view where,
                                             f64 epsilon = 1e-6);

/// Strict monotonicity of quantizer interval boundaries (M002).
[[nodiscard]] Report check_quantizer_boundaries(std::span<const f64> boundaries,
                                                std::string_view where);

/// State count versus the paper's M = C_max/sigma_C rule after the
/// configured multiplier and clamp (M003).  Equal-frequency boundary
/// merging can only *reduce* the count, so more states than the rule
/// allows indicate a corrupted or foreign model.
[[nodiscard]] Report check_state_count(usize states, usize base_states,
                                       f64 state_multiplier, usize max_states,
                                       std::string_view where);

/// Static checks of a predictor configuration: EWMA alpha in (0, 1] (M004),
/// positive state multiplier and max_states >= 2 (M006).  `node` labels the
/// diagnostics (-1 = standalone config).
[[nodiscard]] Report check_predictor_config(const model::PredictorConfig& c,
                                            std::string_view where,
                                            i32 node = -1);

/// All model checks of one trained (or untrained: M007) task predictor:
/// Markov rows, quantizer, state-count rule, negative ROI slope (M005).
[[nodiscard]] Report check_task_predictor(const model::TaskPredictor& p,
                                          std::string_view where, i32 node,
                                          f64 epsilon = 1e-6);

/// Fitted Markov chain: stochastic rows, monotone quantizer, state-count
/// rule given the configuration it was fitted with.
[[nodiscard]] Report check_markov(const model::MarkovChain& m,
                                  f64 state_multiplier, usize max_states,
                                  std::string_view where, i32 node = -1,
                                  f64 epsilon = 1e-6);

// --- scenario coverage (S001, S002, S004) ----------------------------------

/// Scenario table versus the graph's switch count: the table must span
/// exactly 2^switches scenarios (S001), every scenario should have observed
/// transitions (S002), an entirely empty table is reported once (S004).
[[nodiscard]] Report check_scenario_coverage(
    const graph::ScenarioTransitions& table, usize switch_count);

// --- whole-predictor pass ---------------------------------------------------

/// Validate every per-task configuration and every instantiated per-context
/// predictor of a GraphPredictor, plus its scenario table.
[[nodiscard]] Report check_graph_predictor(const model::GraphPredictor& p,
                                           usize switch_count,
                                           f64 epsilon = 1e-6);

// --- platform / budgets (P001, B001, B002) ----------------------------------

/// Structural sanity of a platform spec (P001): positive CPU counts, cache
/// sizes, bus bandwidths, CPUs evenly divided over L2 slices.
[[nodiscard]] Report check_platform(const plat::PlatformSpec& spec);

/// Per-task footprint versus one L2 slice (B001): a task whose *best-case*
/// buffer requirement already exceeds the slice will always evict.
[[nodiscard]] Report check_memory_budget(std::span<const model::MemoryRow> rows,
                                         const plat::PlatformSpec& spec);

/// Aggregate inter-task traffic at the frame rate versus the memory bus
/// (B002).  Edges with null callables are skipped (check_graph reports
/// those).
[[nodiscard]] Report check_bandwidth_budget(const graph::FlowGraph& g,
                                            const plat::PlatformSpec& spec,
                                            const PassOptions& options = {});

/// Per-bus-class budgets (B003/B004): the Fig.-4 split of every edge's
/// traffic (model::edge_bus_breakdown) is summed per bus class and compared
/// against that bus's budget — cache-class traffic vs. the cache bus and
/// I/O-class traffic vs. the I/O bus (memory-class totals are covered by the
/// pessimistic B002 check above).  Set options.device_format to include the
/// camera/display device edges, the only source of I/O-bus traffic.
[[nodiscard]] Report check_bus_class_budgets(const graph::FlowGraph& g,
                                             const plat::PlatformSpec& spec,
                                             const PassOptions& options = {});

}  // namespace tc::analysis
