#include "analysis/passes.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "analysis/rules.hpp"
#include "tripleC/bandwidth_model.hpp"

namespace tc::analysis {

namespace {

Diagnostic make(std::string_view rule, Subject subject, i32 index,
                std::string location, std::string message, std::string hint) {
  const RuleInfo* info = find_rule(rule);
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = info != nullptr ? info->severity : Severity::Error;
  d.subject = subject;
  d.index = index;
  d.location = std::move(location);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

std::string fmt(f64 v, i32 precision = 2) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

std::string node_location(const graph::FlowGraph& g, i32 node) {
  std::ostringstream os;
  os << "node " << node;
  if (node >= 0 && static_cast<usize>(node) < g.task_count()) {
    os << " (" << g.task(node).name() << ")";
  }
  return os.str();
}

}  // namespace

Report check_edges(std::span<const graph::Edge> edges, usize task_count) {
  Report r;
  for (usize i = 0; i < edges.size(); ++i) {
    const graph::Edge& e = edges[i];
    std::ostringstream loc;
    loc << "edge " << i << " (" << e.from << " -> " << e.to << ")";
    const bool from_ok =
        e.from >= 0 && static_cast<usize>(e.from) < task_count;
    const bool to_ok = e.to >= 0 && static_cast<usize>(e.to) < task_count;
    if (!from_ok || !to_ok) {
      r.add(make(rules::kEdgeEndpointRange, Subject::Edge,
                 narrow<i32>(i), loc.str(),
                 "edge endpoint outside [0, " + std::to_string(task_count) +
                     ")",
                 "add the producer/consumer tasks before the edge, or drop "
                 "the edge"));
    }
    if (from_ok && to_ok && e.from == e.to) {
      r.add(make(rules::kSelfLoop, Subject::Edge, narrow<i32>(i),
                 loc.str(), "task depends on itself",
                 "remove the self-loop; intra-task buffering belongs in the "
                 "task, not the graph"));
    }
    if (!e.bytes_per_frame) {
      r.add(make(rules::kEdgeNullBytes, Subject::Edge, narrow<i32>(i),
                 loc.str(),
                 "bytes_per_frame callable is null; the bandwidth model "
                 "cannot label this edge",
                 "pass a callable returning the per-frame buffer bytes (0 is "
                 "valid for control-only edges)"));
    }
  }
  return r;
}

Report check_graph(const graph::FlowGraph& g) {
  Report r;
  const usize n = g.task_count();
  if (n == 0) {
    r.add(make(rules::kEmptyGraph, Subject::Graph, -1, "graph",
               "flow graph has no tasks", "add at least one task node"));
  }

  r.merge(check_edges(g.edges(), n));

  // Cycle detection: Kahn peeling without touching topological_order() (which
  // throws).  Edges with out-of-range endpoints were reported above and are
  // skipped here.
  std::vector<i32> indegree(n, 0);
  std::vector<std::vector<i32>> adj(n);
  std::vector<bool> incident(n, false);
  for (const graph::Edge& e : g.edges()) {
    if (e.from < 0 || e.to < 0 || static_cast<usize>(e.from) >= n ||
        static_cast<usize>(e.to) >= n) {
      continue;
    }
    adj[static_cast<usize>(e.from)].push_back(e.to);
    ++indegree[static_cast<usize>(e.to)];
    incident[static_cast<usize>(e.from)] = true;
    incident[static_cast<usize>(e.to)] = true;
  }
  std::vector<i32> ready;
  for (usize i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(narrow<i32>(i));
  }
  usize emitted = 0;
  while (!ready.empty()) {
    i32 v = ready.back();
    ready.pop_back();
    ++emitted;
    for (i32 next : adj[static_cast<usize>(v)]) {
      if (--indegree[static_cast<usize>(next)] == 0) ready.push_back(next);
    }
  }
  if (emitted < n) {
    std::ostringstream cyclic;
    cyclic << "tasks on a cycle:";
    for (usize i = 0; i < n; ++i) {
      if (indegree[i] > 0) cyclic << ' ' << g.task(narrow<i32>(i)).name();
    }
    r.add(make(rules::kGraphCycle, Subject::Graph, -1, cyclic.str(),
               "flow graph contains a dependency cycle; no topological "
               "execution order exists",
               "break the cycle (frame-delayed feedback must go through "
               "application state, not a graph edge)"));
  }

  // Isolated tasks: no incident edges at all.  A single-task graph is fine.
  if (n > 1) {
    for (usize i = 0; i < n; ++i) {
      if (!incident[i]) {
        r.add(make(rules::kIsolatedTask, Subject::Node, narrow<i32>(i),
                   node_location(g, narrow<i32>(i)),
                   "task has no incident edges; the bandwidth model and the "
                   "scheduler treat it as independent",
                   "connect the task to its producers/consumers, or confirm "
                   "it is intentionally standalone"));
      }
    }
  }

  // Duplicate switch names break scenario labeling and state-table lookups.
  std::set<std::string> seen;
  for (usize s = 0; s < g.switch_count(); ++s) {
    std::string name(g.switch_name(narrow<i32>(s)));
    if (!seen.insert(name).second) {
      r.add(make(rules::kDuplicateSwitch, Subject::Switch, narrow<i32>(s),
                 "switch " + std::to_string(s) + " (" + name + ")",
                 "switch name \"" + name + "\" is already declared",
                 "give every switch a unique name"));
    }
  }

  // Scenario ids are u32 bitmasks; the per-frame scenario assembly shifts
  // 1u << s per switch.
  if (g.switch_count() >= 32) {
    r.add(make(rules::kSwitchCountUnrepresentable, Subject::Graph, -1,
               "graph (" + std::to_string(g.switch_count()) + " switches)",
               "scenario ids are 32-bit bitmasks; " +
                   std::to_string(g.switch_count()) +
                   " switches cannot be represented",
               "reduce the number of switches below 32 or widen ScenarioId"));
  }
  return r;
}

Report check_stochastic_matrix(std::span<const f64> matrix, usize n,
                               std::string_view where, f64 epsilon) {
  Report r;
  if (matrix.size() != n * n) {
    r.add(make(rules::kRowNotStochastic, Subject::Model, -1, std::string(where),
               "matrix has " + std::to_string(matrix.size()) +
                   " entries, expected " + std::to_string(n * n),
               "store the transition matrix as a dense n x n row-major "
               "array"));
    return r;
  }
  for (usize i = 0; i < n; ++i) {
    f64 sum = 0.0;
    bool negative = false;
    for (usize j = 0; j < n; ++j) {
      f64 p = matrix[i * n + j];
      if (p < 0.0) negative = true;
      sum += p;
    }
    if (negative || std::fabs(sum - 1.0) > epsilon) {
      r.add(make(rules::kRowNotStochastic, Subject::Model, narrow<i32>(i),
                 std::string(where) + " row " + std::to_string(i),
                 negative ? "transition row contains negative probabilities"
                          : "transition row sums to " + fmt(sum, 6) +
                                ", expected 1 (Eq. 2)",
                 "renormalize the row (P_ij = n_ij / sum_k n_ik) or retrain "
                 "the chain"));
    }
  }
  return r;
}

Report check_quantizer_boundaries(std::span<const f64> boundaries,
                                  std::string_view where) {
  Report r;
  for (usize i = 1; i < boundaries.size(); ++i) {
    if (!(boundaries[i] > boundaries[i - 1])) {
      r.add(make(rules::kQuantizerNotMonotone, Subject::Model,
                 narrow<i32>(i),
                 std::string(where) + " boundary " + std::to_string(i),
                 "boundary " + fmt(boundaries[i], 6) +
                     " is not greater than its predecessor " +
                     fmt(boundaries[i - 1], 6),
                 "refit the quantizer; equal-frequency fitting merges tied "
                 "boundaries instead of repeating them"));
    }
  }
  return r;
}

Report check_state_count(usize states, usize base_states, f64 state_multiplier,
                         usize max_states, std::string_view where) {
  Report r;
  // Expected ceiling per the paper: round(multiplier * M) clamped to
  // [2, max_states].  Boundary merging may legitimately reduce the count, so
  // only an *excess* is suspicious.
  const usize scaled = static_cast<usize>(std::max(
      2.0, std::round(static_cast<f64>(base_states) * state_multiplier)));
  const usize ceiling = std::min(scaled, max_states);
  if (states > ceiling && states > 1) {
    r.add(make(
        rules::kStateCountRule, Subject::Model, -1, std::string(where),
        "chain has " + std::to_string(states) + " states, but M = C_max/sigma "
            "gives " + std::to_string(base_states) + " and multiplier " +
            fmt(state_multiplier, 2) + " caps it at " + std::to_string(ceiling),
        "refit the chain from its training series, or raise max_states/"
        "state_multiplier to match the stored model"));
  }
  return r;
}

Report check_predictor_config(const model::PredictorConfig& c,
                              std::string_view where, i32 node) {
  Report r;
  const bool uses_ewma = c.kind == model::PredictorKind::Ewma ||
                         c.kind == model::PredictorKind::EwmaMarkov;
  const bool uses_markov = c.kind == model::PredictorKind::EwmaMarkov ||
                           c.kind == model::PredictorKind::LinearMarkov;
  if (uses_ewma && (c.ewma_alpha <= 0.0 || c.ewma_alpha > 1.0)) {
    r.add(make(rules::kEwmaAlphaRange, Subject::Config, node,
               std::string(where),
               "EWMA alpha " + fmt(c.ewma_alpha, 4) +
                   " is outside (0, 1]; Eq. 1 diverges or never updates",
               "choose alpha in (0, 1] (the paper uses small alpha for the "
               "long-term component)"));
  }
  if (uses_markov && !(c.state_multiplier > 0.0)) {
    r.add(make(rules::kBadMarkovConfig, Subject::Config, node,
               std::string(where),
               "state multiplier " + fmt(c.state_multiplier, 4) +
                   " must be positive (the paper uses ~2)",
               "set state_multiplier > 0"));
  }
  if (uses_markov && c.max_states < 2) {
    r.add(make(rules::kBadMarkovConfig, Subject::Config, node,
               std::string(where),
               "max_states " + std::to_string(c.max_states) +
                   " leaves no room for a transition structure",
               "set max_states >= 2"));
  }
  return r;
}

Report check_markov(const model::MarkovChain& m, f64 state_multiplier,
                    usize max_states, std::string_view where, i32 node,
                    f64 epsilon) {
  Report r;
  if (!m.fitted()) return r;
  const usize n = m.states();
  std::vector<f64> matrix(n * n, 0.0);
  for (usize i = 0; i < n; ++i) {
    std::vector<f64> row = m.row(i);
    std::copy(row.begin(), row.end(), matrix.begin() + narrow<i64>(i * n));
  }
  // Re-anchor row diagnostics at the owning node id (Subject::Model indexes
  // nodes, not matrix rows).
  const Report rows = check_stochastic_matrix(matrix, n, where, epsilon);
  for (Diagnostic d : rows.diagnostics()) {
    d.index = node;
    r.add(std::move(d));
  }
  r.merge(check_quantizer_boundaries(m.quantizer().boundaries(), where));
  r.merge(check_state_count(n, m.quantizer().base_states(), state_multiplier,
                            max_states, where));
  return r;
}

Report check_task_predictor(const model::TaskPredictor& p,
                            std::string_view where, i32 node, f64 epsilon) {
  Report r;
  if (!p.trained()) {
    r.add(make(rules::kUntrainedPredictor, Subject::Model, node,
               std::string(where),
               "predictor has not been trained; predictions fall back to 0",
               "train offline from recorded sequences before the first "
               "managed frame"));
    return r;
  }
  const model::PredictorConfig& c = p.config();
  if (const model::MarkovChain* m = p.markov(); m != nullptr) {
    r.merge(check_markov(*m, c.state_multiplier, c.max_states, where, node,
                         epsilon));
  }
  if (c.kind == model::PredictorKind::LinearMarkov && p.linear().fitted() &&
      p.linear().slope() < 0.0) {
    r.add(make(rules::kNegativeRoiSlope, Subject::Model, node,
               std::string(where),
               "linear growth model has slope " + fmt(p.linear().slope(), 4) +
                   "; computation time shrinking with ROI size contradicts "
                   "Eq. 3",
               "check the training data (size vs. time pairs) for label "
               "mixups or degenerate ROI sweeps"));
  }
  return r;
}

Report check_scenario_coverage(const graph::ScenarioTransitions& table,
                               usize switch_count) {
  Report r;
  const usize expected = graph::scenario_count(switch_count);
  if (table.scenario_space() != expected) {
    r.add(make(rules::kScenarioSpaceMismatch, Subject::Scenario, -1,
               "scenario table",
               "table spans " + std::to_string(table.scenario_space()) +
                   " scenarios but the graph's " +
                   std::to_string(switch_count) + " switches define " +
                   std::to_string(expected),
               "construct the table with the graph's switch count"));
    return r;
  }
  u64 total = 0;
  for (usize s = 0; s < expected; ++s) {
    total += table.row_observations(static_cast<graph::ScenarioId>(s));
  }
  if (total == 0) {
    r.add(make(rules::kScenarioTableUntrained, Subject::Scenario, -1,
               "scenario table",
               "no transitions observed; scenario prediction is uniform",
               "train from recorded sequences (the paper's state tables are "
               "profiled offline)"));
    return r;
  }
  for (usize s = 0; s < expected; ++s) {
    if (table.row_observations(static_cast<graph::ScenarioId>(s)) == 0) {
      r.add(make(rules::kScenarioRowUnobserved, Subject::Scenario,
                 narrow<i32>(s), "scenario " + std::to_string(s),
                 "scenario " + std::to_string(s) +
                     " has no observed outgoing transitions; its state-table "
                     "entry is missing",
                 "extend the training set to cover the scenario, or accept "
                 "the uniform fallback"));
    }
  }
  return r;
}

Report check_graph_predictor(const model::GraphPredictor& p,
                             usize switch_count, f64 epsilon) {
  Report r;
  for (usize node = 0; node < p.task_count(); ++node) {
    const i32 id = narrow<i32>(node);
    const std::string where = "task " + std::to_string(node);
    r.merge(check_predictor_config(p.task_config(id), where, id));
    for (u32 ctx : p.contexts(id)) {
      std::string ctx_where = where;
      if (ctx != 0) ctx_where += " ctx " + std::to_string(ctx);
      r.merge(check_task_predictor(p.task_predictor(id, ctx), ctx_where, id,
                                   epsilon));
    }
  }
  r.merge(check_scenario_coverage(p.scenario_table(), switch_count));
  return r;
}

Report check_platform(const plat::PlatformSpec& spec) {
  Report r;
  auto bad = [&r](std::string message, std::string hint) {
    r.add(make(rules::kInvalidPlatform, Subject::Platform, -1, "platform",
               std::move(message), std::move(hint)));
  };
  if (spec.cpu_count <= 0) {
    bad("cpu_count " + std::to_string(spec.cpu_count) + " must be positive",
        "describe at least one CPU");
  }
  if (spec.cpu_mcycles_per_s <= 0.0) {
    bad("cpu_mcycles_per_s must be positive", "set the per-CPU clock rate");
  }
  if (spec.l2_bytes == 0 || spec.l1_bytes == 0) {
    bad("cache sizes must be nonzero",
        "set l1_bytes/l2_bytes from the platform datasheet");
  }
  if (spec.cpus_per_l2 <= 0) {
    bad("cpus_per_l2 must be positive", "set how many CPUs share an L2 slice");
  } else if (spec.cpu_count > 0 && spec.cpu_count % spec.cpus_per_l2 != 0) {
    bad("cpu_count " + std::to_string(spec.cpu_count) +
            " is not divisible by cpus_per_l2 " +
            std::to_string(spec.cpus_per_l2),
        "make the CPU count a multiple of the L2 sharing degree");
  }
  if (spec.cache_bus_gbps <= 0.0 || spec.memory_bus_gbps <= 0.0 ||
      spec.io_bus_gbps <= 0.0) {
    bad("bus bandwidths must be positive", "fill in the Fig. 4b bus numbers");
  }
  if (spec.dram_channels <= 0 || spec.dram_channel_high_gbps <= 0.0 ||
      spec.dram_channel_low_gbps <= 0.0 ||
      spec.dram_channel_low_gbps > spec.dram_channel_high_gbps) {
    bad("DRAM channel description is inconsistent",
        "require 0 < low <= high and at least one channel");
  }
  return r;
}

Report check_memory_budget(std::span<const model::MemoryRow> rows,
                           const plat::PlatformSpec& spec) {
  Report r;
  const f64 l2_kb = static_cast<f64>(spec.l2_bytes) / static_cast<f64>(KiB);
  for (usize i = 0; i < rows.size(); ++i) {
    const model::MemoryRow& row = rows[i];
    if (row.total_kb() > l2_kb) {
      r.add(make(
          rules::kFootprintOverL2, Subject::Node, narrow<i32>(i),
          "task " + row.task + (row.rdg_selected ? " (RDG selected)" : ""),
          "best-case footprint " + fmt(row.total_kb(), 0) +
              " KB exceeds one L2 slice (" + fmt(l2_kb, 0) +
              " KB); eviction traffic is certain (Table 1 / Fig. 5)",
          "expect the space-time buffer model to add eviction bandwidth, or "
          "restructure the task into smaller working sets"));
    }
  }
  return r;
}

Report check_bandwidth_budget(const graph::FlowGraph& g,
                              const plat::PlatformSpec& spec,
                              const PassOptions& options) {
  Report r;
  f64 bytes_per_frame = 0.0;
  for (const graph::Edge& e : g.edges()) {
    if (!e.bytes_per_frame) continue;  // reported by check_graph (G003)
    bytes_per_frame += static_cast<f64>(e.bytes_per_frame());
  }
  bytes_per_frame *= options.byte_scale;
  const f64 gbps = bytes_per_frame * options.fps / 1.0e9;
  const f64 budget = spec.memory_bus_gbps * options.bus_budget_fraction;
  if (gbps > budget) {
    r.add(make(rules::kBandwidthOverBus, Subject::Graph, -1, "graph",
               "inter-task traffic " + fmt(gbps, 2) + " GB/s at " +
                   fmt(options.fps, 0) + " fps exceeds the memory-bus budget " +
                   fmt(budget, 2) + " GB/s",
               "reduce per-frame buffer sizes, lower the frame rate, or relax "
               "bus_budget_fraction if headroom is intended"));
  }
  return r;
}

Report check_bus_class_budgets(const graph::FlowGraph& g,
                               const plat::PlatformSpec& spec,
                               const PassOptions& options) {
  Report r;
  const std::vector<model::EdgeBusShare> rows = model::edge_bus_breakdown(
      g, spec, options.fps, options.byte_scale, options.device_format);
  f64 cache_gbps = 0.0;
  f64 io_gbps = 0.0;
  for (const model::EdgeBusShare& row : rows) {
    cache_gbps += row.cache_mbytes_per_s() / 1.0e3;
    io_gbps += row.io_mbytes_per_s() / 1.0e3;
  }
  const f64 cache_budget = spec.cache_bus_gbps * options.bus_budget_fraction;
  const f64 io_budget = spec.io_bus_gbps * options.bus_budget_fraction;
  if (cache_gbps > cache_budget) {
    r.add(make(rules::kCacheBusOverBudget, Subject::Graph, -1, "graph",
               "cache-bus-class traffic " + fmt(cache_gbps, 2) + " GB/s at " +
                   fmt(options.fps, 0) + " fps exceeds the cache-bus budget " +
                   fmt(cache_budget, 2) + " GB/s (Fig. 4)",
               "shrink working sets so less re-used data cycles through L2, "
               "or relax bus_budget_fraction if headroom is intended"));
  }
  if (io_gbps > io_budget) {
    r.add(make(rules::kIoBusOverBudget, Subject::Graph, -1, "graph",
               "I/O-bus-class traffic " + fmt(io_gbps, 2) + " GB/s at " +
                   fmt(options.fps, 0) + " fps exceeds the I/O-bus budget " +
                   fmt(io_budget, 2) + " GB/s (Fig. 4)",
               "lower the device frame rate or format, or relax "
               "bus_budget_fraction if headroom is intended"));
  }
  return r;
}

}  // namespace tc::analysis
