#include "analysis/audit.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>

#include "analysis/rules.hpp"
#include "tripleC/bandwidth_model.hpp"

namespace tc::analysis::audit {

namespace {

Diagnostic make(std::string_view rule, i32 index, std::string location,
                std::string message, std::string hint) {
  const RuleInfo* info = find_rule(rule);
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = info != nullptr ? info->severity : Severity::Error;
  d.subject = Subject::Scenario;
  d.index = index;
  d.location = std::move(location);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

std::string fmt(f64 v, i32 precision = 2) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

/// Pessimistic per-node footprint in bytes: the largest Table-1 row for the
/// task name.  Rows arrive already scaled to the audited format (the
/// capture side applies the resolution scale), so no byte_scale here —
/// byte_scale rescales *edge* byte counts only.
std::vector<u64> node_footprints(const graph::FlowGraph& g,
                                 std::span<const model::MemoryRow> rows) {
  std::vector<u64> footprints(g.task_count(), 0);
  for (usize node = 0; node < g.task_count(); ++node) {
    std::string_view name = g.task(narrow<i32>(node)).name();
    f64 worst_kb = 0.0;
    for (const model::MemoryRow& row : rows) {
      if (row.task == name) worst_kb = std::max(worst_kb, row.total_kb());
    }
    footprints[node] = static_cast<u64>(worst_kb * static_cast<f64>(KiB));
  }
  return footprints;
}

struct BusLoads {
  f64 cache_gbps = 0.0;
  f64 memory_gbps = 0.0;
  f64 io_gbps = 0.0;
};

/// Per-bus-class loads of one scenario: every edge between two active tasks
/// split over the Fig.-4 buses, camera/display device edges for active
/// source/sink tasks, and L2-overflow eviction traffic of active tasks
/// added to the memory class (the Fig.-5 space-time consequence).
BusLoads scenario_bus_loads(const graph::FlowGraph& g,
                            const ScenarioCase& sc,
                            const plat::PlatformSpec& spec,
                            std::span<const u64> footprints,
                            const AuditOptions& options) {
  BusLoads loads;
  auto add = [&loads](const model::EdgeBusShare& share) {
    loads.cache_gbps += share.cache_mbytes_per_s() / 1.0e3;
    loads.memory_gbps += share.memory_mbytes_per_s() / 1.0e3;
    loads.io_gbps += share.io_mbytes_per_s() / 1.0e3;
  };
  auto active = [&sc](i32 node) {
    return node >= 0 && static_cast<usize>(node) < sc.nodes.size() &&
           sc.nodes[static_cast<usize>(node)].active;
  };

  std::vector<bool> has_in(g.task_count(), false);
  std::vector<bool> has_out(g.task_count(), false);
  for (const graph::Edge& e : g.edges()) {
    if (e.from >= 0 && static_cast<usize>(e.from) < g.task_count()) {
      has_out[static_cast<usize>(e.from)] = true;
    }
    if (e.to >= 0 && static_cast<usize>(e.to) < g.task_count()) {
      has_in[static_cast<usize>(e.to)] = true;
    }
    if (!e.bytes_per_frame || !active(e.from) || !active(e.to)) continue;
    u64 bytes = static_cast<u64>(static_cast<f64>(e.bytes_per_frame()) *
                                 options.byte_scale);
    add(model::split_edge(std::string(g.task(e.from).name()),
                          std::string(g.task(e.to).name()), bytes, spec,
                          options.fps));
  }

  if (options.device_format != nullptr) {
    const u64 frame = options.device_format->frame_bytes();
    for (usize node = 0; node < g.task_count(); ++node) {
      if (!active(narrow<i32>(node))) continue;
      std::string name(g.task(narrow<i32>(node)).name());
      if (!has_in[node]) {
        add(model::split_edge("camera", name, frame, spec, options.fps,
                              /*device_edge=*/true));
      }
      if (!has_out[node]) {
        add(model::split_edge(name, "display", frame, spec, options.fps,
                              /*device_edge=*/true));
      }
    }
  }

  // Eviction: a task whose footprint overflows one L2 slice swaps the
  // overflow out and back every frame (paper §5.2), on the memory bus.
  for (usize node = 0; node < g.task_count() && node < sc.nodes.size();
       ++node) {
    if (!sc.nodes[node].active) continue;
    if (node < footprints.size() && footprints[node] > spec.l2_bytes) {
      u64 overflow = 2 * (footprints[node] - spec.l2_bytes);
      loads.memory_gbps +=
          static_cast<f64>(overflow) * options.fps / 1.0e9;
    }
  }
  return loads;
}

}  // namespace

AuditResult run_audit(const graph::FlowGraph& g,
                      std::span<const ScenarioCase> cases,
                      const plat::PlatformSpec& spec,
                      const plat::CostParams& cost_params,
                      const graph::ScenarioTransitions* transitions,
                      std::span<const model::MemoryRow> memory_rows,
                      const AuditOptions& options) {
  AuditResult result;
  const f64 margin = std::max(1.0, options.pessimism_margin);
  const std::vector<u64> footprints = node_footprints(g, memory_rows);

  // Reachability first: it scopes both the derived deadline and severities.
  std::vector<sched::ReachabilityRow> reach;
  if (transitions != nullptr) {
    reach = sched::scenario_reachability(*transitions, options.reach_epsilon);
  }
  auto reach_of = [&reach](graph::ScenarioId id) {
    if (id < reach.size()) return reach[id];
    sched::ReachabilityRow all;  // no table: everything reachable
    all.probability = 1.0;
    all.observed = false;
    all.reachable = true;
    return all;
  };

  // Enumerate each scenario's plan space once.
  result.scenarios.reserve(cases.size());
  for (const ScenarioCase& sc : cases) {
    ScenarioAudit audit;
    audit.id = sc.id;
    audit.label = sc.label;
    audit.reach = reach_of(sc.id);
    audit.candidates =
        sched::enumerate_plans(cost_params, sc.nodes,
                               options.max_stripes_per_task,
                               options.cpu_count);
    result.scenarios.push_back(std::move(audit));
  }

  // Deadline: explicit, or the worst reachable scenario's margin-scaled
  // serial latency plus headroom (serial-plan feasibility by construction).
  f64 deadline = options.deadline_ms;
  if (deadline <= 0.0) {
    f64 worst_serial = 0.0;
    bool any_reachable = false;
    for (const ScenarioAudit& audit : result.scenarios) {
      if (!audit.reach.reachable) continue;
      any_reachable = true;
      worst_serial =
          std::max(worst_serial, audit.candidates.front().estimated_ms);
    }
    if (!any_reachable) {
      for (const ScenarioAudit& audit : result.scenarios) {
        worst_serial =
            std::max(worst_serial, audit.candidates.front().estimated_ms);
      }
    }
    deadline = worst_serial * margin * std::max(1.0, options.deadline_headroom);
  }
  result.deadline_ms = deadline;

  std::vector<bool> was_downgraded;

  // Per-scenario proofs.
  for (usize i = 0; i < result.scenarios.size(); ++i) {
    ScenarioAudit& audit = result.scenarios[i];
    const ScenarioCase& sc = cases[i];
    bool scenario_downgraded = false;
    auto emit = [&](Diagnostic d) {
      if (!audit.reach.reachable && d.severity == Severity::Error) {
        d.severity = Severity::Warn;
        scenario_downgraded = true;
      }
      result.report.add(std::move(d));
    };

    // A001: first-fit over the runtime's chain at the audited deadline.
    audit.chosen = audit.candidates.size() - 1;
    for (usize c = 0; c < audit.candidates.size(); ++c) {
      if (audit.candidates[c].estimated_ms * margin <= deadline) {
        audit.chosen = c;
        audit.feasible = true;
        break;
      }
    }
    audit.latency_ms = audit.chosen_plan().estimated_ms * margin;
    audit.plan = sched::plan_label(sc.nodes, audit.chosen_plan().plan);
    const std::string& plan = audit.plan;
    if (!audit.feasible) {
      emit(make(rules::kScenarioInfeasible, narrow<i32>(audit.id),
                "scenario " + audit.label,
                "no plan meets the " + fmt(deadline) +
                    " ms deadline: the widest plan (" + plan + ") needs " +
                    fmt(audit.latency_ms) + " ms at pessimism margin " +
                    fmt(margin),
                "raise the deadline, lower the pessimism margin, or allow "
                "more stripes per task"));
    }

    // A002: per-bus-class budgets under the chosen plan.
    const BusLoads loads =
        scenario_bus_loads(g, sc, spec, footprints, options);
    audit.cache_gbps = loads.cache_gbps;
    audit.memory_gbps = loads.memory_gbps;
    audit.io_gbps = loads.io_gbps;
    struct BusCheck {
      std::string_view bus;
      f64 load;
      f64 budget;
    };
    const BusCheck checks[] = {
        {"cache", loads.cache_gbps,
         spec.cache_bus_gbps * options.bus_budget_fraction},
        {"memory", loads.memory_gbps,
         spec.memory_bus_gbps * options.bus_budget_fraction},
        {"io", loads.io_gbps,
         spec.io_bus_gbps * options.bus_budget_fraction},
    };
    for (const BusCheck& check : checks) {
      if (check.load > check.budget) {
        emit(make(rules::kBusBudgetViolation, narrow<i32>(audit.id),
                  "scenario " + audit.label + " / plan " + plan + " / " +
                      std::string(check.bus) + " bus",
                  "counterexample (scenario " + audit.label + ", plan " +
                      plan + ", " + std::string(check.bus) + " bus): " +
                      fmt(check.load) + " GB/s exceeds the budget " +
                      fmt(check.budget) + " GB/s (Fig. 4)",
                  "shrink the scenario's buffers, lower the frame rate, or "
                  "relax bus_budget_fraction if headroom is intended"));
      }
    }

    // A003: Fig.-5 buffer ceiling per active task (informational — the
    // eviction traffic is already in the A002 memory-class load).
    const f64 l2_kb = static_cast<f64>(spec.l2_bytes) / static_cast<f64>(KiB);
    for (usize node = 0; node < sc.nodes.size(); ++node) {
      if (!sc.nodes[node].active || node >= footprints.size()) continue;
      f64 fp_kb =
          static_cast<f64>(footprints[node]) / static_cast<f64>(KiB);
      audit.peak_buffer_kb = std::max(audit.peak_buffer_kb, fp_kb);
      if (footprints[node] > spec.l2_bytes) {
        emit(make(rules::kBufferCeilingExceeded, narrow<i32>(audit.id),
                  "scenario " + audit.label + " / task " + sc.nodes[node].name,
                  "footprint " + fmt(fp_kb, 0) + " KB exceeds one L2 slice (" +
                      fmt(l2_kb, 0) +
                      " KB); eviction traffic added to the memory-bus class",
                  "restructure the task into smaller working sets, or accept "
                  "the priced eviction bandwidth"));
      }
    }

    was_downgraded.push_back(scenario_downgraded);
  }

  // A005: note every unreachable scenario whose findings were softened.
  for (usize i = 0; i < result.scenarios.size(); ++i) {
    const ScenarioAudit& audit = result.scenarios[i];
    if (!was_downgraded[i]) continue;
    result.report.add(make(
        rules::kUnreachableScenario, narrow<i32>(audit.id),
        "scenario " + audit.label,
        "scenario is unreachable under the trained chain (stationary "
        "probability " +
            fmt(audit.reach.probability, 6) +
            "); its violations were downgraded to warnings",
        "extend training if the scenario can occur in deployment"));
  }

  // A004: price every likely transition between reachable scenarios.
  if (transitions != nullptr) {
    for (usize from = 0; from < result.scenarios.size(); ++from) {
      const ScenarioAudit& src = result.scenarios[from];
      if (!src.reach.reachable || !src.reach.observed) continue;
      for (usize to = 0; to < result.scenarios.size(); ++to) {
        if (from == to) continue;
        const ScenarioAudit& dst = result.scenarios[to];
        if (!dst.reach.reachable) continue;
        f64 p = transitions->probability(src.id, dst.id);
        if (p < options.transition_floor) continue;
        TransitionAudit t;
        t.from = src.id;
        t.to = dst.id;
        t.probability = p;
        t.cost = sched::price_plan_switch(
            cost_params, spec, cases[from].nodes, cases[to].nodes,
            src.chosen_plan().plan, dst.chosen_plan().plan, footprints);
        t.slack_ms = deadline - dst.latency_ms;
        if (!t.fits()) {
          result.report.add(make(
              rules::kCostlyTransition, narrow<i32>(dst.id),
              "transition " + src.label + " -> " + dst.label,
              "plan switch (" + src.plan + " -> " + dst.plan + ", p=" +
                  fmt(p) + ") costs " + fmt(t.cost.total_ms()) +
                  " ms but the destination's deadline slack is only " +
                  fmt(t.slack_ms) + " ms",
              "pre-warm the destination plan, widen the deadline headroom, "
              "or pin a compromise plan across both scenarios"));
        }
        result.transitions.push_back(t);
      }
    }
  }

  return result;
}

std::string format_audit_table(const AuditResult& result) {
  std::ostringstream os;
  os << "deadline " << fmt(result.deadline_ms) << " ms\n";
  os << std::left << std::setw(22) << "scenario" << std::right
     << std::setw(7) << "reach" << std::setw(7) << "plans" << std::setw(10)
     << "latency" << std::setw(9) << "cache" << std::setw(9) << "memory"
     << std::setw(9) << "io" << std::setw(10) << "feasible"
     << "  chosen plan\n";
  for (const ScenarioAudit& s : result.scenarios) {
    os << std::left << std::setw(22) << s.label << std::right << std::setw(7)
       << (s.reach.reachable ? fmt(s.reach.probability, 3) : "no")
       << std::setw(7) << s.candidates.size() << std::setw(10)
       << fmt(s.latency_ms) << std::setw(9) << fmt(s.cache_gbps)
       << std::setw(9) << fmt(s.memory_gbps) << std::setw(9)
       << fmt(s.io_gbps) << std::setw(10) << (s.feasible ? "yes" : "NO")
       << "  " << s.plan << '\n';
  }
  return os.str();
}

std::string format_transition_table(const AuditResult& result) {
  std::ostringstream os;
  if (result.transitions.empty()) {
    os << "no transitions above the probability floor\n";
    return os.str();
  }
  os << std::left << std::setw(40) << "transition" << std::right
     << std::setw(7) << "prob" << std::setw(8) << "nodes" << std::setw(8)
     << "fanout" << std::setw(10) << "cost ms" << std::setw(10)
     << "slack ms" << std::setw(6) << "ok" << '\n';
  for (const TransitionAudit& t : result.transitions) {
    std::string arrow;
    for (const ScenarioAudit& s : result.scenarios) {
      if (s.id == t.from) arrow = s.label + " -> ";
    }
    for (const ScenarioAudit& s : result.scenarios) {
      if (s.id == t.to) arrow += s.label;
    }
    os << std::left << std::setw(40) << arrow << std::right << std::setw(7)
       << fmt(t.probability) << std::setw(8) << t.cost.nodes_repartitioned
       << std::setw(8) << t.cost.fanout_delta << std::setw(10)
       << fmt(t.cost.total_ms()) << std::setw(10) << fmt(t.slack_ms)
       << std::setw(6) << (t.fits() ? "yes" : "NO") << '\n';
  }
  return os.str();
}

}  // namespace tc::analysis::audit
