#include "analysis/schedulability.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tc::analysis::sched {

PlanVec serial_plan(usize node_count) {
  return PlanVec(node_count, 1);
}

f64 plan_latency_ms(const plat::CostParams& params,
                    std::span<const ScheduleNode> nodes,
                    std::span<const i32> plan) {
  f64 total = 0.0;
  for (usize node = 0; node < nodes.size(); ++node) {
    const ScheduleNode& n = nodes[node];
    if (!n.active) continue;
    i32 stripes = n.data_parallel ? plan[node] : 1;
    total += plat::striped_ms_from_serial(params, n.serial_ms, stripes);
  }
  return total;
}

std::vector<PlanCandidate> enumerate_plans(const plat::CostParams& params,
                                           std::span<const ScheduleNode> nodes,
                                           i32 max_stripes_per_task,
                                           i32 cpu_count) {
  std::vector<PlanCandidate> chain;
  PlanVec plan = serial_plan(nodes.size());
  chain.push_back({plan, plan_latency_ms(params, nodes, plan)});

  // Greedy widening, identical to rt::choose_plan's loop but budget-free:
  // repeatedly double the stripes of the active data-parallel node with the
  // largest current estimated time, as long as widening strictly helps and
  // the per-task/CPU caps allow it.  Every intermediate plan is a candidate.
  for (;;) {
    i32 worst = -1;
    f64 worst_ms = 0.0;
    for (usize node = 0; node < nodes.size(); ++node) {
      const ScheduleNode& n = nodes[node];
      if (!n.active || !n.data_parallel) continue;
      if (plan[node] >= std::min(max_stripes_per_task, cpu_count)) continue;
      f64 current =
          plat::striped_ms_from_serial(params, n.serial_ms, plan[node]);
      f64 widened =
          plat::striped_ms_from_serial(params, n.serial_ms, plan[node] * 2);
      if (widened >= current) continue;  // sync overhead dominates
      if (current > worst_ms) {
        worst_ms = current;
        worst = narrow<i32>(node);
      }
    }
    if (worst < 0) break;
    plan[static_cast<usize>(worst)] *= 2;
    chain.push_back({plan, plan_latency_ms(params, nodes, plan)});
  }
  return chain;
}

std::string plan_label(std::span<const ScheduleNode> nodes,
                       std::span<const i32> plan) {
  std::ostringstream os;
  bool any = false;
  for (usize node = 0; node < plan.size(); ++node) {
    if (plan[node] > 1) {
      if (any) os << ' ';
      os << (node < nodes.size() ? nodes[node].name : "?") << "x"
         << plan[node];
      any = true;
    }
  }
  if (!any) os << "serial";
  return os.str();
}

std::vector<ReachabilityRow> scenario_reachability(
    const graph::ScenarioTransitions& table, f64 epsilon, usize iterations) {
  const usize n = table.scenario_space();
  std::vector<ReachabilityRow> rows(n);

  u64 total_observations = 0;
  for (usize s = 0; s < n; ++s) {
    rows[s].observed = table.row_observations(s) > 0;
    total_observations += table.row_observations(s);
  }

  if (total_observations == 0) {
    // Untrained chain: no evidence that any scenario cannot occur.
    for (ReachabilityRow& r : rows) {
      r.probability = 1.0 / static_cast<f64>(n);
      r.reachable = true;
    }
    return rows;
  }

  // Start distribution = empirical visitation; transition matrix = trained
  // rows as-is, unobserved rows self-loop (ScenarioTransitions::probability
  // falls back to uniform there, which would invent reachability).
  std::vector<f64> dist(n, 0.0);
  for (usize s = 0; s < n; ++s) {
    dist[s] = static_cast<f64>(table.row_observations(s)) /
              static_cast<f64>(total_observations);
  }
  std::vector<f64> next(n, 0.0);
  for (usize it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (usize from = 0; from < n; ++from) {
      if (dist[from] <= 0.0) continue;
      if (!rows[from].observed) {
        next[from] += dist[from];
        continue;
      }
      for (usize to = 0; to < n; ++to) {
        next[to] += dist[from] *
                    table.probability(narrow<graph::ScenarioId>(from),
                                      narrow<graph::ScenarioId>(to));
      }
    }
    f64 delta = 0.0;
    for (usize s = 0; s < n; ++s) delta += std::abs(next[s] - dist[s]);
    dist.swap(next);
    if (delta < 1e-12) break;
  }

  for (usize s = 0; s < n; ++s) {
    rows[s].probability = dist[s];
    rows[s].reachable = rows[s].observed || dist[s] > epsilon;
  }
  return rows;
}

namespace {

i32 effective_stripes(const ScheduleNode& n, i32 plan_stripes) {
  if (!n.active) return 0;
  return n.data_parallel ? plan_stripes : 1;
}

}  // namespace

SwitchCost price_plan_switch(const plat::CostParams& params,
                             const plat::PlatformSpec& spec,
                             std::span<const ScheduleNode> from_nodes,
                             std::span<const ScheduleNode> to_nodes,
                             std::span<const i32> from_plan,
                             std::span<const i32> to_plan,
                             std::span<const u64> footprint_bytes) {
  SwitchCost cost;
  const f64 dram_bytes_per_ms =
      spec.dram_gbps(params.base_dram_contention) * 1.0e9 / 1.0e3;
  for (usize node = 0; node < from_nodes.size() && node < to_nodes.size();
       ++node) {
    i32 before = effective_stripes(from_nodes[node], from_plan[node]);
    i32 after = effective_stripes(to_nodes[node], to_plan[node]);
    // A node (de)activating is scenario dynamics, not a re-layout.
    if (before == 0 || after == 0 || before == after) continue;
    ++cost.nodes_repartitioned;
    i32 delta = std::abs(after - before);
    cost.fanout_delta += delta;
    // Re-layout: one dispatch to rebuild the stripe set, one barrier per
    // stripe added or removed.
    cost.relayout_ms +=
        params.dispatch_ms + params.stripe_sync_ms * static_cast<f64>(delta);
    // Cache refill: a repartitioned node's stripes land on CPUs whose L2
    // slice does not hold its working set yet; the refetch is bounded by one
    // slice and priced at base-contention DRAM bandwidth.
    u64 footprint = node < footprint_bytes.size() ? footprint_bytes[node] : 0;
    u64 refill = std::min(footprint, spec.l2_bytes);
    cost.cache_refill_ms +=
        static_cast<f64>(refill) / std::max(1.0, dram_bytes_per_ms);
  }
  return cost;
}

}  // namespace tc::analysis::sched
