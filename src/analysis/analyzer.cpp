#include "analysis/analyzer.hpp"

#include "analysis/rules.hpp"

namespace tc::analysis {

std::string_view to_string(Policy p) {
  return p == Policy::Strict ? "strict" : "permissive";
}

AnalysisError::AnalysisError(const Report& report)
    : std::runtime_error("triplec-lint: " + std::to_string(report.error_count()) +
                         " error(s) in static validation\n" + report.to_text()),
      report_(report) {}

Report Analyzer::run(const AnalysisInput& input) const {
  Report r;
  if (input.graph != nullptr) {
    r.merge(check_graph(*input.graph));
  }
  if (input.predictor != nullptr) {
    usize switches = input.graph != nullptr
                         ? input.graph->switch_count()
                         : 0;
    // Without a graph, trust the table's own size (coverage only).
    if (input.graph == nullptr) {
      usize space = input.predictor->scenario_table().scenario_space();
      while ((usize{1} << switches) < space) ++switches;
    }
    r.merge(check_graph_predictor(*input.predictor, switches,
                                  options_.stochastic_epsilon));
    if (input.graph != nullptr &&
        input.predictor->task_count() != input.graph->task_count()) {
      Diagnostic d;
      d.rule = std::string(rules::kPredictorTaskMismatch);
      d.severity = Severity::Error;
      d.subject = Subject::Graph;
      d.index = -1;
      d.location = "graph vs. predictor";
      d.message = "predictor models " +
                  std::to_string(input.predictor->task_count()) +
                  " tasks but the graph has " +
                  std::to_string(input.graph->task_count());
      d.hint = "construct the GraphPredictor with the graph's task count";
      r.add(std::move(d));
    }
  }
  if (input.platform != nullptr) {
    r.merge(check_platform(*input.platform));
    if (input.graph != nullptr) {
      r.merge(check_bandwidth_budget(*input.graph, *input.platform, options_));
      r.merge(check_bus_class_budgets(*input.graph, *input.platform,
                                      options_));
    }
    if (!input.memory_rows.empty()) {
      r.merge(check_memory_budget(input.memory_rows, *input.platform));
    }
  }
  return r;
}

void enforce(const Report& report, Policy policy) {
  if (policy == Policy::Strict && report.has_errors()) {
    throw AnalysisError(report);
  }
}

}  // namespace tc::analysis
