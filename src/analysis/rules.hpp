// Rule catalog of triplec-lint.
//
// Rule ids are stable, grouped by artifact:
//   G*** — flow-graph well-formedness          (Fig. 2 DAG semantics)
//   M*** — prediction-model validity           (Eq. 1-3, Table 2)
//   S*** — scenario/state-table coverage       (paper §5.2, 2^S scenarios)
//   P*** — platform-specification sanity       (Fig. 4 parameters)
//   B*** — memory/bandwidth budgets            (Table 1, §5 L2 analysis)
//   A*** — schedulability audit                (triplec-audit; scenarios ×
//          plans feasibility, per-bus budgets, buffer ceilings, transitions)
//
// The default severity listed here is what the built-in passes emit; the
// catalog is the single source of truth for the docs (DESIGN.md) and the
// CLI's --rules listing.
#pragma once

#include <span>
#include <string_view>

#include "analysis/diagnostics.hpp"

namespace tc::analysis {

struct RuleInfo {
  std::string_view id;
  Severity severity = Severity::Error;
  std::string_view title;
};

namespace rules {
// Graph well-formedness.
inline constexpr std::string_view kGraphCycle = "G001";
inline constexpr std::string_view kEdgeEndpointRange = "G002";
inline constexpr std::string_view kEdgeNullBytes = "G003";
inline constexpr std::string_view kIsolatedTask = "G004";
inline constexpr std::string_view kDuplicateSwitch = "G005";
inline constexpr std::string_view kEmptyGraph = "G006";
inline constexpr std::string_view kSelfLoop = "G007";
inline constexpr std::string_view kPredictorTaskMismatch = "G008";
// Markov / predictor models.
inline constexpr std::string_view kRowNotStochastic = "M001";
inline constexpr std::string_view kQuantizerNotMonotone = "M002";
inline constexpr std::string_view kStateCountRule = "M003";
inline constexpr std::string_view kEwmaAlphaRange = "M004";
inline constexpr std::string_view kNegativeRoiSlope = "M005";
inline constexpr std::string_view kBadMarkovConfig = "M006";
inline constexpr std::string_view kUntrainedPredictor = "M007";
// Scenario coverage.
inline constexpr std::string_view kScenarioSpaceMismatch = "S001";
inline constexpr std::string_view kScenarioRowUnobserved = "S002";
inline constexpr std::string_view kSwitchCountUnrepresentable = "S003";
inline constexpr std::string_view kScenarioTableUntrained = "S004";
// Platform spec.
inline constexpr std::string_view kInvalidPlatform = "P001";
// Memory / bandwidth budgets.
inline constexpr std::string_view kFootprintOverL2 = "B001";
inline constexpr std::string_view kBandwidthOverBus = "B002";
inline constexpr std::string_view kCacheBusOverBudget = "B003";
inline constexpr std::string_view kIoBusOverBudget = "B004";
// Schedulability audit (triplec-audit).
inline constexpr std::string_view kScenarioInfeasible = "A001";
inline constexpr std::string_view kBusBudgetViolation = "A002";
inline constexpr std::string_view kBufferCeilingExceeded = "A003";
inline constexpr std::string_view kCostlyTransition = "A004";
inline constexpr std::string_view kUnreachableScenario = "A005";
}  // namespace rules

/// Every rule the built-in passes can emit, in catalog order.
[[nodiscard]] std::span<const RuleInfo> rule_catalog();

/// Catalog entry for an id, nullptr when unknown.
[[nodiscard]] const RuleInfo* find_rule(std::string_view id);

}  // namespace tc::analysis
