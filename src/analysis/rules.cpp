#include "analysis/rules.hpp"

#include <array>

namespace tc::analysis {

namespace {

constexpr std::array<RuleInfo, 20> kCatalog{{
    {rules::kGraphCycle, Severity::Error,
     "flow graph contains a dependency cycle"},
    {rules::kEdgeEndpointRange, Severity::Error,
     "edge endpoint out of range or negative"},
    {rules::kEdgeNullBytes, Severity::Error,
     "edge bytes_per_frame callable is null"},
    {rules::kIsolatedTask, Severity::Warn,
     "task has no incident edges (isolated node)"},
    {rules::kDuplicateSwitch, Severity::Error, "duplicate switch name"},
    {rules::kEmptyGraph, Severity::Warn, "flow graph has no tasks"},
    {rules::kSelfLoop, Severity::Error, "edge from a task to itself"},
    {rules::kPredictorTaskMismatch, Severity::Error,
     "predictor task count differs from graph task count"},
    {rules::kRowNotStochastic, Severity::Error,
     "Markov transition row does not sum to 1 (Eq. 2)"},
    {rules::kQuantizerNotMonotone, Severity::Error,
     "quantizer boundaries not strictly increasing"},
    {rules::kStateCountRule, Severity::Warn,
     "state count inconsistent with M = C_max/sigma rule"},
    {rules::kEwmaAlphaRange, Severity::Error,
     "EWMA alpha outside (0, 1] (Eq. 1)"},
    {rules::kNegativeRoiSlope, Severity::Warn,
     "linear growth model has a negative ROI slope (Eq. 3)"},
    {rules::kBadMarkovConfig, Severity::Error,
     "invalid Markov configuration (state multiplier / max states)"},
    {rules::kUntrainedPredictor, Severity::Info,
     "predictor has not been trained"},
    {rules::kScenarioSpaceMismatch, Severity::Error,
     "scenario table size differs from 2^switches"},
    {rules::kScenarioRowUnobserved, Severity::Warn,
     "scenario has no observed transitions (missing state-table entry)"},
    {rules::kSwitchCountUnrepresentable, Severity::Error,
     "too many switches to represent scenario ids"},
    {rules::kScenarioTableUntrained, Severity::Info,
     "scenario state table has no observations at all"},
    {rules::kInvalidPlatform, Severity::Error,
     "platform specification is invalid"},
}};

constexpr std::array<RuleInfo, 4> kBudgetCatalog{{
    {rules::kFootprintOverL2, Severity::Warn,
     "task best-case footprint exceeds one L2 slice (eviction predicted)"},
    {rules::kBandwidthOverBus, Severity::Warn,
     "aggregate inter-task bandwidth exceeds the memory-bus budget"},
    {rules::kCacheBusOverBudget, Severity::Warn,
     "cache-bus-class traffic exceeds the cache-bus budget (Fig. 4)"},
    {rules::kIoBusOverBudget, Severity::Warn,
     "I/O-bus-class traffic exceeds the I/O-bus budget (Fig. 4)"},
}};

constexpr std::array<RuleInfo, 5> kAuditCatalog{{
    {rules::kScenarioInfeasible, Severity::Error,
     "no plan in the runtime search space meets the deadline for a reachable "
     "scenario"},
    {rules::kBusBudgetViolation, Severity::Error,
     "a (scenario, plan, bus) triple exceeds its bus-class budget"},
    {rules::kBufferCeilingExceeded, Severity::Info,
     "peak buffer occupation exceeds the L2 ceiling (Fig. 5; eviction "
     "traffic priced into bus loads)"},
    {rules::kCostlyTransition, Severity::Warn,
     "a likely scenario transition's plan-switch cost exceeds the deadline "
     "slack"},
    {rules::kUnreachableScenario, Severity::Info,
     "scenario unreachable under the trained chain; its violations were "
     "downgraded"},
}};

// Concatenated view over the blocks, kept in one flat array for the span.
constexpr std::array<RuleInfo, kCatalog.size() + kBudgetCatalog.size() +
                                   kAuditCatalog.size()>
    kAllRules = [] {
      std::array<RuleInfo, kCatalog.size() + kBudgetCatalog.size() +
                               kAuditCatalog.size()>
          all{};
      usize i = 0;
      for (const RuleInfo& r : kCatalog) all[i++] = r;
      for (const RuleInfo& r : kBudgetCatalog) all[i++] = r;
      for (const RuleInfo& r : kAuditCatalog) all[i++] = r;
      return all;
    }();

}  // namespace

std::span<const RuleInfo> rule_catalog() { return kAllRules; }

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& r : kAllRules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

}  // namespace tc::analysis
