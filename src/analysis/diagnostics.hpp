// Structured diagnostics for triplec-lint (src/analysis).
//
// Every validation pass emits Diagnostic records into a Report: a stable
// rule id (see rules.hpp for the catalog), a severity, the location inside
// the artifact (node/edge/switch/scenario index), a human-readable message
// and a fix hint.  Reports render as text (CLI default), CSV, or a
// machine-readable JSON document.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace tc::analysis {

enum class Severity { Info, Warn, Error };

[[nodiscard]] std::string_view to_string(Severity s);

/// What part of the artifact a diagnostic points at.
enum class Subject {
  Graph,     // the flow graph as a whole
  Node,      // a task node (index = node id)
  Edge,      // an edge (index = edge position)
  Switch,    // a named switch (index = switch id)
  Scenario,  // a scenario id (index = scenario bitmask)
  Model,     // a prediction model (index = node id, -1 = standalone model)
  Platform,  // the platform specification
  Config,    // a predictor configuration (index = node id)
};

[[nodiscard]] std::string_view to_string(Subject s);

struct Diagnostic {
  std::string rule;  // catalog id, e.g. "G001"
  Severity severity = Severity::Error;
  Subject subject = Subject::Graph;
  /// Index of the node/edge/switch/scenario, -1 for whole-artifact findings.
  i32 index = -1;
  /// Human-readable location, e.g. "edge 3 (RDG_FULL -> MKX_FULL)".
  std::string location;
  std::string message;
  /// Suggested fix, shown after the message in text output.
  std::string hint;
};

/// Ordered collection of diagnostics with severity tallies and exporters.
class Report {
 public:
  void add(Diagnostic d);
  /// Append every diagnostic of `other` (pass composition).
  void merge(Report other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] usize size() const { return diagnostics_.size(); }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
  [[nodiscard]] usize count(Severity s) const;
  [[nodiscard]] usize error_count() const { return count(Severity::Error); }
  [[nodiscard]] usize warning_count() const { return count(Severity::Warn); }
  [[nodiscard]] bool has_errors() const { return error_count() > 0; }
  [[nodiscard]] bool has_warnings() const { return warning_count() > 0; }

  /// All diagnostics carrying the given rule id.
  [[nodiscard]] std::vector<Diagnostic> by_rule(std::string_view rule) const;
  /// True when at least one diagnostic carries the rule id.
  [[nodiscard]] bool fired(std::string_view rule) const;

  /// Human-readable listing: one "severity rule location: message (hint)"
  /// line per diagnostic plus a summary line.
  [[nodiscard]] std::string to_text() const;
  /// CSV with header rule,severity,subject,index,location,message,hint.
  [[nodiscard]] std::string to_csv() const;
  /// Machine-readable JSON: {"diagnostics":[...],"errors":N,...}.
  [[nodiscard]] std::string to_json() const;
  /// SARIF 2.1.0 log with one run: `tool_name` names the driver
  /// (triplec-lint / triplec-audit), rules come from the catalog, results
  /// map Info/Warn/Error to note/warning/error.  Locations are logical
  /// (subject kind + index) since the artifacts are in-memory graphs, not
  /// files.
  [[nodiscard]] std::string to_sarif(std::string_view tool_name) const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace tc::analysis
