// triplec-audit: static schedulability and per-bus budget proofs.
//
// The paper's central claim is that resource usage is predictable *before*
// running — so admission should be a proof, not an experiment.  This pass
// layer enumerates every scenario of the flow graph against every plan the
// runtime planner can ever pick (the enumerate_plans chain from
// schedulability.hpp) and, per (scenario, plan), proves or refutes:
//
//   A001  deadline feasibility — some plan in the runtime's search space
//         meets the deadline under the pessimism margin;
//   A002  per-bus-class budgets — the scenario's active edges split over
//         the Fig.-4 cache/memory/I-O buses, each class within its bus,
//         with L2-overflow eviction traffic added to the memory class;
//   A003  buffer ceilings — an active task's Fig.-5 footprint exceeding one
//         L2 slice (informational: the eviction traffic is already priced
//         into the A002 memory-class load);
//   A004  transition pricing — for every likely scenario transition, the
//         cost of switching between the two chosen plans (stripe re-layout,
//         fan-out change, cache refill) must fit the destination's slack;
//   A005  reachability weighting — scenarios unreachable under the trained
//         Markov chain keep their findings, downgraded below Error, so an
//         impossible mode cannot fail admission.
//
// The caller supplies one ScenarioCase per scenario (activity + per-node
// serial predictions); rt::make_audit_cases (runtime/audit_gate.hpp) builds
// them from a trained GraphPredictor so the audited numbers are exactly the
// runtime's forecasts.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/schedulability.hpp"
#include "graph/flowgraph.hpp"
#include "tripleC/memory_model.hpp"

namespace tc::analysis::audit {

/// One scenario's view of the graph: which nodes run and their predicted
/// serial times.  `nodes` is indexed by graph task id.
struct ScenarioCase {
  graph::ScenarioId id = 0;
  std::string label;
  std::vector<sched::ScheduleNode> nodes;
};

struct AuditOptions {
  f64 fps = 30.0;
  /// Multiplies edge byte counts and memory rows (rendering-resolution to
  /// paper-format scaling, as in PassOptions::byte_scale).
  f64 byte_scale = 1.0;
  /// Fraction of each bus considered a safe budget (A002).
  f64 bus_budget_fraction = 1.0;
  /// Pessimism margin multiplying every predicted latency (>= 1; the audit
  /// proves feasibility for margin-inflated forecasts).
  f64 pessimism_margin = 1.10;
  /// Frame deadline.  0 = derive: worst reachable scenario's margin-scaled
  /// *serial* latency times deadline_headroom, i.e. "the serial schedule of
  /// the worst mode plus headroom" — the weakest deadline under which the
  /// shipped graph is provably schedulable without striping.
  f64 deadline_ms = 0.0;
  f64 deadline_headroom = 1.10;
  /// Stationary probability below which an unvisited scenario counts as
  /// unreachable (A005 downgrade).
  f64 reach_epsilon = 1e-4;
  /// Transitions with probability below this floor are not priced (A004).
  f64 transition_floor = 0.05;
  i32 max_stripes_per_task = 8;
  i32 cpu_count = 8;
  /// When non-null, camera/display device edges carrying one such frame are
  /// added for active source/sink tasks (the I/O-bus class).
  const plat::VideoFormat* device_format = nullptr;
};

/// Per-scenario verdict.
struct ScenarioAudit {
  graph::ScenarioId id = 0;
  std::string label;
  sched::ReachabilityRow reach;
  /// The runtime's full plan search space for this scenario.
  std::vector<sched::PlanCandidate> candidates;
  /// Index of the plan the runtime would pick at the audited deadline
  /// (first candidate that fits; the last when none does).
  usize chosen = 0;
  /// Some candidate meets the deadline under the pessimism margin.
  bool feasible = false;
  /// Margin-scaled latency of the chosen plan.
  f64 latency_ms = 0.0;
  /// Human-readable chosen plan, e.g. "serial" or "RDG_FULLx4".
  std::string plan;
  /// Per-bus-class loads of the scenario's active edges (GB/s).
  f64 cache_gbps = 0.0;
  f64 memory_gbps = 0.0;
  f64 io_gbps = 0.0;
  /// Largest active-task footprint (KB, byte-scaled) vs. one L2 slice.
  f64 peak_buffer_kb = 0.0;

  [[nodiscard]] const sched::PlanCandidate& chosen_plan() const {
    return candidates[chosen];
  }
};

/// One priced scenario transition (A004).
struct TransitionAudit {
  graph::ScenarioId from = 0;
  graph::ScenarioId to = 0;
  f64 probability = 0.0;
  sched::SwitchCost cost;
  /// deadline - margin-scaled latency of the destination's chosen plan.
  f64 slack_ms = 0.0;
  [[nodiscard]] bool fits() const { return cost.total_ms() <= slack_ms; }
};

struct AuditResult {
  f64 deadline_ms = 0.0;
  std::vector<ScenarioAudit> scenarios;
  std::vector<TransitionAudit> transitions;
  Report report;
};

/// Run the full audit.  `cases` must cover every scenario id exactly once
/// (any order); `transitions` may be null (all scenarios then count as
/// reachable); `memory_rows` (matched against graph task names, *already*
/// scaled to the audited format — byte_scale rescales edge bytes only) feed
/// the buffer-ceiling and eviction checks and the cache-refill pricing;
/// rows may be empty.
[[nodiscard]] AuditResult run_audit(
    const graph::FlowGraph& g, std::span<const ScenarioCase> cases,
    const plat::PlatformSpec& spec, const plat::CostParams& cost_params,
    const graph::ScenarioTransitions* transitions,
    std::span<const model::MemoryRow> memory_rows,
    const AuditOptions& options = {});

/// Scenario × plan feasibility table (CLI text output).
[[nodiscard]] std::string format_audit_table(const AuditResult& result);

/// Scenario-transition pricing table (CLI text output).
[[nodiscard]] std::string format_transition_table(const AuditResult& result);

}  // namespace tc::analysis::audit
