// Static schedulability core (the math half of triplec-audit).
//
// Everything here is a pure function over generic inputs — per-node serial
// time predictions, stripe plans as plain vectors, the platform cost
// parameters — so the same code serves the runtime planner (through thin
// adapters in src/runtime/partition.*) and the offline audit
// (src/analysis/audit.*).  That shared core is what makes the audit's
// feasibility proofs *binding*: the plan space it enumerates and the latency
// formula it evaluates are, by construction, exactly the ones
// rt::choose_plan uses at runtime.
//
// Three primitives:
//   * enumerate_plans — the greedy stripe-widening chain from the serial
//     plan to saturation (every plan rt::choose_plan can ever return);
//   * scenario_reachability — stationary scenario probabilities under the
//     trained transition table (power iteration), used to weight audit
//     findings by whether a scenario can actually occur;
//   * price_plan_switch — the static cost of switching plans between
//     scenarios (stripe re-layout, thread fan-out change, cache refill),
//     the offline half of mode-transition-aware repartitioning.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/scenario.hpp"
#include "platform/cost_model.hpp"
#include "platform/spec.hpp"

namespace tc::analysis::sched {

/// One flow-graph node as the scheduler sees it: active under the scenario
/// being audited, stripeable or not, and its predicted serial time.
struct ScheduleNode {
  std::string name;
  bool active = false;
  bool data_parallel = false;
  f64 serial_ms = 0.0;
};

/// Stripes per node (1 = serial).  Plain vector so the core stays free of
/// application-specific plan types; adapters convert to app::StripePlan.
using PlanVec = std::vector<i32>;

[[nodiscard]] PlanVec serial_plan(usize node_count);

/// Frame latency estimate for a plan: sum over active nodes of their
/// (striped or serial) estimated time — the same aggregation as
/// rt::estimate_latency.
[[nodiscard]] f64 plan_latency_ms(const plat::CostParams& params,
                                  std::span<const ScheduleNode> nodes,
                                  std::span<const i32> plan);

struct PlanCandidate {
  PlanVec plan;
  f64 estimated_ms = 0.0;
};

/// The greedy widening chain: starting serial, repeatedly double the stripes
/// of the active data-parallel node with the largest current estimated time,
/// as long as that strictly helps and the per-task/CPU caps allow it.  The
/// returned list (serial first, widest last) is the complete search space of
/// rt::choose_plan — for any budget, choose_plan returns the first candidate
/// that fits, or the last when none does.
[[nodiscard]] std::vector<PlanCandidate> enumerate_plans(
    const plat::CostParams& params, std::span<const ScheduleNode> nodes,
    i32 max_stripes_per_task, i32 cpu_count);

/// "serial" or "RDG_FULLx4 ENHx2" (nodes with more than one stripe).
[[nodiscard]] std::string plan_label(std::span<const ScheduleNode> nodes,
                                     std::span<const i32> plan);

// --- Markov reachability ----------------------------------------------------

struct ReachabilityRow {
  /// Stationary probability estimate of the scenario under the trained
  /// chain (empirical visitation pushed through the transition matrix).
  f64 probability = 0.0;
  /// The scenario had observed outgoing transitions in training.
  bool observed = false;
  /// probability > epsilon or observed: audit findings keep full severity;
  /// otherwise they are downgraded to warnings.
  bool reachable = true;
};

/// Reachability of every scenario under a trained transition table.  The
/// start distribution is the empirical visitation (row observation counts);
/// observed rows use their trained probabilities, unobserved rows self-loop
/// (mass that was never seen leaving a scenario is not invented).  An
/// entirely untrained table marks every scenario reachable at uniform
/// probability — the conservative default.
[[nodiscard]] std::vector<ReachabilityRow> scenario_reachability(
    const graph::ScenarioTransitions& table, f64 epsilon = 1e-4,
    usize iterations = 200);

// --- plan-switch pricing ----------------------------------------------------

/// Static price of switching from one (scenario, plan) to another: stripe
/// re-layout (one dispatch per repartitioned node plus a barrier per stripe
/// added or removed) and cache refill (each repartitioned node's working
/// set, capped at one L2 slice, re-fetched over DRAM at base contention).
struct SwitchCost {
  i32 nodes_repartitioned = 0;
  /// Total change in thread fan-out: sum over nodes of |Δ effective stripes|.
  i32 fanout_delta = 0;
  f64 relayout_ms = 0.0;
  f64 cache_refill_ms = 0.0;

  [[nodiscard]] f64 total_ms() const { return relayout_ms + cache_refill_ms; }
};

/// `from_nodes`/`to_nodes` give per-node activity in the two scenarios.
/// Only nodes running on *both* sides with different stripe counts are
/// priced: a node (de)activating is the graph's normal scenario dynamics,
/// already reflected in the destination latency, not a re-layout.
/// `footprint_bytes` (optional, indexed like the nodes, 0 = unknown) sizes
/// the cache refill.
[[nodiscard]] SwitchCost price_plan_switch(
    const plat::CostParams& params, const plat::PlatformSpec& spec,
    std::span<const ScheduleNode> from_nodes,
    std::span<const ScheduleNode> to_nodes, std::span<const i32> from_plan,
    std::span<const i32> to_plan, std::span<const u64> footprint_bytes = {});

}  // namespace tc::analysis::sched
