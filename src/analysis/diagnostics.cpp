#include "analysis/diagnostics.hpp"

#include <set>
#include <sstream>
#include <string>

#include "analysis/rules.hpp"

namespace tc::analysis {

namespace {

/// Quote a CSV field (always quoted; embedded quotes doubled).
void csv_field(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string_view to_string(Subject s) {
  switch (s) {
    case Subject::Graph: return "graph";
    case Subject::Node: return "node";
    case Subject::Edge: return "edge";
    case Subject::Switch: return "switch";
    case Subject::Scenario: return "scenario";
    case Subject::Model: return "model";
    case Subject::Platform: return "platform";
    case Subject::Config: return "config";
  }
  return "?";
}

void Report::add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }

void Report::merge(Report other) {
  for (Diagnostic& d : other.diagnostics_) {
    diagnostics_.push_back(std::move(d));
  }
}

usize Report::count(Severity s) const {
  usize n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::vector<Diagnostic> Report::by_rule(std::string_view rule) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

bool Report::fired(std::string_view rule) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::string Report::to_text() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) {
    os << to_string(d.severity) << ' ' << d.rule;
    if (!d.location.empty()) os << " [" << d.location << ']';
    os << ": " << d.message;
    if (!d.hint.empty()) os << "  (fix: " << d.hint << ')';
    os << '\n';
  }
  os << diagnostics_.size() << " diagnostic(s): " << error_count()
     << " error(s), " << warning_count() << " warning(s), "
     << count(Severity::Info) << " info(s)\n";
  return os.str();
}

std::string Report::to_csv() const {
  std::ostringstream os;
  os << "rule,severity,subject,index,location,message,hint\n";
  for (const Diagnostic& d : diagnostics_) {
    csv_field(os, d.rule);
    os << ',';
    csv_field(os, to_string(d.severity));
    os << ',';
    csv_field(os, to_string(d.subject));
    os << ',' << d.index << ',';
    csv_field(os, d.location);
    os << ',';
    csv_field(os, d.message);
    os << ',';
    csv_field(os, d.hint);
    os << '\n';
  }
  return os.str();
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (usize i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i != 0) os << ',';
    os << "{\"rule\":";
    json_string(os, d.rule);
    os << ",\"severity\":";
    json_string(os, to_string(d.severity));
    os << ",\"subject\":";
    json_string(os, to_string(d.subject));
    os << ",\"index\":" << d.index << ",\"location\":";
    json_string(os, d.location);
    os << ",\"message\":";
    json_string(os, d.message);
    os << ",\"hint\":";
    json_string(os, d.hint);
    os << '}';
  }
  os << "],\"errors\":" << error_count() << ",\"warnings\":" << warning_count()
     << ",\"infos\":" << count(Severity::Info) << '}';
  return os.str();
}

std::string Report::to_sarif(std::string_view tool_name) const {
  auto sarif_level = [](Severity s) -> std::string_view {
    switch (s) {
      case Severity::Info: return "note";
      case Severity::Warn: return "warning";
      case Severity::Error: return "error";
    }
    return "none";
  };

  // Only the rules that actually fired go into the driver's rule table, in
  // first-seen order; results reference them by array index.
  std::vector<std::string> fired_rules;
  std::set<std::string, std::less<>> seen;
  for (const Diagnostic& d : diagnostics_) {
    if (seen.insert(d.rule).second) fired_rules.push_back(d.rule);
  }
  auto rule_index = [&](std::string_view id) -> usize {
    for (usize i = 0; i < fired_rules.size(); ++i) {
      if (fired_rules[i] == id) return i;
    }
    return 0;  // unreachable: every diagnostic's rule was inserted above
  };

  std::ostringstream os;
  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
     << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
     << "\"name\":";
  json_string(os, tool_name);
  os << ",\"informationUri\":"
     << "\"https://github.com/triplec/triplec\",\"rules\":[";
  for (usize i = 0; i < fired_rules.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"id\":";
    json_string(os, fired_rules[i]);
    const RuleInfo* info = find_rule(fired_rules[i]);
    os << ",\"shortDescription\":{\"text\":";
    json_string(os, info != nullptr ? info->title : std::string_view{});
    os << "}}";
  }
  os << "]}},\"results\":[";
  for (usize i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i != 0) os << ',';
    os << "{\"ruleId\":";
    json_string(os, d.rule);
    os << ",\"ruleIndex\":" << rule_index(d.rule) << ",\"level\":";
    json_string(os, sarif_level(d.severity));
    os << ",\"message\":{\"text\":";
    std::string text{d.message};
    if (!d.hint.empty()) {
      text += " (fix: ";
      text += d.hint;
      text += ')';
    }
    json_string(os, text);
    os << "},\"locations\":[{\"logicalLocations\":[{\"name\":";
    json_string(os, d.location.empty() ? std::string{to_string(d.subject)}
                                       : d.location);
    os << ",\"kind\":";
    json_string(os, to_string(d.subject));
    os << "}]}],\"properties\":{\"subjectIndex\":" << d.index << "}}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace tc::analysis
