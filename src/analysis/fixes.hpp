// triplec-lint --fix: in-memory repairs for the two trivially repairable
// diagnostics.
//
//   M001 row-not-stochastic — a transition row whose entries are all
//        non-negative and whose sum is merely *near* 1 (serialization
//        round-off, hand-edited tables) is renormalized to sum exactly 1.
//        Rows that are far off, negative, or all-zero are structural damage
//        and are left for retraining — repairing them would silently invent
//        probabilities.
//   G005 duplicate-switch — later switches re-declaring an existing name
//        are removed from the graph (scenario labeling keeps the first
//        declaration).  This reindexes the remaining switches, so it is a
//        *pre-run* repair: apply it before any frame executes and before
//        handing switch ids out.
//
// Both fixers report what they did (and what they refused to do) in a
// FixSummary; the CLI re-runs the analyzer afterwards so the exit code
// reflects the post-fix state.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/flowgraph.hpp"

namespace tc::analysis {

struct FixSummary {
  /// Repairs performed.
  i32 applied = 0;
  /// Candidate findings left untouched (not safely repairable).
  i32 skipped = 0;
  /// One human-readable line per decision.
  std::vector<std::string> notes;

  void merge(const FixSummary& other);
};

/// Renormalize the near-stochastic rows of an n x n row-major probability
/// matrix in place: a row qualifies when every entry is >= 0, at least one
/// is > 0 and |sum - 1| <= near_tolerance.  Exactly-stochastic rows (within
/// `epsilon`, the M001 tolerance) are untouched.
[[nodiscard]] FixSummary fix_stochastic_matrix(std::span<f64> matrix, usize n,
                                               f64 near_tolerance = 0.05,
                                               f64 epsilon = 1e-6);

/// Remove every switch that re-declares an earlier switch's name (keeps the
/// first declaration).  Pre-run repair only — remaining switch ids shift.
[[nodiscard]] FixSummary fix_duplicate_switches(graph::FlowGraph& g);

}  // namespace tc::analysis
