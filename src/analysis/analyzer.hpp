// triplec-lint analyzer: composes the validation passes over everything the
// runtime manager is about to trust — the flow graph, the graph predictor
// (per-task models + scenario table), the platform spec, and optional
// memory rows — *before* any frame executes.
//
// Policy knob:
//   Strict     — enforce() throws AnalysisError when the report has errors
//                (fail-fast startup);
//   Permissive — enforce() never throws; callers read the report and decide.
// Warnings never throw under either policy; they describe conditions the
// runtime handles (eviction traffic, unseen scenarios).
#pragma once

#include <span>
#include <stdexcept>

#include "analysis/passes.hpp"

namespace tc::analysis {

enum class Policy { Permissive, Strict };

[[nodiscard]] std::string_view to_string(Policy p);

/// Everything the analyzer may look at.  Null members skip their passes, so
/// the same entry point serves the manager (graph + predictor + platform at
/// startup) and the CLI (additionally memory rows captured from a run).
struct AnalysisInput {
  const graph::FlowGraph* graph = nullptr;
  const model::GraphPredictor* predictor = nullptr;
  const plat::PlatformSpec* platform = nullptr;
  std::span<const model::MemoryRow> memory_rows;
};

/// Thrown by enforce() under Policy::Strict; carries the full report text.
class AnalysisError : public std::runtime_error {
 public:
  explicit AnalysisError(const Report& report);
  [[nodiscard]] const Report& report() const { return report_; }

 private:
  Report report_;
};

class Analyzer {
 public:
  explicit Analyzer(PassOptions options = {}) : options_(options) {}

  [[nodiscard]] const PassOptions& options() const { return options_; }

  /// Run every applicable pass and return the combined report.
  [[nodiscard]] Report run(const AnalysisInput& input) const;

 private:
  PassOptions options_;
};

/// Apply the policy to a finished report: Strict + errors -> AnalysisError.
void enforce(const Report& report, Policy policy);

}  // namespace tc::analysis
