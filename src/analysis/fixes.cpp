#include "analysis/fixes.hpp"

#include <cmath>
#include <set>
#include <sstream>

namespace tc::analysis {

namespace {

std::string fmt(f64 v, i32 precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

void FixSummary::merge(const FixSummary& other) {
  applied += other.applied;
  skipped += other.skipped;
  notes.insert(notes.end(), other.notes.begin(), other.notes.end());
}

FixSummary fix_stochastic_matrix(std::span<f64> matrix, usize n,
                                 f64 near_tolerance, f64 epsilon) {
  FixSummary summary;
  if (matrix.size() != n * n) {
    summary.notes.push_back("matrix has " + std::to_string(matrix.size()) +
                            " entries, expected " + std::to_string(n * n) +
                            "; not repairable");
    ++summary.skipped;
    return summary;
  }
  for (usize i = 0; i < n; ++i) {
    f64 sum = 0.0;
    bool negative = false;
    bool positive = false;
    for (usize j = 0; j < n; ++j) {
      const f64 p = matrix[i * n + j];
      if (p < 0.0) negative = true;
      if (p > 0.0) positive = true;
      sum += p;
    }
    if (!negative && std::fabs(sum - 1.0) <= epsilon) continue;  // healthy
    if (negative || !positive || std::fabs(sum - 1.0) > near_tolerance) {
      ++summary.skipped;
      summary.notes.push_back(
          "row " + std::to_string(i) + ": " +
          (negative ? "negative probabilities"
                    : (!positive ? "all-zero row"
                                 : "sum " + fmt(sum, 6) + " too far from 1")) +
          "; refusing to repair (retrain the chain)");
      continue;
    }
    for (usize j = 0; j < n; ++j) matrix[i * n + j] /= sum;
    ++summary.applied;
    summary.notes.push_back("row " + std::to_string(i) +
                            ": renormalized from sum " + fmt(sum, 6));
  }
  return summary;
}

FixSummary fix_duplicate_switches(graph::FlowGraph& g) {
  FixSummary summary;
  std::set<std::string> seen;
  // Walk forward, erasing in place: a removal shifts later ids down, so the
  // index only advances past switches that were kept.
  i32 s = 0;
  while (s < narrow<i32>(g.switch_count())) {
    std::string name(g.switch_name(s));
    if (seen.insert(name).second) {
      ++s;
      continue;
    }
    g.remove_switch(s);
    ++summary.applied;
    summary.notes.push_back("switch " + std::to_string(s) + " (\"" + name +
                            "\"): duplicate declaration removed");
  }
  return summary;
}

}  // namespace tc::analysis
