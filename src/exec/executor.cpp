#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "common/stats.hpp"
#include "exec/frame_pipeline.hpp"
#include "obs/obs.hpp"
#include "runtime/audit_gate.hpp"
#include "tripleC/bandwidth_model.hpp"

namespace tc::exec {

plat::CostParams host_cost_params() {
  plat::CostParams p;
  // Stripe overheads of the host thread pool: a parallel_ranges dispatch and
  // its barrier cost tens of microseconds, far below the simulated
  // platform's task-control overhead.  Slightly higher imbalance than the
  // model default — the host scheduler is noisier than the simulated one.
  p.dispatch_ms = 0.02;
  p.stripe_sync_ms = 0.03;
  p.default_imbalance = 1.10;
  // The host measures real time; no synthetic interference on top.
  p.interference_sigma = 0.0;
  return p;
}

namespace {

/// Granularity sibling used as an EWMA fallback while a node's own filter
/// is unprimed (full-frame <-> ROI variants process the same kernel).
i32 sibling_node(i32 node) {
  switch (node) {
    case app::kRdgFull:
      return app::kRdgRoi;
    case app::kRdgRoi:
      return app::kRdgFull;
    case app::kMkxFull:
      return app::kMkxRoi;
    case app::kMkxRoi:
      return app::kMkxFull;
    default:
      return -1;
  }
}

}  // namespace

f64 PredictorSnapshot::mean_frame_ms() const {
  if (frame_markov.fitted()) return frame_markov.unconditional_mean();
  f64 total = 0.0;
  for (usize node = 0; node < node_serial_ms.size(); ++node) {
    if (node_primed[node]) total += node_serial_ms[node];
  }
  return total;
}

Executor::Executor(app::StentBoostConfig app_config, ExecutorConfig config)
    : config_(config),
      owned_pool_(config.shared_pool != nullptr
                      ? nullptr
                      : std::make_unique<plat::ThreadPool>(
                            config.worker_threads <= 0
                                ? 0
                                : static_cast<usize>(config.worker_threads))),
      pool_(config.shared_pool != nullptr ? config.shared_pool
                                          : owned_pool_.get()),
      app_(std::move(app_config), pool_) {
  node_ewma_.fill(model::EwmaFilter(config_.ewma_alpha));
  for (auto& per_node : node_aux_ewma_) {
    per_node.fill(model::EwmaFilter(config_.ewma_alpha));
  }
  // Graph topology for the ledger's I/O-bus attribution: a node with no
  // incoming edge ingests from the camera, one with no outgoing edge feeds
  // the display (Fig. 4 I/O bus).
  node_is_source_.fill(true);
  node_is_sink_.fill(true);
  for (const graph::Edge& e : app_.graph().edges()) {
    node_is_sink_[static_cast<usize>(e.from)] = false;
    node_is_source_[static_cast<usize>(e.to)] = false;
  }
  if (config_.validate_at_startup) {
    // Admission control: the graph and platform spec are linted before any
    // frame executes (Strict throws analysis::AnalysisError).
    analysis::AnalysisInput input;
    input.graph = &app_.graph();
    input.platform = &app_.config().platform;
    validation_report_ = analysis::Analyzer{}.run(input);
    analysis::enforce(validation_report_, config_.validation_policy);
  }
  if (config_.audit_at_startup) {
    // Schedulability proof before the first frame: train a throwaway
    // predictor on a simulated copy of the application (the executor's own
    // app keeps its pristine inter-frame state), capture Table-1 memory
    // rows, then audit all scenarios × the runtime plan search space.
    app::StentBoostApp train_app(app_.config());
    model::GraphPredictor predictor(app::kNodeCount, app::kSwitchCount);
    std::vector<graph::FrameRecord> records =
        train_app.run(std::max(1, config_.audit_training_frames));
    std::vector<std::vector<graph::FrameRecord>> seqs = {records};
    predictor.train(seqs);
    std::vector<model::MemoryRow> rows = rt::capture_memory_rows(
        records, app_.config().cost.resolution_scale);
    analysis::audit::AuditResult audit =
        rt::audit_app(train_app, predictor, rows, config_.audit_options);
    audit_report_ = std::move(audit.report);
    analysis::enforce(audit_report_, config_.audit_policy);
  }
  if (config_.deadline_ms > 0.0) {
    deadline_ms_ = config_.deadline_ms;
    deadline_set_ = true;
  }
  if (config_.diagnostics.enabled) {
    obs::MetricsRegistry* metrics =
        obs::enabled() ? &obs::global().metrics : nullptr;
    drift_ = std::make_unique<obs::DriftMonitor>(config_.diagnostics.drift,
                                                 metrics);
    postmortem_ =
        std::make_unique<obs::PostmortemWriter>(config_.diagnostics.postmortem);
    // The SLO monitor waits for the deadline (thresholds derive from it);
    // see run_diagnostics().
  }
  if (config_.ledger.enabled) {
    obs::LedgerConfig lc = config_.ledger;
    if (!lc.node_name) {
      lc.node_name = [](i32 node) {
        return std::string(app::node_name(node));
      };
    }
    ledger_ = std::make_unique<obs::PredictionLedger>(
        std::move(lc), obs::enabled() ? &obs::global().metrics : nullptr);
  }
  if (config_.telemetry.enabled) {
    status_agg_ = std::make_unique<obs::StatusAggregator>();
    status_agg_->set_streams_provider([this] { return status_json(); });
    if (ledger_ != nullptr) {
      status_agg_->set_ledger_provider(
          [this] { return ledger_->rows(); },
          [](i32 node) { return std::string(app::node_name(node)); });
    }
    telemetry_ = std::make_unique<obs::TelemetryServer>(config_.telemetry,
                                                        status_agg_.get());
    telemetry_->start();
    // The validation/audit startup gates above have passed: ready.
    status_agg_->set_ready(true);
  }
}

Executor::StatusSnapshot Executor::status_snapshot() const {
  common::MutexLock lock(status_mutex_);
  return status_;
}

std::string Executor::status_json() const {
  const StatusSnapshot s = status_snapshot();
  char deadline[32];
  std::snprintf(deadline, sizeof(deadline), "%.6g", s.deadline_ms);
  char mean[32];
  std::snprintf(mean, sizeof(mean), "%.6g", s.stats.mean_measured_ms);
  std::string out = "{\"ready\":true,\"streams\":[{\"id\":0";
  out += ",\"name\":\"executor\",\"state\":\"active\"";
  out += ",\"deadline_ms\":" + std::string(deadline);
  out += ",\"frames_done\":" + std::to_string(s.stats.frames);
  out += ",\"managed_frames\":" + std::to_string(s.stats.managed_frames);
  out += ",\"deadline_misses\":" + std::to_string(s.stats.deadline_misses);
  out += ",\"degraded_frames\":" + std::to_string(s.stats.degraded_frames);
  out += ",\"repartitions\":" + std::to_string(s.stats.repartitions);
  out += ",\"mean_ms\":" + std::string(mean);
  out += "}]}";
  return out;
}

i32 Executor::effective_threads() const {
  const i32 pool = narrow<i32>(pool_->thread_count());
  return pool_share_ > 0 ? std::min(pool_share_, pool) : pool;
}

f64 Executor::node_estimate(i32 node) const {
  const auto& filter = node_ewma_[static_cast<usize>(node)];
  if (filter.primed()) return filter.value();
  const i32 sib = sibling_node(node);
  if (sib >= 0 && node_ewma_[static_cast<usize>(sib)].primed()) {
    return node_ewma_[static_cast<usize>(sib)].value();
  }
  return 0.0;
}

std::vector<rt::NodeForecast> Executor::host_forecast() const {
  std::vector<rt::NodeForecast> fc(app::kNodeCount);
  // RDG and ROI switch values are inter-frame state known before the frame
  // starts; the registration outcome is uncertain, so ENH/ZOOM time is
  // always reserved (over-reserving is the safe direction for a deadline).
  const bool rdg = app_.rdg_active();
  const bool roi = app_.roi_valid();
  auto set = [&](i32 node, bool active) {
    auto& f = fc[static_cast<usize>(node)];
    f.active = active;
    f.data_parallel = app::node_data_parallel(node);
    if (active) f.serial_ms = node_estimate(node);
  };
  set(app::kRdgFull, rdg && !roi);
  set(app::kRdgRoi, rdg && roi);
  set(app::kMkxFull, !roi);
  set(app::kMkxRoi, roi);
  set(app::kCplsSel, true);
  set(app::kReg, true);
  set(app::kRoiEst, true);
  set(app::kGwExt, rdg);
  set(app::kEnh, true);
  set(app::kZoom, true);
  return fc;
}

f64 Executor::feed_back(const graph::FrameRecord& record,
                        const app::StripePlan& plan) {
  f64 serial_total = 0.0;
  for (const graph::TaskExecution& exec : record.tasks) {
    if (!exec.executed) continue;
    // The filters model *serial* execution: normalize striped measurements
    // back through the inverse of the stripe cost model.
    f64 serial_ms = exec.host_ms;
    const i32 stripes = plan[static_cast<usize>(exec.node)];
    if (app::node_data_parallel(exec.node) && stripes > 1) {
      serial_ms = plat::serial_ms_from_striped(config_.host_cost, exec.host_ms,
                                             stripes);
    }
    node_ewma_[static_cast<usize>(exec.node)].update(serial_ms);
    serial_total += serial_ms;
  }
  if (frame_markov_.fitted()) {
    // On-line model training (the paper's profiling feedback).
    frame_markov_.observe_transition(last_serial_total_ms_, serial_total);
  }
  last_serial_total_ms_ = serial_total;
  return serial_total;
}

void Executor::apply_quality(i32 frame, i32 ladder_index) {
  const auto ladder = rt::quality_ladder();
  const i32 max_index = narrow<i32>(ladder.size()) - 1;
  const i32 previous = quality_index_;
  quality_index_ = std::clamp(ladder_index, 0, max_index);
  const rt::QualityLevel& level = ladder[static_cast<usize>(quality_index_)];
  app_.set_quality(level.extra_mkx_decimation, level.skip_guidewire,
                   level.zoom_divisor);
  if (quality_index_ != previous && obs::enabled()) {
    obs::global().flight.record(obs::FrEventType::QosTransition, frame, -1,
                                static_cast<f64>(quality_index_),
                                static_cast<f64>(previous));
  }
}

f64 Executor::plan_frame(i32 t, i32 frames_in_flight, ExecutedFrame& result) {
  result.frame = t;
  result.managed = deadline_set_;
  result.deadline_ms = deadline_ms_;

  rt::PlanChoice choice;
  choice.plan = app::serial_plan();
  app::StripePlan plan = app::serial_plan();
  f64 ewma_total = 0.0;  // pre-Markov serial-equivalent forecast (drift input)
  std::vector<rt::NodeForecast> fc;  // Markov-scaled (ledger prediction input)
  if (result.managed && config_.adapt) {
    fc = host_forecast();
    if (ledger_ != nullptr && config_.ledger_bias_correction) bias_correct(fc);
    // Markov correction: scale the long-term EWMA forecast by the chain's
    // conditional expectation of the next frame total (short-term state).
    for (const rt::NodeForecast& f : fc) {
      if (f.active) ewma_total += f.serial_ms;
    }
    if (frame_markov_.fitted() && ewma_total > 1e-9) {
      const f64 markov_total =
          frame_markov_.predict_next(last_serial_total_ms_);
      const f64 scale = std::clamp(markov_total / ewma_total, 0.5, 2.0);
      for (rt::NodeForecast& f : fc) f.serial_ms *= scale;
    }
    if (config_.policy == DeadlinePolicy::Degrade && quality_index_ > 0) {
      const auto ladder = rt::quality_ladder();
      // Recovery hysteresis: lift one level only after qos_recover_after
      // consecutive frames whose forecast fits at the better level.
      std::vector<rt::NodeForecast> better_fc = rt::degrade_forecast(
          fc, ladder[static_cast<usize>(quality_index_ - 1)]);
      const rt::PlanChoice better =
          rt::choose_plan(config_.host_cost, better_fc, deadline_ms_,
                          config_.max_stripes_per_task,
                          effective_threads());
      recover_streak_ = better.fits_budget ? recover_streak_ + 1 : 0;
      if (recover_streak_ >= config_.qos_recover_after) {
        apply_quality(t, quality_index_ - 1);
        recover_streak_ = 0;
      }
    }
    auto plan_at_current_quality = [&]() {
      std::vector<rt::NodeForecast> eff = fc;
      if (quality_index_ > 0) {
        eff = rt::degrade_forecast(
            fc, rt::quality_ladder()[static_cast<usize>(quality_index_)]);
      }
      return rt::choose_plan(config_.host_cost, eff, deadline_ms_,
                             config_.max_stripes_per_task,
                             effective_threads());
    };
    choice = plan_at_current_quality();
    if (config_.policy == DeadlinePolicy::Degrade) {
      const i32 max_index = narrow<i32>(rt::quality_ladder().size()) - 1;
      while (!choice.fits_budget && quality_index_ < max_index) {
        apply_quality(t, quality_index_ + 1);
        recover_streak_ = 0;
        choice = plan_at_current_quality();
      }
    }
    plan = choice.plan;
    result.predicted_host_ms = choice.estimated_ms;
    if (obs::enabled()) {
      obs::FlightRecorder& flight = obs::global().flight;
      i32 total_stripes = 0;
      for (i32 s : plan) total_stripes += s;
      flight.record(obs::FrEventType::PlanChoice, t, -1,
                    static_cast<f64>(total_stripes), choice.estimated_ms);
      if (frame_markov_.fitted()) {
        flight.record(
            obs::FrEventType::MarkovState, t, -1,
            static_cast<f64>(
                frame_markov_.quantizer().state_of(last_serial_total_ms_)),
            frame_markov_.predict_next(last_serial_total_ms_));
      }
    }
  }
  result.plan = plan;
  result.quality_level = quality_index_;
  app_.set_stripe_plan(plan);
  // Host resource budget: the chosen plan's widest fan-out, capped by this
  // frame's fair share of the pool (pipelining divides the pool among the
  // frames in flight).
  choice.plan = plan;
  app_.set_instance_budget(
      rt::budget_for_plan(choice, effective_threads(), frames_in_flight));
  if (obs::enabled()) {
    obs::global().flight.record(obs::FrEventType::FrameStart, t, -1,
                                result.predicted_host_ms);
  }
  if (ledger_ != nullptr) ledger_predict(t, fc, result);
  return ewma_total;
}

void Executor::ledger_predict(i32 t, std::span<const rt::NodeForecast> fc,
                              const ExecutedFrame& result) {
  std::vector<obs::LedgerSample> preds;
  for (usize node = 0; node < fc.size(); ++node) {
    const rt::NodeForecast& f = fc[node];
    if (!f.active || f.serial_ms <= 0.0) continue;
    obs::LedgerSample s;
    s.node = narrow<i32>(node);
    // CPU: the Markov-scaled serial forecast, striped through the chosen
    // plan — the time this node is actually expected to take.
    f64 cpu_ms = f.serial_ms;
    const i32 stripes = result.plan[node];
    if (f.data_parallel && stripes > 1) {
      cpu_ms = plat::striped_ms_from_serial(config_.host_cost, cpu_ms, stripes);
    }
    s.mask = obs::ledger_bit(obs::LedgerResource::CpuMs);
    s.values[static_cast<usize>(obs::LedgerResource::CpuMs)] = cpu_ms;
    // Memory and bus traffic: the auxiliary filters, once primed from
    // measured frames (predictions appear from the node's second frame on).
    for (i32 r = 1; r < obs::kLedgerResourceCount; ++r) {
      const model::EwmaFilter& aux =
          node_aux_ewma_[node][static_cast<usize>(r - 1)];
      if (!aux.primed()) continue;
      s.mask |= obs::ledger_bit(static_cast<obs::LedgerResource>(r));
      s.values[static_cast<usize>(r)] = aux.value();
    }
    preds.push_back(s);
  }
  ledger_->predict_frame(t, next_ticket_++,
                         deadline_set_ ? deadline_ms_ : 0.0, result.plan,
                         preds);
}

void Executor::ledger_settle(const ExecutedFrame& result,
                             const graph::FrameRecord& record) {
  std::vector<obs::LedgerSample> actuals;
  const u64 l2_slice = app_.config().platform.l2_bytes;
  for (const graph::TaskExecution& exec : record.tasks) {
    if (!exec.executed) continue;
    const auto node = static_cast<usize>(exec.node);
    const model::NodeBusTraffic bus = model::attribute_node_buses(
        exec.work, node_is_source_[node], node_is_sink_[node], l2_slice);
    obs::LedgerSample s;
    s.node = exec.node;
    s.mask = obs::kLedgerAllResources;
    s.values[static_cast<usize>(obs::LedgerResource::CpuMs)] = exec.host_ms;
    s.values[static_cast<usize>(obs::LedgerResource::MemBytes)] =
        static_cast<f64>(exec.work.footprint_bytes());
    s.values[static_cast<usize>(obs::LedgerResource::CacheBusMb)] =
        bus.cache_mb;
    s.values[static_cast<usize>(obs::LedgerResource::MemoryBusMb)] =
        bus.memory_mb;
    s.values[static_cast<usize>(obs::LedgerResource::IoBusMb)] = bus.io_mb;
    actuals.push_back(s);
    for (i32 r = 1; r < obs::kLedgerResourceCount; ++r) {
      node_aux_ewma_[node][static_cast<usize>(r - 1)].update(
          s.values[static_cast<usize>(r)]);
    }
  }
  const std::vector<obs::LedgerRow> rows = ledger_->settle_frame(
      result.frame, record.scenario, result.measured_host_ms, actuals);
  // Per-node drift streams: the settled CPU rows feed one DriftMonitor
  // stream per node.  Alerts are counted and flight-recorded but never
  // force a retrain — a single node drifting is an attribution signal, not
  // evidence against the frame-level predictor.
  if (drift_ == nullptr) return;
  for (const obs::LedgerRow& row : rows) {
    if (!row.has_pred(obs::LedgerResource::CpuMs) ||
        !row.has_meas(obs::LedgerResource::CpuMs)) {
      continue;
    }
    const std::string stream =
        "node:" + std::string(app::node_name(row.node));
    const auto cpu = static_cast<usize>(obs::LedgerResource::CpuMs);
    if (auto a =
            drift_->observe(stream, row.frame, row.pred[cpu], row.meas[cpu])) {
      ++stats_.drift_alerts;
      if (obs::enabled()) {
        obs::global().flight.record(obs::FrEventType::DriftAlert, a->frame,
                                    drift_->stream_index(a->stream),
                                    a->statistic, a->threshold);
      }
    }
  }
}

ExecutedFrame Executor::step(i32 t) {
  ExecutedFrame result;
  const f64 ewma_total = plan_frame(t, /*frames_in_flight=*/1, result);

  std::optional<obs::ScopedSpan> span;
  if (obs::enabled()) {
    span.emplace(&obs::global().tracer, "frame " + std::to_string(t),
                 "exec-frame");
    span->arg("plan", rt::plan_to_string(result.plan));
    if (result.managed) {
      span->arg("predicted_ms", std::to_string(result.predicted_host_ms));
    }
  }
  graph::FrameRecord record = app_.process_frame(t);
  // The frame's latency is the graph execution itself — the sum of the
  // measured task walls.  Rendering the synthetic input (process_frame's
  // other cost) stands in for the camera and is not pipeline work, so it
  // must not contaminate the deadline or the predictor feedback.
  for (const graph::TaskExecution& exec : record.tasks) {
    if (exec.executed) result.measured_host_ms += exec.host_ms;
  }
  // Fault injection: a co-scheduled interferer steals real wall-clock time
  // from the frame.  The tasks' own measurements are untouched (the
  // predictors did not cause the spike and must not be trained on it), but
  // the frame's latency — what the deadline is judged against — inflates.
  const LoadSpike& spike = config_.load_spike;
  if (spike.start_frame >= 0 && spike.busy_ms > 0.0 &&
      t >= spike.start_frame && t < spike.start_frame + spike.frames) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<f64, std::milli>(spike.busy_ms);
    while (std::chrono::steady_clock::now() < until) {
    }
    result.measured_host_ms += spike.busy_ms;
  }
  result.scenario = record.scenario;
  if (span.has_value()) {
    span->arg("measured_ms", std::to_string(result.measured_host_ms));
    span->arg("scenario", std::to_string(record.scenario));
    span.reset();
  }

  settle_frame(result, record, ewma_total);
  return result;
}

void Executor::settle_frame(ExecutedFrame& result,
                            const graph::FrameRecord& record, f64 ewma_total) {
  result.scenario = record.scenario;

  // --- QoS: deadline accounting -------------------------------------------
  if (deadline_set_ && result.measured_host_ms > deadline_ms_) {
    result.deadline_miss = true;
    if (config_.policy == DeadlinePolicy::Drop) result.dropped = true;
  }

  if (obs::enabled()) {
    obs::FlightRecorder& flight = obs::global().flight;
    // Per-node predicted-vs-measured, while node_estimate() still returns
    // the pre-frame filter state (feed_back below updates it).
    for (const graph::TaskExecution& exec : record.tasks) {
      if (!exec.executed) continue;
      flight.record(obs::FrEventType::NodeTiming, result.frame, exec.node,
                    node_estimate(exec.node), exec.host_ms);
    }
    flight.record(obs::FrEventType::FrameEnd, result.frame, -1,
                  result.measured_host_ms, deadline_ms_);
    if (result.deadline_miss) {
      flight.record(obs::FrEventType::DeadlineMiss, result.frame, -1,
                    result.measured_host_ms, deadline_ms_);
    }
  }

  if (ledger_ != nullptr) ledger_settle(result, record);

  // --- feedback + warm-up bookkeeping -------------------------------------
  const f64 serial_total = feed_back(record, result.plan);
  if (!frame_markov_.fitted()) {
    warmup_serial_totals_.push_back(serial_total);
    if (narrow<i32>(warmup_serial_totals_.size()) >= config_.warmup_frames) {
      frame_markov_.fit(warmup_serial_totals_);
    }
  }
  if (!deadline_set_) {
    warmup_measured_ms_.push_back(result.measured_host_ms);
    if (narrow<i32>(warmup_measured_ms_.size()) >= config_.warmup_frames) {
      deadline_ms_ = mean(warmup_measured_ms_) * config_.deadline_headroom;
      deadline_set_ = true;
    }
  }

  result.repartitioned = result.managed && result.plan != prev_plan_;
  prev_plan_ = result.plan;

  ++stats_.frames;
  measured_sum_ms_ += result.measured_host_ms;
  stats_.mean_measured_ms = measured_sum_ms_ / stats_.frames;
  if (result.managed) ++stats_.managed_frames;
  if (result.deadline_miss) ++stats_.deadline_misses;
  if (result.dropped) ++stats_.dropped_frames;
  if (result.quality_level > 0) ++stats_.degraded_frames;
  if (result.repartitioned) ++stats_.repartitions;

  if (obs::enabled()) record_frame_observability(result);
  last_frame_ = result;
  if (config_.diagnostics.enabled) {
    run_diagnostics(result, ewma_total, serial_total);
  }

  {
    // Refresh the off-thread status mirror (status_snapshot()); frame
    // counters and the deadline are otherwise stepping-thread-only state.
    common::MutexLock lock(status_mutex_);
    status_.stats = stats_;
    status_.deadline_ms = deadline_set_ ? deadline_ms_ : 0.0;
  }
}

void Executor::record_frame_observability(const ExecutedFrame& f) {
  obs::ObsContext& ctx = obs::global();
  obs::MetricsRegistry& m = ctx.metrics;

  m.counter("tripleC_exec_frames_total", "Frames executed on the host").add();
  if (deadline_set_) {
    m.gauge("tripleC_exec_deadline_ms", "Active per-frame host deadline")
        .set(deadline_ms_);
  }
  // Register the families unconditionally so each exists from frame one.
  obs::Counter& misses =
      m.counter("tripleC_exec_deadline_miss_total",
                "Frames whose measured host latency exceeded the deadline");
  if (f.deadline_miss) misses.add();
  obs::Counter& drops = m.counter(
      "tripleC_exec_dropped_total",
      "Late frames removed from the display stream (Drop policy)");
  if (f.dropped) drops.add();
  obs::Counter& reparts =
      m.counter("tripleC_exec_repartitions_total",
                "Managed frames whose stripe plan changed (live repartition)");
  if (f.repartitioned) reparts.add();
  m.gauge("tripleC_exec_quality_level",
          "QoS quality level applied by the executor")
      .set(static_cast<f64>(f.quality_level));

  const std::vector<f64> bounds = obs::latency_buckets_ms();
  m.histogram("tripleC_exec_frame_host_ms",
              "Measured host latency per executed frame", bounds)
      .record(f.measured_host_ms);
  if (f.managed) {
    m.histogram("tripleC_exec_frame_predicted_ms",
                "Predicted host latency of the chosen plan", bounds)
        .record(f.predicted_host_ms);
  }

  if (f.repartitioned) {
    obs::SpanTracer& tracer = ctx.tracer;
    tracer.instant("exec_repartition", "plan", obs::kHostPid, 0,
                   tracer.host_now_us(),
                   {{"frame", std::to_string(f.frame)},
                    {"plan", rt::plan_to_string(f.plan)},
                    {"predicted_ms", std::to_string(f.predicted_host_ms)}});
  }
}

void Executor::run_diagnostics(const ExecutedFrame& f, f64 ewma_total,
                               f64 serial_total) {
  // The SLO monitor is born the moment the deadline is known (its
  // thresholds are deadline-relative).
  if (slo_ == nullptr && deadline_set_) {
    const DiagnosticsConfig& d = config_.diagnostics;
    std::vector<obs::SloSpec> specs;
    obs::SloSpec miss;
    miss.name = "deadline_miss_rate";
    miss.kind = obs::SloKind::DeadlineMissRate;
    miss.threshold = d.slo_miss_rate;
    obs::SloSpec p99;
    p99.name = "p99_latency_ms";
    p99.kind = obs::SloKind::P99LatencyMs;
    p99.threshold = deadline_ms_ * d.slo_p99_factor;
    obs::SloSpec jitter;
    jitter.name = "jitter_p99_minus_p50_ms";
    jitter.kind = obs::SloKind::JitterP99MinusP50Ms;
    jitter.threshold = deadline_ms_ * d.slo_jitter_factor;
    for (obs::SloSpec* s : {&miss, &p99, &jitter}) {
      s->window = d.slo_window;
      s->min_frames = d.slo_min_frames;
      s->cooldown_frames = d.slo_cooldown_frames;
      specs.push_back(*s);
    }
    slo_ = std::make_unique<obs::SloMonitor>(
        std::move(specs), obs::enabled() ? &obs::global().metrics : nullptr);
  }

  // --- drift: score both predictor variants --------------------------------
  std::vector<obs::DriftAlert> alerts;
  if (f.managed && config_.adapt) {
    // EWMA-only vs Markov-corrected accuracy, both in the units the
    // respective predictor emits: serial-equivalent for the raw EWMA sum,
    // plan-estimated host latency for the corrected forecast.
    if (auto a = drift_->observe("ewma_only", f.frame, ewma_total,
                                 serial_total)) {
      alerts.push_back(*a);
    }
    if (auto a = drift_->observe("markov_corrected", f.frame,
                                 f.predicted_host_ms, f.measured_host_ms)) {
      alerts.push_back(*a);
    }
  }
  for (const obs::DriftAlert& a : alerts) {
    ++stats_.drift_alerts;
    if (obs::enabled()) {
      obs::global().flight.record(obs::FrEventType::DriftAlert, a.frame,
                                  drift_->stream_index(a.stream), a.statistic,
                                  a.threshold);
    }
    if (config_.diagnostics.retrain_on_drift) force_retrain(a.frame);
  }

  // --- SLOs ---------------------------------------------------------------
  std::vector<obs::SloBreach> breaches;
  if (slo_ != nullptr && f.managed) {
    breaches =
        slo_->observe_frame(f.frame, f.measured_host_ms, f.deadline_miss);
    for (usize i = 0; i < breaches.size(); ++i) {
      ++stats_.slo_breaches;
      if (obs::enabled()) {
        obs::global().flight.record(obs::FrEventType::SloBreach,
                                    breaches[i].frame, narrow<i32>(i),
                                    breaches[i].value, breaches[i].threshold);
      }
    }
  }

  // --- post-mortem triggers -----------------------------------------------
  std::string reason;
  const obs::SloBreach* trigger_breach = nullptr;
  if (f.deadline_miss) {
    reason = "deadline_miss";
    if (!breaches.empty()) trigger_breach = &breaches.front();
  } else if (!breaches.empty()) {
    reason = "slo_breach:" + breaches.front().slo;
    trigger_breach = &breaches.front();
  } else if (!alerts.empty()) {
    reason = "drift:" + alerts.front().stream;
  }
  if (!reason.empty()) {
    const std::string path =
        postmortem_->write(postmortem_context(f, reason, trigger_breach),
                           obs::global().flight, obs::global().metrics);
    if (!path.empty()) ++stats_.postmortems;
  }
}

obs::PredictorStateSummary Executor::predictor_summary() const {
  obs::PredictorStateSummary s;
  for (i32 node = 0; node < app::kNodeCount; ++node) {
    const auto& f = node_ewma_[static_cast<usize>(node)];
    s.nodes.push_back({obs::global().node_name(node), f.value(), f.primed()});
  }
  s.markov_fitted = frame_markov_.fitted();
  s.markov_states = frame_markov_.states();
  s.last_serial_total_ms = last_serial_total_ms_;
  s.markov_predicted_next_ms =
      frame_markov_.fitted() ? frame_markov_.predict_next(last_serial_total_ms_)
                             : 0.0;
  if (drift_ != nullptr) {
    for (const char* stream : {"ewma_only", "markov_corrected"}) {
      s.drift_errors_pct.emplace_back(stream,
                                      drift_->smoothed_error_pct(stream));
    }
  }
  return s;
}

obs::PostmortemContext Executor::postmortem_context(
    const ExecutedFrame& f, const std::string& reason,
    const obs::SloBreach* breach) const {
  obs::PostmortemContext ctx;
  ctx.reason = reason;
  ctx.frame = f.frame;
  ctx.deadline_ms = deadline_ms_;
  ctx.predicted_ms = f.predicted_host_ms;
  ctx.measured_ms = f.measured_host_ms;
  ctx.plan = rt::plan_to_string(f.plan);
  ctx.quality_level = f.quality_level;
  ctx.scenario = f.scenario;
  ctx.predictors = predictor_summary();
  if (ledger_ != nullptr) {
    ctx.ledger_rows = ledger_->recent(config_.postmortem_ledger_rows);
  }
  ctx.extra.emplace_back("policy", config_.policy == DeadlinePolicy::Drop
                                       ? "drop"
                                       : "degrade");
  ctx.extra.emplace_back("workers", std::to_string(pool_->thread_count()));
  // SLO-breach context: which objective fired, at what value, against which
  // threshold — plus the monitor's window aggregates, so a bundle is
  // diagnosable without replaying the run.
  if (breach != nullptr) {
    ctx.extra.emplace_back("slo_name", breach->slo);
    ctx.extra.emplace_back("slo_kind", obs::to_string(breach->kind));
    ctx.extra.emplace_back("slo_value", std::to_string(breach->value));
    ctx.extra.emplace_back("slo_threshold", std::to_string(breach->threshold));
  }
  if (slo_ != nullptr) {
    const obs::SloMonitor::WindowStats w = slo_->window_snapshot();
    ctx.extra.emplace_back("slo_window_frames", std::to_string(w.frames));
    ctx.extra.emplace_back("slo_window_miss_rate",
                           std::to_string(w.miss_rate));
    ctx.extra.emplace_back("slo_window_p50_ms", std::to_string(w.p50));
    ctx.extra.emplace_back("slo_window_p99_ms", std::to_string(w.p99));
  }
  return ctx;
}

std::string Executor::write_postmortem(const std::string& reason) {
  if (postmortem_ == nullptr) return "";
  const std::string path =
      postmortem_->write(postmortem_context(last_frame_, reason),
                         obs::global().flight, obs::global().metrics,
                         /*force=*/true);
  if (!path.empty()) ++stats_.postmortems;
  return path;
}

void Executor::force_retrain(i32 frame) {
  frame_markov_ = model::MarkovChain();
  warmup_serial_totals_.clear();
  ++stats_.retrains;
  if (obs::enabled()) {
    obs::global().flight.record(obs::FrEventType::Retrain, frame, -1,
                                static_cast<f64>(frame));
  }
}

void Executor::bias_correct(std::vector<rt::NodeForecast>& fc) const {
  for (usize node = 0; node < fc.size(); ++node) {
    rt::NodeForecast& f = fc[node];
    if (!f.active || f.serial_ms <= 0.0) continue;
    const obs::CalibrationWindow::Stats s = ledger_->node_calibration(
        narrow<i32>(node), obs::LedgerResource::CpuMs);
    if (s.samples < config_.bias_min_samples) continue;
    // Positive bias means the recent predictions over-shot the measurements,
    // so dividing by (1 + bias) recentres the forecast.  The clamp keeps one
    // pathological window from swinging the plan; a near-zero denominator
    // (window full of pred≈0 rows) is skipped outright.
    const f64 denom = 1.0 + s.bias_pct / 100.0;
    if (denom < 0.05) continue;
    f.serial_ms *= std::clamp(1.0 / denom, 1.0 - config_.bias_correction_clamp,
                              1.0 + config_.bias_correction_clamp);
  }
}

PredictorSnapshot Executor::snapshot_predictors() const {
  PredictorSnapshot snap;
  for (usize node = 0; node < app::kNodeCount; ++node) {
    const model::EwmaFilter& f = node_ewma_[node];
    snap.node_primed[node] = f.primed();
    snap.node_serial_ms[node] = f.value();
    // Bus demand estimate: summed auxiliary filters (cache/memory/io MB per
    // frame).  Conservative — sums every node that ever ran, not just the
    // nodes active in the current scenario.
    for (i32 r = 2; r < obs::kLedgerResourceCount; ++r) {
      const model::EwmaFilter& aux = node_aux_ewma_[node][static_cast<usize>(r - 1)];
      if (aux.primed()) snap.bus_mb_per_frame[static_cast<usize>(r - 2)] += aux.value();
    }
  }
  snap.frame_markov = frame_markov_;
  snap.last_serial_total_ms = last_serial_total_ms_;
  snap.trained_frames = static_cast<u64>(std::max(0, stats_.frames));
  return snap;
}

void Executor::warm_start(const PredictorSnapshot& snap) {
  if (!snap.trained()) return;
  for (usize node = 0; node < app::kNodeCount; ++node) {
    if (!snap.node_primed[node]) continue;
    // A fresh filter primed with the snapshot level: the stream then adapts
    // from the donor's estimate instead of from zero.
    model::EwmaFilter f(config_.ewma_alpha);
    f.update(snap.node_serial_ms[node]);
    node_ewma_[node] = f;
  }
  if (snap.frame_markov.fitted()) {
    frame_markov_ = snap.frame_markov;
    last_serial_total_ms_ = snap.last_serial_total_ms;
    // The chain is already fitted — settle_frame's warm-up fitting is
    // skipped, so the training series must stay empty.
    warmup_serial_totals_.clear();
  }
}

std::vector<ExecutedFrame> Executor::run(i32 n) {
  std::vector<ExecutedFrame> frames;
  frames.reserve(static_cast<usize>(n));
  for (i32 t = 0; t < n; ++t) frames.push_back(step(t));
  return frames;
}

std::vector<ExecutedFrame> Executor::run_pipelined(i32 n,
                                                   i32 frames_in_flight) {
  struct Pending {
    ExecutedFrame result;
    f64 ewma_total = 0.0;
  };
  // One mutex serializes plan_frame (front-stage thread) against
  // settle_frame (back-stage thread): both touch the predictor state.
  // Admissions and retires are each in frame order, so the pending frames
  // form a FIFO.
  common::Mutex mutex;
  std::deque<Pending> pending;
  std::vector<ExecutedFrame> frames(static_cast<usize>(std::max(0, n)));

  FramePipelineConfig pc;
  pc.frames_in_flight = frames_in_flight;
  pc.deadline_ms = deadline_ms_;
  pc.collect_records = false;
  pc.on_admit = [&](i32 t) {
    common::MutexLock lock(mutex);
    Pending p;
    p.ewma_total = plan_frame(t, frames_in_flight, p.result);
    pending.push_back(std::move(p));
  };
  pc.on_retire = [&](const graph::FrameRecord& record) {
    common::MutexLock lock(mutex);
    Pending p = std::move(pending.front());
    pending.pop_front();
    for (const graph::TaskExecution& exec : record.tasks) {
      if (exec.executed) p.result.measured_host_ms += exec.host_ms;
    }
    settle_frame(p.result, record, p.ewma_total);
    frames[static_cast<usize>(record.frame)] = p.result;
  };

  FramePipeline pipeline(app_, std::move(pc));
  for (i32 t = 0; t < n; ++t) pipeline.submit(t);
  pipeline.drain();
  return frames;
}

}  // namespace tc::exec
