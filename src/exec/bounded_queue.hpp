// Bounded, closeable inter-stage queue — the backpressure primitive of the
// concurrent executor (src/exec).
//
// Stages of a functional partition communicate through these queues: a full
// queue blocks the producer (bounded memory, the paper's double-buffered
// inter-task channels use capacity 2) instead of letting frames pile up
// when a downstream stage is the bottleneck.  close() initiates shutdown:
// producers are refused, consumers drain the remaining items and then see
// std::nullopt, which propagates the end-of-stream signal stage by stage.
//
// All state is guarded by an annotated common::Mutex, so clang's
// -Wthread-safety statically proves the locking discipline.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/sync.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"

namespace tc::exec {

template <class T>
class BoundedQueue {
 public:
  /// `capacity` >= 1; 2 gives the classic double-buffered channel.
  explicit BoundedQueue(usize capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Tag this queue as flight-recorder channel `id` (>= 0): every push/pop
  /// then emits a QueuePush/QueuePop event carrying the post-operation
  /// depth.  Call before producers/consumers start (plain write).
  void set_flight_channel(i32 id) { flight_channel_ = id; }
  [[nodiscard]] i32 flight_channel() const { return flight_channel_; }

  /// Blocking push.  Waits while the queue is full (backpressure); returns
  /// false when the queue was closed before the item could be enqueued.
  bool push(T item) TC_EXCLUDES(mutex_) {
    usize depth = 0;
    {
      common::MutexLock lock(mutex_);
      if (items_.size() >= capacity_ && !closed_) ++blocked_pushes_;
      not_full_.wait(mutex_, [this]() TC_REQUIRES(mutex_) {
        return closed_ || items_.size() < capacity_;
      });
      if (closed_) return false;
      items_.push_back(std::move(item));
      ++total_pushed_;
      depth = items_.size();
    }
    not_empty_.notify_one();
    record_flight(obs::FrEventType::QueuePush, depth);
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) TC_EXCLUDES(mutex_) {
    usize depth = 0;
    {
      common::MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      ++total_pushed_;
      depth = items_.size();
    }
    not_empty_.notify_one();
    record_flight(obs::FrEventType::QueuePush, depth);
    return true;
  }

  /// Blocking pop.  Waits while the queue is empty; after close(), drains
  /// the remaining items and then returns std::nullopt (end of stream).
  std::optional<T> pop() TC_EXCLUDES(mutex_) {
    std::optional<T> item;
    usize depth = 0;
    {
      common::MutexLock lock(mutex_);
      not_empty_.wait(mutex_, [this]() TC_REQUIRES(mutex_) {
        return closed_ || !items_.empty();
      });
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
      depth = items_.size();
    }
    not_full_.notify_one();
    record_flight(obs::FrEventType::QueuePop, depth);
    return item;
  }

  /// Initiate shutdown: wake every waiter; pushes fail from now on, pops
  /// drain what is left.  Idempotent.
  void close() TC_EXCLUDES(mutex_) {
    {
      common::MutexLock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const TC_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] usize size() const TC_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] usize capacity() const { return capacity_; }

  /// Items successfully enqueued over the queue's lifetime.
  [[nodiscard]] u64 total_pushed() const TC_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return total_pushed_;
  }

  /// Pushes that found the queue full and had to wait — each one is a
  /// backpressure event (the producer was throttled by a slower consumer).
  [[nodiscard]] u64 blocked_pushes() const TC_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return blocked_pushes_;
  }

 private:
  void record_flight(obs::FrEventType type, usize depth) const {
    if (flight_channel_ >= 0 && obs::enabled()) {
      obs::global().flight.record(type, -1, flight_channel_,
                                  static_cast<f64>(depth));
    }
  }

  const usize capacity_;
  i32 flight_channel_ = -1;
  mutable common::Mutex mutex_;
  std::deque<T> items_ TC_GUARDED_BY(mutex_);
  bool closed_ TC_GUARDED_BY(mutex_) = false;
  u64 total_pushed_ TC_GUARDED_BY(mutex_) = 0;
  u64 blocked_pushes_ TC_GUARDED_BY(mutex_) = 0;
  common::CondVar not_full_;
  common::CondVar not_empty_;
};

}  // namespace tc::exec
