// Functional-parallel stage pipeline: the host execution engine for
// function-partitioned flow graphs (paper §6, runtime/pipeline_schedule is
// the analytical model of the same mapping).
//
// Each stage owns one dedicated worker thread (per-stage worker assignment)
// and receives frames from a bounded inter-task queue (default capacity 2 —
// double buffering with backpressure: a full queue throttles the upstream
// stage instead of growing without bound).  While stage 2 processes frame t,
// stage 1 already works on frame t+1, so sustained throughput is set by the
// bottleneck stage, not by the frame latency.
//
// Data-parallel stages additionally stripe their row loops over a shared
// plat::ThreadPool (hybrid functional + data partitioning); parallel_rows()
// is the helper stage bodies use for that.
//
// Deadline QoS: every admitted frame carries its admission timestamp and the
// pipeline deadline.  A stage that receives a frame whose age already
// exceeds the deadline applies the DeadlinePolicy (drop = skip the remaining
// stage work, degrade = set the degraded flag stage bodies may consult,
// run = finish regardless); late frames are counted either way.
//
// Observability: when obs::enabled(), every stage execution emits a host-
// timeline span ("exec-stage") and the pipeline maintains
// tripleC_exec_pipeline_* metrics, so the Chrome trace shows the real
// host-side pipeline overlap next to the simulated timeline.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/bounded_queue.hpp"
#include "exec/deadline.hpp"
#include "obs/scoped_timer.hpp"
#include "platform/thread_pool.hpp"

namespace tc::exec {

/// One frame travelling through the pipeline.  `payload` carries the
/// application's working buffers (stage bodies know the concrete type).
struct FramePacket {
  i32 frame = -1;
  /// Host time (pipeline epoch) at which the frame was admitted.
  f64 admitted_us = 0.0;
  /// Deadline for this frame (copied from the pipeline config; 0 = none).
  f64 deadline_ms = 0.0;
  /// Set by the deadline policy: the frame is late and its remaining stage
  /// work is skipped (Drop) ...
  bool dropped = false;
  /// ... or should be computed at reduced quality (Degrade).
  bool degraded = false;
  std::shared_ptr<void> payload;
};

/// Execution context a stage body receives: how many stripes to use and the
/// shared pool to stripe on (null = run serial regardless of stripes).
struct StageContext {
  i32 stripes = 1;
  plat::ThreadPool* pool = nullptr;
};

/// Stripe a row loop over the context's pool: fn is called once per
/// contiguous row band (plat::even_chunk); bands are disjoint, so output
/// rows are written bit-identically to a serial run.
void parallel_rows(const StageContext& ctx, i32 rows,
                   const std::function<void(IndexRange)>& fn);

struct StageSpec {
  std::string name;
  /// Stage body.  Must only touch its packet's payload (plus immutable
  /// config) — stages run concurrently on different frames.
  std::function<void(FramePacket&, const StageContext&)> work;
  /// >1 stripes the stage's parallel_rows loops over the shared pool.
  i32 stripes = 1;
};

struct PipelineConfig {
  /// Capacity of every inter-stage queue (>= 1; 2 = double buffering).
  usize queue_capacity = 2;
  /// Per-frame deadline in host ms (0 = no deadline).
  f64 deadline_ms = 0.0;
  DeadlinePolicy policy = DeadlinePolicy::Run;
  /// Shared pool for data-parallel stages (may be null: stages run serial).
  plat::ThreadPool* stripe_pool = nullptr;
};

/// Completion record of one frame (in output order).
struct CompletedFrame {
  i32 frame = -1;
  /// Admission-to-completion host latency.
  f64 latency_ms = 0.0;
  bool dropped = false;
  bool degraded = false;
  bool deadline_miss = false;
};

struct PipelineStats {
  i32 frames_in = 0;
  i32 frames_out = 0;
  i32 frames_dropped = 0;
  i32 frames_degraded = 0;
  i32 deadline_misses = 0;
  /// submit()..drain() wall time and the resulting sustained throughput.
  f64 wall_ms = 0.0;
  f64 throughput_fps = 0.0;
  /// Backpressure events (blocked pushes) summed over all queues.
  u64 backpressure_events = 0;
  std::vector<CompletedFrame> frames;
};

class StagePipeline {
 public:
  StagePipeline(std::vector<StageSpec> stages, PipelineConfig config);
  /// Joins all stage threads (drain() if the caller did not).
  ~StagePipeline();

  StagePipeline(const StagePipeline&) = delete;
  StagePipeline& operator=(const StagePipeline&) = delete;

  /// Launch the stage threads.  Must be called before submit().
  void start();

  /// Admit one frame (stamps the admission time).  Blocks while the first
  /// queue is full (backpressure); returns false after drain()/close.
  bool submit(i32 frame, std::shared_ptr<void> payload);

  /// Close the input, let every stage drain, and join the stage threads in
  /// pipeline order.  Idempotent; stats() is complete afterwards.
  void drain();

  [[nodiscard]] usize stage_count() const { return stages_.size(); }

  /// Snapshot of the accounting (stable after drain()).
  [[nodiscard]] PipelineStats stats() const;

 private:
  void stage_loop(usize stage_index);

  std::vector<StageSpec> stages_;
  PipelineConfig config_;
  /// queues_[i] feeds stage i.
  std::vector<std::unique_ptr<BoundedQueue<FramePacket>>> queues_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool drained_ = false;
  obs::ScopedTimer epoch_;
  f64 first_submit_us_ = -1.0;
  i32 frames_in_ = 0;

  mutable common::Mutex stats_mutex_;
  std::vector<CompletedFrame> completed_ TC_GUARDED_BY(stats_mutex_);
  f64 last_done_us_ TC_GUARDED_BY(stats_mutex_) = 0.0;
};

}  // namespace tc::exec
