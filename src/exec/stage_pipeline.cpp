#include "exec/stage_pipeline.hpp"

#include <cassert>
#include <utility>

#include "obs/obs.hpp"

namespace tc::exec {

void parallel_rows(const StageContext& ctx, i32 rows,
                   const std::function<void(IndexRange)>& fn) {
  if (ctx.pool == nullptr || ctx.stripes <= 1 || rows <= 1) {
    fn(IndexRange{0, rows});
    return;
  }
  ctx.pool->parallel_ranges(rows, ctx.stripes,
                            [&fn](i32 /*chunk*/, IndexRange r) { fn(r); });
}

StagePipeline::StagePipeline(std::vector<StageSpec> stages,
                             PipelineConfig config)
    : stages_(std::move(stages)), config_(std::move(config)) {
  assert(!stages_.empty() && "pipeline needs at least one stage");
  queues_.reserve(stages_.size());
  for (usize i = 0; i < stages_.size(); ++i) {
    queues_.push_back(
        std::make_unique<BoundedQueue<FramePacket>>(config_.queue_capacity));
    // Flight-recorder channel i = the queue feeding stage i.
    queues_.back()->set_flight_channel(narrow<i32>(i));
  }
}

StagePipeline::~StagePipeline() { drain(); }

void StagePipeline::start() {
  if (started_) return;
  started_ = true;
  epoch_.restart();
  threads_.reserve(stages_.size());
  for (usize i = 0; i < stages_.size(); ++i) {
    threads_.emplace_back([this, i] { stage_loop(i); });
  }
}

bool StagePipeline::submit(i32 frame, std::shared_ptr<void> payload) {
  assert(started_ && "submit() before start()");
  FramePacket packet;
  packet.frame = frame;
  packet.admitted_us = epoch_.elapsed_us();
  packet.deadline_ms = config_.deadline_ms;
  packet.payload = std::move(payload);
  if (first_submit_us_ < 0.0) first_submit_us_ = packet.admitted_us;
  if (!queues_.front()->push(std::move(packet))) return false;
  ++frames_in_;
  return true;
}

void StagePipeline::drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  queues_.front()->close();
  // Join in pipeline order: stage i exits only after it drained its input
  // and closed stage i+1's queue, so downstream threads always terminate.
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void StagePipeline::stage_loop(usize stage_index) {
  StageSpec& stage = stages_[stage_index];
  const bool last = stage_index + 1 == stages_.size();
  BoundedQueue<FramePacket>& in = *queues_[stage_index];

  if (obs::enabled()) {
    auto& tracer = obs::global().tracer;
    tracer.set_thread_name(obs::kHostPid, tracer.host_tid(),
                           "exec-stage " + stage.name);
  }

  const StageContext ctx{stage.stripes, config_.stripe_pool};
  while (auto packet = in.pop()) {
    FramePacket& p = *packet;
    // Deadline check on entry to the stage: a frame that is already older
    // than its deadline gets the QoS policy applied before more work is
    // spent on it.
    const f64 age_ms = (epoch_.elapsed_us() - p.admitted_us) / 1000.0;
    const bool late = p.deadline_ms > 0.0 && age_ms > p.deadline_ms;
    if (late) {
      switch (config_.policy) {
        case DeadlinePolicy::Drop:
          p.dropped = true;
          break;
        case DeadlinePolicy::Degrade:
          p.degraded = true;
          break;
        case DeadlinePolicy::Run:
          break;
      }
    }
    if (!p.dropped) {
      if (obs::enabled()) {
        obs::FlightRecorder& flight = obs::global().flight;
        const i32 stage_id = narrow<i32>(stage_index);
        flight.record(obs::FrEventType::StageStart, p.frame, stage_id);
        const f64 start_us = epoch_.elapsed_us();
        auto span = obs::host_span(stage.name, "exec-stage");
        span.arg("frame", std::to_string(p.frame));
        span.arg("stripes", std::to_string(stage.stripes));
        if (p.degraded) span.arg("degraded", "1");
        stage.work(p, ctx);
        flight.record(obs::FrEventType::StageEnd, p.frame, stage_id,
                      (epoch_.elapsed_us() - start_us) / 1000.0);
      } else {
        stage.work(p, ctx);
      }
    }
    if (last) {
      CompletedFrame done;
      done.frame = p.frame;
      const f64 done_us = epoch_.elapsed_us();
      done.latency_ms = (done_us - p.admitted_us) / 1000.0;
      done.dropped = p.dropped;
      done.degraded = p.degraded;
      done.deadline_miss =
          p.deadline_ms > 0.0 && done.latency_ms > p.deadline_ms;
      if (obs::enabled()) {
        auto& m = obs::global().metrics;
        m.histogram("tripleC_exec_pipeline_latency_ms",
                    "Admission-to-completion host latency per frame",
                    obs::latency_buckets_ms())
            .record(done.latency_ms);
        if (done.dropped) {
          m.counter("tripleC_exec_pipeline_dropped_total",
                    "Frames dropped by the deadline policy")
              .add();
        }
        if (done.deadline_miss) {
          m.counter("tripleC_exec_pipeline_deadline_miss_total",
                    "Frames completed after their deadline")
              .add();
        }
      }
      common::MutexLock lock(stats_mutex_);
      completed_.push_back(done);
      if (done_us > last_done_us_) last_done_us_ = done_us;
    } else {
      queues_[stage_index + 1]->push(std::move(p));
    }
  }
  // End of stream: propagate the close downstream.
  if (!last) queues_[stage_index + 1]->close();
}

PipelineStats StagePipeline::stats() const {
  PipelineStats s;
  s.frames_in = frames_in_;
  {
    common::MutexLock lock(stats_mutex_);
    s.frames = completed_;
    const f64 start_us = first_submit_us_ < 0.0 ? 0.0 : first_submit_us_;
    if (last_done_us_ > start_us) s.wall_ms = (last_done_us_ - start_us) / 1000.0;
  }
  for (const CompletedFrame& f : s.frames) {
    ++s.frames_out;
    if (f.dropped) ++s.frames_dropped;
    if (f.degraded) ++s.frames_degraded;
    if (f.deadline_miss) ++s.deadline_misses;
  }
  if (s.wall_ms > 0.0) s.throughput_fps = 1000.0 * s.frames_out / s.wall_ms;
  for (const auto& q : queues_) s.backpressure_events += q->blocked_pushes();
  return s;
}

}  // namespace tc::exec
