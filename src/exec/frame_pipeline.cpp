#include "exec/frame_pipeline.hpp"

#include <algorithm>
#include <utility>

namespace tc::exec {

FramePipeline::FramePipeline(app::StentBoostApp& app,
                             FramePipelineConfig config)
    : app_(app), config_(std::move(config)) {
  std::vector<StageSpec> stages(2);
  stages[0].name = "front";
  stages[0].work = [this](FramePacket& packet, const StageContext&) {
    if (config_.on_admit) config_.on_admit(packet.frame);
    // A pre-set payload is a caller-supplied input image (see the submit
    // overload); otherwise the synthetic sequence renders here.
    app::FrameContext* ctx =
        packet.payload != nullptr
            ? app_.admit_image(packet.frame, *static_cast<const img::ImageU16*>(
                                                 packet.payload.get()))
            : app_.admit_frame(packet.frame);
    app_.run_front(*ctx);
    // Non-owning alias: the app owns the context and recycles it at retire.
    packet.payload = std::shared_ptr<void>(std::shared_ptr<void>{}, ctx);
  };
  stages[1].name = "back";
  stages[1].work = [this](FramePacket& packet, const StageContext&) {
    auto* ctx = static_cast<app::FrameContext*>(packet.payload.get());
    app_.run_back(*ctx);
    graph::FrameRecord record = app_.retire_frame(*ctx);
    packet.payload.reset();
    if (config_.on_retire) config_.on_retire(record);
    if (config_.collect_records) {
      common::MutexLock lock(records_mutex_);
      records_.push_back(std::move(record));
    }
  };

  PipelineConfig pc;
  pc.queue_capacity =
      static_cast<usize>(std::max(1, config_.frames_in_flight - 1));
  pc.deadline_ms = config_.deadline_ms;
  // Run, never Drop: a dropped packet would skip the frame's StreamState
  // commits and stall every later ticket.
  pc.policy = DeadlinePolicy::Run;
  pc.stripe_pool = nullptr;  // instance fan-out uses the app's own pool
  pipeline_ = std::make_unique<StagePipeline>(std::move(stages), pc);
  pipeline_->start();
}

FramePipeline::~FramePipeline() { drain(); }

bool FramePipeline::submit(i32 t) { return pipeline_->submit(t, nullptr); }

bool FramePipeline::submit(i32 t, const img::ImageU16& image) {
  // Non-owning alias; the caller guarantees the image outlives the frame.
  return pipeline_->submit(
      t, std::shared_ptr<void>(std::shared_ptr<void>{},
                               const_cast<img::ImageU16*>(&image)));
}

void FramePipeline::drain() { pipeline_->drain(); }

std::vector<graph::FrameRecord> FramePipeline::take_records() {
  common::MutexLock lock(records_mutex_);
  return std::move(records_);
}

}  // namespace tc::exec
