// Frame pipeline: drives the real StentBoost graph through a two-stage
// StagePipeline (hybrid functional + data partitioning, paper §6).
//
// Stage "front" admits the frame (StreamState ticket, immutable snapshot of
// the cross-frame front state) and runs the analysis front (RDG..GW_EXT);
// stage "back" runs the enhancement back end (ENH, ZOOM), retires the frame
// and hands the FrameRecord to the caller.  While the back stage enhances
// frame t, the front stage already analyses frame t+1 — the app's
// StreamState tickets keep every cross-frame read/commit in frame order, so
// the records are byte-identical to a serial run (see tests/exec/
// test_frame_pipeline).
//
// The packet payload is a non-owning pointer to the app-owned FrameContext
// (the app recycles it at retire_frame); deadline policy is always Run —
// dropping a frame mid-pipeline would skip its StreamState commits and
// deadlock the stream, so QoS decisions belong to the caller (exec::
// Executor::run_pipelined marks late frames dropped after the fact).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "app/stentboost.hpp"
#include "exec/stage_pipeline.hpp"

namespace tc::exec {

struct FramePipelineConfig {
  /// Target number of frames concurrently admitted-but-not-retired (>= 1);
  /// maps to the inter-stage queue capacity, so the actual bound is
  /// frames_in_flight + 1 (one resident per stage thread).
  i32 frames_in_flight = 2;
  /// Per-frame deadline for the pipeline's lateness accounting (0 = none);
  /// late frames are counted, never dropped (policy is always Run).
  f64 deadline_ms = 0.0;
  /// Keep every retired FrameRecord for take_records().
  bool collect_records = true;
  /// Called on the front-stage thread immediately before frame admission —
  /// in frame order.  The hook is where a controller applies the stripe
  /// plan / instance budget snapshot for the coming frame.
  std::function<void(i32 frame)> on_admit;
  /// Called on the back-stage thread immediately after retire_frame — in
  /// frame order, with the frame's final record.
  std::function<void(const graph::FrameRecord&)> on_retire;
};

class FramePipeline {
 public:
  FramePipeline(app::StentBoostApp& app, FramePipelineConfig config = {});
  /// Drains and joins (drain() if the caller did not).
  ~FramePipeline();

  FramePipeline(const FramePipeline&) = delete;
  FramePipeline& operator=(const FramePipeline&) = delete;

  /// Admit frame `t` of the app's synthetic sequence (renders on the
  /// front-stage thread).  Blocks under backpressure; frames must be
  /// submitted in increasing order.  False after drain().
  bool submit(i32 t);

  /// Admit an externally supplied frame.  The caller keeps `image` alive
  /// and unchanged until the frame retires (the pipeline does not copy it
  /// before the front stage runs).
  bool submit(i32 t, const img::ImageU16& image);

  /// Close the input, finish every in-flight frame, join the stage threads.
  /// Idempotent; stats()/take_records() are complete afterwards.
  void drain();

  [[nodiscard]] PipelineStats stats() const { return pipeline_->stats(); }

  /// Move out the retired records (frame order).
  [[nodiscard]] std::vector<graph::FrameRecord> take_records();

 private:
  app::StentBoostApp& app_;
  FramePipelineConfig config_;
  std::unique_ptr<StagePipeline> pipeline_;

  common::Mutex records_mutex_;
  std::vector<graph::FrameRecord> records_ TC_GUARDED_BY(records_mutex_);
};

}  // namespace tc::exec
