// Per-frame deadline quality-of-service policy shared by the executors.
//
// The paper's runtime manager keeps the *output* latency constant; the host
// executors enforce the same contract with a per-frame deadline.  What
// happens to a late frame is configurable:
//
//   Run      — finish it anyway (deadline misses are only counted);
//   Drop     — discard it: a pipeline stage skips the remaining work, the
//              closed-loop executor removes the frame from the display
//              stream (a late fluoroscopy frame is worthless — the next one
//              is already more current);
//   Degrade  — keep the frame but lower the application quality (the QoS
//              ladder of runtime/qos) until the deadline fits again.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace tc::exec {

enum class DeadlinePolicy { Run, Drop, Degrade };

[[nodiscard]] constexpr std::string_view to_string(DeadlinePolicy p) {
  switch (p) {
    case DeadlinePolicy::Run:
      return "run";
    case DeadlinePolicy::Drop:
      return "drop";
    case DeadlinePolicy::Degrade:
      return "degrade";
  }
  return "?";
}

}  // namespace tc::exec
