// Closed-loop concurrent executor: predict → execute → measure → adapt.
//
// The runtime manager (runtime/manager) drives the *simulated* platform; the
// Executor drives the real host.  Every frame it
//
//   1. forecasts each active task's serial host time from per-node EWMA
//      filters (Eq. 1), corrected by a frame-level Markov chain (Eq. 2)
//      over serial-equivalent frame totals (short-term fluctuation),
//   2. chooses a stripe plan with rt::choose_plan so the predicted host
//      latency fits the frame deadline — repartitioning live whenever the
//      prediction drifts across the plan boundary,
//   3. executes the frame for real: StentBoostApp stripes its row kernels
//      over the executor-owned plat::ThreadPool per the plan,
//   4. feeds the measured host times (FlowGraph stamps TaskExecution::
//      host_ms) back into the EWMA filters and the Markov chain, after
//      normalizing them to serial-equivalent via plat::serial_ms_from_striped
//      so the predictors stay unbiased under repartitioning.
//
// Deadline QoS: a frame that measures past its deadline is counted as a
// miss; DeadlinePolicy::Drop removes it from the display stream,
// DeadlinePolicy::Degrade walks the rt::quality_ladder() down until the
// forecast fits again (and back up after `qos_recover_after` consecutive
// frames that would fit one level better).
//
// The first `warmup_frames` frames run serially to prime the filters, fit
// the Markov chain and derive the deadline (mean * headroom) when none is
// configured — mirroring the paper's initialization phase.
//
// The graph is validated by analysis::Analyzer before the first frame
// (Strict policy throws analysis::AnalysisError from the constructor).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/audit.hpp"
#include "app/stentboost.hpp"
#include "exec/deadline.hpp"
#include "obs/drift.hpp"
#include "obs/ledger.hpp"
#include "obs/postmortem.hpp"
#include "obs/telemetry_server.hpp"
#include "platform/thread_pool.hpp"
#include "runtime/partition.hpp"
#include "runtime/qos.hpp"
#include "tripleC/ewma.hpp"
#include "tripleC/markov.hpp"

namespace tc::exec {

/// Stripe-overhead parameters of the *host* (thread-pool dispatch and
/// barrier are tens of microseconds, unlike the simulated platform's
/// heavyweight task control), used for plan estimation and for the
/// serial <-> striped conversion of measured times.
[[nodiscard]] plat::CostParams host_cost_params();

/// Fault injection: a synthetic co-scheduled interferer.  For `frames`
/// frames starting at `start_frame` the executor busy-spins `busy_ms` of
/// wall-clock time per frame and charges it to the frame's measured host
/// latency — a deterministic load spike the predictors did not see coming,
/// used to demo/exercise deadline misses, drift alarms and post-mortems.
struct LoadSpike {
  i32 start_frame = -1;  ///< < 0 disables the injection
  i32 frames = 0;
  f64 busy_ms = 0.0;
};

/// Diagnostics: drift/SLO monitoring and post-mortem capture (ISSUE 5).
/// Disabled by default — the executor then carries zero monitor state.
struct DiagnosticsConfig {
  bool enabled = false;
  /// Per-predictor drift detection ("ewma_only" and "markov_corrected"
  /// streams); alerts force a predictor re-training when retrain_on_drift.
  obs::DriftConfig drift;
  bool retrain_on_drift = true;
  /// SLO thresholds, derived from the active deadline once it is known:
  /// miss-rate over the window, p99 <= deadline * slo_p99_factor, and
  /// p99 - p50 jitter <= deadline * slo_jitter_factor.
  f64 slo_miss_rate = 0.25;
  f64 slo_p99_factor = 1.50;
  f64 slo_jitter_factor = 0.75;
  i32 slo_window = 48;
  i32 slo_min_frames = 16;
  i32 slo_cooldown_frames = 48;
  /// Bundle output; an empty directory disables post-mortem writing.
  obs::PostmortemConfig postmortem;
};

/// Portable snapshot of a trained predictor stack: the per-node EWMA levels
/// (Eq. 1) plus the frame-level Markov chain (Eq. 2) and its state.  The
/// serving layer (serve::PredictorRegistry) publishes one per scenario class
/// at stream retire and clones it into newly admitted same-class streams, so
/// they start calibrated instead of paying the cold-start warm-up
/// (Jung/Oh/Ha's mode-transition-delay argument at fleet scale).
struct PredictorSnapshot {
  std::array<f64, app::kNodeCount> node_serial_ms{};
  std::array<bool, app::kNodeCount> node_primed{};
  model::MarkovChain frame_markov;
  /// Markov conditioning state at snapshot time (last serial-equivalent
  /// frame total).
  f64 last_serial_total_ms = 0.0;
  /// Mean per-frame traffic per Fig.-4 bus class (cache / memory / I/O MB,
  /// summed node auxiliary filters) — the admission controller's bus-demand
  /// estimate.
  std::array<f64, 3> bus_mb_per_frame{};
  /// Frames the stack was trained on (0 = empty/cold snapshot).
  u64 trained_frames = 0;

  [[nodiscard]] bool trained() const { return trained_frames > 0; }
  /// Serial-equivalent frame-cost estimate of the stack: the Markov chain's
  /// unconditional mean when fitted, else the sum of the primed filters.
  [[nodiscard]] f64 mean_frame_ms() const;
};

struct ExecutorConfig {
  /// Worker threads of the executor-owned pool (0 = hardware concurrency).
  i32 worker_threads = 4;
  /// External pool shared with other executors (the serving layer runs N
  /// streams on one pool).  Non-null skips spawning an owned pool —
  /// worker_threads is then ignored; the pool must outlive the executor.
  plat::ThreadPool* shared_pool = nullptr;
  /// Fixed per-frame deadline; <= 0 derives it from the warm-up phase as
  /// mean measured host latency * deadline_headroom.
  f64 deadline_ms = 0.0;
  f64 deadline_headroom = 1.30;
  i32 warmup_frames = 8;
  DeadlinePolicy policy = DeadlinePolicy::Drop;
  i32 max_stripes_per_task = 4;
  /// Live repartitioning: when false, managed frames keep the serial plan
  /// (measure-only mode, useful for baselines).
  bool adapt = true;
  /// EWMA smoothing factor of the per-node host-time filters.
  f64 ewma_alpha = 0.3;
  /// Host stripe-overhead parameters (see host_cost_params()).
  plat::CostParams host_cost = host_cost_params();
  /// Run the triplec-lint static passes over the graph and platform before
  /// the first frame.
  bool validate_at_startup = true;
  analysis::Policy validation_policy = analysis::Policy::Strict;
  /// Run the triplec-audit schedulability proof before the first frame: a
  /// throwaway copy of the application is simulated for
  /// audit_training_frames to train a GraphPredictor and capture memory
  /// rows, then all scenarios × the runtime plan search space are checked
  /// (deadline feasibility, per-bus budgets, transition pricing).  Strict
  /// audit_policy refuses graphs with infeasible reachable scenarios.
  bool audit_at_startup = false;
  analysis::Policy audit_policy = analysis::Policy::Strict;
  i32 audit_training_frames = 48;
  analysis::audit::AuditOptions audit_options;
  /// Degrade policy: lift one quality level after this many consecutive
  /// frames whose forecast would fit at the better level.
  i32 qos_recover_after = 4;
  /// Drift/SLO monitoring + post-mortem capture.
  DiagnosticsConfig diagnostics;
  /// Prediction ledger (predicted-vs-actual resource attribution per frame
  /// and node; see obs/ledger.hpp).  Off by default.
  obs::LedgerConfig ledger;
  /// Close the calibration loop: divide each node's EWMA forecast by the
  /// ledger's rolling bias gauge for that node (1 + bias/100), so a
  /// systematically over- or under-predicting node is recentred before the
  /// plan is chosen.  Requires ledger.enabled; A/B-toggled by
  /// `bench_executor --ledger`.
  bool ledger_bias_correction = false;
  /// Calibration-window samples a node needs before it is corrected.
  u64 bias_min_samples = 8;
  /// Correction clamp: the per-node factor stays in [1-c, 1+c] so one
  /// pathological window cannot swing the plan.
  f64 bias_correction_clamp = 0.25;
  /// Ledger rows embedded in each post-mortem bundle (most recent first).
  usize postmortem_ledger_rows = 32;
  /// Synthetic interference (see LoadSpike); off by default.
  LoadSpike load_spike;
  /// In-process HTTP ops endpoint for a standalone executor (off by
  /// default; the serving layer wires its own — see serve::ServeConfig).
  /// Readiness flips once the validation/audit startup gates have passed.
  obs::TelemetryConfig telemetry;
};

/// Outcome of one executed frame.
struct ExecutedFrame {
  i32 frame = -1;
  graph::ScenarioId scenario = 0;
  app::StripePlan plan = app::serial_plan();
  /// Predicted host latency of the chosen plan (0 during warm-up).
  f64 predicted_host_ms = 0.0;
  /// Measured host latency of the frame's graph execution: the sum of the
  /// executed tasks' wall-clock times (input rendering excluded).
  f64 measured_host_ms = 0.0;
  f64 deadline_ms = 0.0;
  /// False for warm-up (serial, deadline not yet set) frames.
  bool managed = false;
  bool deadline_miss = false;
  /// DeadlinePolicy::Drop removed this frame from the display stream.
  bool dropped = false;
  /// QoS quality level applied this frame (0 = full quality).
  i32 quality_level = 0;
  /// The stripe plan changed vs. the previous frame (live repartition).
  bool repartitioned = false;
};

struct ExecutorStats {
  i32 frames = 0;
  i32 managed_frames = 0;
  i32 deadline_misses = 0;
  i32 dropped_frames = 0;
  i32 degraded_frames = 0;
  i32 repartitions = 0;
  f64 mean_measured_ms = 0.0;
  // --- diagnostics (all 0 when DiagnosticsConfig::enabled is false) --------
  i32 drift_alerts = 0;
  i32 slo_breaches = 0;
  i32 retrains = 0;
  i32 postmortems = 0;
};

class Executor {
 public:
  explicit Executor(app::StentBoostConfig app_config,
                    ExecutorConfig config = {});

  /// Predict, choose a plan, execute frame `t` for real, feed back.
  ExecutedFrame step(i32 t);

  /// Run frames [0, n).
  std::vector<ExecutedFrame> run(i32 n);

  /// Run frames [0, n) with up to `frames_in_flight` frames overlapped
  /// through exec::FramePipeline (front stage analyses frame t+1 while the
  /// back stage enhances frame t).  Plans are chosen at admission and frames
  /// settle at retire — both in frame order — so the FrameRecords are
  /// byte-identical to run(n); only the predictor feedback may lag by the
  /// frames in flight.  The per-frame instance budget divides the pool
  /// among the in-flight frames (rt::budget_for_plan).
  std::vector<ExecutedFrame> run_pipelined(i32 n, i32 frames_in_flight = 2);

  [[nodiscard]] f64 deadline_ms() const { return deadline_ms_; }
  [[nodiscard]] bool deadline_set() const { return deadline_set_; }
  [[nodiscard]] app::StentBoostApp& app() { return app_; }
  [[nodiscard]] plat::ThreadPool& pool() { return *pool_; }
  [[nodiscard]] const ExecutorConfig& config() const { return config_; }
  [[nodiscard]] const analysis::Report& validation_report() const {
    return validation_report_;
  }
  /// Diagnostics of the startup schedulability audit (empty when
  /// audit_at_startup is off or nothing fired).
  [[nodiscard]] const analysis::Report& audit_report() const {
    return audit_report_;
  }
  [[nodiscard]] ExecutorStats stats() const { return stats_; }

  /// Thread-safe copy of the frame counters and the active deadline —
  /// stats() itself is only safe from the stepping thread; telemetry
  /// handlers (and anything else off-thread) read this mirror, refreshed
  /// once per settled frame.
  struct StatusSnapshot {
    ExecutorStats stats;
    f64 deadline_ms = 0.0;  ///< 0 until the deadline is set
  };
  [[nodiscard]] StatusSnapshot status_snapshot() const
      TC_EXCLUDES(status_mutex_);

  /// Telemetry plane (null unless ExecutorConfig::telemetry.enabled).
  [[nodiscard]] obs::TelemetryServer* telemetry() { return telemetry_.get(); }

  // --- predictor state (read-only, for tests/examples) ---------------------
  [[nodiscard]] const model::EwmaFilter& node_filter(i32 node) const {
    return node_ewma_[static_cast<usize>(node)];
  }
  [[nodiscard]] const model::MarkovChain& frame_markov() const {
    return frame_markov_;
  }

  /// Host-time forecast of the coming frame (serial-equivalent per node),
  /// built from the EWMA filters; exposed for tests/benches.
  [[nodiscard]] std::vector<rt::NodeForecast> host_forecast() const;

  /// Prediction ledger (null when LedgerConfig::enabled is false).
  [[nodiscard]] obs::PredictionLedger* ledger() { return ledger_.get(); }
  [[nodiscard]] const obs::PredictionLedger* ledger() const {
    return ledger_.get();
  }

  // --- diagnostics (null/empty when DiagnosticsConfig::enabled is false) ---
  [[nodiscard]] obs::DriftMonitor* drift_monitor() { return drift_.get(); }
  [[nodiscard]] obs::SloMonitor* slo_monitor() { return slo_.get(); }
  [[nodiscard]] obs::PostmortemWriter* postmortem_writer() {
    return postmortem_.get();
  }

  /// Snapshot of the predictor stack (EWMA filters, Markov chain, drift
  /// errors) as embedded in post-mortem bundles.
  [[nodiscard]] obs::PredictorStateSummary predictor_summary() const;

  /// Explicitly capture a post-mortem bundle (reason "manual" unless given);
  /// returns the bundle path or "" when diagnostics/postmortems are off.
  std::string write_postmortem(const std::string& reason = "manual");

  /// Drop the Markov chain and its training series so the next
  /// `warmup_frames` frames re-fit it — the drift-alert response ("force
  /// re-training").  EWMA filters keep adapting and are not reset.
  void force_retrain(i32 frame);

  /// Cap the pool threads the planner assumes for this executor's frames —
  /// the weighted fair share the serving layer grants the stream under a
  /// shared pool (0 = the whole pool).  Set it only between this executor's
  /// frames, from the thread that steps it.
  void set_pool_share(i32 threads) { pool_share_ = threads; }
  /// Pool threads the planner currently assumes (share-capped pool size).
  [[nodiscard]] i32 effective_threads() const;

  /// Export the current predictor stack for warm-starting a same-class
  /// stream (serve::PredictorRegistry).
  [[nodiscard]] PredictorSnapshot snapshot_predictors() const;
  /// Seed the predictor stack from a trained snapshot: primed filters and a
  /// fitted Markov chain are adopted wholesale, so a deadline-configured
  /// stream skips the cold-start warm-up and runs managed from frame 0.
  void warm_start(const PredictorSnapshot& snap);

 private:
  /// EWMA serial-ms estimate of a node; falls back to the node's
  /// granularity sibling (RDG_ROI <-> RDG_FULL, MKX_ROI <-> MKX_FULL) while
  /// the filter is unprimed (e.g. the first ROI-mode frame).
  [[nodiscard]] f64 node_estimate(i32 node) const;

  /// Feed the frame's measured host times back into the predictors; returns
  /// the serial-equivalent frame total.
  f64 feed_back(const graph::FrameRecord& record, const app::StripePlan& plan);

  void apply_quality(i32 frame, i32 ladder_index);

  /// Select and apply the stripe plan + instance budget for frame `t`
  /// (fills the prediction-side fields of `result`); returns the pre-Markov
  /// EWMA forecast total (drift input).  Touches predictor state — callers
  /// outside the serial step() path must serialize plan_frame/settle_frame
  /// (run_pipelined guards both with one mutex).
  f64 plan_frame(i32 t, i32 frames_in_flight, ExecutedFrame& result);
  /// Recentre the forecast by the ledger's rolling per-node bias gauge
  /// (ledger_bias_correction satellite; no-op without enough samples).
  void bias_correct(std::vector<rt::NodeForecast>& fc) const;
  /// Post-execution bookkeeping for a frame whose measured_host_ms is
  /// final: deadline accounting, predictor feedback, warm-up fitting,
  /// stats, observability and diagnostics.  Frames must settle in order.
  void settle_frame(ExecutedFrame& result, const graph::FrameRecord& record,
                    f64 ewma_total);

  /// Ledger prediction rows for frame `t` under the chosen plan: CPU from
  /// the (Markov-scaled) forecast striped through the plan, memory and
  /// per-bus traffic from the auxiliary per-node EWMA filters.
  void ledger_predict(i32 t, std::span<const rt::NodeForecast> fc,
                      const ExecutedFrame& result);
  /// Settle the frame's ledger rows from measured task executions, update
  /// the auxiliary filters and feed the per-node drift streams.
  void ledger_settle(const ExecutedFrame& result,
                     const graph::FrameRecord& record);

  void record_frame_observability(const ExecutedFrame& f);
  /// Drift/SLO evaluation + post-mortem triggers for one finished frame;
  /// `ewma_total` is the pre-Markov serial-equivalent forecast (0 when
  /// unmanaged), `serial_total` the frame's serial-equivalent measurement.
  void run_diagnostics(const ExecutedFrame& f, f64 ewma_total,
                       f64 serial_total);
  /// `breach` (optional) attaches the triggering SLO's identity, value and
  /// threshold plus the monitor's window aggregates to the bundle's extra
  /// fields.
  [[nodiscard]] obs::PostmortemContext postmortem_context(
      const ExecutedFrame& f, const std::string& reason,
      const obs::SloBreach* breach = nullptr) const;

  ExecutorConfig config_;
  /// Owned worker pool; null when ExecutorConfig::shared_pool injects an
  /// external one.  pool_ always points at the pool in use.
  std::unique_ptr<plat::ThreadPool> owned_pool_;
  plat::ThreadPool* pool_;
  app::StentBoostApp app_;
  analysis::Report validation_report_;
  analysis::Report audit_report_;

  std::array<model::EwmaFilter, app::kNodeCount> node_ewma_;
  /// Auxiliary per-node filters for the non-CPU ledger resources (memory
  /// footprint and the three bus classes), fed from measured actuals at
  /// settle; indexed [node][resource - 1] (resource 0 = CpuMs lives in
  /// node_ewma_).
  std::array<std::array<model::EwmaFilter, obs::kLedgerResourceCount - 1>,
             app::kNodeCount>
      node_aux_ewma_;
  /// Graph topology per node: no incoming edge (camera-fed source) / no
  /// outgoing edge (display sink) — the ledger's I/O-bus attribution.
  std::array<bool, app::kNodeCount> node_is_source_{};
  std::array<bool, app::kNodeCount> node_is_sink_{};
  model::MarkovChain frame_markov_;
  /// Serial-equivalent frame totals of the warm-up phase (Markov training
  /// series) and measured warm-up latencies (deadline derivation).
  std::vector<f64> warmup_serial_totals_;
  std::vector<f64> warmup_measured_ms_;
  f64 last_serial_total_ms_ = 0.0;

  f64 deadline_ms_ = 0.0;
  bool deadline_set_ = false;
  /// Planner thread cap under a shared pool (see set_pool_share; 0 = all).
  i32 pool_share_ = 0;
  app::StripePlan prev_plan_ = app::serial_plan();
  /// Index into rt::quality_ladder() currently applied (Degrade policy).
  i32 quality_index_ = 0;
  i32 recover_streak_ = 0;

  ExecutorStats stats_;
  f64 measured_sum_ms_ = 0.0;

  /// Diagnostics stack (allocated only when diagnostics.enabled).  The SLO
  /// monitor is created lazily once the deadline is known, because its
  /// thresholds derive from the deadline.
  std::unique_ptr<obs::DriftMonitor> drift_;
  std::unique_ptr<obs::SloMonitor> slo_;
  std::unique_ptr<obs::PostmortemWriter> postmortem_;
  /// Prediction ledger (allocated only when config_.ledger.enabled).
  std::unique_ptr<obs::PredictionLedger> ledger_;
  /// Admission ticket of the next planned frame (frame order).
  i64 next_ticket_ = 0;
  /// Last frame result, kept for explicit write_postmortem() requests.
  ExecutedFrame last_frame_;

  /// Off-thread status mirror (see status_snapshot()).
  mutable common::Mutex status_mutex_;
  StatusSnapshot status_ TC_GUARDED_BY(status_mutex_);
  /// Single-stream status JSON for the /streams endpoint.
  [[nodiscard]] std::string status_json() const TC_EXCLUDES(status_mutex_);
  /// Telemetry plane, declared last so it is destroyed *first*: handler
  /// threads must stop before the state their providers snapshot.
  std::unique_ptr<obs::StatusAggregator> status_agg_;
  std::unique_ptr<obs::TelemetryServer> telemetry_;
};

}  // namespace tc::exec
