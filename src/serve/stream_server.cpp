#include "serve/stream_server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/json.hpp"
#include "common/stats.hpp"
#include "obs/obs.hpp"

namespace tc::serve {

namespace {

/// Mean CPU absolute percentage error over the stream's first `early`
/// frames — the warm-vs-cold calibration comparison (-1 without data).
f64 early_cpu_ape(const obs::PredictionLedger* ledger, i32 early) {
  if (ledger == nullptr) return -1.0;
  const auto cpu = obs::LedgerResource::CpuMs;
  f64 sum = 0.0;
  i32 n = 0;
  for (const obs::LedgerRow& row : ledger->rows()) {
    if (row.frame >= early) continue;
    const std::optional<f64> err = row.error_pct(cpu);
    if (!err.has_value()) continue;
    sum += std::abs(*err);
    ++n;
  }
  return n > 0 ? sum / n : -1.0;
}

}  // namespace

StreamServer::StreamServer(ServeConfig config)
    : config_(config),
      pool_(config.pool_threads <= 0 ? 0
                                     : static_cast<usize>(config.pool_threads),
            config.pin_threads),
      admission_(config.admission, narrow<i32>(pool_.thread_count()),
                 plat::PlatformSpec::paper_platform()) {
  status_agg_.set_streams_provider([this] { return fleet_status_json(); });
  status_agg_.set_ledger_provider(
      [this] { return ledger_rows(); },
      [](i32 node) { return std::string(app::node_name(node)); });
  if (config_.telemetry.enabled) {
    telemetry_ =
        std::make_unique<obs::TelemetryServer>(config_.telemetry, &status_agg_);
    telemetry_->start();
  }
  // Startup gates passed (pool up, admission sized): ready for traffic.
  status_agg_.set_ready(true);
}

StreamServer::~StreamServer() = default;

i32 StreamServer::submit(StreamConfig stream) {
  common::MutexLock lock(mutex_);
  const i32 id = narrow<i32>(reports_.size());
  if (stream.name.empty()) {
    std::string fallback = std::to_string(id);
    fallback.insert(fallback.begin(), 's');
    stream.name = std::move(fallback);
  }

  StreamReport report;
  report.id = id;
  report.name = stream.name;
  report.class_key = PredictorRegistry::class_key(stream.app);
  report.weight = stream.weight;
  report.deadline_ms = stream.deadline_ms;

  // Price the stream: a registry snapshot when one exists for its class
  // (warm — no execution), else a short serial probe.
  const std::optional<exec::PredictorSnapshot> snap =
      registry_.lookup(report.class_key);
  StreamDemand demand = admission_.estimate_demand(
      stream.app, stream.deadline_ms, stream.max_stripes_per_task,
      snap.has_value() ? &*snap : nullptr);
  report.decision = admission_.decide(demand);
  if (report.decision.verdict == AdmissionVerdict::Reject && demand.warm) {
    // A snapshot trained under fleet contention over-prices the stream
    // (its EWMAs saw contended wall times, not intrinsic cost).  Before
    // rejecting on warm numbers alone, re-price with an uncontended probe —
    // the stream still warm-starts its predictors if it is admitted.
    demand = admission_.estimate_demand(stream.app, stream.deadline_ms,
                                        stream.max_stripes_per_task, nullptr);
    report.decision = admission_.decide(demand);
  }

  stream_configs_.push_back(std::move(stream));
  reports_.push_back(std::move(report));
  const AdmissionDecision& decision = reports_.back().decision;

  switch (decision.verdict) {
    case AdmissionVerdict::Admit:
      activate(id);
      break;
    case AdmissionVerdict::Queue:
      wait_queue_.push_back(id);
      if (obs::enabled()) {
        obs::global().flight.record(obs::FrEventType::StreamReject, -1, id,
                                    decision.demand.cores, 1.0);
      }
      break;
    case AdmissionVerdict::Reject:
      if (obs::enabled()) {
        obs::global().flight.record(obs::FrEventType::StreamReject, -1, id,
                                    decision.demand.cores, 0.0);
      }
      break;
  }
  update_fleet_gauges();
  return id;
}

void StreamServer::activate(i32 id) {
  const StreamConfig& stream = stream_configs_[static_cast<usize>(id)];
  StreamReport& report = reports_[static_cast<usize>(id)];

  auto session = std::make_unique<Session>();
  session->id = id;
  session->config = stream;
  session->demand = report.decision.demand;

  exec::ExecutorConfig ec;
  ec.shared_pool = &pool_;
  ec.deadline_ms = stream.deadline_ms;
  ec.policy = stream.policy;
  ec.max_stripes_per_task = stream.max_stripes_per_task;
  ec.warmup_frames = stream.warmup_frames;
  // Per-stream ledger rows carry the stream id; metric/counter export stays
  // off — N streams would write the same per-node series.
  ec.ledger.enabled = stream.ledger;
  ec.ledger.stream_id = id;
  ec.ledger.export_metrics = false;
  ec.ledger.trace_counters = false;
  session->executor = std::make_unique<exec::Executor>(stream.app, ec);

  const std::optional<exec::PredictorSnapshot> snap =
      registry_.lookup(report.class_key);
  if (snap.has_value() && snap->trained()) {
    session->executor->warm_start(*snap);
    report.warm_started = true;
  }

  // Per-stream SLOs under stream-prefixed names, so N monitors coexist in
  // one MetricsRegistry.
  std::vector<obs::SloSpec> specs;
  obs::SloSpec miss;
  miss.name = stream.name + "/deadline_miss_rate";
  miss.kind = obs::SloKind::DeadlineMissRate;
  miss.threshold = config_.slo_miss_rate;
  obs::SloSpec p99;
  p99.name = stream.name + "/p99_latency_ms";
  p99.kind = obs::SloKind::P99LatencyMs;
  p99.threshold = stream.deadline_ms * config_.slo_p99_factor;
  for (obs::SloSpec* spec : {&miss, &p99}) {
    spec->window = config_.slo_window;
    spec->min_frames = config_.slo_min_frames;
  }
  specs.push_back(miss);
  specs.push_back(p99);
  session->slo = std::make_unique<obs::SloMonitor>(
      std::move(specs), obs::enabled() ? &obs::global().metrics : nullptr);

  if (fleet_slo_ == nullptr) {
    // Fleet objectives derive from the first admitted stream's deadline —
    // the fleet-level "are we keeping up" signal.
    std::vector<obs::SloSpec> fleet_specs;
    obs::SloSpec fmiss = miss;
    fmiss.name = "fleet/deadline_miss_rate";
    obs::SloSpec fp99 = p99;
    fp99.name = "fleet/p99_latency_ms";
    fleet_specs.push_back(fmiss);
    fleet_specs.push_back(fp99);
    fleet_slo_ = std::make_unique<obs::SloMonitor>(
        std::move(fleet_specs),
        obs::enabled() ? &obs::global().metrics : nullptr);
  }

  // A promoted stream starts at the fleet's current virtual time, not 0 —
  // it must not monopolize the slots to "catch up" service it never queued
  // for.
  f64 min_vtime = 0.0;
  bool first = true;
  for (const auto& other : sessions_) {
    if (other->done) continue;
    if (first || other->vtime < min_vtime) min_vtime = other->vtime;
    first = false;
  }
  session->vtime = first ? 0.0 : min_vtime;

  admission_.commit(session->demand);
  peak_committed_cores_ =
      std::max(peak_committed_cores_, admission_.committed_cores());
  if (obs::enabled()) {
    obs::global().flight.record(obs::FrEventType::StreamAdmit, -1, id,
                                session->demand.cores,
                                admission_.residual_cores());
  }
  sessions_.push_back(std::move(session));
}

f64 StreamServer::active_weight() const {
  f64 total = 0.0;
  for (const auto& s : sessions_) {
    if (!s->done) total += std::max(1e-9, s->config.weight);
  }
  return std::max(1e-9, total);
}

StreamServer::Session* StreamServer::pick_min_vtime() {
  Session* best = nullptr;
  for (const auto& s : sessions_) {
    if (s->done || s->busy) continue;
    if (best == nullptr || s->vtime < best->vtime) best = s.get();
  }
  return best;
}

void StreamServer::retire(Session& s) {
  // Publish the trained stack so the next same-class stream warm-starts.
  registry_.publish(reports_[static_cast<usize>(s.id)].class_key,
                    s.executor->snapshot_predictors());
  admission_.release(s.demand);
  finalize_report(s);
  if (obs::enabled()) {
    const exec::ExecutorStats stats = s.executor->stats();
    obs::global().flight.record(obs::FrEventType::StreamRetire, -1, s.id,
                                static_cast<f64>(stats.frames),
                                static_cast<f64>(stats.deadline_misses));
  }
  // Promote queued streams that now fit the refilled residual (FIFO).
  for (auto it = wait_queue_.begin(); it != wait_queue_.end();) {
    const i32 id = *it;
    StreamReport& r = reports_[static_cast<usize>(id)];
    const AdmissionDecision redecide = admission_.decide(r.decision.demand);
    if (redecide.verdict == AdmissionVerdict::Admit) {
      it = wait_queue_.erase(it);
      activate(id);
    } else {
      ++it;
    }
  }
  update_fleet_gauges();
}

void StreamServer::finalize_report(Session& s) {
  StreamReport& r = reports_[static_cast<usize>(s.id)];
  const exec::ExecutorStats stats = s.executor->stats();
  r.served = true;
  r.frames = stats.frames;
  r.deadline_misses = stats.deadline_misses;
  r.degraded_frames = stats.degraded_frames;
  r.repartitions = stats.repartitions;
  r.mean_ms = stats.mean_measured_ms;
  r.miss_rate = stats.frames > 0
                    ? static_cast<f64>(stats.deadline_misses) / stats.frames
                    : 0.0;
  if (!s.latencies_ms.empty()) {
    r.p50_ms = percentile(s.latencies_ms, 50.0);
    r.p99_ms = percentile(s.latencies_ms, 99.0);
  }
  r.early_ape_pct = early_cpu_ape(s.executor->ledger(), config_.early_frames);
}

void StreamServer::update_fleet_gauges() {
  if (!obs::enabled()) return;
  obs::MetricsRegistry& m = obs::global().metrics;
  i32 active = 0;
  for (const auto& s : sessions_) {
    if (!s->done) ++active;
  }
  m.gauge("tripleC_serve_active_streams", "Streams currently being served")
      .set(static_cast<f64>(active));
  m.gauge("tripleC_serve_queued_streams", "Streams waiting for capacity")
      .set(static_cast<f64>(wait_queue_.size()));
  // Per-stream lifecycle gauge, stream-labeled so N streams coexist:
  // 0 = rejected, 1 = queued, 2 = active, 3 = done.
  for (const StreamReport& r : reports_) {
    f64 state = r.decision.verdict == AdmissionVerdict::Reject ? 0.0 : 1.0;
    for (const auto& s : sessions_) {
      if (s->id == r.id) {
        state = s->done ? 3.0 : 2.0;
        break;
      }
    }
    m.gauge("tripleC_serve_stream_state",
            "Stream lifecycle: 0 rejected, 1 queued, 2 active, 3 done",
            obs::label("stream", r.name))
        .set(state);
  }
  m.gauge("tripleC_serve_committed_cores",
          "Cores committed by admission control")
      .set(admission_.committed_cores());
  m.gauge("tripleC_serve_capacity_cores",
          "Total core capacity available to admission")
      .set(admission_.capacity_cores());
}

void StreamServer::slot_loop() {
  for (;;) {
    Session* s = nullptr;
    i32 share = 0;
    {
      common::MutexLock lock(mutex_);
      for (;;) {
        s = pick_min_vtime();
        if (s != nullptr) break;
        bool any_open = false;
        for (const auto& sp : sessions_) {
          if (!sp->done) {
            any_open = true;
            break;
          }
        }
        if (!any_open) return;  // every stream served
        work_cv_.wait(mutex_, [this]() TC_REQUIRES(mutex_) {
          if (pick_min_vtime() != nullptr) return true;
          for (const auto& sp : sessions_) {
            if (!sp->done) return false;
          }
          return true;
        });
      }
      s->busy = true;
      // Weighted fair share of the pool, as seen by this stream's planner:
      // its instance budget scales with its weight, so a heavy stream
      // cannot starve the others even while it holds a slot.
      share = std::max(
          1, static_cast<i32>(std::floor(
                 static_cast<f64>(pool_.thread_count()) *
                 std::max(1e-9, s->config.weight) / active_weight())));
      s->pool_share = share;  // fleet_status() mirror
    }

    s->executor->set_pool_share(share);
    const i32 t = s->next_frame;
    const exec::ExecutedFrame frame = s->executor->step(t);

    {
      common::MutexLock lock(mutex_);
      s->busy = false;
      ++s->next_frame;
      // WFQ bookkeeping: virtual time advances by the service received over
      // the stream's weight; the next slot goes to the smallest vtime.
      s->vtime += frame.measured_host_ms / std::max(1e-9, s->config.weight);
      s->latencies_ms.push_back(frame.measured_host_ms);
      if (frame.deadline_miss) ++s->deadline_misses;
      if (s->slo != nullptr) {
        s->slo->observe_frame(t, frame.measured_host_ms, frame.deadline_miss);
      }
      if (fleet_slo_ != nullptr) {
        fleet_slo_->observe_frame(narrow<i32>(fleet_frame_++),
                                  frame.measured_host_ms, frame.deadline_miss);
      }
      if (s->next_frame >= s->config.frames) {
        s->done = true;
        retire(*s);
      }
    }
    work_cv_.notify_all();
  }
}

void StreamServer::drain() {
  i32 slots = 0;
  {
    common::MutexLock lock(mutex_);
    if (draining_) return;
    draining_ = true;
    i32 open = 0;
    for (const auto& s : sessions_) {
      if (!s->done) ++open;
    }
    if (open == 0) return;
    slots = std::clamp(std::min(config_.max_concurrent_streams, open), 1,
                       narrow<i32>(pool_.thread_count()));
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<usize>(slots));
  for (i32 i = 0; i < slots; ++i) {
    workers.emplace_back([this] { slot_loop(); });
  }
  for (std::thread& w : workers) w.join();
  common::MutexLock lock(mutex_);
  draining_ = false;
  update_fleet_gauges();
}

StreamReport StreamServer::report(i32 id) const {
  common::MutexLock lock(mutex_);
  return reports_.at(static_cast<usize>(id));
}

std::vector<StreamReport> StreamServer::reports() const {
  common::MutexLock lock(mutex_);
  return reports_;
}

FleetReport StreamServer::fleet() const {
  common::MutexLock lock(mutex_);
  FleetReport f;
  f.submitted = narrow<i32>(reports_.size());
  std::vector<f64> all_latencies;
  for (const StreamReport& r : reports_) {
    if (r.served) {
      ++f.admitted;
    } else if (r.decision.verdict == AdmissionVerdict::Reject) {
      ++f.rejected;
    }
    if (r.decision.verdict == AdmissionVerdict::Queue) ++f.queued;
    f.frames += r.frames;
    f.deadline_misses += r.deadline_misses;
  }
  for (const auto& s : sessions_) {
    all_latencies.insert(all_latencies.end(), s->latencies_ms.begin(),
                         s->latencies_ms.end());
  }
  if (!all_latencies.empty()) {
    f.p50_ms = percentile(all_latencies, 50.0);
    f.p99_ms = percentile(all_latencies, 99.0);
  }
  f.miss_rate =
      f.frames > 0 ? static_cast<f64>(f.deadline_misses) / f.frames : 0.0;
  f.capacity_cores = admission_.capacity_cores();
  f.peak_committed_cores = peak_committed_cores_;
  f.registry_publishes = registry_.publishes();
  f.registry_hits = registry_.hits();
  return f;
}

FleetStatus StreamServer::fleet_status() const {
  common::MutexLock lock(mutex_);
  FleetStatus fs;
  fs.draining = draining_;
  fs.capacity_cores = admission_.capacity_cores();
  fs.committed_cores = admission_.committed_cores();
  fs.fleet_frames = fleet_frame_;
  if (fleet_slo_ != nullptr) fs.fleet_slo = fleet_slo_->window_snapshot();

  fs.streams.reserve(reports_.size());
  for (const StreamReport& r : reports_) {
    StreamStatus st;
    st.id = r.id;
    st.name = r.name;
    st.verdict = to_string(r.decision.verdict);
    st.weight = r.weight;
    st.deadline_ms = r.deadline_ms;
    st.frames_total = stream_configs_[static_cast<usize>(r.id)].frames;

    const Session* session = nullptr;
    for (const auto& s : sessions_) {
      if (s->id == r.id) {
        session = s.get();
        break;
      }
    }
    if (session != nullptr) {
      st.state = session->done ? "done" : "active";
      session->done ? ++fs.done : ++fs.active;
      st.vtime = session->vtime;
      st.pool_share = session->pool_share;
      st.frames_done = session->next_frame;
      st.deadline_misses = session->deadline_misses;
      if (session->slo != nullptr) st.slo = session->slo->window_snapshot();
      // Rolling CPU calibration from the stream's own ledger (the ledger
      // has its own mutex; lock order server -> ledger matches slot_loop).
      if (const obs::PredictionLedger* ledger = session->executor->ledger()) {
        obs::CalibrationWindow window(0);
        for (const obs::LedgerRow& row : ledger->recent(128)) {
          const std::optional<f64> err =
              row.error_pct(obs::LedgerResource::CpuMs);
          if (err.has_value()) window.add(*err);
        }
        const obs::CalibrationWindow::Stats cal = window.stats();
        st.calibration_samples = cal.samples;
        st.cpu_bias_pct = cal.bias_pct;
        st.cpu_p95_ape_pct = cal.p95_ape_pct;
      }
    } else if (r.decision.verdict == AdmissionVerdict::Reject) {
      st.state = "rejected";
      ++fs.rejected;
    } else {
      st.state = "queued";
      ++fs.queued;
    }
    fs.streams.push_back(std::move(st));
  }
  return fs;
}

namespace {

std::string fmt_f64(f64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_window(std::string& out, const obs::SloMonitor::WindowStats& w) {
  out += "{\"frames\":" + std::to_string(w.frames) +
         ",\"miss_rate\":" + fmt_f64(w.miss_rate) +
         ",\"p50_ms\":" + fmt_f64(w.p50) + ",\"p99_ms\":" + fmt_f64(w.p99) +
         "}";
}

}  // namespace

std::string StreamServer::fleet_status_json() const {
  const FleetStatus fs = fleet_status();
  std::string out = "{\"ready\":true";
  out += ",\"draining\":" + std::string(fs.draining ? "true" : "false");
  out += ",\"capacity_cores\":" + fmt_f64(fs.capacity_cores);
  out += ",\"committed_cores\":" + fmt_f64(fs.committed_cores);
  out += ",\"active\":" + std::to_string(fs.active);
  out += ",\"done\":" + std::to_string(fs.done);
  out += ",\"queued\":" + std::to_string(fs.queued);
  out += ",\"rejected\":" + std::to_string(fs.rejected);
  out += ",\"fleet_frames\":" + std::to_string(fs.fleet_frames);
  out += ",\"fleet_slo\":";
  append_window(out, fs.fleet_slo);
  out += ",\"streams\":[";
  for (usize i = 0; i < fs.streams.size(); ++i) {
    const StreamStatus& st = fs.streams[i];
    if (i > 0) out += ',';
    out += "{\"id\":" + std::to_string(st.id);
    out += ",\"name\":\"" + common::json_escape(st.name) + "\"";
    out += ",\"state\":\"" + std::string(st.state) + "\"";
    out += ",\"verdict\":\"" + std::string(st.verdict) + "\"";
    out += ",\"weight\":" + fmt_f64(st.weight);
    out += ",\"deadline_ms\":" + fmt_f64(st.deadline_ms);
    out += ",\"vtime_ms\":" + fmt_f64(st.vtime);
    out += ",\"pool_share\":" + std::to_string(st.pool_share);
    out += ",\"frames_done\":" + std::to_string(st.frames_done);
    out += ",\"frames_total\":" + std::to_string(st.frames_total);
    out += ",\"deadline_misses\":" + std::to_string(st.deadline_misses);
    out += ",\"slo\":";
    append_window(out, st.slo);
    out += ",\"calibration\":{\"samples\":" +
           std::to_string(st.calibration_samples) +
           ",\"cpu_bias_pct\":" + fmt_f64(st.cpu_bias_pct) +
           ",\"cpu_p95_ape_pct\":" + fmt_f64(st.cpu_p95_ape_pct) + "}";
    out += "}";
  }
  out += "]}";
  return out;
}

std::vector<obs::LedgerRow> StreamServer::ledger_rows(usize per_stream) const {
  common::MutexLock lock(mutex_);
  std::vector<obs::LedgerRow> rows;
  for (const auto& s : sessions_) {
    const obs::PredictionLedger* ledger = s->executor->ledger();
    if (ledger == nullptr) continue;
    std::vector<obs::LedgerRow> part = ledger->recent(per_stream);
    rows.insert(rows.end(), part.begin(), part.end());
  }
  return rows;
}

}  // namespace tc::serve
