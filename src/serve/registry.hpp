// Warm-start registry: trained predictor stacks shared across streams.
//
// The paper motivates prediction with mode-transition delay — a predictor
// that has to relearn after every change serves its first frames blind.  At
// fleet scale the same waste recurs per *stream*: every admitted stream
// would cold-start its EWMA filters and Markov chain even when an identical
// stream (same resolution, same pipeline switches) just retired.  The
// registry closes that loop: StreamServer publishes a PredictorSnapshot
// when a stream retires, keyed by its *scenario class* (the configuration
// facets that determine computation-time statistics), and clones the best
// snapshot into newly admitted same-class streams.  Warm streams also skip
// the admission probe — the snapshot itself prices them.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "app/stentboost.hpp"
#include "common/sync.hpp"
#include "exec/executor.hpp"

namespace tc::serve {

/// Thread-safe snapshot store, keyed by scenario-class string.
class PredictorRegistry {
 public:
  /// Scenario class of an application config: the facets that shape the
  /// computation-time distribution (frame geometry, granularity lock, ROI
  /// override).  Streams of one class are statistically interchangeable.
  [[nodiscard]] static std::string class_key(
      const app::StentBoostConfig& config);

  /// Publish a snapshot for `klass`.  Kept only when it is trained on at
  /// least as many frames as the stored one (better-trained wins; ties go
  /// to the newcomer, whose statistics are fresher).
  void publish(const std::string& klass, exec::PredictorSnapshot snapshot)
      TC_EXCLUDES(mutex_);

  /// Best snapshot of `klass`, or nullopt (then the stream cold-starts).
  [[nodiscard]] std::optional<exec::PredictorSnapshot> lookup(
      const std::string& klass) const TC_EXCLUDES(mutex_);

  [[nodiscard]] usize size() const TC_EXCLUDES(mutex_);
  [[nodiscard]] u64 publishes() const TC_EXCLUDES(mutex_);
  [[nodiscard]] u64 hits() const TC_EXCLUDES(mutex_);
  [[nodiscard]] u64 misses() const TC_EXCLUDES(mutex_);

 private:
  mutable common::Mutex mutex_;
  std::vector<std::pair<std::string, exec::PredictorSnapshot>> snapshots_
      TC_GUARDED_BY(mutex_);
  u64 publishes_ TC_GUARDED_BY(mutex_) = 0;
  mutable u64 hits_ TC_GUARDED_BY(mutex_) = 0;
  mutable u64 misses_ TC_GUARDED_BY(mutex_) = 0;
};

}  // namespace tc::serve
