// Multi-stream serving layer: one runtime, N fluoroscopy streams.
//
// The paper sizes one StentBoost pipeline against one platform; an
// interventional suite runs several exam rooms against one reconstruction
// server.  The StreamServer scales the Triple-C loop to that setting
// without duplicating it: every stream keeps the full predict → partition →
// execute → feed-back cycle (its own exec::Executor with per-stream
// deadline, degradation ladder and prediction ledger), while the server
// owns what must be shared —
//
//   * one plat::ThreadPool executing every stream's stripe/batch instances
//     (optionally affinity-pinned, ServeConfig::pin_threads);
//   * prediction-driven admission (serve::AdmissionController): a stream is
//     admitted, queued, or rejected against the residual core and
//     memory-bus budgets *before* it runs, priced by a predictor snapshot
//     or a short probe;
//   * weighted-fair scheduling: scheduler slots repeatedly step the ready
//     stream with the lowest virtual time (vtime += measured_ms / weight),
//     and each stream's planner sees only its weighted share of the pool
//     (exec::Executor::set_pool_share → rt::budget_for_plan), so a
//     heavyweight stream cannot starve the others' instance budgets;
//   * the warm-start registry (serve::PredictorRegistry): retiring streams
//     publish their trained predictor stacks, newly admitted same-class
//     streams clone them and serve calibrated from frame 0;
//   * aggregate SLOs: per-stream and fleet-wide p99/miss-rate via
//     obs::SloMonitor (stream-prefixed objective names), fleet gauges in
//     the MetricsRegistry, and StreamAdmit/StreamReject/StreamRetire
//     events in the flight recorder.
//
// Usage: submit() every stream (admission decides immediately), then
// drain() once — it serves all admitted streams to completion, promoting
// queued streams as capacity retires.  All public methods are safe to call
// from one controlling thread; drain() spawns its own scheduler slots.
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/stentboost.hpp"
#include "common/sync.hpp"
#include "exec/executor.hpp"
#include "obs/drift.hpp"
#include "obs/status.hpp"
#include "obs/telemetry_server.hpp"
#include "platform/thread_pool.hpp"
#include "serve/admission.hpp"
#include "serve/registry.hpp"

namespace tc::serve {

/// One stream's submission: its application, deadline and fair-share weight.
struct StreamConfig {
  app::StentBoostConfig app;
  /// Per-frame deadline of this stream; must be > 0 (streams are priced in
  /// cores against it).
  f64 deadline_ms = 0.0;
  /// Weighted-fair share weight (relative; > 0).
  f64 weight = 1.0;
  /// Frames the stream serves before retiring.
  i32 frames = 64;
  exec::DeadlinePolicy policy = exec::DeadlinePolicy::Degrade;
  i32 max_stripes_per_task = 4;
  /// Per-stream prediction ledger (rows tagged with the stream id).
  bool ledger = true;
  /// Executor warm-up length for cold streams (Markov fitting window).
  i32 warmup_frames = 6;
  /// Display name ("s<id>" when empty).
  std::string name;
};

struct ServeConfig {
  /// Shared pool size (0 = hardware concurrency).
  i32 pool_threads = 0;
  /// Pin pool workers round-robin to cores (no-op off Linux).
  bool pin_threads = false;
  /// Scheduler slots: streams stepped concurrently at any instant.
  i32 max_concurrent_streams = 4;
  AdmissionConfig admission;
  /// Early-frame window of the warm-vs-cold calibration comparison.
  i32 early_frames = 12;
  // Fleet/per-stream SLO parameters (thresholds derive from deadlines).
  f64 slo_miss_rate = 0.25;
  f64 slo_p99_factor = 1.50;
  i32 slo_window = 64;
  i32 slo_min_frames = 16;
  /// In-process HTTP ops endpoint (obs/telemetry_server.hpp); off by
  /// default.  When enabled the server starts with the StreamServer,
  /// readiness flips once construction completes, and /streams serves
  /// fleet_status_json().
  obs::TelemetryConfig telemetry;
};

/// Everything known about one submitted stream after drain().
struct StreamReport {
  i32 id = -1;
  std::string name;
  std::string class_key;
  AdmissionDecision decision;
  bool warm_started = false;
  f64 weight = 1.0;
  f64 deadline_ms = 0.0;
  /// The stream actually ran (admitted directly or promoted from the queue).
  bool served = false;
  i32 frames = 0;
  i32 deadline_misses = 0;
  i32 degraded_frames = 0;
  i32 repartitions = 0;
  f64 mean_ms = 0.0;
  f64 p50_ms = 0.0;
  f64 p99_ms = 0.0;
  f64 miss_rate = 0.0;
  /// Mean CPU absolute percentage error over the first early_frames ledger
  /// rows — the warm-vs-cold calibration comparison (-1 = no ledger data).
  f64 early_ape_pct = -1.0;
};

/// Live view of one submitted stream (fleet_status(); safe to take at any
/// time, including mid-drain from telemetry handler threads).
struct StreamStatus {
  i32 id = -1;
  std::string name;
  /// "active" | "done" | "queued" | "rejected".
  std::string state;
  /// Admission verdict at submission time ("admit" / "queue" / "reject").
  std::string verdict;
  f64 weight = 1.0;
  f64 deadline_ms = 0.0;
  /// Weighted-fair virtual time (ms of service / weight; 0 until served).
  f64 vtime = 0.0;
  /// Pool threads the stream's planner was last granted (0 until stepped).
  i32 pool_share = 0;
  i32 frames_done = 0;
  i32 frames_total = 0;
  i32 deadline_misses = 0;
  /// Per-stream SLO sliding-window aggregates (zeros before any frame).
  obs::SloMonitor::WindowStats slo;
  /// Rolling CPU calibration over the stream ledger's most recent rows
  /// (samples == 0 when the stream has no settled ledger data).
  u64 calibration_samples = 0;
  f64 cpu_bias_pct = 0.0;
  f64 cpu_p95_ape_pct = 0.0;
};

/// Live fleet snapshot backing the telemetry plane's /streams endpoint.
struct FleetStatus {
  bool draining = false;
  f64 capacity_cores = 0.0;
  f64 committed_cores = 0.0;
  i32 active = 0;
  i32 done = 0;
  i32 queued = 0;
  i32 rejected = 0;
  i64 fleet_frames = 0;
  /// Fleet-wide SLO window (zeros before the first admitted stream).
  obs::SloMonitor::WindowStats fleet_slo;
  std::vector<StreamStatus> streams;
};

struct FleetReport {
  i32 submitted = 0;
  i32 admitted = 0;  ///< includes streams promoted from the queue
  i32 queued = 0;    ///< verdict at submission time
  i32 rejected = 0;
  i64 frames = 0;
  i64 deadline_misses = 0;
  f64 miss_rate = 0.0;
  f64 p50_ms = 0.0;
  f64 p99_ms = 0.0;
  f64 capacity_cores = 0.0;
  f64 peak_committed_cores = 0.0;
  u64 registry_publishes = 0;
  u64 registry_hits = 0;
};

class StreamServer {
 public:
  explicit StreamServer(ServeConfig config = {});
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Submit one stream: demand is estimated (warm snapshot or cold probe)
  /// and the admission verdict issued immediately.  Admitted streams get a
  /// live session; queued streams wait for capacity to retire during
  /// drain(); rejected streams never run.  Returns the stream id.
  i32 submit(StreamConfig stream) TC_EXCLUDES(mutex_);

  /// Serve every admitted stream to completion on the scheduler slots,
  /// promoting queued streams as capacity frees.  Call once, after all
  /// submissions.
  void drain() TC_EXCLUDES(mutex_);

  [[nodiscard]] StreamReport report(i32 id) const TC_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<StreamReport> reports() const TC_EXCLUDES(mutex_);
  [[nodiscard]] FleetReport fleet() const TC_EXCLUDES(mutex_);

  /// Live fleet snapshot — one short hold of the server mutex, safe to call
  /// concurrently with drain() (the telemetry handlers do, at scrape rate).
  [[nodiscard]] FleetStatus fleet_status() const TC_EXCLUDES(mutex_);
  /// fleet_status() rendered as the /streams JSON document.
  [[nodiscard]] std::string fleet_status_json() const TC_EXCLUDES(mutex_);
  /// Most recent settled ledger rows across every session, merged in stream
  /// order (rows carry their stream id); `per_stream` bounds the rows taken
  /// from each session's ledger.
  [[nodiscard]] std::vector<obs::LedgerRow> ledger_rows(
      usize per_stream = 512) const TC_EXCLUDES(mutex_);

  /// Telemetry plane (null unless ServeConfig::telemetry.enabled).
  [[nodiscard]] obs::TelemetryServer* telemetry() { return telemetry_.get(); }
  [[nodiscard]] obs::StatusAggregator& status() { return status_agg_; }

  [[nodiscard]] PredictorRegistry& registry() { return registry_; }
  [[nodiscard]] plat::ThreadPool& pool() { return pool_; }
  [[nodiscard]] const ServeConfig& config() const { return config_; }
  /// Fleet-wide SLO monitor (null before the first admitted stream).
  [[nodiscard]] obs::SloMonitor* fleet_slo() { return fleet_slo_.get(); }

 private:
  /// One admitted stream being served.
  struct Session {
    i32 id = -1;
    StreamConfig config;
    StreamDemand demand;
    std::unique_ptr<exec::Executor> executor;
    /// Per-stream SLO monitor, objective names prefixed "<name>/" so
    /// several streams coexist in one MetricsRegistry.
    std::unique_ptr<obs::SloMonitor> slo;
    f64 vtime = 0.0;  ///< weighted-fair virtual time (ms of service/weight)
    i32 next_frame = 0;
    bool busy = false;  ///< currently stepped by a scheduler slot
    bool done = false;
    std::vector<f64> latencies_ms;
    /// Mirrors kept under the server mutex for fleet_status(): executor
    /// internals (stats, pool share) are only safe to read from the slot
    /// that steps the stream, so the slot copies them here per frame.
    i32 pool_share = 0;
    i32 deadline_misses = 0;
  };

  /// Build the session for an admitted stream (executor on the shared pool,
  /// warm start, per-stream SLO monitor) and commit its demand.
  void activate(i32 id) TC_REQUIRES(mutex_);
  /// Retire a finished session: publish its predictor snapshot, release its
  /// demand, finalize its report, promote queued streams that now fit.
  void retire(Session& s) TC_REQUIRES(mutex_);
  void update_fleet_gauges() TC_REQUIRES(mutex_);
  /// Scheduler-slot loop: repeatedly step the min-vtime ready session.
  void slot_loop() TC_EXCLUDES(mutex_);
  [[nodiscard]] Session* pick_min_vtime() TC_REQUIRES(mutex_);
  [[nodiscard]] f64 active_weight() const TC_REQUIRES(mutex_);
  void finalize_report(Session& s) TC_REQUIRES(mutex_);

  ServeConfig config_;
  plat::ThreadPool pool_;
  AdmissionController admission_ TC_GUARDED_BY(mutex_);
  PredictorRegistry registry_;

  mutable common::Mutex mutex_;
  common::CondVar work_cv_;
  std::vector<std::unique_ptr<Session>> sessions_ TC_GUARDED_BY(mutex_);
  /// Stream ids queued at submission, FIFO promotion order.
  std::vector<i32> wait_queue_ TC_GUARDED_BY(mutex_);
  std::vector<StreamReport> reports_ TC_GUARDED_BY(mutex_);
  /// Streams submitted with StreamConfig retained for queued promotion.
  std::vector<StreamConfig> stream_configs_ TC_GUARDED_BY(mutex_);
  f64 peak_committed_cores_ TC_GUARDED_BY(mutex_) = 0.0;
  bool draining_ TC_GUARDED_BY(mutex_) = false;

  std::unique_ptr<obs::SloMonitor> fleet_slo_;
  /// Monotonic frame counter feeding the fleet SLO monitor.
  i64 fleet_frame_ TC_GUARDED_BY(mutex_) = 0;

  /// Telemetry plane, declared last so it is destroyed *first*: the HTTP
  /// handler threads must stop before the state their providers snapshot.
  obs::StatusAggregator status_agg_;
  std::unique_ptr<obs::TelemetryServer> telemetry_;
};

}  // namespace tc::serve
