// Prediction-driven admission control for the multi-stream serving layer.
//
// The paper sizes ONE application against ONE platform; serving N
// fluoroscopy streams from one runtime turns that sizing question into an
// admission question: does the next stream's predicted resource usage fit
// the capacity the already-admitted streams leave over?  The controller
// answers with a typed verdict:
//
//   Admit  — predicted core and memory-bus demand fit the residual budget;
//   Queue  — the stream fits an *idle* server but not the current residual
//            (it can start once an admitted stream retires);
//   Reject — the stream cannot be served even alone: its demand exceeds
//            the whole capacity, or no plan in the runtime's search chain
//            (rt::enumerate_plan_candidates) makes its frames fit the
//            deadline on this platform.
//
// Demand is expressed in *cores*: a stream predicted to need S ms of
// serial-equivalent work per frame against a D ms deadline occupies S/D
// cores of sustained throughput (stripe parallelism moves latency, not
// area).  The estimate comes from a trained predictor snapshot when the
// registry has one for the stream's class (warm admission — no probe), or
// from a short serial probe of a throwaway application copy otherwise,
// mirroring the executor's startup audit gate.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "app/stentboost.hpp"
#include "exec/executor.hpp"
#include "platform/spec.hpp"

namespace tc::serve {

enum class AdmissionVerdict : i32 {
  Admit = 0,
  Queue,
  Reject,
};

[[nodiscard]] const char* to_string(AdmissionVerdict v);

/// Predicted steady-state resource usage of one stream.
struct StreamDemand {
  /// Predicted serial-equivalent cost per frame, milliseconds.
  f64 frame_ms = 0.0;
  f64 deadline_ms = 0.0;
  /// Sustained cores occupied: frame_ms / deadline_ms.
  f64 cores = 0.0;
  /// Predicted per-frame bus traffic (cache / memory / I/O MB, Fig. 4).
  std::array<f64, 3> bus_mb_per_frame{};
  /// Memory-bus bandwidth at the stream's frame rate, MB/s.
  f64 memory_bus_mbps = 0.0;
  /// Cheapest plan of the runtime search chain that fits the deadline when
  /// the stream runs alone (estimated ms; 0 when no forecast was available).
  f64 best_plan_ms = 0.0;
  /// False when even the widest candidate plan misses the deadline.
  bool plan_feasible = true;
  /// Demand came from a registry snapshot instead of a probe run.
  bool warm = false;
};

struct AdmissionConfig {
  /// Fraction of the pool's cores admission may commit (the rest absorbs
  /// stripe overhead, scheduler noise and prediction error).
  f64 cpu_headroom = 0.85;
  /// Fraction of the platform memory-bus bandwidth admission may commit.
  f64 bus_headroom = 0.80;
  /// Serial probe length for cold streams (throwaway application copy).
  i32 probe_frames = 6;
  /// Floor on a stream's core demand (a probe can measure near-zero on an
  /// idle host; committing 0 cores would admit unboundedly many streams).
  f64 min_cores = 0.02;
};

/// One admission decision with the numbers behind it.
struct AdmissionDecision {
  AdmissionVerdict verdict = AdmissionVerdict::Reject;
  StreamDemand demand;
  /// Core capacity left before this stream (capacity - committed).
  f64 residual_cores = 0.0;
  f64 capacity_cores = 0.0;
  std::string reason;
};

/// Tracks committed capacity and issues verdicts.  Not thread-safe: the
/// StreamServer serializes admission under its own mutex.
class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, i32 pool_threads,
                      plat::PlatformSpec spec);

  /// Predict the stream's demand: from `snapshot` when it is trained (warm,
  /// no execution), else by serially probing a throwaway copy of the
  /// application for probe_frames frames.  Also walks the runtime's plan
  /// search chain to decide single-stream deadline feasibility.
  [[nodiscard]] StreamDemand estimate_demand(
      const app::StentBoostConfig& app_config, f64 deadline_ms,
      i32 max_stripes_per_task,
      const exec::PredictorSnapshot* snapshot) const;

  /// Verdict for `demand` against the current residual budgets.  Pure —
  /// commit() makes an Admit stick.
  [[nodiscard]] AdmissionDecision decide(const StreamDemand& demand) const;

  void commit(const StreamDemand& demand);
  void release(const StreamDemand& demand);

  [[nodiscard]] f64 capacity_cores() const { return capacity_cores_; }
  [[nodiscard]] f64 committed_cores() const { return committed_cores_; }
  [[nodiscard]] f64 residual_cores() const {
    return capacity_cores_ - committed_cores_;
  }
  [[nodiscard]] f64 capacity_bus_mbps() const { return capacity_bus_mbps_; }
  [[nodiscard]] f64 committed_bus_mbps() const { return committed_bus_mbps_; }
  [[nodiscard]] i32 admitted_streams() const { return admitted_streams_; }
  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  i32 pool_threads_;
  f64 capacity_cores_;
  f64 capacity_bus_mbps_;
  f64 committed_cores_ = 0.0;
  f64 committed_bus_mbps_ = 0.0;
  i32 admitted_streams_ = 0;
};

}  // namespace tc::serve
