#include "serve/registry.hpp"

#include <utility>

namespace tc::serve {

std::string PredictorRegistry::class_key(const app::StentBoostConfig& config) {
  std::string key = std::to_string(config.sequence.width) + "x" +
                    std::to_string(config.sequence.height);
  if (config.force_full_frame) key += "/ff";
  if (config.roi_side_override > 0) {
    key += "/roi" + std::to_string(config.roi_side_override);
  }
  return key;
}

void PredictorRegistry::publish(const std::string& klass,
                                exec::PredictorSnapshot snapshot) {
  if (!snapshot.trained()) return;
  common::MutexLock lock(mutex_);
  ++publishes_;
  for (auto& [key, stored] : snapshots_) {
    if (key != klass) continue;
    if (snapshot.trained_frames >= stored.trained_frames) {
      stored = std::move(snapshot);
    }
    return;
  }
  snapshots_.emplace_back(klass, std::move(snapshot));
}

std::optional<exec::PredictorSnapshot> PredictorRegistry::lookup(
    const std::string& klass) const {
  common::MutexLock lock(mutex_);
  for (const auto& [key, stored] : snapshots_) {
    if (key == klass) {
      ++hits_;
      return stored;
    }
  }
  ++misses_;
  return std::nullopt;
}

usize PredictorRegistry::size() const {
  common::MutexLock lock(mutex_);
  return snapshots_.size();
}

u64 PredictorRegistry::publishes() const {
  common::MutexLock lock(mutex_);
  return publishes_;
}

u64 PredictorRegistry::hits() const {
  common::MutexLock lock(mutex_);
  return hits_;
}

u64 PredictorRegistry::misses() const {
  common::MutexLock lock(mutex_);
  return misses_;
}

}  // namespace tc::serve
