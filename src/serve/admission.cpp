#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "runtime/partition.hpp"
#include "tripleC/bandwidth_model.hpp"

namespace tc::serve {

const char* to_string(AdmissionVerdict v) {
  switch (v) {
    case AdmissionVerdict::Admit:
      return "admit";
    case AdmissionVerdict::Queue:
      return "queue";
    case AdmissionVerdict::Reject:
      return "reject";
  }
  return "unknown";
}

namespace {

/// Walk the runtime's plan search chain for the forecast and return the
/// cheapest estimated latency any candidate achieves — the single-stream
/// feasibility bound (rt::choose_plan can never do better than this chain).
f64 best_candidate_ms(std::span<const rt::NodeForecast> forecast,
                      i32 max_stripes_per_task, i32 pool_threads) {
  const std::vector<rt::PlanCandidate> chain = rt::enumerate_plan_candidates(
      exec::host_cost_params(), forecast, max_stripes_per_task, pool_threads);
  f64 best = 0.0;
  for (const rt::PlanCandidate& c : chain) {
    if (best <= 0.0 || c.estimated_ms < best) best = c.estimated_ms;
  }
  return best;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config,
                                         i32 pool_threads,
                                         plat::PlatformSpec spec)
    : config_(config),
      pool_threads_(std::max(1, pool_threads)),
      capacity_cores_(static_cast<f64>(std::max(1, pool_threads)) *
                      config.cpu_headroom),
      capacity_bus_mbps_(spec.memory_bus_gbps * 1000.0 * config.bus_headroom) {}

StreamDemand AdmissionController::estimate_demand(
    const app::StentBoostConfig& app_config, f64 deadline_ms,
    i32 max_stripes_per_task, const exec::PredictorSnapshot* snapshot) const {
  StreamDemand d;
  d.deadline_ms = deadline_ms;

  std::vector<rt::NodeForecast> forecast(app::kNodeCount);
  if (snapshot != nullptr && snapshot->trained()) {
    // Warm admission: the registry's trained stack prices the stream with no
    // execution at all — skipping the probe is the first cold-start saving.
    d.warm = true;
    d.frame_ms = snapshot->mean_frame_ms();
    d.bus_mb_per_frame = snapshot->bus_mb_per_frame;
    for (usize node = 0; node < app::kNodeCount; ++node) {
      forecast[node].active = snapshot->node_primed[node];
      forecast[node].serial_ms = snapshot->node_serial_ms[node];
      forecast[node].data_parallel = app::node_data_parallel(narrow<i32>(node));
    }
  } else {
    // Cold admission: serially probe a throwaway copy of the application
    // (same pattern as the executor's startup audit gate — the real stream
    // keeps its pristine inter-frame state).
    app::StentBoostApp probe(app_config);
    const i32 frames = std::max(1, config_.probe_frames);
    std::array<f64, app::kNodeCount> node_ms_sum{};
    std::array<i32, app::kNodeCount> node_runs{};
    const u64 l2_slice = app_config.platform.l2_bytes;
    std::array<bool, app::kNodeCount> is_source{};
    std::array<bool, app::kNodeCount> is_sink{};
    is_source.fill(true);
    is_sink.fill(true);
    for (const graph::Edge& e : probe.graph().edges()) {
      is_sink[static_cast<usize>(e.from)] = false;
      is_source[static_cast<usize>(e.to)] = false;
    }
    f64 frame_ms_sum = 0.0;
    for (i32 t = 0; t < frames; ++t) {
      const graph::FrameRecord record = probe.process_frame(t);
      for (const graph::TaskExecution& exec : record.tasks) {
        if (!exec.executed) continue;
        const auto node = static_cast<usize>(exec.node);
        node_ms_sum[node] += exec.host_ms;
        ++node_runs[node];
        frame_ms_sum += exec.host_ms;
        const model::NodeBusTraffic bus = model::attribute_node_buses(
            exec.work, is_source[node], is_sink[node], l2_slice);
        d.bus_mb_per_frame[0] += bus.cache_mb / frames;
        d.bus_mb_per_frame[1] += bus.memory_mb / frames;
        d.bus_mb_per_frame[2] += bus.io_mb / frames;
      }
    }
    d.frame_ms = frame_ms_sum / frames;
    for (usize node = 0; node < app::kNodeCount; ++node) {
      forecast[node].active = node_runs[node] > 0;
      forecast[node].serial_ms =
          node_runs[node] > 0 ? node_ms_sum[node] / node_runs[node] : 0.0;
      forecast[node].data_parallel = app::node_data_parallel(narrow<i32>(node));
    }
  }

  d.best_plan_ms =
      best_candidate_ms(forecast, max_stripes_per_task, pool_threads_);
  d.plan_feasible =
      deadline_ms > 0.0 && d.best_plan_ms > 0.0 && d.best_plan_ms <= deadline_ms;
  if (deadline_ms > 0.0) {
    d.cores = std::max(config_.min_cores, d.frame_ms / deadline_ms);
    d.memory_bus_mbps = d.bus_mb_per_frame[1] * (1000.0 / deadline_ms);
  }
  return d;
}

AdmissionDecision AdmissionController::decide(
    const StreamDemand& demand) const {
  AdmissionDecision decision;
  decision.demand = demand;
  decision.residual_cores = residual_cores();
  decision.capacity_cores = capacity_cores_;

  if (demand.deadline_ms <= 0.0) {
    decision.verdict = AdmissionVerdict::Reject;
    decision.reason = "stream has no deadline";
    return decision;
  }
  if (!demand.plan_feasible) {
    decision.verdict = AdmissionVerdict::Reject;
    decision.reason = "no candidate plan fits the deadline even alone (best " +
                      std::to_string(demand.best_plan_ms) + " ms vs " +
                      std::to_string(demand.deadline_ms) + " ms)";
    return decision;
  }
  if (demand.cores > capacity_cores_) {
    decision.verdict = AdmissionVerdict::Reject;
    decision.reason = "core demand " + std::to_string(demand.cores) +
                      " exceeds total capacity " +
                      std::to_string(capacity_cores_);
    return decision;
  }
  if (demand.memory_bus_mbps > capacity_bus_mbps_) {
    decision.verdict = AdmissionVerdict::Reject;
    decision.reason = "memory-bus demand " +
                      std::to_string(demand.memory_bus_mbps) +
                      " MB/s exceeds bus capacity " +
                      std::to_string(capacity_bus_mbps_) + " MB/s";
    return decision;
  }
  if (demand.cores > residual_cores()) {
    decision.verdict = AdmissionVerdict::Queue;
    decision.reason = "core demand " + std::to_string(demand.cores) +
                      " exceeds residual " + std::to_string(residual_cores());
    return decision;
  }
  if (committed_bus_mbps_ + demand.memory_bus_mbps > capacity_bus_mbps_) {
    decision.verdict = AdmissionVerdict::Queue;
    decision.reason = "memory-bus demand exceeds residual bandwidth";
    return decision;
  }
  decision.verdict = AdmissionVerdict::Admit;
  decision.reason = "fits residual budget";
  return decision;
}

void AdmissionController::commit(const StreamDemand& demand) {
  committed_cores_ += demand.cores;
  committed_bus_mbps_ += demand.memory_bus_mbps;
  ++admitted_streams_;
}

void AdmissionController::release(const StreamDemand& demand) {
  committed_cores_ = std::max(0.0, committed_cores_ - demand.cores);
  committed_bus_mbps_ =
      std::max(0.0, committed_bus_mbps_ - demand.memory_bus_mbps);
  admitted_streams_ = std::max(0, admitted_streams_ - 1);
}

}  // namespace tc::serve
