// Per-invocation work accounting emitted by every pipeline task.
//
// The platform cost model (src/platform) converts a WorkReport into simulated
// execution time on the paper's Fig.-4 machine; the Triple-C memory and
// bandwidth models (src/tripleC) consume the buffer-size fields (Table 1 of
// the paper) and the byte-traffic fields.
#pragma once

#include <string>

#include "common/types.hpp"

namespace tc::img {

struct WorkReport {
  /// Arithmetic operations executed on pixel arrays (multiply-accumulates,
  /// comparisons, ...).  This is the dominant computation-time driver.
  u64 pixel_ops = 0;

  /// Operations on extracted feature data (candidate scoring, couple
  /// matching, path following).  Cheaper per item but highly data-dependent.
  u64 feature_ops = 0;

  /// Bytes read from / written to image buffers during the invocation.
  u64 bytes_read = 0;
  u64 bytes_written = 0;

  /// External buffer requirements of the invocation, as in Table 1:
  /// input buffers consumed, intermediate working storage, output produced.
  u64 input_bytes = 0;
  u64 intermediate_bytes = 0;
  u64 output_bytes = 0;

  /// Number of feature-level work items processed (candidates, couples,
  /// path steps).  Recorded for analysis and scenario diagnosis.
  u64 items = 0;

  /// True when the task streams over pixel rows and can be stripe-partitioned
  /// (data parallel); false for feature-level tasks that need functional
  /// partitioning (paper §6).
  bool data_parallel = false;

  /// Largest per-pixel working-set footprint in bytes — the quantity the
  /// space-time buffer-occupation model compares against cache capacity.
  [[nodiscard]] u64 footprint_bytes() const {
    return input_bytes + intermediate_bytes + output_bytes;
  }

  WorkReport& operator+=(const WorkReport& o) {
    pixel_ops += o.pixel_ops;
    feature_ops += o.feature_ops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    input_bytes += o.input_bytes;
    intermediate_bytes += o.intermediate_bytes;
    output_bytes += o.output_bytes;
    items += o.items;
    return *this;
  }
};

[[nodiscard]] std::string to_string(const WorkReport& w);

}  // namespace tc::img
