#include "imaging/work_report.hpp"

#include <sstream>

namespace tc::img {

std::string to_string(const WorkReport& w) {
  std::ostringstream os;
  os << "WorkReport{pixel_ops=" << w.pixel_ops
     << ", feature_ops=" << w.feature_ops << ", bytes_read=" << w.bytes_read
     << ", bytes_written=" << w.bytes_written << ", in=" << w.input_bytes
     << "B, inter=" << w.intermediate_bytes << "B, out=" << w.output_bytes
     << "B, items=" << w.items
     << ", data_parallel=" << (w.data_parallel ? "yes" : "no") << "}";
  return os.str();
}

}  // namespace tc::img
