#include "imaging/synthetic.hpp"

#include <cmath>

namespace tc::img {
namespace {

constexpr f64 kPi = 3.14159265358979323846;

}  // namespace

AngioSequence::AngioSequence(const SequenceParams& params) : params_(params) {
  Pcg32 rng(params_.seed, /*stream=*/17);

  // Build a static vessel tree: each vessel is a smooth random polyline that
  // meanders across the field of view.
  const f64 w = static_cast<f64>(params_.width);
  const f64 h = static_cast<f64>(params_.height);
  for (i32 v = 0; v < params_.vessel_count; ++v) {
    Vessel vessel;
    vessel.half_width = rng.uniform(1.5, 4.0);
    f64 x = rng.uniform(0.1 * w, 0.9 * w);
    f64 y = rng.uniform(0.0, 0.15 * h);
    f64 heading = kPi / 2.0 + rng.uniform(-0.5, 0.5);
    const i32 steps = 60;
    const f64 step_len = h / static_cast<f64>(steps) * 1.2;
    for (i32 s = 0; s < steps; ++s) {
      vessel.points.push_back(Point2f{x, y});
      heading += rng.uniform(-0.25, 0.25);
      x += std::cos(heading) * step_len * 0.4;
      y += std::sin(heading) * step_len;
      if (y > 1.05 * h) break;
    }
    vessels_.push_back(std::move(vessel));
  }

  stent_angle_ = rng.uniform(0.0, kPi);

  // Pre-draw per-frame dropout flags so truth() and render() agree and each
  // frame stays independently renderable.
  dropout_.resize(static_cast<usize>(params_.frames), false);
  for (i32 t = 0; t < params_.frames; ++t) {
    dropout_[static_cast<usize>(t)] =
        rng.next_f64() < params_.marker_dropout_prob;
  }
}

Point2f AngioSequence::stent_center(i32 t) const {
  const f64 time_s = static_cast<f64>(t) / params_.fps;
  const MotionModel& m = params_.motion;
  const f64 cx = 0.5 * static_cast<f64>(params_.width);
  const f64 cy = 0.45 * static_cast<f64>(params_.height);
  f64 cardiac = std::sin(2.0 * kPi * m.heart_rate_hz * time_s);
  f64 breath = std::sin(2.0 * kPi * m.breathing_rate_hz * time_s);
  return Point2f{
      cx + m.cardiac_amplitude_px * cardiac + m.drift_px_per_frame * t,
      cy + m.breathing_amplitude_px * breath +
          0.35 * m.cardiac_amplitude_px * std::sin(4.0 * kPi * m.heart_rate_hz * time_s)};
}

f64 AngioSequence::contrast_at(i32 t) const {
  // Smooth bolus profile: raised-cosine ramp in over ~15 frames, plateau,
  // exponential washout.
  const f64 tin = static_cast<f64>(params_.contrast_in_frame);
  const f64 tout = static_cast<f64>(params_.contrast_out_frame);
  const f64 ramp = 15.0;
  const f64 tf = static_cast<f64>(t);
  if (tf < tin) return 0.0;
  f64 level;
  if (tf < tin + ramp) {
    level = 0.5 * (1.0 - std::cos(kPi * (tf - tin) / ramp));
  } else if (tf < tout) {
    level = 1.0;
  } else {
    level = std::exp(-(tf - tout) / 25.0);
  }
  return level;
}

FrameTruth AngioSequence::truth(i32 t) const {
  FrameTruth truth;
  Point2f c = stent_center(t);
  const f64 half = 0.5 * params_.marker_distance_px;
  // The marker couple wobbles slightly around the base orientation with the
  // cardiac phase (stent deforms with the vessel).
  const f64 time_s = static_cast<f64>(t) / params_.fps;
  f64 angle = stent_angle_ +
              0.08 * std::sin(2.0 * kPi * params_.motion.heart_rate_hz * time_s);
  truth.marker_a =
      Point2f{c.x - half * std::cos(angle), c.y - half * std::sin(angle)};
  truth.marker_b =
      Point2f{c.x + half * std::cos(angle), c.y + half * std::sin(angle)};
  truth.contrast_level = contrast_at(t);
  truth.markers_visible =
      t >= 0 && t < params_.frames ? !dropout_[static_cast<usize>(t)] : true;
  if (t > 0) {
    Point2f prev = stent_center(t - 1);
    truth.motion_dx = c.x - prev.x;
    truth.motion_dy = c.y - prev.y;
  }
  return truth;
}

void AngioSequence::stamp_line(ImageF32& opacity, Point2f a, Point2f b,
                               f64 half_width, f64 depth) const {
  // Walk the segment in sub-pixel steps and add a Gaussian cross profile.
  f64 dx = b.x - a.x;
  f64 dy = b.y - a.y;
  f64 len = std::sqrt(dx * dx + dy * dy);
  if (len < 1e-9) return;
  const i32 steps = static_cast<i32>(len / 0.7) + 1;
  const i32 reach = static_cast<i32>(std::ceil(3.0 * half_width));
  for (i32 s = 0; s <= steps; ++s) {
    f64 frac = static_cast<f64>(s) / static_cast<f64>(steps);
    f64 px = a.x + frac * dx;
    f64 py = a.y + frac * dy;
    i32 cx = narrow<i32>(std::lround(px));
    i32 cy = narrow<i32>(std::lround(py));
    for (i32 oy = -reach; oy <= reach; ++oy) {
      for (i32 ox = -reach; ox <= reach; ++ox) {
        i32 x = cx + ox;
        i32 y = cy + oy;
        if (!opacity.in_bounds(x, y)) continue;
        // Perpendicular distance from pixel to the segment direction.
        f64 rx = static_cast<f64>(x) - px;
        f64 ry = static_cast<f64>(y) - py;
        f64 t_par = (rx * dx + ry * dy) / len;
        f64 perp2 = rx * rx + ry * ry - t_par * t_par;
        if (perp2 < 0.0) perp2 = 0.0;
        f64 g = std::exp(-0.5 * perp2 / (half_width * half_width));
        f32& o = opacity.at(x, y);
        // max-blend avoids double-counting from overlapping stamps.
        o = std::max(o, static_cast<f32>(depth * g));
      }
    }
  }
}

void AngioSequence::stamp_disk(ImageF32& opacity, Point2f c, f64 radius,
                               f64 depth) const {
  const i32 reach = static_cast<i32>(std::ceil(radius + 2.0));
  i32 cx = narrow<i32>(std::lround(c.x));
  i32 cy = narrow<i32>(std::lround(c.y));
  for (i32 oy = -reach; oy <= reach; ++oy) {
    for (i32 ox = -reach; ox <= reach; ++ox) {
      i32 x = cx + ox;
      i32 y = cy + oy;
      if (!opacity.in_bounds(x, y)) continue;
      f64 rx = static_cast<f64>(x) - c.x;
      f64 ry = static_cast<f64>(y) - c.y;
      f64 d = std::sqrt(rx * rx + ry * ry);
      // Soft-edged disk: full depth inside, smooth falloff over 1.5 px.
      f64 edge = 1.0 / (1.0 + std::exp((d - radius) / 0.6));
      f32& o = opacity.at(x, y);
      o = std::max(o, static_cast<f32>(depth * edge));
    }
  }
}

ImageU16 AngioSequence::render(i32 t) const {
  const i32 w = params_.width;
  const i32 h = params_.height;
  FrameTruth tr = truth(t);
  Point2f center = stent_center(t);
  f64 offset_x = center.x - 0.5 * w;
  f64 offset_y = center.y - 0.45 * h;

  // Radiographic opacity accumulator (0 = transparent).
  ImageF32 opacity(w, h, 0.0f);

  // Vessel tree, moving with the stent, visible only during the bolus.
  f64 vessel_depth = contrast_at(t) * params_.vessel_contrast_peak;
  if (vessel_depth > 1e-3) {
    for (const Vessel& v : vessels_) {
      for (usize i = 0; i + 1 < v.points.size(); ++i) {
        Point2f a{v.points[i].x + offset_x, v.points[i].y + offset_y};
        Point2f b{v.points[i + 1].x + offset_x, v.points[i + 1].y + offset_y};
        stamp_line(opacity, a, b, v.half_width, vessel_depth);
      }
    }
  }

  // Guide wire joining the markers (always present while visible).
  if (tr.markers_visible) {
    stamp_line(opacity, tr.marker_a, tr.marker_b, 1.1, 0.22);
    stamp_disk(opacity, tr.marker_a, params_.marker_radius_px,
               params_.marker_depth);
    stamp_disk(opacity, tr.marker_b, params_.marker_radius_px,
               params_.marker_depth);
  }

  // Background anatomy: smooth vignette plus two low-frequency "rib" bands.
  // Then X-ray transmission + quantum noise.
  ImageU16 out(w, h);
  Pcg32 noise(params_.seed ^ 0xABCDEF1234567890ULL, static_cast<u64>(t));
  const f64 dose = params_.dose_photons;
  for (i32 y = 0; y < h; ++y) {
    f64 fy = static_cast<f64>(y) / h;
    for (i32 x = 0; x < w; ++x) {
      f64 fx = static_cast<f64>(x) / w;
      f64 vignette = 1.0 - 0.35 * ((fx - 0.5) * (fx - 0.5) +
                                   (fy - 0.5) * (fy - 0.5));
      f64 ribs = 0.06 * std::sin(9.0 * fy * kPi + 1.3) +
                 0.04 * std::sin(5.0 * fx * kPi);
      f64 background = std::clamp(vignette + ribs, 0.05, 1.0);
      f64 transmission =
          background * (1.0 - static_cast<f64>(opacity.at(x, y)));
      f64 lambda = dose * std::clamp(transmission, 0.01, 1.0);
      // Gaussian approximation of Poisson quantum noise (lambda >> 1).
      f64 photons = lambda + std::sqrt(lambda) * noise.normal();
      if (photons < 0.0) photons = 0.0;
      // Detector gain maps the dose range into 16-bit.
      f64 value = photons * (40000.0 / dose);
      out.at(x, y) = static_cast<u16>(std::clamp(value, 0.0, 65535.0));
    }
  }
  return out;
}

}  // namespace tc::img
