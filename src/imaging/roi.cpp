// ROI_EST — region-of-interest estimation around the detected marker couple.

#include <algorithm>
#include <cmath>

#include "imaging/pipeline.hpp"

namespace tc::img {

RoiResult estimate_roi(const Couple& couple, i32 frame_width, i32 frame_height,
                       const RoiParams& params) {
  RoiResult result;
  f64 cx = 0.5 * (couple.a.x + couple.b.x);
  f64 cy = 0.5 * (couple.a.y + couple.b.y);
  f64 extent_x = std::fabs(couple.b.x - couple.a.x);
  f64 extent_y = std::fabs(couple.b.y - couple.a.y);
  f64 margin = params.margin_factor * couple.distance();
  i32 w = static_cast<i32>(std::ceil(extent_x + 2.0 * margin));
  i32 h = static_cast<i32>(std::ceil(extent_y + 2.0 * margin));
  w = std::max(w, params.min_side);
  h = std::max(h, params.min_side);
  // Even dimensions keep the 2-stripe split exact.
  w += w % 2;
  h += h % 2;
  Rect roi{narrow<i32>(std::lround(cx)) - w / 2,
           narrow<i32>(std::lround(cy)) - h / 2, w, h};
  result.roi = clamp_rect(roi, frame_width, frame_height);
  result.work.feature_ops = 24;
  result.work.input_bytes = sizeof(Couple);
  result.work.output_bytes = sizeof(Rect);
  result.work.data_parallel = false;
  return result;
}

}  // namespace tc::img
