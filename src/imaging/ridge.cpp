// RDG — ridge detection & filtering.
//
// Pipeline: Gaussian pre-smoothing (sub-stage A) → Hessian by central
// differences (sub-stage B) → eigenvalue analysis (sub-stage C) →
// structure filtering (sub-stage D).  A-C are the buffers whose space-time
// occupation Fig. 5 of the paper analyses; D confirms candidate ridge
// pixels by sampling the response along the local ridge orientation and
// attenuates isolated (noise) responses — its work scales with the number
// of candidate pixels, which is what makes the RDG execution time depend on
// the video content (Fig. 3).

#include <cmath>

#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

/// Extra rows needed around a stripe so sub-stage D's along-ridge sampling
/// (radius 3) sees identical response values in serial and striped runs.
constexpr i32 kFilterHalo = 3;

}  // namespace

void RidgeScratch::ensure(i32 width, i32 height) {
  smooth.ensure(width, height);
  resp_local.ensure(width, height);
  blob_local.ensure(width, height);
  hess.xx.ensure(width, height);
  hess.xy.ensure(width, height);
  hess.yy.ensure(width, height);
}

void ridge_detect_rows(const ImageF32& frame, Rect roi,
                       const RidgeParams& params, ImageF32& response,
                       ImageF32& blobness, IndexRange rows,
                       u64& dominant_pixels, WorkReport& work,
                       RidgeScratch* scratch) {
  Rect r = clamp_rect(roi, frame.width(), frame.height());
  if (r.empty()) return;
  const i32 y0 = std::clamp(rows.lo, r.y, r.y + r.h);
  const i32 y1 = std::clamp(rows.hi, r.y, r.y + r.h);
  if (y1 <= y0) return;

  // Working buffers: caller-provided scratch (allocation-free in steady
  // state) or a fresh local set.  Stale scratch only matters for the
  // response/blobness images — sub-stage D's along-ridge sampling reads up
  // to kFilterHalo + 1 rows beyond the output band (bilinear interpolation
  // adds one row), and those reads must see the zeros a serial run sees.
  // smooth/hess need no clearing: every read falls inside the freshly
  // written band.
  RidgeScratch local;
  RidgeScratch* s = scratch != nullptr ? scratch : &local;
  s->ensure(frame.width(), frame.height());
  const i32 zy0 = std::max(0, y0 - kFilterHalo - 1);
  const i32 zy1 = std::min(frame.height(), y1 + kFilterHalo + 1);
  for (i32 y = zy0; y < zy1; ++y) {
    std::fill_n(s->resp_local.row(y), frame.width(), 0.0f);
    std::fill_n(s->blob_local.row(y), frame.width(), 0.0f);
  }

  // Extended band: the output band plus the filtering halo, clamped to the
  // ROI so serial and striped runs see identical (zero) values outside it.
  const i32 ey0 = std::max(r.y, y0 - kFilterHalo);
  const i32 ey1 = std::min(r.y + r.h, y1 + kFilterHalo);

  // Sub-stage A: smooth the extended band (one extra pixel of halo in both
  // directions for the Hessian's central differences).
  ImageF32& smooth = s->smooth;
  gaussian_blur_rect(frame, params.sigma, smooth, IndexRange{ey0 - 1, ey1 + 1},
                     IndexRange{r.x - 1, r.x + r.w + 1}, &work);

  // Sub-stage B: Hessian of the smoothed band.
  HessianImages& hess = s->hess;
  hessian_rect(smooth, hess, IndexRange{ey0, ey1},
               IndexRange{r.x, r.x + r.w}, &work);

  // Sub-stage C: eigenvalues → ridgeness (lambda_max) and blobness
  // (lambda_min clamped at zero) over the extended band, into local images
  // so a striped run never races on the shared outputs.
  ImageF32& resp_local = s->resp_local;
  ImageF32& blob_local = s->blob_local;
  for (i32 y = ey0; y < ey1; ++y) {
    for (i32 x = r.x; x < r.x + r.w; ++x) {
      f32 xx = hess.xx.at(x, y);
      f32 yy = hess.yy.at(x, y);
      f32 xy = hess.xy.at(x, y);
      f32 tr = xx + yy;
      f32 det_term = std::sqrt((xx - yy) * (xx - yy) + 4.0f * xy * xy);
      f32 lmax = 0.5f * (tr + det_term);
      f32 lmin = 0.5f * (tr - det_term);
      resp_local.at(x, y) = lmax > 0.0f ? lmax : 0.0f;
      blob_local.at(x, y) = lmin > 0.0f ? lmin : 0.0f;
    }
  }
  u64 ext_pixels = static_cast<u64>(r.w) * static_cast<u64>(ey1 - ey0);
  work.pixel_ops += ext_pixels * 12;
  work.bytes_read += ext_pixels * 3 * sizeof(f32);
  work.bytes_written += ext_pixels * 2 * sizeof(f32);

  // Sub-stage D: structure filtering over the output band.  Candidate
  // pixels (response above a fraction of the dominant threshold) are
  // confirmed by sampling the response at +-1..3 pixels along the local
  // ridge orientation; isolated (noise) responses are attenuated.  The work
  // of this stage is proportional to the candidate count — the content-
  // dependent part of the RDG execution time.
  const f32 candidate_floor = 0.3f * params.dominant_threshold;
  u64 candidates = 0;
  for (i32 y = y0; y < y1; ++y) {
    for (i32 x = r.x; x < r.x + r.w; ++x) {
      f32 resp = resp_local.at(x, y);
      f32 out = resp;
      if (resp > candidate_floor) {
        ++candidates;
        // Principal-curvature direction from the Hessian; the ridge runs
        // perpendicular to it.
        f32 xx = hess.xx.at(x, y);
        f32 yy = hess.yy.at(x, y);
        f32 xy = hess.xy.at(x, y);
        f32 theta = 0.5f * std::atan2(2.0f * xy, xx - yy);
        f32 dx = -std::sin(theta);
        f32 dy = std::cos(theta);
        f32 acc = 0.0f;
        for (i32 s = -3; s <= 3; ++s) {
          if (s == 0) continue;
          acc += bilinear_sample(resp_local,
                                 static_cast<f64>(x) + dx * static_cast<f32>(s),
                                 static_cast<f64>(y) + dy * static_cast<f32>(s));
        }
        f32 along_mean = acc / 6.0f;
        if (along_mean < 0.4f * resp) {
          out = resp * 0.25f;  // isolated spike: not a ridge, attenuate
        }
      }
      response.at(x, y) = out;
      blobness.at(x, y) = blob_local.at(x, y);
      if (out > params.dominant_threshold) ++dominant_pixels;
    }
  }
  work.pixel_ops += candidates * 110;
  work.bytes_read += candidates * 8 * sizeof(f32);
  work.items += candidates;

  // Buffer accounting attributed to the stripe proportionally: input band of
  // the u16 frame, smoothed + response/blobness working images.
  f64 frac = static_cast<f64>(y1 - y0) / static_cast<f64>(r.h);
  u64 roi_pixels = static_cast<u64>(r.area());
  work.input_bytes +=
      static_cast<u64>(static_cast<f64>(roi_pixels * sizeof(u16)) * frac);
  work.intermediate_bytes +=
      static_cast<u64>(static_cast<f64>(roi_pixels * sizeof(f32)) * frac);
  work.output_bytes +=
      static_cast<u64>(static_cast<f64>(roi_pixels * 2 * sizeof(f32)) * frac);
}

RidgeResult ridge_detect(const ImageF32& frame, Rect roi,
                         const RidgeParams& params) {
  RidgeResult result;
  result.response = ImageF32(frame.width(), frame.height(), 0.0f);
  result.blobness = ImageF32(frame.width(), frame.height(), 0.0f);
  Rect r = clamp_rect(roi, frame.width(), frame.height());
  ridge_detect_rows(frame, r, params, result.response, result.blobness,
                    IndexRange{r.y, r.y + r.h}, result.dominant_pixels,
                    result.work);
  result.work.data_parallel = true;
  return result;
}

}  // namespace tc::img
