#include "imaging/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tc::img {

f64 psnr(const ImageF32& a, const ImageF32& b, f64 peak) {
  if (a.width() != b.width() || a.height() != b.height() || a.empty()) {
    return 0.0;
  }
  f64 mse = 0.0;
  for (usize i = 0; i < a.size(); ++i) {
    f64 d = static_cast<f64>(a.data()[i]) - static_cast<f64>(b.data()[i]);
    mse += d * d;
  }
  mse /= static_cast<f64>(a.size());
  if (mse <= 0.0) return 200.0;
  return 10.0 * std::log10(peak * peak / mse);
}

f64 region_mean(const ImageF32& image, Rect region) {
  Rect r = clamp_rect(region, image.width(), image.height());
  if (r.empty()) return 0.0;
  f64 acc = 0.0;
  for (i32 y = r.y; y < r.y + r.h; ++y) {
    for (i32 x = r.x; x < r.x + r.w; ++x) acc += image.at(x, y);
  }
  return acc / static_cast<f64>(r.area());
}

f64 region_stddev(const ImageF32& image, Rect region) {
  Rect r = clamp_rect(region, image.width(), image.height());
  if (r.area() < 2) return 0.0;
  f64 m = region_mean(image, r);
  f64 acc = 0.0;
  for (i32 y = r.y; y < r.y + r.h; ++y) {
    for (i32 x = r.x; x < r.x + r.w; ++x) {
      f64 d = image.at(x, y) - m;
      acc += d * d;
    }
  }
  return std::sqrt(acc / static_cast<f64>(r.area()));
}

f64 disk_cnr(const ImageF32& image, Point2f center, f64 radius) {
  std::vector<f64> disk;
  std::vector<f64> ring;
  const i32 reach = static_cast<i32>(std::ceil(3.0 * radius)) + 2;
  const i32 cx = narrow<i32>(std::lround(center.x));
  const i32 cy = narrow<i32>(std::lround(center.y));
  for (i32 oy = -reach; oy <= reach; ++oy) {
    for (i32 ox = -reach; ox <= reach; ++ox) {
      i32 x = cx + ox;
      i32 y = cy + oy;
      if (!image.in_bounds(x, y)) continue;
      f64 d = std::hypot(x - center.x, y - center.y);
      if (d <= radius * 0.8) {
        disk.push_back(image.at(x, y));
      } else if (d >= radius * 1.8 && d <= radius * 3.0) {
        ring.push_back(image.at(x, y));
      }
    }
  }
  if (disk.empty() || ring.size() < 8) return 0.0;
  f64 disk_mean = 0.0;
  for (f64 v : disk) disk_mean += v;
  disk_mean /= static_cast<f64>(disk.size());
  f64 ring_mean = 0.0;
  for (f64 v : ring) ring_mean += v;
  ring_mean /= static_cast<f64>(ring.size());
  f64 ring_var = 0.0;
  for (f64 v : ring) ring_var += (v - ring_mean) * (v - ring_mean);
  f64 ring_sd = std::sqrt(ring_var / static_cast<f64>(ring.size()));
  if (ring_sd <= 1e-9) return 0.0;
  return std::fabs(ring_mean - disk_mean) / ring_sd;
}

f64 marker_cnr(const ImageF32& image, Point2f marker_a, Point2f marker_b,
               f64 radius) {
  return 0.5 * (disk_cnr(image, marker_a, radius) +
                disk_cnr(image, marker_b, radius));
}

}  // namespace tc::img
