// The eight image-analysis stages of the motion-compensated stent-
// enhancement application (Fig. 2 of the paper):
//
//   RDG      ridge detection & filtering (full-frame or ROI granularity)
//   MKX_EXT  marker extraction (candidate balloon markers)
//   CPLS_SEL couples selection (best marker pair given the a-priori distance)
//   REG      temporal registration of the marker couple
//   ROI_EST  region-of-interest estimation
//   GW_EXT   guide-wire extraction (ridge following between the markers)
//   ENH      enhancement by motion-compensated temporal integration
//   ZOOM     interpolating zoom of the enhanced ROI
//
// Each stage is a pure function from inputs to a Result struct that carries
// the stage output plus a WorkReport used by the platform cost model and the
// Triple-C memory/bandwidth analysis.  Stages that stream over pixels accept
// an output row range so they can be stripe-partitioned; a full-range call
// and the union of disjoint stripe calls produce bit-identical results.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "imaging/image.hpp"
#include "imaging/kernels.hpp"
#include "imaging/work_report.hpp"

namespace tc::img {

// ---------------------------------------------------------------------------
// RDG — ridge detection
// ---------------------------------------------------------------------------

struct RidgeParams {
  /// Scale of the Gaussian pre-smoothing (matched to vessel width).
  f64 sigma = 2.0;
  /// Ridgeness value above which a pixel counts as part of a dominant
  /// structure (used by the flow-graph switch logic).
  f32 dominant_threshold = 350.0f;
};

struct RidgeResult {
  /// Largest positive Hessian eigenvalue (curvilinear-structure strength).
  ImageF32 response;
  /// Smallest Hessian eigenvalue clamped at 0 (blob strength: high for
  /// punctual dark zones, low for elongated vessels).
  ImageF32 blobness;
  /// Number of pixels whose response exceeds dominant_threshold.
  u64 dominant_pixels = 0;
  WorkReport work;
};

/// Run ridge detection on `roi` of the input frame.  Pixels outside `roi`
/// are left zero.  Pass `rows` relative to the image (absolute row indices)
/// to compute only a stripe; dominant_pixels then counts that stripe only.
[[nodiscard]] RidgeResult ridge_detect(const ImageF32& frame, Rect roi,
                                       const RidgeParams& params);

/// Reusable working buffers for one ridge_detect_rows invocation (one set
/// per concurrent stripe instance).  Owning them in the caller's frame
/// context removes the four image allocations each stripe used to make.
struct RidgeScratch {
  ImageF32 smooth;
  ImageF32 resp_local;
  ImageF32 blob_local;
  HessianImages hess;
  /// Reshape every buffer to the frame size (reuses allocations; stale
  /// contents are fine — ridge_detect_rows zeroes what it reads).
  void ensure(i32 width, i32 height);
};

/// Stripe variant: computes response/blobness rows [rows.lo, rows.hi) ∩ roi
/// into the provided images (which must be frame-sized).  `scratch` (may be
/// null) supplies reusable working buffers; results are bit-identical with
/// and without it.
void ridge_detect_rows(const ImageF32& frame, Rect roi,
                       const RidgeParams& params, ImageF32& response,
                       ImageF32& blobness, IndexRange rows, u64& dominant_pixels,
                       WorkReport& work, RidgeScratch* scratch = nullptr);

// ---------------------------------------------------------------------------
// MKX_EXT — marker extraction
// ---------------------------------------------------------------------------

struct MarkerParams {
  /// Detection runs on a `decimation`-times subsampled image (markers are
  /// several pixels wide, so a coarse grid suffices and keeps this stage
  /// cheap and nearly content-independent, like the paper's 2.5 ms MKX).
  i32 decimation = 4;
  /// Difference-of-Gaussians scales matched to the marker radius, in
  /// decimated-grid pixels.
  f64 blob_sigma = 0.9;
  f64 background_sigma = 2.2;
  /// Darkness score threshold for accepting a candidate.
  f32 detect_threshold = 800.0f;
  /// Non-maximum-suppression cell size in decimated pixels (anchored to the
  /// absolute pixel grid so stripe splits reproduce serial results).
  i32 nms_cell = 3;
  /// Hard cap on the candidate list (the paper's feature stages operate on
  /// small candidate sets).
  i32 max_candidates = 96;
  /// Ridge-based structure suppression (applied only when ridge detection
  /// ran; this is how RDG "removes all other structures except candidate
  /// markers").  Where the ridge response exceeds `ridge_floor`, the
  /// candidate score is attenuated by min(1, ridge_blob_weight * blobness /
  /// response): punctual markers (blobness ≈ response) pass unharmed,
  /// elongated structures (blobness ≈ 0) are eliminated.
  f32 ridge_floor = 100.0f;
  f32 ridge_blob_weight = 2.5f;
  /// Half-size of the full-resolution window used to refine each candidate
  /// position to sub-pixel accuracy.
  i32 refine_half = 5;
};

struct MarkerCandidate {
  Point2f position;
  f32 score = 0.0f;
};

struct MarkerResult {
  std::vector<MarkerCandidate> candidates;
  WorkReport work;
};

/// Extract candidate balloon markers from `roi` of the frame.  When `ridge`
/// is non-null the candidates on elongated structures are suppressed.
[[nodiscard]] MarkerResult extract_markers(const ImageF32& frame, Rect roi,
                                           const MarkerParams& params,
                                           const RidgeResult* ridge);

/// Decimated detection grid shared by every MKX instance batch of a frame:
/// the low-res ROI image, its difference-of-Gaussians pair, and the NMS
/// cell geometry.  Built once per frame; cell rows are then scanned in
/// independent batches (candidate-batch instance fan-out).
struct MarkerGrid {
  ImageF32 low;
  ImageF32 blob;
  ImageF32 background;
  Rect r{};           ///< clamped ROI in full-resolution pixels
  i32 d = 1;          ///< decimation factor
  i32 cell = 2;       ///< NMS cell size (decimated pixels)
  i32 gx0 = 0;        ///< absolute decimated grid origin (x)
  i32 gy0 = 0;        ///< absolute decimated grid origin (y)
  i32 lx0 = 0;        ///< low-res coords of the ROI origin (x)
  i32 ly0 = 0;        ///< low-res coords of the ROI origin (y)
  i32 cell_rows = 0;  ///< NMS cell rows — the batchable unit
  WorkReport work;    ///< decimation + blur work of the grid build
};

/// Build the shared detection grid for `roi` (must be non-empty after
/// clamping to the frame).
[[nodiscard]] MarkerGrid marker_grid(const ImageF32& frame, Rect roi,
                                     const MarkerParams& params);

/// Candidates produced by one batch of NMS cell rows.
struct MarkerBatch {
  std::vector<MarkerCandidate> candidates;
  u64 feature_ops = 0;  ///< sub-pixel refinement work of this batch
};

/// Scan NMS cell rows [cells.lo, cells.hi) of the grid.  Disjoint batches
/// visit disjoint cells, so they may run concurrently; concatenating the
/// batches in order reproduces the serial scan exactly.
[[nodiscard]] MarkerBatch extract_marker_cells(const ImageF32& frame,
                                               const MarkerGrid& grid,
                                               const MarkerParams& params,
                                               const RidgeResult* ridge,
                                               IndexRange cells);

/// Merge the per-batch candidate lists (in batch order), sort, cap, and
/// attach the fixed accounting — byte-identical to extract_markers().
[[nodiscard]] MarkerResult finalize_markers(const MarkerGrid& grid,
                                            const MarkerParams& params,
                                            bool ridge_used,
                                            std::span<const MarkerBatch> batches);

// ---------------------------------------------------------------------------
// CPLS_SEL — couples selection
// ---------------------------------------------------------------------------

struct CoupleParams {
  /// A-priori known balloon-marker separation and tolerance (pixels).
  f64 prior_distance = 90.0;
  f64 distance_tolerance = 12.0;
  /// Temporal tracking: when a previous couple is supplied, candidate
  /// couples are weighted by proximity to it; a couple whose centre moved
  /// more than ~3*tracking_sigma is effectively rejected.
  f64 tracking_sigma = 10.0;
  /// Minimum combined marker strength (sum of the two candidate scores) for
  /// a couple to be acceptable — prevents the tracker from locking onto
  /// noise candidates when the real markers are obscured.  0 disables.
  f64 min_strength = 0.0;
};

struct Couple {
  Point2f a;
  Point2f b;
  f64 score = 0.0;
  [[nodiscard]] f64 distance() const;
};

struct CoupleResult {
  std::optional<Couple> best;
  /// Pairs actually scored (the O(n^2) work driver).
  u64 pairs_considered = 0;
  WorkReport work;
};

/// Select the best marker couple.  `previous` (optional) enables temporal
/// tracking: the selected couple must be plausible both in separation and in
/// frame-to-frame displacement.
[[nodiscard]] CoupleResult select_couple(
    const std::vector<MarkerCandidate>& candidates, const CoupleParams& params,
    const Couple* previous = nullptr);

/// Partial result of scanning a sub-range of first-candidate indices (the
/// candidate-batch instance unit of CPLS_SEL).
struct CouplePartial {
  std::optional<Couple> best;
  f64 best_score = 0.0;
  u64 pairs_considered = 0;
};

/// Score pairs (i, j) with i ∈ [first_range.lo, first_range.hi) and j > i.
/// Disjoint ranges cover disjoint pairs, so batches may run concurrently.
[[nodiscard]] CouplePartial select_couple_rows(
    const std::vector<MarkerCandidate>& candidates, const CoupleParams& params,
    const Couple* previous, IndexRange first_range);

/// Merge partials in batch order (strict > keeps the earliest batch's
/// winner on ties, reproducing the serial scan) and attach the accounting.
[[nodiscard]] CoupleResult merge_couple_partials(
    std::span<const CouplePartial> partials, usize candidate_count);

// ---------------------------------------------------------------------------
// REG — temporal registration
// ---------------------------------------------------------------------------

struct RegistrationParams {
  /// Maximum plausible inter-frame displacement (pixels).
  f64 max_displacement = 40.0;
  /// Maximum change of the couple separation between frames.
  f64 max_distance_drift = 6.0;
  /// Window half-size of the local temporal-difference check.
  i32 motion_window = 24;
  /// Mean absolute temporal difference inside the motion window must exceed
  /// this for the motion criterion to consider the markers "live".
  f32 min_motion_energy = 1.0f;
};

struct RegistrationResult {
  bool success = false;
  /// Estimated translation of the current frame relative to the reference.
  f64 dx = 0.0;
  f64 dy = 0.0;
  /// Rotation of the marker axis (radians).
  f64 rotation = 0.0;
  WorkReport work;
};

/// Register the current couple against the previous one, using a temporal-
/// difference motion criterion computed around the current markers.
[[nodiscard]] RegistrationResult register_couple(
    const Couple& previous, const Couple& current, const ImageF32& prev_frame,
    const ImageF32& cur_frame, const RegistrationParams& params);

// ---------------------------------------------------------------------------
// ROI_EST — region-of-interest estimation
// ---------------------------------------------------------------------------

struct RoiParams {
  /// Margin around the marker couple, as a multiple of the couple distance.
  f64 margin_factor = 0.8;
  /// Minimum ROI side (pixels).
  i32 min_side = 96;
};

struct RoiResult {
  Rect roi;
  WorkReport work;
};

[[nodiscard]] RoiResult estimate_roi(const Couple& couple, i32 frame_width,
                                     i32 frame_height, const RoiParams& params);

// ---------------------------------------------------------------------------
// GW_EXT — guide-wire extraction
// ---------------------------------------------------------------------------

struct GuideWireParams {
  /// Sample points along the wire between the markers.
  i32 path_samples = 48;
  /// Perpendicular search half-range (pixels).
  i32 search_radius = 6;
  /// Smoothness weight of the perpendicular-offset refinement.
  f64 smoothness = 0.35;
  /// Refinement sweeps stop when the path moves less than this (pixels).
  f64 convergence_eps = 0.05;
  i32 max_iterations = 12;
  /// Mean ridgeness along the converged path must exceed this for the wire
  /// (and hence the marker couple) to be declared stable.
  f32 min_ridgeness = 150.0f;
  /// Wire-width check: the ridge response sampled this far *perpendicular*
  /// to the path must have dropped off — a guide wire is thin, a vessel is
  /// not.  The off-path/on-path response ratio must stay below
  /// `max_off_path_ratio` for the wire to be accepted.
  f64 width_check_offset = 2.5;
  f64 max_off_path_ratio = 0.45;
};

struct GuideWireResult {
  bool found = false;
  std::vector<Point2f> path;
  f64 mean_ridgeness = 0.0;
  /// Off-path/on-path ridge-response ratio (≈0 for a thin wire, ≈1 for a
  /// wide vessel); see GuideWireParams::max_off_path_ratio.
  f64 off_path_ratio = 0.0;
  /// Refinement sweeps actually executed (data-dependent work driver).
  i32 iterations = 0;
  WorkReport work;
};

[[nodiscard]] GuideWireResult extract_guidewire(const RidgeResult& ridge,
                                                const Couple& couple,
                                                const GuideWireParams& params);

// ---------------------------------------------------------------------------
// ENH — motion-compensated temporal integration
// ---------------------------------------------------------------------------

struct EnhanceParams {
  /// Recursive integration weight of the current frame.
  f32 integration_gain = 0.25f;
};

struct EnhanceResult {
  /// Full-frame integration state in reference coordinates (becomes the
  /// `accumulator` argument of the next invocation).
  ImageF32 accumulator;
  /// ROI crop of the accumulator, handed to ZOOM.
  ImageF32 enhanced_roi;
  WorkReport work;
};

/// Temporally integrate the current frame into the stent-aligned reference
/// accumulator and crop the enhanced ROI (`roi` is given in reference
/// coordinates).  The current frame is warped once by the rigid transform
/// mapping `cur_couple` onto `ref_couple` (the couple captured when the
/// integration started); the accumulator itself is never re-warped, so no
/// resampling blur accumulates.  `accumulator` may be empty on the first
/// registered frame.
[[nodiscard]] EnhanceResult enhance(const ImageF32& cur_frame, Rect roi,
                                    const ImageF32& accumulator,
                                    const Couple& cur_couple,
                                    const Couple& ref_couple,
                                    const EnhanceParams& params);

/// Translation-only convenience overload: (dx, dy) is the displacement of
/// the current frame relative to the reference (accumulator) frame.
[[nodiscard]] EnhanceResult enhance(const ImageF32& cur_frame, Rect roi,
                                    const ImageF32& accumulator, f64 dx, f64 dy,
                                    const EnhanceParams& params);

// ---------------------------------------------------------------------------
// ZOOM — interpolating zoom of the enhanced ROI
// ---------------------------------------------------------------------------

struct ZoomParams {
  i32 output_width = 512;
  i32 output_height = 512;
};

struct ZoomResult {
  ImageU16 output;
  WorkReport work;
};

[[nodiscard]] ZoomResult zoom(const ImageF32& enhanced, const ZoomParams& params);

/// Stripe variant writing only output rows [rows.lo, rows.hi).
void zoom_rows(const ImageF32& enhanced, const ZoomParams& params,
               ImageU16& out, IndexRange rows, WorkReport& work);

}  // namespace tc::img
