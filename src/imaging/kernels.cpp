#include "imaging/kernels.hpp"

#include <cassert>
#include <cmath>

namespace tc::img {
namespace {

/// Account for one separable-convolution pass over `pixels` pixels with a
/// kernel of length `klen`.
void account_conv(WorkReport* wr, u64 pixels, u64 klen) {
  if (wr == nullptr) return;
  wr->pixel_ops += pixels * klen * 2;  // one MAC per tap
  wr->bytes_read += pixels * klen * sizeof(f32);
  wr->bytes_written += pixels * sizeof(f32);
}

}  // namespace

std::vector<f32> gaussian_kernel(f64 sigma) {
  assert(sigma > 0.0);
  i32 radius = static_cast<i32>(std::ceil(3.0 * sigma));
  if (radius < 1) radius = 1;
  std::vector<f32> k(static_cast<usize>(2 * radius + 1));
  f64 sum = 0.0;
  for (i32 i = -radius; i <= radius; ++i) {
    f64 v = std::exp(-0.5 * (static_cast<f64>(i) / sigma) *
                     (static_cast<f64>(i) / sigma));
    k[static_cast<usize>(i + radius)] = static_cast<f32>(v);
    sum += v;
  }
  for (f32& v : k) v = static_cast<f32>(v / sum);
  return k;
}

void gaussian_blur_rect(const ImageF32& in, f64 sigma, ImageF32& out,
                        IndexRange rows, IndexRange cols, WorkReport* wr) {
  assert(out.width() == in.width() && out.height() == in.height());
  const std::vector<f32> k = gaussian_kernel(sigma);
  const i32 radius = static_cast<i32>(k.size() / 2);
  const i32 w = in.width();
  const i32 h = in.height();
  const i32 y0 = std::clamp(rows.lo, 0, h);
  const i32 y1 = std::clamp(rows.hi, 0, h);
  const i32 x0 = std::clamp(cols.lo, 0, w);
  const i32 x1 = std::clamp(cols.hi, 0, w);
  if (y1 <= y0 || x1 <= x0) return;

  // Horizontal pass over the halo-expanded row band [ty0, ty1), restricted
  // to the requested columns (each output column only needs its own tmp
  // column; the horizontal halo reads the input directly).
  const i32 ty0 = std::max(0, y0 - radius);
  const i32 ty1 = std::min(h, y1 + radius);
  ImageF32 tmp(x1 - x0, ty1 - ty0);
  for (i32 y = ty0; y < ty1; ++y) {
    const f32* src = in.row(y);
    f32* dst = tmp.row(y - ty0);
    for (i32 x = x0; x < x1; ++x) {
      f32 acc = 0.0f;
      for (i32 t = -radius; t <= radius; ++t) {
        i32 xi = std::clamp(x + t, 0, w - 1);
        acc += src[xi] * k[static_cast<usize>(t + radius)];
      }
      dst[x - x0] = acc;
    }
  }
  account_conv(wr, static_cast<u64>(x1 - x0) * static_cast<u64>(ty1 - ty0),
               k.size());

  // Vertical pass writing only the requested output rows/columns.
  for (i32 y = y0; y < y1; ++y) {
    f32* dst = out.row(y);
    for (i32 x = x0; x < x1; ++x) {
      f32 acc = 0.0f;
      for (i32 t = -radius; t <= radius; ++t) {
        i32 yi = std::clamp(y + t, ty0, ty1 - 1);
        acc += tmp.at(x - x0, yi - ty0) * k[static_cast<usize>(t + radius)];
      }
      dst[x] = acc;
    }
  }
  account_conv(wr, static_cast<u64>(x1 - x0) * static_cast<u64>(y1 - y0),
               k.size());
  if (wr != nullptr) {
    wr->intermediate_bytes += tmp.bytes();
  }
}

void gaussian_blur_rows(const ImageF32& in, f64 sigma, ImageF32& out,
                        IndexRange rows, WorkReport* wr) {
  gaussian_blur_rect(in, sigma, out, rows, IndexRange{0, in.width()}, wr);
}

ImageF32 gaussian_blur(const ImageF32& in, f64 sigma, WorkReport* wr) {
  ImageF32 out(in.width(), in.height());
  gaussian_blur_rows(in, sigma, out, IndexRange{0, in.height()}, wr);
  return out;
}

HessianImages make_hessian_images(i32 width, i32 height) {
  return HessianImages{ImageF32(width, height), ImageF32(width, height),
                       ImageF32(width, height)};
}

void hessian_rect(const ImageF32& smooth, HessianImages& h, IndexRange rows,
                  IndexRange cols, WorkReport* wr) {
  const i32 w = smooth.width();
  const i32 hh = smooth.height();
  const i32 y0 = std::clamp(rows.lo, 0, hh);
  const i32 y1 = std::clamp(rows.hi, 0, hh);
  const i32 x0 = std::clamp(cols.lo, 0, w);
  const i32 x1 = std::clamp(cols.hi, 0, w);
  for (i32 y = y0; y < y1; ++y) {
    for (i32 x = x0; x < x1; ++x) {
      f32 c = smooth.at_clamped(x, y);
      f32 xm = smooth.at_clamped(x - 1, y);
      f32 xp = smooth.at_clamped(x + 1, y);
      f32 ym = smooth.at_clamped(x, y - 1);
      f32 yp = smooth.at_clamped(x, y + 1);
      f32 pp = smooth.at_clamped(x + 1, y + 1);
      f32 pm = smooth.at_clamped(x + 1, y - 1);
      f32 mp = smooth.at_clamped(x - 1, y + 1);
      f32 mm = smooth.at_clamped(x - 1, y - 1);
      h.xx.at(x, y) = xp - 2.0f * c + xm;
      h.yy.at(x, y) = yp - 2.0f * c + ym;
      h.xy.at(x, y) = 0.25f * (pp - pm - mp + mm);
    }
  }
  if (wr != nullptr) {
    u64 pixels = static_cast<u64>(x1 - x0) * static_cast<u64>(y1 - y0);
    wr->pixel_ops += pixels * 14;
    wr->bytes_read += pixels * 9 * sizeof(f32);
    wr->bytes_written += pixels * 3 * sizeof(f32);
  }
}

void hessian_rows(const ImageF32& smooth, HessianImages& h, IndexRange rows,
                  WorkReport* wr) {
  hessian_rect(smooth, h, rows, IndexRange{0, smooth.width()}, wr);
}

void ridgeness_rows(const HessianImages& h, ImageF32& out, IndexRange rows,
                    WorkReport* wr) {
  const i32 w = out.width();
  const i32 hh = out.height();
  const i32 y0 = std::clamp(rows.lo, 0, hh);
  const i32 y1 = std::clamp(rows.hi, 0, hh);
  for (i32 y = y0; y < y1; ++y) {
    for (i32 x = 0; x < w; ++x) {
      f32 xx = h.xx.at(x, y);
      f32 yy = h.yy.at(x, y);
      f32 xy = h.xy.at(x, y);
      f32 tr = xx + yy;
      f32 det_term = std::sqrt((xx - yy) * (xx - yy) + 4.0f * xy * xy);
      f32 lambda_max = 0.5f * (tr + det_term);
      out.at(x, y) = lambda_max > 0.0f ? lambda_max : 0.0f;
    }
  }
  if (wr != nullptr) {
    u64 pixels = static_cast<u64>(w) * static_cast<u64>(y1 - y0);
    wr->pixel_ops += pixels * 10;
    wr->bytes_read += pixels * 3 * sizeof(f32);
    wr->bytes_written += pixels * sizeof(f32);
  }
}

ImageF32 temporal_difference(const ImageF32& a, const ImageF32& b,
                             WorkReport* wr) {
  assert(a.width() == b.width() && a.height() == b.height());
  ImageF32 out(a.width(), a.height());
  const f32* pa = a.data();
  const f32* pb = b.data();
  f32* po = out.data();
  for (usize i = 0; i < a.size(); ++i) po[i] = std::fabs(pa[i] - pb[i]);
  if (wr != nullptr) {
    wr->pixel_ops += a.size() * 2;
    wr->bytes_read += 2 * a.bytes();
    wr->bytes_written += out.bytes();
  }
  return out;
}

f32 bilinear_sample(const ImageF32& in, f64 x, f64 y) {
  i32 x0 = static_cast<i32>(std::floor(x));
  i32 y0 = static_cast<i32>(std::floor(y));
  f32 fx = static_cast<f32>(x - x0);
  f32 fy = static_cast<f32>(y - y0);
  f32 v00 = in.at_clamped(x0, y0);
  f32 v10 = in.at_clamped(x0 + 1, y0);
  f32 v01 = in.at_clamped(x0, y0 + 1);
  f32 v11 = in.at_clamped(x0 + 1, y0 + 1);
  f32 top = v00 * (1.0f - fx) + v10 * fx;
  f32 bot = v01 * (1.0f - fx) + v11 * fx;
  return top * (1.0f - fy) + bot * fy;
}

namespace {
/// Catmull-Rom weight for |t| <= 2.
f32 catmull_rom(f32 t) {
  t = std::fabs(t);
  if (t < 1.0f) return 1.5f * t * t * t - 2.5f * t * t + 1.0f;
  if (t < 2.0f) return -0.5f * t * t * t + 2.5f * t * t - 4.0f * t + 2.0f;
  return 0.0f;
}
}  // namespace

f32 bicubic_sample(const ImageF32& in, f64 x, f64 y) {
  i32 x0 = static_cast<i32>(std::floor(x));
  i32 y0 = static_cast<i32>(std::floor(y));
  f32 fx = static_cast<f32>(x - x0);
  f32 fy = static_cast<f32>(y - y0);
  f32 acc = 0.0f;
  for (i32 j = -1; j <= 2; ++j) {
    f32 wy = catmull_rom(static_cast<f32>(j) - fy);
    if (wy == 0.0f) continue;
    f32 row_acc = 0.0f;
    for (i32 i = -1; i <= 2; ++i) {
      f32 wx = catmull_rom(static_cast<f32>(i) - fx);
      row_acc += wx * in.at_clamped(x0 + i, y0 + j);
    }
    acc += wy * row_acc;
  }
  return acc;
}

ImageF32 resample_bicubic(const ImageF32& in, i32 out_w, i32 out_h, Rect src,
                          WorkReport* wr) {
  assert(out_w > 0 && out_h > 0 && !src.empty());
  ImageF32 out(out_w, out_h);
  f64 sx = static_cast<f64>(src.w) / static_cast<f64>(out_w);
  f64 sy = static_cast<f64>(src.h) / static_cast<f64>(out_h);
  for (i32 y = 0; y < out_h; ++y) {
    for (i32 x = 0; x < out_w; ++x) {
      f64 srcx = src.x + (static_cast<f64>(x) + 0.5) * sx - 0.5;
      f64 srcy = src.y + (static_cast<f64>(y) + 0.5) * sy - 0.5;
      out.at(x, y) = bicubic_sample(in, srcx, srcy);
    }
  }
  if (wr != nullptr) {
    u64 pixels = static_cast<u64>(out_w) * static_cast<u64>(out_h);
    wr->pixel_ops += pixels * 40;  // 16 taps, ~2.5 ops each
    wr->bytes_read += pixels * 16 * sizeof(f32);
    wr->bytes_written += pixels * sizeof(f32);
  }
  return out;
}

void resample_bicubic_rows(const ImageF32& in, ImageF32& out, Rect src,
                           IndexRange rows, WorkReport* wr) {
  assert(out.width() > 0 && out.height() > 0 && !src.empty());
  assert(rows.lo >= 0 && rows.hi <= out.height());
  f64 sx = static_cast<f64>(src.w) / static_cast<f64>(out.width());
  f64 sy = static_cast<f64>(src.h) / static_cast<f64>(out.height());
  for (i32 y = rows.lo; y < rows.hi; ++y) {
    for (i32 x = 0; x < out.width(); ++x) {
      f64 srcx = src.x + (static_cast<f64>(x) + 0.5) * sx - 0.5;
      f64 srcy = src.y + (static_cast<f64>(y) + 0.5) * sy - 0.5;
      out.at(x, y) = bicubic_sample(in, srcx, srcy);
    }
  }
  if (wr != nullptr) {
    u64 pixels = static_cast<u64>(out.width()) *
                 static_cast<u64>(rows.length() < 0 ? 0 : rows.length());
    wr->pixel_ops += pixels * 40;  // 16 taps, ~2.5 ops each
    wr->bytes_read += pixels * 16 * sizeof(f32);
    wr->bytes_written += pixels * sizeof(f32);
  }
}

ImageF32 warp_rigid(const ImageF32& in, f64 dx, f64 dy, f64 angle,
                    Point2f center, WorkReport* wr) {
  if (angle == 0.0) return translate_bilinear(in, dx, dy, wr);
  ImageF32 out(in.width(), in.height());
  const f64 ca = std::cos(-angle);
  const f64 sa = std::sin(-angle);
  // Inverse of "rotate about center, then translate by d":
  // source = center + R(-angle) * (p - center - d).
  for (i32 y = 0; y < in.height(); ++y) {
    for (i32 x = 0; x < in.width(); ++x) {
      f64 rx = static_cast<f64>(x) - center.x - dx;
      f64 ry = static_cast<f64>(y) - center.y - dy;
      f64 sx2 = center.x + ca * rx - sa * ry;
      f64 sy2 = center.y + sa * rx + ca * ry;
      out.at(x, y) = bilinear_sample(in, sx2, sy2);
    }
  }
  if (wr != nullptr) {
    u64 pixels = in.size();
    wr->pixel_ops += pixels * 22;  // rotation math on top of the gather
    wr->bytes_read += pixels * 4 * sizeof(f32);
    wr->bytes_written += pixels * sizeof(f32);
  }
  return out;
}

ImageF32 translate_bilinear(const ImageF32& in, f64 dx, f64 dy,
                            WorkReport* wr) {
  ImageF32 out(in.width(), in.height());
  for (i32 y = 0; y < in.height(); ++y) {
    for (i32 x = 0; x < in.width(); ++x) {
      out.at(x, y) = bilinear_sample(in, static_cast<f64>(x) + dx,
                                     static_cast<f64>(y) + dy);
    }
  }
  if (wr != nullptr) {
    u64 pixels = in.size();
    // Bilinear gather is memory-bound: account the 4-tap fetch + blend at an
    // effective 18 ops/pixel.
    wr->pixel_ops += pixels * 18;
    wr->bytes_read += pixels * 4 * sizeof(f32);
    wr->bytes_written += pixels * sizeof(f32);
  }
  return out;
}

}  // namespace tc::img
