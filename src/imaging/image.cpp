#include "imaging/image.hpp"

#include <cmath>
#include <fstream>

namespace tc::img {

ImageF32 to_f32(const ImageU16& in) {
  ImageF32 out(in.width(), in.height());
  const u16* src = in.data();
  f32* dst = out.data();
  for (usize i = 0; i < in.size(); ++i) dst[i] = static_cast<f32>(src[i]);
  return out;
}

void to_f32(const ImageU16& in, ImageF32& out) {
  out.ensure(in.width(), in.height());
  const u16* src = in.data();
  f32* dst = out.data();
  for (usize i = 0; i < in.size(); ++i) dst[i] = static_cast<f32>(src[i]);
}

ImageU16 to_u16(const ImageF32& in) {
  ImageU16 out(in.width(), in.height());
  const f32* src = in.data();
  u16* dst = out.data();
  for (usize i = 0; i < in.size(); ++i) {
    f32 v = std::clamp(src[i], 0.0f, 65535.0f);
    dst[i] = static_cast<u16>(v + 0.5f);
  }
  return out;
}

bool write_pgm(const ImageU16& image, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  // Range-compress 16-bit data into 8 bit using the image's own min/max so
  // the dump is viewable regardless of the synthetic dose level.
  u16 lo = 65535;
  u16 hi = 0;
  for (usize i = 0; i < image.size(); ++i) {
    lo = std::min(lo, image.data()[i]);
    hi = std::max(hi, image.data()[i]);
  }
  f64 span = hi > lo ? static_cast<f64>(hi - lo) : 1.0;
  std::vector<u8> row(static_cast<usize>(image.width()));
  for (i32 y = 0; y < image.height(); ++y) {
    for (i32 x = 0; x < image.width(); ++x) {
      f64 norm = (static_cast<f64>(image.at(x, y)) - lo) / span;
      row[static_cast<usize>(x)] = static_cast<u8>(norm * 255.0 + 0.5);
    }
    f.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
  }
  return static_cast<bool>(f);
}

}  // namespace tc::img
