// Low-level pixel kernels shared by the pipeline tasks.
//
// Every kernel exists in a row-range form so stripe (data-parallel)
// partitioning can compute disjoint output row bands that are bit-identical
// to a serial run: each band reads whatever input halo it needs from the
// full input image.  All kernels optionally accumulate a WorkReport.
#pragma once

#include <span>
#include <vector>

#include "imaging/image.hpp"
#include "imaging/work_report.hpp"

namespace tc::img {

/// Normalized odd-length 1-D Gaussian kernel with radius ceil(3*sigma).
[[nodiscard]] std::vector<f32> gaussian_kernel(f64 sigma);

/// Separable Gaussian blur of the full image.
[[nodiscard]] ImageF32 gaussian_blur(const ImageF32& in, f64 sigma,
                                     WorkReport* wr = nullptr);

/// Separable Gaussian blur producing only output rows [rows.lo, rows.hi).
/// `out` must already have the dimensions of `in`.
void gaussian_blur_rows(const ImageF32& in, f64 sigma, ImageF32& out,
                        IndexRange rows, WorkReport* wr = nullptr);

/// As gaussian_blur_rows, but restricted to output columns
/// [cols.lo, cols.hi) as well — ROI processing only pays for ROI columns.
void gaussian_blur_rect(const ImageF32& in, f64 sigma, ImageF32& out,
                        IndexRange rows, IndexRange cols,
                        WorkReport* wr = nullptr);

/// Second-derivative (Hessian) images computed by central differences on a
/// pre-smoothed image.
struct HessianImages {
  ImageF32 xx;
  ImageF32 xy;
  ImageF32 yy;
};

[[nodiscard]] HessianImages make_hessian_images(i32 width, i32 height);

/// Fill h.xx/h.xy/h.yy for rows [rows.lo, rows.hi).
void hessian_rows(const ImageF32& smooth, HessianImages& h, IndexRange rows,
                  WorkReport* wr = nullptr);

/// Column-restricted variant (reads smooth at cols expanded by 1).
void hessian_rect(const ImageF32& smooth, HessianImages& h, IndexRange rows,
                  IndexRange cols, WorkReport* wr = nullptr);

/// Ridgeness response: the largest positive Hessian eigenvalue (dark curvi-
/// linear structures on a bright background give a strong positive second
/// derivative across the ridge).  Fills rows [rows.lo, rows.hi) of `out`.
void ridgeness_rows(const HessianImages& h, ImageF32& out, IndexRange rows,
                    WorkReport* wr = nullptr);

/// Per-pixel absolute temporal difference |a - b| (the motion criterion used
/// by the registration stage).  Images must have identical dimensions.
[[nodiscard]] ImageF32 temporal_difference(const ImageF32& a,
                                           const ImageF32& b,
                                           WorkReport* wr = nullptr);

/// Bilinear sample with border clamping.
[[nodiscard]] f32 bilinear_sample(const ImageF32& in, f64 x, f64 y);

/// Catmull-Rom bicubic sample with border clamping.
[[nodiscard]] f32 bicubic_sample(const ImageF32& in, f64 x, f64 y);

/// Resample the source rectangle `src` of `in` to an out_w x out_h image with
/// bicubic interpolation (the ZOOM task).
[[nodiscard]] ImageF32 resample_bicubic(const ImageF32& in, i32 out_w,
                                        i32 out_h, Rect src,
                                        WorkReport* wr = nullptr);

/// Stripe-safe resample: fills only output rows [rows.lo, rows.hi) of the
/// pre-sized `out` (reads are unrestricted, output row bands are disjoint),
/// so concurrent stripes compose bit-identically to resample_bicubic.
void resample_bicubic_rows(const ImageF32& in, ImageF32& out, Rect src,
                           IndexRange rows, WorkReport* wr = nullptr);

/// Translate an image by a sub-pixel offset with bilinear interpolation
/// (used for motion compensation in the ENH task).
[[nodiscard]] ImageF32 translate_bilinear(const ImageF32& in, f64 dx, f64 dy,
                                          WorkReport* wr = nullptr);

/// Rigid warp with bilinear interpolation: the output is `in` transformed by
/// a rotation of `angle` radians about `center` followed by a translation of
/// (dx, dy) — i.e. out(p) = in(center + R(-angle) * (p - center - d)).
/// With angle = 0 this equals translate_bilinear.
[[nodiscard]] ImageF32 warp_rigid(const ImageF32& in, f64 dx, f64 dy,
                                  f64 angle, Point2f center,
                                  WorkReport* wr = nullptr);

}  // namespace tc::img
