// Synthetic X-ray angiography sequence generator.
//
// Substitutes for the paper's clinical fluoroscopy material (37 sequences /
// 1 921 frames).  The generator produces the *dynamics* the Triple-C models
// feed on:
//   - a stented vessel with two balloon markers moving under cardiac +
//     respiratory motion  (→ long-term, low-frequency load correlation),
//   - per-frame quantum noise that perturbs candidate counts
//     (→ short-term Markov-like load fluctuation),
//   - a contrast-agent bolus that makes the vessel tree appear/disappear
//     (→ the "dominant structures present?" switch in the flow graph),
//   - occasional marker dropouts (→ registration-failure switch).
//
// Rendering is deterministic per (seed, frame index): any frame can be
// re-rendered independently, which the striped/parallel executors rely on.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "imaging/image.hpp"

namespace tc::img {

/// Periodic + drift motion applied to the stent and vessel tree.
struct MotionModel {
  f64 heart_rate_hz = 1.2;
  f64 cardiac_amplitude_px = 18.0;
  f64 breathing_rate_hz = 0.25;
  f64 breathing_amplitude_px = 10.0;
  f64 drift_px_per_frame = 0.03;
};

struct SequenceParams {
  i32 width = 512;
  i32 height = 512;
  i32 frames = 200;
  f64 fps = 30.0;
  u64 seed = 1;

  MotionModel motion;

  /// A-priori known balloon-marker separation (the prior used by couples
  /// selection), marker size and radiographic depth (opacity).
  f64 marker_distance_px = 90.0;
  f64 marker_radius_px = 4.0;
  f64 marker_depth = 0.45;

  /// Vessel tree.
  i32 vessel_count = 6;
  f64 vessel_contrast_peak = 0.30;

  /// Contrast-agent bolus: vessel opacity ramps in around `contrast_in_frame`
  /// and washes out around `contrast_out_frame`.  Frames outside the bolus
  /// have (nearly) invisible vessels, so ridge detection is unnecessary.
  i32 contrast_in_frame = 30;
  i32 contrast_out_frame = 150;

  /// Probability that a frame obscures the markers (e.g. diaphragm crossing)
  /// which makes downstream registration fail.
  f64 marker_dropout_prob = 0.04;

  /// Quantum-noise level: photon count at full transmission.  Lower dose =
  /// noisier frames = more spurious marker candidates.
  f64 dose_photons = 900.0;
};

/// Ground-truth state of one frame (used by tests and for oracle checks;
/// the pipeline itself never reads it).
struct FrameTruth {
  Point2f marker_a;
  Point2f marker_b;
  /// Vessel opacity in [0, 1]; above ~0.12 the vessel tree constitutes
  /// "dominant structures" that the RDG task must remove.
  f64 contrast_level = 0.0;
  bool markers_visible = true;
  /// Frame-to-frame stent displacement.
  f64 motion_dx = 0.0;
  f64 motion_dy = 0.0;
};

class AngioSequence {
 public:
  explicit AngioSequence(const SequenceParams& params);

  [[nodiscard]] const SequenceParams& params() const { return params_; }
  [[nodiscard]] i32 frames() const { return params_.frames; }

  /// Render frame `t` (16-bit, higher value = more transmission = brighter).
  [[nodiscard]] ImageU16 render(i32 t) const;

  /// Ground truth for frame `t`.
  [[nodiscard]] FrameTruth truth(i32 t) const;

 private:
  struct Vessel {
    std::vector<Point2f> points;  // centerline polyline (scene coordinates)
    f64 half_width = 0.0;
  };

  [[nodiscard]] Point2f stent_center(i32 t) const;
  [[nodiscard]] f64 contrast_at(i32 t) const;
  void stamp_line(ImageF32& opacity, Point2f a, Point2f b, f64 half_width,
                  f64 depth) const;
  void stamp_disk(ImageF32& opacity, Point2f c, f64 radius, f64 depth) const;

  SequenceParams params_;
  std::vector<Vessel> vessels_;
  f64 stent_angle_ = 0.0;  // orientation of the marker couple
  std::vector<bool> dropout_;  // per-frame marker dropout flags
};

}  // namespace tc::img
