// CPLS_SEL — couples selection.
//
// Scores every candidate pair against the a-priori known balloon-marker
// separation; the O(n^2) pair scan makes the execution time of this stage
// strongly data dependent (the paper models it with a Markov chain).

#include <cmath>

#include "imaging/pipeline.hpp"

namespace tc::img {

f64 Couple::distance() const {
  f64 dx = b.x - a.x;
  f64 dy = b.y - a.y;
  return std::sqrt(dx * dx + dy * dy);
}

CouplePartial select_couple_rows(const std::vector<MarkerCandidate>& candidates,
                                 const CoupleParams& params,
                                 const Couple* previous,
                                 IndexRange first_range) {
  CouplePartial partial;
  f64 prev_cx = 0.0;
  f64 prev_cy = 0.0;
  if (previous != nullptr) {
    prev_cx = 0.5 * (previous->a.x + previous->b.x);
    prev_cy = 0.5 * (previous->a.y + previous->b.y);
  }
  const usize n = candidates.size();
  const usize i0 = std::min(static_cast<usize>(std::max(first_range.lo, 0)), n);
  const usize i1 = std::min(static_cast<usize>(std::max(first_range.hi, 0)), n);
  for (usize i = i0; i < i1; ++i) {
    for (usize j = i + 1; j < n; ++j) {
      ++partial.pairs_considered;
      f64 dx = candidates[j].position.x - candidates[i].position.x;
      f64 dy = candidates[j].position.y - candidates[i].position.y;
      f64 dist = std::sqrt(dx * dx + dy * dy);
      f64 residual = std::fabs(dist - params.prior_distance);
      if (residual > params.distance_tolerance) continue;
      // Distance plausibility (1 at perfect match, 0 at the tolerance edge)
      // weighted by the combined marker strength.
      f64 plaus = 1.0 - residual / params.distance_tolerance;
      f64 strength = static_cast<f64>(candidates[i].score) +
                     static_cast<f64>(candidates[j].score);
      if (strength < params.min_strength) continue;
      f64 score = plaus * strength;
      if (previous != nullptr) {
        f64 mx = 0.5 * (candidates[i].position.x + candidates[j].position.x);
        f64 my = 0.5 * (candidates[i].position.y + candidates[j].position.y);
        f64 move2 = (mx - prev_cx) * (mx - prev_cx) +
                    (my - prev_cy) * (my - prev_cy);
        f64 s2 = params.tracking_sigma * params.tracking_sigma;
        score *= std::exp(-0.5 * move2 / s2);
      }
      if (score > partial.best_score) {
        partial.best_score = score;
        partial.best = Couple{candidates[i].position, candidates[j].position,
                              score};
      }
    }
  }
  return partial;
}

CoupleResult merge_couple_partials(std::span<const CouplePartial> partials,
                                   usize candidate_count) {
  CoupleResult result;
  f64 best_score = 0.0;
  for (const CouplePartial& p : partials) {
    result.pairs_considered += p.pairs_considered;
    if (p.best.has_value() && p.best_score > best_score) {
      best_score = p.best_score;
      result.best = p.best;
    }
  }
  result.work.feature_ops = result.pairs_considered * 12;
  result.work.items = result.pairs_considered;
  result.work.input_bytes = candidate_count * sizeof(MarkerCandidate);
  result.work.output_bytes = sizeof(Couple);
  result.work.data_parallel = false;  // feature-level: functional partitioning
  return result;
}

CoupleResult select_couple(const std::vector<MarkerCandidate>& candidates,
                           const CoupleParams& params, const Couple* previous) {
  CouplePartial partial =
      select_couple_rows(candidates, params, previous,
                         IndexRange{0, narrow<i32>(candidates.size())});
  return merge_couple_partials(std::span<const CouplePartial>(&partial, 1),
                               candidates.size());
}

}  // namespace tc::img
