// MKX_EXT — marker extraction.
//
// Candidate balloon markers are punctual dark zones contrasting on a
// brighter background.  Detection runs on a decimated grid: the ROI is
// box-averaged down by `decimation`, darkness is measured there with a
// difference of Gaussians (background scale minus blob scale), candidates
// survive non-maximum suppression and thresholding, and each surviving
// candidate's position is refined to sub-pixel accuracy by an
// intensity-weighted centroid on the full-resolution image.
//
// When ridge detection ran, candidates sitting on elongated structures
// (vessels, catheter) are suppressed using the ridge/blob eigenvalue split —
// this is how RDG "removes all other structures except candidate markers".

#include <algorithm>
#include <cmath>

#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

/// Box-average decimation of `roi` by factor `d`.  The output image covers
/// ceil(roi/d) cells; cell (i,j) averages the full-res pixels under it.
ImageF32 decimate(const ImageF32& frame, Rect roi, i32 d, WorkReport& work) {
  const i32 ow = (roi.w + d - 1) / d;
  const i32 oh = (roi.h + d - 1) / d;
  ImageF32 out(ow, oh);
  for (i32 j = 0; j < oh; ++j) {
    for (i32 i = 0; i < ow; ++i) {
      f32 acc = 0.0f;
      i32 count = 0;
      const i32 y0 = roi.y + j * d;
      const i32 x0 = roi.x + i * d;
      for (i32 y = y0; y < std::min(y0 + d, roi.y + roi.h); ++y) {
        for (i32 x = x0; x < std::min(x0 + d, roi.x + roi.w); ++x) {
          acc += frame.at(x, y);
          ++count;
        }
      }
      out.at(i, j) = count > 0 ? acc / static_cast<f32>(count) : 0.0f;
    }
  }
  u64 pixels = static_cast<u64>(roi.area());
  work.pixel_ops += pixels;
  work.bytes_read += pixels * sizeof(f32);
  work.bytes_written += out.bytes();
  return out;
}

/// Refine a candidate position with a darkness-weighted centroid computed on
/// the full-resolution frame around the coarse position.
Point2f refine_position(const ImageF32& frame, Point2f coarse, i32 half,
                        WorkReport& work) {
  i32 cx = narrow<i32>(std::lround(coarse.x));
  i32 cy = narrow<i32>(std::lround(coarse.y));
  Rect win = clamp_rect(Rect{cx - half, cy - half, 2 * half + 1, 2 * half + 1},
                        frame.width(), frame.height());
  if (win.empty()) return coarse;
  // Local maximum intensity = background reference; weight = darkness.
  f32 bg = 0.0f;
  for (i32 y = win.y; y < win.y + win.h; ++y) {
    for (i32 x = win.x; x < win.x + win.w; ++x) {
      bg = std::max(bg, frame.at(x, y));
    }
  }
  f64 wsum = 0.0;
  f64 xsum = 0.0;
  f64 ysum = 0.0;
  for (i32 y = win.y; y < win.y + win.h; ++y) {
    for (i32 x = win.x; x < win.x + win.w; ++x) {
      f64 w = static_cast<f64>(bg - frame.at(x, y));
      if (w <= 0.0) continue;
      w = w * w;  // emphasize the dark core
      wsum += w;
      xsum += w * x;
      ysum += w * y;
    }
  }
  work.feature_ops += static_cast<u64>(win.area()) * 6;
  if (wsum <= 0.0) return coarse;
  return Point2f{xsum / wsum, ysum / wsum};
}

}  // namespace

MarkerGrid marker_grid(const ImageF32& frame, Rect roi,
                       const MarkerParams& params) {
  MarkerGrid grid;
  grid.r = clamp_rect(roi, frame.width(), frame.height());
  if (grid.r.empty()) return grid;
  grid.d = std::max(params.decimation, 1);

  grid.low = decimate(frame, grid.r, grid.d, grid.work);
  grid.blob = gaussian_blur(grid.low, params.blob_sigma, &grid.work);
  grid.background = gaussian_blur(grid.low, params.background_sigma, &grid.work);

  // Non-maximum suppression runs over cells anchored to the absolute
  // decimated grid (so ROI offsets and batch splits reproduce identical
  // cells).
  grid.cell = std::max(params.nms_cell, 2);
  grid.gx0 = (grid.r.x / grid.d) / grid.cell * grid.cell;
  grid.gy0 = (grid.r.y / grid.d) / grid.cell * grid.cell;
  grid.lx0 = grid.r.x / grid.d;  // low-res coords of the ROI origin
  grid.ly0 = grid.r.y / grid.d;
  grid.cell_rows =
      (grid.ly0 + grid.low.height() - grid.gy0 + grid.cell - 1) / grid.cell;
  return grid;
}

MarkerBatch extract_marker_cells(const ImageF32& frame, const MarkerGrid& grid,
                                 const MarkerParams& params,
                                 const RidgeResult* ridge, IndexRange cells) {
  MarkerBatch batch;
  WorkReport refine_work;
  const ImageF32& low = grid.low;
  const i32 lx0 = grid.lx0;
  const i32 ly0 = grid.ly0;
  const i32 cell = grid.cell;
  const i32 d = grid.d;
  const i32 c0 = std::clamp(cells.lo, 0, grid.cell_rows);
  const i32 c1 = std::clamp(cells.hi, 0, grid.cell_rows);
  for (i32 k = c0; k < c1; ++k) {
    const i32 cy = grid.gy0 + k * cell;
    for (i32 cx = grid.gx0; cx < lx0 + low.width(); cx += cell) {
      f32 best = 0.0f;
      i32 bx = -1;
      i32 by = -1;
      for (i32 y = std::max(cy, ly0); y < std::min(cy + cell, ly0 + low.height());
           ++y) {
        for (i32 x = std::max(cx, lx0);
             x < std::min(cx + cell, lx0 + low.width()); ++x) {
          f32 darkness = grid.background.at(x - lx0, y - ly0) -
                         grid.blob.at(x - lx0, y - ly0);
          if (darkness > best) {
            best = darkness;
            bx = x;
            by = y;
          }
        }
      }
      if (bx < 0 || best <= params.detect_threshold) continue;

      Point2f coarse{static_cast<f64>(bx) * d + 0.5 * (d - 1),
                     static_cast<f64>(by) * d + 0.5 * (d - 1)};
      Point2f refined =
          refine_position(frame, coarse, params.refine_half, refine_work);

      if (ridge != nullptr) {
        // Structure suppression sampled at the refined full-res position:
        // where a significant ridge response exists, keep only blob-like
        // points.  Markers sitting on the guide wire keep a blobness
        // comparable to their response and pass unattenuated; elongated
        // structures (vessels, catheter) are eliminated.
        i32 fx = std::clamp(narrow<i32>(std::lround(refined.x)), 0,
                            frame.width() - 1);
        i32 fy = std::clamp(narrow<i32>(std::lround(refined.y)), 0,
                            frame.height() - 1);
        f32 resp = ridge->response.at(fx, fy);
        if (resp > params.ridge_floor) {
          f32 ratio =
              params.ridge_blob_weight * ridge->blobness.at(fx, fy) / resp;
          best *= std::min(1.0f, ratio);
        }
        if (best <= params.detect_threshold) continue;
      }
      batch.candidates.push_back(MarkerCandidate{refined, best});
    }
  }
  batch.feature_ops = refine_work.feature_ops;
  return batch;
}

MarkerResult finalize_markers(const MarkerGrid& grid,
                              const MarkerParams& params, bool ridge_used,
                              std::span<const MarkerBatch> batches) {
  MarkerResult result;
  result.work = grid.work;
  WorkReport& work = result.work;
  for (const MarkerBatch& batch : batches) {
    work.feature_ops += batch.feature_ops;
    result.candidates.insert(result.candidates.end(), batch.candidates.begin(),
                             batch.candidates.end());
  }

  // Strongest first; cap the list.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const MarkerCandidate& a, const MarkerCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.position.y != b.position.y) return a.position.y < b.position.y;
              return a.position.x < b.position.x;
            });
  if (result.candidates.size() > static_cast<usize>(params.max_candidates)) {
    result.candidates.resize(static_cast<usize>(params.max_candidates));
  }

  u64 low_pixels = grid.low.size();
  work.pixel_ops += low_pixels * (ridge_used ? 6 : 3);
  work.bytes_read += low_pixels * (ridge_used ? 4 : 2) * sizeof(f32);
  work.items = result.candidates.size();
  u64 roi_pixels = static_cast<u64>(grid.r.area());
  work.input_bytes += roi_pixels * sizeof(u16) +
                      (ridge_used ? roi_pixels * 2 * sizeof(f32) : 0);
  work.intermediate_bytes +=
      grid.low.bytes() + grid.blob.bytes() + grid.background.bytes();
  work.output_bytes += result.candidates.size() * sizeof(MarkerCandidate);
  work.data_parallel = true;
  return result;
}

MarkerResult extract_markers(const ImageF32& frame, Rect roi,
                             const MarkerParams& params,
                             const RidgeResult* ridge) {
  Rect r = clamp_rect(roi, frame.width(), frame.height());
  if (r.empty()) return MarkerResult{};
  MarkerGrid grid = marker_grid(frame, roi, params);
  MarkerBatch batch = extract_marker_cells(frame, grid, params, ridge,
                                           IndexRange{0, grid.cell_rows});
  return finalize_markers(grid, params, ridge != nullptr,
                          std::span<const MarkerBatch>(&batch, 1));
}

}  // namespace tc::img
