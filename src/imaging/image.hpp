// Dense row-major 2-D image container used by every pipeline stage.
//
// The container is deliberately simple (contiguous std::vector storage, no
// strides) because the Triple-C cost model reasons about whole buffers; ROI
// processing is expressed with explicit Rect arguments so the amount of data
// touched is visible at each call site.
#pragma once

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tc::img {

template <typename T>
class Image {
 public:
  Image() = default;

  Image(i32 width, i32 height, T fill = T{})
      : width_(width), height_(height),
        pixels_(static_cast<usize>(width) * static_cast<usize>(height), fill) {
    assert(width >= 0 && height >= 0);
  }

  [[nodiscard]] i32 width() const { return width_; }
  [[nodiscard]] i32 height() const { return height_; }
  [[nodiscard]] usize size() const { return pixels_.size(); }
  [[nodiscard]] bool empty() const { return pixels_.empty(); }

  /// Buffer size in bytes — the quantity Table 1 of the paper reports.
  [[nodiscard]] u64 bytes() const { return pixels_.size() * sizeof(T); }

  [[nodiscard]] T& at(i32 x, i32 y) {
    assert(in_bounds(x, y));
    return pixels_[static_cast<usize>(y) * static_cast<usize>(width_) +
                   static_cast<usize>(x)];
  }
  [[nodiscard]] const T& at(i32 x, i32 y) const {
    assert(in_bounds(x, y));
    return pixels_[static_cast<usize>(y) * static_cast<usize>(width_) +
                   static_cast<usize>(x)];
  }

  /// Clamped access: coordinates outside the image are clamped to the border
  /// (replicate padding) — the boundary rule used by all filters here.
  [[nodiscard]] T at_clamped(i32 x, i32 y) const {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
  }

  [[nodiscard]] bool in_bounds(i32 x, i32 y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  [[nodiscard]] T* data() { return pixels_.data(); }
  [[nodiscard]] const T* data() const { return pixels_.data(); }

  [[nodiscard]] T* row(i32 y) { return data() + static_cast<usize>(y) * width_; }
  [[nodiscard]] const T* row(i32 y) const {
    return data() + static_cast<usize>(y) * width_;
  }

  void fill(T v) { std::fill(pixels_.begin(), pixels_.end(), v); }

  /// Reshape to width × height, reusing the allocation when possible.  When
  /// the dimensions change the contents are reset to T{}; when they already
  /// match the (stale) contents are kept — callers that reuse an image as
  /// scratch must clear whatever region they read before writing it.
  void ensure(i32 width, i32 height) {
    assert(width >= 0 && height >= 0);
    if (width == width_ && height == height_ && !pixels_.empty()) return;
    width_ = width;
    height_ = height;
    pixels_.assign(static_cast<usize>(width) * static_cast<usize>(height), T{});
  }

  [[nodiscard]] Rect full_rect() const { return Rect{0, 0, width_, height_}; }

  /// Copy out a sub-rectangle (clamped to the image bounds).
  [[nodiscard]] Image<T> crop(Rect r) const {
    Rect c = clamp_rect(r, width_, height_);
    Image<T> out(c.w, c.h);
    for (i32 y = 0; y < c.h; ++y) {
      const T* src = row(c.y + y) + c.x;
      std::copy(src, src + c.w, out.row(y));
    }
    return out;
  }

  bool operator==(const Image<T>& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           pixels_ == other.pixels_;
  }

 private:
  i32 width_ = 0;
  i32 height_ = 0;
  std::vector<T> pixels_;
};

using ImageU16 = Image<u16>;
using ImageF32 = Image<f32>;

/// Convert with clamping to the destination range.
[[nodiscard]] ImageF32 to_f32(const ImageU16& in);
[[nodiscard]] ImageU16 to_u16(const ImageF32& in);

/// Allocation-free variant: converts into `out` (reshaped as needed).
void to_f32(const ImageU16& in, ImageF32& out);

/// Write an image as binary PGM (P5, 8-bit after range compression for u16).
/// Returns false on I/O failure.
bool write_pgm(const ImageU16& image, const std::string& path);

}  // namespace tc::img
