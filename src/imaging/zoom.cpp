// ZOOM — interpolating zoom of the enhanced ROI to the display resolution.

#include <cmath>

#include "imaging/pipeline.hpp"

namespace tc::img {

void zoom_rows(const ImageF32& enhanced, const ZoomParams& params,
               ImageU16& out, IndexRange rows, WorkReport& work) {
  const i32 ow = params.output_width;
  const i32 oh = params.output_height;
  const i32 y0 = std::clamp(rows.lo, 0, oh);
  const i32 y1 = std::clamp(rows.hi, 0, oh);
  const f64 sx = static_cast<f64>(enhanced.width()) / static_cast<f64>(ow);
  const f64 sy = static_cast<f64>(enhanced.height()) / static_cast<f64>(oh);
  for (i32 y = y0; y < y1; ++y) {
    for (i32 x = 0; x < ow; ++x) {
      f64 srcx = (static_cast<f64>(x) + 0.5) * sx - 0.5;
      f64 srcy = (static_cast<f64>(y) + 0.5) * sy - 0.5;
      f32 v = bicubic_sample(enhanced, srcx, srcy);
      out.at(x, y) = static_cast<u16>(std::clamp(v, 0.0f, 65535.0f) + 0.5f);
    }
  }
  u64 pixels = static_cast<u64>(ow) * static_cast<u64>(y1 - y0);
  work.pixel_ops += pixels * 40;
  work.bytes_read += pixels * 16 * sizeof(f32);
  work.bytes_written += pixels * sizeof(u16);
  f64 frac = static_cast<f64>(y1 - y0) / static_cast<f64>(oh);
  work.input_bytes += static_cast<u64>(static_cast<f64>(enhanced.bytes()) * frac);
  work.intermediate_bytes +=
      static_cast<u64>(static_cast<f64>(enhanced.bytes()) * frac);
  work.output_bytes += pixels * sizeof(u16);
}

ZoomResult zoom(const ImageF32& enhanced, const ZoomParams& params) {
  ZoomResult result;
  result.output = ImageU16(params.output_width, params.output_height);
  zoom_rows(enhanced, params, result.output,
            IndexRange{0, params.output_height}, result.work);
  result.work.data_parallel = true;
  return result;
}

}  // namespace tc::img
