// ENH — enhancement by motion-compensated temporal integration.
//
// The registered frames are averaged in a *stent-aligned reference frame*:
// every incoming frame is warped once by the rigid transform defined by its
// marker couple and the reference couple (captured when integration
// (re)starts), then blended into the accumulator.  Integrating in reference
// coordinates — rather than re-warping the accumulator each frame — avoids
// cumulative resampling blur, so quantum noise integrates down while the
// stent stays sharp ("temporal integration of the registered image frames
// according to the balloon markers", paper §3).  Table 1's full-frame input
// and two full-frame float intermediates correspond to the incoming frame,
// its warped copy and the accumulator; the execution time is constant.

#include <cassert>
#include <cmath>

#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

/// Warp `frame` into reference coordinates: the rigid transform maps the
/// current couple onto the reference couple.
ImageF32 warp_to_reference(const ImageF32& frame, const Couple& cur,
                           const Couple& ref, WorkReport* wr) {
  const f64 cur_angle = std::atan2(cur.b.y - cur.a.y, cur.b.x - cur.a.x);
  const f64 ref_angle = std::atan2(ref.b.y - ref.a.y, ref.b.x - ref.a.x);
  const f64 phi = ref_angle - cur_angle;
  const Point2f c_cur{0.5 * (cur.a.x + cur.b.x), 0.5 * (cur.a.y + cur.b.y)};
  const Point2f c_ref{0.5 * (ref.a.x + ref.b.x), 0.5 * (ref.a.y + ref.b.y)};

  // out(p_ref) = frame(c_cur + R(-phi) * (p_ref - c_ref)).
  ImageF32 out(frame.width(), frame.height());
  const f64 ca = std::cos(-phi);
  const f64 sa = std::sin(-phi);
  for (i32 y = 0; y < frame.height(); ++y) {
    for (i32 x = 0; x < frame.width(); ++x) {
      f64 rx = static_cast<f64>(x) - c_ref.x;
      f64 ry = static_cast<f64>(y) - c_ref.y;
      f64 sx = c_cur.x + ca * rx - sa * ry;
      f64 sy = c_cur.y + sa * rx + ca * ry;
      out.at(x, y) = bilinear_sample(frame, sx, sy);
    }
  }
  if (wr != nullptr) {
    u64 pixels = frame.size();
    wr->pixel_ops += pixels * 22;
    wr->bytes_read += pixels * 4 * sizeof(f32);
    wr->bytes_written += pixels * sizeof(f32);
  }
  return out;
}

}  // namespace

EnhanceResult enhance(const ImageF32& cur_frame, Rect roi,
                      const ImageF32& accumulator, const Couple& cur_couple,
                      const Couple& ref_couple, const EnhanceParams& params) {
  EnhanceResult result;
  WorkReport& work = result.work;
  Rect r = clamp_rect(roi, cur_frame.width(), cur_frame.height());
  assert(!r.empty());

  const u64 frame_pixels = cur_frame.size();
  ImageF32 warped = warp_to_reference(cur_frame, cur_couple, ref_couple, &work);

  if (accumulator.empty() || accumulator.width() != cur_frame.width() ||
      accumulator.height() != cur_frame.height()) {
    // (Re)start integration: the accumulator adopts the warped frame.
    result.accumulator = std::move(warped);
    work.bytes_written += frame_pixels * sizeof(f32);
  } else {
    result.accumulator = ImageF32(cur_frame.width(), cur_frame.height());
    const f32 g = params.integration_gain;
    const f32* pa = accumulator.data();
    const f32* pw = warped.data();
    f32* po = result.accumulator.data();
    for (usize i = 0; i < frame_pixels; ++i) {
      po[i] = (1.0f - g) * pa[i] + g * pw[i];
    }
    work.pixel_ops += frame_pixels * 3;
    work.bytes_read += 2 * frame_pixels * sizeof(f32);
    work.bytes_written += frame_pixels * sizeof(f32);
    work.intermediate_bytes += frame_pixels * sizeof(f32);  // warped copy
  }

  result.enhanced_roi = result.accumulator.crop(r);
  work.bytes_read += result.enhanced_roi.bytes();
  work.bytes_written += result.enhanced_roi.bytes();

  work.input_bytes += frame_pixels * sizeof(u16);
  work.intermediate_bytes += result.accumulator.bytes();
  work.output_bytes += result.enhanced_roi.bytes();
  work.data_parallel = true;
  return result;
}

EnhanceResult enhance(const ImageF32& cur_frame, Rect roi,
                      const ImageF32& accumulator, f64 dx, f64 dy,
                      const EnhanceParams& params) {
  // Translation-only compatibility wrapper: synthesize couples so that the
  // current frame is shifted by (-dx, -dy) into the accumulator's frame.
  Couple cur{Point2f{100.0 + dx, 100.0 + dy},
             Point2f{200.0 + dx, 100.0 + dy}, 1.0};
  Couple ref{Point2f{100.0, 100.0}, Point2f{200.0, 100.0}, 1.0};
  return enhance(cur_frame, roi, accumulator, cur, ref, params);
}

}  // namespace tc::img
