// GW_EXT — guide-wire extraction.
//
// The wire joining the two balloon markers is traced by iteratively refining
// perpendicular offsets of a sampled path towards the ridge-response maximum
// with a smoothness constraint.  The number of refinement sweeps needed to
// converge is data dependent (noise, wire curvature), which is why the paper
// models this stage with a Markov chain.  A ridge joining the markers
// confirms that the marker extraction result is stable.

#include <cmath>
#include <vector>

#include "imaging/pipeline.hpp"

namespace tc::img {

GuideWireResult extract_guidewire(const RidgeResult& ridge,
                                  const Couple& couple,
                                  const GuideWireParams& params) {
  GuideWireResult result;
  WorkReport& work = result.work;
  const ImageF32& resp = ridge.response;
  const i32 n = std::max(params.path_samples, 4);

  // Path parameterization: straight chord + perpendicular offsets.
  f64 dx = couple.b.x - couple.a.x;
  f64 dy = couple.b.y - couple.a.y;
  f64 len = std::sqrt(dx * dx + dy * dy);
  if (len < 1e-6) return result;
  f64 nx = -dy / len;  // unit normal
  f64 ny = dx / len;

  std::vector<f64> offset(static_cast<usize>(n), 0.0);
  std::vector<f64> next(static_cast<usize>(n), 0.0);

  auto ridge_at = [&](i32 i, f64 off) {
    f64 frac = static_cast<f64>(i) / static_cast<f64>(n - 1);
    f64 px = couple.a.x + frac * dx + off * nx;
    f64 py = couple.a.y + frac * dy + off * ny;
    return static_cast<f64>(bilinear_sample(resp, px, py));
  };

  // Iterative refinement: each interior sample moves to the best
  // ridge-response offset, regularized towards its neighbours' mean.
  f64 max_move = 0.0;
  for (i32 iter = 0; iter < params.max_iterations; ++iter) {
    max_move = 0.0;
    for (i32 i = 1; i + 1 < n; ++i) {
      f64 best_off = offset[static_cast<usize>(i)];
      f64 best_score = -1.0;
      f64 neighbour_mean = 0.5 * (offset[static_cast<usize>(i - 1)] +
                                  offset[static_cast<usize>(i + 1)]);
      for (i32 s = -params.search_radius; s <= params.search_radius; ++s) {
        f64 off = offset[static_cast<usize>(i)] + 0.5 * static_cast<f64>(s);
        f64 reg = params.smoothness * std::fabs(off - neighbour_mean);
        f64 score = ridge_at(i, off) - reg * 4.0;
        work.feature_ops += 8;
        if (score > best_score) {
          best_score = score;
          best_off = off;
        }
      }
      next[static_cast<usize>(i)] = best_off;
      max_move = std::max(max_move,
                          std::fabs(best_off - offset[static_cast<usize>(i)]));
    }
    offset = next;
    ++result.iterations;
    if (max_move < params.convergence_eps) break;
  }

  // Final path + mean ridgeness verdict + wire-width check.  A vessel also
  // joins plausible couples with high ridgeness; what distinguishes the
  // guide wire is that it is *thin* — the response a couple of pixels
  // perpendicular to the path has dropped off.
  f64 acc = 0.0;
  f64 acc_off = 0.0;
  result.path.reserve(static_cast<usize>(n));
  for (i32 i = 0; i < n; ++i) {
    f64 frac = static_cast<f64>(i) / static_cast<f64>(n - 1);
    f64 off = offset[static_cast<usize>(i)];
    Point2f p{couple.a.x + frac * dx + off * nx,
              couple.a.y + frac * dy + off * ny};
    result.path.push_back(p);
    acc += ridge_at(i, off);
    f64 side_a = ridge_at(i, off + params.width_check_offset);
    f64 side_b = ridge_at(i, off - params.width_check_offset);
    acc_off += std::max(side_a, side_b);
    work.feature_ops += 24;
  }
  result.mean_ridgeness = acc / static_cast<f64>(n);
  result.off_path_ratio =
      result.mean_ridgeness > 1e-9 ? (acc_off / static_cast<f64>(n)) /
                                         result.mean_ridgeness
                                   : 1.0;
  result.found =
      result.mean_ridgeness >= static_cast<f64>(params.min_ridgeness) &&
      result.off_path_ratio <= params.max_off_path_ratio;

  work.items = static_cast<u64>(result.iterations) * static_cast<u64>(n);
  work.bytes_read += work.feature_ops * sizeof(f32) / 2;
  work.input_bytes += sizeof(Couple);
  work.output_bytes += result.path.size() * sizeof(Point2f);
  work.data_parallel = false;
  return result;
}

}  // namespace tc::img
