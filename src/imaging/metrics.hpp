// Image-quality metrics used to validate the enhancement pipeline: PSNR,
// local contrast-to-noise ratio of the balloon markers, and a flat-region
// noise estimate.  These quantify the clinical claim behind the paper's
// Fig. 1 — motion-compensated temporal integration suppresses quantum noise
// while keeping the stent sharp.
#pragma once

#include "imaging/image.hpp"

namespace tc::img {

/// Peak signal-to-noise ratio (dB) between two same-sized images, with the
/// given peak value (e.g. 65535 for u16-range data).  Returns +inf-like
/// large value (200 dB) for identical images.
[[nodiscard]] f64 psnr(const ImageF32& a, const ImageF32& b, f64 peak);

/// Standard deviation of the pixels in `region` (noise estimate when the
/// region is flat background).
[[nodiscard]] f64 region_stddev(const ImageF32& image, Rect region);

/// Mean of the pixels in `region`.
[[nodiscard]] f64 region_mean(const ImageF32& image, Rect region);

/// Contrast-to-noise ratio of a dark disk at `center` with radius `r`:
/// |mean(background ring) - mean(disk)| / stddev(background ring).
[[nodiscard]] f64 disk_cnr(const ImageF32& image, Point2f center, f64 radius);

/// Mean CNR of the two balloon markers.
[[nodiscard]] f64 marker_cnr(const ImageF32& image, Point2f marker_a,
                             Point2f marker_b, f64 radius);

}  // namespace tc::img
