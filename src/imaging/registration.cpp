// REG — temporal registration.
//
// Aligns the current marker couple with the previous one (translation +
// rotation of the marker axis) and validates the match with a motion
// criterion based on the temporal difference between succeeding frames
// around the markers (paper §3).

#include <cmath>

#include "imaging/pipeline.hpp"

namespace tc::img {
namespace {

/// Mean absolute temporal difference in a window centred on `p`.
f64 motion_energy(const ImageF32& prev, const ImageF32& cur, Point2f p,
                  i32 half, WorkReport& work) {
  i32 cx = narrow<i32>(std::lround(p.x));
  i32 cy = narrow<i32>(std::lround(p.y));
  Rect window = clamp_rect(Rect{cx - half, cy - half, 2 * half + 1,
                                2 * half + 1},
                           cur.width(), cur.height());
  if (window.empty()) return 0.0;
  f64 acc = 0.0;
  for (i32 y = window.y; y < window.y + window.h; ++y) {
    for (i32 x = window.x; x < window.x + window.w; ++x) {
      acc += std::fabs(static_cast<f64>(cur.at(x, y)) -
                       static_cast<f64>(prev.at(x, y)));
    }
  }
  u64 pixels = static_cast<u64>(window.area());
  work.pixel_ops += pixels * 3;
  work.bytes_read += pixels * 2 * sizeof(f32);
  return acc / static_cast<f64>(window.area());
}

/// Match the two endpoints of `cur` to `prev` in the order that minimizes
/// total displacement (the couple is unordered).
void order_couple(const Couple& prev, Couple& cur) {
  f64 direct = std::hypot(cur.a.x - prev.a.x, cur.a.y - prev.a.y) +
               std::hypot(cur.b.x - prev.b.x, cur.b.y - prev.b.y);
  f64 swapped = std::hypot(cur.b.x - prev.a.x, cur.b.y - prev.a.y) +
                std::hypot(cur.a.x - prev.b.x, cur.a.y - prev.b.y);
  if (swapped < direct) std::swap(cur.a, cur.b);
}

}  // namespace

RegistrationResult register_couple(const Couple& previous,
                                   const Couple& current,
                                   const ImageF32& prev_frame,
                                   const ImageF32& cur_frame,
                                   const RegistrationParams& params) {
  RegistrationResult result;
  Couple cur = current;
  order_couple(previous, cur);

  f64 da = std::hypot(cur.a.x - previous.a.x, cur.a.y - previous.a.y);
  f64 db = std::hypot(cur.b.x - previous.b.x, cur.b.y - previous.b.y);
  f64 drift = std::fabs(cur.distance() - previous.distance());

  // Translation = mean marker displacement; rotation = change of axis angle.
  result.dx = 0.5 * ((cur.a.x - previous.a.x) + (cur.b.x - previous.b.x));
  result.dy = 0.5 * ((cur.a.y - previous.a.y) + (cur.b.y - previous.b.y));

  // Sub-pixel refinement: minimize the SAD between the previous frame and
  // the shifted current frame over two small windows centred on the two
  // markers (where the moving content dominates), searching +-1.5 px around
  // the marker-based estimate in half-pixel steps.  This is the image-based
  // part of the paper's registration stage (and its dominant, constant
  // execution cost).
  {
    const i32 half = std::max(4, params.motion_window / 3);
    f64 best_sad = -1.0;
    f64 best_dx = result.dx;
    f64 best_dy = result.dy;
    for (i32 oy = -3; oy <= 3; ++oy) {
      for (i32 ox = -3; ox <= 3; ++ox) {
        f64 dx = result.dx + 0.5 * ox;
        f64 dy = result.dy + 0.5 * oy;
        f64 sad = 0.0;
        for (const Point2f& m : {cur.a, cur.b}) {
          for (i32 wy = -half; wy <= half; ++wy) {
            for (i32 wx = -half; wx <= half; ++wx) {
              f64 cx2 = m.x + wx;
              f64 cy2 = m.y + wy;
              f32 cur_v = bilinear_sample(cur_frame, cx2, cy2);
              f32 prev_v = bilinear_sample(prev_frame, cx2 - dx, cy2 - dy);
              sad += std::fabs(static_cast<f64>(cur_v) -
                               static_cast<f64>(prev_v));
            }
          }
        }
        if (best_sad < 0.0 || sad < best_sad) {
          best_sad = sad;
          best_dx = dx;
          best_dy = dy;
        }
      }
    }
    result.dx = best_dx;
    result.dy = best_dy;
    u64 window = static_cast<u64>(2 * half + 1) * static_cast<u64>(2 * half + 1);
    u64 samples = 49ull * 2ull * window;
    result.work.pixel_ops += samples * 22;  // two bilinear fetches + |diff|
    result.work.bytes_read += samples * 8 * sizeof(f32);
  }
  f64 prev_angle =
      std::atan2(previous.b.y - previous.a.y, previous.b.x - previous.a.x);
  f64 cur_angle = std::atan2(cur.b.y - cur.a.y, cur.b.x - cur.a.x);
  result.rotation = cur_angle - prev_angle;

  // Motion criterion: the temporal difference around the markers must show
  // activity consistent with a live moving stent (all-static or wildly
  // jumping couples are rejected).
  f64 energy_a = motion_energy(prev_frame, cur_frame, cur.a,
                               params.motion_window, result.work);
  f64 energy_b = motion_energy(prev_frame, cur_frame, cur.b,
                               params.motion_window, result.work);
  f64 energy = 0.5 * (energy_a + energy_b);

  result.success = da <= params.max_displacement &&
                   db <= params.max_displacement &&
                   drift <= params.max_distance_drift &&
                   energy >= static_cast<f64>(params.min_motion_energy);
  result.work.feature_ops += 64;
  result.work.input_bytes += 2 * sizeof(Couple);
  result.work.output_bytes += sizeof(RegistrationResult);
  result.work.data_parallel = false;
  return result;
}

}  // namespace tc::img
