// Linear growth model of computation time versus processing granularity
// (paper Eq. 3: y(t_k) = 0.067 * t_k + 20.6 for the ridge task, with t_k the
// ROI size).  Fitted by ordinary least squares from training samples.
#pragma once

#include <span>
#include <string>

#include "common/stats.hpp"

namespace tc::model {

class LinearGrowthModel {
 public:
  LinearGrowthModel() = default;

  /// Fit time = slope * size + intercept.
  void fit(std::span<const f64> sizes, std::span<const f64> times) {
    fit_ = fit_line(sizes, times);
    fitted_ = true;
  }

  /// Construct directly from coefficients (e.g. the paper's Eq. 3).
  static LinearGrowthModel from_coefficients(f64 slope, f64 intercept) {
    LinearGrowthModel m;
    m.fit_.slope = slope;
    m.fit_.intercept = intercept;
    m.fit_.r2 = 1.0;
    m.fitted_ = true;
    return m;
  }

  [[nodiscard]] bool fitted() const { return fitted_; }
  [[nodiscard]] f64 predict(f64 size) const {
    return fit_.slope * size + fit_.intercept;
  }
  [[nodiscard]] f64 slope() const { return fit_.slope; }
  [[nodiscard]] f64 intercept() const { return fit_.intercept; }
  [[nodiscard]] f64 r2() const { return fit_.r2; }

  [[nodiscard]] std::string to_string() const;

 private:
  LineFit fit_;
  bool fitted_ = false;
};

}  // namespace tc::model
