// Graph-level Triple-C predictor: one TaskPredictor per flow-graph node plus
// scenario state tables for the data-dependent switches (paper §4: "Data-
// dependent switch statements in the task graph are modeled with state
// tables").
//
// Scenario conditioning: a task whose cost regime depends on the *previous*
// frame's switch outcomes (e.g. the enhancement stage restarts cheaply after
// a failed registration) can be given a context function; a separate
// TaskPredictor is then trained per context value.  The context is always
// derivable before the frame executes (it only looks at the previous
// record), so prediction stays causal.
//
// Train offline from recorded FrameRecords; use online by asking for
// per-task predictions before a frame executes and feeding measured values
// back afterwards.  Latency aggregation under a concrete partitioning is the
// runtime manager's job (src/runtime).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/record.hpp"
#include "graph/scenario.hpp"
#include "obs/ledger.hpp"
#include "tripleC/predictor.hpp"

namespace tc::model {

class GraphPredictor {
 public:
  /// Context of a node for the coming frame, derived from the previous
  /// frame's record (nullptr on the first frame).  Must be a small integer.
  using ContextFn =
      std::function<u32(const graph::FrameRecord* previous, i32 node)>;

  GraphPredictor(usize task_count, usize switch_count);

  /// Configure the predictor kind of a node (default: EwmaMarkov).
  void configure_task(i32 node, PredictorConfig config);

  /// Install a context function (applies to every node; return 0 for nodes
  /// without scenario-dependent regimes).
  void set_context_fn(ContextFn fn) { context_fn_ = std::move(fn); }

  /// Attach a prediction ledger (not owned; nullptr detaches).  Every
  /// observe() then writes one settled row per executed task, confronting
  /// the causal prediction — evaluated from the pre-update online state and
  /// the previous record's context, exactly what predict_task() would have
  /// returned before the frame ran — with the measured simulated_ms.
  void set_ledger(obs::PredictionLedger* ledger) { ledger_ = ledger; }
  [[nodiscard]] obs::PredictionLedger* ledger() const { return ledger_; }

  /// Train every per-(task, context) predictor and the scenario table from
  /// recorded sequences.  Per node, only frames where the node executed
  /// contribute; each recorded sequence forms one training sequence.
  void train(std::span<const std::vector<graph::FrameRecord>> sequences);

  /// Predicted execution time of a node for the coming frame (uses the
  /// last observed record to derive the node's context).
  [[nodiscard]] f64 predict_task(i32 node, f64 roi_pixels = 0.0) const;

  /// Feed back one executed frame (advances per-task online state and the
  /// scenario table's notion of the current scenario).
  void observe(const graph::FrameRecord& record);

  /// Most likely scenario of the next frame given the last observed one.
  [[nodiscard]] graph::ScenarioId predict_scenario() const;

  /// Predictor of (node, context); creates it lazily from the node config.
  [[nodiscard]] TaskPredictor& task_predictor(i32 node, u32 context = 0);
  [[nodiscard]] const TaskPredictor& task_predictor(i32 node,
                                                    u32 context = 0) const;
  /// Configuration of a node without instantiating a predictor (lint-safe:
  /// inspecting a broken config must not construct from it).
  [[nodiscard]] const PredictorConfig& task_config(i32 node) const {
    return configs_[static_cast<usize>(node)];
  }
  /// Context values for which a predictor currently exists (training or
  /// lazy creation), in ascending order.  Does not create predictors.
  [[nodiscard]] std::vector<u32> contexts(i32 node) const;
  [[nodiscard]] usize task_count() const { return configs_.size(); }
  [[nodiscard]] const graph::ScenarioTransitions& scenario_table() const {
    return scenario_transitions_;
  }

  /// Reset the online state of every predictor (start of a new sequence).
  void reset_online_state();

 private:
  [[nodiscard]] u32 context_of(const graph::FrameRecord* previous,
                               i32 node) const {
    return context_fn_ ? context_fn_(previous, node) : 0u;
  }

  std::vector<PredictorConfig> configs_;
  // (node, context) -> predictor.  mutable so const accessors can create
  // default-configured predictors lazily.
  mutable std::vector<std::map<u32, TaskPredictor>> tasks_;
  ContextFn context_fn_;
  graph::ScenarioTransitions scenario_transitions_;
  std::optional<graph::FrameRecord> last_record_;
  obs::PredictionLedger* ledger_ = nullptr;
};

}  // namespace tc::model
