// Adaptive quantization of computation-time samples into Markov states
// (paper §4):
//
//   * the base state count is M = C_max / sigma_C;
//   * the paper found ~2M states necessary for sufficient accuracy
//     (the multiplier is configurable, and an ablation bench sweeps it);
//   * interval boundaries are chosen adaptively so each interval contains
//     on average the same number of training samples (equal-frequency
//     quantization);
//   * each state's representative value is the mean of its training samples.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace tc::model {

class AdaptiveQuantizer {
 public:
  AdaptiveQuantizer() = default;

  /// Build from training samples.  `state_multiplier` scales the base
  /// M = C_max/sigma state count (2.0 reproduces the paper's choice);
  /// the final count is clamped to [2, max_states].
  void fit(std::span<const f64> samples, f64 state_multiplier = 2.0,
           usize max_states = 64);

  [[nodiscard]] bool fitted() const { return !boundaries_.empty() || states_ == 1; }
  [[nodiscard]] usize states() const { return states_; }

  /// Base state count M = C_max / sigma_C computed at fit time (before the
  /// multiplier), for reporting.
  [[nodiscard]] usize base_states() const { return base_states_; }

  /// Map a value to its state index in [0, states()).
  [[nodiscard]] usize state_of(f64 x) const;

  /// Representative (mean of training samples) of a state.
  [[nodiscard]] f64 representative(usize state) const {
    return representatives_[state];
  }

  /// Interval upper boundaries (states() - 1 entries; state i covers
  /// (boundary[i-1], boundary[i]]).
  [[nodiscard]] const std::vector<f64>& boundaries() const {
    return boundaries_;
  }

 private:
  usize states_ = 0;
  usize base_states_ = 0;
  std::vector<f64> boundaries_;
  std::vector<f64> representatives_;
};

}  // namespace tc::model
